// The In-Net policy/requirements API (§4.2):
//
//   reach from <node> [flow] {-> <node> [flow] [const <fields>]}+
//
// where <node> is "internet", "client", an IP address or subnet, or a
// processing-module element reference "module:element[:port]"; [flow] is a
// tcpdump-style expression constraining the flow as it leaves/reaches that
// node; and "const f1 && f2 ..." requires the listed header fields to be
// invariant on the hop into that node.
#ifndef SRC_POLICY_REACH_SPEC_H_
#define SRC_POLICY_REACH_SPEC_H_

#include <optional>
#include <string>
#include <vector>

#include "src/netcore/fields.h"
#include "src/netcore/flowspec.h"

namespace innet::policy {

struct ReachNode {
  // Raw node spec: "internet", "client", "10.0.0.1", "172.16.0.0/16",
  // "batcher:dst:0".
  std::string spec;
  FlowSpec flow;  // wildcard when absent
  // Fields that must not change on the hop from the previous node.
  std::vector<HeaderField> const_fields;
};

struct ReachSpec {
  ReachNode from;
  std::vector<ReachNode> waypoints;  // at least one; the last is the target

  // Parses a full (possibly multi-line) reach statement. Returns nullopt and
  // fills *error on malformed input.
  static std::optional<ReachSpec> Parse(const std::string& text, std::string* error);

  std::string ToString() const;
};

// Splits a client-request requirements block into individual reach
// statements (one per "reach" keyword; statements may span lines).
std::vector<std::string> SplitReachStatements(const std::string& text);

}  // namespace innet::policy

#endif  // SRC_POLICY_REACH_SPEC_H_
