#include "src/policy/reach_checker.h"

#include <algorithm>

namespace innet::policy {

using symexec::Engine;
using symexec::EngineResult;
using symexec::kPortInject;
using symexec::SymbolicPacket;
using symexec::VarAllocator;

ReachCheckResult ReachChecker::Check(const ReachSpec& spec) const {
  ReachCheckResult result;

  std::vector<std::string> sources = resolver_(spec.from.spec);
  if (sources.empty()) {
    result.explanation = "unresolvable source node '" + spec.from.spec + "'";
    return result;
  }
  std::vector<std::vector<std::string>> waypoint_nodes;
  for (const ReachNode& node : spec.waypoints) {
    waypoint_nodes.push_back(resolver_(node.spec));
    if (waypoint_nodes.back().empty()) {
      result.explanation = "unresolvable node '" + node.spec + "'";
      return result;
    }
  }

  for (const std::string& source : sources) {
    int start = graph_->FindNode(source);
    if (start < 0) {
      continue;
    }
    Engine engine(options_);
    SymbolicPacket seed = SymbolicPacket::MakeUnconstrained(engine.vars());
    std::vector<SymbolicPacket> branches = seed.ConstrainToFlowSpec(spec.from.flow,
                                                                    engine.vars());
    for (SymbolicPacket& branch : branches) {
      EngineResult run = engine.Run(*graph_, start, kPortInject, std::move(branch));
      result.engine_steps += run.steps;
      result.paths_explored += run.delivered.size() + run.dropped.size();
      for (const SymbolicPacket& packet : run.delivered) {
        if (PathSatisfies(packet, spec, waypoint_nodes)) {
          result.satisfied = true;
          result.explanation = "satisfied via " + std::to_string(packet.history().size()) +
                               "-hop path ending at " + packet.delivered_at();
          return result;
        }
      }
    }
  }
  if (result.explanation.empty()) {
    result.explanation = "no conforming flow found";
  }
  return result;
}

bool ReachChecker::PathSatisfies(
    const SymbolicPacket& packet, const ReachSpec& spec,
    const std::vector<std::vector<std::string>>& waypoint_nodes) const {
  return MatchFrom(packet, spec, waypoint_nodes, 0, 0);
}

// Recursively matches waypoint `waypoint` at some hop >= from_hop, trying
// every candidate position (a node can appear several times on a path).
bool ReachChecker::MatchFrom(const SymbolicPacket& packet, const ReachSpec& spec,
                             const std::vector<std::vector<std::string>>& waypoint_nodes,
                             size_t waypoint, int from_hop) const {
  if (waypoint == spec.waypoints.size()) {
    return true;
  }
  const ReachNode& node = spec.waypoints[waypoint];
  const std::vector<std::string>& candidates = waypoint_nodes[waypoint];
  const auto& history = packet.history();
  for (int hop = from_hop; hop < static_cast<int>(history.size()); ++hop) {
    const std::string& hop_node = history[static_cast<size_t>(hop)].node;
    if (std::find(candidates.begin(), candidates.end(), hop_node) == candidates.end()) {
      continue;
    }
    if (!packet.CanMatchFlowSpec(node.flow, hop)) {
      continue;
    }
    bool invariants_ok = true;
    // The previous waypoint matched somewhere in [prev, hop); the const check
    // anchors on the hop the previous recursion level committed to, which is
    // from_hop - 1 when waypoint > 0 (the hop after the previous match).
    int anchor = waypoint == 0 ? 0 : from_hop - 1;
    for (HeaderField field : node.const_fields) {
      if (!packet.FieldInvariantBetween(field, anchor, hop)) {
        invariants_ok = false;
        break;
      }
    }
    if (!invariants_ok) {
      continue;
    }
    if (MatchFrom(packet, spec, waypoint_nodes, waypoint + 1, hop + 1)) {
      return true;
    }
  }
  return false;
}

}  // namespace innet::policy
