// Evaluates reach statements against a symbolic graph: the controller's
// verification primitive (§4.3).
#ifndef SRC_POLICY_REACH_CHECKER_H_
#define SRC_POLICY_REACH_CHECKER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/policy/reach_spec.h"
#include "src/symexec/engine.h"

namespace innet::policy {

// Maps a node spec ("internet", "client", "10.0.0.1", "batcher:dst:0") to the
// symbolic-graph node names it may denote. Empty = unresolvable.
using NodeResolver = std::function<std::vector<std::string>(const std::string& spec)>;

struct ReachCheckResult {
  bool satisfied = false;
  std::string explanation;
  // Work metrics, reported by the Figure 10 benchmark.
  uint64_t paths_explored = 0;
  uint64_t engine_steps = 0;
};

class ReachChecker {
 public:
  ReachChecker(const symexec::SymGraph* graph, NodeResolver resolver,
               symexec::EngineOptions options = {})
      : graph_(graph), resolver_(std::move(resolver)), options_(options) {}

  // The requirement is satisfied when at least one symbolic flow traverses
  // every waypoint in order, matching each waypoint's flow spec at that hop
  // and keeping each "const" field unmodified since the previous waypoint.
  ReachCheckResult Check(const ReachSpec& spec) const;

 private:
  bool PathSatisfies(const symexec::SymbolicPacket& packet, const ReachSpec& spec,
                     const std::vector<std::vector<std::string>>& waypoint_nodes) const;
  bool MatchFrom(const symexec::SymbolicPacket& packet, const ReachSpec& spec,
                 const std::vector<std::vector<std::string>>& waypoint_nodes, size_t waypoint,
                 int from_hop) const;

  const symexec::SymGraph* graph_;
  NodeResolver resolver_;
  symexec::EngineOptions options_;
};

}  // namespace innet::policy

#endif  // SRC_POLICY_REACH_CHECKER_H_
