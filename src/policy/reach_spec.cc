#include "src/policy/reach_spec.h"

#include <sstream>

namespace innet::policy {
namespace {

std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '-' && i + 1 < text.size() && text[i + 1] == '>') {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
      tokens.push_back("->");
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
      continue;
    }
    current.push_back(c);
  }
  if (!current.empty()) {
    tokens.push_back(current);
  }
  return tokens;
}

// Parses flow tokens until "->", "const", or end; returns the joined text.
std::string CollectFlowText(const std::vector<std::string>& tokens, size_t* i) {
  std::string flow;
  while (*i < tokens.size() && tokens[*i] != "->" && tokens[*i] != "const") {
    if (!flow.empty()) {
      flow += " ";
    }
    flow += tokens[(*i)++];
  }
  return flow;
}

// Parses "const f1 && f2 ..." where each field may be multi-word
// ("dst port"). `i` points just past the "const" token.
bool CollectConstFields(const std::vector<std::string>& tokens, size_t* i,
                        std::vector<HeaderField>* out, std::string* error) {
  std::string segment;
  auto flush = [&]() {
    if (segment.empty()) {
      return true;
    }
    auto field = ParseHeaderField(segment);
    if (!field) {
      *error = "unknown header field '" + segment + "' in const clause";
      return false;
    }
    out->push_back(*field);
    segment.clear();
    return true;
  };
  while (*i < tokens.size() && tokens[*i] != "->") {
    const std::string& tok = tokens[(*i)++];
    if (tok == "&&" || tok == "and") {
      if (!flush()) {
        return false;
      }
      continue;
    }
    if (!segment.empty()) {
      segment += " ";
    }
    segment += tok;
  }
  if (!flush()) {
    return false;
  }
  if (out->empty()) {
    *error = "empty const clause";
    return false;
  }
  return true;
}

}  // namespace

std::optional<ReachSpec> ReachSpec::Parse(const std::string& text, std::string* error) {
  std::string local_error;
  if (error == nullptr) {
    error = &local_error;
  }
  std::vector<std::string> tokens = Tokenize(text);
  size_t i = 0;
  if (i >= tokens.size() || tokens[i] != "reach") {
    *error = "reach statement must start with 'reach'";
    return std::nullopt;
  }
  ++i;
  if (i >= tokens.size() || tokens[i] != "from") {
    *error = "expected 'from' after 'reach'";
    return std::nullopt;
  }
  ++i;

  ReachSpec spec;
  auto parse_node = [&](ReachNode* node) -> bool {
    if (i >= tokens.size() || tokens[i] == "->" || tokens[i] == "const") {
      *error = "expected a node spec";
      return false;
    }
    node->spec = tokens[i++];
    std::string flow_text = CollectFlowText(tokens, &i);
    if (!flow_text.empty()) {
      auto flow = FlowSpec::Parse(flow_text);
      if (!flow) {
        *error = "bad flow spec '" + flow_text + "'";
        return false;
      }
      node->flow = *flow;
    }
    if (i < tokens.size() && tokens[i] == "const") {
      ++i;
      if (!CollectConstFields(tokens, &i, &node->const_fields, error)) {
        return false;
      }
    }
    return true;
  };

  if (!parse_node(&spec.from)) {
    return std::nullopt;
  }
  if (!spec.from.const_fields.empty()) {
    *error = "'const' is not allowed on the source node";
    return std::nullopt;
  }
  while (i < tokens.size()) {
    if (tokens[i] != "->") {
      *error = "expected '->' near '" + tokens[i] + "'";
      return std::nullopt;
    }
    ++i;
    ReachNode node;
    if (!parse_node(&node)) {
      return std::nullopt;
    }
    spec.waypoints.push_back(std::move(node));
  }
  if (spec.waypoints.empty()) {
    *error = "reach statement needs at least one '-> <node>'";
    return std::nullopt;
  }
  return spec;
}

std::string ReachSpec::ToString() const {
  std::ostringstream out;
  out << "reach from " << from.spec;
  std::string flow = from.flow.ToString();
  if (!flow.empty()) {
    out << " " << flow;
  }
  for (const ReachNode& node : waypoints) {
    out << " -> " << node.spec;
    flow = node.flow.ToString();
    if (!flow.empty()) {
      out << " " << flow;
    }
    if (!node.const_fields.empty()) {
      out << " const ";
      for (size_t i = 0; i < node.const_fields.size(); ++i) {
        if (i > 0) {
          out << " && ";
        }
        out << HeaderFieldName(node.const_fields[i]);
      }
    }
  }
  return out.str();
}

std::vector<std::string> SplitReachStatements(const std::string& text) {
  std::vector<std::string> statements;
  std::istringstream in(text);
  std::string word;
  std::string current;
  while (in >> word) {
    if (word == "reach" && !current.empty()) {
      statements.push_back(current);
      current.clear();
    }
    if (!current.empty()) {
      current += " ";
    }
    current += word;
  }
  if (!current.empty()) {
    statements.push_back(current);
  }
  return statements;
}

}  // namespace innet::policy
