#include "src/platform/software_switch.h"

namespace innet::platform {

void SoftwareSwitch::RemoveRulesForVm(Vm::VmId vm) {
  for (auto it = address_rules_.begin(); it != address_rules_.end();) {
    it = it->second == vm ? address_rules_.erase(it) : std::next(it);
  }
  for (auto it = flow_rules_.begin(); it != flow_rules_.end();) {
    it = it->second == vm ? flow_rules_.erase(it) : std::next(it);
  }
}

void SoftwareSwitch::Deliver(Packet& packet) {
  if (fault_ != nullptr) {
    if (fault_->ShouldDropPacket()) {
      ++fault_dropped_;
      if (flight_ != nullptr) {
        flight_->Record(packet.timestamp_ns(), obs::EventKind::kPacketDrop, "switch", "fault",
                        static_cast<int64_t>(packet.length()));
      }
      return;
    }
    if (fault_->ShouldCorruptPacket() && packet.length() > 0) {
      // Flip one byte without refreshing checksums; CheckIPHeader-style
      // elements inside the guest will discard the frame.
      size_t offset = fault_->CorruptOffset(packet.length());
      packet.mutable_data()[offset] ^= fault_->CorruptMask();
    }
  }
  Vm* stalled_vm = nullptr;
  auto flow_it = flow_rules_.find(packet.FlowKey());
  if (flow_it != flow_rules_.end()) {
    Vm* vm = vms_->Find(flow_it->second);
    if (vm != nullptr) {
      if (vm->state() == VmState::kRunning) {
        ++delivered_;
        if (flight_ != nullptr) {
          flight_->Record(packet.timestamp_ns(), obs::EventKind::kPacketIngress,
                          "vm:" + std::to_string(vm->id()), "",
                          static_cast<int64_t>(packet.length()));
        }
        vm->Inject(packet);
        return;
      }
      stalled_vm = vm;
    }
  }
  auto addr_it = address_rules_.find(packet.ip_dst().value());
  if (addr_it != address_rules_.end()) {
    Vm* vm = vms_->Find(addr_it->second);
    if (vm != nullptr) {
      if (vm->state() == VmState::kRunning) {
        ++delivered_;
        if (flight_ != nullptr) {
          flight_->Record(packet.timestamp_ns(), obs::EventKind::kPacketIngress,
                          "vm:" + std::to_string(vm->id()), "",
                          static_cast<int64_t>(packet.length()));
        }
        vm->Inject(packet);
        return;
      }
      if (stalled_vm == nullptr) {
        stalled_vm = vm;
      }
    }
  }
  if (stalled_vm != nullptr && stalled_) {
    stalled_(packet, stalled_vm->id());
    return;
  }
  if (miss_) {
    ++missed_;
    miss_(packet);
    return;
  }
  ++dropped_;
  if (flight_ != nullptr) {
    flight_->Record(packet.timestamp_ns(), obs::EventKind::kPacketDrop, "switch", "no_rule",
                    static_cast<int64_t>(packet.length()));
  }
}

}  // namespace innet::platform
