#include "src/platform/consolidation.h"

#include <unordered_set>

namespace innet::platform {

namespace {

bool IsSource(const std::string& class_name) {
  return class_name == "FromNetfront" || class_name == "FromDevice";
}
bool IsSink(const std::string& class_name) {
  return class_name == "ToNetfront" || class_name == "ToDevice";
}

}  // namespace

bool IsStatelessConfig(const click::ConfigGraph& config) {
  // Elements that keep per-flow or per-peer state.
  static const std::unordered_set<std::string> kStateful = {
      "ChangeEnforcer", "NatRewriter", "FlowMeter", "TimedUnqueue", "Queue", "X86Vm",
  };
  for (const click::ElementDecl& decl : config.elements) {
    if (kStateful.count(decl.class_name) != 0) {
      return false;
    }
  }
  return true;
}

std::optional<click::ConfigGraph> ConsolidateTenants(const std::vector<TenantConfig>& tenants,
                                                     std::string* error, DemuxKind demux) {
  click::ConfigGraph merged;
  merged.elements.push_back({"src", "FromNetfront", ""});

  // Demux: one branch per tenant, keyed on destination address.
  std::string patterns;
  for (size_t i = 0; i < tenants.size(); ++i) {
    if (i > 0) {
      patterns += ", ";
    }
    if (demux == DemuxKind::kLinearClassifier) {
      patterns += "dst host " + tenants[i].addr.ToString();
    } else {
      patterns += tenants[i].addr.ToString();
    }
  }
  merged.elements.push_back(
      {"demux", demux == DemuxKind::kLinearClassifier ? "IPClassifier" : "AddressDemux",
       patterns});
  merged.elements.push_back({"out", "ToNetfront", ""});
  merged.connections.push_back({"src", 0, "demux", 0});

  for (size_t i = 0; i < tenants.size(); ++i) {
    std::string prefix = "t" + std::to_string(i) + "_";
    auto config = click::ConfigGraph::Parse(tenants[i].config_text, error);
    if (!config) {
      *error = "tenant " + std::to_string(i) + ": " + *error;
      return std::nullopt;
    }
    if (!IsStatelessConfig(*config)) {
      *error = "tenant " + std::to_string(i) + ": stateful configurations cannot be "
               "consolidated";
      return std::nullopt;
    }

    std::string source_name;
    std::string sink_name;
    for (const click::ElementDecl& decl : config->elements) {
      if (IsSource(decl.class_name)) {
        if (source_name.empty()) {
          source_name = decl.name;
        }
        continue;  // replaced by the demux branch
      }
      if (IsSink(decl.class_name)) {
        if (sink_name.empty()) {
          sink_name = decl.name;
        }
        continue;  // replaced by the shared egress
      }
      merged.elements.push_back({prefix + decl.name, decl.class_name, decl.args});
    }
    if (source_name.empty() || sink_name.empty()) {
      *error = "tenant " + std::to_string(i) + ": configuration needs FromNetfront and "
               "ToNetfront";
      return std::nullopt;
    }

    for (const click::Connection& conn : config->connections) {
      std::string from = conn.from;
      int from_port = conn.from_port;
      std::string to = conn.to;
      int to_port = conn.to_port;
      if (from == source_name) {
        // The demux branch replaces the tenant's own ingress.
        from = "demux";
        from_port = static_cast<int>(i);
      } else {
        from = prefix + from;
      }
      if (to == sink_name) {
        to = "out";
        to_port = 0;
      } else {
        to = prefix + to;
      }
      merged.connections.push_back({from, from_port, to, to_port});
    }
  }
  return merged;
}

}  // namespace innet::platform
