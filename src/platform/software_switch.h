// The platform's back-end software switch (§5): forwards traffic addressed
// to tenant modules into their VMs, and hands unknown flows to the switch
// controller so it can instantiate VMs on the fly.
#ifndef SRC_PLATFORM_SOFTWARE_SWITCH_H_
#define SRC_PLATFORM_SOFTWARE_SWITCH_H_

#include <functional>
#include <unordered_map>

#include "src/netcore/packet.h"
#include "src/obs/flight_recorder.h"
#include "src/platform/vm.h"

namespace innet::platform {

class SoftwareSwitch {
 public:
  using MissHandler = std::function<void(Packet&)>;

  explicit SoftwareSwitch(VmManager* vms) : vms_(vms) {}

  // Static rule: all traffic to `dst` goes to VM `vm`.
  void AddAddressRule(Ipv4Address dst, Vm::VmId vm) { address_rules_[dst.value()] = vm; }
  void RemoveAddressRule(Ipv4Address dst) { address_rules_.erase(dst.value()); }

  // Exact-flow rule (5-tuple key), installed by the switch controller after
  // booting a per-flow VM.
  void AddFlowRule(uint64_t flow_key, Vm::VmId vm) { flow_rules_[flow_key] = vm; }
  void RemoveFlowRule(uint64_t flow_key) { flow_rules_.erase(flow_key); }

  // Removes every rule (address and flow) pointing at `vm` — used when a
  // guest is retired so a later tenant at the same address cannot inherit
  // stale forwarding state.
  void RemoveRulesForVm(Vm::VmId vm);

  // Switch-level fault injection: packets may be dropped or have a byte
  // flipped before forwarding. Pass nullptr to detach; the injector must
  // outlive the switch.
  void SetFaultInjector(sim::FaultInjector* injector) { fault_ = injector; }

  // Unknown traffic goes here (the controller port).
  void SetMissHandler(MissHandler handler) { miss_ = std::move(handler); }

  // Attaches the platform's flight recorder: every delivery, fault drop, and
  // no-rule drop leaves a breadcrumb in the ring (timestamped with the
  // packet's ingress sim time). Pass nullptr to detach.
  void SetFlightRecorder(obs::FlightRecorder* recorder) { flight_ = recorder; }

  // Traffic for a known rule whose VM is not currently running (suspended or
  // mid-transition) goes here, so the platform can resume the guest and
  // buffer the packet (§5 suspend/resume).
  using StalledHandler = std::function<void(Packet&, Vm::VmId)>;
  void SetStalledHandler(StalledHandler handler) { stalled_ = std::move(handler); }

  // Forwards `packet`: exact flow rules first, then address rules, then the
  // miss handler, then drop.
  void Deliver(Packet& packet);

  uint64_t delivered_count() const { return delivered_; }
  uint64_t missed_count() const { return missed_; }
  uint64_t dropped_count() const { return dropped_; }
  uint64_t fault_dropped_count() const { return fault_dropped_; }
  size_t flow_rule_count() const { return flow_rules_.size(); }

 private:
  VmManager* vms_;
  std::unordered_map<uint32_t, Vm::VmId> address_rules_;
  std::unordered_map<uint64_t, Vm::VmId> flow_rules_;
  MissHandler miss_;
  StalledHandler stalled_;
  sim::FaultInjector* fault_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  uint64_t delivered_ = 0;
  uint64_t missed_ = 0;
  uint64_t dropped_ = 0;
  uint64_t fault_dropped_ = 0;
};

}  // namespace innet::platform

#endif  // SRC_PLATFORM_SOFTWARE_SWITCH_H_
