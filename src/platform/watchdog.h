// Watchdog: the platform's periodic health sweep. It notices guests that
// crashed (boot failure or runtime fault), restarts them in place with
// exponential backoff, and retires guests that keep failing past the retry
// budget. While a guest is down, arriving traffic is held in the platform's
// bounded stalled buffers; the restart-complete path re-installs the guest's
// switch rules and flushes the buffer, so surviving flows continue with
// packet loss bounded by the buffer cap.
//
// All timing comes from the event queue, the backoff schedule from the
// config, and the fault stream from the platform's seeded injector — one
// seed reproduces the exact recovery timeline.
#ifndef SRC_PLATFORM_WATCHDOG_H_
#define SRC_PLATFORM_WATCHDOG_H_

#include <string>
#include <unordered_map>

#include "src/obs/metrics.h"
#include "src/platform/vm.h"
#include "src/sim/event_queue.h"

namespace innet::platform {

class InNetPlatform;

struct WatchdogConfig {
  // How often the sweep inspects guest health.
  sim::TimeNs sweep_interval = sim::FromMillis(25);
  // Restart backoff: delay before attempt n is
  //   min(backoff_cap, backoff_base * backoff_factor^n),  n = 0, 1, ...
  sim::TimeNs backoff_base = sim::FromMillis(10);
  double backoff_factor = 2.0;
  sim::TimeNs backoff_cap = sim::FromSeconds(2);
  // Failed restart attempts tolerated before the guest is retired (rules
  // removed, buffered packets dropped).
  int max_retries = 6;
};

struct WatchdogStats {
  uint64_t crashes_observed = 0;   // distinct crash episodes seen by the sweep
  uint64_t restarts = 0;           // restarts that reached running again
  uint64_t restart_failures = 0;   // attempts that failed (no memory / boot crashed)
  uint64_t gave_up = 0;            // guests retired after exhausting retries
  uint64_t packets_dropped_bounded = 0;  // bounded-buffer drops (platform-wide)
};

class Watchdog {
 public:
  Watchdog(sim::EventQueue* clock, InNetPlatform* platform, WatchdogConfig config);

  // Arms the periodic sweep. Idempotent.
  void Start();
  // Disarms it (pending sweep events become no-ops).
  void Stop() { running_ = false; }
  bool running() const { return running_; }

  const WatchdogConfig& config() const { return config_; }

  // Delay before restart attempt `attempt` (0-based). Exposed so tests can
  // assert the schedule directly.
  sim::TimeNs BackoffDelay(int attempt) const;

  // Snapshot of the counters. The authoritative values live in the metrics
  // registry as innet_watchdog_*_total{instance="N"}; this is a thin wrapper
  // reading them back (packets_dropped_bounded comes from the platform's
  // bounded-buffer accounting).
  WatchdogStats stats() const;

  // The instance label value this watchdog's registry counters carry.
  const std::string& instance_label() const { return instance_; }

  // Called by the platform when a restart it launched reached running.
  void OnRestartComplete(Vm::VmId id);

 private:
  struct Pending {
    int attempt = 0;        // failed attempts so far
    bool in_flight = false; // a restart was launched and has not completed
    sim::TimeNs next_try = 0;
  };

  void Sweep();

  sim::EventQueue* clock_;
  InNetPlatform* platform_;
  WatchdogConfig config_;
  bool running_ = false;
  std::unordered_map<Vm::VmId, Pending> pending_;
  std::string instance_;
  obs::Counter* ctr_crashes_observed_;
  obs::Counter* ctr_restarts_;
  obs::Counter* ctr_restart_failures_;
  obs::Counter* ctr_gave_up_;
};

}  // namespace innet::platform

#endif  // SRC_PLATFORM_WATCHDOG_H_
