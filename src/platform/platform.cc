#include "src/platform/platform.h"

namespace innet::platform {

Vm::VmId InNetPlatform::Install(Ipv4Address addr, const std::string& config_text,
                                std::string* error, VmKind kind, bool sandbox,
                                const std::vector<Ipv4Address>& sandbox_whitelist) {
  std::string effective = config_text;
  if (sandbox) {
    auto parsed = click::ConfigGraph::Parse(config_text, error);
    if (!parsed) {
      return 0;
    }
    auto wrapped = WrapWithEnforcer(*parsed, sandbox_whitelist, 60.0, error);
    if (!wrapped) {
      return 0;
    }
    effective = wrapped->ToString();
  }
  Vm* vm = vms_.Create(kind, effective,
                       [this](Vm* ready) {
                         AttachEgress(ready);
                         // Traffic that arrived during the boot was buffered
                         // by the stalled handler.
                         FlushStalled(ready->id());
                       },
                       error);
  if (vm == nullptr) {
    return 0;
  }
  switch_.AddAddressRule(addr, vm->id());
  installed_[addr.value()] = vm->id();
  return vm->id();
}

Vm::VmId InNetPlatform::InstallConsolidated(const std::vector<TenantConfig>& tenants,
                                            std::string* error) {
  auto merged = ConsolidateTenants(tenants, error);
  if (!merged) {
    return 0;
  }
  Vm* vm = vms_.Create(VmKind::kClickOs, merged->ToString(),
                       [this](Vm* ready) {
                         AttachEgress(ready);
                         FlushStalled(ready->id());
                       },
                       error);
  if (vm == nullptr) {
    return 0;
  }
  for (const TenantConfig& tenant : tenants) {
    switch_.AddAddressRule(tenant.addr, vm->id());
    installed_[tenant.addr.value()] = vm->id();
  }
  return vm->id();
}

bool InNetPlatform::UninstallVm(Vm::VmId vm_id) {
  bool found = false;
  for (auto it = installed_.begin(); it != installed_.end();) {
    if (it->second == vm_id) {
      switch_.RemoveAddressRule(Ipv4Address(it->first));
      it = installed_.erase(it);
      found = true;
    } else {
      ++it;
    }
  }
  stalled_buffers_.erase(vm_id);
  return vms_.Destroy(vm_id) || found;
}

bool InNetPlatform::Uninstall(Ipv4Address addr) {
  auto it = installed_.find(addr.value());
  if (it == installed_.end()) {
    return false;
  }
  switch_.RemoveAddressRule(addr);
  vms_.Destroy(it->second);
  installed_.erase(it);
  return true;
}

void InNetPlatform::RegisterOnDemand(Ipv4Address addr, const std::string& config_text,
                                     VmKind kind, bool per_flow) {
  OnDemandEntry entry;
  entry.config_text = config_text;
  entry.kind = kind;
  entry.per_flow = per_flow;
  ondemand_[addr.value()] = std::move(entry);
}

void InNetPlatform::HandlePacket(Packet& packet) {
  packet.set_timestamp_ns(clock_->now());
  switch_.Deliver(packet);
}

void InNetPlatform::EnableIdleSuspend(sim::TimeNs idle_timeout) {
  idle_timeout_ = idle_timeout;
  if (!idle_sweeper_armed_ && idle_timeout_ > 0) {
    idle_sweeper_armed_ = true;
    clock_->ScheduleAfter(idle_timeout_ / 2, [this] { IdleSweep(); });
  }
}

void InNetPlatform::IdleSweep() {
  if (idle_timeout_ == 0) {
    idle_sweeper_armed_ = false;
    return;
  }
  // Collect candidates first: Suspend() mutates state.
  std::vector<Vm::VmId> idle;
  for (const auto& [addr, vm_id] : installed_) {
    Vm* vm = vms_.Find(vm_id);
    if (vm != nullptr && vm->state() == VmState::kRunning &&
        clock_->now() - vm->last_activity_ns() >= idle_timeout_) {
      idle.push_back(vm_id);
    }
  }
  for (Vm::VmId vm_id : idle) {
    ++idle_suspends_;
    vms_.Suspend(vm_id, [this, vm_id] {
      // Traffic may have arrived while the suspend was in flight: resume
      // immediately rather than dropping the flow.
      if (stalled_buffers_.count(vm_id) != 0) {
        vms_.Resume(vm_id, [this, vm_id] { FlushStalled(vm_id); });
      }
    });
  }
  clock_->ScheduleAfter(idle_timeout_ / 2, [this] { IdleSweep(); });
}

void InNetPlatform::OnStalled(Packet& packet, Vm::VmId vm_id) {
  stalled_buffers_[vm_id].push_back(packet);
  ++buffered_;
  Vm* vm = vms_.Find(vm_id);
  if (vm != nullptr && vm->state() == VmState::kSuspended) {
    ++resumes_on_traffic_;
    vms_.Resume(vm_id, [this, vm_id] { FlushStalled(vm_id); });
  }
  // kBooting / kSuspending / kResuming: a completion callback already queued
  // (boot ready, the suspend-done check above, or an earlier resume) will
  // flush the buffer.
}

void InNetPlatform::FlushStalled(Vm::VmId vm_id) {
  auto it = stalled_buffers_.find(vm_id);
  if (it == stalled_buffers_.end()) {
    return;
  }
  std::deque<Packet> buffer = std::move(it->second);
  stalled_buffers_.erase(it);
  Vm* vm = vms_.Find(vm_id);
  if (vm == nullptr) {
    return;
  }
  for (Packet& packet : buffer) {
    vm->Inject(packet);
  }
}

size_t InNetPlatform::suspended_count() const {
  size_t count = 0;
  for (const auto& [addr, vm_id] : installed_) {
    const Vm* vm = const_cast<VmManager&>(vms_).Find(vm_id);
    if (vm != nullptr && vm->state() == VmState::kSuspended) {
      ++count;
    }
  }
  return count;
}

void InNetPlatform::AttachEgress(Vm* vm) {
  vm->SetEgressHandler([this](Packet& packet) {
    if (egress_) {
      egress_(packet);
    }
  });
}

void InNetPlatform::OnMiss(Packet& packet) {
  auto entry_it = ondemand_.find(packet.ip_dst().value());
  if (entry_it == ondemand_.end()) {
    return;  // genuinely unknown traffic: dropped at the controller port
  }
  OnDemandEntry& entry = entry_it->second;

  if (!entry.per_flow) {
    uint32_t addr = packet.ip_dst().value();
    auto pending = pending_addrs_.find(addr);
    if (pending != pending_addrs_.end()) {
      pending->second.buffer.push_back(packet);
      ++buffered_;
      return;
    }
    // First packet for this tenant: boot the shared VM and buffer.
    pending_addrs_[addr].buffer.push_back(packet);
    ++buffered_;
    ++ondemand_boots_;
    std::string error;
    vms_.Create(entry.kind, entry.config_text,
                [this, addr](Vm* vm) {
                  AttachEgress(vm);
                  switch_.AddAddressRule(Ipv4Address(addr), vm->id());
                  ondemand_[addr].shared_vm = vm->id();
                  installed_[addr] = vm->id();  // idle management covers it
                  auto flushed = pending_addrs_.find(addr);
                  if (flushed != pending_addrs_.end()) {
                    for (Packet& buffered : flushed->second.buffer) {
                      vm->Inject(buffered);
                    }
                    pending_addrs_.erase(flushed);
                  }
                },
                &error);
    return;
  }

  // Per-flow instantiation: a new flow = TCP SYN or any UDP/ICMP packet for
  // an unknown 5-tuple (§5's switch-controller heuristic).
  uint64_t key = packet.FlowKey();
  auto pending = pending_flows_.find(key);
  if (pending != pending_flows_.end()) {
    pending->second.buffer.push_back(packet);
    ++buffered_;
    return;
  }
  pending_flows_[key].buffer.push_back(packet);
  ++buffered_;
  ++ondemand_boots_;
  std::string error;
  vms_.Create(entry.kind, entry.config_text,
              [this, key](Vm* vm) {
                AttachEgress(vm);
                switch_.AddFlowRule(key, vm->id());
                auto flushed = pending_flows_.find(key);
                if (flushed != pending_flows_.end()) {
                  for (Packet& buffered : flushed->second.buffer) {
                    vm->Inject(buffered);
                  }
                  pending_flows_.erase(flushed);
                }
              },
              &error);
}

}  // namespace innet::platform
