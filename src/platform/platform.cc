#include "src/platform/platform.h"

#include "src/obs/health.h"
#include "src/obs/trace.h"

namespace innet::platform {

namespace {

// Consolidated graphs prefix each tenant's element names with "t<i>_" in
// merge order; map that prefix back to the tenant label ("" when the name
// doesn't carry one, e.g. shared glue elements).
std::string TenantForElement(const std::string& element_name,
                             const std::vector<std::string>& tenants) {
  if (element_name.size() < 3 || element_name[0] != 't') {
    return "";
  }
  size_t i = 1;
  size_t index = 0;
  while (i < element_name.size() && element_name[i] >= '0' && element_name[i] <= '9') {
    index = index * 10 + static_cast<size_t>(element_name[i] - '0');
    ++i;
  }
  if (i == 1 || i >= element_name.size() || element_name[i] != '_' || index >= tenants.size()) {
    return "";
  }
  return tenants[index];
}

}  // namespace

Vm::VmId InNetPlatform::Install(Ipv4Address addr, const std::string& config_text,
                                std::string* error, VmKind kind, bool sandbox,
                                const std::vector<Ipv4Address>& sandbox_whitelist) {
  std::string effective = config_text;
  if (sandbox) {
    auto parsed = click::ConfigGraph::Parse(config_text, error);
    if (!parsed) {
      return 0;
    }
    auto wrapped = WrapWithEnforcer(*parsed, sandbox_whitelist, 60.0, error);
    if (!wrapped) {
      return 0;
    }
    effective = wrapped->ToString();
  }
  Vm* vm = vms_.Create(kind, effective,
                       [this](Vm* ready) {
                         AttachEgress(ready);
                         // Traffic that arrived during the boot was buffered
                         // by the stalled handler.
                         FlushStalled(ready->id());
                       },
                       error);
  if (vm == nullptr) {
    return 0;
  }
  switch_.AddAddressRule(addr, vm->id());
  installed_[addr.value()] = vm->id();
  vm_rules_[vm->id()].addrs.push_back(addr.value());
  return vm->id();
}

Vm::VmId InNetPlatform::InstallConsolidated(const std::vector<TenantConfig>& tenants,
                                            std::string* error) {
  auto merged = ConsolidateTenants(tenants, error);
  if (!merged) {
    return 0;
  }
  Vm* vm = vms_.Create(VmKind::kClickOs, merged->ToString(),
                       [this](Vm* ready) {
                         AttachEgress(ready);
                         FlushStalled(ready->id());
                       },
                       error);
  if (vm == nullptr) {
    return 0;
  }
  // Remember the tenant order: the merged graph prefixes each tenant's
  // elements "t<i>_", so metric export can attribute element counters back
  // to the tenant that owns them.
  std::vector<std::string>& tenant_labels = consolidated_tenants_[vm->id()];
  for (const TenantConfig& tenant : tenants) {
    tenant_labels.push_back(tenant.addr.ToString());
    switch_.AddAddressRule(tenant.addr, vm->id());
    installed_[tenant.addr.value()] = vm->id();
    vm_rules_[vm->id()].addrs.push_back(tenant.addr.value());
  }
  return vm->id();
}

bool InNetPlatform::UninstallVm(Vm::VmId vm_id) {
  bool found = false;
  for (auto it = installed_.begin(); it != installed_.end();) {
    if (it->second == vm_id) {
      it = installed_.erase(it);
      found = true;
    } else {
      ++it;
    }
  }
  switch_.RemoveRulesForVm(vm_id);
  auto stalled = stalled_buffers_.find(vm_id);
  if (stalled != stalled_buffers_.end()) {
    abandoned_packets_ += stalled->second.size();
    ctr_abandoned_->Increment(stalled->second.size());
    stalled_buffers_.erase(stalled);
  }
  for (auto& [addr, entry] : ondemand_) {
    if (entry.shared_vm == vm_id) {
      entry.shared_vm = 0;  // next packet boots a fresh guest
    }
  }
  vm_rules_.erase(vm_id);
  migrating_out_.erase(vm_id);
  consolidated_tenants_.erase(vm_id);
  return vms_.Destroy(vm_id) || found;
}

void InNetPlatform::CancelMigrationOut(Vm::VmId vm_id) {
  if (migrating_out_.erase(vm_id) == 0) {
    return;
  }
  Vm* vm = vms_.Find(vm_id);
  if (vm != nullptr && vm->state() == VmState::kSuspended &&
      stalled_buffers_.count(vm_id) != 0) {
    ++resumes_on_traffic_;
    ctr_traffic_resumes_->Increment();
    vms_.Resume(vm_id, [this, vm_id] { FlushStalled(vm_id); });
  }
}

std::optional<InNetPlatform::MigratedVm> InNetPlatform::DetachForMigration(Vm::VmId vm_id) {
  Vm* vm = vms_.Find(vm_id);
  if (vm == nullptr || vm->state() != VmState::kSuspended) {
    return std::nullopt;
  }
  MigratedVm moved;
  auto stalled = stalled_buffers_.find(vm_id);
  if (stalled != stalled_buffers_.end()) {
    moved.parked = std::move(stalled->second);
    stalled_buffers_.erase(stalled);
  }
  auto snapshot = vms_.ExportSuspended(vm_id);
  if (!snapshot) {  // unreachable given the state check; keep the buffer safe
    if (!moved.parked.empty()) {
      stalled_buffers_[vm_id] = std::move(moved.parked);
    }
    return std::nullopt;
  }
  moved.snapshot = std::move(*snapshot);
  for (auto it = installed_.begin(); it != installed_.end();) {
    it = it->second == vm_id ? installed_.erase(it) : std::next(it);
  }
  switch_.RemoveRulesForVm(vm_id);
  for (auto& [addr, entry] : ondemand_) {
    if (entry.shared_vm == vm_id) {
      entry.shared_vm = 0;
    }
  }
  vm_rules_.erase(vm_id);
  migrating_out_.erase(vm_id);
  consolidated_tenants_.erase(vm_id);
  return moved;
}

Vm::VmId InNetPlatform::InstallMigrated(Ipv4Address addr, VmSnapshot* snapshot,
                                        std::string* error) {
  Vm* vm = vms_.ImportSnapshot(snapshot, [this](Vm* ready) { FlushStalled(ready->id()); },
                               error);
  if (vm == nullptr) {
    return 0;
  }
  // The graph's egress sinks still point into the source platform: re-bind
  // them before any packet can reach the guest.
  AttachEgress(vm);
  switch_.AddAddressRule(addr, vm->id());
  installed_[addr.value()] = vm->id();
  vm_rules_[vm->id()].addrs.push_back(addr.value());
  return vm->id();
}

bool InNetPlatform::Uninstall(Ipv4Address addr) {
  auto it = installed_.find(addr.value());
  bool existed = it != installed_.end();
  if (existed) {
    UninstallVm(it->second);
  }
  // Clear pre-boot bookkeeping for the address too, so a reinstall cannot
  // replay packets buffered for the previous tenant.
  auto pending = pending_addrs_.find(addr.value());
  if (pending != pending_addrs_.end()) {
    abandoned_packets_ += pending->second.buffer.size();
    ctr_abandoned_->Increment(pending->second.buffer.size());
    pending_addrs_.erase(pending);
  }
  for (auto flow = pending_flows_.begin(); flow != pending_flows_.end();) {
    if (flow->second.addr == addr.value()) {
      abandoned_packets_ += flow->second.buffer.size();
      ctr_abandoned_->Increment(flow->second.buffer.size());
      flow = pending_flows_.erase(flow);
    } else {
      ++flow;
    }
  }
  return existed;
}

void InNetPlatform::RegisterOnDemand(Ipv4Address addr, const std::string& config_text,
                                     VmKind kind, bool per_flow) {
  OnDemandEntry entry;
  entry.config_text = config_text;
  entry.kind = kind;
  entry.per_flow = per_flow;
  ondemand_[addr.value()] = std::move(entry);
}

void InNetPlatform::HandlePacket(Packet& packet) {
  packet.set_timestamp_ns(clock_->now());
  switch_.Deliver(packet);
}

void InNetPlatform::EnableIdleSuspend(sim::TimeNs idle_timeout) {
  idle_timeout_ = idle_timeout;
  if (!idle_sweeper_armed_ && idle_timeout_ > 0) {
    idle_sweeper_armed_ = true;
    clock_->ScheduleAfter(idle_timeout_ / 2, [this] { IdleSweep(); });
  }
}

void InNetPlatform::IdleSweep() {
  if (idle_timeout_ == 0) {
    idle_sweeper_armed_ = false;
    return;
  }
  // Collect candidates first: Suspend() mutates state.
  std::vector<Vm::VmId> idle;
  for (const auto& [addr, vm_id] : installed_) {
    Vm* vm = vms_.Find(vm_id);
    if (vm != nullptr && vm->state() == VmState::kRunning &&
        clock_->now() - vm->last_activity_ns() >= idle_timeout_ &&
        migrating_out_.count(vm_id) == 0) {
      idle.push_back(vm_id);
    }
  }
  for (Vm::VmId vm_id : idle) {
    ++idle_suspends_;
    ctr_idle_suspends_->Increment();
    vms_.Suspend(vm_id, [this, vm_id] {
      // Traffic may have arrived while the suspend was in flight: resume
      // immediately rather than dropping the flow.
      if (stalled_buffers_.count(vm_id) != 0) {
        vms_.Resume(vm_id, [this, vm_id] { FlushStalled(vm_id); });
      }
    });
  }
  clock_->ScheduleAfter(idle_timeout_ / 2, [this] { IdleSweep(); });
}

bool InNetPlatform::BufferWithCap(std::deque<Packet>* buffer, Packet& packet,
                                  const std::string& owner) {
  if (buffer->size() >= buffer_cap_) {
    ++buffer_drops_;
    ctr_buffer_drops_->Increment();
    obs::Health().CountDrop(owner);
    flight_.Record(clock_->now(), obs::EventKind::kBufferDrop, "platform", owner,
                   static_cast<int64_t>(buffer->size()));
    if (obs::Tracer().enabled()) {
      obs::Tracer().Record(clock_->now(), obs::EventKind::kBufferDrop, "platform", "",
                           static_cast<int64_t>(buffer->size()));
    }
    return false;
  }
  buffer->push_back(packet);
  ++buffered_;
  ctr_buffered_->Increment();
  obs::Health().CountBuffered(owner);
  flight_.Record(clock_->now(), obs::EventKind::kBufferEnqueue, "platform", owner,
                 static_cast<int64_t>(buffer->size()));
  if (obs::Tracer().enabled()) {
    obs::Tracer().Record(clock_->now(), obs::EventKind::kBufferEnqueue, "platform", "",
                         static_cast<int64_t>(buffer->size()));
  }
  return true;
}

void InNetPlatform::OnStalled(Packet& packet, Vm::VmId vm_id) {
  BufferWithCap(&stalled_buffers_[vm_id], packet, OwnerOf(vm_id));
  Vm* vm = vms_.Find(vm_id);
  if (migrating_out_.count(vm_id) != 0) {
    return;  // migrating out: the parked traffic moves with the guest
  }
  if (vm != nullptr && vm->state() == VmState::kSuspended) {
    ++resumes_on_traffic_;
    ctr_traffic_resumes_->Increment();
    vms_.Resume(vm_id, [this, vm_id] { FlushStalled(vm_id); });
  }
  // kBooting / kSuspending / kResuming: a completion callback already queued
  // (boot ready, the suspend-done check above, or an earlier resume) will
  // flush the buffer. kCrashed: the watchdog's restart path flushes it.
}

void InNetPlatform::FlushStalled(Vm::VmId vm_id) {
  auto it = stalled_buffers_.find(vm_id);
  if (it == stalled_buffers_.end()) {
    return;
  }
  std::deque<Packet> buffer = std::move(it->second);
  stalled_buffers_.erase(it);
  Vm* vm = vms_.Find(vm_id);
  if (vm == nullptr) {
    return;
  }
  for (Packet& packet : buffer) {
    vm->Inject(packet);
  }
}

void InNetPlatform::ReinstallRules(Vm::VmId vm_id) {
  auto it = vm_rules_.find(vm_id);
  if (it == vm_rules_.end()) {
    return;
  }
  for (uint32_t addr : it->second.addrs) {
    switch_.AddAddressRule(Ipv4Address(addr), vm_id);
    installed_[addr] = vm_id;
    auto entry = ondemand_.find(addr);
    if (entry != ondemand_.end() && !entry->second.per_flow) {
      entry->second.shared_vm = vm_id;
    }
  }
  for (uint64_t key : it->second.flow_keys) {
    switch_.AddFlowRule(key, vm_id);
  }
}

void InNetPlatform::FlushPendingFor(Vm::VmId vm_id, Vm* vm) {
  // Drain pre-boot buffers the original ready callback would have flushed —
  // it never ran if that boot crashed.
  auto it = vm_rules_.find(vm_id);
  if (it == vm_rules_.end()) {
    return;
  }
  for (uint32_t addr : it->second.addrs) {
    auto pending = pending_addrs_.find(addr);
    if (pending != pending_addrs_.end()) {
      for (Packet& buffered : pending->second.buffer) {
        vm->Inject(buffered);
      }
      pending_addrs_.erase(pending);
    }
  }
  for (uint64_t key : it->second.flow_keys) {
    auto pending = pending_flows_.find(key);
    if (pending != pending_flows_.end()) {
      for (Packet& buffered : pending->second.buffer) {
        vm->Inject(buffered);
      }
      pending_flows_.erase(pending);
    }
  }
}

bool InNetPlatform::RestartCrashedVm(Vm::VmId vm_id, std::string* error) {
  return vms_.Restart(
      vm_id,
      [this, vm_id](Vm* vm) {
        AttachEgress(vm);  // the crash rebuilt the graph: re-bind sinks
        ReinstallRules(vm_id);
        FlushPendingFor(vm_id, vm);
        FlushStalled(vm_id);
        if (watchdog_ != nullptr) {
          watchdog_->OnRestartComplete(vm_id);
        }
      },
      error);
}

size_t InNetPlatform::suspended_count() const {
  size_t count = 0;
  for (const auto& [addr, vm_id] : installed_) {
    const Vm* vm = const_cast<VmManager&>(vms_).Find(vm_id);
    if (vm != nullptr && vm->state() == VmState::kSuspended) {
      ++count;
    }
  }
  return count;
}

void InNetPlatform::AttachEgress(Vm* vm) {
  vm->SetEgressHandler([this, vm_id = vm->id()](Packet& packet) {
    flight_.Record(clock_->now(), obs::EventKind::kPacketEgress, "vm:" + std::to_string(vm_id),
                   "", static_cast<int64_t>(packet.length()));
    if (egress_) {
      egress_(packet);
    }
  });
}

void InNetPlatform::OnMiss(Packet& packet) {
  auto entry_it = ondemand_.find(packet.ip_dst().value());
  if (entry_it == ondemand_.end()) {
    return;  // genuinely unknown traffic: dropped at the controller port
  }
  ctr_flow_misses_->Increment();
  // The miss opens a span: the buffer events and on-demand boot below parent
  // to it, so one first-packet event reads as a single tree in the trace.
  std::optional<obs::SpanScope> miss_span;
  if (obs::Tracer().enabled()) {
    miss_span.emplace(obs::Tracer(), clock_->now(), obs::EventKind::kFlowFirstPacketMiss,
                      "platform", "dst=" + packet.ip_dst().ToString());
  }
  OnDemandEntry& entry = entry_it->second;

  if (!entry.per_flow) {
    uint32_t addr = packet.ip_dst().value();
    auto pending = pending_addrs_.find(addr);
    if (pending != pending_addrs_.end()) {
      BufferWithCap(&pending->second.buffer, packet);
      return;
    }
    // First packet for this tenant: boot the shared VM and buffer.
    PendingFlow& fresh = pending_addrs_[addr];
    fresh.addr = addr;
    BufferWithCap(&fresh.buffer, packet);
    ++ondemand_boots_;
    ctr_ondemand_boots_->Increment();
    std::string error;
    Vm* created = vms_.Create(entry.kind, entry.config_text,
                         [this, addr](Vm* vm) {
                           AttachEgress(vm);
                           switch_.AddAddressRule(Ipv4Address(addr), vm->id());
                           ondemand_[addr].shared_vm = vm->id();
                           installed_[addr] = vm->id();  // idle management covers it
                           auto flushed = pending_addrs_.find(addr);
                           if (flushed != pending_addrs_.end()) {
                             for (Packet& buffered : flushed->second.buffer) {
                               vm->Inject(buffered);
                             }
                             pending_addrs_.erase(flushed);
                           }
                         },
                         &error);
    if (created != nullptr) {
      // Record the intended rule now, not in the ready callback: if the boot
      // crashes, the watchdog's restart path must still know which address
      // this guest serves (and drain its pre-boot buffer).
      vm_rules_[created->id()].addrs.push_back(addr);
    }
    return;
  }

  // Per-flow instantiation: a new flow = TCP SYN or any UDP/ICMP packet for
  // an unknown 5-tuple (§5's switch-controller heuristic).
  uint64_t key = packet.FlowKey();
  auto pending = pending_flows_.find(key);
  if (pending != pending_flows_.end()) {
    BufferWithCap(&pending->second.buffer, packet);
    return;
  }
  PendingFlow& fresh = pending_flows_[key];
  fresh.addr = packet.ip_dst().value();
  BufferWithCap(&fresh.buffer, packet);
  ++ondemand_boots_;
  ctr_ondemand_boots_->Increment();
  std::string error;
  Vm* created = vms_.Create(entry.kind, entry.config_text,
                       [this, key](Vm* vm) {
                         AttachEgress(vm);
                         switch_.AddFlowRule(key, vm->id());
                         auto flushed = pending_flows_.find(key);
                         if (flushed != pending_flows_.end()) {
                           for (Packet& buffered : flushed->second.buffer) {
                             vm->Inject(buffered);
                           }
                           pending_flows_.erase(flushed);
                         }
                       },
                       &error);
  if (created != nullptr) {
    vm_rules_[created->id()].flow_keys.push_back(key);
  }
}

size_t InNetPlatform::buffer_occupancy() const {
  size_t occupancy = 0;
  for (const auto& [vm_id, buffer] : stalled_buffers_) {
    occupancy += buffer.size();
  }
  for (const auto& [key, pending] : pending_flows_) {
    occupancy += pending.buffer.size();
  }
  for (const auto& [addr, pending] : pending_addrs_) {
    occupancy += pending.buffer.size();
  }
  return occupancy;
}

void InNetPlatform::ExportMetrics(obs::MetricsRegistry* registry) const {
  registry->GetGauge("innet_platform_buffer_occupancy_packets")
      ->Set(static_cast<double>(buffer_occupancy()));
  registry->GetGauge("innet_vm_running")->Set(static_cast<double>(vms_.running_count()));
  registry->GetGauge("innet_vm_suspended")->Set(static_cast<double>(suspended_count()));
  registry->GetGauge("innet_vm_crashed")->Set(static_cast<double>(vms_.crashed_count()));
  registry->GetGauge("innet_vm_memory_used_bytes")->Set(static_cast<double>(vms_.memory_used()));
  registry->GetGauge("innet_vm_memory_total_bytes")
      ->Set(static_cast<double>(vms_.memory_total()));
  registry->GetCounter("innet_switch_delivered_total")->SetTo(switch_.delivered_count());
  registry->GetCounter("innet_switch_missed_total")->SetTo(switch_.missed_count());
  registry->GetCounter("innet_switch_dropped_total")->SetTo(switch_.dropped_count());
  registry->GetCounter("innet_switch_fault_dropped_total")->SetTo(switch_.fault_dropped_count());
  flight_.ExportMetrics(registry);

  // Per-guest element counters. AllIds is sorted, so instrument creation
  // order (and therefore the dump) is deterministic. Consolidated guests get
  // per-element tenant attribution from the t<i>_ name prefix; dedicated
  // guests inherit the guest's owner wholesale.
  VmManager& vms = const_cast<VmManager&>(vms_);
  for (Vm::VmId id : vms_.AllIds()) {
    Vm* vm = vms.Find(id);
    if (vm == nullptr || vm->graph() == nullptr) {
      continue;  // crashed or suspended-out guests have no live counters
    }
    obs::Labels base = {{"vm", std::to_string(id)}};
    auto consolidated = consolidated_tenants_.find(id);
    if (consolidated == consolidated_tenants_.end()) {
      base.emplace_back("tenant", vm->owner());
      vm->graph()->ExportMetrics(registry, base);
      continue;
    }
    const std::vector<std::string>& tenants = consolidated->second;
    for (const auto& element : vm->graph()->elements()) {
      obs::Labels labels = base;
      labels.emplace_back("tenant", TenantForElement(element->name(), tenants));
      labels.emplace_back("element", element->name());
      labels.emplace_back("class", std::string(element->class_name()));
      registry->GetCounter("innet_element_packets_total", labels)->SetTo(element->packets());
      registry->GetCounter("innet_element_bytes_total", labels)->SetTo(element->bytes());
      registry->GetCounter("innet_element_drops_total", labels)->SetTo(element->drops());
      registry->GetCounter("innet_element_proc_ns_total", labels)->SetTo(element->proc_ns());
      for (int port = 0; port < element->n_outputs(); ++port) {
        obs::Labels port_labels = labels;
        port_labels.emplace_back("port", std::to_string(port));
        registry->GetCounter("innet_element_port_packets_total", port_labels)
            ->SetTo(element->port_packets(port));
      }
    }
    if (vm->graph()->profiler() != nullptr) {
      vm->graph()->profiler()->ExportMetrics(registry, base);
    }
  }
}

void InNetPlatform::WriteFoldedStacks(std::ostream& out) const {
  VmManager& vms = const_cast<VmManager&>(vms_);
  for (Vm::VmId id : vms_.AllIds()) {
    Vm* vm = vms.Find(id);
    if (vm != nullptr && vm->graph() != nullptr) {
      vm->graph()->WriteFolded(out);
    }
  }
}

void InNetPlatform::TakePostmortem(obs::EventKind trigger, Vm::VmId vm_id,
                                   const std::string& detail) {
  std::string target = "vm:" + std::to_string(vm_id);
  // The trigger itself is the newest ring entry, so a rendered bundle always
  // ends with the event that caused it.
  flight_.Record(clock_->now(), trigger, target, detail);

  obs::PostmortemBundle bundle;
  bundle.time_ns = clock_->now();
  bundle.trigger = trigger;
  bundle.target = target;
  bundle.detail = detail;
  Vm* vm = vms_.Find(vm_id);
  auto consolidated = consolidated_tenants_.find(vm_id);
  if (consolidated != consolidated_tenants_.end()) {
    // A consolidated guest serves several tenants; join them so the bundle
    // names everyone affected by the crash.
    for (const std::string& tenant : consolidated->second) {
      if (!bundle.tenant.empty()) {
        bundle.tenant += ",";
      }
      bundle.tenant += tenant;
    }
  }
  if (vm != nullptr) {
    if (bundle.tenant.empty()) {
      bundle.tenant = vm->owner();
    }
    bundle.span = vm->trace_span();
    if (vm->graph() != nullptr) {
      for (const auto& element : vm->graph()->elements()) {
        obs::ElementCounterDelta delta;
        delta.element = element->name();
        delta.element_class = std::string(element->class_name());
        delta.packets = element->packets();
        delta.bytes = element->bytes();
        delta.drops = element->drops();
        delta.proc_ns = element->proc_ns();
        bundle.elements.push_back(std::move(delta));
      }
    }
  }
  if (bundle.elements.empty()) {
    // The graph is already gone (watchdog give-up long after the crash, or
    // the whole VM record was torn down): fall back to the counters from the
    // guest's last bundle, or failing that the last periodic sweep capture.
    const std::vector<obs::ElementCounterDelta>* last = flight_.LastElementsFor(target);
    if (last != nullptr) {
      bundle.elements = *last;
    }
  }
  if (obs::Health().enabled()) {
    bundle.health = obs::HealthStateName(obs::Health().CurrentState(bundle.tenant));
  }
  if (obs::Tracer().enabled()) {
    obs::Tracer().Record(clock_->now(), obs::EventKind::kPostmortemSnapshot, target, detail, 0,
                         bundle.span);
  }
  flight_.SnapshotPostmortem(std::move(bundle));
}

void InNetPlatform::SnapshotElementCounters() {
  for (Vm::VmId id : vms_.AllIds()) {
    Vm* vm = vms_.Find(id);
    if (vm == nullptr || vm->graph() == nullptr) {
      continue;
    }
    std::vector<obs::ElementCounterDelta> elements;
    for (const auto& element : vm->graph()->elements()) {
      obs::ElementCounterDelta delta;
      delta.element = element->name();
      delta.element_class = std::string(element->class_name());
      delta.packets = element->packets();
      delta.bytes = element->bytes();
      delta.drops = element->drops();
      delta.proc_ns = element->proc_ns();
      elements.push_back(std::move(delta));
    }
    flight_.NotePeriodicElements("vm:" + std::to_string(id), std::move(elements));
  }
}

}  // namespace innet::platform
