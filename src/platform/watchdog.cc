#include "src/platform/watchdog.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/obs/health.h"
#include "src/obs/trace.h"
#include "src/platform/platform.h"

namespace innet::platform {

Watchdog::Watchdog(sim::EventQueue* clock, InNetPlatform* platform, WatchdogConfig config)
    : clock_(clock), platform_(platform), config_(config) {
  // Per-instance labels keep stats() per-watchdog even though the registry is
  // process-wide (tests build many platforms in one process).
  static uint64_t next_instance = 0;
  instance_ = std::to_string(next_instance++);
  obs::Labels labels = {{"instance", instance_}};
  auto& registry = obs::Registry();
  ctr_crashes_observed_ = registry.GetCounter("innet_watchdog_crashes_observed_total", labels);
  ctr_restarts_ = registry.GetCounter("innet_watchdog_restarts_total", labels);
  ctr_restart_failures_ = registry.GetCounter("innet_watchdog_restart_failures_total", labels);
  ctr_gave_up_ = registry.GetCounter("innet_watchdog_gave_up_total", labels);
}

void Watchdog::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  clock_->ScheduleAfter(config_.sweep_interval, [this] { Sweep(); });
}

sim::TimeNs Watchdog::BackoffDelay(int attempt) const {
  double delay = static_cast<double>(config_.backoff_base) *
                 std::pow(config_.backoff_factor, attempt);
  double cap = static_cast<double>(config_.backoff_cap);
  return static_cast<sim::TimeNs>(delay < cap ? delay : cap);
}

WatchdogStats Watchdog::stats() const {
  WatchdogStats out;
  out.crashes_observed = ctr_crashes_observed_->value();
  out.restarts = ctr_restarts_->value();
  out.restart_failures = ctr_restart_failures_->value();
  out.gave_up = ctr_gave_up_->value();
  out.packets_dropped_bounded = platform_->buffer_drops();
  return out;
}

void Watchdog::OnRestartComplete(Vm::VmId id) {
  ctr_restarts_->Increment();
  if (obs::Tracer().enabled()) {
    // Parent to the guest's restart span so the recovery reads as one tree.
    Vm* vm = platform_->vms().Find(id);
    obs::Tracer().Record(clock_->now(), obs::EventKind::kWatchdogRestart,
                         "vm:" + std::to_string(id), "", 0,
                         vm != nullptr ? vm->trace_span() : 0);
  }
  pending_.erase(id);
}

void Watchdog::Sweep() {
  if (!running_) {
    return;
  }
  // Capture every live graph's element counters first, so a postmortem taken
  // later this sweep (or any time after a graph is torn down) can fall back
  // to counters at most one sweep interval stale.
  platform_->SnapshotElementCounters();
  // Recover the least-healthy tenants' guests first: crashed ids come back
  // ascending, then a stable sort moves higher health severity (violated >
  // degraded > ok/unattributed) to the front — deterministic either way.
  std::vector<Vm::VmId> crashed = platform_->vms().CrashedIds();
  if (obs::Health().enabled()) {
    std::stable_sort(crashed.begin(), crashed.end(), [this](Vm::VmId a, Vm::VmId b) {
      return obs::Health().Severity(platform_->OwnerOf(a)) >
             obs::Health().Severity(platform_->OwnerOf(b));
    });
  }
  for (Vm::VmId id : crashed) {
    auto it = pending_.find(id);
    if (it == pending_.end()) {
      // Fresh crash episode: schedule the first restart one backoff away.
      ctr_crashes_observed_->Increment();
      Pending entry;
      entry.next_try = clock_->now() + BackoffDelay(0);
      pending_.emplace(id, entry);
      continue;
    }
    Pending& pending = it->second;
    if (pending.in_flight) {
      // The restart we launched ended crashed again (boot failure).
      pending.in_flight = false;
      ++pending.attempt;
      ctr_restart_failures_->Increment();
      pending.next_try = clock_->now() + BackoffDelay(pending.attempt);
    }
    if (pending.attempt > config_.max_retries) {
      ctr_gave_up_->Increment();
      if (obs::Tracer().enabled()) {
        obs::Tracer().Record(clock_->now(), obs::EventKind::kWatchdogGiveUp, "vm:" + std::to_string(id));
      }
      platform_->TakePostmortem(obs::EventKind::kWatchdogGiveUp, id,
                                "retries exhausted after " + std::to_string(pending.attempt - 1) +
                                    " restarts");
      platform_->RetireCrashedVm(id);
      pending_.erase(it);
      continue;
    }
    if (clock_->now() < pending.next_try) {
      continue;
    }
    std::string error;
    if (platform_->RestartCrashedVm(id, &error)) {
      pending.in_flight = true;
    } else {
      // Immediate failure (memory exhausted): count it and back off.
      ++pending.attempt;
      ctr_restart_failures_->Increment();
      if (pending.attempt > config_.max_retries) {
        ctr_gave_up_->Increment();
        if (obs::Tracer().enabled()) {
          obs::Tracer().Record(clock_->now(), obs::EventKind::kWatchdogGiveUp, "vm:" + std::to_string(id));
        }
        platform_->TakePostmortem(obs::EventKind::kWatchdogGiveUp, id, error);
        platform_->RetireCrashedVm(id);
        pending_.erase(it);
        continue;
      }
      pending.next_try = clock_->now() + BackoffDelay(pending.attempt);
    }
  }
  clock_->ScheduleAfter(config_.sweep_interval, [this] { Sweep(); });
}

}  // namespace innet::platform
