#include "src/platform/watchdog.h"

#include <cmath>
#include <string>

#include "src/platform/platform.h"

namespace innet::platform {

void Watchdog::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  clock_->ScheduleAfter(config_.sweep_interval, [this] { Sweep(); });
}

sim::TimeNs Watchdog::BackoffDelay(int attempt) const {
  double delay = static_cast<double>(config_.backoff_base) *
                 std::pow(config_.backoff_factor, attempt);
  double cap = static_cast<double>(config_.backoff_cap);
  return static_cast<sim::TimeNs>(delay < cap ? delay : cap);
}

WatchdogStats Watchdog::stats() const {
  WatchdogStats out = stats_;
  out.packets_dropped_bounded = platform_->buffer_drops();
  return out;
}

void Watchdog::OnRestartComplete(Vm::VmId id) {
  ++stats_.restarts;
  pending_.erase(id);
}

void Watchdog::Sweep() {
  if (!running_) {
    return;
  }
  for (Vm::VmId id : platform_->vms().CrashedIds()) {
    auto it = pending_.find(id);
    if (it == pending_.end()) {
      // Fresh crash episode: schedule the first restart one backoff away.
      ++stats_.crashes_observed;
      Pending entry;
      entry.next_try = clock_->now() + BackoffDelay(0);
      pending_.emplace(id, entry);
      continue;
    }
    Pending& pending = it->second;
    if (pending.in_flight) {
      // The restart we launched ended crashed again (boot failure).
      pending.in_flight = false;
      ++pending.attempt;
      ++stats_.restart_failures;
      pending.next_try = clock_->now() + BackoffDelay(pending.attempt);
    }
    if (pending.attempt > config_.max_retries) {
      ++stats_.gave_up;
      platform_->RetireCrashedVm(id);
      pending_.erase(it);
      continue;
    }
    if (clock_->now() < pending.next_try) {
      continue;
    }
    std::string error;
    if (platform_->RestartCrashedVm(id, &error)) {
      pending.in_flight = true;
    } else {
      // Immediate failure (memory exhausted): count it and back off.
      ++pending.attempt;
      ++stats_.restart_failures;
      if (pending.attempt > config_.max_retries) {
        ++stats_.gave_up;
        platform_->RetireCrashedVm(id);
        pending_.erase(it);
        continue;
      }
      pending.next_try = clock_->now() + BackoffDelay(pending.attempt);
    }
  }
  clock_->ScheduleAfter(config_.sweep_interval, [this] { Sweep(); });
}

}  // namespace innet::platform
