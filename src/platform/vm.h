// Vm + VmManager: the ClickOS guest lifecycle simulator. A Vm hosts a live
// Click graph (real packet processing); its lifecycle transitions (boot,
// suspend, resume) take simulated time from the cost model, scheduled on the
// event queue.
#ifndef SRC_PLATFORM_VM_H_
#define SRC_PLATFORM_VM_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/click/elements.h"
#include "src/click/graph.h"
#include "src/platform/cost_model.h"
#include "src/sim/event_queue.h"

namespace innet::platform {

enum class VmState { kBooting, kRunning, kSuspending, kSuspended, kResuming, kDestroyed };

class Vm {
 public:
  using VmId = uint64_t;
  using EgressHandler = std::function<void(Packet&)>;

  VmId id() const { return id_; }
  VmKind kind() const { return kind_; }
  VmState state() const { return state_; }
  click::Graph* graph() const { return graph_.get(); }

  // Feeds a packet to the guest's first FromNetfront. Silently drops when
  // the VM is not running (as a real guest with a detached netfront would).
  void Inject(Packet& packet);
  // Called for every packet the guest emits on any ToNetfront.
  void SetEgressHandler(EgressHandler handler);

  uint64_t injected_count() const { return injected_count_; }

  // Simulated time of the last packet handled (or of becoming ready); drives
  // the platform's idle-suspend policy.
  sim::TimeNs last_activity_ns() const { return last_activity_ns_; }

 private:
  friend class VmManager;
  friend class InNetPlatform;
  Vm() = default;

  VmId id_ = 0;
  VmKind kind_ = VmKind::kClickOs;
  VmState state_ = VmState::kBooting;
  std::unique_ptr<click::Graph> graph_;
  EgressHandler egress_;
  uint64_t injected_count_ = 0;
  sim::TimeNs last_activity_ns_ = 0;
  sim::EventQueue* clock_ = nullptr;
};

class VmManager {
 public:
  using ReadyCallback = std::function<void(Vm*)>;

  VmManager(sim::EventQueue* clock, VmCostModel cost_model, uint64_t total_memory_bytes)
      : clock_(clock), cost_model_(cost_model), memory_total_(total_memory_bytes) {}

  // Starts booting a VM running `config_text`; `on_ready` fires when the
  // guest is up (after BootTime). Returns nullptr + *error when the
  // configuration is invalid or memory is exhausted.
  Vm* Create(VmKind kind, const std::string& config_text, ReadyCallback on_ready,
             std::string* error);

  // Suspends a running VM; `done` fires after SuspendTime.
  bool Suspend(Vm::VmId id, std::function<void()> done = nullptr);
  // Resumes a suspended VM; `done` fires after ResumeTime.
  bool Resume(Vm::VmId id, std::function<void()> done = nullptr);
  // Destroys a VM immediately, releasing its memory.
  bool Destroy(Vm::VmId id);

  Vm* Find(Vm::VmId id);
  size_t vm_count() const { return vms_.size(); }
  size_t running_count() const;
  // Guests holding RAM and toolstack attention (everything but suspended).
  size_t non_suspended_count() const;
  uint64_t memory_used() const { return memory_used_; }
  uint64_t memory_total() const { return memory_total_; }
  // How many more VMs of `kind` fit in memory.
  uint64_t RemainingCapacity(VmKind kind) const {
    return (memory_total_ - memory_used_) / cost_model_.MemoryBytes(kind);
  }

  const VmCostModel& cost_model() const { return cost_model_; }

 private:
  sim::EventQueue* clock_;
  VmCostModel cost_model_;
  uint64_t memory_total_;
  uint64_t memory_used_ = 0;
  Vm::VmId next_id_ = 1;
  std::unordered_map<Vm::VmId, std::unique_ptr<Vm>> vms_;
};

}  // namespace innet::platform

#endif  // SRC_PLATFORM_VM_H_
