// Vm + VmManager: the ClickOS guest lifecycle simulator. A Vm hosts a live
// Click graph (real packet processing); its lifecycle transitions (boot,
// suspend, resume) take simulated time from the cost model, scheduled on the
// event queue.
//
// Failure model: a guest in any RAM-holding state can crash (injected by a
// sim::FaultInjector or forced by tests/benches through CrashVm). A crashed
// guest releases its memory but stays registered under its id so the
// platform watchdog can Restart it in place — the switch rules and stalled
// buffers keyed by the id stay valid across the restart.
#ifndef SRC_PLATFORM_VM_H_
#define SRC_PLATFORM_VM_H_

#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/click/elements.h"
#include "src/click/graph.h"
#include "src/platform/cost_model.h"
#include "src/sim/event_queue.h"
#include "src/sim/fault_injector.h"

namespace innet::platform {

enum class VmState {
  kBooting,
  kRunning,
  kSuspending,
  kSuspended,
  kResuming,
  kCrashed,
  kDestroyed
};

class Vm {
 public:
  using VmId = uint64_t;
  using EgressHandler = std::function<void(Packet&)>;

  VmId id() const { return id_; }
  VmKind kind() const { return kind_; }
  VmState state() const { return state_; }
  click::Graph* graph() const { return graph_.get(); }
  // The configuration the guest was booted from (used by Restart to rebuild
  // the graph after a crash — a crash loses all element state).
  const std::string& config_text() const { return config_text_; }
  // How many times this guest was restarted after a crash.
  uint64_t restart_count() const { return restart_count_; }

  // Feeds a packet to the guest's first FromNetfront. Silently drops when
  // the VM is not running (as a real guest with a detached netfront would).
  void Inject(Packet& packet);
  // Called for every packet the guest emits on any ToNetfront.
  void SetEgressHandler(EgressHandler handler);

  uint64_t injected_count() const { return injected_count_; }

  // Simulated time of the last packet handled (or of becoming ready); drives
  // the platform's idle-suspend policy.
  sim::TimeNs last_activity_ns() const { return last_activity_ns_; }

  // The tenant (client id) this guest serves; "" for shared/unattributed
  // guests. Set by the orchestrator at deploy time so lifecycle events can
  // feed the per-tenant health monitor, and carried across restart and
  // migration.
  const std::string& owner() const { return owner_; }
  void set_owner(std::string owner) { owner_ = std::move(owner); }

  // Span id of this guest's most recent boot/restart trace event (0 when the
  // tracer was off). Boot completions, crashes, and watchdog restarts parent
  // to it so a guest's lifecycle forms one trace tree.
  uint64_t trace_span() const { return trace_span_; }

 private:
  friend class VmManager;
  friend class InNetPlatform;
  Vm() = default;

  VmId id_ = 0;
  VmKind kind_ = VmKind::kClickOs;
  VmState state_ = VmState::kBooting;
  std::unique_ptr<click::Graph> graph_;
  EgressHandler egress_;
  std::string config_text_;
  std::string owner_;
  uint64_t injected_count_ = 0;
  uint64_t restart_count_ = 0;
  uint64_t trace_span_ = 0;
  // Bumped on every lifecycle transition a scheduled callback could race
  // with (boot, suspend, resume, restart, crash, destroy). Callbacks capture
  // the epoch they were scheduled under and become no-ops when it moved —
  // this is what makes Destroy-during-boot cancel the pending on_ready
  // instead of letting a later same-state guest absorb it.
  uint64_t epoch_ = 0;
  sim::TimeNs last_activity_ns_ = 0;
  sim::EventQueue* clock_ = nullptr;
};

// A suspended guest's frozen state, detached from its manager for live
// migration. The Click graph object moves as-is, so element state (counters,
// flow tables, queued packets) survives the transfer byte-for-byte. Both
// managers must share the same event queue — the graph's timed elements keep
// their clock binding across the move.
struct VmSnapshot {
  VmKind kind = VmKind::kClickOs;
  std::string config_text;
  std::string owner;
  std::unique_ptr<click::Graph> graph;
  uint64_t injected_count = 0;
  uint64_t restart_count = 0;
};

class VmManager {
 public:
  using ReadyCallback = std::function<void(Vm*)>;
  // Observers fire whenever a guest transitions to kCrashed (boot failure or
  // runtime crash), before any restart is attempted.
  using CrashObserver = std::function<void(Vm*)>;

  VmManager(sim::EventQueue* clock, VmCostModel cost_model, uint64_t total_memory_bytes)
      : clock_(clock), cost_model_(cost_model), memory_total_(total_memory_bytes) {}

  // Starts booting a VM running `config_text`; `on_ready` fires when the
  // guest is up (after BootTime). Returns nullptr + *error when the
  // configuration is invalid or memory is exhausted.
  Vm* Create(VmKind kind, const std::string& config_text, ReadyCallback on_ready,
             std::string* error);

  // Suspends a running VM; `done` fires after SuspendTime.
  bool Suspend(Vm::VmId id, std::function<void()> done = nullptr);
  // Resumes a suspended VM; `done` fires after ResumeTime.
  bool Resume(Vm::VmId id, std::function<void()> done = nullptr);
  // Destroys a VM immediately, releasing its memory. Any in-flight
  // boot/suspend/resume completion for it is cancelled (its `done` callback
  // still runs, but finds no guest to act on).
  bool Destroy(Vm::VmId id);

  // Crashes a guest: releases its memory, drops its graph state, notifies
  // crash observers. Valid from any RAM-holding state (booting, running,
  // suspending, resuming); a suspended-to-disk guest cannot crash. The guest
  // stays registered under its id in state kCrashed until Restart or
  // Destroy.
  bool Crash(Vm::VmId id);

  // Reboots a crashed guest in place: rebuilds its Click graph from the
  // original configuration, re-acquires memory, and schedules the boot.
  // `on_ready` fires when the guest is running again (egress handlers must
  // be re-attached by the caller — the graph is new). Returns false when the
  // guest is not crashed or memory is exhausted.
  bool Restart(Vm::VmId id, ReadyCallback on_ready, std::string* error);

  // --- Live migration -------------------------------------------------------
  // Detaches a suspended guest's frozen state for transfer to another
  // manager. Only legal from kSuspended: the suspend already quiesced the
  // graph and released the guest's RAM, so there is nothing left to race
  // with. The id is retired; any still-pending callback for it is a no-op.
  std::optional<VmSnapshot> ExportSuspended(Vm::VmId id);
  // Adopts a snapshot under a fresh id: the guest appears in kResuming
  // (RAM re-acquired up front) and reaches kRunning after ResumeTime,
  // exactly like a local resume. On failure returns nullptr + *error and
  // leaves *snapshot intact so the caller can re-import it elsewhere.
  // Egress handlers must be re-attached by the caller — the sink closures
  // in the graph still point into the source platform.
  Vm* ImportSnapshot(VmSnapshot* snapshot, ReadyCallback on_ready, std::string* error);

  void AddCrashObserver(CrashObserver observer) {
    crash_observers_.push_back(std::move(observer));
  }

  // Attach a fault injector: boot failures, scheduled crashes, and
  // suspend/resume stretch are drawn from it. Pass nullptr to detach. The
  // injector must outlive the manager.
  void SetFaultInjector(sim::FaultInjector* injector) { fault_ = injector; }
  sim::FaultInjector* fault_injector() const { return fault_; }

  // Enables data-plane profiling for every guest graph this manager owns —
  // current and future (Create, Restart, ImportSnapshot re-attach it, since
  // each of those hands the guest a new or transplanted graph). Each graph
  // gets its own GraphProfiler with walk prefix "vm:<id>", so folded chains
  // and sampled walks stay attributable per guest. `int_sample_n` != 0
  // additionally activates in-band telemetry on a deterministic 1-in-N of
  // walks (same seeded contract as trace sampling, independent stream).
  void EnableProfiling(uint32_t sample_n, uint64_t seed, uint32_t int_sample_n = 0);
  bool profiling_enabled() const { return profile_enabled_; }

  // Maps (guest, tenant slot) to the tenant key INT postcards are attributed
  // under. Slot >= 0 is a consolidated guest's "t<i>_" element prefix; -1
  // means the whole graph belongs to one tenant (dedicated guests). The
  // platform installs this so the resolver can consult VM ownership and the
  // consolidation merge order. Applies to future profiler attachments and
  // re-binds live ones.
  using IntTenantResolver = std::function<std::string(Vm::VmId, int)>;
  void SetIntTenantResolver(IntTenantResolver resolver);

  Vm* Find(Vm::VmId id);
  size_t vm_count() const { return vms_.size(); }
  size_t running_count() const;
  size_t crashed_count() const;
  // Ids of all guests currently in kCrashed, in ascending id order (so the
  // watchdog's sweep is deterministic regardless of hash-map iteration).
  std::vector<Vm::VmId> CrashedIds() const;
  // Ids of every registered guest, ascending — the deterministic iteration
  // order for per-guest metric export.
  std::vector<Vm::VmId> AllIds() const;
  // Guests holding RAM and toolstack attention (everything but suspended
  // and crashed).
  size_t non_suspended_count() const;
  uint64_t memory_used() const { return memory_used_; }
  uint64_t memory_total() const { return memory_total_; }
  uint64_t crash_count() const { return crash_count_; }
  // How many more VMs of `kind` fit in memory. A zero-cost model means the
  // kind is free: effectively unlimited capacity (not a division by zero).
  uint64_t RemainingCapacity(VmKind kind) const {
    uint64_t per_vm = cost_model_.MemoryBytes(kind);
    if (per_vm == 0) {
      return std::numeric_limits<uint64_t>::max();
    }
    return (memory_total_ - memory_used_) / per_vm;
  }

  const VmCostModel& cost_model() const { return cost_model_; }

 private:
  // Schedules the boot-completion event for a guest entering kBooting:
  // either the promotion to kRunning (+ crash timer arming + on_ready), or —
  // when the fault injector decides the boot fails — the transition to
  // kCrashed.
  void ScheduleBootCompletion(Vm* vm, ReadyCallback on_ready);
  // Arms the injector-driven crash timer for a guest that just became
  // running (no-op without an injector or with crashes disabled).
  void ArmCrashTimer(Vm* vm);
  void NotifyCrash(Vm* vm);
  // Attaches a profiler to the guest's (fresh) graph when profiling is on.
  void MaybeAttachProfiler(Vm* vm);

  sim::EventQueue* clock_;
  VmCostModel cost_model_;
  uint64_t memory_total_;
  uint64_t memory_used_ = 0;
  uint64_t crash_count_ = 0;
  Vm::VmId next_id_ = 1;
  std::unordered_map<Vm::VmId, std::unique_ptr<Vm>> vms_;
  std::vector<CrashObserver> crash_observers_;
  sim::FaultInjector* fault_ = nullptr;
  bool profile_enabled_ = false;
  uint32_t profile_sample_n_ = 0;
  uint32_t profile_int_sample_n_ = 0;
  uint64_t profile_seed_ = 0;
  IntTenantResolver int_tenant_resolver_;
};

}  // namespace innet::platform

#endif  // SRC_PLATFORM_VM_H_
