// Sandboxing (§4.4, §7.2): when static analysis cannot prove a module safe,
// the controller wraps it with a ChangeEnforcer. Two deployment options,
// matching Figure 11's comparison:
//
//   1. In-configuration: the enforcer is spliced into the tenant's own Click
//      graph (cheap: one extra element on the packet path, and the tenant is
//      billed for it).
//   2. Separate VM: the enforcer runs in its own guest; every packet crosses
//      the VM boundary twice. We emulate the boundary faithfully with a
//      worker thread and a handoff per packet — the context-switch cost is
//      real, which is exactly what makes this option ~70% slower in the
//      paper.
#ifndef SRC_PLATFORM_SANDBOX_H_
#define SRC_PLATFORM_SANDBOX_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/click/config_parser.h"
#include "src/click/elements.h"
#include "src/click/graph.h"
#include "src/netcore/ip.h"

namespace innet::platform {

// Splices a ChangeEnforcer into `config`: ingress traffic (FromNetfront ->
// first element) passes the enforcer's inbound side; egress traffic (last
// element -> ToNetfront) passes its outbound side. Returns nullopt + *error
// when the config lacks an ingress or egress.
std::optional<click::ConfigGraph> WrapWithEnforcer(const click::ConfigGraph& config,
                                                   const std::vector<Ipv4Address>& whitelist,
                                                   double timeout_sec, std::string* error);

// A sandbox running in a separate "VM": a worker thread owning the enforcer
// state. Filter() round-trips one packet through the worker — two context
// switches per packet, like two vhost crossings.
class SeparateVmSandbox {
 public:
  explicit SeparateVmSandbox(const std::vector<Ipv4Address>& whitelist,
                             double timeout_sec = 60.0);
  ~SeparateVmSandbox();

  SeparateVmSandbox(const SeparateVmSandbox&) = delete;
  SeparateVmSandbox& operator=(const SeparateVmSandbox&) = delete;

  // direction 0 = inbound (outside -> module), 1 = outbound. Returns true
  // when the packet is admitted. Blocks until the sandbox VM processed it.
  bool Filter(int direction, Packet& packet);

  // Ring-style batched crossing, like vhost: one handoff per `count`
  // packets. Returns the number admitted; `admitted[i]` reports each packet.
  size_t FilterBatch(int direction, Packet* packets, size_t count, bool* admitted);

  uint64_t processed_count() const { return processed_; }

 private:
  void WorkerLoop();

  std::unique_ptr<click::ChangeEnforcer> enforcer_;
  std::unique_ptr<click::Element> sinks_[2];
  bool admitted_ = false;

  std::mutex mu_;
  std::condition_variable cv_;
  Packet* pending_packet_ = nullptr;
  size_t pending_count_ = 1;
  bool* pending_admitted_ = nullptr;
  int pending_direction_ = 0;
  bool request_ready_ = false;
  bool response_ready_ = false;
  bool shutdown_ = false;
  uint64_t processed_ = 0;
  std::thread worker_;
};

}  // namespace innet::platform

#endif  // SRC_PLATFORM_SANDBOX_H_
