#include "src/platform/sandbox.h"

namespace innet::platform {

namespace {

// Captures whether the enforcer forwarded a packet.
class FlagSink : public click::Element {
 public:
  explicit FlagSink(bool* flag) : flag_(flag) {}
  std::string_view class_name() const override { return "FlagSink"; }
  void Push(int /*port*/, Packet& /*packet*/) override { *flag_ = true; }

 private:
  bool* flag_;
};

std::string EnforcerArgs(const std::vector<Ipv4Address>& whitelist, double timeout_sec) {
  std::string args;
  if (!whitelist.empty()) {
    args += "ALLOW";
    for (Ipv4Address addr : whitelist) {
      args += " " + addr.ToString();
    }
    args += ", ";
  }
  args += "TIMEOUT " + std::to_string(timeout_sec);
  return args;
}

}  // namespace

std::optional<click::ConfigGraph> WrapWithEnforcer(const click::ConfigGraph& config,
                                                   const std::vector<Ipv4Address>& whitelist,
                                                   double timeout_sec, std::string* error) {
  auto is_source = [](const std::string& cls) {
    return cls == "FromNetfront" || cls == "FromDevice";
  };
  auto is_sink = [](const std::string& cls) {
    return cls == "ToNetfront" || cls == "ToDevice";
  };

  std::vector<std::string> sources;
  std::vector<std::string> sinks;
  for (const click::ElementDecl& decl : config.elements) {
    if (is_source(decl.class_name)) {
      sources.push_back(decl.name);
    } else if (is_sink(decl.class_name)) {
      sinks.push_back(decl.name);
    }
  }
  if (sources.empty() || sinks.empty()) {
    *error = "cannot sandbox a module without FromNetfront/ToNetfront";
    return std::nullopt;
  }
  auto contains = [](const std::vector<std::string>& v, const std::string& s) {
    for (const std::string& x : v) {
      if (x == s) {
        return true;
      }
    }
    return false;
  };

  click::ConfigGraph wrapped;
  wrapped.elements = config.elements;
  wrapped.elements.push_back(
      {"__sandbox__", "ChangeEnforcer", EnforcerArgs(whitelist, timeout_sec)});

  for (const click::Connection& conn : config.connections) {
    bool from_source = contains(sources, conn.from);
    bool to_sink = contains(sinks, conn.to);
    if (from_source) {
      // Ingress traffic passes the enforcer's inbound side (port 0).
      wrapped.connections.push_back({conn.from, conn.from_port, "__sandbox__", 0});
      wrapped.connections.push_back({"__sandbox__", 0, conn.to, conn.to_port});
    } else if (to_sink) {
      // Egress traffic passes the outbound side (port 1).
      wrapped.connections.push_back({conn.from, conn.from_port, "__sandbox__", 1});
      wrapped.connections.push_back({"__sandbox__", 1, conn.to, conn.to_port});
    } else {
      wrapped.connections.push_back(conn);
    }
  }
  return wrapped;
}

SeparateVmSandbox::SeparateVmSandbox(const std::vector<Ipv4Address>& whitelist,
                                     double timeout_sec) {
  enforcer_ = std::make_unique<click::ChangeEnforcer>();
  std::string error;
  if (!enforcer_->Configure(EnforcerArgs(whitelist, timeout_sec), &error)) {
    // Whitelist entries come from parsed addresses, so this cannot fire; keep
    // the enforcer default-configured if it somehow does.
  }
  // Both outputs lead to the admitted flag; a dropped packet never sets it.
  sinks_[0] = std::make_unique<FlagSink>(&admitted_);
  sinks_[1] = std::make_unique<FlagSink>(&admitted_);
  enforcer_->ConnectOutput(0, sinks_[0].get(), 0);
  enforcer_->ConnectOutput(1, sinks_[1].get(), 0);
  worker_ = std::thread([this] { WorkerLoop(); });
}

SeparateVmSandbox::~SeparateVmSandbox() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

bool SeparateVmSandbox::Filter(int direction, Packet& packet) {
  bool admitted = false;
  FilterBatch(direction, &packet, 1, &admitted);
  return admitted;
}

size_t SeparateVmSandbox::FilterBatch(int direction, Packet* packets, size_t count,
                                      bool* admitted) {
  if (count == 0) {
    return 0;
  }
  std::unique_lock<std::mutex> lock(mu_);
  pending_packet_ = packets;
  pending_count_ = count;
  pending_admitted_ = admitted;
  pending_direction_ = direction;
  request_ready_ = true;
  response_ready_ = false;
  cv_.notify_all();
  cv_.wait(lock, [this] { return response_ready_; });
  size_t total = 0;
  for (size_t i = 0; i < count; ++i) {
    total += admitted[i] ? 1 : 0;
  }
  return total;
}

void SeparateVmSandbox::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return request_ready_ || shutdown_; });
    if (shutdown_) {
      return;
    }
    request_ready_ = false;
    for (size_t i = 0; i < pending_count_; ++i) {
      admitted_ = false;
      enforcer_->Push(pending_direction_, pending_packet_[i]);
      pending_admitted_[i] = admitted_;
      ++processed_;
    }
    response_ready_ = true;
    cv_.notify_all();
  }
}

}  // namespace innet::platform
