// InNetPlatform: the full processing platform (§5) — VM manager + software
// switch + switch controller. Supports static module installation and
// on-the-fly instantiation: when the first packet of a new flow arrives for
// an on-demand tenant, the controller boots a ClickOS VM, buffers the flow's
// packets, and reroutes once the guest is up (Figure 5's mechanism).
//
// Availability: every packet buffer (boot-pending flows, boot-pending
// addresses, stalled traffic for suspended/crashed guests) is bounded by
// `buffer_cap()` packets; overflow is dropped and counted. A watchdog
// (EnableWatchdog) restarts crashed guests with exponential backoff and
// re-installs their switch rules; a sim::FaultInjector (SetFaultInjector)
// supplies deterministic boot failures, crashes, and switch faults.
#ifndef SRC_PLATFORM_PLATFORM_H_
#define SRC_PLATFORM_PLATFORM_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/platform/consolidation.h"
#include "src/platform/sandbox.h"
#include "src/platform/software_switch.h"
#include "src/platform/vm.h"
#include "src/platform/watchdog.h"
#include "src/sim/fault_injector.h"

namespace innet::platform {

class InNetPlatform {
 public:
  using EgressHandler = std::function<void(Packet&)>;

  InNetPlatform(sim::EventQueue* clock, VmCostModel cost_model = {},
                uint64_t total_memory_bytes = 16ull << 30)
      : clock_(clock), vms_(clock, cost_model, total_memory_bytes), switch_(&vms_) {
    switch_.SetMissHandler([this](Packet& packet) { OnMiss(packet); });
    switch_.SetStalledHandler(
        [this](Packet& packet, Vm::VmId vm_id) { OnStalled(packet, vm_id); });
    // Hot-path counters resolved once; the registry guarantees the pointers
    // stay valid (ResetValues never destroys instruments).
    ctr_buffered_ = obs::Registry().GetCounter("innet_platform_buffered_packets_total");
    ctr_buffer_drops_ = obs::Registry().GetCounter("innet_platform_buffer_drops_total");
    ctr_abandoned_ = obs::Registry().GetCounter("innet_platform_abandoned_packets_total");
    ctr_flow_misses_ = obs::Registry().GetCounter("innet_platform_flow_misses_total");
    ctr_ondemand_boots_ = obs::Registry().GetCounter("innet_platform_ondemand_boots_total");
    ctr_idle_suspends_ = obs::Registry().GetCounter("innet_platform_idle_suspends_total");
    ctr_traffic_resumes_ = obs::Registry().GetCounter("innet_platform_resumes_on_traffic_total");
    // The flight recorder is always on: the switch leaves per-packet
    // breadcrumbs in it, and every guest crash snapshots a post-mortem
    // bundle while the dying graph's counters are still readable (the VM
    // manager notifies observers before it drops the graph).
    switch_.SetFlightRecorder(&flight_);
    vms_.AddCrashObserver(
        [this](Vm* vm) { TakePostmortem(obs::EventKind::kVmCrash, vm->id(), ""); });
  }

  // --- Static installation ------------------------------------------------------
  // Boots a VM for `config_text` and routes dst==addr traffic to it once up.
  // With `sandbox` set, the configuration is wrapped with a ChangeEnforcer
  // first (in-config sandboxing; the tenant pays for it).
  // Returns the VM id, or 0 + *error.
  Vm::VmId Install(Ipv4Address addr, const std::string& config_text, std::string* error,
                   VmKind kind = VmKind::kClickOs, bool sandbox = false,
                   const std::vector<Ipv4Address>& sandbox_whitelist = {});

  // Removes a module and its switch rules, plus any buffered traffic and
  // on-demand bookkeeping for the address — a later reinstall at the same
  // address starts clean (no stale-packet replay).
  bool Uninstall(Ipv4Address addr);

  // Consolidation (§5): boots one ClickOS VM running the merged
  // configuration of all `tenants` and routes each tenant address to it.
  // Returns the VM id, or 0 + *error.
  Vm::VmId InstallConsolidated(const std::vector<TenantConfig>& tenants, std::string* error);

  // Tears down a VM, every switch rule pointing at it, its stalled buffers,
  // and any on-demand bookkeeping referencing it (used to replace a
  // consolidated VM when its tenant set changes).
  bool UninstallVm(Vm::VmId vm_id);

  // --- On-the-fly instantiation ----------------------------------------------------
  // Registers a tenant whose processing boots when traffic first arrives.
  // With per_flow set, every new 5-tuple gets its own VM (the Figure 5/6
  // experiment); otherwise one VM serves the address once booted.
  void RegisterOnDemand(Ipv4Address addr, const std::string& config_text,
                        VmKind kind = VmKind::kClickOs, bool per_flow = true);

  // --- Idle management (§5 suspend/resume) ---------------------------------------
  // Periodically suspends running guests that saw no traffic for
  // `idle_timeout`; arriving traffic resumes them transparently, with
  // packets buffered across the ~100 ms resume. This is what lets stateful
  // per-client processing scale past the concurrent-VM limit without
  // breaking flows.
  void EnableIdleSuspend(sim::TimeNs idle_timeout);

  size_t suspended_count() const;
  uint64_t idle_suspends() const { return idle_suspends_; }
  uint64_t resumes_on_traffic() const { return resumes_on_traffic_; }

  // --- Live migration (scheduler-driven) -----------------------------------------
  // Marks a guest as migrating out: traffic arriving while it is suspended
  // parks in its bounded stalled buffer instead of resuming it, and the idle
  // sweeper leaves it alone. Call before suspending the guest.
  void PrepareMigrationOut(Vm::VmId vm_id) { migrating_out_.insert(vm_id); }
  // Aborts an announced migration: clears the mark and, if parked traffic
  // accumulated against a suspended guest meanwhile, resumes it to drain
  // the buffer (the normal resume-on-traffic path).
  void CancelMigrationOut(Vm::VmId vm_id);
  struct MigratedVm {
    VmSnapshot snapshot;
    std::deque<Packet> parked;  // traffic that arrived during the blackout
  };
  // Removes a suspended guest from this platform and returns its frozen
  // state plus the parked traffic — which is NOT counted abandoned: the
  // caller re-addresses and replays it on the target after cutover. Switch
  // rules and all bookkeeping for the guest are torn down.
  std::optional<MigratedVm> DetachForMigration(Vm::VmId vm_id);
  // Adopts a migrated guest at `addr`: the switch rule lands immediately
  // (new traffic parks in the stalled buffer across the resume), egress is
  // re-bound to this platform, and the buffer flushes once the guest is up.
  // Returns the new VM id, or 0 + *error with *snapshot left intact so the
  // caller can re-import it on the source.
  Vm::VmId InstallMigrated(Ipv4Address addr, VmSnapshot* snapshot, std::string* error);

  // --- Failure handling ----------------------------------------------------------
  // Attaches the deterministic fault injector to the VM manager (boot
  // failures, crash timers, suspend/resume stretch) and the switch (packet
  // drop/corruption). The injector must outlive the platform.
  void SetFaultInjector(sim::FaultInjector* injector) {
    vms_.SetFaultInjector(injector);
    switch_.SetFaultInjector(injector);
  }

  // Arms the crash watchdog (periodic health sweep + backoff restart).
  Watchdog* EnableWatchdog(WatchdogConfig config = {}) {
    if (watchdog_ == nullptr) {
      watchdog_ = std::make_unique<Watchdog>(clock_, this, config);
    }
    watchdog_->Start();
    return watchdog_.get();
  }
  Watchdog* watchdog() { return watchdog_.get(); }

  // Restarts a crashed guest in place: same id, rules re-installed, stalled
  // traffic flushed once it is running again. Used by the watchdog; exposed
  // for tests and manual recovery.
  bool RestartCrashedVm(Vm::VmId vm_id, std::string* error);

  // Gives up on a crashed guest: removes its rules and bookkeeping and drops
  // (counting) whatever traffic was waiting for it.
  void RetireCrashedVm(Vm::VmId vm_id) { UninstallVm(vm_id); }

  // Every platform packet buffer holds at most this many packets; overflow
  // is dropped and counted in buffer_drops(). Default 256 packets/flow.
  void set_buffer_cap(size_t cap) { buffer_cap_ = cap; }
  size_t buffer_cap() const { return buffer_cap_; }
  // Packets dropped because a bounded buffer was full.
  uint64_t buffer_drops() const { return buffer_drops_; }
  // Packets dropped because their guest was retired/uninstalled while they
  // waited in a buffer.
  uint64_t abandoned_packets() const { return abandoned_packets_; }

  // --- Data path ---------------------------------------------------------------------
  // Entry point: a packet arriving at the platform NIC.
  void HandlePacket(Packet& packet);
  // All packets leaving tenant modules end up here.
  void SetEgressHandler(EgressHandler handler) { egress_ = std::move(handler); }

  VmManager& vms() { return vms_; }
  SoftwareSwitch& software_switch() { return switch_; }

  // Tags a guest with the tenant it serves (see Vm::owner()); lifecycle
  // events and buffer accounting for it then feed the per-tenant health
  // monitor. No-op for unknown ids.
  void SetVmOwner(Vm::VmId vm_id, std::string owner) {
    Vm* vm = vms_.Find(vm_id);
    if (vm != nullptr) {
      vm->set_owner(std::move(owner));
    }
  }
  // The dedicated or shared guest currently routed for `addr` (0 when none).
  // This is what control-plane health probes and post-crash reconciliation
  // compare the controller's belief against.
  Vm::VmId InstalledVmFor(Ipv4Address addr) const {
    auto it = installed_.find(addr.value());
    return it == installed_.end() ? 0 : it->second;
  }

  // The owning tenant of a guest ("" when unknown or unattributed).
  const std::string& OwnerOf(Vm::VmId vm_id) {
    static const std::string kNone;
    Vm* vm = vms_.Find(vm_id);
    return vm != nullptr ? vm->owner() : kNone;
  }

  uint64_t buffered_count() const { return buffered_; }
  uint64_t ondemand_boots() const { return ondemand_boots_; }

  // Packets currently parked in boot-pending and stalled buffers.
  size_t buffer_occupancy() const;

  // Snapshots the platform's state gauges (buffer occupancy, guest counts,
  // memory, switch counters) into `registry`, plus every live guest graph's
  // per-element counters labeled {vm, tenant, element, class} — consolidated
  // guests attribute each t<i>_-prefixed element back to its own tenant.
  // Called by dump paths (tools/innet_run) right before writing the registry
  // out; the counters above are live and need no snapshot.
  void ExportMetrics(obs::MetricsRegistry* registry) const;

  // --- Data-plane telemetry ------------------------------------------------------
  // Turns on per-graph profiling for every guest (see VmManager::
  // EnableProfiling): folded-stack attribution always, 1-in-`sample_n`
  // deterministic packet-walk traces when the tracer is enabled. A non-zero
  // `int_sample_n` additionally tags 1-in-N walks with in-band telemetry;
  // their postcards are attributed to tenants through this platform's
  // ownership and consolidation maps (dedicated guests by VM owner,
  // consolidated guests by the t<i>_ prefix's merge-order address).
  void EnableDataplaneProfiling(uint32_t sample_n, uint64_t seed, uint32_t int_sample_n = 0) {
    if (int_sample_n != 0) {
      vms_.SetIntTenantResolver([this](Vm::VmId vm_id, int slot) -> std::string {
        auto consolidated = consolidated_tenants_.find(vm_id);
        if (slot >= 0) {
          if (consolidated != consolidated_tenants_.end() &&
              static_cast<size_t>(slot) < consolidated->second.size()) {
            return consolidated->second[static_cast<size_t>(slot)];
          }
          return "";
        }
        // Shared guest but no tenant-prefixed element on the walk: leave the
        // postcard unattributed rather than guessing a tenant.
        if (consolidated != consolidated_tenants_.end()) {
          return "";
        }
        return OwnerOf(vm_id);
      });
    }
    vms_.EnableProfiling(sample_n, seed, int_sample_n);
  }
  // Appends every profiled guest graph's folded chains ("vm:<id>;a;b;c ns")
  // to `out`, in ascending vm-id order.
  void WriteFoldedStacks(std::ostream& out) const;

  // The always-on ring of recent dataplane/lifecycle events and the
  // post-mortem bundles captured from it.
  obs::FlightRecorder& flight_recorder() { return flight_; }
  const obs::FlightRecorder& flight_recorder() const { return flight_; }

  // Snapshots a post-mortem bundle for `vm_id` into the flight recorder:
  // ring contents, per-element counter deltas (from the live graph, or the
  // guest's previous snapshot when the graph is already gone), owning span,
  // and the tenant's health state. Called automatically on every crash;
  // watchdog give-up and migration aborts call it explicitly.
  void TakePostmortem(obs::EventKind trigger, Vm::VmId vm_id, const std::string& detail);

  // Captures every live graph's per-element counters into the flight
  // recorder's periodic store (FlightRecorder::NotePeriodicElements). The
  // watchdog calls this each sweep, so a postmortem taken after a guest's
  // graph is destroyed — even one that never snapshotted a bundle before —
  // can still report counters from the last sweep instead of nothing.
  void SnapshotElementCounters();

 private:
  struct OnDemandEntry {
    std::string config_text;
    VmKind kind = VmKind::kClickOs;
    bool per_flow = true;
    Vm::VmId shared_vm = 0;  // per_flow == false: the single VM once booted
  };
  struct PendingFlow {
    uint32_t addr = 0;  // tenant address the flow targets (for teardown)
    std::deque<Packet> buffer;
  };
  // Switch rules a guest owns, so the watchdog can re-install them after a
  // restart (idempotent re-adds; the id is stable across restarts).
  struct VmRules {
    std::vector<uint32_t> addrs;
    std::vector<uint64_t> flow_keys;
  };

  // Appends to a bounded buffer; drops + counts when the cap is reached.
  // `owner` (the tenant the buffer serves, when known) attributes the
  // enqueue/drop to the health monitor.
  bool BufferWithCap(std::deque<Packet>* buffer, Packet& packet, const std::string& owner = "");
  void ReinstallRules(Vm::VmId vm_id);
  void FlushPendingFor(Vm::VmId vm_id, Vm* vm);
  void OnMiss(Packet& packet);
  void OnStalled(Packet& packet, Vm::VmId vm_id);
  void FlushStalled(Vm::VmId vm_id);
  void IdleSweep();
  void AttachEgress(Vm* vm);

  sim::EventQueue* clock_;
  VmManager vms_;
  SoftwareSwitch switch_;
  obs::FlightRecorder flight_;
  EgressHandler egress_;
  std::unique_ptr<Watchdog> watchdog_;
  // Consolidated guests: tenant labels (addresses) in merge order, so the
  // t<i>_ element-name prefix maps element -> tenant at export time.
  std::unordered_map<Vm::VmId, std::vector<std::string>> consolidated_tenants_;
  std::unordered_map<uint32_t, OnDemandEntry> ondemand_;
  std::unordered_map<uint64_t, PendingFlow> pending_flows_;   // per-flow boots
  std::unordered_map<uint32_t, PendingFlow> pending_addrs_;   // shared-VM boots
  std::unordered_map<uint32_t, Vm::VmId> installed_;
  std::unordered_map<Vm::VmId, std::deque<Packet>> stalled_buffers_;
  std::unordered_map<Vm::VmId, VmRules> vm_rules_;
  // Guests announced for migration: stalled traffic parks instead of
  // resuming them, and the idle sweeper skips them.
  std::unordered_set<Vm::VmId> migrating_out_;
  sim::TimeNs idle_timeout_ = 0;  // 0 = idle suspend disabled
  bool idle_sweeper_armed_ = false;
  size_t buffer_cap_ = 256;
  uint64_t buffered_ = 0;
  uint64_t buffer_drops_ = 0;
  uint64_t abandoned_packets_ = 0;
  uint64_t ondemand_boots_ = 0;
  uint64_t idle_suspends_ = 0;
  uint64_t resumes_on_traffic_ = 0;
  // Registry mirrors of the accessor counters above (process-wide
  // aggregates across platform instances).
  obs::Counter* ctr_buffered_ = nullptr;
  obs::Counter* ctr_buffer_drops_ = nullptr;
  obs::Counter* ctr_abandoned_ = nullptr;
  obs::Counter* ctr_flow_misses_ = nullptr;
  obs::Counter* ctr_ondemand_boots_ = nullptr;
  obs::Counter* ctr_idle_suspends_ = nullptr;
  obs::Counter* ctr_traffic_resumes_ = nullptr;
};

}  // namespace innet::platform

#endif  // SRC_PLATFORM_PLATFORM_H_
