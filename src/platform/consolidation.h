// Consolidation (§5, Figure 8): merges many tenants' stateless Click
// configurations into one VM image. The merged graph demultiplexes by
// destination address with an IPClassifier, runs each tenant's elements on
// its own branch (no shared element instances, no cross-links), and funnels
// every tenant's egress to a single ToNetfront — exactly the structure whose
// per-packet demux cost produces Figure 8's throughput knee past ~150
// configurations.
#ifndef SRC_PLATFORM_CONSOLIDATION_H_
#define SRC_PLATFORM_CONSOLIDATION_H_

#include <optional>
#include <string>
#include <vector>

#include "src/click/config_parser.h"
#include "src/netcore/ip.h"

namespace innet::platform {

struct TenantConfig {
  Ipv4Address addr;         // the tenant module's address (demux key)
  std::string config_text;  // the tenant's Click configuration
};

// How the merged configuration demultiplexes tenants:
//   kLinearClassifier — an IPClassifier pattern scan, O(#tenants) per packet
//     (the paper's setup, whose cost produces Figure 8's knee);
//   kHashDemux — an AddressDemux exact-match table, O(1) per packet (the
//     ablation alternative).
enum class DemuxKind { kLinearClassifier, kHashDemux };

// Builds the merged configuration. Element names are prefixed "t<i>_" so
// tenants can never collide. Returns nullopt + *error when a tenant config
// fails to parse, lacks a FromNetfront/ToNetfront, or uses stateful elements
// (which the paper's prototype refuses to consolidate).
std::optional<click::ConfigGraph> ConsolidateTenants(
    const std::vector<TenantConfig>& tenants, std::string* error,
    DemuxKind demux = DemuxKind::kLinearClassifier);

// True when the configuration only uses stateless elements and is therefore
// safe to consolidate (§5: "our prototype takes the simpler option of not
// consolidating clients running stateful processing").
bool IsStatelessConfig(const click::ConfigGraph& config);

}  // namespace innet::platform

#endif  // SRC_PLATFORM_CONSOLIDATION_H_
