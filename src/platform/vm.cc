#include "src/platform/vm.h"

namespace innet::platform {

void Vm::Inject(Packet& packet) {
  if (state_ != VmState::kRunning) {
    return;
  }
  ++injected_count_;
  if (clock_ != nullptr) {
    last_activity_ns_ = clock_->now();
  }
  graph_->InjectAtSource(packet);
}

void Vm::SetEgressHandler(EgressHandler handler) {
  egress_ = std::move(handler);
  for (const auto& element : graph_->elements()) {
    if (auto* sink = dynamic_cast<click::ToNetfront*>(element.get())) {
      sink->set_handler([this](Packet& packet) {
        if (egress_) {
          egress_(packet);
        }
      });
    }
  }
}

Vm* VmManager::Create(VmKind kind, const std::string& config_text, ReadyCallback on_ready,
                      std::string* error) {
  uint64_t needed = cost_model_.MemoryBytes(kind);
  if (memory_used_ + needed > memory_total_) {
    *error = "platform out of guest memory";
    return nullptr;
  }
  auto graph = click::Graph::FromText(config_text, error, clock_);
  if (graph == nullptr) {
    return nullptr;
  }

  auto vm = std::unique_ptr<Vm>(new Vm());
  vm->id_ = next_id_++;
  vm->kind_ = kind;
  vm->state_ = VmState::kBooting;
  vm->graph_ = std::move(graph);
  vm->clock_ = clock_;
  Vm* raw = vm.get();
  memory_used_ += needed;

  // Boot cost scales with every guest holding resources (running or in
  // transition): the Xen toolstack and backend switch touch all of them
  // (Figure 5's slope). Suspended-to-disk guests do not participate.
  sim::TimeNs boot = cost_model_.BootTime(kind, non_suspended_count());
  vms_.emplace(raw->id_, std::move(vm));
  clock_->ScheduleAfter(boot, [this, id = raw->id_, cb = std::move(on_ready)] {
    Vm* target = Find(id);
    if (target == nullptr || target->state_ != VmState::kBooting) {
      return;
    }
    target->state_ = VmState::kRunning;
    target->last_activity_ns_ = clock_->now();
    if (cb) {
      cb(target);
    }
  });
  return raw;
}

bool VmManager::Suspend(Vm::VmId id, std::function<void()> done) {
  Vm* vm = Find(id);
  if (vm == nullptr || vm->state_ != VmState::kRunning) {
    return false;
  }
  vm->state_ = VmState::kSuspending;
  clock_->ScheduleAfter(cost_model_.SuspendTime(vm_count()),
                        [this, id, cb = std::move(done)] {
                          Vm* target = Find(id);
                          if (target != nullptr && target->state_ == VmState::kSuspending) {
                            target->state_ = VmState::kSuspended;
                            // Suspend-to-disk releases the guest's RAM.
                            memory_used_ -= cost_model_.MemoryBytes(target->kind_);
                          }
                          if (cb) {
                            cb();
                          }
                        });
  return true;
}

bool VmManager::Resume(Vm::VmId id, std::function<void()> done) {
  Vm* vm = Find(id);
  if (vm == nullptr || vm->state_ != VmState::kSuspended) {
    return false;
  }
  uint64_t needed = cost_model_.MemoryBytes(vm->kind_);
  if (memory_used_ + needed > memory_total_) {
    return false;  // no RAM to restore into; the guest stays parked
  }
  memory_used_ += needed;
  vm->state_ = VmState::kResuming;
  clock_->ScheduleAfter(cost_model_.ResumeTime(vm_count()),
                        [this, id, cb = std::move(done)] {
                          Vm* target = Find(id);
                          if (target != nullptr && target->state_ == VmState::kResuming) {
                            target->state_ = VmState::kRunning;
                          }
                          if (cb) {
                            cb();
                          }
                        });
  return true;
}

bool VmManager::Destroy(Vm::VmId id) {
  auto it = vms_.find(id);
  if (it == vms_.end()) {
    return false;
  }
  if (it->second->state_ != VmState::kSuspended) {
    memory_used_ -= cost_model_.MemoryBytes(it->second->kind_);  // suspended guests hold none
  }
  it->second->state_ = VmState::kDestroyed;
  vms_.erase(it);
  return true;
}

Vm* VmManager::Find(Vm::VmId id) {
  auto it = vms_.find(id);
  return it == vms_.end() ? nullptr : it->second.get();
}

size_t VmManager::running_count() const {
  size_t count = 0;
  for (const auto& [id, vm] : vms_) {
    if (vm->state_ == VmState::kRunning) {
      ++count;
    }
  }
  return count;
}

size_t VmManager::non_suspended_count() const {
  size_t count = 0;
  for (const auto& [id, vm] : vms_) {
    if (vm->state_ != VmState::kSuspended) {
      ++count;
    }
  }
  return count;
}

}  // namespace innet::platform
