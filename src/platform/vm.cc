#include "src/platform/vm.h"

#include <algorithm>
#include <string>

#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace innet::platform {

namespace {

const char* KindLabel(VmKind kind) { return kind == VmKind::kClickOs ? "clickos" : "linux"; }

std::string VmTarget(Vm::VmId id) { return "vm:" + std::to_string(id); }

// 0.5 ms .. ~4 s, covering ClickOS boots (~30 ms) through Linux ones (~700 ms
// and worse under load).
const std::vector<double>& LatencyBucketsMs() {
  static const std::vector<double>* buckets =
      new std::vector<double>(obs::ExponentialBuckets(0.5, 2.0, 14));
  return *buckets;
}

}  // namespace

void Vm::Inject(Packet& packet) {
  if (state_ != VmState::kRunning) {
    return;
  }
  ++injected_count_;
  if (clock_ != nullptr) {
    last_activity_ns_ = clock_->now();
  }
  graph_->InjectAtSource(packet);
}

void Vm::SetEgressHandler(EgressHandler handler) {
  egress_ = std::move(handler);
  if (graph_ == nullptr) {
    return;  // crashed guest: the handler re-binds on restart
  }
  for (const auto& element : graph_->elements()) {
    if (auto* sink = dynamic_cast<click::ToNetfront*>(element.get())) {
      sink->set_handler([this](Packet& packet) {
        if (egress_) {
          egress_(packet);
        }
      });
    }
  }
}

void VmManager::ScheduleBootCompletion(Vm* vm, ReadyCallback on_ready) {
  // The fate of the boot is decided when it is scheduled: one Bernoulli draw
  // per boot keeps the fault stream aligned with boot order, which the event
  // queue makes deterministic.
  bool will_fail = fault_ != nullptr && fault_->ShouldFailBoot();
  // Boot cost scales with every guest holding resources (running or in
  // transition): the Xen toolstack and backend switch touch all of them
  // (Figure 5's slope). Suspended-to-disk and crashed guests do not
  // participate.
  sim::TimeNs boot = cost_model_.BootTime(vm->kind_, non_suspended_count());
  clock_->ScheduleAfter(
      boot, [this, id = vm->id_, epoch = vm->epoch_, will_fail, boot, cb = std::move(on_ready)] {
        Vm* target = Find(id);
        if (target == nullptr || target->state_ != VmState::kBooting ||
            target->epoch_ != epoch) {
          return;  // destroyed, crashed, or superseded by a later restart
        }
        if (will_fail) {
          obs::Registry()
              .GetCounter("innet_vm_boot_failures_total", {{"kind", KindLabel(target->kind_)}})
              ->Increment();
          if (obs::Tracer().enabled()) {
            obs::Tracer().Record(clock_->now(), obs::EventKind::kVmBootFailed, VmTarget(id), "",
                                 0, target->trace_span_);
          }
          Crash(id);
          return;
        }
        target->state_ = VmState::kRunning;
        ++target->epoch_;
        target->last_activity_ns_ = clock_->now();
        obs::Registry()
            .GetHistogram("innet_vm_boot_latency_ms", {{"kind", KindLabel(target->kind_)}},
                          LatencyBucketsMs())
            ->Observe(sim::ToMillis(boot));
        obs::Health().ObserveBootLatency(target->owner_, sim::ToMillis(boot));
        if (obs::Tracer().enabled()) {
          obs::Tracer().Record(clock_->now(), obs::EventKind::kVmBootReady, VmTarget(id), "",
                               static_cast<int64_t>(boot), target->trace_span_);
        }
        ArmCrashTimer(target);
        if (cb) {
          cb(target);
        }
      });
}

void VmManager::ArmCrashTimer(Vm* vm) {
  if (fault_ == nullptr) {
    return;
  }
  sim::TimeNs delay = fault_->NextCrashDelay();
  if (delay == 0) {
    return;
  }
  clock_->ScheduleAfter(delay, [this, id = vm->id_, epoch = vm->epoch_] {
    Vm* target = Find(id);
    if (target == nullptr || target->state_ != VmState::kRunning || target->epoch_ != epoch) {
      return;  // gone, parked, or a different incarnation of the id
    }
    Crash(id);
  });
}

void VmManager::NotifyCrash(Vm* vm) {
  for (const CrashObserver& observer : crash_observers_) {
    observer(vm);
  }
}

void VmManager::EnableProfiling(uint32_t sample_n, uint64_t seed, uint32_t int_sample_n) {
  profile_enabled_ = true;
  profile_sample_n_ = sample_n;
  profile_int_sample_n_ = int_sample_n;
  profile_seed_ = seed;
  for (Vm::VmId id : AllIds()) {
    MaybeAttachProfiler(Find(id));
  }
}

void VmManager::SetIntTenantResolver(IntTenantResolver resolver) {
  int_tenant_resolver_ = std::move(resolver);
  if (profile_enabled_) {
    for (Vm::VmId id : AllIds()) {
      MaybeAttachProfiler(Find(id));
    }
  }
}

void VmManager::MaybeAttachProfiler(Vm* vm) {
  if (!profile_enabled_ || vm == nullptr || vm->graph_ == nullptr) {
    return;
  }
  click::GraphProfilerConfig config;
  config.sample_n = profile_sample_n_;
  config.int_sample_n = profile_int_sample_n_;
  config.seed = profile_seed_;
  config.walk_prefix = VmTarget(vm->id_);
  if (int_tenant_resolver_) {
    config.int_tenant = [resolver = int_tenant_resolver_, id = vm->id_](int slot) {
      return resolver(id, slot);
    };
  }
  vm->graph_->EnableProfiling(std::move(config));
}

Vm* VmManager::Create(VmKind kind, const std::string& config_text, ReadyCallback on_ready,
                      std::string* error) {
  uint64_t needed = cost_model_.MemoryBytes(kind);
  if (memory_used_ + needed > memory_total_) {
    *error = "platform out of guest memory";
    return nullptr;
  }
  auto graph = click::Graph::FromText(config_text, error, clock_);
  if (graph == nullptr) {
    return nullptr;
  }

  auto vm = std::unique_ptr<Vm>(new Vm());
  vm->id_ = next_id_++;
  vm->kind_ = kind;
  vm->state_ = VmState::kBooting;
  vm->graph_ = std::move(graph);
  vm->config_text_ = config_text;
  vm->clock_ = clock_;
  Vm* raw = vm.get();
  memory_used_ += needed;
  vms_.emplace(raw->id_, std::move(vm));
  MaybeAttachProfiler(raw);
  obs::Registry().GetCounter("innet_vm_boots_total", {{"kind", KindLabel(kind)}})->Increment();
  if (obs::Tracer().enabled()) {
    // The boot-start span roots this guest's lifecycle tree; it parents to
    // the current scope (e.g. an enclosing deploy or first-packet span).
    raw->trace_span_ =
        obs::Tracer().Record(clock_->now(), obs::EventKind::kVmBootStart, VmTarget(raw->id_));
  }
  ScheduleBootCompletion(raw, std::move(on_ready));
  return raw;
}

bool VmManager::Restart(Vm::VmId id, ReadyCallback on_ready, std::string* error) {
  Vm* vm = Find(id);
  if (vm == nullptr || vm->state_ != VmState::kCrashed) {
    if (error != nullptr) {
      *error = "no crashed guest with that id";
    }
    return false;
  }
  uint64_t needed = cost_model_.MemoryBytes(vm->kind_);
  if (memory_used_ + needed > memory_total_) {
    if (error != nullptr) {
      *error = "platform out of guest memory";
    }
    return false;
  }
  // A crash lost the guest's element state: rebuild the graph from the
  // original configuration (it parsed once, so this cannot fail in normal
  // operation — but report rather than assert).
  std::string parse_error;
  auto graph = click::Graph::FromText(vm->config_text_, &parse_error, clock_);
  if (graph == nullptr) {
    if (error != nullptr) {
      *error = "restart config rebuild failed: " + parse_error;
    }
    return false;
  }
  memory_used_ += needed;
  vm->graph_ = std::move(graph);
  vm->state_ = VmState::kBooting;
  ++vm->epoch_;
  ++vm->restart_count_;
  MaybeAttachProfiler(vm);
  obs::Registry().GetCounter("innet_vm_restarts_total")->Increment();
  obs::Health().CountRestart(vm->owner_);
  if (obs::Tracer().enabled()) {
    // Chain the restart to the previous incarnation's boot/restart span so
    // the whole crash-restart history hangs off one tree.
    vm->trace_span_ = obs::Tracer().Record(clock_->now(), obs::EventKind::kVmRestart,
                                           VmTarget(id), "", 0, vm->trace_span_);
  }
  ScheduleBootCompletion(vm, std::move(on_ready));
  return true;
}

bool VmManager::Crash(Vm::VmId id) {
  Vm* vm = Find(id);
  if (vm == nullptr) {
    return false;
  }
  switch (vm->state_) {
    case VmState::kBooting:
    case VmState::kRunning:
    case VmState::kSuspending:
    case VmState::kResuming:
      break;
    default:
      return false;  // suspended-to-disk guests hold no RAM and cannot crash
  }
  memory_used_ -= cost_model_.MemoryBytes(vm->kind_);
  vm->state_ = VmState::kCrashed;
  ++vm->epoch_;
  ++crash_count_;
  obs::Registry().GetCounter("innet_vm_crashes_total")->Increment();
  if (obs::Tracer().enabled()) {
    obs::Tracer().Record(clock_->now(), obs::EventKind::kVmCrash, VmTarget(id), "", 0,
                         vm->trace_span_);
  }
  // Observers run while the dying graph is still intact: post-mortem capture
  // (the platform's flight recorder) reads its element counters. Only after
  // they return does the crash actually destroy the guest's state.
  NotifyCrash(vm);
  vm->graph_.reset();
  return true;
}

bool VmManager::Suspend(Vm::VmId id, std::function<void()> done) {
  Vm* vm = Find(id);
  if (vm == nullptr || vm->state_ != VmState::kRunning) {
    return false;
  }
  vm->state_ = VmState::kSuspending;
  ++vm->epoch_;
  sim::TimeNs latency = cost_model_.SuspendTime(vm_count());
  if (fault_ != nullptr) {
    latency = fault_->StretchSuspend(latency);
  }
  // The completion runs from the event queue with an empty span stack, so
  // capture the initiator's scope (e.g. a migration span) now.
  uint64_t parent = obs::Tracer().enabled() ? obs::Tracer().current_span() : 0;
  clock_->ScheduleAfter(latency, [this, id, latency, parent, epoch = vm->epoch_,
                                  cb = std::move(done)] {
    Vm* target = Find(id);
    if (target != nullptr && target->state_ == VmState::kSuspending &&
        target->epoch_ == epoch) {
      target->state_ = VmState::kSuspended;
      ++target->epoch_;
      // Suspend-to-disk releases the guest's RAM.
      memory_used_ -= cost_model_.MemoryBytes(target->kind_);
      obs::Registry().GetCounter("innet_vm_suspends_total")->Increment();
      obs::Registry()
          .GetHistogram("innet_vm_suspend_latency_ms", {}, LatencyBucketsMs())
          ->Observe(sim::ToMillis(latency));
      if (obs::Tracer().enabled()) {
        obs::Tracer().Record(clock_->now(), obs::EventKind::kVmSuspend, VmTarget(id), "",
                             static_cast<int64_t>(latency), parent);
      }
    }
    if (cb) {
      cb();
    }
  });
  return true;
}

bool VmManager::Resume(Vm::VmId id, std::function<void()> done) {
  Vm* vm = Find(id);
  if (vm == nullptr || vm->state_ != VmState::kSuspended) {
    return false;
  }
  uint64_t needed = cost_model_.MemoryBytes(vm->kind_);
  if (memory_used_ + needed > memory_total_) {
    return false;  // no RAM to restore into; the guest stays parked
  }
  memory_used_ += needed;
  vm->state_ = VmState::kResuming;
  ++vm->epoch_;
  sim::TimeNs latency = cost_model_.ResumeTime(vm_count());
  if (fault_ != nullptr) {
    latency = fault_->StretchResume(latency);
  }
  uint64_t parent = obs::Tracer().enabled() ? obs::Tracer().current_span() : 0;
  clock_->ScheduleAfter(latency, [this, id, latency, parent, epoch = vm->epoch_,
                                  cb = std::move(done)] {
    Vm* target = Find(id);
    if (target != nullptr && target->state_ == VmState::kResuming &&
        target->epoch_ == epoch) {
      target->state_ = VmState::kRunning;
      ++target->epoch_;
      obs::Registry().GetCounter("innet_vm_resumes_total")->Increment();
      obs::Registry()
          .GetHistogram("innet_vm_resume_latency_ms", {}, LatencyBucketsMs())
          ->Observe(sim::ToMillis(latency));
      if (obs::Tracer().enabled()) {
        obs::Tracer().Record(clock_->now(), obs::EventKind::kVmResume, VmTarget(id), "",
                             static_cast<int64_t>(latency), parent);
      }
      ArmCrashTimer(target);
    }
    if (cb) {
      cb();
    }
  });
  return true;
}

std::optional<VmSnapshot> VmManager::ExportSuspended(Vm::VmId id) {
  auto it = vms_.find(id);
  if (it == vms_.end() || it->second->state_ != VmState::kSuspended) {
    return std::nullopt;
  }
  Vm* vm = it->second.get();
  VmSnapshot snapshot;
  snapshot.kind = vm->kind_;
  snapshot.config_text = std::move(vm->config_text_);
  snapshot.owner = std::move(vm->owner_);
  snapshot.graph = std::move(vm->graph_);
  snapshot.injected_count = vm->injected_count_;
  snapshot.restart_count = vm->restart_count_;
  vm->state_ = VmState::kDestroyed;
  ++vm->epoch_;
  vms_.erase(it);
  obs::Registry().GetCounter("innet_vm_migrate_exports_total")->Increment();
  return snapshot;
}

Vm* VmManager::ImportSnapshot(VmSnapshot* snapshot, ReadyCallback on_ready, std::string* error) {
  if (snapshot == nullptr || snapshot->graph == nullptr) {
    if (error != nullptr) {
      *error = "snapshot carries no graph";
    }
    return nullptr;
  }
  uint64_t needed = cost_model_.MemoryBytes(snapshot->kind);
  if (memory_used_ + needed > memory_total_) {
    if (error != nullptr) {
      *error = "platform out of guest memory";
    }
    return nullptr;
  }
  auto vm = std::unique_ptr<Vm>(new Vm());
  vm->id_ = next_id_++;
  vm->kind_ = snapshot->kind;
  vm->state_ = VmState::kResuming;
  vm->graph_ = std::move(snapshot->graph);
  vm->config_text_ = std::move(snapshot->config_text);
  vm->owner_ = std::move(snapshot->owner);
  vm->injected_count_ = snapshot->injected_count;
  vm->restart_count_ = snapshot->restart_count;
  vm->clock_ = clock_;
  Vm* raw = vm.get();
  memory_used_ += needed;
  vms_.emplace(raw->id_, std::move(vm));
  // The transplanted graph keeps its element state; profiling restarts under
  // the new id (fresh folded chains, correctly-prefixed walk targets).
  MaybeAttachProfiler(raw);
  obs::Registry().GetCounter("innet_vm_migrate_imports_total")->Increment();
  sim::TimeNs latency = cost_model_.ResumeTime(vm_count());
  if (fault_ != nullptr) {
    latency = fault_->StretchResume(latency);
  }
  uint64_t parent = obs::Tracer().enabled() ? obs::Tracer().current_span() : 0;
  clock_->ScheduleAfter(
      latency,
      [this, id = raw->id_, latency, parent, epoch = raw->epoch_, cb = std::move(on_ready)] {
        Vm* target = Find(id);
        if (target == nullptr || target->state_ != VmState::kResuming ||
            target->epoch_ != epoch) {
          return;  // destroyed or crashed before the import finished
        }
        target->state_ = VmState::kRunning;
        ++target->epoch_;
        target->last_activity_ns_ = clock_->now();
        obs::Registry().GetCounter("innet_vm_resumes_total")->Increment();
        obs::Registry()
            .GetHistogram("innet_vm_resume_latency_ms", {}, LatencyBucketsMs())
            ->Observe(sim::ToMillis(latency));
        if (obs::Tracer().enabled()) {
          target->trace_span_ =
              obs::Tracer().Record(clock_->now(), obs::EventKind::kVmResume, VmTarget(id),
                                   "migrated", static_cast<int64_t>(latency), parent);
        }
        ArmCrashTimer(target);
        if (cb) {
          cb(target);
        }
      });
  return raw;
}

bool VmManager::Destroy(Vm::VmId id) {
  auto it = vms_.find(id);
  if (it == vms_.end()) {
    return false;
  }
  VmState state = it->second->state_;
  if (state != VmState::kSuspended && state != VmState::kCrashed) {
    memory_used_ -= cost_model_.MemoryBytes(it->second->kind_);  // others hold none
  }
  it->second->state_ = VmState::kDestroyed;
  ++it->second->epoch_;
  vms_.erase(it);
  return true;
}

Vm* VmManager::Find(Vm::VmId id) {
  auto it = vms_.find(id);
  return it == vms_.end() ? nullptr : it->second.get();
}

size_t VmManager::running_count() const {
  size_t count = 0;
  for (const auto& [id, vm] : vms_) {
    if (vm->state_ == VmState::kRunning) {
      ++count;
    }
  }
  return count;
}

size_t VmManager::crashed_count() const {
  size_t count = 0;
  for (const auto& [id, vm] : vms_) {
    if (vm->state_ == VmState::kCrashed) {
      ++count;
    }
  }
  return count;
}

std::vector<Vm::VmId> VmManager::AllIds() const {
  std::vector<Vm::VmId> ids;
  ids.reserve(vms_.size());
  for (const auto& [id, vm] : vms_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<Vm::VmId> VmManager::CrashedIds() const {
  std::vector<Vm::VmId> ids;
  for (const auto& [id, vm] : vms_) {
    if (vm->state_ == VmState::kCrashed) {
      ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

size_t VmManager::non_suspended_count() const {
  size_t count = 0;
  for (const auto& [id, vm] : vms_) {
    if (vm->state_ != VmState::kSuspended && vm->state_ != VmState::kCrashed) {
      ++count;
    }
  }
  return count;
}

}  // namespace innet::platform
