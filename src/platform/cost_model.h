// VM lifecycle cost model, calibrated to the paper's Xen/ClickOS
// measurements (§5, §6):
//   - ClickOS VMs boot in ~30 ms, degrading as more VMs run (Figure 5:
//     first-packet RTT ~50 ms at low counts, ~100 ms near 100 VMs);
//   - stripped-down Linux VMs take ~700 ms;
//   - suspend costs 30->90 ms and resume 40->100 ms as the number of
//     existing VMs goes 0->200 (Figure 7);
//   - memory footprints: ~8 MB per ClickOS VM vs ~512 MB per Linux VM
//     (10,000 vs 200 guests on the 128 GB test box, §6).
#ifndef SRC_PLATFORM_COST_MODEL_H_
#define SRC_PLATFORM_COST_MODEL_H_

#include <cstdint>

#include "src/sim/event_queue.h"

namespace innet::platform {

enum class VmKind { kClickOs, kLinux };

struct VmCostModel {
  double clickos_boot_base_ms = 28.0;
  double clickos_boot_slope_ms = 0.6;   // per already-running VM
  double linux_boot_base_ms = 700.0;
  double linux_boot_slope_ms = 2.0;
  double suspend_base_ms = 30.0;
  double suspend_slope_ms = 0.3;        // per existing VM
  double resume_base_ms = 40.0;
  double resume_slope_ms = 0.3;
  uint64_t clickos_memory_bytes = 8ull << 20;
  uint64_t linux_memory_bytes = 512ull << 20;

  sim::TimeNs BootTime(VmKind kind, size_t running_vms) const {
    double ms = kind == VmKind::kClickOs
                    ? clickos_boot_base_ms +
                          clickos_boot_slope_ms * static_cast<double>(running_vms)
                    : linux_boot_base_ms +
                          linux_boot_slope_ms * static_cast<double>(running_vms);
    return sim::FromMillis(ms);
  }
  sim::TimeNs SuspendTime(size_t existing_vms) const {
    return sim::FromMillis(suspend_base_ms +
                           suspend_slope_ms * static_cast<double>(existing_vms));
  }
  sim::TimeNs ResumeTime(size_t existing_vms) const {
    return sim::FromMillis(resume_base_ms +
                           resume_slope_ms * static_cast<double>(existing_vms));
  }
  uint64_t MemoryBytes(VmKind kind) const {
    return kind == VmKind::kClickOs ? clickos_memory_bytes : linux_memory_bytes;
  }
};

}  // namespace innet::platform

#endif  // SRC_PLATFORM_COST_MODEL_H_
