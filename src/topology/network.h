// The operator network snapshot the controller verifies requests against:
// routers with routing tables, operator middleboxes, processing platforms,
// client subnets, and the Internet edge (the paper's Figure 3).
#ifndef SRC_TOPOLOGY_NETWORK_H_
#define SRC_TOPOLOGY_NETWORK_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/netcore/flowspec.h"
#include "src/netcore/ip.h"
#include "src/symexec/engine.h"

namespace innet::topology {

enum class NodeKind {
  kInternet,      // the outside world: origin and sink of arbitrary traffic
  kClientSubnet,  // residential/mobile customers behind an access prefix
  kRouter,        // longest-prefix forwarding
  kMiddlebox,     // operator middlebox on a path
  kPlatform,      // an In-Net processing platform
  kServer,        // an operator-run server (e.g. DNS)
};

enum class MiddleboxKind {
  kStatefulFirewall,  // allows configured outbound protocols + related inbound
  kHttpOptimizer,     // may rewrite HTTP payloads (TCP port 80)
  kWebCache,          // transparent web cache
  kPassthrough,       // wire-speed bump (used by generated topologies)
};

struct RouteEntry {
  Ipv4Prefix prefix;
  std::string next_hop;  // neighbor node name
  // Optional policy-routing classifier (e.g. "tcp src port 80"); wildcard
  // routes match on prefix alone. Routes are evaluated in declaration order.
  FlowSpec match;
};

struct Node {
  std::string name;
  NodeKind kind = NodeKind::kRouter;

  // kRouter: longest-prefix routes; unmatched packets follow `default_route`
  // when set, else drop.
  std::vector<RouteEntry> routes;
  std::string default_route;

  // kMiddlebox parameters.
  MiddleboxKind middlebox = MiddleboxKind::kPassthrough;
  std::vector<uint8_t> allowed_outbound_protos;  // stateful firewall
  // Inbound flows admitted without prior outbound state — the pinholes the
  // controller installs when a customer explicitly authorizes traffic to its
  // registered addresses (§2.1 explicit authorization).
  std::vector<FlowSpec> firewall_pinholes;
  // Two-port middleboxes: the first link is the *inside* (client-facing)
  // port, the second the *outside*.

  // kClientSubnet: the prefix customers live in.
  Ipv4Prefix subnet;

  // kPlatform: the pool module addresses are assigned from.
  Ipv4Prefix address_pool;

  // Link endpoints in port order (filled by AddLink).
  std::vector<std::string> neighbors;
};

class Network {
 public:
  // Adds a node; returns false if the name already exists.
  bool AddNode(Node node);
  // Connects two existing nodes; ports are allocated in call order.
  bool AddLink(const std::string& a, const std::string& b);

  const Node* Find(const std::string& name) const;
  Node* FindMutable(const std::string& name);
  const std::vector<Node>& nodes() const { return nodes_; }

  // Port index of `neighbor` on `node`, or -1.
  int PortOf(const std::string& node, const std::string& neighbor) const;

  std::vector<const Node*> Platforms() const;
  std::vector<const Node*> ClientSubnets() const;

  // The node that owns `addr` (client subnet or platform pool), or nullptr.
  const Node* OwnerOf(Ipv4Address addr) const;

  // Hop count of the shortest link path between two nodes; -1 when
  // disconnected or unknown. The controller uses this to prefer platforms
  // close to the traffic the tenant serves (the geolocation placement of the
  // CDN/DNS use cases).
  int HopDistance(const std::string& from, const std::string& to) const;

  // Builds the symbolic graph for the whole network. Node names carry over.
  // Platform nodes get a switch model that knows the modules deployed on them
  // (registered via RegisterModuleAddress before building).
  symexec::SymGraph BuildSymGraph() const;

  // Declares that a module with address `addr` is (hypothetically) deployed
  // on `platform`; the platform's switch model will forward dst==addr to the
  // symbolic node `entry_node` and accept returns from the module. The
  // controller uses this to test placements before committing (§4.3).
  struct ModuleAttachment {
    std::string platform;
    Ipv4Address addr;
    std::string entry_node;  // module's FromNetfront node name in the merged graph
    std::string exit_node;   // module's ToNetfront node name
  };
  void AttachModule(ModuleAttachment attachment) {
    attachments_.push_back(std::move(attachment));
  }
  void ClearAttachments() { attachments_.clear(); }
  const std::vector<ModuleAttachment>& attachments() const { return attachments_; }

  // Installs/removes a pinhole on every stateful firewall (the controller
  // calls this when a client authorizes inbound traffic to its addresses).
  void AddFirewallPinhole(const FlowSpec& pinhole);
  void ClearFirewallPinholes();

  // --- Canned topologies -------------------------------------------------------
  // The paper's Figure 3: internet -- border router -- {path A: nat&fw;
  // path B: web cache + HTTP optimizer} -- access router -- clients, with
  // three platforms hanging off the routers.
  static Network MakeFigure3();
  // A random operator topology with `n_middleboxes` middleboxes in a chain of
  // branching paths, for the Figure 10 scaling experiment.
  static Network MakeScalingTopology(int n_middleboxes, uint64_t seed = 1);
  // A multi-PoP operator: a core router facing the Internet and `pops`
  // regional PoPs, each with an access router, a client subnet
  // (10.<pop+1>.0.0/16), and a platform (172.16.<pop+10>.0/24) — the
  // highly-distributed in-network cloud of §1.
  static Network MakeMultiPop(int pops);

 private:
  std::vector<Node> nodes_;
  std::unordered_map<std::string, size_t> by_name_;
  std::vector<ModuleAttachment> attachments_;
};

}  // namespace innet::topology

#endif  // SRC_TOPOLOGY_NETWORK_H_
