#include "src/topology/network.h"

#include <algorithm>

#include "src/sim/rng.h"

namespace innet::topology {

using innet::HeaderField;
using symexec::kPortDeliver;
using symexec::kPortInject;
using symexec::ModelContext;
using symexec::SymbolicModel;
using symexec::SymbolicPacket;
using symexec::Transition;
using symexec::ValueSet;

namespace {

// --- Node models -------------------------------------------------------------------

// Internet edge: sources and sinks arbitrary outside traffic.
class InternetModel : public SymbolicModel {
 public:
  std::vector<Transition> Apply(ModelContext* /*ctx*/, const SymbolicPacket& packet,
                                int in_port) override {
    if (in_port == kPortInject) {
      SymbolicPacket out = packet;
      // Outside traffic has not traversed the operator firewall yet.
      out.Constrain(HeaderField::kFirewallTag, ValueSet::Single(0));
      return {{0, std::move(out)}};
    }
    return {{kPortDeliver, packet}};
  }
};

// Residential/mobile customers behind `subnet`.
class ClientSubnetModel : public SymbolicModel {
 public:
  explicit ClientSubnetModel(Ipv4Prefix subnet) : subnet_(subnet) {}

  std::vector<Transition> Apply(ModelContext* /*ctx*/, const SymbolicPacket& packet,
                                int in_port) override {
    SymbolicPacket out = packet;
    if (in_port == kPortInject) {
      if (!out.Constrain(HeaderField::kIpSrc, ValueSet::FromPrefix(subnet_))) {
        return {};
      }
      out.Constrain(HeaderField::kFirewallTag, ValueSet::Single(0));
      return {{0, std::move(out)}};
    }
    // Deliver only traffic addressed into the subnet.
    if (!out.Constrain(HeaderField::kIpDst, ValueSet::FromPrefix(subnet_))) {
      return {};
    }
    return {{kPortDeliver, std::move(out)}};
  }

 private:
  Ipv4Prefix subnet_;
};

class ServerModel : public SymbolicModel {
 public:
  std::vector<Transition> Apply(ModelContext* /*ctx*/, const SymbolicPacket& packet,
                                int in_port) override {
    if (in_port == kPortInject) {
      return {{0, packet}};
    }
    return {{kPortDeliver, packet}};
  }
};

// Router with prefix + optional policy-routing classifier per route. Routes
// are evaluated in declaration order; wildcard routes consume their prefix
// from the remaining destination space, policy routes do not (the packet may
// or may not match the classifier at runtime, so both paths stay live —
// an over-approximation that can only add reachable flows).
class RouterModel : public SymbolicModel {
 public:
  struct PortRoute {
    Ipv4Prefix prefix;
    int port;
    FlowSpec match;
  };
  RouterModel(std::vector<PortRoute> routes, int default_port)
      : routes_(std::move(routes)), default_port_(default_port) {}

  std::vector<Transition> Apply(ModelContext* ctx, const SymbolicPacket& packet,
                                int in_port) override {
    std::vector<Transition> out;
    ValueSet remaining = packet.PossibleValues(HeaderField::kIpDst);
    for (const PortRoute& route : routes_) {
      if (route.port == in_port) {
        continue;  // never bounce back out the ingress port
      }
      ValueSet range = ValueSet::FromPrefix(route.prefix);
      ValueSet matched = remaining.Intersect(range);
      if (!matched.IsEmpty()) {
        SymbolicPacket branch = packet;
        if (branch.Constrain(HeaderField::kIpDst, matched)) {
          if (route.match.IsWildcard()) {
            out.push_back({route.port, std::move(branch)});
          } else {
            for (SymbolicPacket& b : branch.ConstrainToFlowSpec(route.match, ctx->vars)) {
              out.push_back({route.port, std::move(b)});
            }
          }
        }
      }
      if (route.match.IsWildcard()) {
        remaining = remaining.Subtract(range);
        if (remaining.IsEmpty()) {
          break;
        }
      }
    }
    if (!remaining.IsEmpty() && default_port_ >= 0 && default_port_ != in_port) {
      SymbolicPacket branch = packet;
      if (branch.Constrain(HeaderField::kIpDst, remaining)) {
        out.push_back({default_port_, std::move(branch)});
      }
    }
    return out;
  }

 private:
  std::vector<PortRoute> routes_;
  int default_port_;
};

// Stateful firewall, modeled as in the paper's Figure 2: outbound traffic of
// an allowed protocol is tagged; inbound traffic must carry the tag (flow
// state folded into the packet so the engine stays oblivious to flow order).
class StatefulFirewallModel : public SymbolicModel {
 public:
  StatefulFirewallModel(std::vector<uint8_t> protos, std::vector<FlowSpec> pinholes)
      : protos_(std::move(protos)), pinholes_(std::move(pinholes)) {}

  std::vector<Transition> Apply(ModelContext* ctx, const SymbolicPacket& packet,
                                int in_port) override {
    if (in_port == 0) {
      // Outbound (inside -> outside).
      SymbolicPacket out = packet;
      ValueSet allowed;
      for (uint8_t proto : protos_) {
        allowed = allowed.Union(ValueSet::Single(proto));
      }
      if (!out.Constrain(HeaderField::kProto, allowed)) {
        return {};
      }
      out.SetConst(HeaderField::kFirewallTag, 1);
      return {{1, std::move(out)}};
    }
    std::vector<Transition> result;
    // Inbound: traffic related to an authorized outbound flow...
    {
      SymbolicPacket related = packet;
      if (related.Constrain(HeaderField::kFirewallTag, ValueSet::Single(1))) {
        result.push_back({0, std::move(related)});
      }
    }
    // ...or matching a controller-installed pinhole (explicit authorization).
    for (const FlowSpec& pinhole : pinholes_) {
      SymbolicPacket branch = packet;
      for (SymbolicPacket& b : branch.ConstrainToFlowSpec(pinhole, ctx->vars)) {
        result.push_back({0, std::move(b)});
      }
    }
    return result;
  }

 private:
  std::vector<uint8_t> protos_;
  std::vector<FlowSpec> pinholes_;
};

// HTTP optimizer: may rewrite payloads of port-80 TCP traffic in either
// direction; everything else passes untouched.
class HttpOptimizerModel : public SymbolicModel {
 public:
  std::vector<Transition> Apply(ModelContext* ctx, const SymbolicPacket& packet,
                                int in_port) override {
    int out_port = in_port == 0 ? 1 : 0;
    std::vector<Transition> out;
    // HTTP branch: the optimizer may rewrite the payload.
    {
      SymbolicPacket http = packet;
      if (http.Constrain(HeaderField::kProto, ValueSet::Single(kProtoTcp))) {
        SymbolicPacket by_dst = http;
        if (by_dst.Constrain(HeaderField::kDstPort, ValueSet::Single(80))) {
          by_dst.SetFresh(HeaderField::kPayload, ctx->vars);
          out.push_back({out_port, std::move(by_dst)});
        }
        SymbolicPacket by_src = std::move(http);
        if (by_src.Constrain(HeaderField::kSrcPort, ValueSet::Single(80))) {
          by_src.SetFresh(HeaderField::kPayload, ctx->vars);
          out.push_back({out_port, std::move(by_src)});
        }
      }
    }
    // Non-HTTP branch (exact on ports: both != 80).
    {
      SymbolicPacket rest = packet;
      ValueSet not80 = ValueSet::Full().Subtract(ValueSet::Single(80));
      if (rest.Constrain(HeaderField::kSrcPort, not80) &&
          rest.Constrain(HeaderField::kDstPort, not80)) {
        out.push_back({out_port, std::move(rest)});
      }
    }
    return out;
  }
};

class PassthroughMiddleboxModel : public SymbolicModel {
 public:
  std::vector<Transition> Apply(ModelContext* /*ctx*/, const SymbolicPacket& packet,
                                int in_port) override {
    return {{in_port == 0 ? 1 : 0, packet}};
  }
};

// Platform software switch: traffic addressed to a deployed module is handed
// to the module's entry node; module egress returns to the network side.
class PlatformModel : public SymbolicModel {
 public:
  struct ModulePort {
    uint32_t addr;
    int port;
  };
  PlatformModel(std::vector<ModulePort> modules, int n_links)
      : modules_(std::move(modules)), n_links_(n_links) {}

  std::vector<Transition> Apply(ModelContext* /*ctx*/, const SymbolicPacket& packet,
                                int in_port) override {
    if (in_port >= n_links_ || in_port == kPortInject) {
      // From a module (or an injection inside the platform): out the first
      // network link.
      return {{0, packet}};
    }
    std::vector<Transition> out;
    for (const ModulePort& module : modules_) {
      SymbolicPacket branch = packet;
      if (branch.Constrain(HeaderField::kIpDst, ValueSet::Single(module.addr))) {
        out.push_back({module.port, std::move(branch)});
      }
    }
    return out;
  }

 private:
  std::vector<ModulePort> modules_;
  int n_links_;
};

}  // namespace

bool Network::AddNode(Node node) {
  if (by_name_.count(node.name) != 0) {
    return false;
  }
  by_name_[node.name] = nodes_.size();
  nodes_.push_back(std::move(node));
  return true;
}

bool Network::AddLink(const std::string& a, const std::string& b) {
  Node* na = FindMutable(a);
  Node* nb = FindMutable(b);
  if (na == nullptr || nb == nullptr) {
    return false;
  }
  na->neighbors.push_back(b);
  nb->neighbors.push_back(a);
  return true;
}

const Node* Network::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &nodes_[it->second];
}

Node* Network::FindMutable(const std::string& name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &nodes_[it->second];
}

int Network::PortOf(const std::string& node, const std::string& neighbor) const {
  const Node* n = Find(node);
  if (n == nullptr) {
    return -1;
  }
  for (size_t i = 0; i < n->neighbors.size(); ++i) {
    if (n->neighbors[i] == neighbor) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<const Node*> Network::Platforms() const {
  std::vector<const Node*> result;
  for (const Node& node : nodes_) {
    if (node.kind == NodeKind::kPlatform) {
      result.push_back(&node);
    }
  }
  return result;
}

std::vector<const Node*> Network::ClientSubnets() const {
  std::vector<const Node*> result;
  for (const Node& node : nodes_) {
    if (node.kind == NodeKind::kClientSubnet) {
      result.push_back(&node);
    }
  }
  return result;
}

void Network::AddFirewallPinhole(const FlowSpec& pinhole) {
  for (Node& node : nodes_) {
    if (node.kind == NodeKind::kMiddlebox &&
        node.middlebox == MiddleboxKind::kStatefulFirewall) {
      node.firewall_pinholes.push_back(pinhole);
    }
  }
}

void Network::ClearFirewallPinholes() {
  for (Node& node : nodes_) {
    node.firewall_pinholes.clear();
  }
}

const Node* Network::OwnerOf(Ipv4Address addr) const {
  for (const Node& node : nodes_) {
    if (node.kind == NodeKind::kClientSubnet && node.subnet.Contains(addr)) {
      return &node;
    }
    if (node.kind == NodeKind::kPlatform && node.address_pool.Contains(addr)) {
      return &node;
    }
  }
  return nullptr;
}

int Network::HopDistance(const std::string& from, const std::string& to) const {
  if (Find(from) == nullptr || Find(to) == nullptr) {
    return -1;
  }
  if (from == to) {
    return 0;
  }
  std::vector<std::string> frontier{from};
  std::unordered_map<std::string, int> dist{{from, 0}};
  while (!frontier.empty()) {
    std::vector<std::string> next;
    for (const std::string& name : frontier) {
      const Node* node = Find(name);
      for (const std::string& neighbor : node->neighbors) {
        if (dist.count(neighbor) != 0) {
          continue;
        }
        dist[neighbor] = dist[name] + 1;
        if (neighbor == to) {
          return dist[neighbor];
        }
        next.push_back(neighbor);
      }
    }
    frontier = std::move(next);
  }
  return -1;
}

symexec::SymGraph Network::BuildSymGraph() const {
  symexec::SymGraph graph;

  for (const Node& node : nodes_) {
    std::shared_ptr<SymbolicModel> model;
    switch (node.kind) {
      case NodeKind::kInternet:
        model = std::make_shared<InternetModel>();
        break;
      case NodeKind::kClientSubnet:
        model = std::make_shared<ClientSubnetModel>(node.subnet);
        break;
      case NodeKind::kServer:
        model = std::make_shared<ServerModel>();
        break;
      case NodeKind::kRouter: {
        std::vector<RouterModel::PortRoute> routes;
        for (const RouteEntry& route : node.routes) {
          int port = PortOf(node.name, route.next_hop);
          if (port >= 0) {
            routes.push_back({route.prefix, port, route.match});
          }
        }
        int default_port =
            node.default_route.empty() ? -1 : PortOf(node.name, node.default_route);
        model = std::make_shared<RouterModel>(std::move(routes), default_port);
        break;
      }
      case NodeKind::kMiddlebox:
        switch (node.middlebox) {
          case MiddleboxKind::kStatefulFirewall:
            model = std::make_shared<StatefulFirewallModel>(node.allowed_outbound_protos,
                                                            node.firewall_pinholes);
            break;
          case MiddleboxKind::kHttpOptimizer:
            model = std::make_shared<HttpOptimizerModel>();
            break;
          case MiddleboxKind::kWebCache:
          case MiddleboxKind::kPassthrough:
            model = std::make_shared<PassthroughMiddleboxModel>();
            break;
        }
        break;
      case NodeKind::kPlatform: {
        std::vector<PlatformModel::ModulePort> modules;
        int next_port = static_cast<int>(node.neighbors.size());
        for (const ModuleAttachment& att : attachments_) {
          if (att.platform == node.name) {
            modules.push_back({att.addr.value(), next_port});
            ++next_port;
          }
        }
        model = std::make_shared<PlatformModel>(std::move(modules),
                                                static_cast<int>(node.neighbors.size()));
        break;
      }
    }
    graph.AddNode(node.name, std::move(model));
  }

  // Wire links: port i on a node leads to the i-th neighbor; the reverse edge
  // enters the neighbor on the port that points back.
  for (const Node& node : nodes_) {
    int from = graph.FindNode(node.name);
    for (size_t i = 0; i < node.neighbors.size(); ++i) {
      int to = graph.FindNode(node.neighbors[i]);
      int back_port = PortOf(node.neighbors[i], node.name);
      graph.Connect(from, static_cast<int>(i), to, back_port);
    }
  }
  return graph;
}

Network Network::MakeFigure3() {
  Network net;
  Node internet;
  internet.name = "internet";
  internet.kind = NodeKind::kInternet;
  net.AddNode(internet);

  Node border;
  border.name = "border";
  border.kind = NodeKind::kRouter;
  net.AddNode(border);

  Node nat_fw;
  nat_fw.name = "nat_firewall";
  nat_fw.kind = NodeKind::kMiddlebox;
  nat_fw.middlebox = MiddleboxKind::kStatefulFirewall;
  nat_fw.allowed_outbound_protos = {kProtoUdp, kProtoTcp};
  net.AddNode(nat_fw);

  Node cache;
  cache.name = "web_cache";
  cache.kind = NodeKind::kMiddlebox;
  cache.middlebox = MiddleboxKind::kWebCache;
  net.AddNode(cache);

  Node optimizer;
  optimizer.name = "http_optimizer";
  optimizer.kind = NodeKind::kMiddlebox;
  optimizer.middlebox = MiddleboxKind::kHttpOptimizer;
  net.AddNode(optimizer);

  Node access;
  access.name = "access";
  access.kind = NodeKind::kRouter;
  net.AddNode(access);

  Node clients;
  clients.name = "clients";
  clients.kind = NodeKind::kClientSubnet;
  clients.subnet = Ipv4Prefix::MustParse("10.10.0.0/16");
  net.AddNode(clients);

  // r2 sits between the HTTP optimizer and the web cache so platform2 can
  // hang off a routing-capable node on the HTTP path.
  Node r2;
  r2.name = "r2";
  r2.kind = NodeKind::kRouter;
  net.AddNode(r2);

  auto make_platform = [&net](const std::string& name, const std::string& pool) {
    Node platform;
    platform.name = name;
    platform.kind = NodeKind::kPlatform;
    platform.address_pool = Ipv4Prefix::MustParse(pool);
    net.AddNode(platform);
  };
  make_platform("platform1", "192.168.1.0/24");  // behind the NAT: unreachable from outside
  make_platform("platform2", "192.168.2.0/24");  // on the HTTP path, behind the web cache
  make_platform("platform3", "172.16.3.0/24");   // directly reachable from the Internet

  // Wiring. Two-port middleboxes: the first link added is the *inside*
  // (client-facing) port 0, the second the *outside* port 1.
  net.AddLink("access", "nat_firewall");    // nat_firewall port 0 = inside
  net.AddLink("nat_firewall", "border");    // nat_firewall port 1 = outside
  net.AddLink("access", "http_optimizer");  // optimizer port 0 = inside
  net.AddLink("http_optimizer", "r2");      // optimizer port 1 = outside
  net.AddLink("r2", "web_cache");           // cache port 0 = inside
  net.AddLink("web_cache", "border");       // cache port 1 = outside
  net.AddLink("access", "clients");
  net.AddLink("internet", "border");
  net.AddLink("access", "platform1");
  net.AddLink("r2", "platform2");
  net.AddLink("border", "platform3");

  // Routing. The border router policy-routes inbound HTTP (src port 80) via
  // the cache/optimizer path — the operator policy Figure 3 illustrates —
  // and everything else toward clients via the NAT&firewall.
  Node* border_node = net.FindMutable("border");
  border_node->routes.push_back({Ipv4Prefix::MustParse("10.10.0.0/16"), "web_cache",
                                 FlowSpec::MustParse("tcp src port 80")});
  border_node->routes.push_back({Ipv4Prefix::MustParse("10.10.0.0/16"), "nat_firewall", {}});
  border_node->routes.push_back({Ipv4Prefix::MustParse("172.16.3.0/24"), "platform3", {}});
  // Platform 2 sits on the HTTP path and is only reachable for TCP traffic —
  // this is why the paper's UDP batcher cannot be placed there (§4.5).
  border_node->routes.push_back({Ipv4Prefix::MustParse("192.168.2.0/24"), "web_cache",
                                 FlowSpec::MustParse("tcp")});
  border_node->default_route = "internet";

  Node* r2_node = net.FindMutable("r2");
  r2_node->routes.push_back({Ipv4Prefix::MustParse("10.10.0.0/16"), "http_optimizer", {}});
  r2_node->routes.push_back({Ipv4Prefix::MustParse("192.168.2.0/24"), "platform2", {}});
  r2_node->default_route = "web_cache";

  Node* access_node = net.FindMutable("access");
  access_node->routes.push_back({Ipv4Prefix::MustParse("10.10.0.0/16"), "clients", {}});
  access_node->routes.push_back({Ipv4Prefix::MustParse("192.168.1.0/24"), "platform1", {}});
  access_node->routes.push_back(
      {Ipv4Prefix::MustParse("192.168.2.0/24"), "http_optimizer", {}});
  access_node->default_route = "nat_firewall";
  return net;
}

Network Network::MakeMultiPop(int pops) {
  Network net;
  Node internet;
  internet.name = "internet";
  internet.kind = NodeKind::kInternet;
  net.AddNode(internet);

  Node core;
  core.name = "core";
  core.kind = NodeKind::kRouter;
  net.AddNode(core);
  net.AddLink("internet", "core");

  for (int pop = 0; pop < pops; ++pop) {
    std::string id = std::to_string(pop);
    Node access;
    access.name = "access" + id;
    access.kind = NodeKind::kRouter;
    net.AddNode(access);

    Node clients;
    clients.name = "clients" + id;
    clients.kind = NodeKind::kClientSubnet;
    clients.subnet = Ipv4Prefix(Ipv4Address(10, static_cast<uint8_t>(pop + 1), 0, 0), 16);
    net.AddNode(clients);

    Node platform;
    platform.name = "platform" + id;
    platform.kind = NodeKind::kPlatform;
    platform.address_pool =
        Ipv4Prefix(Ipv4Address(172, 16, static_cast<uint8_t>(pop + 10), 0), 24);
    net.AddNode(platform);

    net.AddLink("core", access.name);
    net.AddLink(access.name, clients.name);
    net.AddLink(access.name, platform.name);

    Node* access_node = net.FindMutable(access.name);
    access_node->routes.push_back({clients.subnet, clients.name, {}});
    access_node->routes.push_back({platform.address_pool, platform.name, {}});
    access_node->default_route = "core";

    Node* core_node = net.FindMutable("core");
    core_node->routes.push_back({clients.subnet, access.name, {}});
    core_node->routes.push_back({platform.address_pool, access.name, {}});
  }
  net.FindMutable("core")->default_route = "internet";
  return net;
}

Network Network::MakeScalingTopology(int n_middleboxes, uint64_t seed) {
  Network net;
  sim::Rng rng(seed);

  Node internet;
  internet.name = "internet";
  internet.kind = NodeKind::kInternet;
  net.AddNode(internet);

  Node clients;
  clients.name = "clients";
  clients.kind = NodeKind::kClientSubnet;
  clients.subnet = Ipv4Prefix::MustParse("10.10.0.0/16");
  net.AddNode(clients);

  Node platform;
  platform.name = "platform1";
  platform.kind = NodeKind::kPlatform;
  platform.address_pool = Ipv4Prefix::MustParse("172.16.3.0/24");
  net.AddNode(platform);

  // A chain of middleboxes between the Internet and the access router; a mix
  // of pass-through boxes and HTTP optimizers (the firewall would block the
  // unconstrained reach checks the benchmark runs, so the chain mirrors the
  // "many waypoints" structure that drives checking cost).
  std::string prev = "internet";
  for (int i = 0; i < n_middleboxes; ++i) {
    Node mbox;
    mbox.name = "mbox" + std::to_string(i);
    mbox.kind = NodeKind::kMiddlebox;
    mbox.middlebox =
        rng.Bernoulli(0.3) ? MiddleboxKind::kHttpOptimizer : MiddleboxKind::kPassthrough;
    net.AddNode(mbox);
    // Middlebox inside port faces the access/client side, which is the *next*
    // link we add; so wire outside (prev, toward internet) second. Add the
    // inside link after the chain is extended below.
    net.AddLink(mbox.name, prev);  // port 0 of mbox faces prev for now
    prev = mbox.name;
  }

  Node access;
  access.name = "access";
  access.kind = NodeKind::kRouter;
  net.AddNode(access);
  net.AddLink(access.name, prev);
  net.AddLink("access", "clients");
  net.AddLink("access", "platform1");

  Node* access_node = net.FindMutable("access");
  access_node->routes.push_back({Ipv4Prefix::MustParse("10.10.0.0/16"), "clients", {}});
  access_node->routes.push_back({Ipv4Prefix::MustParse("172.16.3.0/24"), "platform1", {}});
  access_node->default_route = prev;
  return net;
}

}  // namespace innet::topology
