// A packet-level simulation of a Reno-style reliable transport (slow start,
// congestion avoidance, fast retransmit, Jacobson RTO with Karn's rule).
// Used for both the SCTP association and the TCP tunnel in the Figure 14
// experiment — at this level of abstraction SCTP's SACK loss recovery and
// TCP Reno behave alike; what differs is the *channel* underneath and the
// minimum RTO (RFC 4960 mandates 1 s for SCTP vs 200 ms typical for TCP).
#ifndef SRC_TRANSPORT_RENO_FLOW_H_
#define SRC_TRANSPORT_RENO_FLOW_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "src/sim/event_queue.h"
#include "src/sim/link.h"
#include "src/sim/rng.h"

namespace innet::transport {

// Where a flow's segments travel. Implementations: a raw lossy path (UDP
// tunnel — losses visible to the flow) or a TCP tunnel (reliable, in-order,
// but stalls under loss).
class PacketChannel {
 public:
  virtual ~PacketChannel() = default;
  // Sends one segment; `on_delivered` fires at the receiver iff it arrives
  // (possibly much later, never for lost packets on a raw channel).
  virtual void Send(uint64_t bytes, std::function<void()> on_delivered) = 0;
};

// Direct path: serialization + propagation + Bernoulli loss.
class RawLossyChannel : public PacketChannel {
 public:
  RawLossyChannel(sim::EventQueue* clock, sim::Rng* rng, const sim::Link::Config& config)
      : link_(clock, rng, config) {}
  void Send(uint64_t bytes, std::function<void()> on_delivered) override {
    link_.Send(bytes, std::move(on_delivered));
  }
  sim::Link& link() { return link_; }

 private:
  sim::Link link_;
};

struct RenoConfig {
  uint64_t mss_bytes = 1400;
  double initial_cwnd_segments = 4;
  double max_cwnd_segments = 512;  // receiver window
  double min_rto_sec = 0.2;        // 1.0 for SCTP (RFC 4960)
  double initial_rto_sec = 1.0;    // 3.0 for SCTP (RFC 4960 §15)
  double max_rto_sec = 60.0;
  bool fast_retransmit = true;
};

class RenoFlow {
 public:
  RenoFlow(sim::EventQueue* clock, PacketChannel* channel, RenoConfig config,
           sim::TimeNs ack_one_way_delay);

  // Makes `segments` more segments available to send (the application
  // write). Call with a large value for a bulk transfer.
  void EnqueueSegments(uint64_t segments);

  // Kicks the sender; also called internally on acks/timeouts.
  void TrySend();

  // Fires every time the *receiver's* in-order delivery point advances to
  // `segment_index` (exclusive prefix count). This is where a tunnel hands
  // inner packets to the upper layer.
  void SetInOrderCallback(std::function<void(uint64_t)> cb) { in_order_cb_ = std::move(cb); }

  // --- Introspection -----------------------------------------------------------
  uint64_t cumulative_acked() const { return cum_acked_; }
  uint64_t receiver_in_order() const { return receiver_cum_; }
  double cwnd_segments() const { return cwnd_; }
  uint64_t retransmit_count() const { return retransmits_; }
  uint64_t rto_count() const { return rto_fires_; }
  uint64_t fast_retransmit_count() const { return fast_retransmits_; }
  // Debug/diagnostic accessors.
  uint64_t next_seq() const { return next_seq_; }
  uint64_t inflight() const { return inflight_; }
  uint64_t available() const { return available_; }
  bool rto_armed() const { return rto_armed_; }
  double rto_sec() const { return rto_sec_; }
  int dup_acks() const { return dup_acks_; }
  bool in_recovery() const { return in_recovery_; }

  double GoodputBps(sim::TimeNs elapsed) const {
    return elapsed == 0 ? 0.0
                        : static_cast<double>(receiver_cum_ * config_.mss_bytes * 8) /
                              sim::ToSeconds(elapsed);
  }

 private:
  void SendSegment(uint64_t seq, bool retransmission);
  void OnSegmentDelivered(uint64_t seq);
  void OnAck(uint64_t cum_ack, bool duplicate);
  void ArmRto();
  void OnRto(uint64_t generation);
  void UpdateRtt(double sample_sec);

  sim::EventQueue* clock_;
  PacketChannel* channel_;
  RenoConfig config_;
  sim::TimeNs ack_delay_;

  // Sender state.
  uint64_t available_ = 0;      // segments the app has written
  uint64_t next_seq_ = 0;       // next segment to send
  uint64_t highest_sent_ = 0;   // one past the highest sequence ever sent
  uint64_t cum_acked_ = 0;    // all segments < cum_acked_ are acked
  double cwnd_;
  double ssthresh_;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  uint64_t recovery_point_ = 0;
  std::unordered_map<uint64_t, sim::TimeNs> sent_time_;   // un-acked, for RTT samples
  std::unordered_set<uint64_t> retransmitted_;            // Karn's rule
  uint64_t inflight_ = 0;

  // RTO state.
  double srtt_sec_ = 0;
  double rttvar_sec_ = 0;
  double rto_sec_;
  bool rtt_seeded_ = false;
  uint64_t rto_generation_ = 0;
  bool rto_armed_ = false;

  // Receiver state.
  uint64_t receiver_cum_ = 0;
  std::unordered_set<uint64_t> out_of_order_;

  // Stats.
  uint64_t retransmits_ = 0;
  uint64_t rto_fires_ = 0;
  uint64_t fast_retransmits_ = 0;

  std::function<void(uint64_t)> in_order_cb_;
};

// A TCP tunnel: carries the upper layer's segments over its own RenoFlow.
// Segments accepted into the tunnel are delivered reliably and in order, but
// (a) delivery stalls while the tunnel recovers from path loss (head-of-line
// blocking), and (b) the tunnel's socket buffer is finite: while the tunnel
// is backed up, further inner segments are dropped at ingress. One
// underlying loss therefore triggers BOTH control loops — the classic
// TCP-in-TCP meltdown that makes SCTP-over-TCP 2-5x slower in Figure 14.
class TcpTunnelChannel : public PacketChannel {
 public:
  TcpTunnelChannel(sim::EventQueue* clock, PacketChannel* path, RenoConfig tunnel_config,
                   sim::TimeNs ack_one_way_delay, uint64_t buffer_segments = 64);

  void Send(uint64_t bytes, std::function<void()> on_delivered) override;

  RenoFlow& tunnel_flow() { return flow_; }
  uint64_t ingress_drops() const { return ingress_drops_; }

 private:
  RenoFlow flow_;
  std::deque<std::function<void()>> pending_;  // per-segment delivery callbacks
  uint64_t delivered_prefix_ = 0;
  uint64_t buffer_segments_;
  uint64_t ingress_drops_ = 0;
};

}  // namespace innet::transport

#endif  // SRC_TRANSPORT_RENO_FLOW_H_
