#include "src/transport/tunnel_experiment.h"

#include <memory>

#include "src/transport/reno_flow.h"

namespace innet::transport {
namespace {

TunnelResult RunOnce(TunnelMode mode, const TunnelParams& params, uint64_t seed) {
  sim::EventQueue clock;
  sim::Rng rng(seed);

  sim::Link::Config path_config;
  path_config.rate_bps = params.link_rate_bps;
  path_config.propagation = sim::FromSeconds(params.rtt_sec / 2.0);
  path_config.loss_prob = params.loss_rate;
  // A ~1.5x BDP drop-tail buffer so the zero-loss case shows the usual Reno
  // sawtooth against the bottleneck queue instead of an unbounded queue.
  path_config.queue_limit_bytes =
      static_cast<uint64_t>(1.5 * params.link_rate_bps / 8.0 * params.rtt_sec);
  RawLossyChannel path(&clock, &rng, path_config);

  RenoConfig sctp_config;
  sctp_config.min_rto_sec = 1.0;      // RFC 4960 RTO.Min
  sctp_config.initial_rto_sec = 3.0;  // RFC 4960 RTO.Initial — the "three
                                      // seconds according to the spec" §8 cites
  sctp_config.max_cwnd_segments = 512;

  TunnelResult result;
  sim::TimeNs duration = sim::FromSeconds(params.duration_sec);
  sim::TimeNs ack_delay = sim::FromSeconds(params.rtt_sec / 2.0);

  if (mode == TunnelMode::kUdp) {
    // UDP tunnel: effectively the raw path (8 bytes of encap ignored).
    RenoFlow sctp(&clock, &path, sctp_config, ack_delay);
    sctp.EnqueueSegments(100'000'000);
    clock.RunUntil(duration);
    result.goodput_mbps = sctp.GoodputBps(duration) / 1e6;
    result.sctp_retransmits = sctp.retransmit_count();
    result.sctp_rto_fires = sctp.rto_count();
    return result;
  }

  RenoConfig tcp_config;
  tcp_config.min_rto_sec = 0.2;
  tcp_config.initial_rto_sec = 1.0;
  tcp_config.max_cwnd_segments = 512;
  TcpTunnelChannel tunnel(&clock, &path, tcp_config, ack_delay,
                          params.tunnel_buffer_segments);

  RenoFlow sctp(&clock, &tunnel, sctp_config, ack_delay);
  sctp.EnqueueSegments(100'000'000);
  clock.RunUntil(duration);
  result.goodput_mbps = sctp.GoodputBps(duration) / 1e6;
  result.sctp_retransmits = sctp.retransmit_count();
  result.sctp_rto_fires = sctp.rto_count();
  result.tunnel_retransmits = tunnel.tunnel_flow().retransmit_count();
  return result;
}

}  // namespace

TunnelResult RunSctpTunnelExperiment(TunnelMode mode, const TunnelParams& params) {
  TunnelResult total;
  int repeats = params.seed_repeats < 1 ? 1 : params.seed_repeats;
  for (int i = 0; i < repeats; ++i) {
    TunnelResult one = RunOnce(mode, params, params.seed + static_cast<uint64_t>(i));
    total.goodput_mbps += one.goodput_mbps;
    total.sctp_retransmits += one.sctp_retransmits;
    total.sctp_rto_fires += one.sctp_rto_fires;
    total.tunnel_retransmits += one.tunnel_retransmits;
  }
  total.goodput_mbps /= repeats;
  return total;
}

}  // namespace innet::transport
