// The §8 "Protocol Tunneling" experiment (Figure 14): SCTP bulk transfer
// over an emulated 100 Mb/s, 20 ms-RTT WAN path with random loss, tunneled
// either over UDP (losses hit SCTP's own SACK recovery) or over TCP (the
// tunnel recovers losses below SCTP, stalling delivery and triggering
// spurious SCTP timeouts).
#ifndef SRC_TRANSPORT_TUNNEL_EXPERIMENT_H_
#define SRC_TRANSPORT_TUNNEL_EXPERIMENT_H_

#include <cstdint>

namespace innet::transport {

enum class TunnelMode { kUdp, kTcp };

struct TunnelResult {
  double goodput_mbps = 0;
  uint64_t sctp_retransmits = 0;
  uint64_t sctp_rto_fires = 0;
  uint64_t tunnel_retransmits = 0;  // 0 for UDP mode
};

struct TunnelParams {
  double link_rate_bps = 100e6;
  double rtt_sec = 0.020;
  double loss_rate = 0.0;
  double duration_sec = 30.0;
  uint64_t seed = 42;
  // Loss patterns make single runs noisy; the experiment averages this many
  // independent runs (seed, seed+1, ...), like iperf repetitions.
  int seed_repeats = 3;
  // TCP-tunnel socket buffer (segments); the finite buffer is what couples
  // the two control loops.
  uint64_t tunnel_buffer_segments = 256;
};

TunnelResult RunSctpTunnelExperiment(TunnelMode mode, const TunnelParams& params);

}  // namespace innet::transport

#endif  // SRC_TRANSPORT_TUNNEL_EXPERIMENT_H_
