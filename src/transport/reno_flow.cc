#include "src/transport/reno_flow.h"

#include <algorithm>
#include <cmath>

namespace innet::transport {

RenoFlow::RenoFlow(sim::EventQueue* clock, PacketChannel* channel, RenoConfig config,
                   sim::TimeNs ack_one_way_delay)
    : clock_(clock),
      channel_(channel),
      config_(config),
      ack_delay_(ack_one_way_delay),
      cwnd_(config.initial_cwnd_segments),
      ssthresh_(config.max_cwnd_segments),
      rto_sec_(config.initial_rto_sec) {}

void RenoFlow::EnqueueSegments(uint64_t segments) {
  available_ += segments;
  TrySend();
}

void RenoFlow::TrySend() {
  while (next_seq_ < available_ &&
         static_cast<double>(inflight_) < std::min(cwnd_, config_.max_cwnd_segments)) {
    // After a go-back-N timeout next_seq_ rewinds below highest_sent_; those
    // sends are retransmissions for Karn's-rule purposes.
    SendSegment(next_seq_, /*retransmission=*/next_seq_ < highest_sent_);
    ++next_seq_;
    if (next_seq_ > highest_sent_) {
      highest_sent_ = next_seq_;
    }
  }
}

void RenoFlow::SendSegment(uint64_t seq, bool retransmission) {
  ++inflight_;
  if (retransmission) {
    ++retransmits_;
    retransmitted_.insert(seq);
  } else {
    sent_time_[seq] = clock_->now();
  }
  if (!rto_armed_) {
    ArmRto();
  }
  channel_->Send(config_.mss_bytes, [this, seq] { OnSegmentDelivered(seq); });
}

void RenoFlow::OnSegmentDelivered(uint64_t seq) {
  // Receiver side: advance the in-order point, remember gaps.
  bool duplicate_data = seq < receiver_cum_ || out_of_order_.count(seq) != 0;
  if (!duplicate_data) {
    if (seq == receiver_cum_) {
      ++receiver_cum_;
      while (out_of_order_.erase(receiver_cum_) != 0) {
        ++receiver_cum_;
      }
      if (in_order_cb_) {
        in_order_cb_(receiver_cum_);
      }
    } else {
      out_of_order_.insert(seq);
    }
  }
  // The ack travels back; it is a duplicate ack when it does not advance the
  // sender's cumulative point.
  uint64_t cum = receiver_cum_;
  clock_->ScheduleAfter(ack_delay_, [this, cum] { OnAck(cum, /*duplicate=*/cum <= cum_acked_); });
}

void RenoFlow::OnAck(uint64_t cum_ack, bool duplicate) {
  if (!duplicate && cum_ack > cum_acked_) {
    uint64_t newly_acked = cum_ack - cum_acked_;
    // RTT sample from the newest acked, non-retransmitted segment (Karn).
    for (uint64_t seq = cum_acked_; seq < cum_ack; ++seq) {
      auto it = sent_time_.find(seq);
      if (it != sent_time_.end()) {
        if (retransmitted_.count(seq) == 0) {
          UpdateRtt(sim::ToSeconds(clock_->now() - it->second));
        }
        sent_time_.erase(it);
      }
      retransmitted_.erase(seq);
    }
    cum_acked_ = cum_ack;
    if (next_seq_ < cum_acked_) {
      // A go-back-N rewind was overtaken by a cumulative ack (the "lost"
      // data had been delivered after all); never resend acked data.
      next_seq_ = cum_acked_;
    }
    inflight_ = inflight_ > newly_acked ? inflight_ - newly_acked : 0;
    // Lost packets never generate acks, so the counter can drift above the
    // truly outstanding span; clamp it (otherwise phantom inflight blocks
    // TrySend forever once the timer is legitimately quenched).
    if (inflight_ > next_seq_ - cum_acked_) {
      inflight_ = next_seq_ - cum_acked_;
    }
    dup_acks_ = 0;

    if (in_recovery_) {
      if (cum_acked_ >= recovery_point_) {
        // Full recovery: deflate back to ssthresh.
        in_recovery_ = false;
        cwnd_ = ssthresh_;
      } else {
        // NewReno partial ack: the next hole is also lost; retransmit it
        // immediately instead of waiting for a timeout.
        SendSegment(cum_acked_, /*retransmission=*/true);
      }
    }
    if (!in_recovery_) {
      if (cwnd_ < ssthresh_) {
        cwnd_ += static_cast<double>(newly_acked);  // slow start
      } else {
        cwnd_ += static_cast<double>(newly_acked) / cwnd_;  // congestion avoidance
      }
      cwnd_ = std::min(cwnd_, config_.max_cwnd_segments);
    }
    if (cum_acked_ >= next_seq_) {
      rto_armed_ = false;  // everything acked; quench the timer
      ++rto_generation_;
    } else {
      ArmRto();  // restart for the next outstanding segment
    }
    TrySend();
    return;
  }

  // Duplicate ack.
  ++dup_acks_;
  if (config_.fast_retransmit && dup_acks_ == 3 && !in_recovery_ && cum_acked_ < next_seq_) {
    ++fast_retransmits_;
    in_recovery_ = true;
    recovery_point_ = highest_sent_;
    ssthresh_ = std::max(static_cast<double>(inflight_) / 2.0, 2.0);
    cwnd_ = ssthresh_ + 3;
    SendSegment(cum_acked_, /*retransmission=*/true);
    return;
  }
  if (in_recovery_ && dup_acks_ > 3) {
    // Window inflation: each further dupack means a segment left the
    // network, so one more may enter — bounded so a long multi-hole recovery
    // cannot re-overload the bottleneck it just overflowed.
    cwnd_ = std::min(cwnd_ + 1.0, ssthresh_ * 2.0);
    if (inflight_ > 0) {
      --inflight_;
    }
    TrySend();
  }
}

void RenoFlow::ArmRto() {
  rto_armed_ = true;
  uint64_t generation = ++rto_generation_;
  clock_->ScheduleAfter(sim::FromSeconds(rto_sec_), [this, generation] { OnRto(generation); });
}

void RenoFlow::OnRto(uint64_t generation) {
  if (generation != rto_generation_ || !rto_armed_) {
    return;  // stale timer
  }
  if (cum_acked_ >= next_seq_) {
    rto_armed_ = false;
    return;  // nothing outstanding
  }
  ++rto_fires_;
  // Go-back-N: collapse the window and resend from the cumulative point.
  ssthresh_ = std::max(static_cast<double>(inflight_) / 2.0, 2.0);
  cwnd_ = 1.0;
  in_recovery_ = false;
  dup_acks_ = 0;
  inflight_ = 0;  // conservatively assume everything in flight was lost
  next_seq_ = cum_acked_;
  rto_sec_ = std::min(rto_sec_ * 2.0, config_.max_rto_sec);
  ArmRto();
  TrySend();
}

void RenoFlow::UpdateRtt(double sample_sec) {
  if (!rtt_seeded_) {
    srtt_sec_ = sample_sec;
    rttvar_sec_ = sample_sec / 2.0;
    rtt_seeded_ = true;
  } else {
    rttvar_sec_ = 0.75 * rttvar_sec_ + 0.25 * std::abs(srtt_sec_ - sample_sec);
    srtt_sec_ = 0.875 * srtt_sec_ + 0.125 * sample_sec;
  }
  rto_sec_ = std::clamp(srtt_sec_ + 4.0 * rttvar_sec_, config_.min_rto_sec,
                        config_.max_rto_sec);
}

TcpTunnelChannel::TcpTunnelChannel(sim::EventQueue* clock, PacketChannel* path,
                                   RenoConfig tunnel_config, sim::TimeNs ack_one_way_delay,
                                   uint64_t buffer_segments)
    : flow_(clock, path, tunnel_config, ack_one_way_delay),
      buffer_segments_(buffer_segments) {
  flow_.SetInOrderCallback([this](uint64_t in_order) {
    while (delivered_prefix_ < in_order && !pending_.empty()) {
      auto cb = std::move(pending_.front());
      pending_.pop_front();
      ++delivered_prefix_;
      cb();
    }
  });
}

void TcpTunnelChannel::Send(uint64_t /*bytes*/, std::function<void()> on_delivered) {
  // Finite socket buffer: pending_ counts segments accepted but not yet
  // delivered in order at the far end. A backed-up tunnel drops at ingress.
  if (pending_.size() >= buffer_segments_) {
    ++ingress_drops_;
    return;  // the inner transport sees this as loss
  }
  // One upper-layer segment rides as one tunnel segment (same MSS).
  pending_.push_back(std::move(on_delivered));
  flow_.EnqueueSegments(1);
}

}  // namespace innet::transport
