// FederationCoordinator: the cross-PoP brain. It holds an eventually-
// consistent view of every region, assembled from gossip digests polled over
// its own ControlChannel (scope kRegion, so inter-PoP links draw from the
// fault plan's region_* class and can be partitioned per region), places new
// tenants into the region ranked best by modeled client RTT + digest load
// (scheduler::RankRegions), and drives cross-region migrations by routing
// the exported guest state through itself (kRegionExport on the source,
// kRegionImport on the target).
//
// Beliefs vs truth: the coordinator's placement map (module -> region) is a
// belief derived from acks and digests, never authoritative — a partitioned
// region keeps mutating local state autonomously. On heal the coordinator
// reconciles: stale beliefs (modules the region no longer reports live) are
// dropped, and modules the region grew on its own are discovered. This is
// Orchestrator::ReconcilePlatform one level up.
#ifndef SRC_FEDERATION_COORDINATOR_H_
#define SRC_FEDERATION_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/controller/control_channel.h"
#include "src/federation/region.h"
#include "src/obs/fleetview.h"
#include "src/scheduler/policy.h"
#include "src/sim/event_queue.h"
#include "src/sim/fault_injector.h"

namespace innet::federation {

struct CoordinatorOptions {
  // How often StartDigestPolling polls every region.
  sim::TimeNs digest_period = 500 * sim::kMillisecond;
  // A digest older than this is a stale belief: its region ranks after every
  // fresh one during placement.
  sim::TimeNs staleness_window = 2 * sim::kSecond;
  // Retry schedule for coordinator -> region ops (WAN links are slower than
  // the intra-PoP control plane, so timeouts are roomier).
  controller::ControlRetryPolicy retry{/*op_timeout=*/400 * sim::kMillisecond,
                                      /*backoff_base=*/100 * sim::kMillisecond,
                                      /*backoff_factor=*/2.0,
                                      /*backoff_cap=*/2 * sim::kSecond,
                                      /*max_attempts=*/5};
  // Modeled RTT matrix defaults: client -> own region, and per step of
  // registration-order distance between regions.
  double intra_rtt_ms = 2.0;
  double inter_rtt_step_ms = 20.0;
};

// A tenant deploy plus the client population it should land near.
struct FederatedRequest {
  controller::ClientRequest request;
  std::string client_region;  // region affinity of the client population
};

struct FederatedDeploy {
  bool ok = false;
  std::string error;
  std::string region;     // where the tenant landed
  std::string module_id;  // region-local module id
  std::string platform;
  size_t attempts = 0;     // regions tried (1 = first choice accepted)
  bool failed_over = false;
  // Root span of the federated operation: every cross-region hop and every
  // region-local child span parents under it, so the merged dump renders the
  // whole deploy as one connected tree. 0 when tracing is disabled.
  uint64_t trace_id = 0;
};

struct FederatedMigration {
  bool ok = false;
  bool lost = false;  // guest state unrecoverable (import failed both ways)
  std::string error;
  std::string module_id;      // id before the move
  std::string new_module_id;  // id in the adopting region (on success)
  std::string source_region;
  std::string target_region;
  uint64_t trace_id = 0;  // root span of the migration (see FederatedDeploy)
};

class FederationCoordinator {
 public:
  using DeployCallback = std::function<void(const FederatedDeploy&)>;
  using MigrationCallback = std::function<void(const FederatedMigration&)>;

  FederationCoordinator(sim::EventQueue* clock, CoordinatorOptions options = {});

  // Registers a region; registration order defines the default RTT matrix
  // (|index distance| * inter_rtt_step_ms, intra_rtt_ms on the diagonal).
  // The region must outlive the coordinator.
  void AddRegion(RegionController* region);
  // Overrides the modeled RTT for one (client region -> region) pair,
  // symmetric by default lookup.
  void SetRtt(const std::string& from, const std::string& to, double rtt_ms);
  double ModelRtt(const std::string& from, const std::string& to) const;

  // Attaches the fault oracle to the coordinator<->region links (the channel
  // is scoped to the plan's region_* fault class). nullptr = ideal WAN.
  void SetFaultInjector(sim::FaultInjector* injector) { channel_.SetFaultInjector(injector); }
  controller::ControlChannel& channel() { return channel_; }
  controller::ControlClient& client() { return client_; }

  // Polls every registered region once now, then every digest_period.
  void StartDigestPolling();
  // One poll round (async under a faulty channel).
  void PollDigests();

  // Latency-aware placement: ranks regions by modeled RTT from the request's
  // client population + digest load (fresh, non-degraded regions strictly
  // first), then walks the ranking, handing the deploy to each region until
  // one accepts. `on_done` fires exactly once.
  void Deploy(const FederatedRequest& request, DeployCallback on_done);

  // Cross-region migration via the coordinator: export (suspend + detach) on
  // the believed source region, import (re-verify + adopt) on the target.
  // If the target rejects, the guest is re-imported on the source; if that
  // also fails the tenant is reported lost. `on_done` fires exactly once.
  void Migrate(const std::string& module_id, const std::string& target_region,
               MigrationCallback on_done);

  // Partition / heal one region's WAN link. Healing immediately pulls a
  // fresh digest over the direct path and reconciles beliefs against it.
  void SetRegionPartitioned(const std::string& region, bool partitioned);

  struct ReconcileOutcome {
    size_t stale_dropped = 0;  // beliefs the region no longer backs
    size_t discovered = 0;     // live modules the coordinator did not know
  };
  // Compares beliefs about `region` against its current digest (fetched over
  // the fault-exempt direct path) and converges the placement map.
  ReconcileOutcome ReconcileRegion(const std::string& region);

  // Beliefs no region's last-known digest backs (0 after a full reconcile).
  size_t StaleBeliefCount() const;

  // The fleet-wide observability view: every accepted digest's metrics
  // snapshot lands here (deltas, EWMA anomaly flags, correlated incidents).
  // Placement consults AnomalousRegions() so flagged regions rank last among
  // their freshness class; benches dump it via WriteJsonFile.
  obs::FleetView& fleet_view() { return fleet_view_; }
  const obs::FleetView& fleet_view() const { return fleet_view_; }

  // Last digest received from `region`, or nullptr before the first one.
  const RegionDigest* ViewOf(const std::string& region) const;
  // Believed region of a module ("" when unknown).
  std::string BeliefOf(const std::string& module_id) const;
  size_t belief_count() const { return beliefs_.size(); }
  std::vector<std::string> RegionNames() const;  // sorted

 private:
  struct RegionState {
    RegionController* region = nullptr;
    size_t index = 0;  // registration order, drives the default RTT matrix
    RegionDigest digest;
    uint64_t received_ns = 0;
    bool have_digest = false;
  };

  uint64_t MintEpoch() { return ++epoch_seq_; }
  void SchedulePollTick();
  void AcceptDigest(const std::string& region, const RegionDigest& digest);
  void TryDeploy(std::shared_ptr<struct DeployAttempt> attempt);
  void FinishMigration(const FederatedMigration& result, const MigrationCallback& on_done);

  sim::EventQueue* clock_;
  CoordinatorOptions options_;
  controller::ControlChannel channel_;
  controller::ControlClient client_;
  uint64_t epoch_seq_ = 0;
  bool polling_ = false;
  obs::FleetView fleet_view_;
  std::map<std::string, RegionState> regions_;
  std::map<std::string, double> rtt_override_;      // "from|to" -> ms
  std::map<std::string, std::string> beliefs_;      // module id -> region
  // Guards polling ticks and async continuations against outliving us.
  std::shared_ptr<char> alive_;
};

}  // namespace innet::federation

#endif  // SRC_FEDERATION_COORDINATOR_H_
