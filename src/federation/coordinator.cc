#include "src/federation/coordinator.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace innet::federation {

using controller::ControlOp;
using controller::ControlRequest;
using controller::ControlResponse;

// One federated deploy walking the ranked region list until a region accepts.
struct DeployAttempt {
  FederatedRequest request;
  std::vector<std::string> ranked;
  size_t index = 0;
  uint64_t trace_id = 0;  // root span every hop of this deploy parents under
  FederationCoordinator::DeployCallback on_done;
};

FederationCoordinator::FederationCoordinator(sim::EventQueue* clock, CoordinatorOptions options)
    : clock_(clock),
      options_(options),
      channel_(clock),
      client_(clock, &channel_, options.retry),
      alive_(std::make_shared<char>(0)) {
  channel_.set_fault_scope(controller::FaultScope::kRegion);
  fleet_view_.set_staleness_window_ns(static_cast<uint64_t>(options_.staleness_window));
}

void FederationCoordinator::AddRegion(RegionController* region) {
  RegionState state;
  state.region = region;
  state.index = regions_.size();
  const std::string name = region->name();
  channel_.RegisterEndpoint(
      name, [region](const ControlRequest& request, controller::RespondFn respond) {
        region->HandleRegionOp(request, std::move(respond));
      });
  regions_[name] = std::move(state);
}

void FederationCoordinator::SetRtt(const std::string& from, const std::string& to,
                                   double rtt_ms) {
  rtt_override_[from + "|" + to] = rtt_ms;
}

double FederationCoordinator::ModelRtt(const std::string& from, const std::string& to) const {
  auto it = rtt_override_.find(from + "|" + to);
  if (it != rtt_override_.end()) {
    return it->second;
  }
  it = rtt_override_.find(to + "|" + from);
  if (it != rtt_override_.end()) {
    return it->second;
  }
  if (from == to) {
    return options_.intra_rtt_ms;
  }
  auto from_it = regions_.find(from);
  auto to_it = regions_.find(to);
  if (from_it == regions_.end() || to_it == regions_.end()) {
    // Unknown client population: flat one-step RTT, so ranking falls back to
    // load alone.
    return options_.inter_rtt_step_ms;
  }
  size_t a = from_it->second.index;
  size_t b = to_it->second.index;
  size_t distance = a > b ? a - b : b - a;
  return static_cast<double>(distance) * options_.inter_rtt_step_ms;
}

void FederationCoordinator::StartDigestPolling() {
  if (polling_) {
    return;
  }
  polling_ = true;
  PollDigests();
  SchedulePollTick();
}

void FederationCoordinator::SchedulePollTick() {
  std::weak_ptr<char> watch = alive_;
  clock_->ScheduleAfter(options_.digest_period, [this, watch] {
    if (watch.expired()) {
      return;
    }
    PollDigests();
    SchedulePollTick();
  });
}

void FederationCoordinator::PollDigests() {
  std::weak_ptr<char> watch = alive_;
  for (const auto& [name, state] : regions_) {
    obs::Registry()
        .GetCounter("innet_federation_digests_total", {{"event", "polled"}})
        ->Increment();
    ControlRequest request;
    request.op = ControlOp::kRegionDigest;
    request.tenant = "digest:" + name;
    request.attempt_epoch = 0;  // read-only: no dedup, every poll is fresh
    client_.Issue(name, request, [this, watch, name = name](ControlResponse response) {
      if (watch.expired()) {
        return;
      }
      if (!response.ok) {
        obs::Registry()
            .GetCounter("innet_federation_digests_total", {{"event", "lost"}})
            ->Increment();
        return;
      }
      obs::json::Value payload;
      std::string error;
      RegionDigest digest;
      if (!obs::json::Value::Parse(response.payload_json, &payload, &error) ||
          !RegionDigest::FromJson(payload, &digest, &error)) {
        obs::Registry()
            .GetCounter("innet_federation_digests_total", {{"event", "lost"}})
            ->Increment();
        return;
      }
      AcceptDigest(name, digest);
    });
  }
}

void FederationCoordinator::AcceptDigest(const std::string& region, const RegionDigest& digest) {
  auto it = regions_.find(region);
  if (it == regions_.end()) {
    return;
  }
  RegionState& state = it->second;
  if (state.have_digest && digest.seq <= state.digest.seq) {
    // A reordered WAN link delivered an older digest after a newer one; the
    // monotonic sequence makes dropping it safe.
    obs::Registry()
        .GetCounter("innet_federation_digests_total", {{"event", "reordered"}})
        ->Increment();
    return;
  }
  state.digest = digest;
  state.received_ns = clock_->now();
  state.have_digest = true;
  // Only *accepted* digests feed the fleet view: the seq guard above already
  // discarded duplicates and reorders, so each delta counts exactly once.
  fleet_view_.Ingest(region, digest.seq, clock_->now(), digest.degraded, digest.metric_samples);
  obs::Registry()
      .GetCounter("innet_federation_digests_total", {{"event", "received"}})
      ->Increment();
  obs::Registry()
      .GetGauge("innet_region_platforms", {{"region", region}})
      ->Set(static_cast<double>(digest.platforms));
  obs::Registry()
      .GetGauge("innet_region_tenants", {{"region", region}})
      ->Set(static_cast<double>(digest.tenants));
  if (obs::Tracer().enabled()) {
    obs::Tracer().Record(clock_->now(), obs::EventKind::kRegionDigest, "region:" + region,
                         "seq=" + std::to_string(digest.seq) +
                             " tenants=" + std::to_string(digest.tenants) +
                             (digest.degraded ? " degraded" : ""),
                         static_cast<int64_t>(digest.seq));
  }
}

void FederationCoordinator::Deploy(const FederatedRequest& request, DeployCallback on_done) {
  std::vector<scheduler::RegionCandidate> candidates;
  const uint64_t now = clock_->now();
  const std::vector<std::string> anomalous = fleet_view_.AnomalousRegions(now);
  candidates.reserve(regions_.size());
  for (const auto& [name, state] : regions_) {
    scheduler::RegionCandidate candidate;
    candidate.name = name;
    candidate.rtt_ms = ModelRtt(request.client_region, name);
    candidate.anomalous = std::binary_search(anomalous.begin(), anomalous.end(), name);
    if (state.have_digest) {
      candidate.utilization = state.digest.utilization();
      candidate.degraded = state.digest.degraded;
      candidate.stale = now - state.received_ns > static_cast<uint64_t>(options_.staleness_window);
    } else {
      candidate.stale = true;  // never heard from it: last resort only
    }
    candidates.push_back(std::move(candidate));
  }
  auto attempt = std::make_shared<DeployAttempt>();
  attempt->request = request;
  attempt->ranked = scheduler::RankRegions(candidates);
  attempt->on_done = std::move(on_done);
  if (obs::Tracer().enabled()) {
    // Root of the federated operation: every WAN hop and every region-local
    // handler span parents under this id via the propagated trace context.
    attempt->trace_id = obs::Tracer().Record(
        now, obs::EventKind::kRegionDeploy, "client:" + request.request.client_id,
        "federated deploy from " + request.client_region);
  }
  TryDeploy(std::move(attempt));
}

void FederationCoordinator::TryDeploy(std::shared_ptr<DeployAttempt> attempt) {
  if (attempt->index >= attempt->ranked.size()) {
    obs::Registry()
        .GetCounter("innet_federation_deploys_total", {{"outcome", "unplaceable"}})
        ->Increment();
    FederatedDeploy out;
    out.error = "federation: no region accepted " + attempt->request.request.client_id;
    out.attempts = attempt->index;
    out.trace_id = attempt->trace_id;
    attempt->on_done(out);
    return;
  }
  const std::string region = attempt->ranked[attempt->index];
  ControlRequest request;
  request.op = ControlOp::kRegionDeploy;
  request.tenant = attempt->request.request.client_id;
  request.attempt_epoch = MintEpoch();
  request.payload_json = ClientRequestToJson(attempt->request.request).ToString();
  request.origin_region = "coordinator";
  request.trace_id = attempt->trace_id;
  request.parent_span = attempt->trace_id;
  std::weak_ptr<char> watch = alive_;
  client_.Issue(region, request, [this, watch, attempt, region](ControlResponse response) {
    if (watch.expired()) {
      return;
    }
    if (!response.ok) {
      // Rejected (admission/verify) or unreachable (gave up): either way the
      // ranking's next region gets its shot.
      ++attempt->index;
      TryDeploy(attempt);
      return;
    }
    FederatedDeploy out;
    out.ok = true;
    out.region = region;
    out.attempts = attempt->index + 1;
    out.failed_over = attempt->index > 0;
    out.trace_id = attempt->trace_id;
    obs::json::Value payload;
    std::string error;
    if (obs::json::Value::Parse(response.payload_json, &payload, &error)) {
      if (const obs::json::Value* module = payload.Find("module_id")) {
        out.module_id = module->string_value();
      }
      if (const obs::json::Value* platform = payload.Find("platform")) {
        out.platform = platform->string_value();
      }
    }
    if (!out.module_id.empty()) {
      beliefs_[out.module_id] = region;
    }
    obs::Registry()
        .GetCounter("innet_federation_deploys_total",
                    {{"outcome", out.failed_over ? "failed_over" : "accepted"}})
        ->Increment();
    if (obs::Tracer().enabled()) {
      obs::Tracer().Record(clock_->now(), obs::EventKind::kRegionDeploy,
                           "client:" + attempt->request.request.client_id,
                           "region=" + region + " module=" + out.module_id +
                               (out.failed_over ? " failed_over" : ""),
                           static_cast<int64_t>(out.attempts), attempt->trace_id);
    }
    attempt->on_done(out);
  });
}

void FederationCoordinator::Migrate(const std::string& module_id,
                                    const std::string& target_region,
                                    MigrationCallback on_done) {
  FederatedMigration out;
  out.module_id = module_id;
  out.target_region = target_region;
  if (obs::Tracer().enabled()) {
    // Root span of the migration: export, import, and (on rollback) the
    // source re-import all carry this id, so a cross-region move renders as
    // one connected tree even though it touches two regions' tracers.
    out.trace_id = obs::Tracer().Record(clock_->now(), obs::EventKind::kRegionMigrate,
                                        "module:" + module_id, "requested -> " + target_region);
  }
  auto belief = beliefs_.find(module_id);
  if (belief == beliefs_.end()) {
    out.error = "federation: no placement belief for " + module_id;
    FinishMigration(out, on_done);
    return;
  }
  out.source_region = belief->second;
  if (regions_.count(target_region) == 0) {
    out.error = "federation: unknown target region " + target_region;
    FinishMigration(out, on_done);
    return;
  }
  if (out.source_region == target_region) {
    out.error = "federation: " + module_id + " already in " + target_region;
    FinishMigration(out, on_done);
    return;
  }
  ControlRequest export_request;
  export_request.op = ControlOp::kRegionExport;
  export_request.tenant = module_id;
  export_request.attempt_epoch = MintEpoch();
  export_request.origin_region = "coordinator";
  export_request.trace_id = out.trace_id;
  export_request.parent_span = out.trace_id;
  std::weak_ptr<char> watch = alive_;
  client_.Issue(out.source_region, export_request,
                [this, watch, out, on_done](ControlResponse exported) mutable {
    if (watch.expired()) {
      return;
    }
    if (!exported.ok) {
      // Export failed closed: the guest never left the source.
      out.error = "federation: export failed: " + exported.error;
      FinishMigration(out, on_done);
      return;
    }
    // From here the tenant no longer exists at the source — a failure must
    // re-import it there or the guest is lost.
    obs::json::Value payload;
    std::string error;
    controller::ClientRequest request;
    if (!obs::json::Value::Parse(exported.payload_json, &payload, &error) ||
        !ClientRequestFromJson(payload, &request, &error)) {
      out.lost = true;
      out.error = "federation: exported request unreadable: " + error;
      beliefs_.erase(out.module_id);
      FinishMigration(out, on_done);
      return;
    }
    auto moved = exported.moved;
    ControlRequest import_request;
    import_request.op = ControlOp::kRegionImport;
    import_request.tenant = out.module_id;
    import_request.attempt_epoch = MintEpoch();
    import_request.payload_json = ClientRequestToJson(request).ToString();
    import_request.moved = moved;
    import_request.origin_region = "coordinator";
    import_request.trace_id = out.trace_id;
    import_request.parent_span = out.trace_id;
    client_.Issue(out.target_region, import_request,
                  [this, watch, out, on_done, request, moved](ControlResponse imported) mutable {
      if (watch.expired()) {
        return;
      }
      if (imported.ok) {
        obs::json::Value outcome;
        std::string perror;
        if (obs::json::Value::Parse(imported.payload_json, &outcome, &perror)) {
          if (const obs::json::Value* module = outcome.Find("module_id")) {
            out.new_module_id = module->string_value();
          }
        }
        beliefs_.erase(out.module_id);
        if (!out.new_module_id.empty()) {
          beliefs_[out.new_module_id] = out.target_region;
        }
        out.ok = true;
        FinishMigration(out, on_done);
        return;
      }
      // Target refused or is unreachable: put the guest back at the source,
      // mirroring the single-region migration's import-failure rollback.
      ControlRequest undo;
      undo.op = ControlOp::kRegionImport;
      undo.tenant = out.module_id;
      undo.attempt_epoch = MintEpoch();
      undo.payload_json = ClientRequestToJson(request).ToString();
      undo.moved = moved;
      undo.origin_region = "coordinator";
      undo.trace_id = out.trace_id;
      undo.parent_span = out.trace_id;
      client_.Issue(out.source_region, undo,
                    [this, watch, out, on_done, imported](ControlResponse restored) mutable {
        if (watch.expired()) {
          return;
        }
        beliefs_.erase(out.module_id);
        if (restored.ok) {
          obs::json::Value outcome;
          std::string perror;
          std::string back_id;
          if (obs::json::Value::Parse(restored.payload_json, &outcome, &perror)) {
            if (const obs::json::Value* module = outcome.Find("module_id")) {
              back_id = module->string_value();
            }
          }
          if (!back_id.empty()) {
            beliefs_[back_id] = out.source_region;
          }
          out.error =
              "federation: target rejected (" + imported.error + "); guest restored at source";
        } else {
          out.lost = true;
          out.error = "federation: target rejected (" + imported.error +
                      ") and source re-import failed (" + restored.error + ")";
        }
        FinishMigration(out, on_done);
      });
    });
  });
}

void FederationCoordinator::FinishMigration(const FederatedMigration& result,
                                            const MigrationCallback& on_done) {
  const char* outcome = result.ok ? "completed" : (result.lost ? "lost" : "aborted");
  obs::Registry()
      .GetCounter("innet_federation_migrations_total", {{"outcome", outcome}})
      ->Increment();
  if (obs::Tracer().enabled()) {
    obs::Tracer().Record(clock_->now(), obs::EventKind::kRegionMigrate,
                         "module:" + result.module_id,
                         std::string(outcome) + " " + result.source_region + " -> " +
                             result.target_region +
                             (result.new_module_id.empty() ? "" : " as " + result.new_module_id),
                         0, result.trace_id);
  }
  on_done(result);
}

void FederationCoordinator::SetRegionPartitioned(const std::string& region, bool partitioned) {
  channel_.SetPartitioned(region, partitioned);
  if (!partitioned && regions_.count(region) != 0) {
    // Heal: pull truth over the direct path and converge beliefs now rather
    // than waiting for the next poll round.
    ReconcileRegion(region);
  }
}

FederationCoordinator::ReconcileOutcome FederationCoordinator::ReconcileRegion(
    const std::string& region) {
  ReconcileOutcome outcome;
  auto it = regions_.find(region);
  if (it == regions_.end()) {
    return outcome;
  }
  ControlRequest request;
  request.op = ControlOp::kRegionDigest;
  request.tenant = "digest:" + region;
  ControlResponse response = channel_.DeliverDirect(region, request);
  if (!response.ok) {
    return outcome;
  }
  obs::json::Value payload;
  std::string error;
  RegionDigest digest;
  if (!obs::json::Value::Parse(response.payload_json, &payload, &error) ||
      !RegionDigest::FromJson(payload, &digest, &error)) {
    return outcome;
  }
  AcceptDigest(region, digest);
  std::set<std::string> live(digest.live_modules.begin(), digest.live_modules.end());
  for (auto belief = beliefs_.begin(); belief != beliefs_.end();) {
    if (belief->second == region && live.count(belief->first) == 0) {
      belief = beliefs_.erase(belief);
      ++outcome.stale_dropped;
    } else {
      ++belief;
    }
  }
  for (const std::string& module : digest.live_modules) {
    auto [pos, inserted] = beliefs_.emplace(module, region);
    if (inserted) {
      ++outcome.discovered;
    } else {
      // The region's own digest is ground truth for modules it hosts.
      pos->second = region;
    }
  }
  obs::Registry()
      .GetCounter("innet_federation_reconcile_total", {{"outcome", "stale_dropped"}})
      ->Increment(outcome.stale_dropped);
  obs::Registry()
      .GetCounter("innet_federation_reconcile_total", {{"outcome", "discovered"}})
      ->Increment(outcome.discovered);
  if (obs::Tracer().enabled()) {
    obs::Tracer().Record(clock_->now(), obs::EventKind::kRegionReconcile, "region:" + region,
                         "stale_dropped=" + std::to_string(outcome.stale_dropped) +
                             " discovered=" + std::to_string(outcome.discovered),
                         static_cast<int64_t>(outcome.stale_dropped));
  }
  return outcome;
}

size_t FederationCoordinator::StaleBeliefCount() const {
  size_t stale = 0;
  for (const auto& [module, region] : beliefs_) {
    auto it = regions_.find(region);
    if (it == regions_.end() || !it->second.have_digest) {
      ++stale;
      continue;
    }
    const std::vector<std::string>& live = it->second.digest.live_modules;
    if (!std::binary_search(live.begin(), live.end(), module)) {
      ++stale;
    }
  }
  return stale;
}

const RegionDigest* FederationCoordinator::ViewOf(const std::string& region) const {
  auto it = regions_.find(region);
  return it != regions_.end() && it->second.have_digest ? &it->second.digest : nullptr;
}

std::string FederationCoordinator::BeliefOf(const std::string& module_id) const {
  auto it = beliefs_.find(module_id);
  return it != beliefs_.end() ? it->second : std::string();
}

std::vector<std::string> FederationCoordinator::RegionNames() const {
  std::vector<std::string> names;
  names.reserve(regions_.size());
  for (const auto& [name, state] : regions_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace innet::federation
