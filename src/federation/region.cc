#include "src/federation/region.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/obs/int_telemetry.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace innet::federation {

using controller::ClientRequest;
using controller::ControlOp;
using controller::ControlRequest;
using controller::ControlResponse;
using controller::RespondFn;

obs::json::Value ClientRequestToJson(const ClientRequest& request) {
  obs::json::Value v = obs::json::Value::Object();
  v.Set("client_id", request.client_id);
  v.Set("requester", static_cast<int64_t>(request.requester));
  v.Set("click_config", request.click_config);
  v.Set("requirements", request.requirements);
  obs::json::Value whitelist = obs::json::Value::Array();
  for (const Ipv4Address& addr : request.whitelist) {
    whitelist.Push(addr.ToString());
  }
  v.Set("whitelist", std::move(whitelist));
  obs::json::Value prefixes = obs::json::Value::Array();
  for (const Ipv4Prefix& prefix : request.owned_prefixes) {
    prefixes.Push(prefix.ToString());
  }
  v.Set("owned_prefixes", std::move(prefixes));
  v.Set("pinned_platform", request.pinned_platform);
  return v;
}

bool ClientRequestFromJson(const obs::json::Value& value, ClientRequest* out,
                           std::string* error) {
  if (!value.is_object()) {
    *error = "client request: not an object";
    return false;
  }
  auto string_field = [&value](const std::string& key) -> std::string {
    const obs::json::Value* field = value.Find(key);
    return field != nullptr && field->is_string() ? field->string_value() : std::string();
  };
  out->client_id = string_field("client_id");
  out->click_config = string_field("click_config");
  out->requirements = string_field("requirements");
  out->pinned_platform = string_field("pinned_platform");
  if (const obs::json::Value* requester = value.Find("requester");
      requester != nullptr && requester->is_number()) {
    out->requester = static_cast<controller::RequesterClass>(requester->int_number());
  }
  out->whitelist.clear();
  if (const obs::json::Value* whitelist = value.Find("whitelist");
      whitelist != nullptr && whitelist->is_array()) {
    for (size_t i = 0; i < whitelist->size(); ++i) {
      auto addr = Ipv4Address::Parse(whitelist->at(i).string_value());
      if (!addr) {
        *error = "client request: bad whitelist address";
        return false;
      }
      out->whitelist.push_back(*addr);
    }
  }
  out->owned_prefixes.clear();
  if (const obs::json::Value* prefixes = value.Find("owned_prefixes");
      prefixes != nullptr && prefixes->is_array()) {
    for (size_t i = 0; i < prefixes->size(); ++i) {
      auto prefix = Ipv4Prefix::Parse(prefixes->at(i).string_value());
      if (!prefix) {
        *error = "client request: bad owned prefix";
        return false;
      }
      out->owned_prefixes.push_back(*prefix);
    }
  }
  return true;
}

obs::json::Value RegionDigest::ToJson() const {
  obs::json::Value v = obs::json::Value::Object();
  v.Set("region", region);
  v.Set("seq", seq);
  v.Set("generated_ns", generated_ns);
  v.Set("degraded", degraded);
  v.Set("platforms", static_cast<uint64_t>(platforms));
  v.Set("tenants", static_cast<uint64_t>(tenants));
  v.Set("memory_total", memory_total);
  v.Set("memory_used", memory_used);
  obs::json::Value modules = obs::json::Value::Array();
  for (const std::string& module : live_modules) {
    modules.Push(module);
  }
  v.Set("live_modules", std::move(modules));
  obs::json::Value metrics = obs::json::Value::Object();
  for (const auto& [name, value] : metric_samples) {
    metrics.Set(name, value);
  }
  v.Set("metrics", std::move(metrics));
  return v;
}

bool RegionDigest::FromJson(const obs::json::Value& value, RegionDigest* out,
                            std::string* error) {
  if (!value.is_object()) {
    *error = "region digest: not an object";
    return false;
  }
  const obs::json::Value* region = value.Find("region");
  if (region == nullptr || !region->is_string()) {
    *error = "region digest: missing region";
    return false;
  }
  out->region = region->string_value();
  auto int_field = [&value](const std::string& key) -> uint64_t {
    const obs::json::Value* field = value.Find(key);
    return field != nullptr && field->is_number() ? static_cast<uint64_t>(field->int_number())
                                                  : 0;
  };
  out->seq = int_field("seq");
  out->generated_ns = int_field("generated_ns");
  out->platforms = static_cast<size_t>(int_field("platforms"));
  out->tenants = static_cast<size_t>(int_field("tenants"));
  out->memory_total = int_field("memory_total");
  out->memory_used = int_field("memory_used");
  const obs::json::Value* degraded = value.Find("degraded");
  out->degraded = degraded != nullptr && degraded->bool_value();
  out->live_modules.clear();
  if (const obs::json::Value* modules = value.Find("live_modules");
      modules != nullptr && modules->is_array()) {
    for (size_t i = 0; i < modules->size(); ++i) {
      out->live_modules.push_back(modules->at(i).string_value());
    }
  }
  out->metric_samples.clear();
  if (const obs::json::Value* metrics = value.Find("metrics");
      metrics != nullptr && metrics->is_object()) {
    for (const auto& [name, sample] : metrics->members()) {
      if (sample.is_number()) {
        out->metric_samples[name] = static_cast<uint64_t>(sample.int_number());
      }
    }
  }
  return true;
}

RegionController::RegionController(std::string name, topology::Network network,
                                   sim::EventQueue* clock,
                                   controller::OrchestratorOptions options)
    : name_(std::move(name)),
      clock_(clock),
      orch_(std::move(network), clock, options),
      alive_(std::make_shared<char>(0)) {
  obs::Registry().GetGauge("innet_region_degraded", {{"region", name_}})->Set(0);
}

RegionDigest RegionController::BuildDigest() {
  RegionDigest digest;
  digest.region = name_;
  digest.seq = ++digest_seq_;
  digest.generated_ns = clock_->now();
  digest.degraded = degraded_;
  std::vector<std::string> platform_names = orch_.fleet().Names();
  digest.platforms = platform_names.size();
  for (const std::string& platform_name : platform_names) {
    platform::InNetPlatform* box = orch_.fleet().Get(platform_name);
    if (box != nullptr) {
      digest.memory_total += box->vms().memory_total();
      digest.memory_used += box->vms().memory_used();
    }
  }
  for (const controller::Deployment& deployment : orch_.controller().deployments()) {
    if (orch_.HasPlacement(deployment.module_id)) {
      digest.live_modules.push_back(deployment.module_id);
    }
  }
  std::sort(digest.live_modules.begin(), digest.live_modules.end());
  digest.tenants = digest.live_modules.size();
  // The fleet-aggregation snapshot: cumulative counters from the region's
  // own control plane (never the process-wide registry, which a simulated
  // multi-region run shares). Keys are stable wire names, sorted by the map.
  // Strictly cumulative counters only: FleetView's per-digest deltas treat a
  // shrinking value as a counter reset, so a gauge (memory, live tenants —
  // both already first-class digest fields) would read as a reset storm.
  digest.metric_samples["control_giveups"] = orch_.control_client().giveups();
  digest.metric_samples["control_retries"] = orch_.control_client().retries();
  digest.metric_samples["control_timeouts"] = orch_.control_client().timeouts();
  digest.metric_samples["deploys_served"] =
      static_cast<uint64_t>(orch_.controller().deployments().size());
  // INT conformance, region-scoped the same way: sum the per-tenant
  // violation counters only for clients with a live module in THIS region —
  // the collector itself is shared across a simulated multi-region process.
  uint64_t path_violations = 0;
  std::set<std::string> region_clients;
  for (const controller::Deployment& deployment : orch_.controller().deployments()) {
    if (orch_.HasPlacement(deployment.module_id)) {
      region_clients.insert(deployment.client_id);
    }
  }
  for (const std::string& client : region_clients) {
    path_violations += obs::Int().TenantViolations(client);
  }
  digest.metric_samples["path_violations"] = path_violations;
  return digest;
}

void RegionController::HandleRegionOp(const ControlRequest& request, RespondFn respond) {
  NoteCoordinatorContact();
  // Propagated trace context: spans the handler opens (the orchestrator's
  // deploy / import trees) parent under the coordinator's span, so a
  // federated operation renders as one connected tree. Replays never reach
  // this handler (the endpoint answers them from its dedup cache), so a
  // WAN-duplicated request cannot emit duplicate child spans. A zero id is a
  // no-op.
  obs::ScopedParent trace_parent(obs::Tracer(),
                                 request.trace_id != 0 ? request.parent_span : 0);
  ControlResponse response;
  switch (request.op) {
    case ControlOp::kRegionDigest: {
      response.ok = true;
      response.payload_json = BuildDigest().ToJson().ToString();
      break;
    }
    case ControlOp::kRegionDeploy: {
      ClientRequest deploy_request;
      obs::json::Value payload;
      std::string error;
      if (!obs::json::Value::Parse(request.payload_json, &payload, &error) ||
          !ClientRequestFromJson(payload, &deploy_request, &error)) {
        response.error = "region " + name_ + ": bad deploy payload: " + error;
        break;
      }
      controller::OrchestratedDeploy deploy = orch_.Deploy(deploy_request);
      response.ok = deploy.outcome.accepted;
      response.error = deploy.outcome.reason;
      obs::json::Value outcome = obs::json::Value::Object();
      outcome.Set("module_id", deploy.outcome.module_id);
      outcome.Set("platform", deploy.outcome.platform);
      outcome.Set("addr", deploy.outcome.module_addr.ToString());
      response.payload_json = outcome.ToString();
      break;
    }
    case ControlOp::kRegionExport: {
      // Deferred completion: the ack carries the frozen guest once the
      // suspend lands on the simulated clock.
      orch_.ExportTenant(request.tenant,
                         [respond = std::move(respond)](const controller::TenantExport& exported) {
                           ControlResponse done;
                           done.ok = exported.ok;
                           done.error = exported.error;
                           done.moved = exported.moved;
                           done.payload_json =
                               ClientRequestToJson(exported.request).ToString();
                           respond(std::move(done));
                         });
      return;  // responded above (now or when the suspend lands)
    }
    case ControlOp::kRegionImport: {
      ClientRequest import_request;
      obs::json::Value payload;
      std::string error;
      if (!obs::json::Value::Parse(request.payload_json, &payload, &error) ||
          !ClientRequestFromJson(payload, &import_request, &error)) {
        response.error = "region " + name_ + ": bad import payload: " + error;
        break;
      }
      controller::TenantAdopt adopt = orch_.AdoptMigrated(import_request, request.moved);
      response.ok = adopt.ok;
      response.error = adopt.error;
      obs::json::Value outcome = obs::json::Value::Object();
      outcome.Set("module_id", adopt.module_id);
      outcome.Set("platform", adopt.platform);
      outcome.Set("addr", adopt.addr.ToString());
      response.payload_json = outcome.ToString();
      break;
    }
    default:
      response.error = "region " + name_ + ": not a federation op";
      break;
  }
  respond(std::move(response));
}

void RegionController::EnableDegradedMonitor(sim::TimeNs silence_threshold) {
  silence_threshold_ = silence_threshold;
  last_contact_ns_ = clock_->now();
  std::weak_ptr<char> watch = alive_;
  clock_->ScheduleAfter(silence_threshold_ / 2, [this, watch] {
    if (watch.expired()) {
      return;
    }
    DegradedTick();
  });
}

void RegionController::DegradedTick() {
  if (silence_threshold_ == 0) {
    return;
  }
  if (clock_->now() - last_contact_ns_ >= silence_threshold_) {
    if (!degraded_) {
      EnterDegraded();
    }
    // An update the region would have gossiped if it could reach the
    // coordinator; it queues locally and flushes at heal.
    ++queued_digests_;
    obs::Registry()
        .GetCounter("innet_region_queued_digests_total", {{"region", name_}})
        ->Increment();
  }
  std::weak_ptr<char> watch = alive_;
  clock_->ScheduleAfter(silence_threshold_ / 2, [this, watch] {
    if (watch.expired()) {
      return;
    }
    DegradedTick();
  });
}

void RegionController::EnterDegraded() {
  degraded_ = true;
  obs::Registry().GetGauge("innet_region_degraded", {{"region", name_}})->Set(1);
  if (obs::Tracer().enabled()) {
    obs::Tracer().Record(clock_->now(), obs::EventKind::kRegionDegraded, "region:" + name_,
                         "entered: coordinator silent");
  }
}

void RegionController::ClearDegraded() {
  degraded_ = false;
  obs::Registry().GetGauge("innet_region_degraded", {{"region", name_}})->Set(0);
  if (obs::Tracer().enabled()) {
    obs::Tracer().Record(clock_->now(), obs::EventKind::kRegionDegraded, "region:" + name_,
                         "cleared: coordinator contact",
                         static_cast<int64_t>(queued_digests_));
  }
  queued_digests_ = 0;  // flushed with the next digest poll
}

void RegionController::NoteCoordinatorContact() {
  last_contact_ns_ = clock_->now();
  if (degraded_) {
    ClearDegraded();
  }
}

}  // namespace innet::federation
