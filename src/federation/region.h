// RegionController: one PoP-region's autonomous control plane inside the
// federation. It owns a full Orchestrator (fleet + journal + scheduler) for
// the region's platforms and speaks the federation wire protocol toward the
// FederationCoordinator: it answers digest polls with a gossip-style summary
// of its fleet, accepts deploy hand-offs (running the usual admission →
// SymNet verify → boot path locally), and exports/imports tenants for
// cross-region migration.
//
// Partition tolerance: a region cut off from the coordinator keeps serving —
// deploys, watchdog restarts, and local migrations all run on local state.
// The degraded monitor notices coordinator silence, flags the region
// degraded (queueing digest updates it cannot push), and clears the flag on
// the next contact; the coordinator then reconciles its placement beliefs
// against the region's digest, mirroring Orchestrator::ReconcilePlatform one
// level up.
#ifndef SRC_FEDERATION_REGION_H_
#define SRC_FEDERATION_REGION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/controller/control_channel.h"
#include "src/controller/orchestrator.h"
#include "src/obs/json.h"
#include "src/sim/event_queue.h"
#include "src/topology/network.h"

namespace innet::federation {

// JSON round-trip for a ClientRequest so deploy hand-offs can ride the
// control channel's payload string (keeping src/controller free of any
// federation dependency).
obs::json::Value ClientRequestToJson(const controller::ClientRequest& request);
bool ClientRequestFromJson(const obs::json::Value& value, controller::ClientRequest* out,
                           std::string* error);

// The gossip unit: one region's self-description, assembled from live fleet
// state at poll time. seq is monotonic per region, so the coordinator can
// discard out-of-order (reordered WAN) digests.
struct RegionDigest {
  std::string region;
  uint64_t seq = 0;
  uint64_t generated_ns = 0;
  bool degraded = false;
  size_t platforms = 0;
  size_t tenants = 0;
  uint64_t memory_total = 0;
  uint64_t memory_used = 0;
  std::vector<std::string> live_modules;  // sorted module ids
  // Compact cumulative metrics snapshot for fleet-level aggregation: counters
  // the region reads off its own orchestrator (deploys served, control-plane
  // retry economics, ...), merged coordinator-side by obs::FleetView. A
  // sorted map so the wire encoding is deterministic. Cumulative values (not
  // deltas) ride the wire: the coordinator's seq guard discards duplicated /
  // reordered digests, so deltas are computed exactly once per accepted seq
  // and a WAN duplicate can never double-count.
  std::map<std::string, uint64_t> metric_samples;

  double utilization() const {
    return memory_total == 0 ? 0.0
                             : static_cast<double>(memory_used) / static_cast<double>(memory_total);
  }

  obs::json::Value ToJson() const;
  static bool FromJson(const obs::json::Value& value, RegionDigest* out, std::string* error);
};

class RegionController {
 public:
  // The region owns its orchestrator (and through it a fleet + journal) for
  // `network`'s platforms. `name` is the region's federation-wide identity.
  RegionController(std::string name, topology::Network network, sim::EventQueue* clock,
                   controller::OrchestratorOptions options = {});

  const std::string& name() const { return name_; }
  controller::Orchestrator& orchestrator() { return orch_; }
  sim::EventQueue* clock() { return clock_; }

  // Snapshot of the region's current state; bumps the digest sequence.
  RegionDigest BuildDigest();

  // The region's side of the federation protocol. `respond` may fire later
  // (kRegionExport suspends a guest on the simulated clock).
  void HandleRegionOp(const controller::ControlRequest& request, controller::RespondFn respond);

  // Arms the degraded-mode monitor: when no coordinator contact arrives for
  // `silence_threshold`, the region flags itself degraded (trace + gauge)
  // and counts the digest updates it would have pushed. Contact clears it.
  void EnableDegradedMonitor(sim::TimeNs silence_threshold);
  void NoteCoordinatorContact();

  bool degraded() const { return degraded_; }
  uint64_t queued_digests() const { return queued_digests_; }

 private:
  void DegradedTick();
  void EnterDegraded();
  void ClearDegraded();

  std::string name_;
  sim::EventQueue* clock_;
  controller::Orchestrator orch_;
  uint64_t digest_seq_ = 0;
  sim::TimeNs silence_threshold_ = 0;  // 0 = monitor disabled
  sim::TimeNs last_contact_ns_ = 0;
  bool degraded_ = false;
  uint64_t queued_digests_ = 0;
  // Guards monitor ticks scheduled past this controller's lifetime.
  std::shared_ptr<char> alive_;
};

}  // namespace innet::federation

#endif  // SRC_FEDERATION_REGION_H_
