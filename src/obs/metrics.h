// MetricsRegistry: process-wide counters, gauges, and fixed-bucket
// histograms, in the style of Click read handlers and Prometheus registries.
//
// Determinism contract: instruments live in a name+label-sorted map, labels
// are canonicalized (sorted by key), and the dumps use fixed number
// formatting — so a dump is a pure function of the observations made, and
// two runs of the same seeded experiment produce byte-identical files. To
// keep that property, instrument only with values derived from the simulated
// clock or from packet/state counts; wall-clock timings belong in bench
// snapshots (bench/bench_util.h), never in the registry.
//
// Instrument pointers returned by Get* stay valid for the registry's
// lifetime: ResetValues() zeroes values but never destroys instruments, so
// hot paths may cache the pointer once and bump it per event.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/json.h"

namespace innet::obs {

// Label set as (key, value) pairs; Get* canonicalizes by sorting on key.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_ += delta; }
  // Snapshot exporters (per-element counters collected at dump time) set the
  // absolute value; live instrumentation should Increment.
  void SetTo(uint64_t value) { value_ = value; }
  uint64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  double value_ = 0;
};

// Fixed upper-bound buckets plus an implicit +inf bucket; Observe is O(log
// buckets). Bounds are set at first registration; later Get* calls with the
// same name+labels reuse the existing instrument (their bounds argument is
// ignored).
class Histogram {
 public:
  void Observe(double value);
  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  // buckets().size() == bounds().size() + 1; the last entry is the +inf
  // overflow bucket. Counts are per-bucket, not cumulative.
  const std::vector<uint64_t>& buckets() const { return buckets_; }

  // Deterministic quantile estimate (q in [0, 1]) linearly interpolated
  // inside the bucket holding the target rank — a pure function of the
  // observations, so it belongs in dumps and SLO evaluation (unlike sampled
  // percentiles). Ranks landing in the +inf overflow bucket clamp to the
  // highest finite bound (the Prometheus convention); 0 when empty.
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P90() const { return Quantile(0.90); }
  double P99() const { return Quantile(0.99); }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);
  std::vector<double> bounds_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
};

// Standard bucket ladders.
std::vector<double> ExponentialBuckets(double start, double factor, int count);
std::vector<double> LinearBuckets(double start, double width, int count);

// Histogram::Quantile's core, exposed for consumers that only have the
// serialized bucket arrays (tools/innet_top reading a metrics dump).
// `buckets` holds per-bucket counts with the +inf overflow bucket last
// (buckets.size() == bounds.size() + 1).
double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<uint64_t>& buckets, double q);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. A name+labels pair registered as one kind must always be
  // requested as that kind (kind mismatch aborts: it is a programming error,
  // and silently returning a fresh instrument would corrupt the dump).
  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels,
                          const std::vector<double>& bounds);

  // Zeroes every instrument's value; instruments (and cached pointers to
  // them) survive. Benches call this between scenarios.
  void ResetValues();

  // Read-only walk over every instrument in dump order (name, then canonical
  // labels). Exactly one of counter/gauge/histogram is non-null per call.
  // This is how the time-series sampler scrapes the registry without the
  // registry knowing about windows or rings.
  using InstrumentVisitor =
      std::function<void(const std::string& name, const Labels& labels, const Counter* counter,
                         const Gauge* gauge, const Histogram* histogram)>;
  void VisitInstruments(const InstrumentVisitor& visit) const;

  // Distinct metric names, sorted (label variants collapse to one entry).
  std::vector<std::string> MetricNames() const;
  size_t instrument_count() const { return instruments_.size(); }

  // "name{k="v"} value" lines, sorted by name then labels.
  void DumpText(std::ostream& out) const;
  // {"metrics": [...]} with the same ordering.
  json::Value ToJson() const;
  void DumpJson(std::ostream& out) const;
  bool WriteJsonFile(const std::string& path) const;

  // The process-wide registry used by all built-in instrumentation.
  static MetricsRegistry& Global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Instrument {
    std::string name;
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Instrument* FindOrCreate(const std::string& name, const Labels& labels, Kind kind,
                           const std::vector<double>* bounds);

  // Keyed by name + '\x00' + canonical label serialization: std::map keeps
  // dumps sorted and therefore deterministic.
  std::map<std::string, Instrument> instruments_;
};

// Shorthand for the global registry.
inline MetricsRegistry& Registry() { return MetricsRegistry::Global(); }

}  // namespace innet::obs

#endif  // SRC_OBS_METRICS_H_
