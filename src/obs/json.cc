#include "src/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace innet::obs::json {

std::string Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// Fixed number format: integers print exactly, everything else uses %.9g —
// one stable representation per value, never locale-dependent.
void WriteNumber(std::ostream& out, double num, int64_t as_int, bool is_int) {
  char buf[64];
  if (is_int) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(as_int));
  } else if (std::isfinite(num) && num == std::floor(num) && std::fabs(num) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(num));
  } else if (std::isfinite(num)) {
    std::snprintf(buf, sizeof(buf), "%.9g", num);
  } else {
    std::snprintf(buf, sizeof(buf), "null");  // JSON has no inf/nan
  }
  out << buf;
}

}  // namespace

Value& Value::Set(const std::string& key, Value value) {
  type_ = Type::kObject;
  members_.emplace_back(key, std::move(value));
  return *this;
}

Value& Value::Push(Value value) {
  type_ = Type::kArray;
  items_.push_back(std::move(value));
  return *this;
}

const Value* Value::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

void Value::Write(std::ostream& out, int indent) const { WriteIndented(out, indent, 0); }

std::string Value::ToString(int indent) const {
  std::ostringstream buf;
  Write(buf, indent);
  return buf.str();
}

bool Value::WriteFile(const std::string& path, int indent) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  Write(out, indent);
  out << "\n";
  return static_cast<bool>(out);
}

void Value::WriteIndented(std::ostream& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  std::string pad = pretty ? std::string(static_cast<size_t>(indent * (depth + 1)), ' ') : "";
  std::string close_pad = pretty ? std::string(static_cast<size_t>(indent * depth), ' ') : "";
  const char* nl = pretty ? "\n" : "";
  const char* colon = pretty ? ": " : ":";
  switch (type_) {
    case Type::kNull:
      out << "null";
      break;
    case Type::kBool:
      out << (bool_ ? "true" : "false");
      break;
    case Type::kNumber:
      WriteNumber(out, num_, int_, is_int_);
      break;
    case Type::kString:
      out << '"' << Escape(str_) << '"';
      break;
    case Type::kArray: {
      if (items_.empty()) {
        out << "[]";
        break;
      }
      out << '[' << nl;
      for (size_t i = 0; i < items_.size(); ++i) {
        out << pad;
        items_[i].WriteIndented(out, indent, depth + 1);
        if (i + 1 < items_.size()) {
          out << ',';
        }
        out << nl;
      }
      out << close_pad << ']';
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out << "{}";
        break;
      }
      out << '{' << nl;
      for (size_t i = 0; i < members_.size(); ++i) {
        out << pad << '"' << Escape(members_[i].first) << '"' << colon;
        members_[i].second.WriteIndented(out, indent, depth + 1);
        if (i + 1 < members_.size()) {
          out << ',';
        }
        out << nl;
      }
      out << close_pad << '}';
      break;
    }
  }
}

namespace {

// Containers deeper than this are rejected. The parser recurses once per
// nesting level, so without a bound a hostile dump ("[[[[...") can exhaust
// the stack; our own dumps nest a handful of levels.
constexpr int kMaxParseDepth = 256;

struct Parser {
  const std::string& text;
  size_t pos = 0;
  std::string* error;
  int depth = 0;

  bool Fail(const std::string& message) {
    *error = "at byte " + std::to_string(pos) + ": " + message;
    return false;
  }
  void SkipWs() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
                                 text[pos] == '\r')) {
      ++pos;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool ParseHex4(uint32_t* out) {
    if (pos + 4 > text.size()) {
      return Fail("truncated \\u escape");
    }
    *out = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text[pos + static_cast<size_t>(i)];
      uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("bad \\u escape");
      }
      *out = (*out << 4) | digit;
    }
    pos += 4;
    return true;
  }

  static void AppendUtf8(std::string* out, uint32_t code) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  bool ParseString(std::string* out) {
    if (pos >= text.size() || text[pos] != '"') {
      return Fail("expected string");
    }
    ++pos;
    out->clear();
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos >= text.size()) {
          return Fail("truncated escape");
        }
        char e = text[pos++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            uint32_t code = 0;
            if (!ParseHex4(&code)) {
              return false;
            }
            // Surrogate pair: a high surrogate must be followed by
            // \uDC00-\uDFFF; combine them into one code point.
            if (code >= 0xD800 && code <= 0xDBFF) {
              if (pos + 1 >= text.size() || text[pos] != '\\' || text[pos + 1] != 'u') {
                return Fail("unpaired high surrogate");
              }
              pos += 2;
              uint32_t low = 0;
              if (!ParseHex4(&low)) {
                return false;
              }
              if (low < 0xDC00 || low > 0xDFFF) {
                return Fail("bad low surrogate");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else if (code >= 0xDC00 && code <= 0xDFFF) {
              return Fail("unpaired low surrogate");
            }
            AppendUtf8(out, code);
            break;
          }
          default:
            return Fail("unknown escape");
        }
      } else {
        *out += c;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseValue(Value* out) {
    SkipWs();
    if (pos >= text.size()) {
      return Fail("unexpected end of input");
    }
    char c = text[pos];
    if (c == '{') {
      if (++depth > kMaxParseDepth) {
        return Fail("nesting too deep");
      }
      ++pos;
      *out = Value::Object();
      SkipWs();
      if (Consume('}')) {
        --depth;
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) {
          return false;
        }
        if (!Consume(':')) {
          return Fail("expected ':'");
        }
        Value member;
        if (!ParseValue(&member)) {
          return false;
        }
        out->Set(key, std::move(member));
        if (Consume(',')) {
          continue;
        }
        if (Consume('}')) {
          --depth;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      if (++depth > kMaxParseDepth) {
        return Fail("nesting too deep");
      }
      ++pos;
      *out = Value::Array();
      SkipWs();
      if (Consume(']')) {
        --depth;
        return true;
      }
      while (true) {
        Value item;
        if (!ParseValue(&item)) {
          return false;
        }
        out->Push(std::move(item));
        if (Consume(',')) {
          continue;
        }
        if (Consume(']')) {
          --depth;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      std::string s;
      if (!ParseString(&s)) {
        return false;
      }
      *out = Value(std::move(s));
      return true;
    }
    if (text.compare(pos, 4, "true") == 0) {
      pos += 4;
      *out = Value(true);
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      pos += 5;
      *out = Value(false);
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      pos += 4;
      *out = Value();
      return true;
    }
    // Number.
    char* end = nullptr;
    double num = std::strtod(text.c_str() + pos, &end);
    if (end == text.c_str() + pos) {
      return Fail("unexpected character");
    }
    size_t len = static_cast<size_t>(end - (text.c_str() + pos));
    std::string token = text.substr(pos, len);
    pos += len;
    if (token.find('.') == std::string::npos && token.find('e') == std::string::npos &&
        token.find('E') == std::string::npos) {
      *out = Value(static_cast<int64_t>(std::strtoll(token.c_str(), nullptr, 10)));
    } else {
      *out = Value(num);
    }
    return true;
  }
};

}  // namespace

bool Value::Parse(const std::string& text, Value* out, std::string* error) {
  std::string local_error;
  Parser parser{text, 0, error != nullptr ? error : &local_error};
  if (!parser.ParseValue(out)) {
    return false;
  }
  parser.SkipWs();
  if (parser.pos != text.size()) {
    return parser.Fail("trailing garbage after value");
  }
  return true;
}

}  // namespace innet::obs::json
