// Time-series telemetry: a sim-clock-driven sampler that turns the
// point-in-time MetricsRegistry into bounded per-metric rings of windowed
// observations, plus an EWMA anomaly detector over those windows.
//
// Every dump the registry produces is an end-of-run aggregate; nothing can
// answer "when did throughput dip?" inside a run. The TimeSeriesSampler
// closes that gap: once per window (default 100 ms of simulated time) it
// scrapes every instrument and appends one point per series —
//
//   counters    -> the window's delta and a per-second rate
//   gauges      -> the raw value at the window edge
//   histograms  -> the window's observation count and the p50/p99 of the
//                  *delta* buckets (observations made inside this window
//                  only, not the run-to-date aggregate)
//
// Points live in bounded rings (oldest evicted, eviction counted), so a
// long experiment stays fixed-memory. Determinism contract: the sampler is
// driven by caller-provided simulated timestamps and reads only registry
// values, so `innet_run --timeseries-out` dumps are byte-identical across
// repeat seeded runs — the same property every other obs dump holds.
//
// The AnomalyDetector consumes the same windowed stream: each rule tracks an
// EWMA baseline per series and flags a *sustained* deviation (value above
// factor * baseline + slack for `sustain_windows` consecutive windows, after
// a warmup). A flag records an `anomaly` trace event, bumps
// innet_anomaly_flags_total{signal}, and — when the rule attributes the
// series to a tenant — feeds HealthMonitor::CountAnomaly so detection steers
// rebalancing and watchdog priority like any other SLO clause. The baseline
// freezes while deviant, so a spike cannot ratchet itself into normality.
#ifndef SRC_OBS_TIMESERIES_H_
#define SRC_OBS_TIMESERIES_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/health.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace innet::obs {

class AnomalyDetector;

// One windowed observation. Which fields are meaningful depends on the
// series kind; unused fields stay 0 and are omitted from the dump.
struct SeriesPoint {
  uint64_t t_ns = 0;   // window END, simulated time
  double value = 0;    // counter: rate/s over the window; gauge: value; histogram: window p99
  uint64_t count = 0;  // counter: raw window delta; histogram: window observation count
  double p50 = 0;      // histogram only: window p50
};

enum class SeriesKind { kCounterRate, kGauge, kHistogramWindow };

// Stable wire name ("counter_rate", "gauge", "histogram_window").
const char* SeriesKindName(SeriesKind kind);

// A bounded ring of windowed points for one instrument.
class Series {
 public:
  Series(std::string name, Labels labels, SeriesKind kind, size_t capacity)
      : name_(std::move(name)), labels_(std::move(labels)), kind_(kind), capacity_(capacity) {}

  const std::string& name() const { return name_; }
  const Labels& labels() const { return labels_; }
  SeriesKind kind() const { return kind_; }
  uint64_t total_points() const { return total_points_; }
  uint64_t evicted_points() const { return total_points_ - ring_.size(); }
  size_t size() const { return ring_.size(); }

  void Append(SeriesPoint point);
  // Ring contents, oldest first.
  std::vector<SeriesPoint> Points() const;
  // The newest point (undefined when size() == 0).
  const SeriesPoint& Last() const;

 private:
  std::string name_;
  Labels labels_;
  SeriesKind kind_;
  size_t capacity_;
  uint64_t total_points_ = 0;
  std::vector<SeriesPoint> ring_;  // ring_[i % capacity_], overwritten in place
  size_t head_ = 0;                // next slot once full
};

class TimeSeriesSampler {
 public:
  explicit TimeSeriesSampler(MetricsRegistry* registry = &MetricsRegistry::Global());
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  // Window length recorded in the dump header; the actual rate denominator
  // is the elapsed time between SampleWindow calls, so an irregular driver
  // still produces correct rates. Configure before the first sample.
  void set_window_ns(uint64_t window_ns) { window_ns_ = window_ns == 0 ? 1 : window_ns; }
  uint64_t window_ns() const { return window_ns_; }

  // Ring capacity applied to series created after the call (default 1024
  // windows ≈ 100 s at the default window).
  void set_ring_capacity(size_t capacity) { ring_capacity_ = capacity == 0 ? 1 : capacity; }
  size_t ring_capacity() const { return ring_capacity_; }

  // Routes every sampled point through `detector` (not owned). Attach before
  // sampling starts so baselines see the whole run.
  void AttachDetector(AnomalyDetector* detector) { detector_ = detector; }

  // Closes the window ending at `now_ns`: scrapes every registry instrument,
  // appends one point per series, and feeds the detector. Calls with now_ns
  // <= the previous sample time are ignored (a window cannot end twice).
  void SampleWindow(uint64_t now_ns);

  uint64_t windows_sampled() const { return windows_sampled_; }
  size_t series_count() const { return tracks_.size(); }
  // Lookup by instrument name + labels (canonicalized); nullptr when the
  // instrument never appeared in a sampled window.
  const Series* FindSeries(const std::string& name, const Labels& labels = {}) const;

  // {"window_ns", "windows_sampled", "series": [...], "anomalies": [...]}.
  // Series keep registry dump order (name, then canonical labels); the
  // anomalies array is present only when a detector is attached.
  json::Value ToJson() const;
  bool WriteJsonFile(const std::string& path) const;

 private:
  struct Track {
    Series series;
    // Previous scrape, for deltas. A value that shrank (ResetValues between
    // bench scenarios) is treated as a counter reset: prev becomes 0.
    uint64_t prev_counter = 0;
    uint64_t prev_hist_count = 0;
    std::vector<uint64_t> prev_buckets;
  };

  MetricsRegistry* registry_;
  AnomalyDetector* detector_ = nullptr;
  uint64_t window_ns_ = 100'000'000;  // 100 ms
  size_t ring_capacity_ = 1024;
  uint64_t windows_sampled_ = 0;
  uint64_t last_sample_ns_ = 0;
  Counter* windows_counter_ = nullptr;
  // Keyed like the registry (name + canonical labels) so iteration order
  // matches the metrics dump and stays deterministic.
  std::map<std::string, Track> tracks_;
};

// One detection rule: watch `metric` (every label variant independently) and
// flag sustained deviations above an EWMA baseline.
struct AnomalyRule {
  std::string signal;        // stable wire name, e.g. "drop_rate_spike"
  std::string metric;        // registry metric name to watch
  std::string tenant_label;  // label whose value feeds HealthMonitor ("" = fleet-level)
  double ewma_alpha = 0.3;   // baseline update weight for non-deviant windows
  double factor = 3.0;       // deviant when value > factor * baseline + min_delta
  double min_delta = 1.0;    // absolute slack, so a near-zero baseline is not hair-trigger
  int sustain_windows = 3;   // consecutive deviant windows before flagging
  int warmup_windows = 3;    // windows observed before deviation checks start
};

class AnomalyDetector {
 public:
  explicit AnomalyDetector(EventTracer* tracer = &EventTracer::Global(),
                           HealthMonitor* health = &HealthMonitor::Global(),
                           MetricsRegistry* registry = &MetricsRegistry::Global())
      : tracer_(tracer), health_(health), registry_(registry) {}
  AnomalyDetector(const AnomalyDetector&) = delete;
  AnomalyDetector& operator=(const AnomalyDetector&) = delete;

  void AddRule(AnomalyRule rule) { rules_.push_back(std::move(rule)); }
  // The built-in watchlist: per-tenant and platform drop-rate spikes,
  // controller and per-tenant verify-latency inflation, control-channel
  // retry storms.
  void UseDefaultRules();
  size_t rule_count() const { return rules_.size(); }

  struct Flag {
    uint64_t t_ns = 0;
    std::string signal;
    std::string metric;
    std::string target;  // "tenant:<id>" when attributed, else "metric:<name>"
    std::string tenant;  // attributed tenant ("" = fleet-level)
    double value = 0;    // the deviant observation
    double baseline = 0; // the frozen EWMA it deviated from
  };
  const std::vector<Flag>& flags() const { return flags_; }

  // Called by the sampler once per series point per window. `value` is the
  // point's primary value (rate, gauge value, or window p99).
  void Observe(uint64_t t_ns, const std::string& metric, const Labels& labels, double value);

  json::Value ToJson() const;

 private:
  struct Baseline {
    double ewma = 0;
    int observed = 0;
    int deviant_streak = 0;
    bool flagged = false;  // current episode already reported
  };

  void RaiseFlag(uint64_t t_ns, const AnomalyRule& rule, const Labels& labels, double value,
                 double baseline);

  EventTracer* tracer_;
  HealthMonitor* health_;
  MetricsRegistry* registry_;
  std::vector<AnomalyRule> rules_;
  std::vector<Flag> flags_;
  // Keyed by (rule index, series key): each rule tracks each label variant
  // of its metric independently.
  std::map<std::pair<size_t, std::string>, Baseline> baselines_;
};

}  // namespace innet::obs

#endif  // SRC_OBS_TIMESERIES_H_
