#include "src/obs/trace.h"

#include <map>

#include "src/obs/metrics.h"

namespace innet::obs {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kVmBootStart: return "vm_boot_start";
    case EventKind::kVmBootReady: return "vm_boot_ready";
    case EventKind::kVmBootFailed: return "vm_boot_failed";
    case EventKind::kVmCrash: return "vm_crash";
    case EventKind::kVmSuspend: return "vm_suspend";
    case EventKind::kVmResume: return "vm_resume";
    case EventKind::kVmRestart: return "vm_restart";
    case EventKind::kVmRetired: return "vm_retired";
    case EventKind::kFlowFirstPacketMiss: return "flow_first_packet_miss";
    case EventKind::kBufferEnqueue: return "buffer_enqueue";
    case EventKind::kBufferDrop: return "buffer_drop";
    case EventKind::kWatchdogRestart: return "watchdog_restart";
    case EventKind::kWatchdogGiveUp: return "watchdog_give_up";
    case EventKind::kVerifyStart: return "verify_start";
    case EventKind::kVerifyFinish: return "verify_finish";
    case EventKind::kSymexecRun: return "symexec_run";
    case EventKind::kMigrateStart: return "migrate_start";
    case EventKind::kMigrateCutover: return "migrate_cutover";
    case EventKind::kMigrateAbort: return "migrate_abort";
    case EventKind::kDeployRequest: return "deploy_request";
    case EventKind::kAdmission: return "admission_decision";
    case EventKind::kPlacementRanked: return "placement_ranked";
    case EventKind::kDeployCutover: return "deploy_cutover";
    case EventKind::kHealthTransition: return "health_transition";
    case EventKind::kPacketIngress: return "packet_ingress";
    case EventKind::kElementProcess: return "element_process";
    case EventKind::kPacketEgress: return "packet_egress";
    case EventKind::kPacketDrop: return "packet_drop";
    case EventKind::kPostmortemSnapshot: return "postmortem_snapshot";
    case EventKind::kControlSend: return "control_send";
    case EventKind::kControlDrop: return "control_drop";
    case EventKind::kControlRetry: return "control_retry";
    case EventKind::kControlGiveUp: return "control_give_up";
    case EventKind::kControlPartition: return "control_partition";
    case EventKind::kControlHeal: return "control_heal";
    case EventKind::kJournalTransition: return "journal_transition";
    case EventKind::kRecoveryReplay: return "recovery_replay";
    case EventKind::kAnomaly: return "anomaly";
    case EventKind::kReconcile: return "reconcile";
    case EventKind::kPlatformReplaced: return "platform_replaced";
    case EventKind::kRegionDigest: return "region_digest";
    case EventKind::kRegionDeploy: return "region_deploy";
    case EventKind::kRegionDegraded: return "region_degraded";
    case EventKind::kRegionReconcile: return "region_reconcile";
    case EventKind::kRegionMigrate: return "region_migrate";
    case EventKind::kFleetIncident: return "fleet_incident";
    case EventKind::kPathViolation: return "path_violation";
    case EventKind::kSpanEnd: return "span_end";
  }
  return "unknown";
}

uint64_t EventTracer::Record(uint64_t time_ns, EventKind kind, std::string target,
                             std::string detail, int64_t value, uint64_t parent) {
  if (!enabled_) {
    return 0;
  }
  // The id is allocated before the capacity check: a dropped event still
  // consumes its id, so the links of surviving children keep pointing at the
  // same (now truncated) span instead of silently re-binding to a later one.
  uint64_t span = span_namespace_ | next_span_id_++;
  if (parent == 0) {
    parent = current_span();
  }
  if (events_.size() >= capacity_) {
    ++dropped_;
    return span;
  }
  events_.push_back(
      TraceEvent{time_ns, kind, std::move(target), std::move(detail), value, span, parent});
  return span;
}

json::Value EventTracer::ToJson() const {
  json::Value list = json::Value::Array();
  for (const TraceEvent& event : events_) {
    json::Value entry = json::Value::Object();
    entry.Set("t_ns", event.time_ns);
    entry.Set("kind", EventKindName(event.kind));
    entry.Set("target", event.target);
    if (!event.detail.empty()) {
      entry.Set("detail", event.detail);
    }
    entry.Set("value", event.value);
    entry.Set("span", event.span);
    entry.Set("parent", event.parent);
    list.Push(std::move(entry));
  }
  json::Value root = json::Value::Object();
  root.Set("dropped", dropped_);
  if (span_namespace_ != 0) {
    // Merged multi-region dumps need to know which region minted which ids.
    root.Set("span_namespace", span_namespace_ >> kSpanNamespaceShift);
  }
  root.Set("events", std::move(list));
  return root;
}

uint64_t EventTracer::NamespaceForName(const std::string& name) {
  // FNV-1a, folded to 8 bits; 0 (the un-namespaced default) maps to 1 so a
  // named tracer always leaves the colliding id space.
  uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : name) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  uint64_t folded = (hash ^ (hash >> 8) ^ (hash >> 16) ^ (hash >> 24)) & 0xff;
  return folded == 0 ? 1 : folded;
}

bool EventTracer::WriteJsonFile(const std::string& path) const {
  return ToJson().WriteFile(path);
}

json::Value EventTracer::ToPerfettoJson() const {
  // A SpanScope records its end as kSpanEnd with parent == the span it
  // closes: collect those to turn span-opening events into "X" slices.
  std::map<uint64_t, uint64_t> span_end_ns;
  for (const TraceEvent& event : events_) {
    if (event.kind == EventKind::kSpanEnd) {
      span_end_ns.emplace(event.parent, event.time_ns);
    }
  }

  // Targets become thread tracks, numbered in order of first appearance so
  // the export is a pure function of the event sequence.
  std::map<std::string, uint64_t> tids;
  json::Value trace_events = json::Value::Array();
  auto tid_for = [&](const std::string& target) {
    auto it = tids.find(target);
    if (it != tids.end()) {
      return it->second;
    }
    uint64_t tid = tids.size() + 1;
    tids.emplace(target, tid);
    json::Value meta = json::Value::Object();
    meta.Set("name", "thread_name");
    meta.Set("ph", "M");
    meta.Set("pid", static_cast<uint64_t>(1));
    meta.Set("tid", tid);
    json::Value args = json::Value::Object();
    args.Set("name", target.empty() ? "(none)" : target);
    meta.Set("args", std::move(args));
    trace_events.Push(std::move(meta));
    return tid;
  };

  for (const TraceEvent& event : events_) {
    if (event.kind == EventKind::kSpanEnd) {
      continue;  // folded into the opening event's duration
    }
    json::Value entry = json::Value::Object();
    entry.Set("name", EventKindName(event.kind));
    entry.Set("cat", "innet");
    entry.Set("pid", static_cast<uint64_t>(1));
    entry.Set("tid", tid_for(event.target));
    entry.Set("ts", static_cast<double>(event.time_ns) / 1e3);  // microseconds
    auto end = span_end_ns.find(event.span);
    if (end != span_end_ns.end()) {
      entry.Set("ph", "X");
      uint64_t dur_ns = end->second >= event.time_ns ? end->second - event.time_ns : 0;
      entry.Set("dur", static_cast<double>(dur_ns) / 1e3);
    } else {
      entry.Set("ph", "i");
      entry.Set("s", "t");
    }
    json::Value args = json::Value::Object();
    args.Set("span", event.span);
    args.Set("parent", event.parent);
    if (!event.detail.empty()) {
      args.Set("detail", event.detail);
    }
    args.Set("value", event.value);
    entry.Set("args", std::move(args));
    trace_events.Push(std::move(entry));
  }

  json::Value root = json::Value::Object();
  root.Set("displayTimeUnit", "ms");
  root.Set("traceEvents", std::move(trace_events));
  return root;
}

bool EventTracer::WritePerfettoFile(const std::string& path) const {
  return ToPerfettoJson().WriteFile(path);
}

void EventTracer::ExportMetrics(MetricsRegistry* registry) const {
  registry->GetCounter("innet_trace_dropped_total")->SetTo(dropped_);
}

EventTracer& EventTracer::Global() {
  static EventTracer* tracer = new EventTracer();
  return *tracer;
}

}  // namespace innet::obs
