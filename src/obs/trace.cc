#include "src/obs/trace.h"

namespace innet::obs {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kVmBootStart: return "vm_boot_start";
    case EventKind::kVmBootReady: return "vm_boot_ready";
    case EventKind::kVmBootFailed: return "vm_boot_failed";
    case EventKind::kVmCrash: return "vm_crash";
    case EventKind::kVmSuspend: return "vm_suspend";
    case EventKind::kVmResume: return "vm_resume";
    case EventKind::kVmRestart: return "vm_restart";
    case EventKind::kVmRetired: return "vm_retired";
    case EventKind::kFlowFirstPacketMiss: return "flow_first_packet_miss";
    case EventKind::kBufferEnqueue: return "buffer_enqueue";
    case EventKind::kBufferDrop: return "buffer_drop";
    case EventKind::kWatchdogRestart: return "watchdog_restart";
    case EventKind::kWatchdogGiveUp: return "watchdog_give_up";
    case EventKind::kVerifyStart: return "verify_start";
    case EventKind::kVerifyFinish: return "verify_finish";
    case EventKind::kSymexecRun: return "symexec_run";
    case EventKind::kMigrateStart: return "migrate_start";
    case EventKind::kMigrateCutover: return "migrate_cutover";
    case EventKind::kMigrateAbort: return "migrate_abort";
  }
  return "unknown";
}

void EventTracer::Record(uint64_t time_ns, EventKind kind, std::string target,
                         std::string detail, int64_t value) {
  if (!enabled_) {
    return;
  }
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(TraceEvent{time_ns, kind, std::move(target), std::move(detail), value});
}

json::Value EventTracer::ToJson() const {
  json::Value list = json::Value::Array();
  for (const TraceEvent& event : events_) {
    json::Value entry = json::Value::Object();
    entry.Set("t_ns", event.time_ns);
    entry.Set("kind", EventKindName(event.kind));
    entry.Set("target", event.target);
    if (!event.detail.empty()) {
      entry.Set("detail", event.detail);
    }
    entry.Set("value", event.value);
    list.Push(std::move(entry));
  }
  json::Value root = json::Value::Object();
  root.Set("dropped", dropped_);
  root.Set("events", std::move(list));
  return root;
}

bool EventTracer::WriteJsonFile(const std::string& path) const {
  return ToJson().WriteFile(path);
}

EventTracer& EventTracer::Global() {
  static EventTracer* tracer = new EventTracer();
  return *tracer;
}

}  // namespace innet::obs
