// FlightRecorder: an always-on, bounded ring of recent dataplane and
// lifecycle events, plus the post-mortem bundles snapshotted from it when
// something dies.
//
// The EventTracer is opt-in and unbounded-ish (meant for offline analysis of
// a whole run); the flight recorder is the opposite trade: always recording,
// O(1) per event, fixed memory, and only ever read *backwards* — "what were
// the last K things that happened before this VM crashed?". On a trigger
// (kVmCrash, kWatchdogGiveUp, kMigrateAbort) the owner snapshots a
// PostmortemBundle: the ring's current contents, the dying graph's
// per-element counters, the owning span id, and the tenant's health state at
// that instant. Bundles are dumped as JSON and rendered by
// `innet_top --postmortem`.
//
// Determinism: events are stamped with caller-provided sim time only; the
// ring and every bundle are pure functions of the event sequence, so dumps
// stay byte-identical across seeded runs.
#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/trace.h"

namespace innet::obs {

class MetricsRegistry;

// One entry in the ring. Reuses EventKind so wire names stay in one place.
struct FlightEvent {
  uint64_t time_ns = 0;
  EventKind kind = EventKind::kVmBootStart;
  std::string target;
  std::string detail;
  int64_t value = 0;
};

// A dying graph's per-element counters, captured at snapshot time. Deltas
// are since VM (re)start — element counters reset when a graph is rebuilt.
struct ElementCounterDelta {
  std::string element;
  std::string element_class;
  uint64_t packets = 0;
  uint64_t bytes = 0;
  uint64_t drops = 0;
  uint64_t proc_ns = 0;
};

struct PostmortemBundle {
  uint64_t time_ns = 0;
  EventKind trigger = EventKind::kVmCrash;
  std::string target;  // e.g. "vm:3"
  std::string tenant;  // owning tenant address, if known
  std::string detail;  // free-form qualifier from the trigger site
  uint64_t span = 0;   // the dying VM's owning span id (0 = none)
  std::string health;  // tenant health state name at snapshot ("" = monitor off)
  std::vector<ElementCounterDelta> elements;
  std::vector<FlightEvent> events;  // filled from the ring by SnapshotPostmortem
  // Last in-band telemetry postcards folded before the trigger (filled by
  // SnapshotPostmortem from the global IntCollector when it is enabled), so
  // a crash bundle shows the packet journeys that preceded it.
  std::vector<std::string> postcards;
};

class FlightRecorder {
 public:
  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Ring depth (last-K). Resizing drops the current contents; configure once
  // at startup (innet_run --flight-recorder-depth).
  void set_depth(size_t depth);
  size_t depth() const { return depth_; }

  // O(1), no allocation beyond the strings themselves. Always on.
  void Record(uint64_t time_ns, EventKind kind, std::string target, std::string detail = "",
              int64_t value = 0);

  // Ring contents, oldest first.
  std::vector<FlightEvent> RecentEvents() const;

  // Freezes `bundle.events` from the ring and stores the bundle. Also
  // remembers the bundle's element deltas per target, so a later trigger for
  // the same target (e.g. watchdog give-up after the crash already destroyed
  // the graph) can reuse them via LastElementsFor. At most
  // `max_postmortems()` bundles are kept; the oldest are evicted (and
  // counted), so a crash storm stays bounded like the ring itself.
  void SnapshotPostmortem(PostmortemBundle bundle);

  void set_max_postmortems(size_t cap) { max_postmortems_ = cap == 0 ? 1 : cap; }
  size_t max_postmortems() const { return max_postmortems_; }
  uint64_t evicted_postmortems() const { return evicted_; }

  const std::deque<PostmortemBundle>& postmortems() const { return postmortems_; }

  // Periodic element-counter capture: the platform calls this from its
  // regular sweep (watchdog cadence) for every live graph, so a later
  // postmortem for a target whose graph is already torn down can fall back
  // to the last periodic capture instead of reporting nothing. Overwrites
  // the previous capture for the target — only the newest matters.
  void NotePeriodicElements(const std::string& target, std::vector<ElementCounterDelta> elements);
  size_t periodic_targets() const { return periodic_elements_.size(); }

  // Element deltas from the most recent snapshot for `target`: a prior
  // postmortem bundle if one survives, else the last periodic capture;
  // nullptr when neither exists.
  const std::vector<ElementCounterDelta>* LastElementsFor(const std::string& target) const;

  uint64_t recorded() const { return recorded_; }

  void Clear();

  // {"depth": K, "recorded": N, "postmortems": [...]}. Bundle events use the
  // same {t_ns, kind, target, detail, value} field names as the trace dump.
  json::Value ToJson() const;
  bool WriteJsonFile(const std::string& path) const;

  // innet_flight_events_recorded_total / innet_flight_postmortems_total.
  void ExportMetrics(MetricsRegistry* registry) const;

 private:
  size_t depth_ = 256;
  uint64_t recorded_ = 0;
  std::vector<FlightEvent> ring_;  // ring_[i % depth_], overwritten in place
  size_t head_ = 0;                // next slot to write
  size_t max_postmortems_ = 64;
  uint64_t evicted_ = 0;  // bundles aged out of the front of postmortems_
  std::deque<PostmortemBundle> postmortems_;
  std::map<std::string, uint64_t> last_snapshot_;  // target -> absolute index
  // target -> last periodic element capture (see NotePeriodicElements).
  std::map<std::string, std::vector<ElementCounterDelta>> periodic_elements_;
};

}  // namespace innet::obs

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
