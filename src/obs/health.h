// HealthMonitor: per-tenant SLO evaluation over the metrics registry.
//
// Components feed per-tenant observations (boot latency, verify latency,
// buffer enqueues/drops, restarts) through the monitor, which mirrors them
// into `innet_tenant_*` registry instruments and, on EvaluateAll(), folds the
// deterministic histogram quantiles and counters into one of three health
// states per tenant:
//
//   ok        every SLO inside its degraded threshold
//   degraded  at least one SLO past its degraded threshold
//   violated  at least one SLO past its violated threshold
//
// Transitions upward (toward violated) are immediate; transitions downward
// require `recover_evals` consecutive cleaner evaluations (hysteresis), so a
// tenant flapping around a threshold does not thrash the control loop.
// Orchestrator::Rebalance() drains the least-healthy tenants first and the
// VM watchdog restarts their crashed VMs first, closing the
// observability→control loop.
//
// Like the tracer, the monitor is disabled by default: per-tenant label
// cardinality is only paid by runs that opt in (innet_run, slo_report,
// tests). Every accessor is a pure function of the observations made, so
// health dumps are byte-identical across identical seeded runs.
#ifndef SRC_OBS_HEALTH_H_
#define SRC_OBS_HEALTH_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/obs/json.h"
#include "src/obs/metrics.h"

namespace innet::obs {

enum class HealthState { kOk = 0, kDegraded = 1, kViolated = 2 };

// Stable wire name ("ok", "degraded", "violated"), used in dumps and traces.
const char* HealthStateName(HealthState state);

// Declarative per-tenant SLO thresholds. A tenant is degraded/violated when
// ANY clause crosses its threshold; drop rate is drops / (enqueued + drops).
struct SloSpec {
  double boot_p99_degraded_ms = 100.0;
  double boot_p99_violated_ms = 500.0;
  double verify_p99_degraded_ms = 50.0;
  double verify_p99_violated_ms = 500.0;
  double drop_rate_degraded = 0.01;
  double drop_rate_violated = 0.05;
  uint64_t restarts_degraded = 1;
  uint64_t restarts_violated = 3;
  // Sustained-deviation flags from the AnomalyDetector (obs/timeseries.h).
  // Anomalies are corroborating evidence, not raw SLO breaches, so the
  // defaults are laxer than the restart clause: one flag degrades, a storm
  // of them violates.
  uint64_t anomalies_degraded = 1;
  uint64_t anomalies_violated = 4;
  // Path-conformance violations from the INT collector (obs/int_telemetry.h).
  // A verified tenant should never leave its certified paths, so the ladder
  // matches the anomaly clause: one deviation degrades, a pattern violates.
  uint64_t path_violations_degraded = 1;
  uint64_t path_violations_violated = 4;
  // Consecutive EvaluateAll() passes below the current state's threshold
  // before the state steps back down.
  int recover_evals = 3;
};

class HealthMonitor {
 public:
  // Instruments are created in `registry` (the global registry by default,
  // so health metrics ride along in the ordinary dumps).
  explicit HealthMonitor(MetricsRegistry* registry = &MetricsRegistry::Global())
      : registry_(registry) {}
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  void Enable(bool on = true) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void set_slo(const SloSpec& slo) { slo_ = slo; }
  const SloSpec& slo() const { return slo_; }

  // --- Observation feeds (no-ops while disabled or tenant empty) ------------
  void ObserveBootLatency(const std::string& tenant, double ms);
  void ObserveVerifyLatency(const std::string& tenant, double ms);
  void CountBuffered(const std::string& tenant, uint64_t packets = 1);
  void CountDrop(const std::string& tenant, uint64_t packets = 1);
  void CountRestart(const std::string& tenant);
  // Fed by the AnomalyDetector when a sustained deviation is attributed to a
  // tenant: anomaly pressure steers Rebalance()/watchdog priority like any
  // other SLO clause.
  void CountAnomaly(const std::string& tenant);
  // Fed by the IntCollector when an observed packet path fails attestation
  // against the tenant's verified path digest.
  void CountPathViolation(const std::string& tenant);

  // Re-evaluates every known tenant (in sorted order), applies hysteresis,
  // updates the innet_tenant_health_state gauge, and records a
  // health_transition trace event for each state change.
  void EvaluateAll();

  // Last evaluated state (kOk for unknown tenants or while disabled).
  HealthState CurrentState(const std::string& tenant) const;
  // CurrentState as an integer (0=ok .. 2=violated) for sort keys.
  int Severity(const std::string& tenant) const {
    return static_cast<int>(CurrentState(tenant));
  }

  size_t tenant_count() const { return tenants_.size(); }

  // {"tenants": [{"tenant", "state", "boot_p99_ms", ...}]}, sorted by tenant.
  json::Value ToJson() const;
  bool WriteJsonFile(const std::string& path) const;

  // Forgets every tenant (instruments stay in the registry; tests that reuse
  // the global monitor pair this with registry resets).
  void Clear() { tenants_.clear(); }

  // The process-wide monitor used by all built-in instrumentation.
  static HealthMonitor& Global();

 private:
  struct Tenant {
    HealthState state = HealthState::kOk;
    int clean_streak = 0;
    Histogram* boot_ms = nullptr;
    Histogram* verify_ms = nullptr;
    Counter* buffered = nullptr;
    Counter* drops = nullptr;
    Counter* restarts = nullptr;
    Counter* anomalies = nullptr;
    Counter* path_violations = nullptr;
    Gauge* state_gauge = nullptr;
  };

  Tenant& Touch(const std::string& tenant);
  // The state the SLO clauses demand right now, ignoring hysteresis.
  HealthState RawState(const Tenant& t) const;

  bool enabled_ = false;
  MetricsRegistry* registry_;
  SloSpec slo_;
  // std::map keeps EvaluateAll() and ToJson() in sorted-tenant order.
  std::map<std::string, Tenant> tenants_;
};

// Shorthand for the global monitor.
inline HealthMonitor& Health() { return HealthMonitor::Global(); }

}  // namespace innet::obs

#endif  // SRC_OBS_HEALTH_H_
