#include "src/obs/fleetview.h"

#include <algorithm>

namespace innet::obs {

void FleetView::Ingest(const std::string& region, uint64_t seq, uint64_t now_ns, bool degraded,
                       const std::map<std::string, uint64_t>& samples) {
  RegionState& state = regions_[region];
  if (state.ingests > 0 && seq <= state.last_seq) {
    // Belt and suspenders under the coordinator's own seq guard: a duplicate
    // or reordered digest must never count its deltas twice.
    return;
  }
  state.last_seq = seq;
  state.last_ingest_ns = now_ns;
  ++state.ingests;
  ++ingests_;
  state.degraded = degraded;
  for (const auto& [metric, value] : samples) {
    Track& track = state.tracks[metric];
    // Reset guard (the region's orchestrator was rebuilt): a shrinking
    // cumulative counter restarts the delta from the new value.
    uint64_t delta = value >= track.last_value ? value - track.last_value : value;
    if (track.delta_points == 0) {
      // First sample: the cumulative value is history, not a window delta.
      delta = 0;
    }
    track.last_value = value;
    ObserveDelta(region, metric, &track, delta, now_ns);
  }
}

void FleetView::ObserveDelta(const std::string& region, const std::string& metric, Track* track,
                             uint64_t delta, uint64_t now_ns) {
  ++track->delta_points;
  track->last_delta = delta;
  const double value = static_cast<double>(delta);
  if (track->observed < params_.warmup_windows) {
    ++track->observed;
    track->ewma = track->observed == 1
                      ? value
                      : params_.ewma_alpha * value + (1 - params_.ewma_alpha) * track->ewma;
    return;
  }
  bool deviant = value > params_.factor * track->ewma + params_.min_delta;
  if (deviant) {
    // The baseline freezes: a sustained burst cannot ratchet itself normal.
    ++track->deviant_streak;
    if (track->deviant_streak >= params_.sustain_windows && !track->flagged) {
      track->flagged = true;
      track->flag_ns = now_ns;
      track->flag_value = value;
      track->flag_baseline = track->ewma;
      RaiseIncident(region, metric, track, now_ns);
    }
    return;
  }
  track->deviant_streak = 0;
  track->flagged = false;  // episode over; the next burst flags again
  ++track->observed;
  track->ewma = params_.ewma_alpha * value + (1 - params_.ewma_alpha) * track->ewma;
}

void FleetView::RaiseIncident(const std::string& region, const std::string& metric, Track* track,
                              uint64_t now_ns) {
  // Correlate: every other region whose flag for the same metric is inside
  // the correlation window is implicated; two or more regions promote the
  // incident from regional to fleet-wide.
  Incident incident;
  incident.t_ns = now_ns;
  incident.metric = metric;
  incident.value = track->flag_value;
  incident.baseline = track->flag_baseline;
  incident.regions.push_back(region);
  for (const auto& [other_name, other_state] : regions_) {
    if (other_name == region) {
      continue;
    }
    auto it = other_state.tracks.find(metric);
    if (it == other_state.tracks.end() || it->second.flag_ns == 0) {
      continue;
    }
    if (now_ns - it->second.flag_ns <= correlation_window_ns_) {
      incident.regions.push_back(other_name);
    }
  }
  std::sort(incident.regions.begin(), incident.regions.end());
  incident.scope = incident.regions.size() >= 2 ? "fleet" : "regional";
  registry_->GetCounter("innet_fleet_incidents_total", {{"scope", incident.scope}})->Increment();
  if (tracer_->enabled()) {
    std::string detail = incident.scope + " " + metric + ":";
    for (const std::string& name : incident.regions) {
      detail += " " + name;
    }
    tracer_->Record(now_ns, EventKind::kFleetIncident, "region:" + region, detail,
                    static_cast<int64_t>(track->flag_value));
  }
  incidents_.push_back(std::move(incident));
}

std::vector<std::string> FleetView::AnomalousRegions(uint64_t now_ns) const {
  std::vector<std::string> out;
  for (const auto& [name, state] : regions_) {
    for (const auto& [metric, track] : state.tracks) {
      bool recent = track.flag_ns != 0 && now_ns - track.flag_ns <= correlation_window_ns_;
      if (track.flagged || recent) {
        out.push_back(name);
        break;
      }
    }
  }
  return out;  // map iteration: already sorted
}

uint64_t FleetView::FleetTotal(const std::string& metric) const {
  uint64_t total = 0;
  for (const auto& [name, state] : regions_) {
    auto it = state.tracks.find(metric);
    if (it != state.tracks.end()) {
      total += it->second.last_value;
    }
  }
  return total;
}

json::Value FleetView::ToJson(uint64_t now_ns) const {
  json::Value fleet = json::Value::Object();
  fleet.Set("generated_ns", now_ns);
  fleet.Set("staleness_window_ns", staleness_window_ns_);
  fleet.Set("correlation_window_ns", correlation_window_ns_);
  fleet.Set("ingests", ingests_);

  std::vector<std::string> anomalous = AnomalousRegions(now_ns);
  json::Value regions = json::Value::Array();
  for (const auto& [name, state] : regions_) {
    json::Value entry = json::Value::Object();
    entry.Set("region", name);
    entry.Set("last_seq", state.last_seq);
    entry.Set("ingests", state.ingests);
    entry.Set("last_ingest_ns", state.last_ingest_ns);
    entry.Set("stale", now_ns - state.last_ingest_ns > staleness_window_ns_);
    entry.Set("degraded", state.degraded);
    entry.Set("anomalous",
              std::binary_search(anomalous.begin(), anomalous.end(), name));
    regions.Push(std::move(entry));
  }
  fleet.Set("regions", std::move(regions));

  // Union of every region's metrics, sorted; each fleet series is the sum of
  // the regions' latest cumulative values plus the per-region breakdown.
  std::map<std::string, bool> metrics;
  for (const auto& [name, state] : regions_) {
    for (const auto& [metric, track] : state.tracks) {
      metrics[metric] = true;
    }
  }
  json::Value series = json::Value::Array();
  for (const auto& [metric, unused] : metrics) {
    json::Value entry = json::Value::Object();
    entry.Set("metric", metric);
    entry.Set("fleet_total", FleetTotal(metric));
    json::Value per_region = json::Value::Array();
    for (const auto& [name, state] : regions_) {
      auto it = state.tracks.find(metric);
      if (it == state.tracks.end()) {
        continue;
      }
      json::Value row = json::Value::Object();
      row.Set("region", name);
      row.Set("last", it->second.last_value);
      row.Set("last_delta", it->second.last_delta);
      row.Set("delta_points", it->second.delta_points);
      row.Set("flagged", it->second.flagged);
      per_region.Push(std::move(row));
    }
    entry.Set("regions", std::move(per_region));
    series.Push(std::move(entry));
  }
  fleet.Set("series", std::move(series));

  json::Value incidents = json::Value::Array();
  uint64_t fleet_scope = 0;
  uint64_t regional_scope = 0;
  for (const Incident& incident : incidents_) {
    json::Value entry = json::Value::Object();
    entry.Set("t_ns", incident.t_ns);
    entry.Set("metric", incident.metric);
    entry.Set("scope", incident.scope);
    json::Value names = json::Value::Array();
    for (const std::string& name : incident.regions) {
      names.Push(name);
    }
    entry.Set("regions", std::move(names));
    entry.Set("value", incident.value);
    entry.Set("baseline", incident.baseline);
    incidents.Push(std::move(entry));
    (incident.scope == "fleet" ? fleet_scope : regional_scope) += 1;
  }
  fleet.Set("incidents", std::move(incidents));
  json::Value totals = json::Value::Object();
  totals.Set("fleet", fleet_scope);
  totals.Set("regional", regional_scope);
  fleet.Set("incident_totals", std::move(totals));

  json::Value root = json::Value::Object();
  root.Set("fleet", std::move(fleet));
  return root;
}

bool FleetView::WriteJsonFile(const std::string& path, uint64_t now_ns) const {
  return ToJson(now_ns).WriteFile(path);
}

}  // namespace innet::obs
