// EventTracer: a lightweight, bounded log of typed lifecycle events stamped
// with simulated time. Disabled by default; when disabled, Record() is a
// single branch, and hot callers additionally guard with enabled() so they
// never build target strings for a tracer that is off.
//
// Times are raw sim::TimeNs values passed by the caller (obs has no
// dependency on the event queue); components without a clock use RecordNow(),
// which reads the registered time source (0 until one is set).
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/obs/json.h"

namespace innet::obs {

enum class EventKind {
  kVmBootStart,
  kVmBootReady,
  kVmBootFailed,
  kVmCrash,
  kVmSuspend,
  kVmResume,
  kVmRestart,
  kVmRetired,
  kFlowFirstPacketMiss,
  kBufferEnqueue,
  kBufferDrop,
  kWatchdogRestart,
  kWatchdogGiveUp,
  kVerifyStart,
  kVerifyFinish,
  kSymexecRun,
  kMigrateStart,
  kMigrateCutover,
  kMigrateAbort,
};

// Stable wire name ("vm_boot_start", ...), used in the JSON dump.
const char* EventKindName(EventKind kind);

struct TraceEvent {
  uint64_t time_ns = 0;
  EventKind kind = EventKind::kVmBootStart;
  std::string target;  // what the event is about, e.g. "vm:3" or "client7"
  std::string detail;  // free-form qualifier, e.g. "accepted" or "boot_failure"
  int64_t value = 0;   // numeric payload: latency ns, packet count, steps, ...
};

class EventTracer {
 public:
  EventTracer() = default;
  EventTracer(const EventTracer&) = delete;
  EventTracer& operator=(const EventTracer&) = delete;

  void Enable(bool on = true) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // Used by RecordNow() for components that have no clock of their own.
  void SetTimeSource(std::function<uint64_t()> now) { now_ = std::move(now); }

  void Record(uint64_t time_ns, EventKind kind, std::string target, std::string detail = "",
              int64_t value = 0);
  void RecordNow(EventKind kind, std::string target, std::string detail = "", int64_t value = 0) {
    if (!enabled_) {
      return;
    }
    Record(now_ ? now_() : 0, kind, std::move(target), std::move(detail), value);
  }

  // Events beyond the capacity are dropped (and counted), keeping long
  // experiments bounded in memory.
  void set_capacity(size_t capacity) { capacity_ = capacity; }
  size_t capacity() const { return capacity_; }
  uint64_t dropped() const { return dropped_; }

  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() {
    events_.clear();
    dropped_ = 0;
  }

  json::Value ToJson() const;
  bool WriteJsonFile(const std::string& path) const;

  // The process-wide tracer used by all built-in instrumentation.
  static EventTracer& Global();

 private:
  bool enabled_ = false;
  size_t capacity_ = 1u << 20;
  uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
  std::function<uint64_t()> now_;
};

// Shorthand for the global tracer.
inline EventTracer& Tracer() { return EventTracer::Global(); }

}  // namespace innet::obs

#endif  // SRC_OBS_TRACE_H_
