// EventTracer: a lightweight, bounded log of typed lifecycle events stamped
// with simulated time. Disabled by default; when disabled, Record() is a
// single branch, and hot callers additionally guard with enabled() so they
// never build target strings for a tracer that is off.
//
// Causality: every recorded event is assigned a unique, monotonically
// increasing span id, and carries a parent link to the span it happened
// inside (0 = root). The enclosing span is tracked on an explicit stack:
// SpanScope opens a new span for a synchronous section (admission, verify,
// first-packet handling) and ScopedParent re-enters an existing span from an
// event-queue continuation (a boot completion, a migration finishing). Async
// hand-offs carry the parent id through component state (e.g. a Vm remembers
// the span of its boot-start event), so a deploy or first-packet event
// becomes one connected tree across callbacks.
//
// Times are raw sim::TimeNs values passed by the caller (obs has no
// dependency on the event queue); components without a clock use RecordNow(),
// which reads the registered time source (0 until one is set).
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/obs/json.h"

namespace innet::obs {

class MetricsRegistry;

enum class EventKind {
  kVmBootStart,
  kVmBootReady,
  kVmBootFailed,
  kVmCrash,
  kVmSuspend,
  kVmResume,
  kVmRestart,
  kVmRetired,
  kFlowFirstPacketMiss,
  kBufferEnqueue,
  kBufferDrop,
  kWatchdogRestart,
  kWatchdogGiveUp,
  kVerifyStart,
  kVerifyFinish,
  kSymexecRun,
  kMigrateStart,
  kMigrateCutover,
  kMigrateAbort,
  kDeployRequest,
  kAdmission,
  kPlacementRanked,
  kDeployCutover,
  kHealthTransition,
  kPacketIngress,
  kElementProcess,
  kPacketEgress,
  kPacketDrop,
  kPostmortemSnapshot,
  kControlSend,
  kControlDrop,
  kControlRetry,
  kControlGiveUp,
  kControlPartition,
  kControlHeal,
  kJournalTransition,
  kRecoveryReplay,
  kAnomaly,
  kReconcile,
  kPlatformReplaced,
  kRegionDigest,
  kRegionDeploy,
  kRegionDegraded,
  kRegionReconcile,
  kRegionMigrate,
  kFleetIncident,
  kPathViolation,
  kSpanEnd,
};

// Stable wire name ("vm_boot_start", ...), used in the JSON dump.
const char* EventKindName(EventKind kind);

struct TraceEvent {
  uint64_t time_ns = 0;
  EventKind kind = EventKind::kVmBootStart;
  std::string target;  // what the event is about, e.g. "vm:3" or "client7"
  std::string detail;  // free-form qualifier, e.g. "accepted" or "boot_failure"
  int64_t value = 0;   // numeric payload: latency ns, packet count, steps, ...
  uint64_t span = 0;    // this event's own span id (unique per Record call)
  uint64_t parent = 0;  // enclosing span id; 0 = root of a tree
};

class EventTracer {
 public:
  EventTracer() = default;
  EventTracer(const EventTracer&) = delete;
  EventTracer& operator=(const EventTracer&) = delete;

  void Enable(bool on = true) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // Used by RecordNow() for components that have no clock of their own.
  // Pass nullptr to reset (tests must do this when their clock dies before
  // the global tracer does).
  void SetTimeSource(std::function<uint64_t()> now) { now_ = std::move(now); }

  // Records one event and returns its span id (so callers can hand it to a
  // later, asynchronous completion as `parent`). `parent` == 0 means "the
  // current scope" (the span stack's top, or root when the stack is empty).
  // Returns 0 when disabled. Ids are allocated before the capacity check, so
  // parent links stay stable even when the ring drops events.
  uint64_t Record(uint64_t time_ns, EventKind kind, std::string target, std::string detail = "",
                  int64_t value = 0, uint64_t parent = 0);
  uint64_t RecordNow(EventKind kind, std::string target, std::string detail = "",
                     int64_t value = 0, uint64_t parent = 0) {
    if (!enabled_) {
      return 0;
    }
    return Record(now_ ? now_() : 0, kind, std::move(target), std::move(detail), value, parent);
  }

  // --- Span context stack ---------------------------------------------------
  // Prefer SpanScope / ScopedParent below; these are the raw primitives.
  void PushSpan(uint64_t span_id) { span_stack_.push_back(span_id); }
  void PopSpan() {
    if (!span_stack_.empty()) {
      span_stack_.pop_back();
    }
  }
  uint64_t current_span() const { return span_stack_.empty() ? 0 : span_stack_.back(); }

  // Events beyond the capacity are dropped (and counted), keeping long
  // experiments bounded in memory.
  void set_capacity(size_t capacity) { capacity_ = capacity; }
  size_t capacity() const { return capacity_; }
  uint64_t dropped() const { return dropped_; }

  // --- Span-id namespacing --------------------------------------------------
  // Every tracer mints span ids from its own monotonic sequence starting at
  // 1, so two independently created tracers (one per region controller in a
  // real multi-PoP deployment) produce colliding ids and a merged dump turns
  // into one tangled tree. SetSpanNamespace stamps the sequence into the top
  // bits: ids become (namespace << 56) | seq, unique across tracers as long
  // as each picks a distinct namespace. Namespace 0 (the default, and the
  // process-wide Global() tracer) leaves ids unchanged, so single-tracer
  // dumps and all pre-existing parent links are untouched.
  static constexpr int kSpanNamespaceShift = 56;
  void SetSpanNamespace(uint64_t ns) { span_namespace_ = ns << kSpanNamespaceShift; }
  uint64_t span_namespace() const { return span_namespace_ >> kSpanNamespaceShift; }
  // Deterministic 8-bit namespace for a region name (FNV-1a folded), so
  // every controller of the same region picks the same prefix without any
  // coordination. 0 is reserved for the un-namespaced default.
  static uint64_t NamespaceForName(const std::string& name);

  const std::vector<TraceEvent>& events() const { return events_; }
  void Clear() {
    // The namespace survives: clearing a region's ring must not silently
    // drop it back into the colliding id space.
    events_.clear();
    dropped_ = 0;
    next_span_id_ = 1;
    span_stack_.clear();
  }

  json::Value ToJson() const;
  bool WriteJsonFile(const std::string& path) const;

  // Chrome/Perfetto trace_event export ({"traceEvents": [...]}), loadable in
  // ui.perfetto.dev / chrome://tracing. Span-opening events whose SpanScope
  // end was recorded become complete ("X") slices with a duration; all other
  // events become instants. Targets map to stable thread tracks in order of
  // first appearance. Deterministic like the plain dump.
  json::Value ToPerfettoJson() const;
  bool WritePerfettoFile(const std::string& path) const;

  // Mirrors dropped() into the registry as innet_trace_dropped_total, so
  // silent trace-ring truncation is visible in metrics dumps. Call right
  // before writing the registry out (like InNetPlatform::ExportMetrics).
  void ExportMetrics(MetricsRegistry* registry) const;

  // The process-wide tracer used by all built-in instrumentation.
  static EventTracer& Global();

 private:
  bool enabled_ = false;
  size_t capacity_ = 1u << 20;
  uint64_t dropped_ = 0;
  uint64_t span_namespace_ = 0;  // pre-shifted; OR'd into every minted id
  uint64_t next_span_id_ = 1;
  std::vector<TraceEvent> events_;
  std::vector<uint64_t> span_stack_;
  std::function<uint64_t()> now_;
};

// Shorthand for the global tracer.
inline EventTracer& Tracer() { return EventTracer::Global(); }

// RAII span for a synchronous section: records the opening event (which
// becomes the span), pushes it as the current scope so every Record inside
// auto-parents to it, and records a kSpanEnd event (parented to the span) on
// destruction. Near-free when the tracer is disabled. The end event reuses
// the opening timestamp: a synchronous section cannot advance the simulated
// clock, and control-plane wall time never enters traces.
class SpanScope {
 public:
  SpanScope(EventTracer& tracer, uint64_t time_ns, EventKind kind, std::string target,
            std::string detail = "", int64_t value = 0)
      : tracer_(&tracer), time_ns_(time_ns) {
    if (!tracer_->enabled()) {
      tracer_ = nullptr;
      return;
    }
    target_ = target;
    id_ = tracer_->Record(time_ns, kind, std::move(target), std::move(detail), value);
    tracer_->PushSpan(id_);
  }
  ~SpanScope() {
    if (tracer_ == nullptr) {
      return;
    }
    tracer_->PopSpan();
    tracer_->Record(time_ns_, EventKind::kSpanEnd, std::move(target_), "", 0, id_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  // The span id inner events parent to (0 when the tracer is disabled).
  uint64_t id() const { return id_; }

 private:
  EventTracer* tracer_;
  uint64_t time_ns_ = 0;
  uint64_t id_ = 0;
  std::string target_;
};

// RAII re-entry into an existing span from an asynchronous continuation:
// pushes `span_id` as the current scope without recording begin/end events.
// A zero id (tracer was disabled when the span would have opened) is a no-op.
class ScopedParent {
 public:
  ScopedParent(EventTracer& tracer, uint64_t span_id)
      : tracer_(span_id != 0 ? &tracer : nullptr) {
    if (tracer_ != nullptr) {
      tracer_->PushSpan(span_id);
    }
  }
  ~ScopedParent() {
    if (tracer_ != nullptr) {
      tracer_->PopSpan();
    }
  }
  ScopedParent(const ScopedParent&) = delete;
  ScopedParent& operator=(const ScopedParent&) = delete;

 private:
  EventTracer* tracer_;
};

}  // namespace innet::obs

#endif  // SRC_OBS_TRACE_H_
