// In-band telemetry (INT) collection + runtime path-conformance attestation.
//
// Sampled packets carry a per-hop metadata stack (src/netcore/packet.h); the
// GraphProfiler completes each stack into an IntPostcard at egress or drop
// and hands it here. The collector folds postcards into:
//
//   1. Per-chain latency heatmaps — for every (tenant, canonical element
//      chain) the count / total / min / max of observed path latency, plus
//      live registry instruments (innet_int_hop_ns_total{element},
//      innet_int_path_latency_ns{tenant}) so TimeSeriesSampler windows see
//      INT traffic like any other signal.
//
//   2. Attestation — each observed chain is checked against the IntPathDigest
//      SymNet produced at verify time (src/symexec/path_digest.h): delivered
//      packets must match a complete verified path exactly, dropped packets
//      must match a verified path *prefix* (queues and meters are modeled as
//      pass-through symbolically, so a runtime tail-drop legitimately ends a
//      verified path early). A mismatch raises
//      innet_path_conformance_violations_total{tenant}, a path_violation
//      trace event, and HealthMonitor::CountPathViolation — so Rebalance()
//      and the watchdog steer non-conformant tenants like any SLO breach.
//
// Determinism: postcards carry only sim-clock times and deterministic cost
// sums; all aggregation lives in sorted maps; ToJson is a pure function of
// the postcards folded. Disabled by default (like the tracer): sampling is
// only armed when a collector is enabled, so the fast path pays one branch.
#ifndef SRC_OBS_INT_TELEMETRY_H_
#define SRC_OBS_INT_TELEMETRY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/metrics.h"

namespace innet::obs {

// FNV-1a 64 over the ';'-joined chain — the one hash both the verify-time
// digest and the runtime attestation use, so they can never disagree on
// canonical form.
uint64_t HashChain(const std::vector<std::string>& chain);

// Compact per-tenant path digest exported by symexec at verify time, stored
// in the deploy journal, and carried through migration. Two hash sets: full
// delivered paths (egress postcards must match exactly) and every prefix of
// every path (drop postcards must match one — the empty prefix is always
// present, so a packet dropped before reaching any tenant element is
// conformant).
struct IntPathDigest {
  std::vector<uint64_t> full_paths;  // sorted, deduplicated
  std::vector<uint64_t> prefixes;    // sorted, deduplicated
  // Symbolic execution hit its path/hop budget: the sets are incomplete, so
  // attestation must be skipped rather than flag false violations.
  bool truncated = false;

  bool empty() const { return full_paths.empty() && prefixes.empty() && !truncated; }
  bool MatchesFull(uint64_t hash) const;
  bool MatchesPrefix(uint64_t hash) const;

  // Stable text form ("intd1:<t|c>:<hex,...>:<hex,...>") for the deploy
  // journal and migration payloads. Decode rejects anything malformed.
  std::string Encode() const;
  static bool Decode(const std::string& text, IntPathDigest* out);
};

// One hop of a completed postcard (mirrors innet::IntHop, decoupled so obs
// has no netcore dependency).
struct IntPostcardHop {
  std::string element;
  int ingress_port = 0;
  int egress_port = 0;
  uint64_t queue_depth = 0;
  uint64_t hop_ns = 0;
  bool endpoint = false;
};

struct IntPostcard {
  std::string tenant;  // "" = unattributable (no owner, no prefixed elements)
  std::string vm;      // graph identity, e.g. "vm:3"
  std::vector<IntPostcardHop> hops;  // full observed sequence, in order
  std::vector<std::string> chain;    // canonical tenant-interior chain
  uint64_t path_ns = 0;              // queue wait + summed hop costs
  uint64_t truncated_hops = 0;       // hops beyond the in-band stack budget
  bool egress = false;               // delivered (true) vs dropped (false)
};

class IntCollector {
 public:
  explicit IntCollector(MetricsRegistry* registry = &MetricsRegistry::Global())
      : registry_(registry) {}
  IntCollector(const IntCollector&) = delete;
  IntCollector& operator=(const IntCollector&) = delete;

  void Enable(bool on = true) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  // --- Digest registry (fed by the orchestrator at placement time) ----------
  // A tenant may be registered under several keys (client id and module
  // address) because dataplane attribution and control-plane bookkeeping
  // name tenants differently; registering twice is idempotent.
  void SetTenantDigest(const std::string& tenant, const IntPathDigest& digest);
  void ClearTenantDigest(const std::string& tenant);
  bool HasTenantDigest(const std::string& tenant) const;
  const IntPathDigest* FindTenantDigest(const std::string& tenant) const;

  // Folds one completed postcard: heatmap row, live metrics, attestation.
  void Fold(const IntPostcard& postcard);

  uint64_t postcards() const { return postcards_; }
  uint64_t violations() const { return violations_; }
  uint64_t TenantViolations(const std::string& tenant) const;
  // tenant -> cumulative violation count, sorted (federation digests sum a
  // region's own tenants from this, never the process-wide registry).
  const std::map<std::string, uint64_t>& tenant_violations() const { return tenant_violations_; }

  // Last-K one-line postcard renderings, oldest first — captured into
  // flight-recorder postmortem bundles so a crash dump shows the packet
  // journeys that preceded it.
  std::vector<std::string> RecentPostcards() const;
  void set_recent_depth(size_t depth) { recent_depth_ = depth == 0 ? 1 : depth; }

  // {"postcards", "violations", "status", "tenants": [per-tenant heatmap +
  // attestation], "recent"} — sorted and byte-deterministic.
  json::Value ToJson() const;
  bool WriteJsonFile(const std::string& path) const;

  // Forgets postcards, digests, and counters (registry instruments persist).
  void Clear();

  // The process-wide collector used by all built-in instrumentation.
  static IntCollector& Global();

 private:
  struct ChainStats {
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t min_ns = 0;
    uint64_t max_ns = 0;
    uint64_t violations = 0;
    bool egress = false;  // any delivered postcard took this chain
  };

  void CountStatus(const std::string& status);

  bool enabled_ = false;
  MetricsRegistry* registry_;
  uint64_t postcards_ = 0;
  uint64_t violations_ = 0;
  size_t recent_depth_ = 8;
  std::map<std::string, IntPathDigest> digests_;
  std::map<std::string, uint64_t> status_counts_;
  std::map<std::string, uint64_t> tenant_violations_;
  // tenant -> canonical chain text -> latency/violation stats.
  std::map<std::string, std::map<std::string, ChainStats>> chains_;
  std::deque<std::string> recent_;
};

// Shorthand for the global collector.
inline IntCollector& Int() { return IntCollector::Global(); }

}  // namespace innet::obs

#endif  // SRC_OBS_INT_TELEMETRY_H_
