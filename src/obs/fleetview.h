// FleetView: the coordinator-side half of the federated observability plane.
//
// Each region's gossip digest carries a compact cumulative metrics snapshot
// (RegionDigest::metric_samples — counters the region reads off its own
// orchestrator, not the process-wide registry). The coordinator feeds every
// *accepted* digest here; since AcceptDigest discards duplicate and
// reordered digests by sequence number, ingestion is naturally idempotent —
// a WAN-duplicated digest can never double-count a delta. FleetView turns
// the per-region cumulative samples into:
//
//   - per-region delta series (sample minus the region's previous sample,
//     with a reset guard mirroring the TimeSeriesSampler's),
//   - fleet-level series (the sum of every region's latest cumulative
//     value) with per-region staleness labels,
//   - EWMA anomaly flags per (region, metric) — same shape as the
//     AnomalyDetector's rules: warmup, factor * baseline + slack, sustained
//     windows, baseline frozen while deviant —
//   - and correlated *incidents*: a flag seen in one region inside the
//     correlation window is a `regional` incident; the same metric flagged
//     in two or more regions is promoted to a `fleet` incident
//     (innet_fleet_incidents_total{scope}, `fleet_incident` trace event).
//
// The coordinator consults AnomalousRegions() during placement so flagged
// regions rank after quiet ones (scheduler::RankRegions), and ToJson()
// renders the whole view as a byte-deterministic dump (sorted maps,
// sim-clock timestamps only) — the artifact behind `--fleet-obs-out`.
#ifndef SRC_OBS_FLEETVIEW_H_
#define SRC_OBS_FLEETVIEW_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace innet::obs {

class FleetView {
 public:
  explicit FleetView(MetricsRegistry* registry = &MetricsRegistry::Global(),
                     EventTracer* tracer = &EventTracer::Global())
      : registry_(registry), tracer_(tracer) {}
  FleetView(const FleetView&) = delete;
  FleetView& operator=(const FleetView&) = delete;

  // A region whose last ingest is older than this is labeled stale in the
  // dump (the coordinator passes its own staleness window).
  void set_staleness_window_ns(uint64_t ns) { staleness_window_ns_ = ns; }
  // Two regions flagging the same metric within this window correlate into
  // one fleet-wide incident.
  void set_correlation_window_ns(uint64_t ns) { correlation_window_ns_ = ns; }

  // EWMA anomaly knobs, shared by every (region, metric) baseline.
  struct AnomalyParams {
    double ewma_alpha = 0.3;  // baseline update weight for non-deviant deltas
    double factor = 4.0;      // deviant when delta > factor * baseline + min_delta
    double min_delta = 8.0;   // absolute slack against near-zero baselines
    int sustain_windows = 2;  // consecutive deviant digests before flagging
    int warmup_windows = 4;   // digests observed before checks start
  };
  void set_anomaly_params(AnomalyParams params) { params_ = params; }

  // Ingests one region's digest-carried cumulative samples. The caller must
  // already have discarded duplicates/reorders (the coordinator's seq guard
  // does); calling again with a seq <= the last ingested one is ignored
  // here too, so the no-double-count property holds even without the guard.
  void Ingest(const std::string& region, uint64_t seq, uint64_t now_ns, bool degraded,
              const std::map<std::string, uint64_t>& samples);

  // Regions with an anomaly flag raised within the correlation window of
  // `now_ns` (sorted). The coordinator demotes these during placement.
  std::vector<std::string> AnomalousRegions(uint64_t now_ns) const;

  struct Incident {
    uint64_t t_ns = 0;
    std::string metric;
    std::string scope;                 // "regional" or "fleet"
    std::vector<std::string> regions;  // sorted regions implicated
    double value = 0;                  // the deviant delta that triggered it
    double baseline = 0;               // the frozen EWMA it deviated from
  };
  const std::vector<Incident>& incidents() const { return incidents_; }

  size_t region_count() const { return regions_.size(); }
  uint64_t ingests() const { return ingests_; }
  // Sum of every region's latest cumulative sample for `metric` (0 when the
  // metric never appeared in any digest).
  uint64_t FleetTotal(const std::string& metric) const;

  // {"fleet": {...}} — regions with staleness labels, merged fleet series,
  // and the incident log. Deterministic: sorted maps, sim-clock values only.
  json::Value ToJson(uint64_t now_ns) const;
  bool WriteJsonFile(const std::string& path, uint64_t now_ns) const;

 private:
  // One (region, metric) track: the last cumulative sample plus the EWMA
  // baseline over its per-digest deltas.
  struct Track {
    uint64_t last_value = 0;
    uint64_t delta_points = 0;
    uint64_t last_delta = 0;
    double ewma = 0;
    int observed = 0;
    int deviant_streak = 0;
    bool flagged = false;     // current episode already reported
    uint64_t flag_ns = 0;     // when the current/most recent episode flagged
    double flag_value = 0;
    double flag_baseline = 0;
  };
  struct RegionState {
    uint64_t last_seq = 0;
    uint64_t last_ingest_ns = 0;
    uint64_t ingests = 0;
    bool degraded = false;
    std::map<std::string, Track> tracks;  // metric -> track
  };

  void ObserveDelta(const std::string& region, const std::string& metric, Track* track,
                    uint64_t delta, uint64_t now_ns);
  void RaiseIncident(const std::string& region, const std::string& metric, Track* track,
                     uint64_t now_ns);

  MetricsRegistry* registry_;
  EventTracer* tracer_;
  uint64_t staleness_window_ns_ = 2'000'000'000;   // 2 s
  uint64_t correlation_window_ns_ = 5'000'000'000; // 5 s
  AnomalyParams params_;
  uint64_t ingests_ = 0;
  std::map<std::string, RegionState> regions_;
  std::vector<Incident> incidents_;
};

}  // namespace innet::obs

#endif  // SRC_OBS_FLEETVIEW_H_
