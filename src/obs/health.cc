#include "src/obs/health.h"

#include "src/obs/trace.h"

namespace innet::obs {

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kOk: return "ok";
    case HealthState::kDegraded: return "degraded";
    case HealthState::kViolated: return "violated";
  }
  return "unknown";
}

namespace {

// Same ladder as innet_vm_boot_latency_ms so per-tenant and aggregate boot
// percentiles are comparable: 0.5ms .. ~4s.
std::vector<double> BootBucketsMs() { return ExponentialBuckets(0.5, 2.0, 14); }

// Verification is dominated by per-node/per-step symexec cost (tens of µs to
// a few ms per request): 0.01ms .. ~327ms.
std::vector<double> VerifyBucketsMs() { return ExponentialBuckets(0.01, 2.0, 16); }

}  // namespace

HealthMonitor::Tenant& HealthMonitor::Touch(const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) {
    return it->second;
  }
  Tenant t;
  Labels labels = {{"tenant", tenant}};
  t.boot_ms = registry_->GetHistogram("innet_tenant_boot_latency_ms", labels, BootBucketsMs());
  t.verify_ms =
      registry_->GetHistogram("innet_tenant_verify_latency_ms", labels, VerifyBucketsMs());
  t.buffered = registry_->GetCounter("innet_tenant_buffered_packets_total", labels);
  t.drops = registry_->GetCounter("innet_tenant_buffer_drops_total", labels);
  t.restarts = registry_->GetCounter("innet_tenant_restarts_total", labels);
  t.anomalies = registry_->GetCounter("innet_tenant_anomalies_total", labels);
  t.path_violations = registry_->GetCounter("innet_tenant_path_violations_total", labels);
  t.state_gauge = registry_->GetGauge("innet_tenant_health_state", labels);
  return tenants_.emplace(tenant, std::move(t)).first->second;
}

void HealthMonitor::ObserveBootLatency(const std::string& tenant, double ms) {
  if (!enabled_ || tenant.empty()) {
    return;
  }
  Touch(tenant).boot_ms->Observe(ms);
}

void HealthMonitor::ObserveVerifyLatency(const std::string& tenant, double ms) {
  if (!enabled_ || tenant.empty()) {
    return;
  }
  Touch(tenant).verify_ms->Observe(ms);
}

void HealthMonitor::CountBuffered(const std::string& tenant, uint64_t packets) {
  if (!enabled_ || tenant.empty()) {
    return;
  }
  Touch(tenant).buffered->Increment(packets);
}

void HealthMonitor::CountDrop(const std::string& tenant, uint64_t packets) {
  if (!enabled_ || tenant.empty()) {
    return;
  }
  Touch(tenant).drops->Increment(packets);
}

void HealthMonitor::CountRestart(const std::string& tenant) {
  if (!enabled_ || tenant.empty()) {
    return;
  }
  Touch(tenant).restarts->Increment();
}

void HealthMonitor::CountAnomaly(const std::string& tenant) {
  if (!enabled_ || tenant.empty()) {
    return;
  }
  Touch(tenant).anomalies->Increment();
}

void HealthMonitor::CountPathViolation(const std::string& tenant) {
  if (!enabled_ || tenant.empty()) {
    return;
  }
  Touch(tenant).path_violations->Increment();
}

HealthState HealthMonitor::RawState(const Tenant& t) const {
  double boot_p99 = t.boot_ms->P99();
  double verify_p99 = t.verify_ms->P99();
  uint64_t offered = t.buffered->value() + t.drops->value();
  double drop_rate =
      offered == 0 ? 0.0 : static_cast<double>(t.drops->value()) / static_cast<double>(offered);
  uint64_t restarts = t.restarts->value();
  uint64_t anomalies = t.anomalies->value();
  uint64_t path_violations = t.path_violations->value();
  if (boot_p99 > slo_.boot_p99_violated_ms || verify_p99 > slo_.verify_p99_violated_ms ||
      drop_rate > slo_.drop_rate_violated || restarts >= slo_.restarts_violated ||
      anomalies >= slo_.anomalies_violated ||
      path_violations >= slo_.path_violations_violated) {
    return HealthState::kViolated;
  }
  if (boot_p99 > slo_.boot_p99_degraded_ms || verify_p99 > slo_.verify_p99_degraded_ms ||
      drop_rate > slo_.drop_rate_degraded || restarts >= slo_.restarts_degraded ||
      anomalies >= slo_.anomalies_degraded ||
      path_violations >= slo_.path_violations_degraded) {
    return HealthState::kDegraded;
  }
  return HealthState::kOk;
}

void HealthMonitor::EvaluateAll() {
  if (!enabled_) {
    return;
  }
  for (auto& [name, t] : tenants_) {
    HealthState raw = RawState(t);
    HealthState before = t.state;
    if (raw >= t.state) {
      // Getting worse (or holding): adopt immediately, restart recovery.
      t.state = raw;
      t.clean_streak = 0;
    } else if (++t.clean_streak >= slo_.recover_evals) {
      t.state = raw;
      t.clean_streak = 0;
    }
    t.state_gauge->Set(static_cast<double>(t.state));
    if (t.state != before && Tracer().enabled()) {
      Tracer().RecordNow(EventKind::kHealthTransition, "tenant:" + name,
                         std::string(HealthStateName(before)) + "->" + HealthStateName(t.state),
                         static_cast<int64_t>(t.state));
    }
  }
}

HealthState HealthMonitor::CurrentState(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? HealthState::kOk : it->second.state;
}

json::Value HealthMonitor::ToJson() const {
  json::Value list = json::Value::Array();
  for (const auto& [name, t] : tenants_) {
    uint64_t offered = t.buffered->value() + t.drops->value();
    json::Value entry = json::Value::Object();
    entry.Set("tenant", name);
    entry.Set("state", HealthStateName(t.state));
    entry.Set("boot_p99_ms", t.boot_ms->P99());
    entry.Set("verify_p99_ms", t.verify_ms->P99());
    entry.Set("drop_rate", offered == 0 ? 0.0
                                        : static_cast<double>(t.drops->value()) /
                                              static_cast<double>(offered));
    entry.Set("restarts", t.restarts->value());
    entry.Set("anomalies", t.anomalies->value());
    entry.Set("path_violations", t.path_violations->value());
    list.Push(std::move(entry));
  }
  json::Value root = json::Value::Object();
  root.Set("tenants", std::move(list));
  return root;
}

bool HealthMonitor::WriteJsonFile(const std::string& path) const {
  return ToJson().WriteFile(path);
}

HealthMonitor& HealthMonitor::Global() {
  static HealthMonitor* monitor = new HealthMonitor();
  return *monitor;
}

}  // namespace innet::obs
