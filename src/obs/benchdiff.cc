#include "src/obs/benchdiff.h"

#include <cmath>
#include <map>

namespace innet::obs {

namespace {

constexpr char kHigher[] = "higher_is_better";
constexpr char kLower[] = "lower_is_better";

// Relative change with a floor on the denominator so a 0 -> N jump still
// yields a finite, large percentage instead of dividing by zero.
double ChangePct(double baseline, double candidate) {
  double denom = std::fabs(baseline);
  if (denom < 1e-9) {
    denom = 1e-9;
  }
  return (candidate - baseline) / denom * 100.0;
}

}  // namespace

json::Value BenchSeriesEntryJson(const BenchSeriesEntry& entry) {
  json::Value out = json::Value::Object();
  out.Set("metric", entry.metric);
  out.Set("value", entry.value);
  out.Set("direction", entry.direction);
  out.Set("tolerance_pct", entry.tolerance_pct);
  out.Set("unit", entry.unit);
  return out;
}

bool ParseBenchSeries(const json::Value& doc, std::string* bench_name,
                      std::vector<BenchSeriesEntry>* out, std::string* error) {
  if (!doc.is_object()) {
    *error = "bench doc is not a JSON object";
    return false;
  }
  if (bench_name != nullptr) {
    const json::Value* bench = doc.Find("bench");
    *bench_name = bench != nullptr && bench->is_string() ? bench->string_value() : "";
  }
  const json::Value* results = doc.Find("results");
  if (results == nullptr || !results->is_object()) {
    *error = "bench doc has no results object";
    return false;
  }
  const json::Value* series = results->Find("series");
  if (series == nullptr || !series->is_array()) {
    *error = "bench results have no series array";
    return false;
  }
  out->clear();
  std::map<std::string, size_t> seen;
  for (size_t i = 0; i < series->size(); ++i) {
    const json::Value& item = series->at(i);
    if (!item.is_object()) {
      *error = "series entry " + std::to_string(i) + " is not an object";
      return false;
    }
    const json::Value* metric = item.Find("metric");
    const json::Value* value = item.Find("value");
    const json::Value* direction = item.Find("direction");
    if (metric == nullptr || !metric->is_string() || value == nullptr || !value->is_number() ||
        direction == nullptr || !direction->is_string()) {
      *error = "series entry " + std::to_string(i) + " needs metric/value/direction";
      return false;
    }
    BenchSeriesEntry entry;
    entry.metric = metric->string_value();
    entry.value = value->number();
    entry.direction = direction->string_value();
    if (entry.direction != kHigher && entry.direction != kLower) {
      *error = "series entry '" + entry.metric + "' has unknown direction '" + entry.direction +
               "' (want higher_is_better|lower_is_better)";
      return false;
    }
    if (const json::Value* tol = item.Find("tolerance_pct");
        tol != nullptr && tol->is_number()) {
      entry.tolerance_pct = tol->number();
    }
    if (const json::Value* unit = item.Find("unit"); unit != nullptr && unit->is_string()) {
      entry.unit = unit->string_value();
    }
    if (!seen.emplace(entry.metric, i).second) {
      *error = "duplicate series metric '" + entry.metric + "'";
      return false;
    }
    out->push_back(std::move(entry));
  }
  return true;
}

json::Value BenchDiffReport::ToJson() const {
  json::Value list = json::Value::Array();
  for (const BenchDiffEntry& entry : entries) {
    json::Value item = json::Value::Object();
    item.Set("metric", entry.metric);
    item.Set("status", entry.status);
    item.Set("direction", entry.direction);
    item.Set("unit", entry.unit);
    item.Set("tolerance_pct", entry.tolerance_pct);
    item.Set("baseline", entry.baseline);
    item.Set("candidate", entry.candidate);
    item.Set("change_pct", entry.change_pct);
    list.Push(std::move(item));
  }
  json::Value root = json::Value::Object();
  root.Set("bench", bench);
  root.Set("regressions", static_cast<uint64_t>(regressions));
  root.Set("entries", std::move(list));
  return root;
}

bool DiffBenchJson(const json::Value& baseline, const json::Value& candidate,
                   BenchDiffReport* report, std::string* error) {
  std::string base_name;
  std::string cand_name;
  std::vector<BenchSeriesEntry> base_series;
  std::vector<BenchSeriesEntry> cand_series;
  if (!ParseBenchSeries(baseline, &base_name, &base_series, error)) {
    *error = "baseline: " + *error;
    return false;
  }
  if (!ParseBenchSeries(candidate, &cand_name, &cand_series, error)) {
    *error = "candidate: " + *error;
    return false;
  }
  if (base_name != cand_name) {
    *error = "bench name mismatch: baseline '" + base_name + "' vs candidate '" + cand_name + "'";
    return false;
  }

  report->bench = base_name;
  report->entries.clear();
  report->regressions = 0;

  std::map<std::string, const BenchSeriesEntry*> cand_by_metric;
  for (const BenchSeriesEntry& entry : cand_series) {
    cand_by_metric[entry.metric] = &entry;
  }

  for (const BenchSeriesEntry& base : base_series) {
    BenchDiffEntry diff;
    diff.metric = base.metric;
    // Rules come from the baseline: a candidate cannot loosen its own gate.
    diff.direction = base.direction;
    diff.unit = base.unit;
    diff.tolerance_pct = base.tolerance_pct;
    diff.baseline = base.value;
    auto it = cand_by_metric.find(base.metric);
    if (it == cand_by_metric.end()) {
      diff.status = "missing";
      diff.regression = true;
    } else {
      diff.candidate = it->second->value;
      diff.change_pct = ChangePct(base.value, diff.candidate);
      double slack = base.value * base.tolerance_pct / 100.0;
      if (base.direction == kLower) {
        if (diff.candidate > base.value + std::fabs(slack)) {
          diff.status = "regressed";
          diff.regression = true;
        } else if (diff.candidate < base.value - std::fabs(slack)) {
          diff.status = "improved";
        } else {
          diff.status = "ok";
        }
      } else {
        if (diff.candidate < base.value - std::fabs(slack)) {
          diff.status = "regressed";
          diff.regression = true;
        } else if (diff.candidate > base.value + std::fabs(slack)) {
          diff.status = "improved";
        } else {
          diff.status = "ok";
        }
      }
      cand_by_metric.erase(it);
    }
    if (diff.regression) {
      ++report->regressions;
    }
    report->entries.push_back(std::move(diff));
  }

  // Candidate-only metrics, in the candidate's emission order: reported so a
  // reviewer sees them, never a failure (new telemetry must not break CI).
  for (const BenchSeriesEntry& cand : cand_series) {
    if (cand_by_metric.find(cand.metric) == cand_by_metric.end()) {
      continue;  // matched above
    }
    BenchDiffEntry diff;
    diff.metric = cand.metric;
    diff.direction = cand.direction;
    diff.unit = cand.unit;
    diff.tolerance_pct = cand.tolerance_pct;
    diff.candidate = cand.value;
    diff.status = "new";
    report->entries.push_back(std::move(diff));
  }
  return true;
}

}  // namespace innet::obs
