#include "src/obs/int_telemetry.h"

#include <algorithm>
#include <set>
#include <string_view>
#include <utility>

#include "src/obs/health.h"
#include "src/obs/trace.h"

namespace innet::obs {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

// Path latency spans a single cheap hop (~50 ns) to a multi-second queue
// wait: 64ns .. ~2.1s.
std::vector<double> PathLatencyBucketsNs() { return ExponentialBuckets(64.0, 4.0, 13); }

std::string JoinChain(const std::vector<std::string>& chain) {
  std::string text;
  for (const std::string& element : chain) {
    if (!text.empty()) {
      text.push_back(';');
    }
    text.append(element);
  }
  return text;
}

void AppendHex(std::string* out, uint64_t value) {
  static const char kDigits[] = "0123456789abcdef";
  char buf[16];
  int len = 0;
  do {
    buf[len++] = kDigits[value & 0xf];
    value >>= 4;
  } while (value != 0);
  while (len > 0) {
    out->push_back(buf[--len]);
  }
}

bool ParseHexList(const std::string& text, std::vector<uint64_t>* out) {
  out->clear();
  if (text.empty()) {
    return true;
  }
  uint64_t value = 0;
  bool have_digit = false;
  for (char c : text) {
    if (c == ',') {
      if (!have_digit) {
        return false;
      }
      out->push_back(value);
      value = 0;
      have_digit = false;
      continue;
    }
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
    have_digit = true;
  }
  if (!have_digit) {
    return false;
  }
  out->push_back(value);
  return true;
}

}  // namespace

uint64_t HashChain(const std::vector<std::string>& chain) {
  uint64_t hash = kFnvOffset;
  bool first = true;
  for (const std::string& element : chain) {
    if (!first) {
      hash = (hash ^ static_cast<uint64_t>(';')) * kFnvPrime;
    }
    first = false;
    for (char c : element) {
      hash = (hash ^ static_cast<uint64_t>(static_cast<unsigned char>(c))) * kFnvPrime;
    }
  }
  return hash;
}

bool IntPathDigest::MatchesFull(uint64_t hash) const {
  return std::binary_search(full_paths.begin(), full_paths.end(), hash);
}

bool IntPathDigest::MatchesPrefix(uint64_t hash) const {
  return std::binary_search(prefixes.begin(), prefixes.end(), hash);
}

std::string IntPathDigest::Encode() const {
  std::string out = "intd1:";
  out.push_back(truncated ? 't' : 'c');
  out.push_back(':');
  bool first = true;
  for (uint64_t hash : full_paths) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    AppendHex(&out, hash);
  }
  out.push_back(':');
  first = true;
  for (uint64_t hash : prefixes) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    AppendHex(&out, hash);
  }
  return out;
}

bool IntPathDigest::Decode(const std::string& text, IntPathDigest* out) {
  constexpr std::string_view kPrefix = "intd1:";
  // Shortest legal form is the empty digest "intd1:c::" — flag, separator,
  // and two (possibly empty) hash lists.
  if (text.size() < kPrefix.size() + 3 || text.compare(0, kPrefix.size(), kPrefix) != 0) {
    return false;
  }
  char flag = text[kPrefix.size()];
  if ((flag != 't' && flag != 'c') || text[kPrefix.size() + 1] != ':') {
    return false;
  }
  size_t body = kPrefix.size() + 2;
  size_t sep = text.find(':', body);
  if (sep == std::string::npos) {
    return false;
  }
  IntPathDigest digest;
  digest.truncated = flag == 't';
  if (!ParseHexList(text.substr(body, sep - body), &digest.full_paths) ||
      !ParseHexList(text.substr(sep + 1), &digest.prefixes)) {
    return false;
  }
  std::sort(digest.full_paths.begin(), digest.full_paths.end());
  std::sort(digest.prefixes.begin(), digest.prefixes.end());
  *out = std::move(digest);
  return true;
}

void IntCollector::SetTenantDigest(const std::string& tenant, const IntPathDigest& digest) {
  if (tenant.empty()) {
    return;
  }
  IntPathDigest sorted = digest;
  std::sort(sorted.full_paths.begin(), sorted.full_paths.end());
  sorted.full_paths.erase(std::unique(sorted.full_paths.begin(), sorted.full_paths.end()),
                          sorted.full_paths.end());
  std::sort(sorted.prefixes.begin(), sorted.prefixes.end());
  sorted.prefixes.erase(std::unique(sorted.prefixes.begin(), sorted.prefixes.end()),
                        sorted.prefixes.end());
  digests_[tenant] = std::move(sorted);
}

void IntCollector::ClearTenantDigest(const std::string& tenant) { digests_.erase(tenant); }

bool IntCollector::HasTenantDigest(const std::string& tenant) const {
  return digests_.count(tenant) != 0;
}

const IntPathDigest* IntCollector::FindTenantDigest(const std::string& tenant) const {
  auto it = digests_.find(tenant);
  return it == digests_.end() ? nullptr : &it->second;
}

void IntCollector::CountStatus(const std::string& status) {
  ++status_counts_[status];
  registry_->GetCounter("innet_int_postcards_total", {{"status", status}})->Increment();
}

void IntCollector::Fold(const IntPostcard& postcard) {
  if (!enabled_) {
    return;
  }
  ++postcards_;
  for (const IntPostcardHop& hop : postcard.hops) {
    registry_->GetCounter("innet_int_hop_ns_total", {{"element", hop.element}})
        ->Increment(hop.hop_ns);
  }
  if (postcard.truncated_hops > 0) {
    registry_->GetCounter("innet_int_hops_truncated_total", {})
        ->Increment(postcard.truncated_hops);
  }

  std::string chain_text = JoinChain(postcard.chain);
  std::string status;
  bool conformant = true;
  if (postcard.tenant.empty()) {
    status = "unattributed";
  } else {
    status = postcard.egress ? "egress" : "drop";
    registry_
        ->GetHistogram("innet_int_path_latency_ns", {{"tenant", postcard.tenant}},
                       PathLatencyBucketsNs())
        ->Observe(static_cast<double>(postcard.path_ns));
    auto digest_it = digests_.find(postcard.tenant);
    if (digest_it == digests_.end()) {
      status = "unattested";
    } else if (digest_it->second.truncated || postcard.truncated_hops > 0) {
      // Either side ran out of budget: the sets (or the observed chain) are
      // incomplete, so a mismatch proves nothing. Counted above, not flagged.
    } else {
      uint64_t hash = HashChain(postcard.chain);
      conformant = postcard.egress ? digest_it->second.MatchesFull(hash)
                                   : digest_it->second.MatchesPrefix(hash);
      if (!conformant) {
        ++violations_;
        ++tenant_violations_[postcard.tenant];
        registry_
            ->GetCounter("innet_path_conformance_violations_total",
                         {{"tenant", postcard.tenant}})
            ->Increment();
        if (Tracer().enabled()) {
          Tracer().RecordNow(EventKind::kPathViolation, "tenant:" + postcard.tenant,
                             (postcard.egress ? "egress:" : "drop:") + chain_text,
                             static_cast<int64_t>(postcard.path_ns));
        }
        Health().CountPathViolation(postcard.tenant);
      }
    }
    ChainStats& stats = chains_[postcard.tenant][chain_text];
    if (stats.count == 0 || postcard.path_ns < stats.min_ns) {
      stats.min_ns = postcard.path_ns;
    }
    if (postcard.path_ns > stats.max_ns) {
      stats.max_ns = postcard.path_ns;
    }
    ++stats.count;
    stats.total_ns += postcard.path_ns;
    if (!conformant) {
      ++stats.violations;
    }
    if (postcard.egress) {
      stats.egress = true;
    }
  }
  CountStatus(status);

  std::string line = "t=" + (postcard.tenant.empty() ? "-" : postcard.tenant) +
                     " vm=" + postcard.vm + " " + status +
                     " chain=" + (chain_text.empty() ? "-" : chain_text) +
                     " ns=" + std::to_string(postcard.path_ns);
  if (!conformant) {
    line += " VIOLATION";
  }
  recent_.push_back(std::move(line));
  while (recent_.size() > recent_depth_) {
    recent_.pop_front();
  }
}

uint64_t IntCollector::TenantViolations(const std::string& tenant) const {
  auto it = tenant_violations_.find(tenant);
  return it == tenant_violations_.end() ? 0 : it->second;
}

std::vector<std::string> IntCollector::RecentPostcards() const {
  return {recent_.begin(), recent_.end()};
}

json::Value IntCollector::ToJson() const {
  json::Value root = json::Value::Object();
  root.Set("postcards", postcards_);
  root.Set("violations", violations_);
  json::Value status = json::Value::Object();
  for (const auto& [name, count] : status_counts_) {
    status.Set(name, count);
  }
  root.Set("status", std::move(status));

  // Union of tenants with a registered digest and tenants with observed
  // postcards, in sorted order.
  std::set<std::string> tenant_names;
  for (const auto& [tenant, digest] : digests_) {
    tenant_names.insert(tenant);
  }
  for (const auto& [tenant, rows] : chains_) {
    tenant_names.insert(tenant);
  }
  json::Value tenants = json::Value::Array();
  for (const std::string& tenant : tenant_names) {
    json::Value entry = json::Value::Object();
    entry.Set("tenant", tenant);
    auto digest_it = digests_.find(tenant);
    entry.Set("attested", digest_it != digests_.end());
    if (digest_it != digests_.end()) {
      entry.Set("digest_paths", static_cast<uint64_t>(digest_it->second.full_paths.size()));
      entry.Set("digest_truncated", digest_it->second.truncated);
    }
    entry.Set("violations", TenantViolations(tenant));
    json::Value paths = json::Value::Array();
    auto chain_it = chains_.find(tenant);
    if (chain_it != chains_.end()) {
      for (const auto& [chain, stats] : chain_it->second) {
        json::Value row = json::Value::Object();
        row.Set("chain", chain);
        row.Set("count", stats.count);
        row.Set("total_ns", stats.total_ns);
        row.Set("avg_ns", stats.count == 0 ? uint64_t{0} : stats.total_ns / stats.count);
        row.Set("min_ns", stats.min_ns);
        row.Set("max_ns", stats.max_ns);
        row.Set("violations", stats.violations);
        row.Set("delivered", stats.egress);
        paths.Push(std::move(row));
      }
    }
    entry.Set("paths", std::move(paths));
    tenants.Push(std::move(entry));
  }
  root.Set("tenants", std::move(tenants));

  json::Value recent = json::Value::Array();
  for (const std::string& line : recent_) {
    recent.Push(line);
  }
  root.Set("recent", std::move(recent));
  return root;
}

bool IntCollector::WriteJsonFile(const std::string& path) const {
  return ToJson().WriteFile(path);
}

void IntCollector::Clear() {
  postcards_ = 0;
  violations_ = 0;
  digests_.clear();
  status_counts_.clear();
  tenant_violations_.clear();
  chains_.clear();
  recent_.clear();
}

IntCollector& IntCollector::Global() {
  static IntCollector* collector = new IntCollector();
  return *collector;
}

}  // namespace innet::obs
