// Direction-aware diffing of bench telemetry snapshots — the library behind
// tools/innet_benchdiff and the CI perf-regression gate.
//
// Every bench harness emits a standardized `results.series` section: a flat
// array of headline metrics, each declaring which way "better" points and how
// much drift is noise:
//
//   {"metric": "accept_rate", "value": 0.97,
//    "direction": "higher_is_better", "tolerance_pct": 2, "unit": "ratio"}
//
// DiffBenchJson compares a candidate dump against a committed baseline under
// those per-metric rules: a lower_is_better metric regresses when the
// candidate exceeds baseline * (1 + tolerance), a higher_is_better one when
// it falls below baseline * (1 - tolerance). A metric present in the baseline
// but missing from the candidate is a regression (a bench silently dropping a
// headline number must not pass CI); a metric new in the candidate is
// reported but never fails. Direction and tolerance are read from the
// BASELINE entry, so a candidate cannot loosen its own gate.
//
// The benches only emit values derived from the simulated clock and
// deterministic work counts — never wall-clock timings — so a regression here
// means the *modeled* behavior changed (more retries, worse placement, more
// engine steps), which is exactly what a reproduction wants to pin.
#ifndef SRC_OBS_BENCHDIFF_H_
#define SRC_OBS_BENCHDIFF_H_

#include <string>
#include <vector>

#include "src/obs/json.h"

namespace innet::obs {

// One metric in a bench's `series` section.
struct BenchSeriesEntry {
  std::string metric;
  double value = 0;
  std::string direction;  // "higher_is_better" or "lower_is_better"
  double tolerance_pct = 0;
  std::string unit;
};

// Builds the canonical JSON for one series entry (used by bench_util.h).
json::Value BenchSeriesEntryJson(const BenchSeriesEntry& entry);

// Extracts `results.series` from a bench doc ({"bench": ..., "results":
// {..., "series": [...]}}). False + *error on malformed docs, unknown
// directions, or duplicate metric names. *bench_name receives the doc's
// bench field (may be null).
bool ParseBenchSeries(const json::Value& doc, std::string* bench_name,
                      std::vector<BenchSeriesEntry>* out, std::string* error);

// One compared metric.
struct BenchDiffEntry {
  std::string metric;
  std::string direction;
  std::string unit;
  double tolerance_pct = 0;
  double baseline = 0;
  double candidate = 0;
  double change_pct = 0;       // (candidate - baseline) / max(|baseline|, eps)
  std::string status;          // "ok" | "improved" | "regressed" | "missing" | "new"
  bool regression = false;     // status is "regressed" or "missing"
};

struct BenchDiffReport {
  std::string bench;
  std::vector<BenchDiffEntry> entries;  // baseline order, then candidate-only
  size_t regressions = 0;
  bool ok() const { return regressions == 0; }

  // {"bench", "regressions", "entries": [...]}.
  json::Value ToJson() const;
};

// Diffs two bench docs. False + *error when either doc is malformed or the
// bench names disagree (comparing placement_scaling against control_chaos is
// a harness bug, not a perf result).
bool DiffBenchJson(const json::Value& baseline, const json::Value& candidate,
                   BenchDiffReport* report, std::string* error);

}  // namespace innet::obs

#endif  // SRC_OBS_BENCHDIFF_H_
