#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace innet::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  // Buckets have le-semantics: bucket i counts bounds[i-1] < value <=
  // bounds[i], so the first bound >= value is the right bucket.
  size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin());
  ++buckets_[idx];
  ++count_;
  sum_ += value;
}

double Histogram::Quantile(double q) const { return HistogramQuantile(bounds_, buckets_, q); }

double HistogramQuantile(const std::vector<double>& bounds,
                         const std::vector<uint64_t>& buckets, double q) {
  // Degenerate shapes reach this through innet_top, which feeds it bucket
  // arrays parsed from (possibly truncated) dump files: an empty or all-zero
  // bucket array and a NaN q must all come back as a plain 0, never index
  // out of range or poison downstream arithmetic.
  if (buckets.empty() || std::isnan(q)) {
    return 0;
  }
  uint64_t total = 0;
  for (uint64_t c : buckets) {
    total += c;
  }
  if (total == 0) {
    return 0;
  }
  q = std::min(1.0, std::max(0.0, q));
  // Nearest-rank target, 1-based; ceil keeps p100 on the last observation.
  uint64_t rank = std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(q * total)));
  uint64_t cum_before = 0;
  size_t i = 0;
  for (; i < buckets.size(); ++i) {
    if (cum_before + buckets[i] >= rank) {
      break;
    }
    cum_before += buckets[i];
  }
  if (i >= bounds.size()) {
    // +inf overflow bucket: clamp to the highest finite bound (Prometheus
    // convention) — there is no upper edge to interpolate toward.
    return bounds.empty() ? 0 : bounds.back();
  }
  double lower = i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
  double upper = bounds[i];
  double fraction = static_cast<double>(rank - cum_before) / static_cast<double>(buckets[i]);
  return lower + (upper - lower) * fraction;
}

std::vector<double> ExponentialBuckets(double start, double factor, int count) {
  std::vector<double> bounds;
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> LinearBuckets(double start, double width, int count) {
  std::vector<double> bounds;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(start + width * i);
  }
  return bounds;
}

namespace {

Labels Canonical(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::string InstrumentKey(const std::string& name, const Labels& canonical) {
  std::string key = name;
  for (const auto& [k, v] : canonical) {
    key += '\x00';
    key += k;
    key += '\x01';
    key += v;
  }
  return key;
}

std::string LabelText(const Labels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    // Label values are arbitrary tenant-controlled strings; the Prometheus
    // text convention escapes backslash, quote, and newline so one hostile
    // value cannot smuggle a fake label or break line-oriented parsers.
    out += labels[i].first + "=\"" + json::Escape(labels[i].second) + "\"";
  }
  out += '}';
  return out;
}

// Same fixed formatting the JSON writer uses, for the text dump.
std::string NumberText(double value) {
  return json::Value(value).ToString();
}

}  // namespace

MetricsRegistry::Instrument* MetricsRegistry::FindOrCreate(const std::string& name,
                                                           const Labels& labels, Kind kind,
                                                           const std::vector<double>* bounds) {
  Labels canonical = Canonical(labels);
  std::string key = InstrumentKey(name, canonical);
  auto it = instruments_.find(key);
  if (it != instruments_.end()) {
    if (it->second.kind != kind) {
      std::fprintf(stderr, "obs: metric '%s' re-registered as a different kind\n", name.c_str());
      std::abort();
    }
    return &it->second;
  }
  Instrument instrument;
  instrument.name = name;
  instrument.labels = std::move(canonical);
  instrument.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      instrument.counter.reset(new Counter());
      break;
    case Kind::kGauge:
      instrument.gauge.reset(new Gauge());
      break;
    case Kind::kHistogram:
      instrument.histogram.reset(new Histogram(bounds != nullptr ? *bounds
                                                                 : std::vector<double>{}));
      break;
  }
  auto [inserted, ok] = instruments_.emplace(std::move(key), std::move(instrument));
  (void)ok;
  return &inserted->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, const Labels& labels) {
  return FindOrCreate(name, labels, Kind::kCounter, nullptr)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, const Labels& labels) {
  return FindOrCreate(name, labels, Kind::kGauge, nullptr)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name, const Labels& labels,
                                         const std::vector<double>& bounds) {
  return FindOrCreate(name, labels, Kind::kHistogram, &bounds)->histogram.get();
}

void MetricsRegistry::ResetValues() {
  for (auto& [key, instrument] : instruments_) {
    switch (instrument.kind) {
      case Kind::kCounter:
        instrument.counter->value_ = 0;
        break;
      case Kind::kGauge:
        instrument.gauge->value_ = 0;
        break;
      case Kind::kHistogram:
        instrument.histogram->count_ = 0;
        instrument.histogram->sum_ = 0;
        std::fill(instrument.histogram->buckets_.begin(), instrument.histogram->buckets_.end(),
                  0u);
        break;
    }
  }
}

void MetricsRegistry::VisitInstruments(const InstrumentVisitor& visit) const {
  for (const auto& [key, instrument] : instruments_) {
    visit(instrument.name, instrument.labels,
          instrument.kind == Kind::kCounter ? instrument.counter.get() : nullptr,
          instrument.kind == Kind::kGauge ? instrument.gauge.get() : nullptr,
          instrument.kind == Kind::kHistogram ? instrument.histogram.get() : nullptr);
  }
}

std::vector<std::string> MetricsRegistry::MetricNames() const {
  std::vector<std::string> names;
  for (const auto& [key, instrument] : instruments_) {
    if (names.empty() || names.back() != instrument.name) {
      names.push_back(instrument.name);
    }
  }
  names.erase(std::unique(names.begin(), names.end()), names.end());
  std::sort(names.begin(), names.end());
  return names;
}

void MetricsRegistry::DumpText(std::ostream& out) const {
  for (const auto& [key, instrument] : instruments_) {
    out << instrument.name << LabelText(instrument.labels) << ' ';
    switch (instrument.kind) {
      case Kind::kCounter:
        out << instrument.counter->value();
        break;
      case Kind::kGauge:
        out << NumberText(instrument.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *instrument.histogram;
        out << "count=" << h.count() << " sum=" << NumberText(h.sum()) << " buckets=[";
        for (size_t i = 0; i < h.buckets().size(); ++i) {
          if (i > 0) {
            out << ' ';
          }
          if (i < h.bounds().size()) {
            out << "le" << NumberText(h.bounds()[i]);
          } else {
            out << "le+inf";
          }
          out << ':' << h.buckets()[i];
        }
        out << ']';
        break;
      }
    }
    out << '\n';
  }
}

json::Value MetricsRegistry::ToJson() const {
  json::Value metrics = json::Value::Array();
  for (const auto& [key, instrument] : instruments_) {
    json::Value entry = json::Value::Object();
    entry.Set("name", instrument.name);
    json::Value labels = json::Value::Object();
    for (const auto& [k, v] : instrument.labels) {
      labels.Set(k, v);
    }
    entry.Set("labels", std::move(labels));
    switch (instrument.kind) {
      case Kind::kCounter:
        entry.Set("type", "counter");
        entry.Set("value", instrument.counter->value());
        break;
      case Kind::kGauge:
        entry.Set("type", "gauge");
        entry.Set("value", instrument.gauge->value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *instrument.histogram;
        entry.Set("type", "histogram");
        entry.Set("count", h.count());
        entry.Set("sum", h.sum());
        json::Value bounds = json::Value::Array();
        for (double b : h.bounds()) {
          bounds.Push(b);
        }
        entry.Set("bounds", std::move(bounds));
        json::Value buckets = json::Value::Array();
        for (uint64_t c : h.buckets()) {
          buckets.Push(c);
        }
        entry.Set("buckets", std::move(buckets));
        break;
      }
    }
    metrics.Push(std::move(entry));
  }
  json::Value root = json::Value::Object();
  root.Set("metrics", std::move(metrics));
  return root;
}

void MetricsRegistry::DumpJson(std::ostream& out) const { ToJson().Write(out, 2); }

bool MetricsRegistry::WriteJsonFile(const std::string& path) const {
  return ToJson().WriteFile(path);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace innet::obs
