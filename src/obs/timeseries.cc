#include "src/obs/timeseries.h"

#include <algorithm>
#include <cmath>

#include "src/obs/health.h"
#include "src/obs/trace.h"

namespace innet::obs {

const char* SeriesKindName(SeriesKind kind) {
  switch (kind) {
    case SeriesKind::kCounterRate: return "counter_rate";
    case SeriesKind::kGauge: return "gauge";
    case SeriesKind::kHistogramWindow: return "histogram_window";
  }
  return "unknown";
}

void Series::Append(SeriesPoint point) {
  ++total_points_;
  if (ring_.size() < capacity_) {
    ring_.push_back(point);
    head_ = ring_.size() % capacity_;
    return;
  }
  ring_[head_] = point;
  head_ = (head_ + 1) % capacity_;
}

std::vector<SeriesPoint> Series::Points() const {
  if (ring_.size() < capacity_) {
    return ring_;  // never wrapped: stored in order
  }
  std::vector<SeriesPoint> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % capacity_]);
  }
  return out;
}

const SeriesPoint& Series::Last() const {
  return ring_[(head_ + ring_.size() - 1) % ring_.size()];
}

namespace {

// Same key scheme the registry uses internally, so track iteration order
// matches the metrics dump.
std::string TrackKey(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels) {
    key += '\x00';
    key += k;
    key += '\x01';
    key += v;
  }
  return key;
}

Labels Canonical(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace

TimeSeriesSampler::TimeSeriesSampler(MetricsRegistry* registry) : registry_(registry) {
  windows_counter_ = registry_->GetCounter("innet_timeseries_windows_total");
}

void TimeSeriesSampler::SampleWindow(uint64_t now_ns) {
  if (windows_sampled_ > 0 && now_ns <= last_sample_ns_) {
    return;  // a window cannot end twice at the same instant
  }
  uint64_t elapsed_ns = now_ns - last_sample_ns_;
  if (elapsed_ns == 0) {
    elapsed_ns = window_ns_;  // first sample at t=0: fall back to the nominal window
  }
  // Count the window before scraping so the sampler's own counter shows a
  // steady one-per-window rate in the dump it produces.
  windows_counter_->Increment();

  registry_->VisitInstruments([&](const std::string& name, const Labels& labels,
                                  const Counter* counter, const Gauge* gauge,
                                  const Histogram* histogram) {
    std::string key = TrackKey(name, labels);
    auto it = tracks_.find(key);
    if (it == tracks_.end()) {
      SeriesKind kind = counter != nullptr  ? SeriesKind::kCounterRate
                        : gauge != nullptr ? SeriesKind::kGauge
                                           : SeriesKind::kHistogramWindow;
      it = tracks_
               .emplace(std::move(key), Track{Series(name, labels, kind, ring_capacity_), 0, 0, {}})
               .first;
    }
    Track& track = it->second;
    SeriesPoint point;
    point.t_ns = now_ns;
    if (counter != nullptr) {
      uint64_t cur = counter->value();
      uint64_t prev = cur >= track.prev_counter ? track.prev_counter : 0;  // reset
      point.count = cur - prev;
      point.value = static_cast<double>(point.count) * 1e9 / static_cast<double>(elapsed_ns);
      track.prev_counter = cur;
    } else if (gauge != nullptr) {
      point.value = gauge->value();
    } else {
      // Window quantiles come from the delta buckets: observations made in
      // this window only, not the run-to-date aggregate.
      const std::vector<uint64_t>& cur = histogram->buckets();
      bool reset = histogram->count() < track.prev_hist_count ||
                   track.prev_buckets.size() != cur.size();
      std::vector<uint64_t> delta(cur.size(), 0);
      for (size_t i = 0; i < cur.size(); ++i) {
        uint64_t prev = reset ? 0 : track.prev_buckets[i];
        delta[i] = cur[i] >= prev ? cur[i] - prev : cur[i];
      }
      point.count = histogram->count() - (reset ? 0 : track.prev_hist_count);
      point.p50 = HistogramQuantile(histogram->bounds(), delta, 0.50);
      point.value = HistogramQuantile(histogram->bounds(), delta, 0.99);
      track.prev_buckets = cur;
      track.prev_hist_count = histogram->count();
    }
    track.series.Append(point);
    if (detector_ != nullptr) {
      detector_->Observe(now_ns, name, labels, point.value);
    }
  });

  last_sample_ns_ = now_ns;
  ++windows_sampled_;
}

const Series* TimeSeriesSampler::FindSeries(const std::string& name, const Labels& labels) const {
  auto it = tracks_.find(TrackKey(name, Canonical(labels)));
  return it == tracks_.end() ? nullptr : &it->second.series;
}

json::Value TimeSeriesSampler::ToJson() const {
  json::Value list = json::Value::Array();
  for (const auto& [key, track] : tracks_) {
    const Series& series = track.series;
    json::Value entry = json::Value::Object();
    entry.Set("name", series.name());
    json::Value labels = json::Value::Object();
    for (const auto& [k, v] : series.labels()) {
      labels.Set(k, v);
    }
    entry.Set("labels", std::move(labels));
    entry.Set("kind", SeriesKindName(series.kind()));
    if (series.evicted_points() > 0) {
      entry.Set("evicted", series.evicted_points());
    }
    json::Value points = json::Value::Array();
    for (const SeriesPoint& point : series.Points()) {
      json::Value p = json::Value::Object();
      p.Set("t_ns", point.t_ns);
      switch (series.kind()) {
        case SeriesKind::kCounterRate:
          p.Set("rate_per_s", point.value);
          p.Set("delta", point.count);
          break;
        case SeriesKind::kGauge:
          p.Set("value", point.value);
          break;
        case SeriesKind::kHistogramWindow:
          p.Set("count", point.count);
          p.Set("p50", point.p50);
          p.Set("p99", point.value);
          break;
      }
      points.Push(std::move(p));
    }
    entry.Set("points", std::move(points));
    list.Push(std::move(entry));
  }
  json::Value root = json::Value::Object();
  root.Set("window_ns", window_ns_);
  root.Set("windows_sampled", windows_sampled_);
  root.Set("series", std::move(list));
  if (detector_ != nullptr) {
    root.Set("anomalies", detector_->ToJson());
  }
  return root;
}

bool TimeSeriesSampler::WriteJsonFile(const std::string& path) const {
  return ToJson().WriteFile(path);
}

void AnomalyDetector::UseDefaultRules() {
  // Drop-rate spikes: per-tenant buffer drops (attributed) and the
  // platform-wide drop counter (fleet-level).
  AddRule({"drop_rate_spike", "innet_tenant_buffer_drops_total", "tenant",
           /*ewma_alpha=*/0.3, /*factor=*/3.0, /*min_delta=*/2.0, /*sustain=*/2, /*warmup=*/3});
  AddRule({"drop_rate_spike", "innet_platform_buffer_drops_total", "",
           0.3, 3.0, 2.0, 2, 3});
  // Verify-latency inflation: the controller's aggregate histogram and each
  // tenant's own (windowed p99s via the sampler).
  AddRule({"verify_latency_inflation", "innet_controller_verify_latency_ms", "",
           0.3, 2.0, 0.5, 3, 3});
  AddRule({"verify_latency_inflation", "innet_tenant_verify_latency_ms", "tenant",
           0.3, 2.0, 0.5, 3, 3});
  // Control-channel retry storms: a sustained burst of client-side retries
  // means the channel is lossy or a platform is cut off.
  AddRule({"control_retry_storm", "innet_control_retries_total", "",
           0.3, 3.0, 4.0, 2, 3});
}

void AnomalyDetector::Observe(uint64_t t_ns, const std::string& metric, const Labels& labels,
                              double value) {
  for (size_t r = 0; r < rules_.size(); ++r) {
    const AnomalyRule& rule = rules_[r];
    if (rule.metric != metric) {
      continue;
    }
    Baseline& base = baselines_[{r, TrackKey(metric, labels)}];
    ++base.observed;
    if (base.observed == 1) {
      base.ewma = value;
      continue;
    }
    bool deviant = base.observed > rule.warmup_windows &&
                   value > rule.factor * base.ewma + rule.min_delta;
    if (deviant) {
      // Freeze the baseline: a spike must not ratchet itself into normality.
      ++base.deviant_streak;
      if (base.deviant_streak >= rule.sustain_windows && !base.flagged) {
        base.flagged = true;
        RaiseFlag(t_ns, rule, labels, value, base.ewma);
      }
    } else {
      base.deviant_streak = 0;
      base.flagged = false;
      base.ewma = rule.ewma_alpha * value + (1.0 - rule.ewma_alpha) * base.ewma;
    }
  }
}

void AnomalyDetector::RaiseFlag(uint64_t t_ns, const AnomalyRule& rule, const Labels& labels,
                                double value, double baseline) {
  Flag flag;
  flag.t_ns = t_ns;
  flag.signal = rule.signal;
  flag.metric = rule.metric;
  flag.value = value;
  flag.baseline = baseline;
  if (!rule.tenant_label.empty()) {
    for (const auto& [k, v] : labels) {
      if (k == rule.tenant_label) {
        flag.tenant = v;
        break;
      }
    }
  }
  flag.target = flag.tenant.empty() ? "metric:" + rule.metric : "tenant:" + flag.tenant;
  if (tracer_->enabled()) {
    tracer_->Record(t_ns, EventKind::kAnomaly, flag.target, rule.signal,
                    static_cast<int64_t>(std::llround(value)));
  }
  registry_->GetCounter("innet_anomaly_flags_total", {{"signal", rule.signal}})->Increment();
  if (!flag.tenant.empty() && health_->enabled()) {
    health_->CountAnomaly(flag.tenant);
  }
  flags_.push_back(std::move(flag));
}

json::Value AnomalyDetector::ToJson() const {
  json::Value list = json::Value::Array();
  for (const Flag& flag : flags_) {
    json::Value entry = json::Value::Object();
    entry.Set("t_ns", flag.t_ns);
    entry.Set("signal", flag.signal);
    entry.Set("metric", flag.metric);
    entry.Set("target", flag.target);
    if (!flag.tenant.empty()) {
      entry.Set("tenant", flag.tenant);
    }
    entry.Set("value", flag.value);
    entry.Set("baseline", flag.baseline);
    list.Push(std::move(entry));
  }
  return list;
}

}  // namespace innet::obs
