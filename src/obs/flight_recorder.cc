#include "src/obs/flight_recorder.h"

#include <utility>

#include "src/obs/int_telemetry.h"
#include "src/obs/metrics.h"

namespace innet::obs {

void FlightRecorder::set_depth(size_t depth) {
  depth_ = depth == 0 ? 1 : depth;
  ring_.clear();
  ring_.shrink_to_fit();
  head_ = 0;
}

void FlightRecorder::Record(uint64_t time_ns, EventKind kind, std::string target,
                            std::string detail, int64_t value) {
  ++recorded_;
  FlightEvent event{time_ns, kind, std::move(target), std::move(detail), value};
  if (ring_.size() < depth_) {
    ring_.push_back(std::move(event));
    head_ = ring_.size() % depth_;
    return;
  }
  ring_[head_] = std::move(event);
  head_ = (head_ + 1) % depth_;
}

std::vector<FlightEvent> FlightRecorder::RecentEvents() const {
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < depth_) {
    out = ring_;  // never wrapped: stored in order
    return out;
  }
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % depth_]);
  }
  return out;
}

void FlightRecorder::SnapshotPostmortem(PostmortemBundle bundle) {
  bundle.events = RecentEvents();
  if (Int().enabled()) {
    bundle.postcards = Int().RecentPostcards();
  }
  last_snapshot_[bundle.target] = evicted_ + postmortems_.size();
  postmortems_.push_back(std::move(bundle));
  if (postmortems_.size() > max_postmortems_) {
    postmortems_.pop_front();
    ++evicted_;
  }
}

void FlightRecorder::NotePeriodicElements(const std::string& target,
                                          std::vector<ElementCounterDelta> elements) {
  if (elements.empty()) {
    return;  // an empty capture would shadow nothing useful
  }
  periodic_elements_[target] = std::move(elements);
}

const std::vector<ElementCounterDelta>* FlightRecorder::LastElementsFor(
    const std::string& target) const {
  auto it = last_snapshot_.find(target);
  if (it != last_snapshot_.end() && it->second >= evicted_) {
    const std::vector<ElementCounterDelta>& elements =
        postmortems_[static_cast<size_t>(it->second - evicted_)].elements;
    if (!elements.empty()) {
      return &elements;
    }
  }
  // No usable bundle (never snapshotted, aged out, or captured nothing):
  // fall back to the last periodic capture from the platform sweep.
  auto periodic = periodic_elements_.find(target);
  return periodic == periodic_elements_.end() ? nullptr : &periodic->second;
}

void FlightRecorder::Clear() {
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
  evicted_ = 0;
  postmortems_.clear();
  last_snapshot_.clear();
  periodic_elements_.clear();
}

json::Value FlightRecorder::ToJson() const {
  json::Value bundles = json::Value::Array();
  for (const PostmortemBundle& bundle : postmortems_) {
    json::Value entry = json::Value::Object();
    entry.Set("t_ns", bundle.time_ns);
    entry.Set("trigger", EventKindName(bundle.trigger));
    entry.Set("target", bundle.target);
    entry.Set("tenant", bundle.tenant);
    if (!bundle.detail.empty()) {
      entry.Set("detail", bundle.detail);
    }
    entry.Set("span", bundle.span);
    if (!bundle.health.empty()) {
      entry.Set("health", bundle.health);
    }
    json::Value elements = json::Value::Array();
    for (const ElementCounterDelta& delta : bundle.elements) {
      json::Value element = json::Value::Object();
      element.Set("element", delta.element);
      element.Set("class", delta.element_class);
      element.Set("packets", delta.packets);
      element.Set("bytes", delta.bytes);
      element.Set("drops", delta.drops);
      element.Set("proc_ns", delta.proc_ns);
      elements.Push(std::move(element));
    }
    entry.Set("elements", std::move(elements));
    json::Value events = json::Value::Array();
    for (const FlightEvent& event : bundle.events) {
      json::Value item = json::Value::Object();
      item.Set("t_ns", event.time_ns);
      item.Set("kind", EventKindName(event.kind));
      item.Set("target", event.target);
      if (!event.detail.empty()) {
        item.Set("detail", event.detail);
      }
      item.Set("value", event.value);
      events.Push(std::move(item));
    }
    entry.Set("events", std::move(events));
    if (!bundle.postcards.empty()) {
      json::Value postcards = json::Value::Array();
      for (const std::string& line : bundle.postcards) {
        postcards.Push(line);
      }
      entry.Set("postcards", std::move(postcards));
    }
    bundles.Push(std::move(entry));
  }
  json::Value root = json::Value::Object();
  root.Set("depth", static_cast<uint64_t>(depth_));
  root.Set("recorded", recorded_);
  root.Set("evicted", evicted_);
  root.Set("postmortems", std::move(bundles));
  return root;
}

bool FlightRecorder::WriteJsonFile(const std::string& path) const {
  return ToJson().WriteFile(path);
}

void FlightRecorder::ExportMetrics(MetricsRegistry* registry) const {
  registry->GetCounter("innet_flight_events_recorded_total")->SetTo(recorded_);
  registry->GetCounter("innet_flight_postmortems_total")
      ->SetTo(evicted_ + static_cast<uint64_t>(postmortems_.size()));
}

}  // namespace innet::obs
