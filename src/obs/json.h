// A minimal JSON value: ordered objects, deterministic formatting, and a
// strict parser — just enough for metric dumps, trace files, and bench
// snapshots to be written and validated without an external dependency.
//
// Determinism contract: Write() emits exactly the same bytes for the same
// value (objects keep insertion order, numbers use a fixed format), which is
// what lets two runs of the same seeded experiment diff byte-for-byte.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace innet::obs::json {

// Escapes `text` for inclusion inside a JSON string literal (no quotes).
std::string Escape(const std::string& text);

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  Value(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT(runtime/explicit)
  Value(double d) : type_(Type::kNumber), num_(d) {}
  Value(int i) : type_(Type::kNumber), num_(i), int_(i), is_int_(true) {}
  Value(int64_t i) : type_(Type::kNumber), num_(static_cast<double>(i)), int_(i), is_int_(true) {}
  Value(uint64_t u)
      : type_(Type::kNumber),
        num_(static_cast<double>(u)),
        int_(static_cast<int64_t>(u)),
        is_int_(true) {}
  Value(const char* s) : type_(Type::kString), str_(s) {}
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static Value Object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }
  static Value Array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  double number() const { return num_; }
  int64_t int_number() const { return is_int_ ? int_ : static_cast<int64_t>(num_); }
  bool bool_value() const { return bool_; }
  const std::string& string_value() const { return str_; }

  // Object: appends (key, value) preserving insertion order. Returns *this
  // for chaining.
  Value& Set(const std::string& key, Value value);
  // Array: appends. Returns *this for chaining.
  Value& Push(Value value);

  size_t size() const { return type_ == Type::kObject ? members_.size() : items_.size(); }
  const Value& at(size_t i) const { return items_[i]; }
  const std::vector<std::pair<std::string, Value>>& members() const { return members_; }
  // Object lookup; nullptr when absent (or not an object).
  const Value* Find(const std::string& key) const;

  // `indent` < 0: compact single line. Otherwise pretty-printed with that
  // many spaces per level.
  void Write(std::ostream& out, int indent = -1) const;
  std::string ToString(int indent = -1) const;
  // Writes the value plus a trailing newline; false on I/O failure.
  bool WriteFile(const std::string& path, int indent = 2) const;

  // Strict parser (UTF-8 passthrough, \uXXXX accepted, no trailing garbage).
  // Returns false and fills *error with position + message on failure.
  static bool Parse(const std::string& text, Value* out, std::string* error);

 private:
  void WriteIndented(std::ostream& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0;
  int64_t int_ = 0;
  bool is_int_ = false;
  std::string str_;
  std::vector<Value> items_;                             // kArray
  std::vector<std::pair<std::string, Value>> members_;   // kObject
};

}  // namespace innet::obs::json

#endif  // SRC_OBS_JSON_H_
