// The runtime packet representation used by the Click engine and the platform
// simulator.
//
// A Packet owns an inline wire buffer (Ethernet + IPv4 + L4 + payload, network
// byte order) plus a set of *annotations* — parsed header fields in host byte
// order that elements read and write on the fast path, exactly like Click's
// packet annotations. Mutators keep the wire bytes and the annotations in
// sync, so checksum-verifying elements and byte-level DPI both see consistent
// data.
#ifndef SRC_NETCORE_PACKET_H_
#define SRC_NETCORE_PACKET_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/netcore/headers.h"
#include "src/netcore/ip.h"

namespace innet {

// Maximum Ethernet frame we carry (no jumbo frames, as in the paper's NICs).
inline constexpr size_t kMaxFrameLen = 1514;
inline constexpr size_t kEthHeaderLen = sizeof(EthernetHeader);
inline constexpr size_t kIpHeaderLen = sizeof(Ipv4Header);

// One in-band telemetry (INT) hop record: appended by the profiler as a
// sampled packet enters each element, completed with the egress port by the
// forwarding element. Names are owned strings — a postcard must stay valid
// after the graph that stamped it is torn down (migration, crash bundles).
struct IntHop {
  std::string element;
  uint16_t ingress_port = 0;
  uint16_t egress_port = 0;
  uint32_t queue_depth = 0;  // occupancy of queue-like elements at traversal
  uint64_t hop_ns = 0;       // simulated processing cost of this hop
  bool endpoint = false;     // source/sink adapter, outside the tenant chain
};

// Bound on the in-band stack, like INT's hop-count budget on real switches:
// beyond this, hops are counted but not recorded, and the postcard is marked
// truncated (attestation skips it rather than flagging a false violation).
inline constexpr size_t kMaxIntHops = 24;

class Packet {
 public:
  Packet() = default;

  // Copying moves only the occupied bytes, like a NIC DMA of the actual
  // frame — so per-packet costs scale with packet size, as on real hardware.
  Packet(const Packet& other) { CopyFrom(other); }
  Packet& operator=(const Packet& other) {
    if (this != &other) {
      CopyFrom(other);
    }
    return *this;
  }
  Packet(Packet&& other) noexcept { CopyFrom(other); }
  Packet& operator=(Packet&& other) noexcept {
    if (this != &other) {
      CopyFrom(other);
    }
    return *this;
  }

  // --- Builders -------------------------------------------------------------
  // All builders produce a full Ethernet+IPv4 frame with valid checksums.
  static Packet MakeUdp(Ipv4Address src, Ipv4Address dst, uint16_t src_port, uint16_t dst_port,
                        size_t payload_len = 0);
  static Packet MakeTcp(Ipv4Address src, Ipv4Address dst, uint16_t src_port, uint16_t dst_port,
                        uint8_t tcp_flags, size_t payload_len = 0);
  static Packet MakeIcmpEcho(Ipv4Address src, Ipv4Address dst, uint16_t id, uint16_t seq,
                             bool is_reply = false);

  // Reconstructs a packet from raw frame bytes (Ethernet + IPv4 + L4).
  // Returns a packet with length() == 0 when the bytes do not parse.
  static Packet FromWire(const uint8_t* data, size_t len);

  // --- Annotation accessors (host byte order) --------------------------------
  Ipv4Address ip_src() const { return ip_src_; }
  Ipv4Address ip_dst() const { return ip_dst_; }
  uint8_t protocol() const { return protocol_; }
  uint8_t ttl() const { return ttl_; }
  uint16_t src_port() const { return src_port_; }
  uint16_t dst_port() const { return dst_port_; }
  uint8_t tcp_flags() const { return tcp_flags_; }
  size_t length() const { return length_; }
  size_t payload_length() const { return length_ - payload_offset_; }

  // --- Mutators: update annotations AND wire bytes ---------------------------
  void set_ip_src(Ipv4Address addr);
  void set_ip_dst(Ipv4Address addr);
  void set_src_port(uint16_t port);
  void set_dst_port(uint16_t port);
  void set_ttl(uint8_t ttl);
  // Decrements TTL; returns false if the TTL was already 0 or 1 (packet should
  // be dropped, as a router would).
  bool DecrementTtl();

  // Recomputes the IPv4 header checksum and the L4 checksum.
  void RefreshChecksums();
  // Verifies the IPv4 header checksum against the wire bytes.
  bool VerifyIpChecksum() const;

  // --- Raw access -------------------------------------------------------------
  const uint8_t* data() const { return buf_.data(); }
  uint8_t* mutable_data() { return buf_.data(); }
  const uint8_t* payload() const { return buf_.data() + payload_offset_; }
  uint8_t* mutable_payload() { return buf_.data() + payload_offset_; }
  size_t payload_offset() const { return payload_offset_; }

  // Writes `text` into the payload (truncating to the payload capacity) and
  // refreshes checksums. Useful for DPI tests.
  void SetPayload(std::string_view text);
  std::string_view PayloadView() const {
    return {reinterpret_cast<const char*>(payload()), payload_length()};
  }

  // Re-parses annotations from the wire bytes (after external byte edits).
  // Returns false if the frame is not a well-formed IPv4 packet.
  bool ReparseFromWire();

  // --- Soft metadata (not on the wire) ----------------------------------------
  // Firewall tag from the paper's Figure 2 model; set by stateful firewalls on
  // authorized traffic.
  bool firewall_tag() const { return firewall_tag_; }
  void set_firewall_tag(bool tag) { firewall_tag_ = tag; }

  // Ingress timestamp in simulated nanoseconds, stamped by sources/switches.
  uint64_t timestamp_ns() const { return timestamp_ns_; }
  void set_timestamp_ns(uint64_t ns) { timestamp_ns_ = ns; }

  // Click's paint annotation (Paint / PaintSwitch); box-local metadata.
  uint8_t paint() const { return paint_; }
  void set_paint(uint8_t paint) { paint_ = paint; }

  // --- In-band telemetry (soft metadata, survives queueing and copies) -------
  // A sampled packet carries its own hop stack from ingress to egress/drop;
  // the profiler activates it, elements append to it, and the IntCollector
  // (src/obs/int_telemetry.h) folds the completed postcard. Packet-carried
  // state is the point of INT: unlike the profiler's walk-scoped chain, it
  // survives a TimedUnqueue parking the packet across sim-clock events.
  bool int_active() const { return (int_flags_ & kIntActive) != 0; }
  void ActivateInt(uint64_t now_ns) {
    int_flags_ = kIntActive;
    int_ingress_ns_ = now_ns;
    int_truncated_ = 0;
    int_hops_.clear();
  }
  void DeactivateInt() {
    int_flags_ = 0;
    int_hops_.clear();
    int_truncated_ = 0;
  }
  // Parked: held by a timed element; the walk that injected it must not emit
  // a drop postcard when the walk unwinds without reaching a sink.
  bool int_parked() const { return (int_flags_ & kIntParked) != 0; }
  void set_int_parked(bool parked) {
    if (parked) {
      int_flags_ |= kIntParked;
    } else {
      int_flags_ &= static_cast<uint8_t>(~kIntParked);
    }
  }
  // Done: a postcard was already folded (egress); suppresses the drop path.
  bool int_done() const { return (int_flags_ & kIntDone) != 0; }
  void MarkIntDone() { int_flags_ |= kIntDone; }

  uint64_t int_ingress_ns() const { return int_ingress_ns_; }
  uint32_t int_truncated() const { return int_truncated_; }
  const std::vector<IntHop>& int_hops() const { return int_hops_; }
  void AppendIntHop(IntHop hop) {
    if (int_hops_.size() >= kMaxIntHops) {
      ++int_truncated_;
      return;
    }
    int_hops_.push_back(std::move(hop));
  }
  // Stamped by the forwarding element just before handing the packet on, so
  // the record for the hop being left carries the chosen output port.
  void SetLastIntEgressPort(uint16_t port) {
    if (!int_hops_.empty()) {
      int_hops_.back().egress_port = port;
    }
  }

  // A hashable 5-tuple key for flow tables.
  uint64_t FlowKey() const;
  std::string Describe() const;

 private:
  void BuildCommon(Ipv4Address src, Ipv4Address dst, uint8_t proto, size_t l4_len);

  void CopyFrom(const Packet& other) {
    std::memcpy(buf_.data(), other.buf_.data(), other.length_);
    length_ = other.length_;
    l4_offset_ = other.l4_offset_;
    payload_offset_ = other.payload_offset_;
    ip_src_ = other.ip_src_;
    ip_dst_ = other.ip_dst_;
    protocol_ = other.protocol_;
    ttl_ = other.ttl_;
    src_port_ = other.src_port_;
    dst_port_ = other.dst_port_;
    tcp_flags_ = other.tcp_flags_;
    firewall_tag_ = other.firewall_tag_;
    paint_ = other.paint_;
    timestamp_ns_ = other.timestamp_ns_;
    int_flags_ = other.int_flags_;
    int_ingress_ns_ = other.int_ingress_ns_;
    int_truncated_ = other.int_truncated_;
    int_hops_ = other.int_hops_;
  }

  alignas(8) std::array<uint8_t, kMaxFrameLen> buf_ = {};
  size_t length_ = 0;
  size_t l4_offset_ = 0;
  size_t payload_offset_ = 0;

  Ipv4Address ip_src_;
  Ipv4Address ip_dst_;
  uint8_t protocol_ = 0;
  uint8_t ttl_ = 64;
  uint16_t src_port_ = 0;
  uint16_t dst_port_ = 0;
  uint8_t tcp_flags_ = 0;
  bool firewall_tag_ = false;
  uint8_t paint_ = 0;
  uint64_t timestamp_ns_ = 0;

  static constexpr uint8_t kIntActive = 1;
  static constexpr uint8_t kIntParked = 2;
  static constexpr uint8_t kIntDone = 4;
  uint8_t int_flags_ = 0;
  uint64_t int_ingress_ns_ = 0;
  uint32_t int_truncated_ = 0;
  std::vector<IntHop> int_hops_;
};

}  // namespace innet

#endif  // SRC_NETCORE_PACKET_H_
