#include "src/netcore/ip.h"

#include <cstdio>
#include <cstdlib>

namespace innet {
namespace {

// Parses a decimal integer in [0, max] from the front of `text`, advancing it.
std::optional<uint32_t> EatNumber(std::string_view& text, uint32_t max) {
  if (text.empty() || text[0] < '0' || text[0] > '9') {
    return std::nullopt;
  }
  uint64_t value = 0;
  size_t i = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    value = value * 10 + static_cast<uint64_t>(text[i] - '0');
    if (value > max) {
      return std::nullopt;
    }
    ++i;
  }
  text.remove_prefix(i);
  return static_cast<uint32_t>(value);
}

}  // namespace

std::optional<Ipv4Address> Ipv4Address::Parse(std::string_view text) {
  uint32_t addr = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (octet > 0) {
      if (text.empty() || text[0] != '.') {
        return std::nullopt;
      }
      text.remove_prefix(1);
    }
    auto part = EatNumber(text, 255);
    if (!part) {
      return std::nullopt;
    }
    addr = (addr << 8) | *part;
  }
  if (!text.empty()) {
    return std::nullopt;
  }
  return Ipv4Address(addr);
}

Ipv4Address Ipv4Address::MustParse(std::string_view text) {
  auto addr = Parse(text);
  if (!addr) {
    std::fprintf(stderr, "Ipv4Address::MustParse: bad address '%.*s'\n",
                 static_cast<int>(text.size()), text.data());
    std::abort();
  }
  return *addr;
}

std::string Ipv4Address::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr_ >> 24) & 0xFF, (addr_ >> 16) & 0xFF,
                (addr_ >> 8) & 0xFF, addr_ & 0xFF);
  return buf;
}

Ipv4Prefix::Ipv4Prefix(Ipv4Address base, int length)
    : length_(length < 0 ? 0 : (length > 32 ? 32 : length)) {
  base_ = Ipv4Address(base.value() & mask());
}

std::optional<Ipv4Prefix> Ipv4Prefix::Parse(std::string_view text) {
  size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    auto addr = Ipv4Address::Parse(text);
    if (!addr) {
      return std::nullopt;
    }
    return Ipv4Prefix(*addr, 32);
  }
  auto addr = Ipv4Address::Parse(text.substr(0, slash));
  if (!addr) {
    return std::nullopt;
  }
  std::string_view len_text = text.substr(slash + 1);
  auto len = EatNumber(len_text, 32);
  if (!len || !len_text.empty()) {
    return std::nullopt;
  }
  return Ipv4Prefix(*addr, static_cast<int>(*len));
}

Ipv4Prefix Ipv4Prefix::MustParse(std::string_view text) {
  auto prefix = Parse(text);
  if (!prefix) {
    std::fprintf(stderr, "Ipv4Prefix::MustParse: bad prefix '%.*s'\n",
                 static_cast<int>(text.size()), text.data());
    std::abort();
  }
  return *prefix;
}

std::string Ipv4Prefix::ToString() const {
  return base_.ToString() + "/" + std::to_string(length_);
}

}  // namespace innet
