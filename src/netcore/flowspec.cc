#include "src/netcore/flowspec.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace innet {
namespace {

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) {
    tokens.push_back(current);
  }
  return tokens;
}

std::optional<uint8_t> ProtoByName(const std::string& name) {
  if (name == "tcp") {
    return kProtoTcp;
  }
  if (name == "udp") {
    return kProtoUdp;
  }
  if (name == "icmp") {
    return kProtoIcmp;
  }
  if (name == "sctp") {
    return kProtoSctp;
  }
  return std::nullopt;
}

std::optional<uint32_t> ParseUint(const std::string& s, uint32_t max) {
  if (s.empty()) {
    return std::nullopt;
  }
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    v = v * 10 + static_cast<uint64_t>(c - '0');
    if (v > max) {
      return std::nullopt;
    }
  }
  return static_cast<uint32_t>(v);
}

}  // namespace

std::optional<FlowSpec> FlowSpec::Parse(std::string_view text) {
  FlowSpec spec;
  std::vector<std::string> tokens = Tokenize(text);
  size_t i = 0;
  auto has = [&](size_t n) { return i + n < tokens.size(); };

  while (i < tokens.size()) {
    const std::string& tok = tokens[i];
    if (tok == "and" || tok == "&&") {
      ++i;
      continue;
    }
    if (tok == "ip") {
      ++i;
      continue;  // "ip" matches everything we model.
    }
    if (auto proto = ProtoByName(tok)) {
      if (spec.proto_ && *spec.proto_ != *proto) {
        return std::nullopt;  // contradictory protocols
      }
      spec.proto_ = proto;
      ++i;
      continue;
    }

    Direction dir = Direction::kEither;
    if (tok == "src" || tok == "dst") {
      dir = tok == "src" ? Direction::kSrc : Direction::kDst;
      ++i;
      if (i >= tokens.size()) {
        return std::nullopt;
      }
    }
    const std::string& kind = tokens[i];
    if (kind == "port") {
      if (!has(0) || i + 1 >= tokens.size()) {
        return std::nullopt;
      }
      const std::string& val = tokens[i + 1];
      size_t dash = val.find('-');
      PortPredicate pred;
      pred.dir = dir;
      if (dash == std::string::npos) {
        auto port = ParseUint(val, 65535);
        if (!port) {
          return std::nullopt;
        }
        pred.lo = pred.hi = static_cast<uint16_t>(*port);
      } else {
        auto lo = ParseUint(val.substr(0, dash), 65535);
        auto hi = ParseUint(val.substr(dash + 1), 65535);
        if (!lo || !hi || *lo > *hi) {
          return std::nullopt;
        }
        pred.lo = static_cast<uint16_t>(*lo);
        pred.hi = static_cast<uint16_t>(*hi);
      }
      spec.port_preds_.push_back(pred);
      i += 2;
      continue;
    }
    if (kind == "ttl") {
      if (i + 1 >= tokens.size()) {
        return std::nullopt;
      }
      auto ttl = ParseUint(tokens[i + 1], 255);
      if (!ttl) {
        return std::nullopt;
      }
      spec.ttl_ = static_cast<uint8_t>(*ttl);
      i += 2;
      continue;
    }
    // "host <addr>", "net <prefix>", or a bare address/prefix.
    std::string addr_text;
    if (kind == "host" || kind == "net") {
      if (i + 1 >= tokens.size()) {
        return std::nullopt;
      }
      addr_text = tokens[i + 1];
      i += 2;
    } else {
      addr_text = kind;
      ++i;
    }
    auto prefix = Ipv4Prefix::Parse(addr_text);
    if (!prefix) {
      return std::nullopt;
    }
    spec.addr_preds_.push_back({dir, *prefix});
  }
  return spec;
}

FlowSpec FlowSpec::MustParse(std::string_view text) {
  auto spec = Parse(text);
  if (!spec) {
    std::fprintf(stderr, "FlowSpec::MustParse: bad expression '%.*s'\n",
                 static_cast<int>(text.size()), text.data());
    std::abort();
  }
  return *spec;
}

bool FlowSpec::Matches(const Packet& packet) const {
  if (proto_ && packet.protocol() != *proto_) {
    return false;
  }
  if (ttl_ && packet.ttl() != *ttl_) {
    return false;
  }
  for (const AddrPredicate& pred : addr_preds_) {
    bool src_ok = pred.prefix.Contains(packet.ip_src());
    bool dst_ok = pred.prefix.Contains(packet.ip_dst());
    bool ok = pred.dir == Direction::kSrc   ? src_ok
              : pred.dir == Direction::kDst ? dst_ok
                                            : (src_ok || dst_ok);
    if (!ok) {
      return false;
    }
  }
  for (const PortPredicate& pred : port_preds_) {
    bool src_ok = packet.src_port() >= pred.lo && packet.src_port() <= pred.hi;
    bool dst_ok = packet.dst_port() >= pred.lo && packet.dst_port() <= pred.hi;
    bool ok = pred.dir == Direction::kSrc   ? src_ok
              : pred.dir == Direction::kDst ? dst_ok
                                            : (src_ok || dst_ok);
    if (!ok) {
      return false;
    }
  }
  return true;
}

std::string FlowSpec::ToString() const {
  std::ostringstream out;
  bool first = true;
  auto sep = [&]() {
    if (!first) {
      out << " ";
    }
    first = false;
  };
  if (proto_) {
    sep();
    out << (*proto_ == kProtoTcp    ? "tcp"
            : *proto_ == kProtoUdp  ? "udp"
            : *proto_ == kProtoIcmp ? "icmp"
            : *proto_ == kProtoSctp ? "sctp"
                                    : "ip");
  }
  for (const AddrPredicate& pred : addr_preds_) {
    sep();
    if (pred.dir == Direction::kSrc) {
      out << "src ";
    } else if (pred.dir == Direction::kDst) {
      out << "dst ";
    }
    if (pred.prefix.length() == 32) {
      out << "host " << pred.prefix.base().ToString();
    } else {
      out << "net " << pred.prefix.ToString();
    }
  }
  for (const PortPredicate& pred : port_preds_) {
    sep();
    if (pred.dir == Direction::kSrc) {
      out << "src ";
    } else if (pred.dir == Direction::kDst) {
      out << "dst ";
    }
    out << "port " << pred.lo;
    if (pred.hi != pred.lo) {
      out << "-" << pred.hi;
    }
  }
  if (ttl_) {
    sep();
    out << "ttl " << static_cast<int>(*ttl_);
  }
  return out.str();
}

}  // namespace innet
