#include "src/netcore/fields.h"

namespace innet {

std::string_view HeaderFieldName(HeaderField field) {
  switch (field) {
    case HeaderField::kIpSrc:
      return "src host";
    case HeaderField::kIpDst:
      return "dst host";
    case HeaderField::kProto:
      return "proto";
    case HeaderField::kTtl:
      return "ttl";
    case HeaderField::kSrcPort:
      return "src port";
    case HeaderField::kDstPort:
      return "dst port";
    case HeaderField::kPayload:
      return "payload";
    case HeaderField::kFirewallTag:
      return "firewall_tag";
    case HeaderField::kPaint:
      return "paint";
  }
  return "?";
}

std::optional<HeaderField> ParseHeaderField(std::string_view text) {
  if (text == "src host" || text == "src" || text == "ip_src") {
    return HeaderField::kIpSrc;
  }
  if (text == "dst host" || text == "dst" || text == "ip_dst") {
    return HeaderField::kIpDst;
  }
  if (text == "proto" || text == "protocol") {
    return HeaderField::kProto;
  }
  if (text == "ttl") {
    return HeaderField::kTtl;
  }
  if (text == "src port") {
    return HeaderField::kSrcPort;
  }
  if (text == "dst port" || text == "port") {
    return HeaderField::kDstPort;
  }
  if (text == "payload" || text == "data") {
    return HeaderField::kPayload;
  }
  if (text == "firewall_tag") {
    return HeaderField::kFirewallTag;
  }
  if (text == "paint") {
    return HeaderField::kPaint;
  }
  return std::nullopt;
}

}  // namespace innet
