// IPv4 addressing primitives shared by every In-Net module.
//
// Addresses are held in host byte order; conversion to network order happens
// only at the wire boundary (src/netcore/headers.h).
#ifndef SRC_NETCORE_IP_H_
#define SRC_NETCORE_IP_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace innet {

// An IPv4 address. Value type, totally ordered, hashable.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(uint32_t host_order) : addr_(host_order) {}
  constexpr Ipv4Address(uint8_t a, uint8_t b, uint8_t c, uint8_t d)
      : addr_((uint32_t{a} << 24) | (uint32_t{b} << 16) | (uint32_t{c} << 8) | uint32_t{d}) {}

  // Parses dotted-quad notation ("10.0.0.1"). Returns nullopt on malformed input.
  static std::optional<Ipv4Address> Parse(std::string_view text);

  // Parses or aborts; for literals in tests and benchmark setup code.
  static Ipv4Address MustParse(std::string_view text);

  constexpr uint32_t value() const { return addr_; }
  std::string ToString() const;

  constexpr bool IsUnspecified() const { return addr_ == 0; }
  constexpr bool IsMulticast() const { return (addr_ >> 28) == 0xE; }
  constexpr bool IsLoopback() const { return (addr_ >> 24) == 127; }
  // RFC 1918 private space.
  constexpr bool IsPrivate() const {
    return (addr_ >> 24) == 10 || (addr_ >> 20) == ((172u << 4) | 1) ||
           (addr_ >> 16) == ((192u << 8) | 168);
  }

  friend constexpr bool operator==(Ipv4Address a, Ipv4Address b) { return a.addr_ == b.addr_; }
  friend constexpr bool operator!=(Ipv4Address a, Ipv4Address b) { return a.addr_ != b.addr_; }
  friend constexpr bool operator<(Ipv4Address a, Ipv4Address b) { return a.addr_ < b.addr_; }
  friend constexpr bool operator<=(Ipv4Address a, Ipv4Address b) { return a.addr_ <= b.addr_; }
  friend constexpr bool operator>(Ipv4Address a, Ipv4Address b) { return a.addr_ > b.addr_; }
  friend constexpr bool operator>=(Ipv4Address a, Ipv4Address b) { return a.addr_ >= b.addr_; }

 private:
  uint32_t addr_ = 0;
};

// An IPv4 prefix (address + mask length), e.g. "10.1.0.0/16".
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  // `length` is clamped to [0, 32]; host bits of `base` are zeroed.
  Ipv4Prefix(Ipv4Address base, int length);

  // Parses "a.b.c.d/len"; a bare address parses as a /32.
  static std::optional<Ipv4Prefix> Parse(std::string_view text);
  static Ipv4Prefix MustParse(std::string_view text);

  constexpr Ipv4Address base() const { return base_; }
  constexpr int length() const { return length_; }
  constexpr uint32_t mask() const {
    return length_ == 0 ? 0 : ~uint32_t{0} << (32 - length_);
  }
  // First and last address covered by the prefix.
  constexpr Ipv4Address first() const { return base_; }
  constexpr Ipv4Address last() const { return Ipv4Address(base_.value() | ~mask()); }

  constexpr bool Contains(Ipv4Address addr) const {
    return (addr.value() & mask()) == base_.value();
  }
  constexpr bool Contains(const Ipv4Prefix& other) const {
    return other.length_ >= length_ && Contains(other.base_);
  }
  // True when the two prefixes share at least one address.
  constexpr bool Overlaps(const Ipv4Prefix& other) const {
    return Contains(other.base_) || other.Contains(base_);
  }

  std::string ToString() const;

  friend constexpr bool operator==(const Ipv4Prefix& a, const Ipv4Prefix& b) {
    return a.base_ == b.base_ && a.length_ == b.length_;
  }

 private:
  Ipv4Address base_;
  int length_ = 0;
};

// IP protocol numbers used throughout the code base.
inline constexpr uint8_t kProtoIcmp = 1;
inline constexpr uint8_t kProtoTcp = 6;
inline constexpr uint8_t kProtoUdp = 17;
inline constexpr uint8_t kProtoSctp = 132;

}  // namespace innet

template <>
struct std::hash<innet::Ipv4Address> {
  size_t operator()(innet::Ipv4Address a) const noexcept {
    return std::hash<uint32_t>{}(a.value());
  }
};

#endif  // SRC_NETCORE_IP_H_
