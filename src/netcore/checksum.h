// RFC 1071 Internet checksum helpers.
#ifndef SRC_NETCORE_CHECKSUM_H_
#define SRC_NETCORE_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace innet {

// Sums 16-bit big-endian words with end-around carry. `initial` lets callers
// chain pseudo-header sums. Returns the folded, *uncomplemented* sum.
uint32_t ChecksumPartial(const uint8_t* data, size_t len, uint32_t initial = 0);

// Final one's-complement checksum of a buffer (already in network byte order).
uint16_t Checksum(const uint8_t* data, size_t len, uint32_t initial = 0);

// Computes the IPv4 header checksum; the header's checksum field must be
// zeroed by the caller beforehand (or the result will be garbage).
uint16_t Ipv4HeaderChecksum(const uint8_t* header, size_t header_len);

// TCP/UDP checksum with IPv4 pseudo-header. Addresses in host byte order.
uint16_t TransportChecksum(uint32_t src_host_order, uint32_t dst_host_order, uint8_t protocol,
                           const uint8_t* segment, size_t segment_len);

}  // namespace innet

#endif  // SRC_NETCORE_CHECKSUM_H_
