// Wire-format header layouts (network byte order) and byte-order helpers.
#ifndef SRC_NETCORE_HEADERS_H_
#define SRC_NETCORE_HEADERS_H_

#include <cstdint>
#include <cstring>

namespace innet {

// Byte-order helpers. We avoid <arpa/inet.h> so the wire formats stay
// self-contained and constexpr-friendly.
constexpr uint16_t HostToNet16(uint16_t v) {
  return static_cast<uint16_t>((v << 8) | (v >> 8));
}
constexpr uint16_t NetToHost16(uint16_t v) { return HostToNet16(v); }
constexpr uint32_t HostToNet32(uint32_t v) {
  return ((v & 0x000000FFu) << 24) | ((v & 0x0000FF00u) << 8) | ((v & 0x00FF0000u) >> 8) |
         ((v & 0xFF000000u) >> 24);
}
constexpr uint32_t NetToHost32(uint32_t v) { return HostToNet32(v); }

#pragma pack(push, 1)

struct EthernetHeader {
  uint8_t dst[6];
  uint8_t src[6];
  uint16_t ether_type;  // network order; 0x0800 for IPv4
};
static_assert(sizeof(EthernetHeader) == 14);

inline constexpr uint16_t kEtherTypeIpv4 = 0x0800;

struct Ipv4Header {
  uint8_t version_ihl;    // 0x45 for a 20-byte header
  uint8_t tos;
  uint16_t total_length;  // network order
  uint16_t id;            // network order
  uint16_t frag_off;      // network order
  uint8_t ttl;
  uint8_t protocol;
  uint16_t checksum;      // network order
  uint32_t src;           // network order
  uint32_t dst;           // network order

  int HeaderLength() const { return (version_ihl & 0x0F) * 4; }
};
static_assert(sizeof(Ipv4Header) == 20);

struct UdpHeader {
  uint16_t src_port;  // network order
  uint16_t dst_port;  // network order
  uint16_t length;    // network order
  uint16_t checksum;  // network order
};
static_assert(sizeof(UdpHeader) == 8);

struct TcpHeader {
  uint16_t src_port;   // network order
  uint16_t dst_port;   // network order
  uint32_t seq;        // network order
  uint32_t ack;        // network order
  uint8_t data_off;    // upper 4 bits: header length in 32-bit words
  uint8_t flags;       // FIN=0x01 SYN=0x02 RST=0x04 PSH=0x08 ACK=0x10
  uint16_t window;     // network order
  uint16_t checksum;   // network order
  uint16_t urg_ptr;    // network order
};
static_assert(sizeof(TcpHeader) == 20);

inline constexpr uint8_t kTcpFin = 0x01;
inline constexpr uint8_t kTcpSyn = 0x02;
inline constexpr uint8_t kTcpRst = 0x04;
inline constexpr uint8_t kTcpPsh = 0x08;
inline constexpr uint8_t kTcpAck = 0x10;

struct IcmpHeader {
  uint8_t type;       // 8 = echo request, 0 = echo reply
  uint8_t code;
  uint16_t checksum;  // network order
  uint16_t id;        // network order
  uint16_t seq;       // network order
};
static_assert(sizeof(IcmpHeader) == 8);

#pragma pack(pop)

}  // namespace innet

#endif  // SRC_NETCORE_HEADERS_H_
