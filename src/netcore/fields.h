// Canonical header-field identifiers shared by the runtime engine, the
// symbolic execution engine, and the policy language.
#ifndef SRC_NETCORE_FIELDS_H_
#define SRC_NETCORE_FIELDS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace innet {

// The fields a symbolic packet tracks. This is the SymNet-style abstraction:
// a handful of header fields plus an opaque payload handle and the soft
// firewall tag from the paper's Figure 2 model.
enum class HeaderField : uint8_t {
  kIpSrc = 0,
  kIpDst,
  kProto,
  kTtl,
  kSrcPort,
  kDstPort,
  kPayload,
  kFirewallTag,
  // Click's paint annotation: per-packet metadata set by Paint and read by
  // PaintSwitch; never leaves the box.
  kPaint,
};

inline constexpr int kNumHeaderFields = 9;

// Human-readable name, matching the tcpdump-ish tokens the API uses.
std::string_view HeaderFieldName(HeaderField field);

// Parses names like "proto", "dst port", "src host", "payload".
std::optional<HeaderField> ParseHeaderField(std::string_view text);

}  // namespace innet

#endif  // SRC_NETCORE_FIELDS_H_
