#include "src/netcore/checksum.h"

namespace innet {

uint32_t ChecksumPartial(const uint8_t* data, size_t len, uint32_t initial) {
  uint64_t sum = initial;
  size_t i = 0;
  for (; i + 1 < len; i += 2) {
    sum += (static_cast<uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < len) {
    sum += static_cast<uint32_t>(data[i]) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<uint32_t>(sum);
}

uint16_t Checksum(const uint8_t* data, size_t len, uint32_t initial) {
  return static_cast<uint16_t>(~ChecksumPartial(data, len, initial) & 0xFFFF);
}

uint16_t Ipv4HeaderChecksum(const uint8_t* header, size_t header_len) {
  return Checksum(header, header_len);
}

uint16_t TransportChecksum(uint32_t src_host_order, uint32_t dst_host_order, uint8_t protocol,
                           const uint8_t* segment, size_t segment_len) {
  uint32_t pseudo = 0;
  pseudo += src_host_order >> 16;
  pseudo += src_host_order & 0xFFFF;
  pseudo += dst_host_order >> 16;
  pseudo += dst_host_order & 0xFFFF;
  pseudo += protocol;
  pseudo += static_cast<uint32_t>(segment_len);
  while (pseudo >> 16) {
    pseudo = (pseudo & 0xFFFF) + (pseudo >> 16);
  }
  return Checksum(segment, segment_len, pseudo);
}

}  // namespace innet
