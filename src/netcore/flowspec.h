// A tcpdump-subset flow specification, used both as the policy API's flow
// language (§4.2) and as IPFilter / IPClassifier patterns in the Click engine.
//
// Supported grammar (tokens are whitespace-separated; "and"/"&&" are
// optional separators):
//
//   proto      := "ip" | "tcp" | "udp" | "icmp" | "sctp"
//   addr-pred  := ["src"|"dst"] ["host"|"net"] <addr>[/len]
//   port-pred  := ["src"|"dst"] "port" <num>[-<num>]
//   ttl-pred   := "ttl" <num>
//   expr       := (proto | addr-pred | port-pred | ttl-pred)*
//
// An empty expression matches everything. Direction-less predicates match
// either direction ("host 10.0.0.1" = src or dst).
#ifndef SRC_NETCORE_FLOWSPEC_H_
#define SRC_NETCORE_FLOWSPEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/netcore/ip.h"
#include "src/netcore/packet.h"

namespace innet {

enum class Direction : uint8_t { kSrc, kDst, kEither };

struct AddrPredicate {
  Direction dir = Direction::kEither;
  Ipv4Prefix prefix;
};

struct PortPredicate {
  Direction dir = Direction::kEither;
  uint16_t lo = 0;
  uint16_t hi = 0;  // inclusive
};

class FlowSpec {
 public:
  FlowSpec() = default;

  // Parses the expression; returns nullopt on syntax errors.
  static std::optional<FlowSpec> Parse(std::string_view text);
  static FlowSpec MustParse(std::string_view text);

  bool Matches(const Packet& packet) const;

  // True when this spec has no predicates (matches everything).
  bool IsWildcard() const {
    return !proto_ && addr_preds_.empty() && port_preds_.empty() && !ttl_;
  }

  const std::optional<uint8_t>& proto() const { return proto_; }
  const std::vector<AddrPredicate>& addr_predicates() const { return addr_preds_; }
  const std::vector<PortPredicate>& port_predicates() const { return port_preds_; }
  const std::optional<uint8_t>& ttl() const { return ttl_; }

  std::string ToString() const;

 private:
  std::optional<uint8_t> proto_;
  std::vector<AddrPredicate> addr_preds_;
  std::vector<PortPredicate> port_preds_;
  std::optional<uint8_t> ttl_;
};

}  // namespace innet

#endif  // SRC_NETCORE_FLOWSPEC_H_
