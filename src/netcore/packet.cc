#include "src/netcore/packet.h"

#include <algorithm>

#include "src/netcore/checksum.h"

namespace innet {
namespace {

Ipv4Header* IpHeaderOf(uint8_t* buf) {
  return reinterpret_cast<Ipv4Header*>(buf + kEthHeaderLen);
}

}  // namespace

void Packet::BuildCommon(Ipv4Address src, Ipv4Address dst, uint8_t proto, size_t l4_len) {
  length_ = kEthHeaderLen + kIpHeaderLen + l4_len;
  l4_offset_ = kEthHeaderLen + kIpHeaderLen;

  auto* eth = reinterpret_cast<EthernetHeader*>(buf_.data());
  std::memset(eth, 0, sizeof(*eth));
  eth->ether_type = HostToNet16(kEtherTypeIpv4);

  auto* ip = IpHeaderOf(buf_.data());
  ip->version_ihl = 0x45;
  ip->tos = 0;
  ip->total_length = HostToNet16(static_cast<uint16_t>(kIpHeaderLen + l4_len));
  ip->id = 0;
  ip->frag_off = 0;
  ip->ttl = 64;
  ip->protocol = proto;
  ip->checksum = 0;
  ip->src = HostToNet32(src.value());
  ip->dst = HostToNet32(dst.value());

  ip_src_ = src;
  ip_dst_ = dst;
  protocol_ = proto;
  ttl_ = 64;
  tcp_flags_ = 0;
}

Packet Packet::MakeUdp(Ipv4Address src, Ipv4Address dst, uint16_t src_port, uint16_t dst_port,
                       size_t payload_len) {
  Packet p;
  payload_len = std::min(payload_len, kMaxFrameLen - kEthHeaderLen - kIpHeaderLen -
                                          sizeof(UdpHeader));
  p.BuildCommon(src, dst, kProtoUdp, sizeof(UdpHeader) + payload_len);
  auto* udp = reinterpret_cast<UdpHeader*>(p.buf_.data() + p.l4_offset_);
  udp->src_port = HostToNet16(src_port);
  udp->dst_port = HostToNet16(dst_port);
  udp->length = HostToNet16(static_cast<uint16_t>(sizeof(UdpHeader) + payload_len));
  udp->checksum = 0;
  p.payload_offset_ = p.l4_offset_ + sizeof(UdpHeader);
  p.src_port_ = src_port;
  p.dst_port_ = dst_port;
  p.RefreshChecksums();
  return p;
}

Packet Packet::MakeTcp(Ipv4Address src, Ipv4Address dst, uint16_t src_port, uint16_t dst_port,
                       uint8_t tcp_flags, size_t payload_len) {
  Packet p;
  payload_len = std::min(payload_len, kMaxFrameLen - kEthHeaderLen - kIpHeaderLen -
                                          sizeof(TcpHeader));
  p.BuildCommon(src, dst, kProtoTcp, sizeof(TcpHeader) + payload_len);
  auto* tcp = reinterpret_cast<TcpHeader*>(p.buf_.data() + p.l4_offset_);
  std::memset(tcp, 0, sizeof(*tcp));
  tcp->src_port = HostToNet16(src_port);
  tcp->dst_port = HostToNet16(dst_port);
  tcp->data_off = 5 << 4;
  tcp->flags = tcp_flags;
  tcp->window = HostToNet16(65535);
  p.payload_offset_ = p.l4_offset_ + sizeof(TcpHeader);
  p.src_port_ = src_port;
  p.dst_port_ = dst_port;
  p.tcp_flags_ = tcp_flags;
  p.RefreshChecksums();
  return p;
}

Packet Packet::MakeIcmpEcho(Ipv4Address src, Ipv4Address dst, uint16_t id, uint16_t seq,
                            bool is_reply) {
  Packet p;
  p.BuildCommon(src, dst, kProtoIcmp, sizeof(IcmpHeader) + 56);
  auto* icmp = reinterpret_cast<IcmpHeader*>(p.buf_.data() + p.l4_offset_);
  icmp->type = is_reply ? 0 : 8;
  icmp->code = 0;
  icmp->checksum = 0;
  icmp->id = HostToNet16(id);
  icmp->seq = HostToNet16(seq);
  p.payload_offset_ = p.l4_offset_ + sizeof(IcmpHeader);
  p.src_port_ = id;   // Convenient flow key: ICMP id/seq stand in for ports.
  p.dst_port_ = seq;
  p.RefreshChecksums();
  return p;
}

Packet Packet::FromWire(const uint8_t* data, size_t len) {
  Packet p;
  if (len < kEthHeaderLen + kIpHeaderLen || len > kMaxFrameLen) {
    return p;
  }
  std::memcpy(p.buf_.data(), data, len);
  p.length_ = len;
  if (!p.ReparseFromWire()) {
    p.length_ = 0;
  }
  return p;
}

void Packet::set_ip_src(Ipv4Address addr) {
  ip_src_ = addr;
  IpHeaderOf(buf_.data())->src = HostToNet32(addr.value());
}

void Packet::set_ip_dst(Ipv4Address addr) {
  ip_dst_ = addr;
  IpHeaderOf(buf_.data())->dst = HostToNet32(addr.value());
}

void Packet::set_src_port(uint16_t port) {
  src_port_ = port;
  if (protocol_ == kProtoUdp || protocol_ == kProtoTcp) {
    // UDP and TCP both start with src/dst port, so one write path suffices.
    auto* ports = reinterpret_cast<uint16_t*>(buf_.data() + l4_offset_);
    ports[0] = HostToNet16(port);
  }
}

void Packet::set_dst_port(uint16_t port) {
  dst_port_ = port;
  if (protocol_ == kProtoUdp || protocol_ == kProtoTcp) {
    auto* ports = reinterpret_cast<uint16_t*>(buf_.data() + l4_offset_);
    ports[1] = HostToNet16(port);
  }
}

void Packet::set_ttl(uint8_t ttl) {
  ttl_ = ttl;
  IpHeaderOf(buf_.data())->ttl = ttl;
}

bool Packet::DecrementTtl() {
  if (ttl_ <= 1) {
    return false;
  }
  set_ttl(static_cast<uint8_t>(ttl_ - 1));
  return true;
}

void Packet::RefreshChecksums() {
  auto* ip = IpHeaderOf(buf_.data());
  ip->checksum = 0;
  ip->checksum = HostToNet16(Ipv4HeaderChecksum(buf_.data() + kEthHeaderLen, kIpHeaderLen));

  const size_t l4_len = length_ - l4_offset_;
  if (protocol_ == kProtoUdp) {
    auto* udp = reinterpret_cast<UdpHeader*>(buf_.data() + l4_offset_);
    udp->checksum = 0;
    udp->checksum = HostToNet16(TransportChecksum(ip_src_.value(), ip_dst_.value(), kProtoUdp,
                                                  buf_.data() + l4_offset_, l4_len));
  } else if (protocol_ == kProtoTcp) {
    auto* tcp = reinterpret_cast<TcpHeader*>(buf_.data() + l4_offset_);
    tcp->checksum = 0;
    tcp->checksum = HostToNet16(TransportChecksum(ip_src_.value(), ip_dst_.value(), kProtoTcp,
                                                  buf_.data() + l4_offset_, l4_len));
  } else if (protocol_ == kProtoIcmp) {
    auto* icmp = reinterpret_cast<IcmpHeader*>(buf_.data() + l4_offset_);
    icmp->checksum = 0;
    icmp->checksum = HostToNet16(Checksum(buf_.data() + l4_offset_, l4_len));
  }
}

bool Packet::VerifyIpChecksum() const {
  return Checksum(buf_.data() + kEthHeaderLen, kIpHeaderLen) == 0;
}

void Packet::SetPayload(std::string_view text) {
  size_t n = std::min(text.size(), length_ - payload_offset_);
  std::memcpy(buf_.data() + payload_offset_, text.data(), n);
  RefreshChecksums();
}

bool Packet::ReparseFromWire() {
  if (length_ < kEthHeaderLen + kIpHeaderLen) {
    return false;
  }
  const auto* eth = reinterpret_cast<const EthernetHeader*>(buf_.data());
  if (NetToHost16(eth->ether_type) != kEtherTypeIpv4) {
    return false;
  }
  const auto* ip = IpHeaderOf(buf_.data());
  if ((ip->version_ihl >> 4) != 4) {
    return false;
  }
  ip_src_ = Ipv4Address(NetToHost32(ip->src));
  ip_dst_ = Ipv4Address(NetToHost32(ip->dst));
  protocol_ = ip->protocol;
  ttl_ = ip->ttl;
  l4_offset_ = kEthHeaderLen + static_cast<size_t>(ip->HeaderLength());
  src_port_ = 0;
  dst_port_ = 0;
  tcp_flags_ = 0;
  if (protocol_ == kProtoUdp && length_ >= l4_offset_ + sizeof(UdpHeader)) {
    const auto* udp = reinterpret_cast<const UdpHeader*>(buf_.data() + l4_offset_);
    src_port_ = NetToHost16(udp->src_port);
    dst_port_ = NetToHost16(udp->dst_port);
    payload_offset_ = l4_offset_ + sizeof(UdpHeader);
  } else if (protocol_ == kProtoTcp && length_ >= l4_offset_ + sizeof(TcpHeader)) {
    const auto* tcp = reinterpret_cast<const TcpHeader*>(buf_.data() + l4_offset_);
    src_port_ = NetToHost16(tcp->src_port);
    dst_port_ = NetToHost16(tcp->dst_port);
    tcp_flags_ = tcp->flags;
    payload_offset_ = l4_offset_ + sizeof(TcpHeader);
  } else {
    payload_offset_ = std::min(length_, l4_offset_ + sizeof(IcmpHeader));
  }
  return true;
}

uint64_t Packet::FlowKey() const {
  // FNV-1a over the 5-tuple; good enough for flow tables.
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(ip_src_.value());
  mix(ip_dst_.value());
  mix(protocol_);
  if (protocol_ == kProtoIcmp) {
    mix(src_port_);  // ICMP flows are keyed by echo id; seq varies per probe
  } else {
    mix((static_cast<uint64_t>(src_port_) << 16) | dst_port_);
  }
  // Murmur3-style finalizer: FNV's low bits avalanche poorly, and HashSwitch
  // takes the key modulo a small output count.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

std::string Packet::Describe() const {
  const char* proto = protocol_ == kProtoTcp   ? "tcp"
                      : protocol_ == kProtoUdp ? "udp"
                      : protocol_ == kProtoIcmp ? "icmp"
                                                : "ip";
  return std::string(proto) + " " + ip_src_.ToString() + ":" + std::to_string(src_port_) +
         " > " + ip_dst_.ToString() + ":" + std::to_string(dst_port_) + " len " +
         std::to_string(length_);
}

}  // namespace innet
