// Element class registry: maps Click class names to factories. The registry
// is what makes the restricted programming model checkable — the controller
// rejects configurations that reference classes without a registered
// symbolic model (src/symexec/click_models.h).
#ifndef SRC_CLICK_REGISTRY_H_
#define SRC_CLICK_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/click/element.h"

namespace innet::click {

using ElementFactory = std::function<std::unique_ptr<Element>()>;

class Registry {
 public:
  // The process-wide registry with all built-in elements pre-registered.
  static Registry& Global();

  void Register(const std::string& class_name, ElementFactory factory);
  bool Contains(const std::string& class_name) const;

  // Creates and configures an instance; returns nullptr and fills *error on
  // unknown class or configuration failure.
  std::unique_ptr<Element> Create(const std::string& class_name, const std::string& args,
                                  std::string* error) const;

  std::vector<std::string> KnownClasses() const;

 private:
  Registry();
  std::vector<std::pair<std::string, ElementFactory>> factories_;
};

}  // namespace innet::click

#endif  // SRC_CLICK_REGISTRY_H_
