#include "src/click/registry.h"

#include "src/click/elements.h"
#include "src/click/elements_switching.h"

namespace innet::click {
namespace {

template <typename T>
ElementFactory MakeFactory() {
  return [] { return std::make_unique<T>(); };
}

}  // namespace

Registry::Registry() {
  Register("FromNetfront", MakeFactory<FromNetfront>());
  Register("FromDevice", MakeFactory<FromNetfront>());  // alias
  Register("ToNetfront", MakeFactory<ToNetfront>());
  Register("ToDevice", MakeFactory<ToNetfront>());  // alias
  Register("Discard", MakeFactory<Discard>());
  Register("Counter", MakeFactory<Counter>());
  Register("Tee", MakeFactory<Tee>());
  Register("IPFilter", MakeFactory<IPFilter>());
  Register("IPClassifier", MakeFactory<IPClassifier>());
  Register("Classifier", MakeFactory<Classifier>());
  Register("IPRewriter", MakeFactory<IPRewriter>());
  Register("SetIPSrc", MakeFactory<SetIPSrc>());
  Register("SetIPDst", MakeFactory<SetIPDst>());
  Register("DecIPTTL", MakeFactory<DecIPTTL>());
  Register("CheckIPHeader", MakeFactory<CheckIPHeader>());
  Register("TimedUnqueue", MakeFactory<TimedUnqueue>());
  Register("Queue", MakeFactory<Queue>());
  Register("ChangeEnforcer", MakeFactory<ChangeEnforcer>());
  Register("FlowMeter", MakeFactory<FlowMeter>());
  Register("RateLimiter", MakeFactory<RateLimiter>());
  Register("ContentMatch", MakeFactory<ContentMatch>());
  Register("UDPTunnelEncap", MakeFactory<UDPTunnelEncap>());
  Register("UDPTunnelDecap", MakeFactory<UDPTunnelDecap>());
  Register("LinearIPLookup", MakeFactory<LinearIPLookup>());
  Register("NatRewriter", MakeFactory<NatRewriter>());
  Register("DnsGeoServer", MakeFactory<DnsGeoServer>());
  Register("ReverseProxy", MakeFactory<ReverseProxy>());
  Register("X86Vm", MakeFactory<X86Vm>());
  Register("TransparentProxy", MakeFactory<TransparentProxy>());
  Register("Paint", MakeFactory<Paint>());
  Register("PaintSwitch", MakeFactory<PaintSwitch>());
  Register("RoundRobinSwitch", MakeFactory<RoundRobinSwitch>());
  Register("HashSwitch", MakeFactory<HashSwitch>());
  Register("RandomSample", MakeFactory<RandomSample>());
  Register("SetTTL", MakeFactory<SetTTL>());
  Register("ICMPPingResponder", MakeFactory<ICMPPingResponder>());
  Register("ExplicitProxy", MakeFactory<ExplicitProxy>());
  Register("AddressDemux", MakeFactory<AddressDemux>());
}

Registry& Registry::Global() {
  static Registry registry;
  return registry;
}

void Registry::Register(const std::string& class_name, ElementFactory factory) {
  factories_.emplace_back(class_name, std::move(factory));
}

bool Registry::Contains(const std::string& class_name) const {
  for (const auto& [name, factory] : factories_) {
    if (name == class_name) {
      return true;
    }
  }
  return false;
}

std::unique_ptr<Element> Registry::Create(const std::string& class_name, const std::string& args,
                                          std::string* error) const {
  for (const auto& [name, factory] : factories_) {
    if (name == class_name) {
      std::unique_ptr<Element> element = factory();
      if (!element->Configure(args, error)) {
        return nullptr;
      }
      return element;
    }
  }
  *error = "unknown element class '" + class_name + "'";
  return nullptr;
}

std::vector<std::string> Registry::KnownClasses() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace innet::click
