#include "src/click/elements_switching.h"

#include <cctype>
#include <cstdlib>

namespace innet::click {
namespace {

bool ParseSmallInt(const std::string& text, int lo, int hi, int* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  long v = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || v < lo || v > hi) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

std::string Trimmed(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\n\r");
  if (b == std::string::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t\n\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

bool Paint::Configure(const std::string& args, std::string* error) {
  int color = 0;
  if (!ParseSmallInt(Trimmed(args), 0, 255, &color)) {
    *error = "Paint: COLOR must be 0..255, got '" + args + "'";
    return false;
  }
  color_ = static_cast<uint8_t>(color);
  return true;
}

void Paint::Push(int /*port*/, Packet& packet) {
  packet.set_paint(color_);
  ForwardTo(0, packet);
}

bool PaintSwitch::Configure(const std::string& args, std::string* error) {
  int n = 0;
  if (!ParseSmallInt(Trimmed(args), 1, 256, &n)) {
    *error = "PaintSwitch: needs an output count 1..256";
    return false;
  }
  SetPorts(1, n);
  return true;
}

void PaintSwitch::Push(int /*port*/, Packet& packet) {
  if (static_cast<int>(packet.paint()) >= n_outputs()) {
    CountDrop();
    return;
  }
  ForwardTo(packet.paint(), packet);
}

bool RoundRobinSwitch::Configure(const std::string& args, std::string* error) {
  int n = 0;
  if (!ParseSmallInt(Trimmed(args), 1, 256, &n)) {
    *error = "RoundRobinSwitch: needs an output count 1..256";
    return false;
  }
  SetPorts(1, n);
  return true;
}

void RoundRobinSwitch::Push(int /*port*/, Packet& packet) {
  int out = next_;
  next_ = next_ + 1 == n_outputs() ? 0 : next_ + 1;
  ForwardTo(out, packet);
}

bool HashSwitch::Configure(const std::string& args, std::string* error) {
  int n = 0;
  if (!ParseSmallInt(Trimmed(args), 1, 256, &n)) {
    *error = "HashSwitch: needs an output count 1..256";
    return false;
  }
  SetPorts(1, n);
  return true;
}

void HashSwitch::Push(int /*port*/, Packet& packet) {
  ForwardTo(static_cast<int>(packet.FlowKey() % static_cast<uint64_t>(n_outputs())), packet);
}

bool RandomSample::Configure(const std::string& args, std::string* error) {
  char* end = nullptr;
  double p = std::strtod(args.c_str(), &end);
  std::string rest = end != nullptr ? Trimmed(end) : "";
  if (args.empty() || !rest.empty() || p < 0.0 || p > 1.0) {
    *error = "RandomSample: probability must be in [0, 1], got '" + args + "'";
    return false;
  }
  probability_ = p;
  return true;
}

void RandomSample::Push(int /*port*/, Packet& packet) {
  // xorshift64*
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  double u = static_cast<double>((state_ * 0x2545F4914F6CDD1DULL) >> 11) * 0x1.0p-53;
  ForwardTo(u < probability_ ? 0 : 1, packet);
}

bool AddressDemux::Configure(const std::string& args, std::string* error) {
  std::string current;
  auto flush = [&]() -> bool {
    std::string addr_text = Trimmed(current);
    current.clear();
    if (addr_text.empty()) {
      return true;
    }
    auto addr = Ipv4Address::Parse(addr_text);
    if (!addr) {
      *error = "AddressDemux: bad address '" + addr_text + "'";
      return false;
    }
    table_[addr->value()] = static_cast<int>(addresses_.size());
    addresses_.push_back(*addr);
    return true;
  };
  for (char c : args) {
    if (c == ',') {
      if (!flush()) {
        return false;
      }
    } else {
      current.push_back(c);
    }
  }
  if (!flush()) {
    return false;
  }
  if (addresses_.empty()) {
    *error = "AddressDemux: needs at least one address";
    return false;
  }
  SetPorts(1, static_cast<int>(addresses_.size()));
  return true;
}

void AddressDemux::Push(int /*port*/, Packet& packet) {
  auto it = table_.find(packet.ip_dst().value());
  if (it == table_.end()) {
    CountDrop();
    return;
  }
  ForwardTo(it->second, packet);
}

bool SetTTL::Configure(const std::string& args, std::string* error) {
  int ttl = 0;
  if (!ParseSmallInt(Trimmed(args), 1, 255, &ttl)) {
    *error = "SetTTL: TTL must be 1..255";
    return false;
  }
  ttl_ = static_cast<uint8_t>(ttl);
  return true;
}

void SetTTL::Push(int /*port*/, Packet& packet) {
  packet.set_ttl(ttl_);
  packet.RefreshChecksums();
  ForwardTo(0, packet);
}

void ICMPPingResponder::Push(int /*port*/, Packet& packet) {
  if (packet.protocol() != kProtoIcmp) {
    CountDrop();
    return;
  }
  ++echo_count_;
  Packet reply = Packet::MakeIcmpEcho(packet.ip_dst(), packet.ip_src(), packet.src_port(),
                                      packet.dst_port(), /*is_reply=*/true);
  reply.set_timestamp_ns(packet.timestamp_ns());
  ForwardTo(0, reply);
}

bool ExplicitProxy::Configure(const std::string& args, std::string* error) {
  std::string text = Trimmed(args);
  const std::string prefix = "SELF";
  if (text.compare(0, prefix.size(), prefix) != 0) {
    *error = "ExplicitProxy: expected 'SELF a.b.c.d'";
    return false;
  }
  auto addr = Ipv4Address::Parse(Trimmed(text.substr(prefix.size())));
  if (!addr) {
    *error = "ExplicitProxy: bad SELF address";
    return false;
  }
  self_ = *addr;
  return true;
}

void ExplicitProxy::Push(int /*port*/, Packet& packet) {
  // Parse "CONNECT a.b.c.d:port" from the payload; that is the fetch target.
  std::string_view payload = packet.PayloadView();
  const std::string_view verb = "CONNECT ";
  if (payload.substr(0, verb.size()) != verb) {
    ++malformed_;
    CountDrop();
    return;
  }
  std::string_view rest = payload.substr(verb.size());
  size_t colon = rest.find(':');
  if (colon == std::string_view::npos) {
    ++malformed_;
    CountDrop();
    return;
  }
  auto target = Ipv4Address::Parse(rest.substr(0, colon));
  uint32_t port = 0;
  size_t i = colon + 1;
  while (i < rest.size() && std::isdigit(static_cast<unsigned char>(rest[i])) &&
         port <= 65535) {
    port = port * 10 + static_cast<uint32_t>(rest[i] - '0');
    ++i;
  }
  if (!target || port == 0 || port > 65535) {
    ++malformed_;
    CountDrop();
    return;
  }
  packet.set_ip_src(self_);
  packet.set_ip_dst(*target);
  packet.set_dst_port(static_cast<uint16_t>(port));
  packet.RefreshChecksums();
  ForwardTo(0, packet);
}

}  // namespace innet::click
