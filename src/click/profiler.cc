#include "src/click/profiler.h"

#include <string_view>
#include <utility>

#include "src/obs/int_telemetry.h"
#include "src/obs/trace.h"

namespace innet::click {
namespace {

// Source/sink adapters sit outside the tenant's processing chain: they are
// excluded from canonical chains on BOTH sides of attestation (the symexec
// digest filters the same class set — see src/symexec/path_digest.cc), so
// the two can never disagree about where a path starts. Discard belongs here
// too: symbolically it never forwards, so it never appears in a path history.
bool IsEndpointClass(std::string_view class_name) {
  return class_name == "FromNetfront" || class_name == "ToNetfront" ||
         class_name == "FromDevice" || class_name == "ToDevice" || class_name == "Discard";
}

// Parses a consolidated-tenant slot index from a "t<i>_" element-name
// prefix; -1 when the name is not prefixed.
int ParseTenantSlot(const std::string& element) {
  if (element.size() < 3 || element[0] != 't') {
    return -1;
  }
  size_t i = 1;
  int slot = 0;
  while (i < element.size() && element[i] >= '0' && element[i] <= '9') {
    slot = slot * 10 + (element[i] - '0');
    ++i;
  }
  if (i == 1 || i >= element.size() || element[i] != '_') {
    return -1;
  }
  return slot;
}

}  // namespace

void GraphProfiler::BeginWalk(uint64_t time_ns, Packet& packet) {
  ++walks_;
  egress_ = false;
  walk_sampled_ = false;
  // A TimedUnqueue release between walks can leave folded frames charged
  // from an empty chain; a new walk always starts from a clean chain.
  chain_.clear();
  frames_.clear();
  // INT activation is an independent sampling decision with the same
  // deterministic ordinal contract. A reused Packet object may carry stale
  // in-band state from an earlier walk, so the unsampled case clears it.
  if (config_.int_sample_n != 0 && obs::Int().enabled() &&
      walks_ % config_.int_sample_n == config_.seed % config_.int_sample_n) {
    packet.ActivateInt(time_ns);
    ++int_walks_;
  } else {
    packet.DeactivateInt();
  }
  if (config_.sample_n == 0 || !obs::Tracer().enabled()) {
    return;
  }
  if (walks_ % config_.sample_n != config_.seed % config_.sample_n) {
    return;
  }
  walk_sampled_ = true;
  ++sampled_walks_;
  cursor_ns_ = time_ns;
  last_element_.clear();
  walk_target_ = config_.walk_prefix.empty()
                     ? "packet:" + std::to_string(walks_)
                     : config_.walk_prefix + "/packet:" + std::to_string(walks_);
  walk_span_ = obs::Tracer().Record(time_ns, obs::EventKind::kPacketIngress, walk_target_, "",
                                    static_cast<int64_t>(packet.length()));
  obs::Tracer().PushSpan(walk_span_);
}

void GraphProfiler::EnterElement(const Element& element, Packet& packet, int in_port) {
  uint64_t cost = element.SimulatedCostNs(packet);
  if (packet.int_active() && !packet.int_done()) {
    IntHop hop;
    hop.element = element.name();
    hop.ingress_port = static_cast<uint16_t>(in_port < 0 ? 0 : in_port);
    hop.queue_depth = static_cast<uint32_t>(element.queue_depth());
    hop.hop_ns = cost;
    hop.endpoint = IsEndpointClass(element.class_name());
    packet.AppendIntHop(std::move(hop));
  }
  Frame frame;
  frame.chain_len = chain_.size();
  if (!chain_.empty()) {
    chain_.push_back(';');
  }
  chain_.append(element.name());
  folded_ns_[chain_] += cost;
  if (walk_sampled_) {
    frame.span = obs::Tracer().Record(cursor_ns_, obs::EventKind::kElementProcess, walk_target_,
                                      element.name(), static_cast<int64_t>(cost));
    obs::Tracer().PushSpan(frame.span);
    cursor_ns_ += cost;
    last_element_ = element.name();
  }
  frames_.push_back(std::move(frame));
}

void GraphProfiler::ExitElement() {
  if (frames_.empty()) {
    return;  // unbalanced exit (deferred release outside a walk): ignore
  }
  Frame frame = frames_.back();
  frames_.pop_back();
  chain_.resize(frame.chain_len);
  if (frame.span != 0) {
    obs::Tracer().PopSpan();
    obs::Tracer().Record(cursor_ns_, obs::EventKind::kSpanEnd, walk_target_, "", 0, frame.span);
  }
}

void GraphProfiler::NoteEgress(Packet& packet, uint64_t now_ns) {
  egress_ = true;
  if (packet.int_active() && !packet.int_done()) {
    EmitPostcard(packet, now_ns, /*egress=*/true);
  }
}

void GraphProfiler::EndWalk() {
  if (!walk_sampled_) {
    return;
  }
  // The egress/drop instant parents to the still-open ingress span, closing
  // the chain visually right where the last element slice ends.
  obs::Tracer().Record(cursor_ns_,
                       egress_ ? obs::EventKind::kPacketEgress : obs::EventKind::kPacketDrop,
                       walk_target_, egress_ ? "" : last_element_, 0);
  obs::Tracer().PopSpan();
  obs::Tracer().Record(cursor_ns_, obs::EventKind::kSpanEnd, walk_target_, "", 0, walk_span_);
  walk_sampled_ = false;
}

void GraphProfiler::FinishWalkInt(Packet& packet, uint64_t now_ns) {
  if (!packet.int_active() || packet.int_done() || packet.int_parked()) {
    return;
  }
  EmitPostcard(packet, now_ns, /*egress=*/false);
  packet.DeactivateInt();
}

void GraphProfiler::EmitPostcard(Packet& packet, uint64_t now_ns, bool egress) {
  obs::IntPostcard postcard;
  postcard.vm = config_.walk_prefix;
  postcard.egress = egress;
  postcard.truncated_hops = packet.int_truncated();

  uint64_t hop_sum = 0;
  int tenant_slot = -1;
  for (const IntHop& hop : packet.int_hops()) {
    hop_sum += hop.hop_ns;
    obs::IntPostcardHop out;
    out.element = hop.element;
    out.ingress_port = hop.ingress_port;
    out.egress_port = hop.egress_port;
    out.queue_depth = hop.queue_depth;
    out.hop_ns = hop.hop_ns;
    out.endpoint = hop.endpoint;
    postcard.hops.push_back(std::move(out));
    if (tenant_slot < 0 && !hop.endpoint) {
      tenant_slot = ParseTenantSlot(hop.element);
    }
  }
  // Path latency = time parked in timed elements (sim-clock delta) plus the
  // summed deterministic processing cost of every hop.
  postcard.path_ns = (now_ns >= packet.int_ingress_ns() ? now_ns - packet.int_ingress_ns() : 0) +
                     hop_sum;

  if (config_.int_tenant) {
    if (tenant_slot >= 0) {
      postcard.tenant = config_.int_tenant(tenant_slot);
    }
    if (postcard.tenant.empty()) {
      postcard.tenant = config_.int_tenant(-1);
    }
  }

  // Canonical chain: for a consolidated VM, the hops of the attributed
  // tenant with the "t<i>_" prefix stripped (matching the tenant's original
  // element names, which is what its digest was computed from); for a
  // dedicated VM, every non-endpoint hop.
  if (tenant_slot >= 0 && !postcard.tenant.empty()) {
    std::string prefix = "t" + std::to_string(tenant_slot) + "_";
    for (const IntHop& hop : packet.int_hops()) {
      if (!hop.endpoint && hop.element.compare(0, prefix.size(), prefix) == 0) {
        postcard.chain.push_back(hop.element.substr(prefix.size()));
      }
    }
  } else {
    for (const IntHop& hop : packet.int_hops()) {
      if (!hop.endpoint) {
        postcard.chain.push_back(hop.element);
      }
    }
  }

  packet.MarkIntDone();
  obs::Int().Fold(postcard);
}

void GraphProfiler::WriteFolded(std::ostream& out) const {
  for (const auto& [chain, weight] : folded_ns_) {
    if (!config_.walk_prefix.empty()) {
      out << config_.walk_prefix << ';';
    }
    out << chain << ' ' << weight << '\n';
  }
}

void GraphProfiler::ExportMetrics(obs::MetricsRegistry* registry,
                                  const obs::Labels& base_labels) const {
  registry->GetCounter("innet_dataplane_walks_total", base_labels)->SetTo(walks_);
  registry->GetCounter("innet_dataplane_sampled_walks_total", base_labels)->SetTo(sampled_walks_);
  if (config_.int_sample_n != 0) {
    registry->GetCounter("innet_dataplane_int_walks_total", base_labels)->SetTo(int_walks_);
  }
}

}  // namespace innet::click
