#include "src/click/profiler.h"

#include "src/obs/trace.h"

namespace innet::click {

void GraphProfiler::BeginWalk(uint64_t time_ns, const Packet& packet) {
  ++walks_;
  egress_ = false;
  walk_sampled_ = false;
  // A TimedUnqueue release between walks can leave folded frames charged
  // from an empty chain; a new walk always starts from a clean chain.
  chain_.clear();
  frames_.clear();
  if (config_.sample_n == 0 || !obs::Tracer().enabled()) {
    return;
  }
  if (walks_ % config_.sample_n != config_.seed % config_.sample_n) {
    return;
  }
  walk_sampled_ = true;
  ++sampled_walks_;
  cursor_ns_ = time_ns;
  last_element_.clear();
  walk_target_ = config_.walk_prefix.empty()
                     ? "packet:" + std::to_string(walks_)
                     : config_.walk_prefix + "/packet:" + std::to_string(walks_);
  walk_span_ = obs::Tracer().Record(time_ns, obs::EventKind::kPacketIngress, walk_target_, "",
                                    static_cast<int64_t>(packet.length()));
  obs::Tracer().PushSpan(walk_span_);
}

void GraphProfiler::EnterElement(const Element& element, const Packet& packet) {
  uint64_t cost = element.SimulatedCostNs(packet);
  Frame frame;
  frame.chain_len = chain_.size();
  if (!chain_.empty()) {
    chain_.push_back(';');
  }
  chain_.append(element.name());
  folded_ns_[chain_] += cost;
  if (walk_sampled_) {
    frame.span = obs::Tracer().Record(cursor_ns_, obs::EventKind::kElementProcess, walk_target_,
                                      element.name(), static_cast<int64_t>(cost));
    obs::Tracer().PushSpan(frame.span);
    cursor_ns_ += cost;
    last_element_ = element.name();
  }
  frames_.push_back(std::move(frame));
}

void GraphProfiler::ExitElement() {
  if (frames_.empty()) {
    return;  // unbalanced exit (deferred release outside a walk): ignore
  }
  Frame frame = frames_.back();
  frames_.pop_back();
  chain_.resize(frame.chain_len);
  if (frame.span != 0) {
    obs::Tracer().PopSpan();
    obs::Tracer().Record(cursor_ns_, obs::EventKind::kSpanEnd, walk_target_, "", 0, frame.span);
  }
}

void GraphProfiler::EndWalk() {
  if (!walk_sampled_) {
    return;
  }
  // The egress/drop instant parents to the still-open ingress span, closing
  // the chain visually right where the last element slice ends.
  obs::Tracer().Record(cursor_ns_,
                       egress_ ? obs::EventKind::kPacketEgress : obs::EventKind::kPacketDrop,
                       walk_target_, egress_ ? "" : last_element_, 0);
  obs::Tracer().PopSpan();
  obs::Tracer().Record(cursor_ns_, obs::EventKind::kSpanEnd, walk_target_, "", 0, walk_span_);
  walk_sampled_ = false;
}

void GraphProfiler::WriteFolded(std::ostream& out) const {
  for (const auto& [chain, weight] : folded_ns_) {
    if (!config_.walk_prefix.empty()) {
      out << config_.walk_prefix << ';';
    }
    out << chain << ' ' << weight << '\n';
  }
}

void GraphProfiler::ExportMetrics(obs::MetricsRegistry* registry,
                                  const obs::Labels& base_labels) const {
  registry->GetCounter("innet_dataplane_walks_total", base_labels)->SetTo(walks_);
  registry->GetCounter("innet_dataplane_sampled_walks_total", base_labels)->SetTo(sampled_walks_);
}

}  // namespace innet::click
