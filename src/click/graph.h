// Graph: an instantiated, wired, runnable Click configuration.
#ifndef SRC_CLICK_GRAPH_H_
#define SRC_CLICK_GRAPH_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/click/config_parser.h"
#include "src/click/element.h"
#include "src/click/profiler.h"
#include "src/click/registry.h"
#include "src/obs/metrics.h"

namespace innet::click {

class Graph {
 public:
  // Instantiates every declared element against `registry`, wires the
  // connections, and calls Initialize(). Returns nullptr and fills *error on
  // unknown classes, bad configurations, or out-of-range ports.
  static std::unique_ptr<Graph> Build(const ConfigGraph& config, std::string* error,
                                      const Registry& registry = Registry::Global(),
                                      sim::EventQueue* clock = nullptr);

  // Convenience: parse + build in one step.
  static std::unique_ptr<Graph> FromText(const std::string& text, std::string* error,
                                         sim::EventQueue* clock = nullptr);

  Element* Find(const std::string& name) const;
  // First element of the given class, or nullptr.
  Element* FindByClass(std::string_view class_name) const;
  template <typename T>
  T* FindAs(const std::string& name) const {
    return dynamic_cast<T*>(Find(name));
  }

  // Injects a packet at the named element (typically a FromNetfront).
  void Inject(const std::string& name, Packet& packet);
  // Injects at the first FromNetfront.
  void InjectAtSource(Packet& packet);

  const std::vector<std::unique_ptr<Element>>& elements() const { return elements_; }
  const ConfigGraph& config() const { return config_; }

  // Snapshots every element's packet/byte/drop/proc-time counters (and
  // per-output-port packet counts) into `registry` as innet_element_*_total
  // counters labeled {element, class} + `base_labels` (Click read handlers,
  // exported Prometheus-style).
  void ExportMetrics(obs::MetricsRegistry* registry, const obs::Labels& base_labels = {}) const;

  // Attaches a GraphProfiler (replacing any previous one): folded-stack
  // attribution for every packet, 1-in-N walk sampling per `config`. The
  // profiler belongs to the graph and is visible to elements through their
  // context.
  GraphProfiler* EnableProfiling(GraphProfilerConfig config);
  GraphProfiler* profiler() const { return profiler_.get(); }
  // Appends this graph's folded chains ("prefix;a;b;c weight" lines) to
  // `out`; no-op when profiling is off.
  void WriteFolded(std::ostream& out) const;

 private:
  Graph() = default;

  ConfigGraph config_;
  std::vector<std::unique_ptr<Element>> elements_;
  std::unordered_map<std::string, Element*> by_name_;
  Element* default_source_ = nullptr;
  ElementContext context_;
  std::unique_ptr<GraphProfiler> profiler_;
};

}  // namespace innet::click

#endif  // SRC_CLICK_GRAPH_H_
