// GraphProfiler: per-graph data-plane telemetry. Attached to a Graph (via
// ElementContext), it sees every inter-element forward and provides two
// products on top of the elements' own counters:
//
//  1. Folded call-chain attribution. Each element's simulated processing
//     cost is charged to the chain of elements the packet traversed to reach
//     it ("src;filter;rewriter 1234"), exactly the folded-stack format
//     flame-graph tooling consumes. Accumulated for every packet whenever a
//     profiler is attached — the per-forward cost is an append to an
//     incremental chain string plus one map bump.
//
//  2. Sampled packet walks. A deterministic 1-in-N sampler (phased by a
//     seed; no wall clock — the decision is a pure function of the packet
//     ordinal) promotes selected packets to full element-by-element traces:
//     a kPacketIngress span with one kElementProcess child span per element
//     visited, closed by kPacketEgress or kPacketDrop. Element spans get
//     synthetic timestamps (ingress sim time + cumulative simulated element
//     cost), so the Perfetto export renders one sampled packet as a
//     connected slice chain on its own track.
//
// Determinism contract: sampling depends only on (seed, sample_n, packet
// ordinal); timestamps mix only sim time and the deterministic element cost
// model. Two seeded runs produce byte-identical folded and trace dumps.
#ifndef SRC_CLICK_PROFILER_H_
#define SRC_CLICK_PROFILER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "src/click/element.h"
#include "src/obs/metrics.h"

namespace innet::click {

struct GraphProfilerConfig {
  // Sample every packet whose ordinal ≡ seed (mod sample_n). 0 disables walk
  // sampling (folded attribution still accumulates).
  uint32_t sample_n = 0;
  uint64_t seed = 0;
  // Prefixes walk trace targets and folded chains, e.g. "vm:3" — this is how
  // chains from many graphs stay distinguishable in one merged folded file.
  std::string walk_prefix;
  // In-band telemetry: independently sample 1-in-int_sample_n walks (same
  // deterministic ordinal contract as sample_n) to carry a per-hop metadata
  // stack on the packet itself, folded into the global IntCollector at
  // egress/drop. 0 disables INT. Also requires obs::Int().Enable().
  uint32_t int_sample_n = 0;
  // Tenant attribution for postcards: called with -1 for the graph's owning
  // tenant (dedicated VMs; may return "" for shared graphs) or with a
  // consolidated slot index parsed from a "t<i>_" element-name prefix.
  std::function<std::string(int)> int_tenant;
};

class GraphProfiler {
 public:
  explicit GraphProfiler(GraphProfilerConfig config) : config_(std::move(config)) {}
  GraphProfiler(const GraphProfiler&) = delete;
  GraphProfiler& operator=(const GraphProfiler&) = delete;

  // --- Walk lifecycle (called by Graph::Inject* and Element::ForwardTo) ----
  // BeginWalk also decides INT activation for this packet (and clears any
  // stale in-band state a reused Packet object may carry).
  void BeginWalk(uint64_t time_ns, Packet& packet);
  // `in_port` is the input port the packet arrives on — recorded in the
  // packet's in-band hop stack when INT is active for it.
  void EnterElement(const Element& element, Packet& packet, int in_port = 0);
  void ExitElement();
  // Called by ToNetfront when the packet leaves the graph; decides whether
  // the walk closes with kPacketEgress or kPacketDrop, and completes the
  // packet's in-band stack into a delivered postcard.
  void NoteEgress(Packet& packet, uint64_t now_ns);
  void EndWalk();
  // Closes the in-band stack of a packet whose walk ended without egress: a
  // drop postcard, unless the packet was parked by a timed element (the
  // deferred release calls this again after its own ForwardTo) or already
  // completed. Called by Graph::Inject* after EndWalk and by TimedUnqueue
  // after each deferred release.
  void FinishWalkInt(Packet& packet, uint64_t now_ns);

  uint64_t walks() const { return walks_; }
  uint64_t sampled_walks() const { return sampled_walks_; }
  uint64_t int_walks() const { return int_walks_; }

  // chain -> accumulated simulated ns (self cost per frame, flame-graph
  // semantics). Sorted, so the folded dump is deterministic.
  const std::map<std::string, uint64_t>& folded_ns() const { return folded_ns_; }
  // "prefix;chain;of;elements weight\n" lines (prefix omitted when empty).
  void WriteFolded(std::ostream& out) const;

  // innet_dataplane_walks_total / innet_dataplane_sampled_walks_total.
  void ExportMetrics(obs::MetricsRegistry* registry, const obs::Labels& base_labels) const;

  const GraphProfilerConfig& config() const { return config_; }

 private:
  struct Frame {
    size_t chain_len = 0;  // chain_ length before this element was appended
    uint64_t span = 0;     // open kElementProcess span id (0 = not sampled)
  };

  // Builds the postcard from the packet's hop stack (tenant attribution,
  // canonical chain, path latency) and folds it into the IntCollector.
  void EmitPostcard(Packet& packet, uint64_t now_ns, bool egress);

  GraphProfilerConfig config_;
  uint64_t walks_ = 0;
  uint64_t sampled_walks_ = 0;
  uint64_t int_walks_ = 0;
  std::map<std::string, uint64_t> folded_ns_;
  std::string chain_;          // incremental "a;b;c" of the live call chain
  std::vector<Frame> frames_;

  bool walk_sampled_ = false;
  bool egress_ = false;
  uint64_t walk_span_ = 0;
  uint64_t cursor_ns_ = 0;     // synthetic clock: ingress time + costs so far
  std::string walk_target_;
  std::string last_element_;   // drop attribution for sampled walks
};

}  // namespace innet::click

#endif  // SRC_CLICK_PROFILER_H_
