#include "src/click/graph.h"

namespace innet::click {

std::unique_ptr<Graph> Graph::Build(const ConfigGraph& config, std::string* error,
                                    const Registry& registry, sim::EventQueue* clock) {
  auto graph = std::unique_ptr<Graph>(new Graph());
  graph->config_ = config;
  graph->context_.clock = clock;

  for (const ElementDecl& decl : config.elements) {
    std::unique_ptr<Element> element = registry.Create(decl.class_name, decl.args, error);
    if (element == nullptr) {
      *error = "element '" + decl.name + "': " + *error;
      return nullptr;
    }
    element->set_name(decl.name);
    graph->by_name_[decl.name] = element.get();
    if (graph->default_source_ == nullptr && element->class_name() == "FromNetfront") {
      graph->default_source_ = element.get();
    }
    graph->elements_.push_back(std::move(element));
  }

  for (const Connection& conn : config.connections) {
    Element* from = graph->Find(conn.from);
    Element* to = graph->Find(conn.to);
    if (from == nullptr || to == nullptr) {
      *error = "connection references unknown element '" +
               (from == nullptr ? conn.from : conn.to) + "'";
      return nullptr;
    }
    if (conn.from_port < 0 || conn.from_port >= from->n_outputs()) {
      *error = "output port " + std::to_string(conn.from_port) + " out of range on '" +
               conn.from + "' (" + std::to_string(from->n_outputs()) + " outputs)";
      return nullptr;
    }
    if (conn.to_port < 0 || conn.to_port >= to->n_inputs()) {
      *error = "input port " + std::to_string(conn.to_port) + " out of range on '" + conn.to +
               "' (" + std::to_string(to->n_inputs()) + " inputs)";
      return nullptr;
    }
    from->ConnectOutput(conn.from_port, to, conn.to_port);
  }

  for (auto& element : graph->elements_) {
    element->Initialize(&graph->context_);
  }
  return graph;
}

std::unique_ptr<Graph> Graph::FromText(const std::string& text, std::string* error,
                                       sim::EventQueue* clock) {
  auto config = ConfigGraph::Parse(text, error);
  if (!config) {
    return nullptr;
  }
  return Build(*config, error, Registry::Global(), clock);
}

Element* Graph::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

Element* Graph::FindByClass(std::string_view class_name) const {
  for (const auto& element : elements_) {
    if (element->class_name() == class_name) {
      return element.get();
    }
  }
  return nullptr;
}

void Graph::Inject(const std::string& name, Packet& packet) {
  Element* element = Find(name);
  if (element == nullptr) {
    return;
  }
  element->CountArrival(packet);
  if (profiler_ != nullptr) {
    uint64_t now_ns = context_.clock != nullptr ? context_.clock->now() : 0;
    profiler_->BeginWalk(now_ns, packet);
    profiler_->EnterElement(*element, packet);
    element->Push(0, packet);
    profiler_->ExitElement();
    profiler_->EndWalk();
    profiler_->FinishWalkInt(packet, now_ns);
    return;
  }
  element->Push(0, packet);
}

void Graph::InjectAtSource(Packet& packet) {
  if (default_source_ == nullptr) {
    return;
  }
  default_source_->CountArrival(packet);
  if (profiler_ != nullptr) {
    uint64_t now_ns = context_.clock != nullptr ? context_.clock->now() : 0;
    profiler_->BeginWalk(now_ns, packet);
    profiler_->EnterElement(*default_source_, packet);
    default_source_->Push(0, packet);
    profiler_->ExitElement();
    profiler_->EndWalk();
    profiler_->FinishWalkInt(packet, now_ns);
    return;
  }
  default_source_->Push(0, packet);
}

void Graph::ExportMetrics(obs::MetricsRegistry* registry, const obs::Labels& base_labels) const {
  for (const auto& element : elements_) {
    obs::Labels labels = base_labels;
    labels.emplace_back("element", element->name());
    labels.emplace_back("class", std::string(element->class_name()));
    registry->GetCounter("innet_element_packets_total", labels)->SetTo(element->packets());
    registry->GetCounter("innet_element_bytes_total", labels)->SetTo(element->bytes());
    registry->GetCounter("innet_element_drops_total", labels)->SetTo(element->drops());
    registry->GetCounter("innet_element_proc_ns_total", labels)->SetTo(element->proc_ns());
    for (int port = 0; port < element->n_outputs(); ++port) {
      obs::Labels port_labels = labels;
      port_labels.emplace_back("port", std::to_string(port));
      registry->GetCounter("innet_element_port_packets_total", port_labels)
          ->SetTo(element->port_packets(port));
    }
  }
  if (profiler_ != nullptr) {
    profiler_->ExportMetrics(registry, base_labels);
  }
}

GraphProfiler* Graph::EnableProfiling(GraphProfilerConfig config) {
  profiler_ = std::make_unique<GraphProfiler>(std::move(config));
  context_.profiler = profiler_.get();
  return profiler_.get();
}

void Graph::WriteFolded(std::ostream& out) const {
  if (profiler_ != nullptr) {
    profiler_->WriteFolded(out);
  }
}

}  // namespace innet::click
