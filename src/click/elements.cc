#include "src/click/elements.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "src/click/profiler.h"

namespace innet::click {
namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\n\r");
  if (b == std::string::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t\n\r");
  return s.substr(b, e - b + 1);
}

// Splits on commas that are not nested in parentheses; trims each piece.
std::vector<std::string> SplitArgs(const std::string& args) {
  std::vector<std::string> parts;
  int depth = 0;
  std::string current;
  for (char c : args) {
    if (c == '(') {
      ++depth;
    } else if (c == ')') {
      --depth;
    }
    if (c == ',' && depth == 0) {
      parts.push_back(Trim(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  std::string last = Trim(current);
  if (!last.empty() || !parts.empty()) {
    parts.push_back(last);
  }
  return parts;
}

std::vector<std::string> SplitWords(const std::string& text) {
  std::vector<std::string> words;
  std::istringstream in(text);
  std::string w;
  while (in >> w) {
    words.push_back(w);
  }
  return words;
}

bool ParsePort(const std::string& s, uint16_t* out) {
  if (s.empty()) {
    return false;
  }
  uint32_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    v = v * 10 + static_cast<uint32_t>(c - '0');
    if (v > 65535) {
      return false;
    }
  }
  *out = static_cast<uint16_t>(v);
  return true;
}

}  // namespace

// --- Sources and sinks ----------------------------------------------------------

void FromNetfront::Push(int /*port*/, Packet& packet) { ForwardTo(0, packet); }

void ToNetfront::Push(int /*port*/, Packet& packet) {
  ++packet_count_;
  byte_count_ += packet.length();
  if (profiler() != nullptr) {
    // The walk ends in egress, not a drop; a carried in-band stack is
    // completed into a delivered postcard here, at the graph boundary.
    profiler()->NoteEgress(packet, clock() != nullptr ? clock()->now() : 0);
  }
  if (handler_) {
    handler_(packet);
  }
}

void Discard::Push(int /*port*/, Packet& /*packet*/) { ++packet_count_; }

// --- Pass-through utilities -------------------------------------------------------

void Counter::Push(int /*port*/, Packet& packet) {
  ++packet_count_;
  byte_count_ += packet.length();
  ForwardTo(0, packet);
}

bool Tee::Configure(const std::string& args, std::string* error) {
  int n = 2;
  std::string trimmed = Trim(args);
  if (!trimmed.empty()) {
    try {
      n = std::stoi(trimmed);
    } catch (...) {
      *error = "Tee: bad output count '" + trimmed + "'";
      return false;
    }
    if (n < 1 || n > 256) {
      *error = "Tee: output count out of range";
      return false;
    }
  }
  SetPorts(1, n);
  return true;
}

void Tee::Push(int /*port*/, Packet& packet) {
  for (int i = 1; i < n_outputs(); ++i) {
    Packet copy = packet;
    ForwardTo(i, copy);
  }
  ForwardTo(0, packet);
}

// --- Classification ---------------------------------------------------------------

bool IPFilter::Configure(const std::string& args, std::string* error) {
  for (const std::string& rule_text : SplitArgs(args)) {
    if (rule_text.empty()) {
      continue;
    }
    size_t space = rule_text.find(' ');
    std::string verb = rule_text.substr(0, space);
    std::string rest = space == std::string::npos ? "" : Trim(rule_text.substr(space + 1));
    bool allow;
    if (verb == "allow" || verb == "accept") {
      allow = true;
    } else if (verb == "deny" || verb == "drop") {
      allow = false;
    } else {
      *error = "IPFilter: rule must start with allow/deny, got '" + rule_text + "'";
      return false;
    }
    FlowSpec spec;
    if (rest != "all" && !rest.empty()) {
      auto parsed = FlowSpec::Parse(rest);
      if (!parsed) {
        *error = "IPFilter: bad flow spec '" + rest + "'";
        return false;
      }
      spec = *parsed;
    }
    rules_.push_back({allow, std::move(spec)});
  }
  if (rules_.empty()) {
    *error = "IPFilter: needs at least one rule";
    return false;
  }
  return true;
}

void IPFilter::Push(int /*port*/, Packet& packet) {
  for (const Rule& rule : rules_) {
    if (rule.spec.Matches(packet)) {
      if (rule.allow) {
        ForwardTo(0, packet);
      } else {
        CountDrop();
      }
      return;
    }
  }
  CountDrop();  // Click's IPFilter drops unmatched packets.
}

bool IPClassifier::Configure(const std::string& args, std::string* error) {
  for (const std::string& pattern_text : SplitArgs(args)) {
    if (pattern_text == "-") {
      patterns_.push_back(FlowSpec());  // wildcard
      continue;
    }
    auto parsed = FlowSpec::Parse(pattern_text);
    if (!parsed) {
      *error = std::string(class_name()) + ": bad pattern '" + pattern_text + "'";
      return false;
    }
    patterns_.push_back(*parsed);
  }
  if (patterns_.empty()) {
    *error = std::string(class_name()) + ": needs at least one pattern";
    return false;
  }
  SetPorts(1, static_cast<int>(patterns_.size()));
  return true;
}

void IPClassifier::Push(int /*port*/, Packet& packet) {
  for (size_t i = 0; i < patterns_.size(); ++i) {
    if (patterns_[i].Matches(packet)) {
      ForwardTo(static_cast<int>(i), packet);
      return;
    }
  }
  CountDrop();
}

// --- Header rewriting ---------------------------------------------------------------

bool IPRewriter::Configure(const std::string& args, std::string* error) {
  std::vector<std::string> words = SplitWords(args);
  if (words.empty() || words[0] != "pattern") {
    *error = "IPRewriter: expected 'pattern SADDR SPORT DADDR DPORT ...'";
    return false;
  }
  if (words.size() < 5) {
    *error = "IPRewriter: pattern needs 4 fields";
    return false;
  }
  auto parse_addr = [&](const std::string& w, std::optional<Ipv4Address>* out) {
    if (w == "-") {
      return true;
    }
    auto addr = Ipv4Address::Parse(w);
    if (!addr) {
      return false;
    }
    *out = *addr;
    return true;
  };
  auto parse_port_field = [&](const std::string& w, std::optional<uint16_t>* out) {
    if (w == "-") {
      return true;
    }
    uint16_t p = 0;
    if (!ParsePort(w, &p)) {
      return false;
    }
    *out = p;
    return true;
  };
  if (!parse_addr(words[1], &new_src_) || !parse_port_field(words[2], &new_sport_) ||
      !parse_addr(words[3], &new_dst_) || !parse_port_field(words[4], &new_dport_)) {
    *error = "IPRewriter: bad pattern field in '" + args + "'";
    return false;
  }
  return true;  // trailing output-port numbers are accepted and ignored
}

void IPRewriter::Push(int /*port*/, Packet& packet) {
  if (new_src_) {
    packet.set_ip_src(*new_src_);
  }
  if (new_dst_) {
    packet.set_ip_dst(*new_dst_);
  }
  if (new_sport_) {
    packet.set_src_port(*new_sport_);
  }
  if (new_dport_) {
    packet.set_dst_port(*new_dport_);
  }
  packet.RefreshChecksums();
  ForwardTo(0, packet);
}

bool SetIPSrc::Configure(const std::string& args, std::string* error) {
  auto addr = Ipv4Address::Parse(Trim(args));
  if (!addr) {
    *error = "SetIPSrc: bad address '" + args + "'";
    return false;
  }
  addr_ = *addr;
  return true;
}

void SetIPSrc::Push(int /*port*/, Packet& packet) {
  packet.set_ip_src(addr_);
  packet.RefreshChecksums();
  ForwardTo(0, packet);
}

bool SetIPDst::Configure(const std::string& args, std::string* error) {
  auto addr = Ipv4Address::Parse(Trim(args));
  if (!addr) {
    *error = "SetIPDst: bad address '" + args + "'";
    return false;
  }
  addr_ = *addr;
  return true;
}

void SetIPDst::Push(int /*port*/, Packet& packet) {
  packet.set_ip_dst(addr_);
  packet.RefreshChecksums();
  ForwardTo(0, packet);
}

void DecIPTTL::Push(int /*port*/, Packet& packet) {
  if (!packet.DecrementTtl()) {
    CountDrop();
    return;
  }
  packet.RefreshChecksums();
  ForwardTo(0, packet);
}

void CheckIPHeader::Push(int /*port*/, Packet& packet) {
  if (!packet.VerifyIpChecksum()) {
    CountDrop();
    return;
  }
  ForwardTo(0, packet);
}

// --- Queueing / batching --------------------------------------------------------------

bool TimedUnqueue::Configure(const std::string& args, std::string* error) {
  std::vector<std::string> parts = SplitArgs(args);
  if (parts.empty() || parts[0].empty()) {
    *error = "TimedUnqueue: needs INTERVAL [BURST]";
    return false;
  }
  try {
    interval_sec_ = std::stod(parts[0]);
  } catch (...) {
    *error = "TimedUnqueue: bad interval '" + parts[0] + "'";
    return false;
  }
  if (parts.size() > 1 && !parts[1].empty()) {
    try {
      burst_ = std::stoi(parts[1]);
    } catch (...) {
      *error = "TimedUnqueue: bad burst '" + parts[1] + "'";
      return false;
    }
  }
  if (interval_sec_ <= 0 || burst_ < 1) {
    *error = "TimedUnqueue: interval and burst must be positive";
    return false;
  }
  return true;
}

void TimedUnqueue::Initialize(ElementContext* context) {
  Element::Initialize(context);
  timer_armed_ = false;
}

void TimedUnqueue::Push(int /*port*/, Packet& packet) {
  if (clock() == nullptr) {
    ForwardTo(0, packet);  // no clock: degrade to pass-through
    return;
  }
  queue_.push_back(packet);
  if (packet.int_active()) {
    // The queued copy carries the in-band stack onward; park the original so
    // the injecting walk does not close it as a drop when it unwinds.
    packet.set_int_parked(true);
  }
  if (!timer_armed_) {
    timer_armed_ = true;
    clock()->ScheduleAfter(static_cast<sim::TimeNs>(interval_sec_ * 1e9), [this] { Fire(); });
  }
}

void TimedUnqueue::Fire() {
  for (int i = 0; i < burst_ && !queue_.empty(); ++i) {
    Packet packet = std::move(queue_.front());
    queue_.pop_front();
    packet.set_int_parked(false);
    ForwardTo(0, packet);
    if (profiler() != nullptr) {
      // A deferred release runs outside any walk, so the drop-side postcard
      // (for packets that did not reach a sink downstream) is emitted here.
      profiler()->FinishWalkInt(packet, clock()->now());
    }
  }
  // Once started, the release timer ticks periodically (Click's TimedUnqueue
  // behaviour): every INTERVAL the queued batch goes out, so no packet waits
  // more than one interval.
  clock()->ScheduleAfter(static_cast<sim::TimeNs>(interval_sec_ * 1e9), [this] { Fire(); });
}

bool Queue::Configure(const std::string& args, std::string* error) {
  std::string trimmed = Trim(args);
  if (!trimmed.empty()) {
    try {
      capacity_ = static_cast<size_t>(std::stoul(trimmed));
    } catch (...) {
      *error = "Queue: bad capacity '" + trimmed + "'";
      return false;
    }
  }
  return true;
}

void Queue::Push(int /*port*/, Packet& packet) {
  // Push-to-push adapter: counts occupancy against the configured capacity so
  // bursty upstreams see tail drop, then forwards immediately.
  if (depth_ >= capacity_) {
    CountDrop();
    return;
  }
  ++depth_;
  ForwardTo(0, packet);
  --depth_;
}

// --- Stateful / security -----------------------------------------------------------

bool ChangeEnforcer::Configure(const std::string& args, std::string* error) {
  for (const std::string& part : SplitArgs(args)) {
    if (part.empty()) {
      continue;
    }
    std::vector<std::string> words = SplitWords(part);
    if (words.empty()) {
      continue;
    }
    if (words[0] == "ALLOW") {
      for (size_t i = 1; i < words.size(); ++i) {
        auto addr = Ipv4Address::Parse(words[i]);
        if (!addr) {
          *error = "ChangeEnforcer: bad whitelist address '" + words[i] + "'";
          return false;
        }
        whitelist_.insert(addr->value());
      }
    } else if (words[0] == "TIMEOUT" && words.size() == 2) {
      try {
        timeout_ns_ = static_cast<uint64_t>(std::stod(words[1]) * 1e9);
      } catch (...) {
        *error = "ChangeEnforcer: bad timeout '" + words[1] + "'";
        return false;
      }
    } else {
      *error = "ChangeEnforcer: unknown directive '" + part + "'";
      return false;
    }
  }
  return true;
}

void ChangeEnforcer::Push(int port, Packet& packet) {
  uint64_t now = clock() != nullptr ? clock()->now() : packet.timestamp_ns();
  if (port == 0) {
    // Inbound: remember the outside peer; it is implicitly authorized to
    // receive our responses (the paper's stateful-firewall analogy, §4.4).
    peers_[packet.ip_src().value()] = now;
    ForwardTo(0, packet);
    return;
  }
  // Outbound: enforce default-off.
  uint32_t dst = packet.ip_dst().value();
  if (whitelist_.count(dst) != 0) {
    ForwardTo(1, packet);
    return;
  }
  auto it = peers_.find(dst);
  if (it != peers_.end() && now - it->second <= timeout_ns_) {
    ForwardTo(1, packet);
    return;
  }
  ++blocked_;
  CountDrop();
}

void FlowMeter::Push(int /*port*/, Packet& packet) {
  ++flows_[packet.FlowKey()];
  ForwardTo(0, packet);
}

bool RateLimiter::Configure(const std::string& args, std::string* error) {
  std::vector<std::string> parts = SplitArgs(args);
  if (parts.empty() || parts[0].empty()) {
    *error = "RateLimiter: needs RATE_BPS [BURST_BYTES]";
    return false;
  }
  try {
    rate_bps_ = std::stod(parts[0]);
    if (parts.size() > 1 && !parts[1].empty()) {
      burst_bytes_ = std::stod(parts[1]);
    }
  } catch (...) {
    *error = "RateLimiter: bad numeric argument";
    return false;
  }
  tokens_ = burst_bytes_;
  return true;
}

void RateLimiter::Push(int /*port*/, Packet& packet) {
  uint64_t now = clock() != nullptr ? clock()->now() : packet.timestamp_ns();
  if (now > last_ns_) {
    tokens_ = std::min(burst_bytes_,
                       tokens_ + (static_cast<double>(now - last_ns_) / 1e9) * rate_bps_ / 8.0);
    last_ns_ = now;
  }
  double need = static_cast<double>(packet.length());
  if (tokens_ >= need) {
    tokens_ -= need;
    ForwardTo(0, packet);
  } else {
    CountDrop();
  }
}

// --- Middlebox building blocks --------------------------------------------------------

bool ContentMatch::Configure(const std::string& args, std::string* error) {
  pattern_ = Trim(args);
  if (pattern_.empty()) {
    *error = "ContentMatch: needs a pattern";
    return false;
  }
  SetPorts(1, 2);
  return true;
}

void ContentMatch::Push(int /*port*/, Packet& packet) {
  std::string_view payload = packet.PayloadView();
  bool match = !pattern_.empty() &&
               payload.find(pattern_) != std::string_view::npos;
  if (match) {
    ++match_count_;
    ForwardTo(1, packet);
  } else {
    ForwardTo(0, packet);
  }
}

bool UDPTunnelEncap::Configure(const std::string& args, std::string* error) {
  std::vector<std::string> parts = SplitArgs(args);
  if (parts.size() < 2) {
    *error = "UDPTunnelEncap: needs SRC, DST [, PORT]";
    return false;
  }
  auto src = Ipv4Address::Parse(parts[0]);
  auto dst = Ipv4Address::Parse(parts[1]);
  if (!src || !dst) {
    *error = "UDPTunnelEncap: bad address";
    return false;
  }
  src_ = *src;
  dst_ = *dst;
  if (parts.size() > 2 && !ParsePort(parts[2], &port_)) {
    *error = "UDPTunnelEncap: bad port '" + parts[2] + "'";
    return false;
  }
  return true;
}

void UDPTunnelEncap::Push(int /*port*/, Packet& packet) {
  // Carry the inner IP packet (sans Ethernet) as tunnel payload.
  size_t inner_len = std::min(packet.length() - kEthHeaderLen,
                              kMaxFrameLen - kEthHeaderLen - kIpHeaderLen - sizeof(UdpHeader));
  Packet outer = Packet::MakeUdp(src_, dst_, port_, port_, inner_len);
  std::memcpy(outer.mutable_payload(), packet.data() + kEthHeaderLen, inner_len);
  outer.RefreshChecksums();
  outer.set_timestamp_ns(packet.timestamp_ns());
  ForwardTo(0, outer);
}

void UDPTunnelDecap::Push(int /*port*/, Packet& packet) {
  if (packet.protocol() != kProtoUdp || packet.payload_length() < kIpHeaderLen) {
    CountDrop();
    return;
  }
  // Restore Ethernet framing in front of the tunneled IP packet.
  size_t inner_len = packet.payload_length();
  uint8_t frame[kMaxFrameLen];
  auto* eth = reinterpret_cast<EthernetHeader*>(frame);
  std::memset(eth, 0, sizeof(*eth));
  eth->ether_type = HostToNet16(kEtherTypeIpv4);
  std::memcpy(frame + kEthHeaderLen, packet.payload(), inner_len);
  Packet inner = Packet::FromWire(frame, kEthHeaderLen + inner_len);
  if (inner.length() == 0) {
    CountDrop();
    return;
  }
  inner.set_timestamp_ns(packet.timestamp_ns());
  ForwardTo(0, inner);
}

bool LinearIPLookup::Configure(const std::string& args, std::string* error) {
  for (const std::string& part : SplitArgs(args)) {
    if (part.empty()) {
      continue;
    }
    std::vector<std::string> words = SplitWords(part);
    if (words.size() != 2) {
      *error = "LinearIPLookup: route must be 'PREFIX PORT', got '" + part + "'";
      return false;
    }
    auto prefix = Ipv4Prefix::Parse(words[0]);
    if (!prefix) {
      *error = "LinearIPLookup: bad prefix '" + words[0] + "'";
      return false;
    }
    int out = 0;
    try {
      out = std::stoi(words[1]);
    } catch (...) {
      *error = "LinearIPLookup: bad port '" + words[1] + "'";
      return false;
    }
    routes_.push_back({*prefix, out});
  }
  if (routes_.empty()) {
    *error = "LinearIPLookup: needs at least one route";
    return false;
  }
  int max_port = 0;
  for (const Route& route : routes_) {
    max_port = std::max(max_port, route.out_port);
  }
  SetPorts(1, max_port + 1);
  return true;
}

void LinearIPLookup::Push(int /*port*/, Packet& packet) {
  const Route* best = nullptr;
  for (const Route& route : routes_) {
    if (route.prefix.Contains(packet.ip_dst()) &&
        (best == nullptr || route.prefix.length() > best->prefix.length())) {
      best = &route;
    }
  }
  if (best == nullptr) {
    CountDrop();
    return;
  }
  ForwardTo(best->out_port, packet);
}

bool NatRewriter::Configure(const std::string& args, std::string* error) {
  std::vector<std::string> words = SplitWords(args);
  if (words.size() != 2 || words[0] != "PUBLIC") {
    *error = "NatRewriter: expected 'PUBLIC a.b.c.d'";
    return false;
  }
  auto addr = Ipv4Address::Parse(words[1]);
  if (!addr) {
    *error = "NatRewriter: bad address '" + words[1] + "'";
    return false;
  }
  public_addr_ = *addr;
  return true;
}

void NatRewriter::Push(int port, Packet& packet) {
  if (port == 0) {
    // Outbound: source-NAT.
    uint64_t key = (static_cast<uint64_t>(packet.ip_src().value()) << 24) ^
                   (static_cast<uint64_t>(packet.src_port()) << 8) ^ packet.protocol();
    auto it = mappings_.find(key);
    uint16_t public_port;
    if (it == mappings_.end()) {
      public_port = next_port_++;
      mappings_.emplace(key, public_port);
      reverse_.emplace(public_port,
                       std::make_pair(packet.ip_src().value(), packet.src_port()));
    } else {
      public_port = it->second;
    }
    packet.set_ip_src(public_addr_);
    packet.set_src_port(public_port);
    packet.RefreshChecksums();
    ForwardTo(0, packet);
    return;
  }
  // Inbound: restore the mapped destination.
  auto it = reverse_.find(packet.dst_port());
  if (it == reverse_.end()) {
    CountDrop();
    return;
  }
  packet.set_ip_dst(Ipv4Address(it->second.first));
  packet.set_dst_port(it->second.second);
  packet.RefreshChecksums();
  ForwardTo(1, packet);
}

// --- Stock processing modules -----------------------------------------------------------

void DnsGeoServer::Push(int /*port*/, Packet& packet) {
  if (packet.protocol() != kProtoUdp || packet.dst_port() != 53) {
    CountDrop();
    return;
  }
  ++query_count_;
  Ipv4Address client = packet.ip_src();
  uint16_t client_port = packet.src_port();
  packet.set_ip_src(packet.ip_dst());
  packet.set_ip_dst(client);
  packet.set_src_port(53);
  packet.set_dst_port(client_port);
  packet.RefreshChecksums();
  ForwardTo(0, packet);
}

bool ReverseProxy::Configure(const std::string& args, std::string* error) {
  Ipv4Address self;
  Ipv4Address origin;
  bool have_self = false;
  bool have_origin = false;
  for (const std::string& part : SplitArgs(args)) {
    std::vector<std::string> words = SplitWords(part);
    if (words.size() != 2) {
      *error = "ReverseProxy: expected 'SELF addr, ORIGIN addr'";
      return false;
    }
    auto addr = Ipv4Address::Parse(words[1]);
    if (!addr) {
      *error = "ReverseProxy: bad address '" + words[1] + "'";
      return false;
    }
    if (words[0] == "SELF") {
      self = *addr;
      have_self = true;
    } else if (words[0] == "ORIGIN") {
      origin = *addr;
      have_origin = true;
    } else {
      *error = "ReverseProxy: unknown keyword '" + words[0] + "'";
      return false;
    }
  }
  if (!have_self || !have_origin) {
    *error = "ReverseProxy: both SELF and ORIGIN are required";
    return false;
  }
  self_ = self;
  origin_ = origin;
  SetPorts(1, 2);
  return true;
}

void ReverseProxy::Push(int /*port*/, Packet& packet) {
  ++counter_;
  bool hit = (static_cast<double>(counter_ % 100) / 100.0) < hit_ratio_;
  if (hit) {
    // Cache hit: respond to the requester (implicit authorization).
    Ipv4Address client = packet.ip_src();
    uint16_t client_port = packet.src_port();
    packet.set_ip_src(self_);
    packet.set_ip_dst(client);
    packet.set_src_port(80);
    packet.set_dst_port(client_port);
    packet.RefreshChecksums();
    ForwardTo(0, packet);
    return;
  }
  // Miss: fetch from the whitelisted origin, as ourselves.
  packet.set_ip_src(self_);
  packet.set_ip_dst(origin_);
  packet.set_dst_port(80);
  packet.RefreshChecksums();
  ForwardTo(1, packet);
}

void X86Vm::Push(int /*port*/, Packet& packet) { ForwardTo(0, packet); }

void TransparentProxy::Push(int /*port*/, Packet& packet) {
  ++proxied_count_;
  ForwardTo(0, packet);
}

}  // namespace innet::click
