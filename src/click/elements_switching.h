// Second batch of element classes: paint annotations, traffic switching and
// sampling, TTL/ToS utilities, an ICMP responder, and the explicit proxy the
// paper says residential customers may deploy (§2.1).
#ifndef SRC_CLICK_ELEMENTS_SWITCHING_H_
#define SRC_CLICK_ELEMENTS_SWITCHING_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/click/element.h"
#include "src/netcore/ip.h"

namespace innet::click {

// Paint(COLOR): tags packets with a box-local color annotation.
class Paint : public Element {
 public:
  std::string_view class_name() const override { return "Paint"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Push(int port, Packet& packet) override;
  uint8_t color() const { return color_; }

 private:
  uint8_t color_ = 0;
};

// PaintSwitch(N): routes packets to the output matching their paint color;
// colors >= N are dropped.
class PaintSwitch : public Element {
 public:
  std::string_view class_name() const override { return "PaintSwitch"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Push(int port, Packet& packet) override;
};

// RoundRobinSwitch(N): spreads packets across N outputs in rotation
// (Click's load-balancing building block).
class RoundRobinSwitch : public Element {
 public:
  std::string_view class_name() const override { return "RoundRobinSwitch"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Push(int port, Packet& packet) override;

 private:
  int next_ = 0;
};

// HashSwitch(N): spreads packets across N outputs by flow hash, so one
// flow's packets stay on one output.
class HashSwitch : public Element {
 public:
  std::string_view class_name() const override { return "HashSwitch"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Push(int port, Packet& packet) override;
};

// RandomSample(P): forwards a fraction P of traffic to output 0; the rest
// goes to output 1 (or is dropped when unconnected). Deterministic xorshift
// so experiments reproduce.
class RandomSample : public Element {
 public:
  RandomSample() { SetPorts(1, 2); }
  std::string_view class_name() const override { return "RandomSample"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Push(int port, Packet& packet) override;

 private:
  double probability_ = 0.5;
  uint64_t state_ = 0x853c49e6748fea9bULL;
};

// AddressDemux(ADDR0, ADDR1, ...): exact destination-address demultiplexer
// backed by a hash table — the O(1) alternative to IPClassifier's linear
// pattern scan for multi-tenant consolidation (the Figure 8 knee ablation).
// Unmatched destinations are dropped.
class AddressDemux : public Element {
 public:
  std::string_view class_name() const override { return "AddressDemux"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Push(int port, Packet& packet) override;
  const std::vector<Ipv4Address>& addresses() const { return addresses_; }

 private:
  std::vector<Ipv4Address> addresses_;
  std::unordered_map<uint32_t, int> table_;
};

// SetTTL(N): rewrites the IP TTL.
class SetTTL : public Element {
 public:
  std::string_view class_name() const override { return "SetTTL"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Push(int port, Packet& packet) override;
  uint8_t ttl() const { return ttl_; }

 private:
  uint8_t ttl_ = 64;
};

// ICMPPingResponder(): answers echo requests addressed to anything — the
// responder host at the end of the Figure 5 testbed.
class ICMPPingResponder : public Element {
 public:
  std::string_view class_name() const override { return "ICMPPingResponder"; }
  void Push(int port, Packet& packet) override;
  uint64_t echo_count() const { return echo_count_; }

 private:
  uint64_t echo_count_ = 0;
};

// ExplicitProxy(SELF addr): a CONNECT-style proxy. The client addresses the
// proxy and names the real target in the request payload
// ("CONNECT a.b.c.d:port"); the proxy fetches as itself. Safe for the
// operator's customers (they may reach any destination), sandboxed for
// third parties (the target is attacker-supplied data) — the §2.1
// "customers can also deploy explicit proxies" case.
class ExplicitProxy : public Element {
 public:
  std::string_view class_name() const override { return "ExplicitProxy"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Push(int port, Packet& packet) override;
  Ipv4Address self() const { return self_; }
  uint64_t malformed_count() const { return malformed_; }

 private:
  Ipv4Address self_;
  uint64_t malformed_ = 0;
};

}  // namespace innet::click

#endif  // SRC_CLICK_ELEMENTS_SWITCHING_H_
