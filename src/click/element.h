// The Click-style element framework: small units of packet processing wired
// into a directed graph by a configuration (src/click/config_parser.h).
//
// The engine is push-based: upstream elements call Output(port).Push(packet),
// and packets are modified in place. Elements that hold packets (queues,
// batchers) copy them; Packet is a value type.
#ifndef SRC_CLICK_ELEMENT_H_
#define SRC_CLICK_ELEMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/netcore/packet.h"
#include "src/sim/event_queue.h"

namespace innet::click {

class Element;
class GraphProfiler;

// Where an element's output port points.
struct PortTarget {
  Element* element = nullptr;
  int port = 0;
  bool connected() const { return element != nullptr; }
};

// Per-graph services elements may use. Timed elements (TimedUnqueue) need a
// clock; elements that expire state (ChangeEnforcer) read it lazily. The
// profiler is attached by Graph::EnableProfiling; null means no folded
// attribution or walk sampling for this graph.
struct ElementContext {
  sim::EventQueue* clock = nullptr;
  GraphProfiler* profiler = nullptr;
};

// Optional process-wide packet tracing: when set, every inter-element
// forward invokes the hook. Used by debugging tools (tools/innet_run); the
// fast path pays a single pointer test when disabled.
using PacketTraceHook = std::function<void(const Element& from, int out_port,
                                           const Packet& packet)>;
void SetPacketTraceHook(PacketTraceHook hook);
// RAII enabling of the hook for a scope.
class ScopedPacketTrace {
 public:
  explicit ScopedPacketTrace(PacketTraceHook hook) { SetPacketTraceHook(std::move(hook)); }
  ~ScopedPacketTrace() { SetPacketTraceHook(nullptr); }
  ScopedPacketTrace(const ScopedPacketTrace&) = delete;
  ScopedPacketTrace& operator=(const ScopedPacketTrace&) = delete;
};

class Element {
 public:
  virtual ~Element() = default;

  // Class name, e.g. "IPFilter".
  virtual std::string_view class_name() const = 0;

  // Number of input/output ports. Determined after Configure().
  int n_inputs() const { return n_inputs_; }
  int n_outputs() const { return n_outputs_; }

  // Parses the configuration string. Returns false and fills *error on
  // failure. Default: accepts only an empty configuration.
  virtual bool Configure(const std::string& args, std::string* error);

  // Handles a packet arriving on `port`. Elements forward with ForwardTo().
  virtual void Push(int port, Packet& packet) = 0;

  // Called once after the graph is wired, before any packet flows.
  virtual void Initialize(ElementContext* context) { context_ = context; }

  // --- Wiring (used by Graph) -------------------------------------------------
  void ConnectOutput(int out_port, Element* target, int target_port);
  const PortTarget& output(int port) const { return outputs_[port]; }

  // Instance name from the configuration ("batcher" in "batcher :: ...").
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  uint64_t drops() const { return drops_; }

  // Click-read-handler-style counters: packets/bytes this element received
  // (from an upstream ForwardTo or a graph injection). Local uint64s so the
  // per-packet fast path never touches the registry; Graph::ExportMetrics
  // snapshots them into obs counters at dump time.
  uint64_t packets() const { return packets_; }
  uint64_t bytes() const { return bytes_; }
  // Accumulated simulated processing time (SimulatedCostNs per arrival).
  uint64_t proc_ns() const { return proc_ns_; }
  // Packets this element pushed out of `port` (connected or not).
  uint64_t port_packets(int port) const {
    return static_cast<size_t>(port) < port_packets_.size()
               ? port_packets_[static_cast<size_t>(port)]
               : 0;
  }

  // Deterministic simulated processing cost of handling `packet`: a per-class
  // base plus a per-byte component, from a fixed table keyed by class_name()
  // (cached on first use). Pure function of (class, packet length) — safe to
  // mix into trace timestamps without breaking the byte-identical contract.
  uint64_t SimulatedCostNs(const Packet& packet) const {
    if (!cost_ready_) {
      InitCostModel();
    }
    return cost_base_ns_ +
           ((static_cast<uint64_t>(packet.length()) * cost_per_byte_x1024_) >> 10);
  }

  // Called by the upstream element / graph just before Push.
  void CountArrival(const Packet& packet) {
    ++packets_;
    bytes_ += packet.length();
    proc_ns_ += SimulatedCostNs(packet);
  }

  // Current occupancy for queue-like elements (Queue, TimedUnqueue); 0 for
  // everything else. Recorded into in-band telemetry hop records, so sampled
  // packets carry the queue depth they actually saw at traversal.
  virtual uint64_t queue_depth() const { return 0; }

 protected:
  void SetPorts(int inputs, int outputs);

  // Forwards to the element connected at `out_port`; drops if unconnected.
  void ForwardTo(int out_port, Packet& packet) {
    if (trace_enabled_) {
      Trace(out_port, packet);
    }
    if (packet.int_active()) {
      // Complete this element's in-band hop record with the chosen exit port
      // before the next element appends its own.
      packet.SetLastIntEgressPort(static_cast<uint16_t>(out_port));
    }
    if (static_cast<size_t>(out_port) < port_packets_.size()) {
      ++port_packets_[static_cast<size_t>(out_port)];
    }
    const PortTarget& target = outputs_[static_cast<size_t>(out_port)];
    if (!target.connected()) {
      ++drops_;
      return;
    }
    target.element->CountArrival(packet);
    if (context_ != nullptr && context_->profiler != nullptr) {
      ForwardProfiled(target, packet);  // out of line: profiler is incomplete here
      return;
    }
    target.element->Push(target.port, packet);
  }

  void CountDrop() { ++drops_; }
  sim::EventQueue* clock() const { return context_ != nullptr ? context_->clock : nullptr; }
  GraphProfiler* profiler() const { return context_ != nullptr ? context_->profiler : nullptr; }

 private:
  friend void SetPacketTraceHook(PacketTraceHook hook);
  void Trace(int out_port, const Packet& packet) const;
  void ForwardProfiled(const PortTarget& target, Packet& packet);
  // Fills the cost coefficients from the per-class table (element.cc).
  void InitCostModel() const;
  static inline bool trace_enabled_ = false;

  std::string name_;
  int n_inputs_ = 1;
  int n_outputs_ = 1;
  std::vector<PortTarget> outputs_{1};
  std::vector<uint64_t> port_packets_{0};
  uint64_t drops_ = 0;
  uint64_t packets_ = 0;
  uint64_t bytes_ = 0;
  uint64_t proc_ns_ = 0;
  mutable bool cost_ready_ = false;
  mutable uint64_t cost_base_ns_ = 0;
  mutable uint64_t cost_per_byte_x1024_ = 0;  // ns per byte, scaled by 1024
  ElementContext* context_ = nullptr;
};

}  // namespace innet::click

#endif  // SRC_CLICK_ELEMENT_H_
