#include "src/click/element.h"

namespace innet::click {
namespace {

PacketTraceHook& GlobalTraceHook() {
  static PacketTraceHook hook;
  return hook;
}

}  // namespace

void SetPacketTraceHook(PacketTraceHook hook) {
  GlobalTraceHook() = std::move(hook);
  Element::trace_enabled_ = static_cast<bool>(GlobalTraceHook());
}

void Element::Trace(int out_port, const Packet& packet) const {
  const PacketTraceHook& hook = GlobalTraceHook();
  if (hook) {
    hook(*this, out_port, packet);
  }
}

bool Element::Configure(const std::string& args, std::string* error) {
  if (!args.empty()) {
    *error = std::string(class_name()) + " takes no configuration, got '" + args + "'";
    return false;
  }
  return true;
}

void Element::ConnectOutput(int out_port, Element* target, int target_port) {
  if (out_port >= 0 && static_cast<size_t>(out_port) < outputs_.size()) {
    outputs_[static_cast<size_t>(out_port)] = PortTarget{target, target_port};
  }
}

void Element::SetPorts(int inputs, int outputs) {
  n_inputs_ = inputs;
  n_outputs_ = outputs;
  outputs_.assign(static_cast<size_t>(outputs < 0 ? 0 : outputs), PortTarget{});
}

}  // namespace innet::click
