#include "src/click/element.h"

#include <string_view>
#include <utility>

#include "src/click/profiler.h"

namespace innet::click {
namespace {

PacketTraceHook& GlobalTraceHook() {
  static PacketTraceHook hook;
  return hook;
}

// Simulated per-class processing costs: a fixed base per packet plus a
// per-byte term (scaled by 1024). Calibrated loosely to the relative costs
// reported for Click elements — classification and table lookups cost more
// than header edits, payload scans pay per byte, an opaque x86 VM pays a
// domain-crossing premium. The absolute values matter less than being a
// deterministic, documented function of (class, length): they feed proc_ns
// accounting, folded-stack weights, and sampled-walk slice durations.
struct ClassCost {
  std::string_view class_name;
  uint64_t base_ns;
  uint64_t per_byte_x1024;
};

constexpr ClassCost kClassCosts[] = {
    {"IPFilter", 120, 256},      {"IPClassifier", 120, 256}, {"Classifier", 120, 256},
    {"LinearIPLookup", 140, 256}, {"ContentMatch", 80, 1024}, {"ChangeEnforcer", 150, 256},
    {"IPRewriter", 90, 256},     {"NatRewriter", 110, 256},  {"UDPTunnelEncap", 70, 512},
    {"UDPTunnelDecap", 70, 512}, {"ReverseProxy", 160, 512}, {"TransparentProxy", 160, 512},
    {"DnsGeoServer", 130, 512},  {"X86Vm", 400, 512},        {"FlowMeter", 60, 256},
    {"RateLimiter", 60, 256},
};

constexpr uint64_t kDefaultBaseNs = 50;
constexpr uint64_t kDefaultPerByteX1024 = 256;  // 0.25 ns per byte

}  // namespace

void SetPacketTraceHook(PacketTraceHook hook) {
  GlobalTraceHook() = std::move(hook);
  Element::trace_enabled_ = static_cast<bool>(GlobalTraceHook());
}

void Element::Trace(int out_port, const Packet& packet) const {
  const PacketTraceHook& hook = GlobalTraceHook();
  if (hook) {
    hook(*this, out_port, packet);
  }
}

bool Element::Configure(const std::string& args, std::string* error) {
  if (!args.empty()) {
    *error = std::string(class_name()) + " takes no configuration, got '" + args + "'";
    return false;
  }
  return true;
}

void Element::ConnectOutput(int out_port, Element* target, int target_port) {
  if (out_port >= 0 && static_cast<size_t>(out_port) < outputs_.size()) {
    outputs_[static_cast<size_t>(out_port)] = PortTarget{target, target_port};
  }
}

void Element::SetPorts(int inputs, int outputs) {
  n_inputs_ = inputs;
  n_outputs_ = outputs;
  outputs_.assign(static_cast<size_t>(outputs < 0 ? 0 : outputs), PortTarget{});
  port_packets_.assign(outputs_.size(), 0);
}

void Element::ForwardProfiled(const PortTarget& target, Packet& packet) {
  GraphProfiler* profiler = context_->profiler;
  profiler->EnterElement(*target.element, packet, target.port);
  target.element->Push(target.port, packet);
  profiler->ExitElement();
}

void Element::InitCostModel() const {
  cost_base_ns_ = kDefaultBaseNs;
  cost_per_byte_x1024_ = kDefaultPerByteX1024;
  for (const ClassCost& cost : kClassCosts) {
    if (cost.class_name == class_name()) {
      cost_base_ns_ = cost.base_ns;
      cost_per_byte_x1024_ = cost.per_byte_x1024;
      break;
    }
  }
  cost_ready_ = true;
}

}  // namespace innet::click
