// The built-in element library. Every class here has a matching symbolic
// model in src/symexec/click_models.cc; the controller only admits
// configurations whose classes appear in both.
#ifndef SRC_CLICK_ELEMENTS_H_
#define SRC_CLICK_ELEMENTS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/click/element.h"
#include "src/netcore/flowspec.h"
#include "src/netcore/ip.h"

namespace innet::click {

// --- Sources and sinks --------------------------------------------------------

// Ingress from the platform's virtual NIC. The graph injects packets here.
class FromNetfront : public Element {
 public:
  FromNetfront() { SetPorts(1, 1); }
  std::string_view class_name() const override { return "FromNetfront"; }
  void Push(int port, Packet& packet) override;
};

// Egress to the platform's virtual NIC. Counts traffic; the platform attaches
// a handler to hand packets back to the software switch.
class ToNetfront : public Element {
 public:
  using Handler = std::function<void(Packet&)>;
  ToNetfront() { SetPorts(1, 0); }
  std::string_view class_name() const override { return "ToNetfront"; }
  void Push(int port, Packet& packet) override;

  void set_handler(Handler handler) { handler_ = std::move(handler); }
  uint64_t packet_count() const { return packet_count_; }
  uint64_t byte_count() const { return byte_count_; }

 private:
  Handler handler_;
  uint64_t packet_count_ = 0;
  uint64_t byte_count_ = 0;
};

class Discard : public Element {
 public:
  Discard() { SetPorts(1, 0); }
  std::string_view class_name() const override { return "Discard"; }
  void Push(int port, Packet& packet) override;
  uint64_t packet_count() const { return packet_count_; }

 private:
  uint64_t packet_count_ = 0;
};

// --- Pass-through utilities ---------------------------------------------------

class Counter : public Element {
 public:
  std::string_view class_name() const override { return "Counter"; }
  void Push(int port, Packet& packet) override;
  uint64_t packet_count() const { return packet_count_; }
  uint64_t byte_count() const { return byte_count_; }

 private:
  uint64_t packet_count_ = 0;
  uint64_t byte_count_ = 0;
};

// Tee(N): copies each packet to N outputs.
class Tee : public Element {
 public:
  std::string_view class_name() const override { return "Tee"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Push(int port, Packet& packet) override;
};

// --- Classification -----------------------------------------------------------

// IPFilter(allow <flowspec>, deny <flowspec>, ...): first matching rule wins;
// unmatched packets are dropped (Click's default-deny).
class IPFilter : public Element {
 public:
  std::string_view class_name() const override { return "IPFilter"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Push(int port, Packet& packet) override;

  struct Rule {
    bool allow;
    FlowSpec spec;  // wildcard spec encodes "all"
  };
  const std::vector<Rule>& rules() const { return rules_; }

 private:
  std::vector<Rule> rules_;
};

// IPClassifier(pattern, pattern, ..., -): one output per pattern, first match
// wins; "-" matches everything. Unmatched packets are dropped.
class IPClassifier : public Element {
 public:
  std::string_view class_name() const override { return "IPClassifier"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Push(int port, Packet& packet) override;
  const std::vector<FlowSpec>& patterns() const { return patterns_; }

 private:
  std::vector<FlowSpec> patterns_;
};

// Classifier: byte-offset classification in real Click; In-Net restricts it
// to the same flow patterns as IPClassifier.
class Classifier : public IPClassifier {
 public:
  std::string_view class_name() const override { return "Classifier"; }
};

// --- Header rewriting -----------------------------------------------------------

// IPRewriter(pattern SADDR SPORT DADDR DPORT X Y): rewrites the fields that
// are not "-". Trailing numbers (output ports in real Click) are accepted and
// ignored beyond validation.
class IPRewriter : public Element {
 public:
  std::string_view class_name() const override { return "IPRewriter"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Push(int port, Packet& packet) override;

  const std::optional<Ipv4Address>& new_src() const { return new_src_; }
  const std::optional<Ipv4Address>& new_dst() const { return new_dst_; }
  const std::optional<uint16_t>& new_sport() const { return new_sport_; }
  const std::optional<uint16_t>& new_dport() const { return new_dport_; }

 private:
  std::optional<Ipv4Address> new_src_;
  std::optional<Ipv4Address> new_dst_;
  std::optional<uint16_t> new_sport_;
  std::optional<uint16_t> new_dport_;
};

class SetIPSrc : public Element {
 public:
  std::string_view class_name() const override { return "SetIPSrc"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Push(int port, Packet& packet) override;
  Ipv4Address addr() const { return addr_; }

 private:
  Ipv4Address addr_;
};

class SetIPDst : public Element {
 public:
  std::string_view class_name() const override { return "SetIPDst"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Push(int port, Packet& packet) override;
  Ipv4Address addr() const { return addr_; }

 private:
  Ipv4Address addr_;
};

class DecIPTTL : public Element {
 public:
  std::string_view class_name() const override { return "DecIPTTL"; }
  void Push(int port, Packet& packet) override;
};

class CheckIPHeader : public Element {
 public:
  std::string_view class_name() const override { return "CheckIPHeader"; }
  void Push(int port, Packet& packet) override;
};

// --- Queueing / batching --------------------------------------------------------

// TimedUnqueue(INTERVAL_SEC, BURST): the paper's batcher. Queues packets and
// releases up to BURST every INTERVAL seconds. Degenerates to pass-through
// when the graph has no clock (pure-throughput benchmarks).
class TimedUnqueue : public Element {
 public:
  std::string_view class_name() const override { return "TimedUnqueue"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Initialize(ElementContext* context) override;
  void Push(int port, Packet& packet) override;

  double interval_sec() const { return interval_sec_; }
  int burst() const { return burst_; }
  size_t queued() const { return queue_.size(); }
  uint64_t queue_depth() const override { return queue_.size(); }

 private:
  void Fire();

  double interval_sec_ = 1.0;
  int burst_ = 1;
  std::deque<Packet> queue_;
  bool timer_armed_ = false;
};

// Queue(CAPACITY): FIFO with tail drop; forwards immediately when the
// downstream is connected (push-to-push adapter), so it acts as an overflow
// guard in this engine.
class Queue : public Element {
 public:
  std::string_view class_name() const override { return "Queue"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Push(int port, Packet& packet) override;
  uint64_t queue_depth() const override { return depth_; }

 private:
  size_t capacity_ = 1000;
  size_t depth_ = 0;
};

// --- Stateful / security ---------------------------------------------------------

// ChangeEnforcer(ALLOW a.b.c.d ..., TIMEOUT sec): the paper's sandboxing
// element (§4.4). Port 0 carries inbound traffic (outside -> module): the
// source is recorded as an implicitly-authorized peer and the packet is
// forwarded on output 0. Port 1 carries outbound traffic (module -> outside):
// packets pass (output 1) only when the destination is whitelisted or is an
// authorized peer whose entry has not timed out.
class ChangeEnforcer : public Element {
 public:
  ChangeEnforcer() { SetPorts(2, 2); }
  std::string_view class_name() const override { return "ChangeEnforcer"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Push(int port, Packet& packet) override;

  size_t authorized_peer_count() const { return peers_.size(); }
  uint64_t blocked_count() const { return blocked_; }
  const std::unordered_set<uint32_t>& whitelist() const { return whitelist_; }

 private:
  std::unordered_map<uint32_t, uint64_t> peers_;  // addr -> last-seen ns
  std::unordered_set<uint32_t> whitelist_;
  uint64_t timeout_ns_ = 60ull * 1'000'000'000ull;
  uint64_t blocked_ = 0;
};

// FlowMeter: pass-through; tracks distinct 5-tuples and per-flow packet
// counts, like a NetFlow probe.
class FlowMeter : public Element {
 public:
  std::string_view class_name() const override { return "FlowMeter"; }
  void Push(int port, Packet& packet) override;
  size_t flow_count() const { return flows_.size(); }

 private:
  std::unordered_map<uint64_t, uint64_t> flows_;
};

// RateLimiter(RATE_BPS [BURST_BYTES]): token bucket; non-conforming packets
// are dropped. Uses the graph clock when present, else packet timestamps.
class RateLimiter : public Element {
 public:
  std::string_view class_name() const override { return "RateLimiter"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Push(int port, Packet& packet) override;

 private:
  double rate_bps_ = 1e9;
  double burst_bytes_ = 64 * 1024;
  double tokens_ = 64 * 1024;
  uint64_t last_ns_ = 0;
};

// --- Middlebox building blocks ---------------------------------------------------

// ContentMatch(PATTERN): DPI primitive. No match -> output 0; match ->
// output 1 (dropped when unconnected).
class ContentMatch : public Element {
 public:
  ContentMatch() { SetPorts(1, 2); }
  std::string_view class_name() const override { return "ContentMatch"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Push(int port, Packet& packet) override;
  uint64_t match_count() const { return match_count_; }

 private:
  std::string pattern_;
  uint64_t match_count_ = 0;
};

// UDPTunnelEncap(SRC, DST, PORT): wraps the full IP packet in a new
// UDP packet addressed SRC -> DST:PORT; the inner packet rides as payload.
class UDPTunnelEncap : public Element {
 public:
  std::string_view class_name() const override { return "UDPTunnelEncap"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Push(int port, Packet& packet) override;

  Ipv4Address src() const { return src_; }
  Ipv4Address dst() const { return dst_; }
  uint16_t tunnel_port() const { return port_; }

 private:
  Ipv4Address src_;
  Ipv4Address dst_;
  uint16_t port_ = 4789;
};

// UDPTunnelDecap(): unwraps a packet produced by UDPTunnelEncap. The inner
// destination is whatever the tunnel payload says — this is why the paper's
// Table 1 marks tunnels as needing a sandbox for third parties.
class UDPTunnelDecap : public Element {
 public:
  std::string_view class_name() const override { return "UDPTunnelDecap"; }
  void Push(int port, Packet& packet) override;
};

// LinearIPLookup(prefix out, prefix out, ...): longest-prefix routing onto N
// outputs; unmatched packets are dropped.
class LinearIPLookup : public Element {
 public:
  std::string_view class_name() const override { return "LinearIPLookup"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Push(int port, Packet& packet) override;

  struct Route {
    Ipv4Prefix prefix;
    int out_port;
  };
  const std::vector<Route>& routes() const { return routes_; }

 private:
  std::vector<Route> routes_;
};

// NatRewriter(PUBLIC addr): source-NAT. Outbound (port 0): rewrites src to
// the public address, remembers the mapping. Inbound (port 1): restores the
// original destination from the mapping; unknown traffic is dropped.
class NatRewriter : public Element {
 public:
  NatRewriter() { SetPorts(2, 2); }
  std::string_view class_name() const override { return "NatRewriter"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Push(int port, Packet& packet) override;
  size_t mapping_count() const { return mappings_.size(); }
  Ipv4Address public_addr() const { return public_addr_; }

 private:
  Ipv4Address public_addr_;
  uint16_t next_port_ = 10000;
  // (proto, inner src ip, inner src port) -> public port, and the reverse.
  std::unordered_map<uint64_t, uint16_t> mappings_;
  std::unordered_map<uint16_t, std::pair<uint32_t, uint16_t>> reverse_;
};

// --- Stock processing modules (§4.1) ----------------------------------------------

// DnsGeoServer(): answers UDP port-53 queries by swapping addresses/ports —
// the response goes back to the requester (implicit authorization).
class DnsGeoServer : public Element {
 public:
  std::string_view class_name() const override { return "DnsGeoServer"; }
  void Push(int port, Packet& packet) override;
  uint64_t query_count() const { return query_count_; }

 private:
  uint64_t query_count_ = 0;
};

// ReverseProxy(SELF self, ORIGIN origin): serves cached responses back to the
// requester (output 0) and fetches misses from the whitelisted origin as
// itself (output 1).
class ReverseProxy : public Element {
 public:
  ReverseProxy() { SetPorts(1, 2); }
  std::string_view class_name() const override { return "ReverseProxy"; }
  bool Configure(const std::string& args, std::string* error) override;
  void Push(int port, Packet& packet) override;

  Ipv4Address self() const { return self_; }
  Ipv4Address origin() const { return origin_; }

 private:
  Ipv4Address self_;
  Ipv4Address origin_;
  uint64_t counter_ = 0;
  double hit_ratio_ = 0.8;
};

// X86Vm(): placeholder for an arbitrary x86 VM. At runtime it forwards
// unchanged; its symbolic model is fully opaque (everything becomes a fresh
// unknown), which forces sandboxing — matching Table 1.
class X86Vm : public Element {
 public:
  std::string_view class_name() const override { return "X86Vm"; }
  void Push(int port, Packet& packet) override;
};

// TransparentProxy(): intercepts transit traffic and may rewrite payloads
// while preserving the original addressing — which is exactly why Table 1
// rejects it for non-operator tenants (it relays attacker-addressed traffic).
class TransparentProxy : public Element {
 public:
  std::string_view class_name() const override { return "TransparentProxy"; }
  void Push(int port, Packet& packet) override;
  uint64_t proxied_count() const { return proxied_count_; }

 private:
  uint64_t proxied_count_ = 0;
};

}  // namespace innet::click

#endif  // SRC_CLICK_ELEMENTS_H_
