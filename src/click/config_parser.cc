#include "src/click/config_parser.h"

#include <cctype>
#include <sstream>
#include <unordered_map>

namespace innet::click {
namespace {

enum class TokenKind { kIdent, kNumber, kArrow, kDoubleColon, kLBracket, kRBracket,
                       kLBrace, kRBrace, kSemicolon, kArgs, kEnd };

struct Token {
  TokenKind kind;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  // Returns false and sets *error on malformed input.
  bool Tokenize(std::vector<Token>* tokens, std::string* error) {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') {
          ++pos_;
        }
        continue;
      }
      if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '*') {
        size_t close = text_.find("*/", pos_ + 2);
        if (close == std::string::npos) {
          *error = "unterminated block comment";
          return false;
        }
        pos_ = close + 2;
        continue;
      }
      if (c == '-' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
        tokens->push_back({TokenKind::kArrow, "->"});
        pos_ += 2;
        continue;
      }
      if (c == ':' && pos_ + 1 < text_.size() && text_[pos_ + 1] == ':') {
        tokens->push_back({TokenKind::kDoubleColon, "::"});
        pos_ += 2;
        continue;
      }
      if (c == '[') {
        tokens->push_back({TokenKind::kLBracket, "["});
        ++pos_;
        continue;
      }
      if (c == ']') {
        tokens->push_back({TokenKind::kRBracket, "]"});
        ++pos_;
        continue;
      }
      if (c == ';') {
        tokens->push_back({TokenKind::kSemicolon, ";"});
        ++pos_;
        continue;
      }
      if (c == '{') {
        tokens->push_back({TokenKind::kLBrace, "{"});
        ++pos_;
        continue;
      }
      if (c == '}') {
        tokens->push_back({TokenKind::kRBrace, "}"});
        ++pos_;
        continue;
      }
      if (c == '(') {
        // Capture the balanced-paren argument string verbatim.
        int depth = 0;
        size_t start = pos_ + 1;
        size_t i = pos_;
        for (; i < text_.size(); ++i) {
          if (text_[i] == '(') {
            ++depth;
          } else if (text_[i] == ')') {
            if (--depth == 0) {
              break;
            }
          }
        }
        if (depth != 0) {
          *error = "unbalanced parentheses";
          return false;
        }
        tokens->push_back({TokenKind::kArgs, text_.substr(start, i - start)});
        pos_ = i + 1;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t start = pos_;
        while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
          ++pos_;
        }
        tokens->push_back({TokenKind::kNumber, text_.substr(start, pos_ - start)});
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        // '@' is allowed inside identifiers so generated anonymous-element
        // names ("Counter@2") survive a ToString/Parse round trip; '.' so
        // expanded compound-element names ("fw.filter") do too.
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_' ||
                text_[pos_] == '@' || text_[pos_] == '.')) {
          ++pos_;
        }
        tokens->push_back({TokenKind::kIdent, text_.substr(start, pos_ - start)});
        continue;
      }
      *error = std::string("unexpected character '") + c + "'";
      return false;
    }
    tokens->push_back({TokenKind::kEnd, ""});
    return true;
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

// Bodies of `elementclass` definitions, keyed by class name. The pseudo
// element class used for a body's input/output ports.
constexpr const char* kPortPseudoClass = "__port__";
using CompoundMap = std::unordered_map<std::string, ConfigGraph>;

class Parser {
 public:
  // Non-nested parser: owns the token vector.
  Parser(std::vector<Token> tokens, ConfigGraph* out, CompoundMap* compounds)
      : owned_tokens_(std::move(tokens)),
        tokens_(owned_tokens_),
        out_(out),
        compounds_(compounds) {}

  bool Parse(std::string* error) {
    while (Peek().kind != TokenKind::kEnd) {
      if (nested_ && Peek().kind == TokenKind::kRBrace) {
        ++pos_;
        return true;
      }
      if (Peek().kind == TokenKind::kSemicolon) {
        ++pos_;
        continue;
      }
      if (!ParseStatement(error)) {
        return false;
      }
    }
    if (nested_) {
      *error = "unterminated elementclass body";
      return false;
    }
    return true;
  }

  size_t position() const { return pos_; }

 private:
  // Nested parser over a shared token stream (an elementclass body).
  Parser(const std::vector<Token>& tokens, size_t start, ConfigGraph* out,
         CompoundMap* compounds)
      : tokens_(tokens), pos_(start), out_(out), compounds_(compounds), nested_(true) {
    // The body's port pseudo-elements are implicitly declared.
    DeclarePseudo("input");
    DeclarePseudo("output");
  }

  void DeclarePseudo(const std::string& name) {
    declared_.insert({name, out_->elements.size()});
    out_->elements.push_back({name, kPortPseudoClass, ""});
  }

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  bool Expect(TokenKind kind, const char* what, std::string* error) {
    if (Peek().kind != kind) {
      *error = std::string("expected ") + what + " near '" + Peek().text + "'";
      return false;
    }
    ++pos_;
    return true;
  }

  bool DeclareElement(const std::string& name, const std::string& class_name,
                      const std::string& args, std::string* error) {
    if (declared_.count(name) != 0) {
      *error = "duplicate element name '" + name + "'";
      return false;
    }
    declared_.insert({name, out_->elements.size()});
    out_->elements.push_back({name, class_name, args});
    return true;
  }

  // Parses one endpoint of a connection chain. On success sets *name, and
  // *in_port / *out_port when the [n] syntax is present.
  bool ParseEndpoint(std::string* name, int* in_port, int* out_port, std::string* error) {
    *in_port = 0;
    *out_port = 0;
    if (Peek().kind == TokenKind::kLBracket) {
      ++pos_;
      if (Peek().kind != TokenKind::kNumber) {
        *error = "expected port number after '['";
        return false;
      }
      *in_port = std::stoi(Peek().text);
      ++pos_;
      if (!Expect(TokenKind::kRBracket, "']'", error)) {
        return false;
      }
    }
    if (Peek().kind != TokenKind::kIdent) {
      *error = "expected element reference near '" + Peek().text + "'";
      return false;
    }
    std::string ident = Peek().text;
    ++pos_;

    if (Peek().kind == TokenKind::kDoubleColon) {
      // Inline declaration: name :: Class(args)
      ++pos_;
      if (Peek().kind != TokenKind::kIdent) {
        *error = "expected class name after '::'";
        return false;
      }
      std::string class_name = Peek().text;
      ++pos_;
      std::string args;
      if (Peek().kind == TokenKind::kArgs) {
        args = Peek().text;
        ++pos_;
      }
      if (!DeclareElement(ident, class_name, args, error)) {
        return false;
      }
      *name = ident;
    } else if (Peek().kind == TokenKind::kArgs ||
               (declared_.count(ident) == 0 && !ident.empty() &&
                std::isupper(static_cast<unsigned char>(ident[0])))) {
      // Anonymous element: Class or Class(args).
      std::string args;
      if (Peek().kind == TokenKind::kArgs) {
        args = Peek().text;
        ++pos_;
      }
      std::string anon = ident + "@" + std::to_string(out_->elements.size());
      if (!DeclareElement(anon, ident, args, error)) {
        return false;
      }
      *name = anon;
    } else {
      if (declared_.count(ident) == 0) {
        *error = "reference to undeclared element '" + ident + "'";
        return false;
      }
      *name = ident;
    }

    if (Peek().kind == TokenKind::kLBracket) {
      ++pos_;
      if (Peek().kind != TokenKind::kNumber) {
        *error = "expected port number after '['";
        return false;
      }
      *out_port = std::stoi(Peek().text);
      ++pos_;
      if (!Expect(TokenKind::kRBracket, "']'", error)) {
        return false;
      }
    }
    return true;
  }

  bool ParseStatement(std::string* error) {
    // elementclass Name { ... } — top level only.
    if (Peek().kind == TokenKind::kIdent && Peek().text == "elementclass") {
      if (nested_) {
        *error = "elementclass definitions cannot nest";
        return false;
      }
      ++pos_;
      if (Peek().kind != TokenKind::kIdent) {
        *error = "expected a class name after 'elementclass'";
        return false;
      }
      std::string class_name = Peek().text;
      ++pos_;
      if (!Expect(TokenKind::kLBrace, "'{'", error)) {
        return false;
      }
      ConfigGraph body;
      Parser body_parser(tokens_, pos_, &body, compounds_);
      if (!body_parser.Parse(error)) {
        return false;
      }
      pos_ = body_parser.position();
      if (compounds_->count(class_name) != 0) {
        *error = "duplicate elementclass '" + class_name + "'";
        return false;
      }
      compounds_->emplace(class_name, std::move(body));
      // Optional trailing ';'.
      if (Peek().kind == TokenKind::kSemicolon) {
        ++pos_;
      }
      return true;
    }

    // Standalone declaration: ident :: Class(args) ;  — but this is also the
    // prefix of a connection chain, so parse an endpoint first and look for
    // '->'.
    std::string from;
    int from_in = 0;
    int from_out = 0;
    if (!ParseEndpoint(&from, &from_in, &from_out, error)) {
      return false;
    }
    while (Peek().kind == TokenKind::kArrow) {
      ++pos_;
      std::string to;
      int to_in = 0;
      int to_out = 0;
      if (!ParseEndpoint(&to, &to_in, &to_out, error)) {
        return false;
      }
      out_->connections.push_back({from, from_out, to, to_in});
      from = to;
      from_out = to_out;
    }
    return Expect(TokenKind::kSemicolon, "';'", error);
  }

  std::vector<Token> owned_tokens_;
  const std::vector<Token>& tokens_;
  size_t pos_ = 0;
  ConfigGraph* out_;
  CompoundMap* compounds_;
  bool nested_ = false;
  std::unordered_map<std::string, size_t> declared_;
};

// --- Compound expansion -----------------------------------------------------------

// Inlines one instantiation of a compound class into `graph`.
bool InlineCompound(ConfigGraph* graph, size_t decl_index, const ConfigGraph& body,
                    std::string* error) {
  const std::string instance = graph->elements[decl_index].name;
  const std::string prefix = instance + ".";

  // Where the body's input/output ports lead.
  //   input[q] -> (x, r)   : traffic entering the compound on port q
  //   (y, r) -> output[q]  : traffic leaving on port q
  std::unordered_map<int, std::vector<std::pair<std::string, int>>> in_map;
  std::unordered_map<int, std::vector<std::pair<std::string, int>>> out_map;
  std::vector<Connection> internal;
  for (const Connection& conn : body.connections) {
    bool from_input = conn.from == "input";
    bool to_output = conn.to == "output";
    if (from_input && to_output) {
      *error = "compound '" + instance + "': input wired directly to output is unsupported";
      return false;
    }
    if (from_input) {
      in_map[conn.from_port].emplace_back(conn.to, conn.to_port);
    } else if (to_output) {
      out_map[conn.to_port].emplace_back(conn.from, conn.from_port);
    } else {
      internal.push_back(conn);
    }
  }

  // Replace the declaration with the body's (prefixed) elements.
  std::vector<ElementDecl> new_elements;
  for (size_t i = 0; i < graph->elements.size(); ++i) {
    if (i != decl_index) {
      new_elements.push_back(graph->elements[i]);
    }
  }
  for (const ElementDecl& decl : body.elements) {
    if (decl.class_name != kPortPseudoClass) {
      new_elements.push_back({prefix + decl.name, decl.class_name, decl.args});
    }
  }

  // Rewire: connections touching the instance splice through the port maps.
  std::vector<Connection> new_connections;
  for (const Connection& conn : graph->connections) {
    std::vector<Connection> expanded = {conn};
    if (conn.to == instance) {
      std::vector<Connection> next;
      for (const Connection& e : expanded) {
        auto targets = in_map.find(e.to_port);
        if (targets == in_map.end()) {
          *error = "compound '" + instance + "' has no input port " +
                   std::to_string(e.to_port);
          return false;
        }
        for (const auto& [x, r] : targets->second) {
          next.push_back({e.from, e.from_port, prefix + x, r});
        }
      }
      expanded = std::move(next);
    }
    if (conn.from == instance) {
      std::vector<Connection> next;
      for (const Connection& e : expanded) {
        auto sources = out_map.find(conn.from_port);
        if (sources == out_map.end()) {
          *error = "compound '" + instance + "' has no output port " +
                   std::to_string(conn.from_port);
          return false;
        }
        for (const auto& [y, r] : sources->second) {
          next.push_back({prefix + y, r, e.to, e.to_port});
        }
      }
      expanded = std::move(next);
    }
    for (Connection& e : expanded) {
      new_connections.push_back(std::move(e));
    }
  }
  for (const Connection& conn : internal) {
    new_connections.push_back(
        {prefix + conn.from, conn.from_port, prefix + conn.to, conn.to_port});
  }

  graph->elements = std::move(new_elements);
  graph->connections = std::move(new_connections);
  return true;
}

// Repeatedly inlines compound instantiations (compounds may use compounds).
bool ExpandCompounds(ConfigGraph* graph, const CompoundMap& compounds, std::string* error) {
  for (int depth = 0; depth < 16; ++depth) {
    size_t target = graph->elements.size();
    for (size_t i = 0; i < graph->elements.size(); ++i) {
      if (compounds.count(graph->elements[i].class_name) != 0) {
        target = i;
        break;
      }
    }
    if (target == graph->elements.size()) {
      return true;
    }
    const ConfigGraph& body = compounds.at(graph->elements[target].class_name);
    if (!InlineCompound(graph, target, body, error)) {
      return false;
    }
  }
  *error = "elementclass expansion too deep (cycle?)";
  return false;
}

}  // namespace

std::optional<ConfigGraph> ConfigGraph::Parse(const std::string& text, std::string* error) {
  ConfigGraph graph;
  std::vector<Token> tokens;
  Lexer lexer(text);
  std::string local_error;
  if (error == nullptr) {
    error = &local_error;
  }
  if (!lexer.Tokenize(&tokens, error)) {
    return std::nullopt;
  }
  CompoundMap compounds;
  Parser parser(std::move(tokens), &graph, &compounds);
  if (!parser.Parse(error)) {
    return std::nullopt;
  }
  if (!compounds.empty() && !ExpandCompounds(&graph, compounds, error)) {
    return std::nullopt;
  }
  return graph;
}

const ElementDecl* ConfigGraph::FindElement(const std::string& name) const {
  for (const ElementDecl& decl : elements) {
    if (decl.name == name) {
      return &decl;
    }
  }
  return nullptr;
}

std::string ConfigGraph::ToString() const {
  std::ostringstream out;
  for (const ElementDecl& decl : elements) {
    out << decl.name << " :: " << decl.class_name << "(" << decl.args << ");\n";
  }
  for (const Connection& conn : connections) {
    out << conn.from;
    if (conn.from_port != 0) {
      out << "[" << conn.from_port << "]";
    }
    out << " -> ";
    if (conn.to_port != 0) {
      out << "[" << conn.to_port << "]";
    }
    out << conn.to << ";\n";
  }
  return out.str();
}

}  // namespace innet::click
