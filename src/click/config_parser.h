// Parser for the Click configuration language subset In-Net clients use.
//
// Supported syntax:
//   // line comments and /* block comments */
//   name :: Class(arg1, arg2);          declarations
//   a -> b -> c;                        connection chains
//   a [1] -> [0] b;                     explicit ports
//   src -> Class(args) -> dst;          anonymous elements in chains
//   src -> name2 :: Class(args) -> x;   inline named declarations
//   elementclass Name { input -> ... -> output; };   compound elements
//
// Compound elements are expanded at parse time: each instantiation inlines
// the body with element names prefixed "<instance>." and the body's
// input/output pseudo-ports spliced onto the instance's connections.
//
// The parser produces a pure AST (ConfigGraph); instantiation against the
// element registry happens in src/click/graph.h. The same AST feeds the
// symbolic model builder in src/symexec/, which is what lets the controller
// analyze a configuration without running it.
#ifndef SRC_CLICK_CONFIG_PARSER_H_
#define SRC_CLICK_CONFIG_PARSER_H_

#include <optional>
#include <string>
#include <vector>

namespace innet::click {

struct ElementDecl {
  std::string name;
  std::string class_name;
  std::string args;
};

struct Connection {
  std::string from;
  int from_port = 0;
  std::string to;
  int to_port = 0;
};

struct ConfigGraph {
  std::vector<ElementDecl> elements;
  std::vector<Connection> connections;

  // Returns nullopt and fills *error on syntax errors (duplicate names,
  // references to undeclared elements, malformed tokens).
  static std::optional<ConfigGraph> Parse(const std::string& text, std::string* error);

  const ElementDecl* FindElement(const std::string& name) const;

  // Renders back to canonical Click syntax (used by the consolidator to build
  // merged multi-tenant configurations).
  std::string ToString() const;
};

}  // namespace innet::click

#endif  // SRC_CLICK_CONFIG_PARSER_H_
