// A small, fast, seedable PRNG (xoshiro256**) plus the distributions the
// experiments need. Deterministic across platforms, unlike <random> engines'
// distribution implementations.
#ifndef SRC_SIM_RNG_H_
#define SRC_SIM_RNG_H_

#include <cmath>
#include <cstdint>

namespace innet::sim {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Uniform integer in [0, bound).
  uint64_t NextBelow(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Exponential with mean `mean`.
  double Exponential(double mean) { return -mean * std::log1p(-NextDouble()); }

  // Standard normal via Box-Muller (single draw; second value discarded for
  // determinism simplicity).
  double Normal(double mu, double sigma) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) {
      u1 = 1e-300;
    }
    return mu + sigma * std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  // Log-normal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

  // Pareto with scale xm and shape alpha.
  double Pareto(double xm, double alpha) {
    return xm / std::pow(1.0 - NextDouble(), 1.0 / alpha);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t state_[4];
};

}  // namespace innet::sim

#endif  // SRC_SIM_RNG_H_
