// A simulated point-to-point link: serialization at a fixed rate, propagation
// delay, Bernoulli loss, and an optional bounded FIFO (drop-tail).
#ifndef SRC_SIM_LINK_H_
#define SRC_SIM_LINK_H_

#include <cstdint>
#include <functional>

#include "src/sim/event_queue.h"
#include "src/sim/rng.h"

namespace innet::sim {

class Link {
 public:
  struct Config {
    double rate_bps = 1e9;
    TimeNs propagation = kMillisecond;
    double loss_prob = 0.0;
    // Maximum queued bytes awaiting serialization; 0 = unbounded.
    uint64_t queue_limit_bytes = 0;
  };

  Link(EventQueue* queue, Rng* rng, const Config& config)
      : queue_(queue), rng_(rng), config_(config) {}

  // Sends `bytes`; invokes `on_delivered` at the receiver unless the packet is
  // lost or the queue overflows. Returns false when dropped at enqueue time
  // (queue overflow); loss on the wire still returns true.
  bool Send(uint64_t bytes, std::function<void()> on_delivered);

  // Bytes currently queued or in flight on the sender side.
  uint64_t backlog_bytes() const { return backlog_bytes_; }
  uint64_t delivered_count() const { return delivered_count_; }
  uint64_t dropped_count() const { return dropped_count_; }

  // One-way latency a `bytes`-sized packet would see on an idle link.
  TimeNs IdleLatency(uint64_t bytes) const {
    return SerializationTime(bytes) + config_.propagation;
  }

 private:
  TimeNs SerializationTime(uint64_t bytes) const {
    return static_cast<TimeNs>(static_cast<double>(bytes) * 8.0 / config_.rate_bps * 1e9);
  }

  EventQueue* queue_;
  Rng* rng_;
  Config config_;
  TimeNs busy_until_ = 0;
  uint64_t backlog_bytes_ = 0;
  uint64_t delivered_count_ = 0;
  uint64_t dropped_count_ = 0;
};

}  // namespace innet::sim

#endif  // SRC_SIM_LINK_H_
