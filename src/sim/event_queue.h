// A deterministic discrete-event simulator core.
//
// Time is simulated nanoseconds. Events scheduled for the same instant fire
// in schedule order (a monotonic sequence number breaks ties), which makes
// every experiment reproducible.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace innet::sim {

using TimeNs = uint64_t;

inline constexpr TimeNs kMicrosecond = 1'000;
inline constexpr TimeNs kMillisecond = 1'000'000;
inline constexpr TimeNs kSecond = 1'000'000'000;

// Converts for readability in experiment code.
constexpr double ToSeconds(TimeNs t) { return static_cast<double>(t) / 1e9; }
constexpr double ToMillis(TimeNs t) { return static_cast<double>(t) / 1e6; }
constexpr TimeNs FromSeconds(double s) { return static_cast<TimeNs>(s * 1e9); }
constexpr TimeNs FromMillis(double ms) { return static_cast<TimeNs>(ms * 1e6); }

class EventQueue {
 public:
  using Action = std::function<void()>;

  TimeNs now() const { return now_; }

  // Schedules `action` at absolute time `when` (clamped to now()).
  void ScheduleAt(TimeNs when, Action action);
  // Schedules `action` `delay` after now().
  void ScheduleAfter(TimeNs delay, Action action) { ScheduleAt(now_ + delay, std::move(action)); }

  // Runs events until the queue is empty or `max_events` were processed.
  // Returns the number of events processed.
  size_t Run(size_t max_events = SIZE_MAX);

  // Runs events with timestamps <= `until`, then sets now() to `until`.
  size_t RunUntil(TimeNs until);

  bool empty() const { return events_.empty(); }
  size_t pending() const { return events_.size(); }

 private:
  struct Event {
    TimeNs when;
    uint64_t seq;
    Action action;
    bool operator>(const Event& other) const {
      return when != other.when ? when > other.when : seq > other.seq;
    }
  };

  TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
};

}  // namespace innet::sim

#endif  // SRC_SIM_EVENT_QUEUE_H_
