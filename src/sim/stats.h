// Sample accumulators and percentile helpers for experiment reporting.
#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace innet::sim {

// Accumulates samples; percentiles sort a copy on demand.
class Samples {
 public:
  void Add(double value) { values_.push_back(value); }
  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double Sum() const {
    double s = 0;
    for (double v : values_) {
      s += v;
    }
    return s;
  }
  double Mean() const { return values_.empty() ? 0.0 : Sum() / static_cast<double>(count()); }
  double Min() const {
    return values_.empty() ? 0.0 : *std::min_element(values_.begin(), values_.end());
  }
  double Max() const {
    return values_.empty() ? 0.0 : *std::max_element(values_.begin(), values_.end());
  }
  double Stddev() const {
    if (values_.size() < 2) {
      return 0.0;
    }
    double mean = Mean();
    double acc = 0;
    for (double v : values_) {
      acc += (v - mean) * (v - mean);
    }
    return std::sqrt(acc / static_cast<double>(values_.size() - 1));
  }

  // `p` in [0, 100]. Nearest-rank on the sorted samples.
  double Percentile(double p) const {
    if (values_.empty()) {
      return 0.0;
    }
    std::vector<double> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }
  double Median() const { return Percentile(50); }

  const std::vector<double>& values() const { return values_; }

  // Empirical CDF as (value, fraction<=value) pairs over `points` quantiles.
  std::vector<std::pair<double, double>> Cdf(int points = 100) const {
    std::vector<std::pair<double, double>> cdf;
    if (values_.empty()) {
      return cdf;
    }
    std::vector<double> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 1; i <= points; ++i) {
      double frac = static_cast<double>(i) / points;
      size_t idx = std::min(sorted.size() - 1,
                            static_cast<size_t>(frac * static_cast<double>(sorted.size())));
      cdf.emplace_back(sorted[idx], frac);
    }
    return cdf;
  }

 private:
  std::vector<double> values_;
};

}  // namespace innet::sim

#endif  // SRC_SIM_STATS_H_
