// Sample accumulators and percentile helpers for experiment reporting.
#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/metrics.h"

namespace innet::sim {

// Accumulates samples; order-dependent queries share one cached sorted view,
// rebuilt lazily after the next Add instead of sorting per call.
class Samples {
 public:
  void Add(double value) {
    values_.push_back(value);
    sorted_dirty_ = true;
  }
  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double Sum() const {
    double s = 0;
    for (double v : values_) {
      s += v;
    }
    return s;
  }
  double Mean() const { return values_.empty() ? 0.0 : Sum() / static_cast<double>(count()); }
  double Min() const { return values_.empty() ? 0.0 : Sorted().front(); }
  double Max() const { return values_.empty() ? 0.0 : Sorted().back(); }
  double Stddev() const {
    if (values_.size() < 2) {
      return 0.0;
    }
    double mean = Mean();
    double acc = 0;
    for (double v : values_) {
      acc += (v - mean) * (v - mean);
    }
    return std::sqrt(acc / static_cast<double>(values_.size() - 1));
  }

  // `p` in [0, 100]. Nearest-rank on the sorted samples.
  double Percentile(double p) const {
    if (values_.empty()) {
      return 0.0;
    }
    const std::vector<double>& sorted = Sorted();
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }
  double Median() const { return Percentile(50); }

  const std::vector<double>& values() const { return values_; }

  // Empirical CDF as (value, fraction<=value) pairs over `points` quantiles.
  std::vector<std::pair<double, double>> Cdf(int points = 100) const {
    std::vector<std::pair<double, double>> cdf;
    if (values_.empty()) {
      return cdf;
    }
    const std::vector<double>& sorted = Sorted();
    for (int i = 1; i <= points; ++i) {
      double frac = static_cast<double>(i) / points;
      size_t idx = std::min(sorted.size() - 1,
                            static_cast<size_t>(frac * static_cast<double>(sorted.size())));
      cdf.emplace_back(sorted[idx], frac);
    }
    return cdf;
  }

  // Bridge into the metrics types: replays every sample into `histogram`
  // (whose buckets were fixed at registration).
  void ToHistogram(obs::Histogram* histogram) const {
    for (double v : values_) {
      histogram->Observe(v);
    }
  }

  // Compact summary for bench snapshots.
  obs::json::Value SummaryJson() const {
    obs::json::Value out = obs::json::Value::Object();
    out.Set("count", static_cast<uint64_t>(count()));
    out.Set("mean", Mean());
    out.Set("min", Min());
    out.Set("max", Max());
    out.Set("p50", Percentile(50));
    out.Set("p90", Percentile(90));
    out.Set("p99", Percentile(99));
    return out;
  }

 private:
  const std::vector<double>& Sorted() const {
    if (sorted_dirty_) {
      sorted_ = values_;
      std::sort(sorted_.begin(), sorted_.end());
      sorted_dirty_ = false;
    }
    return sorted_;
  }

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_dirty_ = false;
};

}  // namespace innet::sim

#endif  // SRC_SIM_STATS_H_
