#include "src/sim/fault_injector.h"

namespace innet::sim {

bool FaultInjector::ShouldFailBoot() {
  if (plan_.boot_failure_p <= 0.0) {
    return false;
  }
  bool fail = rng_.Bernoulli(plan_.boot_failure_p);
  if (fail) {
    ++boot_failures_injected_;
  }
  return fail;
}

TimeNs FaultInjector::NextCrashDelay() {
  if (plan_.crash_mean_uptime_s <= 0.0) {
    return 0;
  }
  ++crashes_scheduled_;
  TimeNs delay = FromSeconds(rng_.Exponential(plan_.crash_mean_uptime_s));
  // A zero delay would crash the VM in the same event that made it running;
  // round up so the crash is always a distinct, later event.
  return delay == 0 ? 1 : delay;
}

bool FaultInjector::ShouldDropPacket() {
  if (plan_.packet_drop_p <= 0.0 || !rng_.Bernoulli(plan_.packet_drop_p)) {
    return false;
  }
  ++packets_dropped_;
  return true;
}

bool FaultInjector::ShouldCorruptPacket() {
  if (plan_.packet_corrupt_p <= 0.0 || !rng_.Bernoulli(plan_.packet_corrupt_p)) {
    return false;
  }
  ++packets_corrupted_;
  return true;
}

}  // namespace innet::sim
