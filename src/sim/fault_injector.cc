#include "src/sim/fault_injector.h"

namespace innet::sim {

bool FaultInjector::ShouldFailBoot() {
  if (plan_.boot_failure_p <= 0.0) {
    return false;
  }
  bool fail = rng_.Bernoulli(plan_.boot_failure_p);
  if (fail) {
    ++boot_failures_injected_;
  }
  return fail;
}

TimeNs FaultInjector::NextCrashDelay() {
  if (plan_.crash_mean_uptime_s <= 0.0) {
    return 0;
  }
  ++crashes_scheduled_;
  TimeNs delay = FromSeconds(rng_.Exponential(plan_.crash_mean_uptime_s));
  // A zero delay would crash the VM in the same event that made it running;
  // round up so the crash is always a distinct, later event.
  return delay == 0 ? 1 : delay;
}

bool FaultInjector::ShouldDropPacket() {
  if (plan_.packet_drop_p <= 0.0 || !rng_.Bernoulli(plan_.packet_drop_p)) {
    return false;
  }
  ++packets_dropped_;
  return true;
}

bool FaultInjector::ShouldCorruptPacket() {
  if (plan_.packet_corrupt_p <= 0.0 || !rng_.Bernoulli(plan_.packet_corrupt_p)) {
    return false;
  }
  ++packets_corrupted_;
  return true;
}

bool FaultInjector::ShouldDropControl() {
  if (plan_.control_loss_p <= 0.0 || !rng_.Bernoulli(plan_.control_loss_p)) {
    return false;
  }
  ++control_dropped_;
  return true;
}

bool FaultInjector::ShouldDuplicateControl() {
  if (plan_.control_dup_p <= 0.0 || !rng_.Bernoulli(plan_.control_dup_p)) {
    return false;
  }
  ++control_duplicated_;
  return true;
}

bool FaultInjector::ShouldReorderControl() {
  if (plan_.control_reorder_p <= 0.0 || !rng_.Bernoulli(plan_.control_reorder_p)) {
    return false;
  }
  ++control_reordered_;
  return true;
}

TimeNs FaultInjector::ControlDelay() {
  if (plan_.control_delay_mean_ms <= 0.0) {
    return 0;
  }
  return FromSeconds(rng_.Exponential(plan_.control_delay_mean_ms / 1e3));
}

TimeNs FaultInjector::ControlReorderPenalty() {
  // A full millisecond plus three extra delay draws: enough to land after
  // any message sent within the mean-delay window that follows.
  TimeNs penalty = kMillisecond;
  for (int i = 0; i < 3; ++i) {
    penalty += ControlDelay();
  }
  return penalty;
}

bool FaultInjector::ShouldDropRegion() {
  if (plan_.region_loss_p <= 0.0 || !rng_.Bernoulli(plan_.region_loss_p)) {
    return false;
  }
  ++region_dropped_;
  return true;
}

bool FaultInjector::ShouldDuplicateRegion() {
  if (plan_.region_dup_p <= 0.0 || !rng_.Bernoulli(plan_.region_dup_p)) {
    return false;
  }
  ++region_duplicated_;
  return true;
}

bool FaultInjector::ShouldReorderRegion() {
  if (plan_.region_reorder_p <= 0.0 || !rng_.Bernoulli(plan_.region_reorder_p)) {
    return false;
  }
  ++region_reordered_;
  return true;
}

TimeNs FaultInjector::RegionDelay() {
  if (plan_.region_delay_mean_ms <= 0.0) {
    return 0;
  }
  return FromSeconds(rng_.Exponential(plan_.region_delay_mean_ms / 1e3));
}

TimeNs FaultInjector::RegionReorderPenalty() {
  TimeNs penalty = kMillisecond;
  for (int i = 0; i < 3; ++i) {
    penalty += RegionDelay();
  }
  return penalty;
}

}  // namespace innet::sim
