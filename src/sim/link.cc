#include "src/sim/link.h"

#include <algorithm>

namespace innet::sim {

bool Link::Send(uint64_t bytes, std::function<void()> on_delivered) {
  if (config_.queue_limit_bytes != 0 && backlog_bytes_ + bytes > config_.queue_limit_bytes) {
    ++dropped_count_;
    return false;
  }
  TimeNs start = std::max(queue_->now(), busy_until_);
  TimeNs tx_done = start + SerializationTime(bytes);
  busy_until_ = tx_done;
  backlog_bytes_ += bytes;

  bool lost = config_.loss_prob > 0.0 && rng_->Bernoulli(config_.loss_prob);
  // Sender-side backlog drains when serialization completes.
  queue_->ScheduleAt(tx_done, [this, bytes] { backlog_bytes_ -= bytes; });
  if (lost) {
    ++dropped_count_;
    return true;  // consumed link capacity, but never delivered
  }
  queue_->ScheduleAt(tx_done + config_.propagation,
                     [this, cb = std::move(on_delivered)]() mutable {
                       ++delivered_count_;
                       cb();
                     });
  return true;
}

}  // namespace innet::sim
