// Deterministic fault injection for availability experiments. A FaultPlan
// describes *what* can go wrong (boot failures, VM crashes, slow
// suspend/resume, switch-level packet drops/corruption); the FaultInjector
// turns the plan into a reproducible decision stream: every query draws from
// one seeded RNG, and because the event queue is deterministic, the same
// seed always yields the same fault timeline.
//
// The injector is a pure decision oracle — it never touches platform state
// itself. The VM manager and software switch consult it at the points where
// the corresponding real-world fault would strike.
#ifndef SRC_SIM_FAULT_INJECTOR_H_
#define SRC_SIM_FAULT_INJECTOR_H_

#include <cstdint>

#include "src/sim/event_queue.h"
#include "src/sim/rng.h"

namespace innet::sim {

struct FaultPlan {
  uint64_t seed = 1;
  // Probability that a VM boot (or restart) never comes up: the guest ends
  // in the crashed state instead of running.
  double boot_failure_p = 0.0;
  // Mean uptime (seconds) between crashes of a running VM, exponentially
  // distributed. 0 disables crash scheduling. A value of 1.0 models the
  // "crash rate 1/s" regime.
  double crash_mean_uptime_s = 0.0;
  // Multipliers on suspend/resume latency (a loaded toolstack). 1.0 = none.
  double suspend_stretch = 1.0;
  double resume_stretch = 1.0;
  // Per-packet switch faults.
  double packet_drop_p = 0.0;
  double packet_corrupt_p = 0.0;
  // Control-plane channel faults (orchestrator <-> platform messages). Each
  // message leg (request or response) draws independently: it may be lost,
  // duplicated, held back past later sends (reordering), and is delayed by
  // an exponential propagation time. All zero = ideal channel (synchronous
  // in-process delivery, the pre-fault behavior).
  double control_loss_p = 0.0;
  double control_dup_p = 0.0;
  double control_reorder_p = 0.0;
  double control_delay_mean_ms = 0.0;
  // Region-scoped channel faults (federation coordinator <-> region
  // controller links). A separate fault class from the intra-region control
  // plane: WAN links between PoPs are lossier and slower than the
  // orchestrator's link to its own racks, and experiments tune them
  // independently.
  double region_loss_p = 0.0;
  double region_dup_p = 0.0;
  double region_reorder_p = 0.0;
  double region_delay_mean_ms = 0.0;

  bool HasControlFaults() const {
    return control_loss_p > 0.0 || control_dup_p > 0.0 || control_reorder_p > 0.0 ||
           control_delay_mean_ms > 0.0;
  }
  bool HasRegionFaults() const {
    return region_loss_p > 0.0 || region_dup_p > 0.0 || region_reorder_p > 0.0 ||
           region_delay_mean_ms > 0.0;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(plan), rng_(plan.seed) {}

  const FaultPlan& plan() const { return plan_; }

  // Decides whether the boot now being scheduled will fail.
  bool ShouldFailBoot();

  // Delay until the next crash of a VM that just became running, or 0 when
  // crash injection is disabled.
  TimeNs NextCrashDelay();

  TimeNs StretchSuspend(TimeNs t) const {
    return static_cast<TimeNs>(static_cast<double>(t) * plan_.suspend_stretch);
  }
  TimeNs StretchResume(TimeNs t) const {
    return static_cast<TimeNs>(static_cast<double>(t) * plan_.resume_stretch);
  }

  bool ShouldDropPacket();
  bool ShouldCorruptPacket();

  // --- Control-plane channel faults -----------------------------------------
  bool HasControlFaults() const { return plan_.HasControlFaults(); }
  // Whether the control message (or response) leg now in flight vanishes.
  bool ShouldDropControl();
  // Whether the message is delivered twice.
  bool ShouldDuplicateControl();
  // Whether the message is held back past later sends.
  bool ShouldReorderControl();
  // Exponential propagation delay for one message leg (0 when the plan has
  // no mean delay; the channel rounds up so delivery is a distinct event).
  TimeNs ControlDelay();
  // Extra hold-back applied to a reordered message: several delay draws plus
  // a fixed floor, so it demonstrably lands after messages sent later.
  TimeNs ControlReorderPenalty();

  // --- Region (inter-PoP) channel faults ------------------------------------
  // Same contract as the control-plane methods, driven by the region_* plan
  // fields and counted separately.
  bool HasRegionFaults() const { return plan_.HasRegionFaults(); }
  bool ShouldDropRegion();
  bool ShouldDuplicateRegion();
  bool ShouldReorderRegion();
  TimeNs RegionDelay();
  TimeNs RegionReorderPenalty();

  // Where and how to flip a byte of a corrupted packet.
  size_t CorruptOffset(size_t len) { return len == 0 ? 0 : rng_.NextBelow(len); }
  uint8_t CorruptMask() { return static_cast<uint8_t>(1 + rng_.NextBelow(255)); }

  uint64_t boot_failures_injected() const { return boot_failures_injected_; }
  uint64_t crashes_scheduled() const { return crashes_scheduled_; }
  uint64_t packets_dropped() const { return packets_dropped_; }
  uint64_t packets_corrupted() const { return packets_corrupted_; }
  uint64_t control_dropped() const { return control_dropped_; }
  uint64_t control_duplicated() const { return control_duplicated_; }
  uint64_t control_reordered() const { return control_reordered_; }
  uint64_t region_dropped() const { return region_dropped_; }
  uint64_t region_duplicated() const { return region_duplicated_; }
  uint64_t region_reordered() const { return region_reordered_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  uint64_t boot_failures_injected_ = 0;
  uint64_t crashes_scheduled_ = 0;
  uint64_t packets_dropped_ = 0;
  uint64_t packets_corrupted_ = 0;
  uint64_t control_dropped_ = 0;
  uint64_t control_duplicated_ = 0;
  uint64_t control_reordered_ = 0;
  uint64_t region_dropped_ = 0;
  uint64_t region_duplicated_ = 0;
  uint64_t region_reordered_ = 0;
};

}  // namespace innet::sim

#endif  // SRC_SIM_FAULT_INJECTOR_H_
