#include "src/sim/event_queue.h"

namespace innet::sim {

void EventQueue::ScheduleAt(TimeNs when, Action action) {
  if (when < now_) {
    when = now_;
  }
  events_.push(Event{when, next_seq_++, std::move(action)});
}

size_t EventQueue::Run(size_t max_events) {
  size_t processed = 0;
  while (!events_.empty() && processed < max_events) {
    // priority_queue::top() is const; the action must be moved out before pop.
    Event event = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = event.when;
    event.action();
    ++processed;
  }
  return processed;
}

size_t EventQueue::RunUntil(TimeNs until) {
  size_t processed = 0;
  while (!events_.empty() && events_.top().when <= until) {
    Event event = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = event.when;
    event.action();
    ++processed;
  }
  if (now_ < until) {
    now_ = until;
  }
  return processed;
}

}  // namespace innet::sim
