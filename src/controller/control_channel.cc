#include "src/controller/control_channel.h"

#include <algorithm>

#include "src/obs/trace.h"

namespace innet::controller {

const char* ControlOpName(ControlOp op) {
  switch (op) {
    case ControlOp::kInstall:
      return "install";
    case ControlOp::kRebuildShared:
      return "rebuild_shared";
    case ControlOp::kUninstallVm:
      return "uninstall_vm";
    case ControlOp::kUninstallAddr:
      return "uninstall_addr";
    case ControlOp::kSuspend:
      return "suspend";
    case ControlOp::kCancelMigration:
      return "cancel_migration";
    case ControlOp::kSnapshotExport:
      return "snapshot_export";
    case ControlOp::kSnapshotImport:
      return "snapshot_import";
    case ControlOp::kCutover:
      return "cutover";
    case ControlOp::kHealthProbe:
      return "health_probe";
    case ControlOp::kRegionDigest:
      return "region_digest";
    case ControlOp::kRegionDeploy:
      return "region_deploy";
    case ControlOp::kRegionExport:
      return "region_export";
    case ControlOp::kRegionImport:
      return "region_import";
  }
  return "unknown";
}

namespace {

std::string TokenKey(const ControlRequest& request) {
  return request.tenant + '|' + ControlOpName(request.op) + '|' +
         std::to_string(request.attempt_epoch);
}

}  // namespace

// --- ControlEndpoint ---------------------------------------------------------

ControlEndpoint::ControlEndpoint(OpHandler handler) : handler_(std::move(handler)) {
  ctr_deduped_ =
      obs::Registry().GetCounter("innet_control_messages_total", {{"event", "deduped"}});
}

void ControlEndpoint::Deliver(const ControlRequest& request, RespondFn respond) {
  if (request.attempt_epoch == 0) {
    handler_(request, std::move(respond));  // non-mutating: no dedup memory
    return;
  }
  std::string key = TokenKey(request);
  Applied& entry = applied_[key];
  if (entry.done) {
    ++deduped_;
    ctr_deduped_->Increment();
    ControlResponse replay = entry.cached;
    replay.duplicate = true;
    respond(replay);
    return;
  }
  if (entry.executing) {
    // The operation is still running (a deferred suspend, say): queue the
    // replay; the one eventual completion answers everybody.
    ++deduped_;
    ctr_deduped_->Increment();
    entry.waiters.push_back(std::move(respond));
    return;
  }
  entry.executing = true;
  handler_(request, [this, key, respond = std::move(respond)](ControlResponse response) {
    Applied& done_entry = applied_[key];  // re-lookup: the map may have grown
    done_entry.done = true;
    done_entry.cached = response;
    std::vector<RespondFn> waiters = std::move(done_entry.waiters);
    done_entry.waiters.clear();
    respond(response);
    for (RespondFn& waiter : waiters) {
      ControlResponse replay = response;
      replay.duplicate = true;
      waiter(replay);
    }
  });
}

// --- ControlChannel ----------------------------------------------------------

ControlChannel::ControlChannel(sim::EventQueue* clock) : clock_(clock) {
  auto& registry = obs::Registry();
  ctr_sent_ = registry.GetCounter("innet_control_messages_total", {{"event", "sent"}});
  ctr_delivered_ = registry.GetCounter("innet_control_messages_total", {{"event", "delivered"}});
  ctr_dropped_ = registry.GetCounter("innet_control_messages_total", {{"event", "dropped"}});
  ctr_duplicated_ =
      registry.GetCounter("innet_control_messages_total", {{"event", "duplicated"}});
  ctr_partition_dropped_ =
      registry.GetCounter("innet_control_messages_total", {{"event", "partition_dropped"}});
  gauge_partitioned_ = registry.GetGauge("innet_control_partitioned_platforms");
}

void ControlChannel::RegisterEndpoint(const std::string& platform, OpHandler handler) {
  endpoints_[platform] = std::make_unique<ControlEndpoint>(std::move(handler));
}

void ControlChannel::ResetEndpoint(const std::string& platform) {
  endpoints_.erase(platform);
}

void ControlChannel::SetPartitioned(const std::string& platform, bool partitioned) {
  if (partitioned) {
    partitioned_.insert(platform);
  } else {
    partitioned_.erase(platform);
  }
  gauge_partitioned_->Set(static_cast<double>(partitioned_.size()));
}

std::vector<std::string> ControlChannel::PartitionedPlatforms() const {
  return std::vector<std::string>(partitioned_.begin(), partitioned_.end());
}

bool ControlChannel::HasLinkFaults() const {
  return scope_ == FaultScope::kRegion ? faults_->HasRegionFaults() : faults_->HasControlFaults();
}

bool ControlChannel::ShouldDropLink() {
  return scope_ == FaultScope::kRegion ? faults_->ShouldDropRegion() : faults_->ShouldDropControl();
}

bool ControlChannel::ShouldDuplicateLink() {
  return scope_ == FaultScope::kRegion ? faults_->ShouldDuplicateRegion()
                                       : faults_->ShouldDuplicateControl();
}

bool ControlChannel::ShouldReorderLink() {
  return scope_ == FaultScope::kRegion ? faults_->ShouldReorderRegion()
                                       : faults_->ShouldReorderControl();
}

sim::TimeNs ControlChannel::LinkDelay() {
  return scope_ == FaultScope::kRegion ? faults_->RegionDelay() : faults_->ControlDelay();
}

sim::TimeNs ControlChannel::LinkReorderPenalty() {
  return scope_ == FaultScope::kRegion ? faults_->RegionReorderPenalty()
                                       : faults_->ControlReorderPenalty();
}

uint64_t ControlChannel::deduped() const {
  uint64_t total = 0;
  for (const auto& [name, endpoint] : endpoints_) {
    total += endpoint->deduped();
  }
  return total;
}

void ControlChannel::DeliverNow(const std::string& platform, const ControlRequest& request,
                                RespondFn respond) {
  auto it = endpoints_.find(platform);
  if (it == endpoints_.end()) {
    ControlResponse response;
    response.error = "control: no endpoint for platform " + platform;
    respond(std::move(response));
    return;
  }
  ++delivered_;
  ctr_delivered_->Increment();
  it->second->Deliver(request, std::move(respond));
}

RespondFn ControlChannel::ReturnLeg(const std::string& platform, RespondFn on_response) {
  return [this, platform, on_response = std::move(on_response)](ControlResponse response) {
    if (IsPartitioned(platform)) {
      ++partition_dropped_;
      ctr_partition_dropped_->Increment();
      return;
    }
    bool faulty = faults_ != nullptr && HasLinkFaults();
    if (!faulty) {
      on_response(std::move(response));
      return;
    }
    if (ShouldDropLink()) {
      ++dropped_;
      ctr_dropped_->Increment();
      if (obs::Tracer().enabled()) {
        obs::Tracer().Record(clock_->now(), obs::EventKind::kControlDrop,
                             "platform:" + platform, "response");
      }
      return;
    }
    sim::TimeNs delay = LinkDelay();
    clock_->ScheduleAfter(delay == 0 ? 1 : delay,
                          [on_response, response = std::move(response)]() mutable {
                            on_response(std::move(response));
                          });
  };
}

void ControlChannel::Send(const std::string& platform, const ControlRequest& request,
                          RespondFn on_response) {
  ++sent_;
  ctr_sent_->Increment();
  if (obs::Tracer().enabled()) {
    // A request carrying a propagated trace context parents its channel-level
    // send under that span, so WAN hops show up inside the federated tree.
    obs::Tracer().Record(clock_->now(), obs::EventKind::kControlSend, "platform:" + platform,
                         std::string(ControlOpName(request.op)) + ":" + request.tenant,
                         static_cast<int64_t>(request.attempt_epoch), request.parent_span);
  }
  if (IsPartitioned(platform)) {
    ++partition_dropped_;
    ctr_partition_dropped_->Increment();
    if (obs::Tracer().enabled()) {
      obs::Tracer().Record(clock_->now(), obs::EventKind::kControlDrop, "platform:" + platform,
                           "partitioned");
    }
    return;
  }
  bool faulty = faults_ != nullptr && HasLinkFaults();
  if (!faulty) {
    DeliverNow(platform, request, ReturnLeg(platform, std::move(on_response)));
    return;
  }
  if (ShouldDropLink()) {
    ++dropped_;
    ctr_dropped_->Increment();
    if (obs::Tracer().enabled()) {
      obs::Tracer().Record(clock_->now(), obs::EventKind::kControlDrop, "platform:" + platform,
                           ControlOpName(request.op));
    }
    return;
  }
  int copies = 1;
  if (ShouldDuplicateLink()) {
    copies = 2;
    ++duplicated_;
    ctr_duplicated_->Increment();
  }
  for (int copy = 0; copy < copies; ++copy) {
    sim::TimeNs delay = LinkDelay();
    if (ShouldReorderLink()) {
      delay += LinkReorderPenalty();
    }
    // Round up to a distinct later event so delivery is always asynchronous
    // under a fault plan (and duplicate copies are distinct events).
    delay = delay + static_cast<sim::TimeNs>(copy) + 1;
    clock_->ScheduleAfter(delay, [this, platform, request, on_response] {
      if (IsPartitioned(platform)) {  // partition began while in flight
        ++partition_dropped_;
        ctr_partition_dropped_->Increment();
        return;
      }
      DeliverNow(platform, request, ReturnLeg(platform, on_response));
    });
  }
}

ControlResponse ControlChannel::DeliverDirect(const std::string& platform,
                                              const ControlRequest& request) {
  ++sent_;
  ctr_sent_->Increment();
  if (obs::Tracer().enabled()) {
    obs::Tracer().Record(clock_->now(), obs::EventKind::kControlSend, "platform:" + platform,
                         std::string(ControlOpName(request.op)) + ":" + request.tenant + ":direct",
                         static_cast<int64_t>(request.attempt_epoch), request.parent_span);
  }
  ControlResponse out;
  out.error = "control: operation did not complete synchronously";
  bool answered = false;
  DeliverNow(platform, request, [&out, &answered](ControlResponse response) {
    out = std::move(response);
    answered = true;
  });
  if (!answered) {
    out.ok = false;
  }
  return out;
}

// --- ControlClient -----------------------------------------------------------

ControlClient::ControlClient(sim::EventQueue* clock, ControlChannel* channel,
                             ControlRetryPolicy policy)
    : clock_(clock), channel_(channel), policy_(policy), alive_(std::make_shared<char>(0)) {
  auto& registry = obs::Registry();
  ctr_retries_ = registry.GetCounter("innet_control_retries_total");
  ctr_timeouts_ = registry.GetCounter("innet_control_timeouts_total");
  ctr_giveups_ = registry.GetCounter("innet_control_giveups_total");
}

void ControlClient::IssueWith(const std::string& platform, ControlRequest request,
                              ControlRetryPolicy policy, RespondFn on_done) {
  auto op = std::make_shared<PendingOp>();
  op->platform = platform;
  op->request = std::move(request);
  op->policy = policy;
  op->on_done = std::move(on_done);
  op->backoff = policy.backoff_base;
  ++inflight_;
  Attempt(op);
}

void ControlClient::Finish(const std::shared_ptr<PendingOp>& op, ControlResponse response) {
  if (op->done) {
    return;
  }
  op->done = true;
  --inflight_;
  if (op->on_done) {
    op->on_done(std::move(response));
  }
}

void ControlClient::Attempt(const std::shared_ptr<PendingOp>& op) {
  ++op->attempts;
  std::weak_ptr<char> watch = alive_;
  channel_->Send(op->platform, op->request, [this, watch, op](ControlResponse response) {
    if (watch.expired()) {
      return;  // the controller crashed while this ack was in flight
    }
    Finish(op, std::move(response));
  });
  if (op->done || channel_->ideal()) {
    // Ideal channels answer exactly once (possibly deferred for a suspend);
    // no timeout machinery is needed and none is scheduled.
    return;
  }
  clock_->ScheduleAfter(op->policy.op_timeout, [this, watch, op] {
    if (watch.expired() || op->done) {
      return;
    }
    ++timeouts_;
    ctr_timeouts_->Increment();
    if (op->attempts >= op->policy.max_attempts) {
      ++giveups_;
      ctr_giveups_->Increment();
      if (obs::Tracer().enabled()) {
        obs::Tracer().Record(clock_->now(), obs::EventKind::kControlGiveUp,
                             "platform:" + op->platform,
                             std::string(ControlOpName(op->request.op)) + ":" +
                                 op->request.tenant,
                             op->attempts);
      }
      ControlResponse failure;
      failure.gave_up = true;
      failure.error = "control: gave up after " + std::to_string(op->attempts) + " attempts (" +
                      ControlOpName(op->request.op) + " to " + op->platform + ")";
      Finish(op, std::move(failure));
      return;
    }
    ++retries_;
    ctr_retries_->Increment();
    if (obs::Tracer().enabled()) {
      obs::Tracer().Record(clock_->now(), obs::EventKind::kControlRetry,
                           "platform:" + op->platform,
                           std::string(ControlOpName(op->request.op)) + ":" + op->request.tenant,
                           op->attempts);
    }
    sim::TimeNs wait = op->backoff;
    double next = static_cast<double>(op->backoff) * op->policy.backoff_factor;
    op->backoff = next > static_cast<double>(op->policy.backoff_cap)
                      ? op->policy.backoff_cap
                      : static_cast<sim::TimeNs>(next);
    clock_->ScheduleAfter(wait == 0 ? 1 : wait, [this, watch, op] {
      if (watch.expired() || op->done) {
        return;
      }
      Attempt(op);
    });
  });
}

}  // namespace innet::controller
