#include "src/controller/fleet.h"

#include <utility>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace innet::controller {

using platform::InNetPlatform;
using platform::Vm;
using platform::VmState;

PlatformFleet::PlatformFleet(sim::EventQueue* clock, platform::VmCostModel cost_model,
                             uint64_t platform_memory_bytes)
    : clock_(clock),
      cost_model_(cost_model),
      platform_memory_bytes_(platform_memory_bytes),
      channel_(clock) {}

InNetPlatform* PlatformFleet::AddPlatform(const std::string& name) {
  auto it = boxes_.find(name);
  if (it != boxes_.end()) {
    return it->second.get();
  }
  auto box = std::make_unique<InNetPlatform>(clock_, cost_model_, platform_memory_bytes_);
  InNetPlatform* raw = box.get();
  boxes_.emplace(name, std::move(box));
  channel_.RegisterEndpoint(name, [this, name](const ControlRequest& request, RespondFn respond) {
    Dispatch(name, request, std::move(respond));
  });
  return raw;
}

InNetPlatform* PlatformFleet::Get(const std::string& name) {
  auto it = boxes_.find(name);
  return it == boxes_.end() ? nullptr : it->second.get();
}

InNetPlatform* PlatformFleet::Replace(const std::string& name) {
  // Replacing a node discards its endpoint's dedup memory by design: a
  // pre-failure token retried against the fresh machine re-executes. Record
  // the reset so dumps can explain the resulting double-execution.
  boxes_.erase(name);
  channel_.ResetEndpoint(name);
  obs::Registry().GetCounter("innet_platform_replaced_total")->Increment();
  if (obs::Tracer().enabled()) {
    obs::Tracer().Record(static_cast<uint64_t>(clock_->now()), obs::EventKind::kPlatformReplaced,
                         "platform:" + name, "dedup_memory_reset");
  }
  return AddPlatform(name);
}

std::vector<std::string> PlatformFleet::Names() const {
  std::vector<std::string> names;
  for (const auto& [name, box] : boxes_) {
    names.push_back(name);
  }
  return names;  // std::map iterates sorted
}

void PlatformFleet::Dispatch(const std::string& name, const ControlRequest& request,
                             RespondFn respond) {
  InNetPlatform* box = Get(name);
  if (box == nullptr) {
    ControlResponse response;
    response.error = "platform " + name + " has no data-plane instance";
    respond(std::move(response));
    return;
  }
  ControlResponse response;
  switch (request.op) {
    case ControlOp::kInstall: {
      std::string error;
      Vm::VmId vm = box->Install(request.addr, request.config_text, &error,
                                 platform::VmKind::kClickOs, request.sandbox, request.whitelist);
      response.ok = vm != 0;
      response.vm_id = vm;
      response.error = error;
      break;
    }
    case ControlOp::kRebuildShared: {
      // Declarative: install the merged VM for the full desired tenant list,
      // then retire the previous shared VM named by the request.
      if (request.tenants.empty()) {
        if (request.vm_id != 0) {
          box->UninstallVm(request.vm_id);
        }
        response.ok = true;
        response.vm_id = 0;
        break;
      }
      std::string error;
      Vm::VmId vm = box->InstallConsolidated(request.tenants, &error);
      response.ok = vm != 0;
      response.vm_id = vm;
      response.error = error;
      if (vm != 0 && request.vm_id != 0) {
        box->UninstallVm(request.vm_id);
      }
      break;
    }
    case ControlOp::kUninstallVm:
      response.ok = box->UninstallVm(request.vm_id);
      break;
    case ControlOp::kUninstallAddr:
      response.ok = box->Uninstall(request.addr);
      break;
    case ControlOp::kSuspend: {
      // Deferred completion: the ack is sent when the guest is frozen, so a
      // retry arriving mid-suspend queues on the endpoint's waiter list.
      box->PrepareMigrationOut(request.vm_id);
      Vm::VmId vm_id = request.vm_id;
      bool started = box->vms().Suspend(vm_id, [this, name, vm_id, respond] {
        InNetPlatform* current = Get(name);
        ControlResponse done;
        Vm* guest = current == nullptr ? nullptr : current->vms().Find(vm_id);
        if (guest != nullptr && guest->state() == VmState::kSuspended) {
          done.ok = true;
          done.vm_id = vm_id;
        } else {
          if (current != nullptr) {
            current->CancelMigrationOut(vm_id);
          }
          done.error = "source guest lost during suspend";
        }
        respond(std::move(done));
      });
      if (!started) {
        box->CancelMigrationOut(vm_id);
        response.error = "source guest not running";
        respond(std::move(response));
      }
      return;  // responded above (now or when the suspend lands)
    }
    case ControlOp::kCancelMigration:
      box->CancelMigrationOut(request.vm_id);
      response.ok = true;
      break;
    case ControlOp::kSnapshotExport: {
      auto moved = box->DetachForMigration(request.vm_id);
      if (moved) {
        response.ok = true;
        response.moved =
            std::make_shared<InNetPlatform::MigratedVm>(std::move(*moved));
      } else {
        response.error = "detach failed: guest not suspended";
      }
      break;
    }
    case ControlOp::kSnapshotImport: {
      if (!request.moved) {
        response.error = "import without snapshot";
        break;
      }
      std::string error;
      Vm::VmId vm = box->InstallMigrated(request.addr, &request.moved->snapshot, &error);
      response.ok = vm != 0;
      response.vm_id = vm;
      response.error = error;
      break;
    }
    case ControlOp::kCutover: {
      // Replay the blackout traffic re-addressed at the adopting guest; it
      // parks in the stalled buffer until the resume lands. Executes at most
      // once per token, so duplicated cutover messages cannot double-replay.
      if (request.moved) {
        for (Packet& packet : request.moved->parked) {
          packet.set_ip_dst(request.addr);
          box->HandlePacket(packet);
        }
      }
      response.ok = true;
      break;
    }
    case ControlOp::kRegionDigest:
    case ControlOp::kRegionDeploy:
    case ControlOp::kRegionExport:
    case ControlOp::kRegionImport:
      // Federation ops terminate at a RegionController endpoint, never at a
      // platform's data-plane agent. Answering with an error (instead of
      // aborting) keeps a misrouted message a clean failure.
      response.error = "platform " + name + " does not speak federation ops";
      break;
    case ControlOp::kHealthProbe: {
      Vm::VmId vm_id = request.vm_id;
      if (vm_id == 0 && request.addr.value() != 0) {
        vm_id = box->InstalledVmFor(request.addr);
      }
      Vm* guest = vm_id == 0 ? nullptr : box->vms().Find(vm_id);
      response.ok = true;
      response.vm_known = guest != nullptr;
      response.vm_id = vm_id;
      if (guest != nullptr) {
        response.vm_state = guest->state();
      }
      break;
    }
  }
  respond(std::move(response));
}

}  // namespace innet::controller
