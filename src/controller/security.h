// The In-Net security checker (§2.1, §4.4): decides whether a processing
// module is safe to run unsandboxed, must be sandboxed, or must be rejected.
//
// The controller injects a fully unconstrained symbolic packet into the
// module and classifies every egress flow:
//
//   source address must be (a) the controller-assigned module address,
//   (b) an address the requester registered as owned, (c) invariant from
//   ingress (anti-spoofing), or (d) the ingress *destination* — which the
//   platform switch guarantees equals the module address (explicit
//   addressing, §2.1);
//
//   destination address must be (a) whitelisted (explicit authorization),
//   (b) the ingress source (implicit authorization), or — for the operator's
//   own residential/mobile customers — (c) any module-chosen value (they may
//   send traffic anywhere, §2.1). A destination copied from attacker-
//   controlled ingress headers (e.g. a router forwarding by dst) is always a
//   violation: that is transit relaying, the DDoS vector default-off exists
//   to close.
//
// Flows whose fields are *fresh unknowns* decided only at runtime (tunnel
// decapsulation, x86 VMs) are conditional: the module might behave, so the
// paper's answer is to run it sandboxed (Table 1's "(s)" entries).
//
// Verdict: every flow compliant -> kSafe; any certainly-violating flow ->
// kRejected (sandboxing cannot make it legitimate); otherwise (compliant +
// conditional mix) -> kNeedsSandbox.
#ifndef SRC_CONTROLLER_SECURITY_H_
#define SRC_CONTROLLER_SECURITY_H_

#include <string>
#include <vector>

#include "src/click/config_parser.h"
#include "src/netcore/flowspec.h"
#include "src/netcore/ip.h"

namespace innet::controller {

enum class RequesterClass {
  kThirdParty,  // untrusted customer of the in-network cloud
  kClient,      // the operator's own residential/mobile customer
  kOperator,    // the operator itself (trusted; checked for correctness only)
};

enum class Verdict { kSafe, kNeedsSandbox, kRejected };

std::string_view RequesterClassName(RequesterClass requester);
std::string_view VerdictName(Verdict verdict);

struct SecurityOptions {
  RequesterClass requester = RequesterClass::kThirdParty;
  Ipv4Address module_addr;
  // Destinations explicitly authorized to receive module traffic.
  std::vector<Ipv4Address> whitelist;
  // Prefixes the requester registered as owned (legitimate source addresses).
  std::vector<Ipv4Prefix> owned_prefixes;
};

struct SecurityReport {
  Verdict verdict = Verdict::kRejected;
  int compliant_paths = 0;
  int conditional_paths = 0;
  int violating_paths = 0;
  std::vector<std::string> findings;  // human-readable per-flow diagnoses
  std::string Summary() const;
};

// Analyzes a standalone module configuration. Returns a kRejected report
// with an explanation in *error when the configuration cannot be modeled
// (unknown element class, syntax error).
SecurityReport CheckModuleSecurity(const click::ConfigGraph& config,
                                   const SecurityOptions& options, std::string* error);

// Derives the firewall pinholes a deployment needs: one flow spec per module
// egress flow whose destination is a fixed address (symbolic execution tells
// the controller *exactly* what the module emits, so the operator can open
// precisely those flows — §4.3's "the controller alters the operator's
// routing configuration"). Flows with runtime-decided destinations yield no
// pinhole.
std::vector<FlowSpec> DeriveEgressPinholes(const click::ConfigGraph& config,
                                           std::string* error);

}  // namespace innet::controller

#endif  // SRC_CONTROLLER_SECURITY_H_
