// Pre-defined "stock" processing modules the platform offers (§4.1): a
// geolocation DNS server, a reverse HTTP proxy, an explicit tunnel endpoint,
// and an arbitrary x86 VM. Each helper returns Click configuration text; the
// token $SELF is replaced with the module's controller-assigned address at
// deployment time.
#ifndef SRC_CONTROLLER_STOCK_MODULES_H_
#define SRC_CONTROLLER_STOCK_MODULES_H_

#include <string>

#include "src/netcore/ip.h"

namespace innet::controller {

// DNS server that resolves queries to nearby replicas.
std::string StockDnsServer();

// Reverse HTTP proxy (squid-style) caching for `origin`.
std::string StockReverseProxy(Ipv4Address origin);

// UDP tunnel endpoint decapsulating client traffic toward the Internet and
// encapsulating the reverse direction toward `remote`. `owned` restricts the
// inner source addresses to the requester's registered prefix.
std::string StockTunnel(Ipv4Address remote, const Ipv4Prefix& owned);

// An arbitrary x86 virtual machine (always sandboxed for non-operators).
std::string StockX86Vm();

// Replaces every "$SELF" in `config` with `addr`.
std::string SubstituteSelf(const std::string& config, Ipv4Address addr);

}  // namespace innet::controller

#endif  // SRC_CONTROLLER_STOCK_MODULES_H_
