#include "src/controller/security.h"

#include <sstream>

#include "src/symexec/click_models.h"
#include "src/symexec/engine.h"

namespace innet::controller {

using symexec::Engine;
using symexec::EngineResult;
using innet::HeaderField;
using symexec::kPortInject;
using symexec::SymbolicPacket;
using symexec::SymbolicValue;
using symexec::ValueSet;

namespace {

// 0 = compliant, 1 = conditional (decided at runtime), 2 = violation.
enum Severity { kOk = 0, kConditional = 1, kViolation = 2 };

struct Classification {
  Severity severity;
  std::string reason;
};

bool IsSubsetOf(const ValueSet& values, const ValueSet& allowed) {
  return values.Subtract(allowed).IsEmpty();
}

ValueSet AllowedSources(const SecurityOptions& options) {
  ValueSet allowed = ValueSet::Single(options.module_addr.value());
  for (const Ipv4Prefix& prefix : options.owned_prefixes) {
    allowed = allowed.Union(ValueSet::FromPrefix(prefix));
  }
  return allowed;
}

ValueSet AllowedDestinations(const SecurityOptions& options) {
  ValueSet allowed = ValueSet::Single(options.module_addr.value());
  for (Ipv4Address addr : options.whitelist) {
    allowed = allowed.Union(ValueSet::Single(addr.value()));
  }
  return allowed;
}

// Which ingress field (if any) this value is bound to.
enum class IngressBinding { kNone, kSrc, kDst, kOther };

IngressBinding BindingOf(const SymbolicPacket& packet, const SymbolicValue& value) {
  if (value.is_const) {
    return IngressBinding::kNone;
  }
  if (value.var == packet.ingress_var(HeaderField::kIpSrc)) {
    return IngressBinding::kSrc;
  }
  if (value.var == packet.ingress_var(HeaderField::kIpDst)) {
    return IngressBinding::kDst;
  }
  static constexpr HeaderField kOthers[] = {HeaderField::kProto, HeaderField::kTtl,
                                            HeaderField::kSrcPort, HeaderField::kDstPort,
                                            HeaderField::kPayload, HeaderField::kFirewallTag};
  for (HeaderField f : kOthers) {
    if (value.var == packet.ingress_var(f)) {
      return IngressBinding::kOther;
    }
  }
  return IngressBinding::kNone;  // fresh variable, module-defined
}

Classification ClassifySource(const SymbolicPacket& packet, const SecurityOptions& options) {
  const SymbolicValue& src = packet.value(HeaderField::kIpSrc);
  ValueSet allowed = AllowedSources(options);
  if (src.is_const) {
    if (allowed.Contains(src.const_value)) {
      return {kOk, "source is an assigned/owned address"};
    }
    return {kViolation, "source spoofs a fixed address " +
                            Ipv4Address(static_cast<uint32_t>(src.const_value)).ToString()};
  }
  switch (BindingOf(packet, src)) {
    case IngressBinding::kSrc:
      return {kOk, "source invariant from ingress (anti-spoofing holds)"};
    case IngressBinding::kDst:
      // The switch only delivers dst == module address, so replying with the
      // ingress destination IS replying as the assigned address.
      return {kOk, "source equals ingress destination (module's own address)"};
    case IngressBinding::kOther:
      return {kViolation, "source copied from an unrelated ingress header"};
    case IngressBinding::kNone:
      break;
  }
  if (IsSubsetOf(packet.PossibleValues(HeaderField::kIpSrc), allowed)) {
    return {kOk, "source constrained to owned addresses"};
  }
  return {kConditional, "source decided at runtime (opaque processing)"};
}

Classification ClassifyDestination(const SymbolicPacket& packet,
                                   const SecurityOptions& options) {
  const SymbolicValue& dst = packet.value(HeaderField::kIpDst);
  ValueSet allowed = AllowedDestinations(options);
  bool client = options.requester == RequesterClass::kClient;
  if (dst.is_const) {
    if (allowed.Contains(dst.const_value)) {
      return {kOk, "destination explicitly authorized"};
    }
    if (client) {
      return {kOk, "client-chosen fixed destination (customers may send anywhere)"};
    }
    return {kViolation,
            "destination " + Ipv4Address(static_cast<uint32_t>(dst.const_value)).ToString() +
                " not authorized (default-off)"};
  }
  switch (BindingOf(packet, dst)) {
    case IngressBinding::kSrc:
      return {kOk, "destination equals ingress source (implicit authorization)"};
    case IngressBinding::kDst:
    case IngressBinding::kOther:
      return {kViolation,
              "destination copied from attacker-controlled ingress headers (transit relay)"};
    case IngressBinding::kNone:
      break;
  }
  if (IsSubsetOf(packet.PossibleValues(HeaderField::kIpDst), allowed)) {
    return {kOk, "destination constrained to the whitelist"};
  }
  if (client) {
    return {kOk, "module-chosen destination (customers may send anywhere)"};
  }
  return {kConditional, "destination decided at runtime; may or may not be authorized"};
}

}  // namespace

std::string_view RequesterClassName(RequesterClass requester) {
  switch (requester) {
    case RequesterClass::kThirdParty:
      return "third-party";
    case RequesterClass::kClient:
      return "client";
    case RequesterClass::kOperator:
      return "operator";
  }
  return "?";
}

std::string_view VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kSafe:
      return "safe";
    case Verdict::kNeedsSandbox:
      return "sandbox";
    case Verdict::kRejected:
      return "rejected";
  }
  return "?";
}

std::string SecurityReport::Summary() const {
  std::ostringstream out;
  out << VerdictName(verdict) << " (" << compliant_paths << " compliant, " << conditional_paths
      << " conditional, " << violating_paths << " violating)";
  return out.str();
}

SecurityReport CheckModuleSecurity(const click::ConfigGraph& config,
                                   const SecurityOptions& options, std::string* error) {
  SecurityReport report;
  if (options.requester == RequesterClass::kOperator) {
    // The operator trusts its own modules; static analysis is only used for
    // correctness (the client-requirements checks), not security.
    report.verdict = Verdict::kSafe;
    return report;
  }

  auto graph = symexec::BuildClickModel(config, error);
  if (!graph) {
    report.verdict = Verdict::kRejected;
    report.findings.push_back("cannot model configuration: " + *error);
    return report;
  }

  std::vector<std::string> sources = symexec::ModuleSources(config);
  if (sources.empty()) {
    report.verdict = Verdict::kRejected;
    report.findings.push_back("configuration has no FromNetfront ingress");
    return report;
  }

  for (const std::string& source : sources) {
    int start = graph->FindNode(source);
    Engine engine;
    SymbolicPacket seed = SymbolicPacket::MakeUnconstrained(engine.vars());
    EngineResult result = engine.Run(*graph, start, kPortInject, std::move(seed));
    for (const SymbolicPacket& packet : result.delivered) {
      Classification src = ClassifySource(packet, options);
      Classification dst = ClassifyDestination(packet, options);
      Severity severity = src.severity > dst.severity ? src.severity : dst.severity;
      const std::string& reason = src.severity >= dst.severity ? src.reason : dst.reason;
      switch (severity) {
        case kOk:
          ++report.compliant_paths;
          break;
        case kConditional:
          ++report.conditional_paths;
          report.findings.push_back("conditional flow at " + packet.delivered_at() + ": " +
                                    reason);
          break;
        case kViolation:
          ++report.violating_paths;
          report.findings.push_back("violating flow at " + packet.delivered_at() + ": " +
                                    reason);
          break;
      }
    }
  }

  if (report.violating_paths > 0) {
    report.verdict = Verdict::kRejected;
  } else if (report.conditional_paths > 0) {
    report.verdict = Verdict::kNeedsSandbox;
  } else {
    report.verdict = Verdict::kSafe;
  }
  return report;
}

std::vector<FlowSpec> DeriveEgressPinholes(const click::ConfigGraph& config,
                                           std::string* error) {
  std::vector<FlowSpec> pinholes;
  auto graph = symexec::BuildClickModel(config, error);
  if (!graph) {
    return pinholes;
  }
  for (const std::string& source : symexec::ModuleSources(config)) {
    Engine engine;
    SymbolicPacket seed = SymbolicPacket::MakeUnconstrained(engine.vars());
    EngineResult result = engine.Run(*graph, graph->FindNode(source), kPortInject, seed);
    for (const SymbolicPacket& packet : result.delivered) {
      ValueSet dst = packet.PossibleValues(HeaderField::kIpDst);
      if (!dst.IsSingle()) {
        continue;  // runtime-decided destination: nothing precise to open
      }
      std::string text =
          "dst host " + Ipv4Address(static_cast<uint32_t>(dst.SingleValue())).ToString();
      ValueSet proto = packet.PossibleValues(HeaderField::kProto);
      if (proto.IsSingle()) {
        uint64_t p = proto.SingleValue();
        if (p == kProtoTcp) {
          text = "tcp " + text;
        } else if (p == kProtoUdp) {
          text = "udp " + text;
        } else if (p == kProtoIcmp) {
          text = "icmp " + text;
        }
      }
      ValueSet port = packet.PossibleValues(HeaderField::kDstPort);
      if (port.IsSingle()) {
        text += " dst port " + std::to_string(port.SingleValue());
      }
      if (auto spec = FlowSpec::Parse(text)) {
        pinholes.push_back(std::move(*spec));
      }
    }
  }
  return pinholes;
}

}  // namespace innet::controller
