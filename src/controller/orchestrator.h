// Orchestrator: the full In-Net deployment flow, control plane to data
// plane. The controller verifies a request (security + policy + client
// requirements, §4); the orchestrator then realizes it on the chosen
// platform, applying §5's scalability tactics:
//
//   - statically-safe, stateless modules are *consolidated* into one shared
//     ClickOS VM per platform (the merge is provably isolation-preserving:
//     the checker verified each config alone, configs share no elements, and
//     the demux enforces explicit addressing);
//   - stateful or sandbox-verdict modules get their own VM, wrapped with a
//     ChangeEnforcer when required.
//
// Placement is resource-aware: every request passes the scheduler's
// admission control (per-tenant quotas), then its placement engine ranks the
// platforms with headroom by the active policy; the controller verifies the
// candidates in that order, so the engine proposes but never bypasses
// verification. Stateful tenants can be live-migrated between platforms
// (suspend → re-verify on target → transfer → resume → cutover), and
// Rebalance() drains hot platforms through the same path.
#ifndef SRC_CONTROLLER_ORCHESTRATOR_H_
#define SRC_CONTROLLER_ORCHESTRATOR_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/controller/controller.h"
#include "src/platform/platform.h"
#include "src/scheduler/engine.h"

namespace innet::controller {

struct OrchestratedDeploy {
  DeployOutcome outcome;      // the controller's verification result
  bool consolidated = false;  // true when placed into the shared VM
  platform::Vm::VmId vm_id = 0;
};

// Result of failing a platform over: which tenants were stranded, which
// could be re-verified and re-placed on survivors, and what the control
// plane paid for it.
struct FailoverReport {
  std::string failed_platform;
  size_t tenants_affected = 0;
  size_t recovered = 0;   // re-verified + re-placed on a surviving platform
  size_t lost = 0;        // no surviving placement satisfied verification
  // old module id -> new module id for every recovered tenant.
  std::vector<std::pair<std::string, std::string>> remapped;
  std::vector<std::string> lost_module_ids;
  // Wall-clock spent re-verifying and re-placing (the control-plane share of
  // recovery time; data-plane boot time accrues on the simulated clock).
  double reverify_ms = 0;
};

// Synchronous answer to MigrateTenant: whether the migration mechanism was
// engaged. The outcome arrives later through the MigrationCallback (the
// suspend takes simulated time).
struct MigrationStart {
  bool started = false;
  std::string reason;  // why it could not start
};

// Outcome of one migration, delivered when the cutover (or abort) happened.
struct MigrationReport {
  bool ok = false;
  bool live = false;  // suspend/resume state transfer (vs. stateless redeploy)
  std::string reason;
  std::string module_id;      // the pre-migration id
  std::string new_module_id;  // the post-migration id (re-verified deployment)
  std::string source;
  std::string target;
  Ipv4Address old_addr;
  Ipv4Address new_addr;
  // Packets that arrived during the blackout and were carried to the target.
  size_t parked_packets = 0;
};

struct RebalanceReport {
  size_t hot_platforms = 0;
  size_t migrations_started = 0;
  // module id -> chosen target, in start order.
  std::vector<std::pair<std::string, std::string>> moves;
};

struct OrchestratorOptions {
  platform::VmCostModel cost_model;
  uint64_t platform_memory_bytes = 16ull << 30;
  scheduler::PlacementPolicyKind policy = scheduler::PlacementPolicyKind::kFirstFit;
};

class Orchestrator {
 public:
  using MigrationCallback = std::function<void(const MigrationReport&)>;

  // Creates one InNetPlatform per platform node in the network.
  Orchestrator(topology::Network network, sim::EventQueue* clock, OrchestratorOptions options);
  Orchestrator(topology::Network network, sim::EventQueue* clock,
               platform::VmCostModel cost_model = {})
      : Orchestrator(std::move(network), clock, OrchestratorOptions{cost_model}) {}

  bool AddOperatorPolicy(const std::string& reach_statement, std::string* error = nullptr) {
    return controller_.AddOperatorPolicy(reach_statement, error);
  }

  // Verify + realize: admission (quotas) → placement engine (headroom +
  // policy ranking, skipped for pinned requests) → controller verification
  // over the candidates in order → instantiation. On rejection,
  // `outcome.accepted` is false and nothing is instantiated or accounted.
  OrchestratedDeploy Deploy(const ClientRequest& request);

  // Stops a module: removes its VM or rebuilds the shared VM without it.
  // A never-placed module id is a clean no-op returning false.
  bool Kill(const std::string& module_id);

  // Live-migrates a module to `target_platform`. Stateful tenants move via
  // suspend → re-verify on target → state transfer → resume → switch-rule
  // cutover; traffic arriving during the blackout parks in the source's
  // bounded stall buffer and is re-addressed + replayed on the target.
  // Consolidated (stateless) tenants degenerate to make-before-break
  // redeployment — nothing to carry. `on_done` fires exactly once when the
  // migration completes or aborts (never when started=false).
  MigrationStart MigrateTenant(const std::string& module_id, const std::string& target_platform,
                               MigrationCallback on_done = nullptr);

  // Background drain: migrates dedicated-VM tenants off every platform whose
  // memory utilization exceeds `drain_above_utilization`, choosing targets
  // with the active placement policy among the non-hot platforms.
  RebalanceReport Rebalance(double drain_above_utilization = 0.7);

  // Declares a platform node dead and fails its tenants over: every module
  // placed there is killed, then re-deployed through the full verification
  // pipeline (security + operator policy + client requirements) against the
  // surviving platforms — stateless tenants re-merge into the target's
  // shared VM. The failed platform is skipped by future deployments until
  // RestorePlatform.
  FailoverReport MarkPlatformFailed(const std::string& platform_name);

  // Brings a failed platform back into the placement pool with a fresh
  // data-plane instance (its previous guests died with the node).
  void RestorePlatform(const std::string& platform_name);

  Controller& controller() { return controller_; }
  scheduler::PlacementEngine& engine() { return engine_; }
  platform::InNetPlatform* platform(const std::string& name);

  // Tenants currently sharing the consolidated VM on `platform`.
  size_t ConsolidatedTenantCount(const std::string& platform_name) const;

  size_t placement_count() const { return placements_.size(); }
  bool HasPlacement(const std::string& module_id) const {
    return placements_.count(module_id) != 0;
  }
  // (platform name, dedicated VM id or 0 when consolidated), or nullptr.
  const std::pair<std::string, platform::Vm::VmId>* FindPlacement(
      const std::string& module_id) const;

 private:
  struct PlatformState {
    std::unique_ptr<platform::InNetPlatform> box;
    std::vector<platform::TenantConfig> consolidated;      // shared-VM tenants
    std::vector<std::string> consolidated_module_ids;      // parallel to the above
    platform::Vm::VmId shared_vm = 0;
  };

  // Rebuilds `state`'s shared VM from its current tenant list. Returns 0 and
  // fills *error on failure (the old VM is kept in that case).
  platform::Vm::VmId RebuildSharedVm(PlatformState* state, std::string* error);

  // Verification + instantiation over an explicit candidate order, without
  // admission (Deploy and the migration paths wrap it).
  OrchestratedDeploy DeployOn(const ClientRequest& request,
                              const std::vector<std::string>& candidates);

  // Ledger prober: fills *out from the named platform's live state.
  bool ProbePlatform(const std::string& name, scheduler::PlatformResources* out);

  // Continuation of a stateful migration, invoked when the suspend lands.
  // `migrate_span` is the kMigrateStart trace span the continuation re-enters
  // (0 when the tracer was off at start time).
  void FinishMigration(const std::string& module_id, const std::string& source,
                       const std::string& target, platform::Vm::VmId vm_id,
                       uint64_t migrate_span, MigrationCallback on_done);

  // The module address currently assigned to `module_id` (0.0.0.0 if gone).
  Ipv4Address ModuleAddr(const std::string& module_id) const;

  // Every orchestrated module costs one ClickOS guest (consolidation makes
  // the marginal cost lower, but admission charges the worst case: the
  // shared-VM rebuild transiently needs a full extra guest).
  uint64_t ModuleMemoryBytes() const {
    return cost_model_.MemoryBytes(platform::VmKind::kClickOs);
  }

  Controller controller_;
  sim::EventQueue* clock_;
  platform::VmCostModel cost_model_;
  OrchestratorOptions options_;
  scheduler::PlacementEngine engine_;
  std::unordered_map<std::string, PlatformState> platforms_;
  // module id -> (platform name, dedicated VM id or 0 when consolidated)
  std::unordered_map<std::string, std::pair<std::string, platform::Vm::VmId>> placements_;
  // The original request behind every live module, kept so failover and
  // migration can re-verify and re-place tenants from first principles.
  std::unordered_map<std::string, ClientRequest> requests_;
  obs::Counter* ctr_migrations_started_ = nullptr;
  obs::Counter* ctr_migrations_completed_ = nullptr;
  obs::Counter* ctr_migrations_aborted_ = nullptr;
};

}  // namespace innet::controller

#endif  // SRC_CONTROLLER_ORCHESTRATOR_H_
