// Orchestrator: the full In-Net deployment flow, control plane to data
// plane. The controller verifies a request (security + policy + client
// requirements, §4); the orchestrator then realizes it on the chosen
// platform, applying §5's scalability tactics:
//
//   - statically-safe, stateless modules are *consolidated* into one shared
//     ClickOS VM per platform (the merge is provably isolation-preserving:
//     the checker verified each config alone, configs share no elements, and
//     the demux enforces explicit addressing);
//   - stateful or sandbox-verdict modules get their own VM, wrapped with a
//     ChangeEnforcer when required.
#ifndef SRC_CONTROLLER_ORCHESTRATOR_H_
#define SRC_CONTROLLER_ORCHESTRATOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/controller/controller.h"
#include "src/platform/platform.h"

namespace innet::controller {

struct OrchestratedDeploy {
  DeployOutcome outcome;      // the controller's verification result
  bool consolidated = false;  // true when placed into the shared VM
  platform::Vm::VmId vm_id = 0;
};

// Result of failing a platform over: which tenants were stranded, which
// could be re-verified and re-placed on survivors, and what the control
// plane paid for it.
struct FailoverReport {
  std::string failed_platform;
  size_t tenants_affected = 0;
  size_t recovered = 0;   // re-verified + re-placed on a surviving platform
  size_t lost = 0;        // no surviving placement satisfied verification
  // old module id -> new module id for every recovered tenant.
  std::vector<std::pair<std::string, std::string>> remapped;
  std::vector<std::string> lost_module_ids;
  // Wall-clock spent re-verifying and re-placing (the control-plane share of
  // recovery time; data-plane boot time accrues on the simulated clock).
  double reverify_ms = 0;
};

class Orchestrator {
 public:
  // Creates one InNetPlatform per platform node in the network.
  Orchestrator(topology::Network network, sim::EventQueue* clock,
               platform::VmCostModel cost_model = {});

  bool AddOperatorPolicy(const std::string& reach_statement, std::string* error = nullptr) {
    return controller_.AddOperatorPolicy(reach_statement, error);
  }

  // Verify + realize. On rejection, `outcome.accepted` is false and nothing
  // is instantiated.
  OrchestratedDeploy Deploy(const ClientRequest& request);

  // Stops a module: removes its VM or rebuilds the shared VM without it.
  bool Kill(const std::string& module_id);

  // Declares a platform node dead and fails its tenants over: every module
  // placed there is killed, then re-deployed through the full verification
  // pipeline (security + operator policy + client requirements) against the
  // surviving platforms — stateless tenants re-merge into the target's
  // shared VM. The failed platform is skipped by future deployments until
  // RestorePlatform.
  FailoverReport MarkPlatformFailed(const std::string& platform_name);

  // Brings a failed platform back into the placement pool with a fresh
  // data-plane instance (its previous guests died with the node).
  void RestorePlatform(const std::string& platform_name);

  Controller& controller() { return controller_; }
  platform::InNetPlatform* platform(const std::string& name);

  // Tenants currently sharing the consolidated VM on `platform`.
  size_t ConsolidatedTenantCount(const std::string& platform_name) const;

 private:
  struct PlatformState {
    std::unique_ptr<platform::InNetPlatform> box;
    std::vector<platform::TenantConfig> consolidated;      // shared-VM tenants
    std::vector<std::string> consolidated_module_ids;      // parallel to the above
    platform::Vm::VmId shared_vm = 0;
  };

  // Rebuilds `state`'s shared VM from its current tenant list. Returns 0 and
  // fills *error on failure (the old VM is kept in that case).
  platform::Vm::VmId RebuildSharedVm(PlatformState* state, std::string* error);

  Controller controller_;
  sim::EventQueue* clock_;
  platform::VmCostModel cost_model_;
  std::unordered_map<std::string, PlatformState> platforms_;
  // module id -> (platform name, dedicated VM id or 0 when consolidated)
  std::unordered_map<std::string, std::pair<std::string, platform::Vm::VmId>> placements_;
  // The original request behind every live module, kept so failover can
  // re-verify and re-place stranded tenants from first principles.
  std::unordered_map<std::string, ClientRequest> requests_;
};

}  // namespace innet::controller

#endif  // SRC_CONTROLLER_ORCHESTRATOR_H_
