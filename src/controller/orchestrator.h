// Orchestrator: the full In-Net deployment flow, control plane to data
// plane. The controller verifies a request (security + policy + client
// requirements, §4); the orchestrator then realizes it on the chosen
// platform, applying §5's scalability tactics:
//
//   - statically-safe, stateless modules are *consolidated* into one shared
//     ClickOS VM per platform (the merge is provably isolation-preserving:
//     the checker verified each config alone, configs share no elements, and
//     the demux enforces explicit addressing);
//   - stateful or sandbox-verdict modules get their own VM, wrapped with a
//     ChangeEnforcer when required.
//
// Placement is resource-aware: every request passes the scheduler's
// admission control (per-tenant quotas), then its placement engine ranks the
// platforms with headroom by the active policy; the controller verifies the
// candidates in that order, so the engine proposes but never bypasses
// verification. Stateful tenants can be live-migrated between platforms
// (suspend → re-verify on target → transfer → resume → cutover), and
// Rebalance() drains hot platforms through the same path.
//
// Fault tolerance: every platform mutation travels as a ControlRequest over
// the fleet's ControlChannel (lossy and partitionable under a fault plan),
// each deploy/migration is journaled write-ahead in a DeployJournal, and a
// controller crash is modeled by destroying the Orchestrator and building a
// new one over the surviving PlatformFleet + journal; RecoverFromJournal()
// then converges every in-flight entry by probing actual guest state —
// completing, rolling back, or re-placing it, re-verifying on ambiguity.
// Quota reservations are held by RAII ReservationGuards, so no error path
// can strand a reservation: within one controller lifetime the guard's
// destructor releases it, and across a crash the engine's usage is rebuilt
// from adopted journal entries only.
#ifndef SRC_CONTROLLER_ORCHESTRATOR_H_
#define SRC_CONTROLLER_ORCHESTRATOR_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/controller/control_channel.h"
#include "src/controller/controller.h"
#include "src/controller/fleet.h"
#include "src/controller/journal.h"
#include "src/platform/platform.h"
#include "src/scheduler/engine.h"

namespace innet::controller {

struct OrchestratedDeploy {
  DeployOutcome outcome;      // the controller's verification result
  bool consolidated = false;  // true when placed into the shared VM
  platform::Vm::VmId vm_id = 0;
  uint64_t journal_id = 0;    // the deploy's WAL entry
};

// Result of failing a platform over: which tenants were stranded, which
// could be re-verified and re-placed on survivors, and what the control
// plane paid for it.
struct FailoverReport {
  std::string failed_platform;
  bool unknown_platform = false;  // name matched no platform: clean no-op
  bool already_failed = false;    // repeated failure report: idempotent no-op
  size_t tenants_affected = 0;
  size_t recovered = 0;   // re-verified + re-placed on a surviving platform
  size_t lost = 0;        // no surviving placement satisfied verification
  // old module id -> new module id for every recovered tenant.
  std::vector<std::pair<std::string, std::string>> remapped;
  std::vector<std::string> lost_module_ids;
  // Wall-clock spent re-verifying and re-placing (the control-plane share of
  // recovery time; data-plane boot time accrues on the simulated clock).
  double reverify_ms = 0;
};

// Synchronous answer to MigrateTenant: whether the migration mechanism was
// engaged. The outcome arrives later through the MigrationCallback (the
// suspend takes simulated time).
struct MigrationStart {
  bool started = false;
  std::string reason;  // why it could not start
};

// Outcome of one migration, delivered when the cutover (or abort) happened.
struct MigrationReport {
  bool ok = false;
  bool live = false;  // suspend/resume state transfer (vs. stateless redeploy)
  std::string reason;
  std::string module_id;      // the pre-migration id
  std::string new_module_id;  // the post-migration id (re-verified deployment)
  std::string source;
  std::string target;
  Ipv4Address old_addr;
  Ipv4Address new_addr;
  // Packets that arrived during the blackout and were carried to the target.
  size_t parked_packets = 0;
};

struct RebalanceReport {
  size_t hot_platforms = 0;
  size_t migrations_started = 0;
  // module id -> chosen target, in start order.
  std::vector<std::pair<std::string, std::string>> moves;
};

// What RecoverFromJournal did with the surviving WAL after a controller
// crash: every non-terminal entry is scanned and converged exactly once.
struct RecoveryReport {
  size_t scanned = 0;      // journal entries examined
  size_t adopted = 0;      // live (cut-over) tenants whose belief was rebuilt
  size_t completed = 0;    // in-flight entries found applied and completed
  size_t resumed = 0;      // in-flight entries re-sent or re-placed afresh
  size_t rolled_back = 0;  // in-flight entries undone
  size_t killed = 0;       // tenants whose guests did not survive the crash
};

// Outcome of reconciling one platform's actual guest state against
// controller belief after a partition heals.
struct ReconcileReport {
  std::string platform;
  size_t checked = 0;   // placements believed to live on the platform
  size_t healthy = 0;   // guest present (running, booting, or suspended)
  size_t lost = 0;      // guest gone: tenant killed + journaled
  size_t rearmed = 0;   // in-flight confirm chains restarted
  size_t cleanups = 0;  // deferred uninstalls for unacked installs flushed
};

// Result of evicting a tenant for cross-region migration: the original
// request always travels (the adopting region re-verifies from first
// principles); stateful tenants additionally carry their frozen guest state.
// Consolidated tenants have nothing to carry (`moved` stays null).
struct TenantExport {
  bool ok = false;
  std::string error;
  ClientRequest request;
  std::shared_ptr<platform::InNetPlatform::MigratedVm> moved;
};

// Result of adopting a tenant exported by another region.
struct TenantAdopt {
  bool ok = false;
  std::string error;
  std::string module_id;
  std::string platform;
  Ipv4Address addr;
};

struct OrchestratorOptions {
  platform::VmCostModel cost_model;
  uint64_t platform_memory_bytes = 16ull << 30;
  scheduler::PlacementPolicyKind policy = scheduler::PlacementPolicyKind::kFirstFit;
  // Retry schedule for channel-routed (asynchronous) control operations.
  ControlRetryPolicy control_retry;
  // Post-placement confirmation probing: placed -> booted -> cut-over as
  // health probes observe the guest, re-probing up to confirm_rounds times.
  sim::TimeNs confirm_interval = 50 * sim::kMillisecond;
  int confirm_rounds = 10;
};

class Orchestrator {
 public:
  using MigrationCallback = std::function<void(const MigrationReport&)>;
  using DeployCallback = std::function<void(const OrchestratedDeploy&)>;

  // Creates one InNetPlatform per platform node in the network (the
  // orchestrator owns its fleet and journal: the common, crash-free setup).
  Orchestrator(topology::Network network, sim::EventQueue* clock, OrchestratorOptions options);
  Orchestrator(topology::Network network, sim::EventQueue* clock,
               platform::VmCostModel cost_model = {})
      : Orchestrator(std::move(network), clock, OrchestratorOptions{cost_model}) {}
  // Crash-recovery form: attaches to a fleet and journal that outlive the
  // orchestrator. Destroying an orchestrator and constructing a new one over
  // the same (fleet, journal) simulates a controller crash + restart; call
  // RecoverFromJournal() on the successor to converge.
  Orchestrator(topology::Network network, sim::EventQueue* clock, OrchestratorOptions options,
               PlatformFleet* fleet, DeployJournal* journal);
  // Defuses every quota guard still captured in a not-yet-fired continuation:
  // the guard's raw engine pointer dies with this orchestrator, and a stale
  // clock event destroying it later must not release into freed memory. The
  // successor's RecoverFromJournal rebuilds the ledger from scratch anyway.
  ~Orchestrator();

  bool AddOperatorPolicy(const std::string& reach_statement, std::string* error = nullptr) {
    return controller_.AddOperatorPolicy(reach_statement, error);
  }

  // Verify + realize: admission (quotas) → placement engine (headroom +
  // policy ranking, skipped for pinned requests) → controller verification
  // over the candidates in order → instantiation. On rejection,
  // `outcome.accepted` is false and nothing is instantiated or accounted.
  // Control messages use the channel's fault-exempt direct path, so the call
  // stays synchronous; use DeployViaChannel to exercise the lossy channel.
  OrchestratedDeploy Deploy(const ClientRequest& request);

  // As Deploy, but the install travels over the (possibly lossy) control
  // channel with idempotent retries; `on_done` fires exactly once when the
  // placement is acked or abandoned. Under an ideal channel the whole flow
  // completes before this returns. Mixing channel deploys with synchronous
  // Deploy calls for the *same* platform's shared VM while one is still in
  // flight is unsupported (the shared-VM rebuild queue serializes channel
  // deploys only).
  void DeployViaChannel(const ClientRequest& request, DeployCallback on_done = nullptr);

  // Stops a module: removes its VM or rebuilds the shared VM without it.
  // A never-placed module id is a clean no-op returning false.
  bool Kill(const std::string& module_id);

  // Live-migrates a module to `target_platform`. Stateful tenants move via
  // suspend → re-verify on target → state transfer → resume → switch-rule
  // cutover; traffic arriving during the blackout parks in the source's
  // bounded stall buffer and is re-addressed + replayed on the target.
  // Consolidated (stateless) tenants degenerate to make-before-break
  // redeployment — nothing to carry. `on_done` fires exactly once when the
  // migration completes or aborts (never when started=false). Every step is
  // a journaled control-channel operation: under loss the client retries
  // with the same idempotency token, and an import that fails on the target
  // re-adopts the guest on the source exactly once.
  MigrationStart MigrateTenant(const std::string& module_id, const std::string& target_platform,
                               MigrationCallback on_done = nullptr);

  // Background drain: migrates dedicated-VM tenants off every platform whose
  // memory utilization exceeds `drain_above_utilization`, choosing targets
  // with the active placement policy among the non-hot platforms.
  RebalanceReport Rebalance(double drain_above_utilization = 0.7);

  // Declares a platform node dead and fails its tenants over: every module
  // placed there is killed, then re-deployed through the full verification
  // pipeline (security + operator policy + client requirements) against the
  // surviving platforms — stateless tenants re-merge into the target's
  // shared VM. The failed platform is skipped by future deployments until
  // RestorePlatform. Idempotent: repeating the report (already_failed) or
  // naming an unknown platform (unknown_platform) is a clean no-op.
  FailoverReport MarkPlatformFailed(const std::string& platform_name);

  // Brings a failed platform back into the placement pool with a fresh
  // data-plane instance (its previous guests died with the node).
  void RestorePlatform(const std::string& platform_name);

  // --- Fault-tolerant control plane -----------------------------------------

  // Replays the write-ahead journal after a simulated controller crash:
  // rebuilds controller/scheduler/orchestrator belief for completed entries
  // and converges every in-flight one against actual platform state.
  // Recovery probes the platforms directly (the operator restoring a
  // controller is assumed to have a working path for reads); re-sent
  // mutations go through the channel under their original tokens.
  RecoveryReport RecoverFromJournal();

  // Partitions (or heals) the control link to a platform. While partitioned
  // the platform keeps serving installed tenants — watchdog and buffers are
  // local — but no control message crosses in either direction. Healing
  // automatically reconciles controller belief against the platform's
  // actual guest state (see ReconcilePlatform).
  void SetPartitioned(const std::string& platform_name, bool partitioned);

  // Compares belief with actuality for one platform: placements whose guests
  // vanished are killed + journaled, in-flight confirm chains are re-armed,
  // and deferred cleanups (unacked installs that gave up mid-partition) are
  // flushed. Safe to call at any time; SetPartitioned(name, false) calls it.
  ReconcileReport ReconcilePlatform(const std::string& platform_name);

  // --- Federation hooks ------------------------------------------------------

  // Evicts a module for cross-region migration. Stateful tenants suspend and
  // detach over the intra-region channel (loss applies), then leave with
  // their frozen guest; consolidated tenants are simply retired (the
  // adopting region redeploys from the request). `on_done` fires exactly
  // once; on failure the guest resumes here and nothing is released.
  using ExportCallback = std::function<void(const TenantExport&)>;
  void ExportTenant(const std::string& module_id, ExportCallback on_done);

  // Adopts a tenant handed over by the federation coordinator: admission →
  // verification → snapshot import → parked-traffic replay, on the channel's
  // direct path (the WAN hop's faults were already paid on the coordinator's
  // kRegionImport leg). Null `moved` degenerates to a plain Deploy.
  TenantAdopt AdoptMigrated(const ClientRequest& request,
                            std::shared_ptr<platform::InNetPlatform::MigratedVm> moved);

  Controller& controller() { return controller_; }
  scheduler::PlacementEngine& engine() { return engine_; }
  platform::InNetPlatform* platform(const std::string& name) { return fleet_->Get(name); }
  DeployJournal& journal() { return *journal_; }
  const DeployJournal& journal() const { return *journal_; }
  PlatformFleet& fleet() { return *fleet_; }
  ControlChannel& channel() { return fleet_->channel(); }
  ControlClient& control_client() { return client_; }
  // Attaches the control-plane fault oracle (nullptr = ideal channel).
  void SetControlFaults(sim::FaultInjector* injector) { fleet_->SetControlFaults(injector); }

  // Tenants currently sharing the consolidated VM on `platform`.
  size_t ConsolidatedTenantCount(const std::string& platform_name) const;

  size_t placement_count() const { return placements_.size(); }
  bool HasPlacement(const std::string& module_id) const {
    return placements_.count(module_id) != 0;
  }
  // (platform name, dedicated VM id or 0 when consolidated), or nullptr.
  const std::pair<std::string, platform::Vm::VmId>* FindPlacement(
      const std::string& module_id) const;

 private:
  struct PlatformState {
    std::vector<platform::TenantConfig> consolidated;      // shared-VM tenants
    std::vector<std::string> consolidated_module_ids;      // parallel to the above
    platform::Vm::VmId shared_vm = 0;
    // Channel deploys rebuild the shared VM one at a time: each queued task
    // computes its desired tenant list only when it runs, so in-flight
    // rebuilds never clobber each other.
    bool rebuild_busy = false;
    std::deque<std::function<void(std::function<void()>)>> rebuild_queue;
  };
  struct MigrationCtx;

  // Rebuilds `state`'s shared VM from its current tenant list over the
  // channel's direct path. Returns 0 and fills *error on failure (the old
  // VM is kept in that case).
  platform::Vm::VmId RebuildSharedVm(const std::string& platform_name, PlatformState* state,
                                     std::string* error);

  // Verification + instantiation over an explicit candidate order, without
  // admission (Deploy and the migration paths wrap it). When `journal_id`
  // is non-zero the entry is advanced through verified/placed/cut-over (or
  // rolled back) as the synchronous flow progresses.
  OrchestratedDeploy DeployOn(const ClientRequest& request,
                              const std::vector<std::string>& candidates, uint64_t journal_id);

  // Shared bookkeeping once a platform acked a placement. Also hands the
  // module's verify-time path digest to the INT collector so the data plane
  // starts attesting sampled packets against it.
  void CommitPlacement(const ClientRequest& request, const std::string& module_id,
                       const std::string& platform_name, platform::Vm::VmId dedicated_vm);

  // Drops the module's INT attestation keys before its deployment record is
  // erased. The client-id key survives while the client still has another
  // live module (migration re-registers via CommitPlacement anyway).
  void ClearModuleDigest(const std::string& module_id);

  // Ledger prober: fills *out from the named platform's live state.
  bool ProbePlatform(const std::string& name, scheduler::PlatformResources* out);

  // Creates a quota guard destined to ride an async continuation, registering
  // it so ~Orchestrator can defuse it if the continuation outlives us.
  std::shared_ptr<scheduler::ReservationGuard> MakeChannelGuard(const std::string& client_id);

  // Serialized shared-VM rebuild queue for channel deploys.
  void EnqueueRebuild(const std::string& platform_name,
                      std::function<void(std::function<void()>)> task);
  void RunNextRebuild(const std::string& platform_name);

  // Confirmation chain: probe the placed guest until it is seen up, then
  // advance the journal placed -> booted -> cut-over. Bounded rounds; a
  // give-up (partitioned platform) stops the chain until a heal re-arms it.
  void ScheduleConfirm(uint64_t journal_id, int rounds_left);
  void ConfirmProbe(uint64_t journal_id, int rounds_left);

  // Stateful migration chain steps (each runs when the previous op's ack
  // arrives over the channel).
  void MigrationSuspendDone(const std::shared_ptr<MigrationCtx>& ctx, ControlResponse response);
  void MigrationExportDone(const std::shared_ptr<MigrationCtx>& ctx, ControlResponse response);
  void MigrationImportDone(const std::shared_ptr<MigrationCtx>& ctx, ControlResponse response);
  void MigrationCutoverDone(const std::shared_ptr<MigrationCtx>& ctx, ControlResponse response);
  void AbortMigration(const std::shared_ptr<MigrationCtx>& ctx, const std::string& reason);

  // The module address currently assigned to `module_id` (0.0.0.0 if gone).
  Ipv4Address ModuleAddr(const std::string& module_id) const;

  // Every orchestrated module costs one ClickOS guest (consolidation makes
  // the marginal cost lower, but admission charges the worst case: the
  // shared-VM rebuild transiently needs a full extra guest).
  uint64_t ModuleMemoryBytes() const {
    return cost_model_.MemoryBytes(platform::VmKind::kClickOs);
  }

  Controller controller_;
  sim::EventQueue* clock_;
  platform::VmCostModel cost_model_;
  OrchestratorOptions options_;
  scheduler::PlacementEngine engine_;
  // Owned in the common setup; null when attached to an external fleet /
  // journal (the crash-recovery form).
  std::unique_ptr<PlatformFleet> owned_fleet_;
  std::unique_ptr<DeployJournal> owned_journal_;
  PlatformFleet* fleet_;
  DeployJournal* journal_;
  ControlClient client_;
  // Liveness token for every continuation this orchestrator schedules: a
  // probe or retry that fires after the controller "crashed" must be a
  // silent no-op, never a use-after-free.
  std::shared_ptr<char> alive_;
  std::unordered_map<std::string, PlatformState> platforms_;
  // module id -> (platform name, dedicated VM id or 0 when consolidated)
  std::unordered_map<std::string, std::pair<std::string, platform::Vm::VmId>> placements_;
  // The original request behind every live module, kept so failover and
  // migration can re-verify and re-place tenants from first principles.
  std::unordered_map<std::string, ClientRequest> requests_;
  // Installs that gave up unacked: the target may or may not have executed
  // them. ReconcilePlatform flushes an idempotent uninstall for each.
  std::vector<std::pair<std::string, Ipv4Address>> pending_cleanups_;
  // Every guard handed to an async continuation, so the destructor can defuse
  // the ones still alive (their engine pointer dies with us).
  std::vector<std::weak_ptr<scheduler::ReservationGuard>> channel_guards_;
  obs::Counter* ctr_migrations_started_ = nullptr;
  obs::Counter* ctr_migrations_completed_ = nullptr;
  obs::Counter* ctr_migrations_aborted_ = nullptr;
  obs::Counter* ctr_replays_ = nullptr;
};

}  // namespace innet::controller

#endif  // SRC_CONTROLLER_ORCHESTRATOR_H_
