#include "src/controller/stock_modules.h"

namespace innet::controller {

std::string StockDnsServer() {
  return "FromNetfront() -> server :: DnsGeoServer() -> ToNetfront();\n";
}

std::string StockReverseProxy(Ipv4Address origin) {
  return "proxy :: ReverseProxy(SELF $SELF, ORIGIN " + origin.ToString() +
         ");\n"
         "FromNetfront() -> proxy;\n"
         "proxy[0] -> ToNetfront();\n"
         "proxy[1] -> ToNetfront();\n";
}

std::string StockTunnel(Ipv4Address remote, const Ipv4Prefix& owned) {
  // Inbound tunneled traffic is decapsulated; the inner source must belong to
  // the requester's registered prefix (this is what makes the client variant
  // fully safe in Table 1). The reverse direction encapsulates toward the
  // tunnel remote, which the controller whitelists.
  return "decap :: UDPTunnelDecap();\n"
         "FromNetfront() -> IPClassifier(udp dst port 4789, -) -> decap;\n"
         "decap -> IPFilter(allow src net " +
         owned.ToString() +
         ") -> ToNetfront();\n"
         "encap :: UDPTunnelEncap($SELF, " +
         remote.ToString() +
         ", 4789);\n"
         "back :: FromNetfront();\n"
         "back -> encap -> ToNetfront();\n";
}

std::string StockX86Vm() {
  return "FromNetfront() -> X86Vm() -> ToNetfront();\n";
}

std::string SubstituteSelf(const std::string& config, Ipv4Address addr) {
  std::string out;
  out.reserve(config.size());
  const std::string token = "$SELF";
  size_t pos = 0;
  while (true) {
    size_t hit = config.find(token, pos);
    if (hit == std::string::npos) {
      out.append(config, pos, std::string::npos);
      break;
    }
    out.append(config, pos, hit - pos);
    out.append(addr.ToString());
    pos = hit + token.size();
  }
  return out;
}

}  // namespace innet::controller
