// PlatformFleet: the data-plane side of the control split. It owns the
// InNetPlatform instances and the ControlChannel (with each platform's
// ControlEndpoint and its idempotency/dedup memory), and it outlives the
// Orchestrator — destroying and re-creating the orchestrator against the
// same fleet + DeployJournal is exactly the simulated controller crash that
// RecoverFromJournal converges from: the platforms keep serving installed
// tenants throughout (watchdogs are local), only controller belief is lost.
#ifndef SRC_CONTROLLER_FLEET_H_
#define SRC_CONTROLLER_FLEET_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/controller/control_channel.h"
#include "src/platform/platform.h"
#include "src/sim/event_queue.h"

namespace innet::controller {

class PlatformFleet {
 public:
  PlatformFleet(sim::EventQueue* clock, platform::VmCostModel cost_model,
                uint64_t platform_memory_bytes);

  // Creates the platform's data-plane instance and registers its control
  // endpoint. Returns the existing instance when already present.
  platform::InNetPlatform* AddPlatform(const std::string& name);
  platform::InNetPlatform* Get(const std::string& name);
  bool Has(const std::string& name) const { return boxes_.count(name) != 0; }
  // Replaces a dead node with a fresh instance. The new node has no dedup
  // memory (its endpoint is reset): pre-failure tokens may re-execute there,
  // which is the correct semantics for a replacement machine.
  platform::InNetPlatform* Replace(const std::string& name);

  std::vector<std::string> Names() const;  // sorted

  ControlChannel& channel() { return channel_; }
  const ControlChannel& channel() const { return channel_; }
  // Attaches the control-plane fault oracle to the channel (nullptr = ideal).
  void SetControlFaults(sim::FaultInjector* injector) { channel_.SetFaultInjector(injector); }

  sim::EventQueue* clock() { return clock_; }

 private:
  // The platform-side control agent: maps each ControlOp onto the local
  // platform API. Looks the box up per delivery so Replace() is safe while
  // messages are in flight.
  void Dispatch(const std::string& name, const ControlRequest& request, RespondFn respond);

  sim::EventQueue* clock_;
  platform::VmCostModel cost_model_;
  uint64_t platform_memory_bytes_;
  ControlChannel channel_;
  std::map<std::string, std::unique_ptr<platform::InNetPlatform>> boxes_;
};

}  // namespace innet::controller

#endif  // SRC_CONTROLLER_FLEET_H_
