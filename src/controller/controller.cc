#include "src/controller/controller.h"

#include <algorithm>
#include <climits>
#include <chrono>

#include "src/controller/stock_modules.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/symexec/click_models.h"
#include "src/symexec/path_digest.h"

namespace innet::controller {

using policy::ReachChecker;
using policy::ReachSpec;
using symexec::SymGraph;

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Controller::Controller(topology::Network network) : network_(std::move(network)) {}

bool Controller::AddOperatorPolicy(const std::string& reach_statement, std::string* error) {
  std::string local_error;
  if (error == nullptr) {
    error = &local_error;
  }
  auto spec = ReachSpec::Parse(reach_statement, error);
  if (!spec) {
    return false;
  }
  operator_policies_.push_back(std::move(*spec));
  return true;
}

std::optional<Ipv4Address> Controller::NextAddress(const topology::Node& platform) const {
  // Addresses .10 upward in the platform pool; skip those already assigned.
  for (uint32_t offset = 10; offset < 250; ++offset) {
    Ipv4Address candidate(platform.address_pool.base().value() + offset);
    bool taken = false;
    for (const Deployment& dep : deployments_) {
      if (dep.addr == candidate) {
        taken = true;
        break;
      }
    }
    if (!taken) {
      return candidate;
    }
  }
  return std::nullopt;
}

symexec::SymGraph Controller::BuildVerificationGraph(const Deployment* trial,
                                                     std::string* error) {
  // Attach every committed module plus the trial one, then build and merge.
  network_.ClearAttachments();
  network_.ClearFirewallPinholes();
  std::vector<const Deployment*> all;
  for (const Deployment& dep : deployments_) {
    all.push_back(&dep);
  }
  if (trial != nullptr) {
    all.push_back(trial);
  }
  for (const Deployment* dep : all) {
    for (const FlowSpec& pinhole : dep->pinholes) {
      network_.AddFirewallPinhole(pinhole);
    }
  }
  for (const Deployment* dep : all) {
    std::vector<std::string> sources = symexec::ModuleSources(dep->config);
    std::vector<std::string> sinks = symexec::ModuleSinks(dep->config);
    topology::Network::ModuleAttachment att;
    att.platform = dep->platform;
    att.addr = dep->addr;
    att.entry_node = sources.empty() ? "" : dep->module_id + "/" + sources[0];
    att.exit_node = sinks.empty() ? "" : dep->module_id + "/" + sinks[0];
    network_.AttachModule(std::move(att));
  }

  SymGraph graph = network_.BuildSymGraph();
  for (const Deployment* dep : all) {
    auto module_graph = symexec::BuildClickModel(dep->config, error, /*embedded=*/true);
    if (!module_graph) {
      continue;  // committed deployments were validated before; trial caller checks *error
    }
    graph.Merge(*module_graph, dep->module_id);

    // Wire the platform switch to the module. The platform's module ports
    // start after its physical links, in attachment order.
    const topology::Node* platform = network_.Find(dep->platform);
    int platform_id = graph.FindNode(dep->platform);
    if (platform == nullptr || platform_id < 0) {
      continue;
    }
    int module_port = static_cast<int>(platform->neighbors.size());
    for (const auto& att : network_.attachments()) {
      if (att.platform == dep->platform) {
        if (att.addr == dep->addr) {
          break;
        }
        ++module_port;
      }
    }
    std::vector<std::string> sources = symexec::ModuleSources(dep->config);
    std::vector<std::string> sinks = symexec::ModuleSinks(dep->config);
    if (!sources.empty()) {
      int entry = graph.FindNode(dep->module_id + "/" + sources[0]);
      if (entry >= 0) {
        graph.Connect(platform_id, module_port, entry, 0);
      }
    }
    // Every module egress returns to the platform on the module's port.
    for (const std::string& sink : sinks) {
      int exit = graph.FindNode(dep->module_id + "/" + sink);
      if (exit >= 0) {
        graph.Connect(exit, 0, platform_id, module_port);
      }
    }
  }
  network_.ClearAttachments();
  return graph;
}

policy::NodeResolver Controller::MakeResolver(const Deployment* trial) const {
  // Capture by value what we need; the resolver outlives this call.
  std::string module_id = trial != nullptr ? trial->module_id : "";
  Ipv4Address module_addr = trial != nullptr ? trial->addr : Ipv4Address();
  const topology::Network* net = &network_;
  // Per committed deployment: (address, module id, element node names).
  struct DeployedRef {
    Ipv4Address addr;
    std::string id;
    std::vector<std::string> nodes;
  };
  std::vector<DeployedRef> deployed_addrs;
  for (const Deployment& dep : deployments_) {
    DeployedRef ref;
    ref.addr = dep.addr;
    ref.id = dep.module_id;
    for (const click::ElementDecl& decl : dep.config.elements) {
      ref.nodes.push_back(dep.module_id + "/" + decl.name);
    }
    deployed_addrs.push_back(std::move(ref));
  }

  return [net, module_id, module_addr, deployed_addrs,
          trial_config = trial != nullptr ? trial->config : click::ConfigGraph()](
             const std::string& spec) -> std::vector<std::string> {
    if (spec == "internet") {
      std::vector<std::string> names;
      for (const topology::Node& node : net->nodes()) {
        if (node.kind == topology::NodeKind::kInternet) {
          names.push_back(node.name);
        }
      }
      return names;
    }
    if (spec == "client" || spec == "clients") {
      std::vector<std::string> names;
      for (const topology::Node& node : net->nodes()) {
        if (node.kind == topology::NodeKind::kClientSubnet) {
          names.push_back(node.name);
        }
      }
      return names;
    }
    // Sentinel: any element of the module under deployment.
    if (spec == "__module_any__") {
      std::vector<std::string> names;
      if (!module_id.empty()) {
        for (const click::ElementDecl& decl : trial_config.elements) {
          names.push_back(module_id + "/" + decl.name);
        }
      }
      return names;
    }
    // Fully-qualified graph node names ("module-id/element") pass through
    // untouched — but "10.3.0.0/16" is a prefix, handled below.
    if (spec.find('/') != std::string::npos && !Ipv4Prefix::Parse(spec).has_value()) {
      return {spec};
    }
    // Module element reference "module:element[:port]". The first segment
    // may name a committed module id; otherwise it denotes the module under
    // deployment.
    size_t colon = spec.find(':');
    if (colon != std::string::npos) {
      std::string owner = spec.substr(0, colon);
      std::string element = spec.substr(colon + 1);
      size_t colon2 = element.find(':');
      if (colon2 != std::string::npos) {
        element = element.substr(0, colon2);  // the trailing :port is accepted and ignored
      }
      for (const DeployedRef& ref : deployed_addrs) {
        if (ref.id == owner) {
          return {ref.id + "/" + element};
        }
      }
      if (!module_id.empty()) {
        return {module_id + "/" + element};
      }
      return {};
    }
    // IP address or prefix: the owning endpoint, or a deployed module (any
    // of whose elements counts as a waypoint hit).
    if (auto addr = Ipv4Address::Parse(spec)) {
      if (!module_id.empty() && *addr == module_addr) {
        std::vector<std::string> names;
        for (const click::ElementDecl& decl : trial_config.elements) {
          names.push_back(module_id + "/" + decl.name);
        }
        return names;
      }
      for (const DeployedRef& ref : deployed_addrs) {
        if (*addr == ref.addr) {
          return ref.nodes;
        }
      }
      if (const topology::Node* owner = net->OwnerOf(*addr)) {
        return {owner->name};
      }
      return {};
    }
    if (auto prefix = Ipv4Prefix::Parse(spec)) {
      for (const topology::Node& node : net->nodes()) {
        if (node.kind == topology::NodeKind::kClientSubnet &&
            node.subnet.Overlaps(*prefix)) {
          return {node.name};
        }
      }
      return {};
    }
    // A bare element name of the trial module, or a topology node name.
    if (!module_id.empty() && trial_config.FindElement(spec) != nullptr) {
      return {module_id + "/" + spec};
    }
    if (net->Find(spec) != nullptr) {
      return {spec};
    }
    return {};
  };
}

bool Controller::CheckAllRequirements(const SymGraph& graph, const Deployment& trial,
                                      const std::vector<ReachSpec>& specs, std::string* failure,
                                      uint64_t* steps, bool via_module) const {
  symexec::EngineOptions options;
  // Long middlebox chains (the Figure 10 scaling topologies) need path
  // budgets proportional to the network diameter.
  options.max_hops =
      std::max(256, static_cast<int>(graph.node_count()) * 2 + 64);
  ReachChecker checker(&graph, MakeResolver(&trial), options);
  for (const ReachSpec& spec : specs) {
    ReachSpec effective = spec;
    if (via_module) {
      // A client requirement is about *its* processing: the flow must pass
      // through the module being deployed (this is what makes unreachable
      // platforms — Figure 3's platforms 1 and 2 for the UDP batcher — fail).
      policy::ReachNode module_waypoint;
      module_waypoint.spec = "__module_any__";
      effective.waypoints.insert(effective.waypoints.begin(), std::move(module_waypoint));
    }
    policy::ReachCheckResult result = checker.Check(effective);
    *steps += result.engine_steps;
    if (!result.satisfied) {
      *failure = spec.ToString() + ": " + result.explanation;
      return false;
    }
  }
  return true;
}

void Controller::RecordDeployMetrics(DeployOutcome* outcome, uint64_t graph_nodes) const {
  outcome->sim_verify_ns = verify_cost_.ns_per_engine_step * outcome->engine_steps +
                           verify_cost_.ns_per_graph_node * graph_nodes;
  auto& registry = obs::Registry();
  registry.GetCounter("innet_controller_requests_total",
                      {{"outcome", outcome->accepted ? "accepted" : "rejected"}})
      ->Increment();
  registry.GetCounter("innet_controller_engine_steps_total")->Increment(outcome->engine_steps);
  registry
      .GetHistogram("innet_controller_verify_latency_ms", {},
                    obs::ExponentialBuckets(0.25, 2.0, 16))
      ->Observe(static_cast<double>(outcome->sim_verify_ns) / 1e6);
  if (obs::Tracer().enabled()) {
    obs::Tracer().RecordNow(obs::EventKind::kVerifyFinish, "controller",
                            outcome->accepted ? "accepted" : "rejected: " + outcome->reason,
                            static_cast<int64_t>(outcome->sim_verify_ns));
  }
}

DeployOutcome Controller::Deploy(const ClientRequest& request) {
  return Deploy(request, {});
}

DeployOutcome Controller::Deploy(const ClientRequest& request,
                                 const std::vector<std::string>& candidate_platforms,
                                 bool candidates_ranked) {
  DeployOutcome outcome;
  auto t_start = std::chrono::steady_clock::now();
  uint64_t graph_nodes = 0;
  if (obs::Tracer().enabled()) {
    obs::Tracer().RecordNow(obs::EventKind::kVerifyStart, "controller", request.client_id);
  }

  // Parse the client's requirements once.
  std::vector<ReachSpec> client_specs;
  for (const std::string& statement : policy::SplitReachStatements(request.requirements)) {
    std::string error;
    auto spec = ReachSpec::Parse(statement, &error);
    if (!spec) {
      outcome.reason = "bad requirement: " + error;
      RecordDeployMetrics(&outcome, graph_nodes);
      return outcome;
    }
    client_specs.push_back(std::move(*spec));
  }

  std::vector<const topology::Node*> platforms = network_.Platforms();
  if (!failed_platforms_.empty()) {
    platforms.erase(std::remove_if(platforms.begin(), platforms.end(),
                                   [this](const topology::Node* node) {
                                     return IsPlatformFailed(node->name);
                                   }),
                    platforms.end());
  }
  // Candidate restriction: the scheduler's policy-ranked list, or the
  // request's pinned platform, narrows the search and fixes its order. The
  // verification loop below is unchanged — the scheduler proposes, the
  // verifier disposes.
  bool keep_caller_order = false;
  {
    std::vector<std::string> ordered = candidate_platforms;
    if (ordered.empty() && !request.pinned_platform.empty()) {
      ordered.push_back(request.pinned_platform);
    }
    if (!ordered.empty()) {
      keep_caller_order = candidates_ranked;
      std::vector<const topology::Node*> chosen;
      for (const std::string& name : ordered) {
        for (const topology::Node* node : platforms) {
          if (node->name == name) {
            chosen.push_back(node);
            break;
          }
        }
      }
      platforms = std::move(chosen);
    }
  }
  if (platforms.empty()) {
    outcome.reason = "no processing platforms available";
    RecordDeployMetrics(&outcome, graph_nodes);
    return outcome;
  }

  // Geolocation-style placement: prefer platforms close (in hops) to the
  // traffic sources the client's requirements name — the mechanism behind
  // the CDN/DNS use cases (§8). Ties and requirement-free requests keep the
  // declaration order. A policy-ranked candidate list keeps its order.
  if (!keep_caller_order) {
    policy::NodeResolver resolver = MakeResolver(nullptr);
    std::vector<std::string> anchors;
    for (const ReachSpec& spec : client_specs) {
      for (const std::string& node : resolver(spec.from.spec)) {
        anchors.push_back(node);
      }
    }
    if (!anchors.empty()) {
      auto distance = [&](const topology::Node* platform) {
        int best = INT_MAX;
        for (const std::string& anchor : anchors) {
          int d = network_.HopDistance(anchor, platform->name);
          if (d >= 0 && d < best) {
            best = d;
          }
        }
        return best;
      };
      std::stable_sort(platforms.begin(), platforms.end(),
                       [&](const topology::Node* a, const topology::Node* b) {
                         return distance(a) < distance(b);
                       });
    }
  }

  std::string last_failure = "no platform satisfied the request";
  for (const topology::Node* platform : platforms) {
    std::optional<Ipv4Address> addr = NextAddress(*platform);
    if (!addr) {
      continue;  // pool exhausted
    }

    // "Compilation": parse the configuration and build its model.
    auto t_build = std::chrono::steady_clock::now();
    std::string config_text = SubstituteSelf(request.click_config, *addr);
    std::string error;
    auto config = click::ConfigGraph::Parse(config_text, &error);
    if (!config) {
      outcome.reason = "bad configuration: " + error;
      RecordDeployMetrics(&outcome, graph_nodes);
      return outcome;
    }
    Deployment trial;
    trial.module_id = request.client_id + "-m" + std::to_string(next_module_seq_);
    trial.client_id = request.client_id;
    trial.platform = platform->name;
    trial.addr = *addr;
    trial.config = *config;
    trial.config_text = config_text;
    // Symbolic execution tells the controller exactly which flows the module
    // emits; it opens firewall pinholes for precisely those (and only when
    // the destination explicitly authorized them via the whitelist).
    for (FlowSpec& pinhole : DeriveEgressPinholes(*config, &error)) {
      bool authorized = false;
      for (const AddrPredicate& pred : pinhole.addr_predicates()) {
        for (Ipv4Address owned : request.whitelist) {
          if (pred.prefix.Contains(owned)) {
            authorized = true;
          }
        }
      }
      if (authorized) {
        trial.pinholes.push_back(std::move(pinhole));
      }
    }
    SymGraph graph = BuildVerificationGraph(&trial, &error);
    graph_nodes += graph.node_count();
    outcome.model_build_ms += MillisSince(t_build);

    // Checking: security rules, then operator policy, then client
    // requirements — all on this candidate placement.
    auto t_check = std::chrono::steady_clock::now();
    SecurityOptions sec_options;
    sec_options.requester = request.requester;
    sec_options.module_addr = *addr;
    sec_options.whitelist = request.whitelist;
    sec_options.owned_prefixes = request.owned_prefixes;
    SecurityReport security = CheckModuleSecurity(*config, sec_options, &error);
    outcome.security = security;
    if (security.verdict == Verdict::kRejected) {
      outcome.check_ms += MillisSince(t_check);
      last_failure = "security: " + security.Summary();
      continue;
    }

    std::string failure;
    bool ok = CheckAllRequirements(graph, trial, operator_policies_, &failure,
                                   &outcome.engine_steps, /*via_module=*/false);
    if (ok) {
      ok = CheckAllRequirements(graph, trial, client_specs, &failure, &outcome.engine_steps,
                                /*via_module=*/true);
    }
    outcome.check_ms += MillisSince(t_check);
    if (!ok) {
      last_failure = "on " + platform->name + ": " + failure;
      continue;
    }

    // Commit.
    trial.sandboxed = security.verdict == Verdict::kNeedsSandbox;
    trial.path_digest = symexec::ComputePathDigest(trial.config).Encode();
    outcome.accepted = true;
    outcome.module_id = trial.module_id;
    outcome.platform = trial.platform;
    outcome.module_addr = trial.addr;
    outcome.sandboxed = trial.sandboxed;
    outcome.reason = "deployed";
    deployments_.push_back(std::move(trial));
    ++next_module_seq_;
    (void)t_start;
    RecordDeployMetrics(&outcome, graph_nodes);
    return outcome;
  }

  outcome.reason = last_failure;
  RecordDeployMetrics(&outcome, graph_nodes);
  return outcome;
}

bool Controller::RestoreDeployment(const ClientRequest& request, const std::string& module_id,
                                   const std::string& platform, Ipv4Address addr, bool reverify,
                                   std::string* error) {
  std::string local_error;
  if (error == nullptr) {
    error = &local_error;
  }
  for (const Deployment& dep : deployments_) {
    if (dep.module_id == module_id) {
      return true;  // already committed — recovery replayed an applied entry
    }
  }
  if (network_.Find(platform) == nullptr) {
    *error = "unknown platform " + platform;
    return false;
  }

  std::string config_text = SubstituteSelf(request.click_config, addr);
  auto config = click::ConfigGraph::Parse(config_text, error);
  if (!config) {
    *error = "bad configuration: " + *error;
    return false;
  }
  Deployment trial;
  trial.module_id = module_id;
  trial.client_id = request.client_id;
  trial.platform = platform;
  trial.addr = addr;
  trial.config = *config;
  trial.config_text = config_text;
  for (FlowSpec& pinhole : DeriveEgressPinholes(*config, error)) {
    bool authorized = false;
    for (const AddrPredicate& pred : pinhole.addr_predicates()) {
      for (Ipv4Address owned : request.whitelist) {
        if (pred.prefix.Contains(owned)) {
          authorized = true;
        }
      }
    }
    if (authorized) {
      trial.pinholes.push_back(std::move(pinhole));
    }
  }

  SecurityOptions sec_options;
  sec_options.requester = request.requester;
  sec_options.module_addr = addr;
  sec_options.whitelist = request.whitelist;
  sec_options.owned_prefixes = request.owned_prefixes;
  SecurityReport security = CheckModuleSecurity(*config, sec_options, error);
  if (security.verdict == Verdict::kRejected) {
    *error = "security: " + security.Summary();
    return false;
  }
  trial.sandboxed = security.verdict == Verdict::kNeedsSandbox;
  trial.path_digest = symexec::ComputePathDigest(trial.config).Encode();

  if (reverify) {
    std::vector<ReachSpec> client_specs;
    for (const std::string& statement : policy::SplitReachStatements(request.requirements)) {
      auto spec = ReachSpec::Parse(statement, error);
      if (!spec) {
        *error = "bad requirement: " + *error;
        return false;
      }
      client_specs.push_back(std::move(*spec));
    }
    SymGraph graph = BuildVerificationGraph(&trial, error);
    uint64_t steps = 0;
    std::string failure;
    bool ok = CheckAllRequirements(graph, trial, operator_policies_, &failure, &steps,
                                   /*via_module=*/false);
    if (ok) {
      ok = CheckAllRequirements(graph, trial, client_specs, &failure, &steps,
                                /*via_module=*/true);
    }
    if (!ok) {
      *error = "on " + platform + ": " + failure;
      return false;
    }
  }

  deployments_.push_back(std::move(trial));
  // Keep fresh module ids unique: skip the sequence number the restored id
  // embeds ("<client>-m<seq>") so post-recovery deploys cannot collide.
  size_t marker = module_id.rfind("-m");
  if (marker != std::string::npos) {
    uint64_t seq = 0;
    bool numeric = marker + 2 < module_id.size();
    for (size_t i = marker + 2; i < module_id.size(); ++i) {
      char c = module_id[i];
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      seq = seq * 10 + static_cast<uint64_t>(c - '0');
    }
    if (numeric && seq >= next_module_seq_) {
      next_module_seq_ = seq + 1;
    }
  }
  return true;
}

bool Controller::Kill(const std::string& module_id) {
  for (size_t i = 0; i < deployments_.size(); ++i) {
    if (deployments_[i].module_id == module_id) {
      deployments_.erase(deployments_.begin() + static_cast<ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

}  // namespace innet::controller
