#include "src/controller/journal.h"

#include "src/obs/trace.h"

namespace innet::controller {

const char* JournalEntryKindName(JournalEntryKind kind) {
  switch (kind) {
    case JournalEntryKind::kDeploy:
      return "deploy";
    case JournalEntryKind::kMigration:
      return "migration";
  }
  return "unknown";
}

const char* JournalStateName(JournalState state) {
  switch (state) {
    case JournalState::kIntent:
      return "intent";
    case JournalState::kVerified:
      return "verified";
    case JournalState::kPlaced:
      return "placed";
    case JournalState::kBooted:
      return "booted";
    case JournalState::kCutover:
      return "cutover";
    case JournalState::kRolledBack:
      return "rolled_back";
    case JournalState::kSuperseded:
      return "superseded";
    case JournalState::kKilled:
      return "killed";
  }
  return "unknown";
}

DeployJournal::DeployJournal() {
  gauge_inflight_ = obs::Registry().GetGauge("innet_journal_inflight");
  gauge_inflight_->Set(0);
}

uint64_t DeployJournal::Begin(JournalEntryKind kind, const ClientRequest& request,
                              uint64_t now_ns) {
  JournalEntry entry;
  entry.id = next_id_++;
  entry.kind = kind;
  entry.request = request;
  entry.module_id = "";
  entry.updated_ns = now_ns;
  entries_.push_back(std::move(entry));
  ++transitions_;
  obs::Registry()
      .GetCounter("innet_journal_transitions_total", {{"state", "intent"}})
      ->Increment();
  RefreshGauge();
  if (obs::Tracer().enabled()) {
    obs::Tracer().Record(now_ns, obs::EventKind::kJournalTransition,
                         "journal:" + std::to_string(entries_.back().id),
                         std::string(JournalEntryKindName(kind)) + ":intent");
  }
  return entries_.back().id;
}

JournalEntry* DeployJournal::Find(uint64_t id) {
  for (JournalEntry& entry : entries_) {
    if (entry.id == id) {
      return &entry;
    }
  }
  return nullptr;
}

const JournalEntry* DeployJournal::Find(uint64_t id) const {
  for (const JournalEntry& entry : entries_) {
    if (entry.id == id) {
      return &entry;
    }
  }
  return nullptr;
}

JournalEntry* DeployJournal::FindLiveByModule(const std::string& module_id) {
  JournalEntry* found = nullptr;
  for (JournalEntry& entry : entries_) {
    if (entry.module_id == module_id && !IsTerminal(entry.state)) {
      found = &entry;  // newest wins
    }
  }
  return found;
}

void DeployJournal::Advance(uint64_t id, JournalState state, uint64_t now_ns,
                            const std::string& note) {
  JournalEntry* entry = Find(id);
  if (entry == nullptr) {
    return;
  }
  entry->state = state;
  entry->updated_ns = now_ns;
  if (!note.empty()) {
    entry->note = note;
  }
  ++transitions_;
  obs::Registry()
      .GetCounter("innet_journal_transitions_total", {{"state", JournalStateName(state)}})
      ->Increment();
  RefreshGauge();
  if (obs::Tracer().enabled()) {
    obs::Tracer().Record(now_ns, obs::EventKind::kJournalTransition,
                         "journal:" + std::to_string(id),
                         (entry->module_id.empty() ? std::string() : entry->module_id + ":") +
                             JournalStateName(state));
  }
}

bool DeployJournal::MarkModuleTerminal(const std::string& module_id, JournalState terminal,
                                       uint64_t now_ns, const std::string& note) {
  JournalEntry* entry = FindLiveByModule(module_id);
  if (entry == nullptr) {
    return false;
  }
  Advance(entry->id, terminal, now_ns, note);
  return true;
}

void DeployJournal::MarkExported(uint64_t id, uint64_t now_ns) {
  JournalEntry* entry = Find(id);
  if (entry == nullptr) {
    return;
  }
  entry->exported = true;
  entry->updated_ns = now_ns;
}

size_t DeployJournal::InFlightCount() const {
  size_t count = 0;
  for (const JournalEntry& entry : entries_) {
    if (IsInFlight(entry.state)) {
      ++count;
    }
  }
  return count;
}

void DeployJournal::RefreshGauge() {
  gauge_inflight_->Set(static_cast<double>(InFlightCount()));
}

obs::json::Value DeployJournal::ToJson() const {
  obs::json::Value out = obs::json::Value::Array();
  for (const JournalEntry& entry : entries_) {
    obs::json::Value row = obs::json::Value::Object();
    row.Set("id", entry.id);
    row.Set("kind", JournalEntryKindName(entry.kind));
    row.Set("state", JournalStateName(entry.state));
    row.Set("module_id", entry.module_id);
    row.Set("platform", entry.platform);
    if (!entry.source_platform.empty()) {
      row.Set("source_platform", entry.source_platform);
    }
    row.Set("addr", entry.addr);
    row.Set("consolidated", entry.consolidated);
    if (entry.exported) {
      row.Set("exported", true);
    }
    row.Set("vm_id", static_cast<uint64_t>(entry.vm_id));
    row.Set("updated_ns", entry.updated_ns);
    if (!entry.path_digest.empty()) {
      row.Set("path_digest", entry.path_digest);
    }
    if (!entry.note.empty()) {
      row.Set("note", entry.note);
    }
    out.Push(std::move(row));
  }
  return out;
}

}  // namespace innet::controller
