// The In-Net controller (§4.3): receives client requests, statically
// verifies them against a snapshot of the operator network (security rules,
// operator policy, the client's own requirements), picks a platform, and
// records the deployment.
#ifndef SRC_CONTROLLER_CONTROLLER_H_
#define SRC_CONTROLLER_CONTROLLER_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/click/config_parser.h"
#include "src/controller/security.h"
#include "src/policy/reach_checker.h"
#include "src/policy/reach_spec.h"
#include "src/topology/network.h"

namespace innet::controller {

struct ClientRequest {
  std::string client_id;
  RequesterClass requester = RequesterClass::kThirdParty;
  // Click configuration text (may contain $SELF); see also stock_modules.h.
  std::string click_config;
  // Reach statements, one or more, as in Figure 4.
  std::string requirements;
  // Destinations this client explicitly authorizes (addresses it owns).
  std::vector<Ipv4Address> whitelist;
  // Prefixes the client registered as its own source addresses.
  std::vector<Ipv4Prefix> owned_prefixes;
  // When non-empty, placement is restricted to exactly this platform. The
  // full verification pipeline still runs against it; the scheduler's
  // policy ranking is skipped.
  std::string pinned_platform;
};

struct Deployment {
  std::string module_id;
  std::string client_id;
  std::string platform;
  Ipv4Address addr;
  bool sandboxed = false;
  click::ConfigGraph config;
  std::string config_text;
  // Firewall pinholes installed with this deployment: inbound flows to the
  // client's registered addresses (explicit authorization, §2.1).
  std::vector<FlowSpec> pinholes;
  // Encoded verify-time path digest (symexec/path_digest.h): the hash sets of
  // every symbolically explored path through this config. Journaled and
  // carried through migration so the INT collector can attest sampled
  // packets against it at runtime.
  std::string path_digest;
};

struct DeployOutcome {
  bool accepted = false;
  std::string module_id;
  std::string platform;
  Ipv4Address module_addr;
  bool sandboxed = false;
  std::string reason;  // why rejected, or which check failed last
  SecurityReport security;
  // Timing split, mirroring Figure 10's compilation-vs-checking breakdown.
  // Wall-clock: goes to bench JSON, never into the metrics registry.
  double model_build_ms = 0;
  double check_ms = 0;
  uint64_t engine_steps = 0;
  // Simulated verification latency derived from the deterministic work
  // measures above via VerifyCostModel — this is what the registry's
  // innet_controller_verify_latency_ms histogram observes, keeping metric
  // dumps byte-identical across runs of the same (config, seed).
  uint64_t sim_verify_ns = 0;
};

// Converts the verifier's deterministic work measures (engine steps, nodes
// of each candidate verification graph) into simulated nanoseconds.
struct VerifyCostModel {
  uint64_t ns_per_engine_step = 2000;    // 2 µs per symbolic-execution step
  uint64_t ns_per_graph_node = 50000;    // 50 µs of model building per node
};

class Controller {
 public:
  explicit Controller(topology::Network network);

  // Registers an operator policy statement that must hold after every
  // deployment. Returns false on parse errors.
  bool AddOperatorPolicy(const std::string& reach_statement, std::string* error = nullptr);

  // Processes a deployment request: tries every platform, returns the first
  // placement satisfying security + operator policy + client requirements.
  DeployOutcome Deploy(const ClientRequest& request);

  // As above, but only `candidate_platforms` are tried. With
  // `candidates_ranked` (the scheduler's policy-ranked output) the given
  // order is kept; otherwise the geolocation sort still applies within the
  // restricted set. Unknown or failed names are skipped; an empty list
  // means "no restriction".
  DeployOutcome Deploy(const ClientRequest& request,
                       const std::vector<std::string>& candidate_platforms,
                       bool candidates_ranked = true);

  // Stops a deployed module. Returns false for unknown ids.
  bool Kill(const std::string& module_id);

  // Crash recovery: re-admits a deployment the journal says was already
  // verified and placed, keeping its original module id and address so the
  // controller's belief matches what is actually running on the fleet.
  // Idempotent — if the module id is already committed this is a no-op
  // success. Security checks (and pinhole derivation) always rerun, since
  // they are cheap and decide sandboxing; the full symbolic re-verification
  // only runs with `reverify` (used when the journal state is ambiguous).
  bool RestoreDeployment(const ClientRequest& request, const std::string& module_id,
                         const std::string& platform, Ipv4Address addr, bool reverify,
                         std::string* error);

  // Platform availability. A failed platform is skipped by Deploy until
  // restored — the orchestrator marks a node failed before re-placing its
  // stranded tenants, so failover verification never lands them back on the
  // dead box.
  void MarkPlatformFailed(const std::string& name) { failed_platforms_.insert(name); }
  void RestorePlatform(const std::string& name) { failed_platforms_.erase(name); }
  bool IsPlatformFailed(const std::string& name) const {
    return failed_platforms_.count(name) != 0;
  }

  const std::vector<Deployment>& deployments() const { return deployments_; }
  const topology::Network& network() const { return network_; }

  void set_verify_cost_model(VerifyCostModel model) { verify_cost_ = model; }
  const VerifyCostModel& verify_cost_model() const { return verify_cost_; }

  // Builds the verification graph for the current network plus all committed
  // deployments (and optionally one trial module). Exposed for tests.
  symexec::SymGraph BuildVerificationGraph(const Deployment* trial, std::string* error);

  // Resolves reach-language node specs against the current graph; `trial`
  // names the module whose elements "module:element" refs resolve into.
  policy::NodeResolver MakeResolver(const Deployment* trial) const;

 private:
  std::optional<Ipv4Address> NextAddress(const topology::Node& platform) const;
  bool CheckAllRequirements(const symexec::SymGraph& graph, const Deployment& trial,
                            const std::vector<policy::ReachSpec>& specs, std::string* failure,
                            uint64_t* steps, bool via_module) const;
  // Stamps sim_verify_ns, bumps the registry's request/latency/step
  // instruments, and emits the verify-finish trace event. Called on every
  // Deploy exit path.
  void RecordDeployMetrics(DeployOutcome* outcome, uint64_t graph_nodes) const;

  topology::Network network_;
  std::vector<Deployment> deployments_;
  std::vector<policy::ReachSpec> operator_policies_;
  std::unordered_set<std::string> failed_platforms_;
  uint64_t next_module_seq_ = 1;
  VerifyCostModel verify_cost_;
};

}  // namespace innet::controller

#endif  // SRC_CONTROLLER_CONTROLLER_H_
