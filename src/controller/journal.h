// The orchestrator's write-ahead deploy/migration journal. Every deploy or
// migration writes an intent record *before* any message leaves the
// controller, then advances through
//
//   intent -> verified -> placed -> booted -> cut-over
//
// (terminal failure/abandonment states: rolled_back, superseded, killed).
// The journal object is handed to the orchestrator from outside and
// survives its destruction — it models the controller's persistent WAL. A
// restarted orchestrator replays it (Orchestrator::RecoverFromJournal):
// completed entries rebuild controller/scheduler belief, and each in-flight
// entry is converged by probing the platform for actual guest state —
// completed, rolled back, or re-placed, with re-verification on ambiguity.
//
// The journal also mints the attempt-epochs behind the control channel's
// (tenant, op, epoch) idempotency tokens: a monotonic sequence that survives
// a crash, so a recovered controller can re-send a possibly-executed op
// under its original token (deduped) and can never collide a fresh op with
// a pre-crash token.
#ifndef SRC_CONTROLLER_JOURNAL_H_
#define SRC_CONTROLLER_JOURNAL_H_

#include <cstdint>
#include <deque>
#include <string>

#include "src/controller/controller.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/platform/vm.h"

namespace innet::controller {

enum class JournalEntryKind { kDeploy, kMigration };

enum class JournalState {
  kIntent,      // admitted; nothing minted yet
  kVerified,    // module id + address verified and committed in the controller
  kPlaced,      // the platform acked the install/import
  kBooted,      // a health probe saw the guest up
  kCutover,     // steady state: the tenant is live
  kRolledBack,  // undone after a failure (nothing remains)
  kSuperseded,  // replaced by a completed migration
  kKilled,      // torn down (client kill, failover, or lost guest)
};

const char* JournalEntryKindName(JournalEntryKind kind);
const char* JournalStateName(JournalState state);

struct JournalEntry {
  uint64_t id = 0;
  JournalEntryKind kind = JournalEntryKind::kDeploy;
  JournalState state = JournalState::kIntent;
  ClientRequest request;
  // Deploys: the placed module. Migrations: the *new* module once the
  // target placement verified (until then the old module id).
  std::string module_id;
  std::string platform;          // target platform
  std::string source_platform;   // migrations only
  std::string addr;              // dotted module address, "" before verify
  bool sandboxed = false;
  bool consolidated = false;
  bool exported = false;         // migrations: snapshot left the source
  platform::Vm::VmId vm_id = 0;
  // The idempotency epoch of the entry's current in-flight operation, so
  // recovery can re-send it under the same token.
  uint64_t op_epoch = 0;
  // Migrations: the journal id of the deploy entry being replaced.
  uint64_t supersedes = 0;
  // Encoded verify-time path digest for INT conformance attestation; set at
  // kVerified and re-exported on migration/recovery so restarts keep
  // attesting against the exact paths that passed verification.
  std::string path_digest;
  uint64_t updated_ns = 0;
  std::string note;
};

class DeployJournal {
 public:
  DeployJournal();

  // Appends an intent record and returns its id.
  uint64_t Begin(JournalEntryKind kind, const ClientRequest& request, uint64_t now_ns);

  JournalEntry* Find(uint64_t id);
  const JournalEntry* Find(uint64_t id) const;
  // The newest non-terminal-or-live entry carrying `module_id` (nullptr when
  // none). Used to link migrations to the deploy they supersede.
  JournalEntry* FindLiveByModule(const std::string& module_id);

  // State transition: updates the entry, the transition counters, the
  // in-flight gauge, and the trace stream.
  void Advance(uint64_t id, JournalState state, uint64_t now_ns, const std::string& note = "");
  // Marks the live entry for `module_id` terminal (no-op when none or
  // already terminal). Returns whether an entry changed.
  bool MarkModuleTerminal(const std::string& module_id, JournalState terminal, uint64_t now_ns,
                          const std::string& note);
  // Records that a migration's snapshot left the source platform.
  void MarkExported(uint64_t id, uint64_t now_ns);

  // Monotonic attempt-epoch mint for control-channel idempotency tokens.
  uint64_t MintEpoch() { return ++epoch_seq_; }

  const std::deque<JournalEntry>& entries() const { return entries_; }
  std::deque<JournalEntry>& mutable_entries() { return entries_; }

  static bool IsTerminal(JournalState state) {
    return state == JournalState::kRolledBack || state == JournalState::kSuperseded ||
           state == JournalState::kKilled;
  }
  static bool IsInFlight(JournalState state) {
    return !IsTerminal(state) && state != JournalState::kCutover;
  }

  size_t InFlightCount() const;
  uint64_t transitions() const { return transitions_; }

  obs::json::Value ToJson() const;

 private:
  void RefreshGauge();

  std::deque<JournalEntry> entries_;
  uint64_t next_id_ = 1;
  uint64_t epoch_seq_ = 0;
  uint64_t transitions_ = 0;
  obs::Gauge* gauge_inflight_ = nullptr;
};

}  // namespace innet::controller

#endif  // SRC_CONTROLLER_JOURNAL_H_
