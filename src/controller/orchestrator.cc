#include "src/controller/orchestrator.h"

#include <algorithm>
#include <chrono>

#include "src/platform/consolidation.h"

namespace innet::controller {

using platform::InNetPlatform;
using platform::TenantConfig;
using platform::Vm;

Orchestrator::Orchestrator(topology::Network network, sim::EventQueue* clock,
                           platform::VmCostModel cost_model)
    : controller_(std::move(network)), clock_(clock), cost_model_(cost_model) {
  for (const topology::Node* node : controller_.network().Platforms()) {
    PlatformState state;
    state.box = std::make_unique<InNetPlatform>(clock_, cost_model_);
    platforms_.emplace(node->name, std::move(state));
  }
}

InNetPlatform* Orchestrator::platform(const std::string& name) {
  auto it = platforms_.find(name);
  return it == platforms_.end() ? nullptr : it->second.box.get();
}

size_t Orchestrator::ConsolidatedTenantCount(const std::string& platform_name) const {
  auto it = platforms_.find(platform_name);
  return it == platforms_.end() ? 0 : it->second.consolidated.size();
}

Vm::VmId Orchestrator::RebuildSharedVm(PlatformState* state, std::string* error) {
  Vm::VmId old_vm = state->shared_vm;
  if (state->consolidated.empty()) {
    if (old_vm != 0) {
      state->box->UninstallVm(old_vm);
      state->shared_vm = 0;
    }
    return 0;
  }
  Vm::VmId new_vm = state->box->InstallConsolidated(state->consolidated, error);
  if (new_vm == 0) {
    return 0;
  }
  if (old_vm != 0) {
    state->box->UninstallVm(old_vm);
  }
  state->shared_vm = new_vm;
  return new_vm;
}

OrchestratedDeploy Orchestrator::Deploy(const ClientRequest& request) {
  OrchestratedDeploy result;
  result.outcome = controller_.Deploy(request);
  if (!result.outcome.accepted) {
    return result;
  }
  auto it = platforms_.find(result.outcome.platform);
  if (it == platforms_.end()) {
    result.outcome.accepted = false;
    result.outcome.reason = "platform has no data-plane instance";
    controller_.Kill(result.outcome.module_id);
    return result;
  }
  PlatformState& state = it->second;
  const Deployment& deployment = controller_.deployments().back();

  std::string error;
  bool stateless = platform::IsStatelessConfig(deployment.config);
  if (stateless && !result.outcome.sandboxed) {
    // Consolidate: static checking already proved the module safe in
    // isolation; merging adds only the explicit-addressing demux.
    state.consolidated.push_back(TenantConfig{deployment.addr, deployment.config_text});
    state.consolidated_module_ids.push_back(deployment.module_id);
    Vm::VmId vm = RebuildSharedVm(&state, &error);
    if (vm == 0) {
      state.consolidated.pop_back();
      state.consolidated_module_ids.pop_back();
      controller_.Kill(result.outcome.module_id);
      result.outcome.accepted = false;
      result.outcome.reason = "consolidation failed: " + error;
      return result;
    }
    result.consolidated = true;
    result.vm_id = vm;
    placements_[result.outcome.module_id] = {result.outcome.platform, 0};
    requests_[result.outcome.module_id] = request;
    return result;
  }

  // Dedicated VM, sandboxed when the verdict requires it.
  Vm::VmId vm = state.box->Install(deployment.addr, deployment.config_text, &error,
                                   platform::VmKind::kClickOs, result.outcome.sandboxed,
                                   request.whitelist);
  if (vm == 0) {
    controller_.Kill(result.outcome.module_id);
    result.outcome.accepted = false;
    result.outcome.reason = "platform install failed: " + error;
    return result;
  }
  result.vm_id = vm;
  placements_[result.outcome.module_id] = {result.outcome.platform, vm};
  requests_[result.outcome.module_id] = request;
  return result;
}

FailoverReport Orchestrator::MarkPlatformFailed(const std::string& platform_name) {
  FailoverReport report;
  report.failed_platform = platform_name;
  auto it = platforms_.find(platform_name);
  if (it == platforms_.end()) {
    return report;
  }
  controller_.MarkPlatformFailed(platform_name);

  // Collect the stranded tenants with their original requests, in module-id
  // order so the failover sequence is deterministic.
  std::vector<std::pair<std::string, ClientRequest>> stranded;
  for (const auto& [module_id, placement] : placements_) {
    if (placement.first != platform_name) {
      continue;
    }
    auto request = requests_.find(module_id);
    if (request != requests_.end()) {
      stranded.emplace_back(module_id, request->second);
    }
  }
  std::sort(stranded.begin(), stranded.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  report.tenants_affected = stranded.size();

  // The node died: its guests and switch state are gone. Replace the
  // data-plane instance wholesale rather than tearing guests down one by
  // one (which would schedule suspend/boot events on a dead box).
  PlatformState& state = it->second;
  state.box = std::make_unique<InNetPlatform>(clock_, cost_model_);
  state.consolidated.clear();
  state.consolidated_module_ids.clear();
  state.shared_vm = 0;

  for (const auto& [module_id, request] : stranded) {
    controller_.Kill(module_id);
    placements_.erase(module_id);
    requests_.erase(module_id);
  }

  // Re-verify and re-place every stranded tenant on the survivors. Deploy
  // runs the full pipeline again, so a tenant whose requirements only the
  // dead platform satisfied is reported lost rather than silently misplaced.
  auto t_start = std::chrono::steady_clock::now();
  for (const auto& [old_module_id, request] : stranded) {
    OrchestratedDeploy redo = Deploy(request);
    if (redo.outcome.accepted) {
      ++report.recovered;
      report.remapped.emplace_back(old_module_id, redo.outcome.module_id);
    } else {
      ++report.lost;
      report.lost_module_ids.push_back(old_module_id);
    }
  }
  report.reverify_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t_start)
          .count();
  return report;
}

void Orchestrator::RestorePlatform(const std::string& platform_name) {
  auto it = platforms_.find(platform_name);
  if (it == platforms_.end()) {
    return;
  }
  controller_.RestorePlatform(platform_name);
}

bool Orchestrator::Kill(const std::string& module_id) {
  auto placement = placements_.find(module_id);
  if (placement == placements_.end()) {
    return false;
  }
  const auto& [platform_name, vm_id] = placement->second;
  PlatformState& state = platforms_.at(platform_name);
  if (vm_id != 0) {
    state.box->UninstallVm(vm_id);
  } else {
    for (size_t i = 0; i < state.consolidated_module_ids.size(); ++i) {
      if (state.consolidated_module_ids[i] == module_id) {
        state.consolidated.erase(state.consolidated.begin() + static_cast<ptrdiff_t>(i));
        state.consolidated_module_ids.erase(state.consolidated_module_ids.begin() +
                                            static_cast<ptrdiff_t>(i));
        break;
      }
    }
    std::string error;
    RebuildSharedVm(&state, &error);
  }
  placements_.erase(placement);
  requests_.erase(module_id);
  return controller_.Kill(module_id);
}

}  // namespace innet::controller
