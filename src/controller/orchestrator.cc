#include "src/controller/orchestrator.h"

#include "src/platform/consolidation.h"

namespace innet::controller {

using platform::InNetPlatform;
using platform::TenantConfig;
using platform::Vm;

Orchestrator::Orchestrator(topology::Network network, sim::EventQueue* clock,
                           platform::VmCostModel cost_model)
    : controller_(std::move(network)), clock_(clock) {
  for (const topology::Node* node : controller_.network().Platforms()) {
    PlatformState state;
    state.box = std::make_unique<InNetPlatform>(clock_, cost_model);
    platforms_.emplace(node->name, std::move(state));
  }
}

InNetPlatform* Orchestrator::platform(const std::string& name) {
  auto it = platforms_.find(name);
  return it == platforms_.end() ? nullptr : it->second.box.get();
}

size_t Orchestrator::ConsolidatedTenantCount(const std::string& platform_name) const {
  auto it = platforms_.find(platform_name);
  return it == platforms_.end() ? 0 : it->second.consolidated.size();
}

Vm::VmId Orchestrator::RebuildSharedVm(PlatformState* state, std::string* error) {
  Vm::VmId old_vm = state->shared_vm;
  if (state->consolidated.empty()) {
    if (old_vm != 0) {
      state->box->UninstallVm(old_vm);
      state->shared_vm = 0;
    }
    return 0;
  }
  Vm::VmId new_vm = state->box->InstallConsolidated(state->consolidated, error);
  if (new_vm == 0) {
    return 0;
  }
  if (old_vm != 0) {
    state->box->UninstallVm(old_vm);
  }
  state->shared_vm = new_vm;
  return new_vm;
}

OrchestratedDeploy Orchestrator::Deploy(const ClientRequest& request) {
  OrchestratedDeploy result;
  result.outcome = controller_.Deploy(request);
  if (!result.outcome.accepted) {
    return result;
  }
  auto it = platforms_.find(result.outcome.platform);
  if (it == platforms_.end()) {
    result.outcome.accepted = false;
    result.outcome.reason = "platform has no data-plane instance";
    controller_.Kill(result.outcome.module_id);
    return result;
  }
  PlatformState& state = it->second;
  const Deployment& deployment = controller_.deployments().back();

  std::string error;
  bool stateless = platform::IsStatelessConfig(deployment.config);
  if (stateless && !result.outcome.sandboxed) {
    // Consolidate: static checking already proved the module safe in
    // isolation; merging adds only the explicit-addressing demux.
    state.consolidated.push_back(TenantConfig{deployment.addr, deployment.config_text});
    state.consolidated_module_ids.push_back(deployment.module_id);
    Vm::VmId vm = RebuildSharedVm(&state, &error);
    if (vm == 0) {
      state.consolidated.pop_back();
      state.consolidated_module_ids.pop_back();
      controller_.Kill(result.outcome.module_id);
      result.outcome.accepted = false;
      result.outcome.reason = "consolidation failed: " + error;
      return result;
    }
    result.consolidated = true;
    result.vm_id = vm;
    placements_[result.outcome.module_id] = {result.outcome.platform, 0};
    return result;
  }

  // Dedicated VM, sandboxed when the verdict requires it.
  Vm::VmId vm = state.box->Install(deployment.addr, deployment.config_text, &error,
                                   platform::VmKind::kClickOs, result.outcome.sandboxed,
                                   request.whitelist);
  if (vm == 0) {
    controller_.Kill(result.outcome.module_id);
    result.outcome.accepted = false;
    result.outcome.reason = "platform install failed: " + error;
    return result;
  }
  result.vm_id = vm;
  placements_[result.outcome.module_id] = {result.outcome.platform, vm};
  return result;
}

bool Orchestrator::Kill(const std::string& module_id) {
  auto placement = placements_.find(module_id);
  if (placement == placements_.end()) {
    return false;
  }
  const auto& [platform_name, vm_id] = placement->second;
  PlatformState& state = platforms_.at(platform_name);
  if (vm_id != 0) {
    state.box->UninstallVm(vm_id);
  } else {
    for (size_t i = 0; i < state.consolidated_module_ids.size(); ++i) {
      if (state.consolidated_module_ids[i] == module_id) {
        state.consolidated.erase(state.consolidated.begin() + static_cast<ptrdiff_t>(i));
        state.consolidated_module_ids.erase(state.consolidated_module_ids.begin() +
                                            static_cast<ptrdiff_t>(i));
        break;
      }
    }
    std::string error;
    RebuildSharedVm(&state, &error);
  }
  placements_.erase(placement);
  return controller_.Kill(module_id);
}

}  // namespace innet::controller
