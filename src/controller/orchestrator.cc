#include "src/controller/orchestrator.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <unordered_map>

#include "src/obs/health.h"
#include "src/obs/trace.h"
#include "src/platform/consolidation.h"

namespace innet::controller {

using platform::InNetPlatform;
using platform::TenantConfig;
using platform::Vm;
using platform::VmState;

Orchestrator::Orchestrator(topology::Network network, sim::EventQueue* clock,
                           OrchestratorOptions options)
    : controller_(std::move(network)),
      clock_(clock),
      cost_model_(options.cost_model),
      options_(options),
      engine_(
          [this](const std::string& name, scheduler::PlatformResources* out) {
            return ProbePlatform(name, out);
          },
          options.policy) {
  for (const topology::Node* node : controller_.network().Platforms()) {
    PlatformState state;
    state.box =
        std::make_unique<InNetPlatform>(clock_, cost_model_, options_.platform_memory_bytes);
    platforms_.emplace(node->name, std::move(state));
    engine_.ledger().AddPlatform(node->name);
  }
  ctr_migrations_started_ =
      obs::Registry().GetCounter("innet_scheduler_migrations_total", {{"event", "started"}});
  ctr_migrations_completed_ =
      obs::Registry().GetCounter("innet_scheduler_migrations_total", {{"event", "completed"}});
  ctr_migrations_aborted_ =
      obs::Registry().GetCounter("innet_scheduler_migrations_total", {{"event", "aborted"}});
}

InNetPlatform* Orchestrator::platform(const std::string& name) {
  auto it = platforms_.find(name);
  return it == platforms_.end() ? nullptr : it->second.box.get();
}

size_t Orchestrator::ConsolidatedTenantCount(const std::string& platform_name) const {
  auto it = platforms_.find(platform_name);
  return it == platforms_.end() ? 0 : it->second.consolidated.size();
}

const std::pair<std::string, Vm::VmId>* Orchestrator::FindPlacement(
    const std::string& module_id) const {
  auto it = placements_.find(module_id);
  return it == placements_.end() ? nullptr : &it->second;
}

bool Orchestrator::ProbePlatform(const std::string& name, scheduler::PlatformResources* out) {
  auto it = platforms_.find(name);
  if (it == platforms_.end()) {
    return false;
  }
  PlatformState& state = it->second;
  out->memory_total = state.box->vms().memory_total();
  out->memory_used = state.box->vms().memory_used();
  out->vm_count = state.box->vms().vm_count();
  out->running_vms = state.box->vms().running_count();
  out->consolidated_tenants = state.consolidated.size();
  out->buffer_occupancy = state.box->buffer_occupancy();
  out->available = !controller_.IsPlatformFailed(name);
  return true;
}

Ipv4Address Orchestrator::ModuleAddr(const std::string& module_id) const {
  for (const Deployment& deployment : controller_.deployments()) {
    if (deployment.module_id == module_id) {
      return deployment.addr;
    }
  }
  return Ipv4Address();
}

Vm::VmId Orchestrator::RebuildSharedVm(PlatformState* state, std::string* error) {
  Vm::VmId old_vm = state->shared_vm;
  if (state->consolidated.empty()) {
    if (old_vm != 0) {
      state->box->UninstallVm(old_vm);
      state->shared_vm = 0;
    }
    return 0;
  }
  Vm::VmId new_vm = state->box->InstallConsolidated(state->consolidated, error);
  if (new_vm == 0) {
    return 0;
  }
  if (old_vm != 0) {
    state->box->UninstallVm(old_vm);
  }
  state->shared_vm = new_vm;
  return new_vm;
}

OrchestratedDeploy Orchestrator::Deploy(const ClientRequest& request) {
  // The request span roots the whole deploy tree: admission, placement
  // ranking, verification, and the on-platform boot all auto-parent to it.
  std::optional<obs::SpanScope> deploy_span;
  if (obs::Tracer().enabled()) {
    deploy_span.emplace(obs::Tracer(), clock_->now(), obs::EventKind::kDeployRequest,
                        "client:" + request.client_id);
  }
  // Admission + placement ranking first: quota and headroom rejections must
  // not burn verification time.
  scheduler::PlacementRequest needs;
  needs.memory_bytes = ModuleMemoryBytes();
  needs.pinned_platform = request.pinned_platform;
  scheduler::PlacementDecision decision = engine_.Decide(request.client_id, needs);
  if (obs::Tracer().enabled()) {
    obs::Tracer().Record(clock_->now(), obs::EventKind::kAdmission,
                         "client:" + request.client_id,
                         decision.admitted ? "admitted" : "rejected: " + decision.reject_reason);
  }
  if (!decision.admitted) {
    OrchestratedDeploy result;
    result.outcome.reason = decision.reject_reason;
    return result;
  }
  if (obs::Tracer().enabled()) {
    std::string ranked;
    for (const std::string& candidate : decision.candidates) {
      if (!ranked.empty()) {
        ranked += ',';
      }
      ranked += candidate;
    }
    obs::Tracer().Record(clock_->now(), obs::EventKind::kPlacementRanked,
                         "client:" + request.client_id, ranked,
                         static_cast<int64_t>(decision.candidates.size()));
  }
  OrchestratedDeploy result = DeployOn(request, decision.candidates);
  if (result.outcome.accepted) {
    engine_.CommitPlacement(request.client_id, ModuleMemoryBytes());
  }
  obs::Health().ObserveVerifyLatency(request.client_id,
                                     static_cast<double>(result.outcome.sim_verify_ns) / 1e6);
  return result;
}

OrchestratedDeploy Orchestrator::DeployOn(const ClientRequest& request,
                                          const std::vector<std::string>& candidates) {
  OrchestratedDeploy result;
  result.outcome = controller_.Deploy(request, candidates);
  if (!result.outcome.accepted) {
    return result;
  }
  auto it = platforms_.find(result.outcome.platform);
  if (it == platforms_.end()) {
    result.outcome.accepted = false;
    result.outcome.reason = "platform has no data-plane instance";
    controller_.Kill(result.outcome.module_id);
    return result;
  }
  PlatformState& state = it->second;
  const Deployment& deployment = controller_.deployments().back();

  std::string error;
  bool stateless = platform::IsStatelessConfig(deployment.config);
  if (stateless && !result.outcome.sandboxed) {
    // Consolidate: static checking already proved the module safe in
    // isolation; merging adds only the explicit-addressing demux.
    state.consolidated.push_back(TenantConfig{deployment.addr, deployment.config_text});
    state.consolidated_module_ids.push_back(deployment.module_id);
    Vm::VmId vm = RebuildSharedVm(&state, &error);
    if (vm == 0) {
      state.consolidated.pop_back();
      state.consolidated_module_ids.pop_back();
      controller_.Kill(result.outcome.module_id);
      result.outcome.accepted = false;
      result.outcome.reason = "consolidation failed: " + error;
      return result;
    }
    result.consolidated = true;
    result.vm_id = vm;
    placements_[result.outcome.module_id] = {result.outcome.platform, 0};
    requests_[result.outcome.module_id] = request;
    if (obs::Tracer().enabled()) {
      obs::Tracer().Record(clock_->now(), obs::EventKind::kDeployCutover,
                           "module:" + result.outcome.module_id,
                           result.outcome.platform + " consolidated", static_cast<int64_t>(vm));
    }
    return result;
  }

  // Dedicated VM, sandboxed when the verdict requires it.
  Vm::VmId vm = state.box->Install(deployment.addr, deployment.config_text, &error,
                                   platform::VmKind::kClickOs, result.outcome.sandboxed,
                                   request.whitelist);
  if (vm == 0) {
    controller_.Kill(result.outcome.module_id);
    result.outcome.accepted = false;
    result.outcome.reason = "platform install failed: " + error;
    return result;
  }
  result.vm_id = vm;
  // Dedicated guests are attributable: tag the owner before the boot
  // completion fires so lifecycle events feed the tenant's health record.
  state.box->SetVmOwner(vm, request.client_id);
  placements_[result.outcome.module_id] = {result.outcome.platform, vm};
  requests_[result.outcome.module_id] = request;
  if (obs::Tracer().enabled()) {
    obs::Tracer().Record(clock_->now(), obs::EventKind::kDeployCutover,
                         "module:" + result.outcome.module_id, result.outcome.platform,
                         static_cast<int64_t>(vm));
  }
  return result;
}

MigrationStart Orchestrator::MigrateTenant(const std::string& module_id,
                                           const std::string& target_platform,
                                           MigrationCallback on_done) {
  MigrationStart start;
  auto placement = placements_.find(module_id);
  if (placement == placements_.end()) {
    start.reason = "unknown module id";
    return start;
  }
  const std::string source = placement->second.first;
  Vm::VmId vm_id = placement->second.second;
  if (source == target_platform) {
    start.reason = "module already on target platform";
    return start;
  }
  if (platforms_.count(target_platform) == 0) {
    start.reason = "unknown target platform";
    return start;
  }
  if (controller_.IsPlatformFailed(target_platform)) {
    start.reason = "target platform is failed";
    return start;
  }
  auto request_it = requests_.find(module_id);
  if (request_it == requests_.end()) {
    start.reason = "no recorded request for module";
    return start;
  }

  if (vm_id == 0) {
    // Consolidated (stateless) tenant: migration degenerates to
    // make-before-break redeployment — there is no guest state to carry.
    // The whole exchange is synchronous, so one SpanScope parents the
    // redeploy and the abort/cutover records below.
    ctr_migrations_started_->Increment();
    std::optional<obs::SpanScope> migrate_span;
    if (obs::Tracer().enabled()) {
      migrate_span.emplace(obs::Tracer(), clock_->now(), obs::EventKind::kMigrateStart,
                           "module:" + module_id, source + "->" + target_platform);
    }
    MigrationReport report;
    report.module_id = module_id;
    report.source = source;
    report.target = target_platform;
    report.old_addr = ModuleAddr(module_id);
    ClientRequest request = request_it->second;
    request.pinned_platform.clear();
    OrchestratedDeploy redo = DeployOn(request, {target_platform});
    if (!redo.outcome.accepted) {
      ctr_migrations_aborted_->Increment();
      if (obs::Tracer().enabled()) {
        obs::Tracer().Record(clock_->now(), obs::EventKind::kMigrateAbort, "module:" + module_id,
                             redo.outcome.reason);
      }
      report.reason = "target verification failed: " + redo.outcome.reason;
      if (on_done) {
        on_done(report);
      }
      start.started = true;
      return start;
    }
    engine_.CommitPlacement(request.client_id, ModuleMemoryBytes());
    Kill(module_id);  // releases the old placement's quota share
    report.ok = true;
    report.new_module_id = redo.outcome.module_id;
    report.new_addr = redo.outcome.module_addr;
    ctr_migrations_completed_->Increment();
    if (obs::Tracer().enabled()) {
      obs::Tracer().Record(clock_->now(), obs::EventKind::kMigrateCutover, "module:" + module_id,
                           source + "->" + target_platform);
    }
    if (on_done) {
      on_done(report);
    }
    start.started = true;
    return start;
  }

  // Stateful guest: announce the migration (parks stalled traffic instead of
  // resuming), then suspend; the continuation runs when the suspend lands.
  // The migrate-start span is opened before the suspend so the suspend's
  // completion event and the whole FinishMigration continuation (which
  // re-enters it via ScopedParent) hang off one migration tree.
  uint64_t migrate_span = 0;
  if (obs::Tracer().enabled()) {
    migrate_span = obs::Tracer().Record(clock_->now(), obs::EventKind::kMigrateStart,
                                        "module:" + module_id, source + "->" + target_platform);
  }
  PlatformState& src = platforms_.at(source);
  src.box->PrepareMigrationOut(vm_id);
  bool suspending;
  {
    obs::ScopedParent in_migration(obs::Tracer(), migrate_span);
    suspending = src.box->vms().Suspend(
        vm_id, [this, module_id, source, target_platform, vm_id, migrate_span, on_done] {
          FinishMigration(module_id, source, target_platform, vm_id, migrate_span, on_done);
        });
  }
  if (!suspending) {
    src.box->CancelMigrationOut(vm_id);
    if (obs::Tracer().enabled()) {
      obs::Tracer().Record(clock_->now(), obs::EventKind::kMigrateAbort, "module:" + module_id,
                           "source guest not running", 0, migrate_span);
    }
    src.box->TakePostmortem(obs::EventKind::kMigrateAbort, vm_id, "source guest not running");
    start.reason = "source guest not running";
    return start;
  }
  ctr_migrations_started_->Increment();
  start.started = true;
  return start;
}

void Orchestrator::FinishMigration(const std::string& module_id, const std::string& source,
                                   const std::string& target, Vm::VmId vm_id,
                                   uint64_t migrate_span, MigrationCallback on_done) {
  // Re-enter the migration span: the re-verify, detach, import, and cutover
  // records below all parent to the kMigrateStart event.
  obs::ScopedParent in_migration(obs::Tracer(), migrate_span);
  MigrationReport report;
  report.module_id = module_id;
  report.source = source;
  report.target = target;
  report.live = true;
  auto abort = [&](const std::string& reason) {
    ctr_migrations_aborted_->Increment();
    if (obs::Tracer().enabled()) {
      obs::Tracer().Record(clock_->now(), obs::EventKind::kMigrateAbort, "module:" + module_id,
                           reason);
    }
    // Post-mortem on the source platform (when it still exists): the guest's
    // last element counters and the events leading up to the abort.
    auto pm_it = platforms_.find(source);
    if (pm_it != platforms_.end()) {
      pm_it->second.box->TakePostmortem(obs::EventKind::kMigrateAbort, vm_id, reason);
    }
    report.reason = reason;
    if (on_done) {
      on_done(report);
    }
  };

  auto src_it = platforms_.find(source);
  auto request_it = requests_.find(module_id);
  if (src_it == platforms_.end() || platforms_.count(target) == 0 ||
      request_it == requests_.end() || placements_.count(module_id) == 0) {
    abort("module disappeared during suspend");
    return;
  }
  PlatformState& src = src_it->second;
  Vm* guest = src.box->vms().Find(vm_id);
  if (guest == nullptr || guest->state() != VmState::kSuspended) {
    // Crashed (or was torn down) while suspending: the watchdog path owns
    // whatever is left of it.
    src.box->CancelMigrationOut(vm_id);
    abort("source guest lost during suspend");
    return;
  }
  report.old_addr = ModuleAddr(module_id);

  // Re-verify on the target while the guest is frozen. The old deployment
  // stays committed during the check, so the verifier sees the worst-case
  // network with both copies present; only after the target passes does the
  // old one disappear.
  ClientRequest request = request_it->second;
  request.pinned_platform.clear();
  DeployOutcome redo = controller_.Deploy(request, {target});
  if (!redo.accepted) {
    src.box->CancelMigrationOut(vm_id);
    abort("target verification failed: " + redo.reason);
    return;
  }

  auto moved = src.box->DetachForMigration(vm_id);
  if (!moved) {  // unreachable after the state check above
    controller_.Kill(redo.module_id);
    src.box->CancelMigrationOut(vm_id);
    abort("detach failed");
    return;
  }
  report.parked_packets = moved->parked.size();

  PlatformState& tgt = platforms_.at(target);
  std::string error;
  Vm::VmId new_vm = tgt.box->InstallMigrated(redo.module_addr, &moved->snapshot, &error);
  if (new_vm == 0) {
    // Target ran out of guest memory after verification. Re-adopt on the
    // source: its RAM was freed by the suspend, so the import fits.
    controller_.Kill(redo.module_id);
    std::string back_error;
    Vm::VmId back = src.box->InstallMigrated(report.old_addr, &moved->snapshot, &back_error);
    if (back != 0) {
      placements_[module_id].second = back;
      for (Packet& packet : moved->parked) {
        src.box->HandlePacket(packet);
      }
    }
    abort("target install failed: " + error);
    return;
  }

  // Cutover: retarget the blackout traffic at the new address and replay it
  // on the target (it parks in the stalled buffer until the resume lands),
  // then switch the control-plane records over.
  for (Packet& packet : moved->parked) {
    packet.set_ip_dst(redo.module_addr);
    tgt.box->HandlePacket(packet);
  }
  placements_.erase(module_id);
  requests_.erase(module_id);
  controller_.Kill(module_id);
  placements_[redo.module_id] = {target, new_vm};
  requests_[redo.module_id] = request;
  engine_.ReleasePlacement(request.client_id, ModuleMemoryBytes());
  engine_.CommitPlacement(request.client_id, ModuleMemoryBytes());
  report.ok = true;
  report.new_module_id = redo.module_id;
  report.new_addr = redo.module_addr;
  ctr_migrations_completed_->Increment();
  if (obs::Tracer().enabled()) {
    obs::Tracer().Record(clock_->now(), obs::EventKind::kMigrateCutover, "module:" + module_id,
                         source + "->" + target, static_cast<int64_t>(report.parked_packets));
  }
  if (on_done) {
    on_done(report);
  }
}

RebalanceReport Orchestrator::Rebalance(double drain_above_utilization) {
  RebalanceReport report;
  // Refresh every tenant's health state first: the drain order below moves
  // the least-healthy tenants off hot platforms before the merely-loaded.
  obs::Health().EvaluateAll();
  std::vector<scheduler::PlatformResources> snapshot = engine_.ledger().Snapshot();
  // Moves started here have not landed yet (the suspend takes simulated
  // time), so project their memory effect onto every later ranking.
  std::unordered_map<std::string, int64_t> planned_delta;
  auto projected_used = [&](const scheduler::PlatformResources& res) {
    auto it = planned_delta.find(res.name);
    int64_t delta = it == planned_delta.end() ? 0 : it->second;
    return static_cast<double>(static_cast<int64_t>(res.memory_used) + delta);
  };

  const uint64_t per_module = ModuleMemoryBytes();
  for (const scheduler::PlatformResources& hot : snapshot) {
    if (!hot.available || hot.memory_total == 0 ||
        hot.utilization() <= drain_above_utilization) {
      continue;
    }
    ++report.hot_platforms;
    // Only dedicated-VM (stateful) tenants are drained: consolidated ones
    // are stateless and cheap to re-place individually on demand.
    std::vector<std::string> movable;
    for (const auto& [module_id, placement] : placements_) {
      if (placement.first == hot.name && placement.second != 0) {
        movable.push_back(module_id);
      }
    }
    std::sort(movable.begin(), movable.end());
    if (obs::Health().enabled()) {
      // Drain the least-healthy tenants first (violated > degraded > ok);
      // the stable sort keeps module-id order within a severity class.
      std::stable_sort(movable.begin(), movable.end(),
                       [this](const std::string& a, const std::string& b) {
                         auto severity = [this](const std::string& module_id) {
                           auto it = requests_.find(module_id);
                           return it == requests_.end()
                                      ? 0
                                      : obs::Health().Severity(it->second.client_id);
                         };
                         return severity(a) > severity(b);
                       });
    }

    for (const std::string& module_id : movable) {
      if (projected_used(hot) / static_cast<double>(hot.memory_total) <=
          drain_above_utilization) {
        break;  // drained enough
      }
      // Rank the non-hot survivors by the active policy, with planned moves
      // projected in so one rebalance pass cannot overfill a target.
      std::vector<scheduler::PlatformResources> candidates;
      for (scheduler::PlatformResources res : snapshot) {
        if (res.name == hot.name || !res.available || res.memory_total == 0) {
          continue;
        }
        auto delta = planned_delta.find(res.name);
        if (delta != planned_delta.end()) {
          res.memory_used = static_cast<uint64_t>(
              std::max<int64_t>(0, static_cast<int64_t>(res.memory_used) + delta->second));
        }
        if (res.utilization() > drain_above_utilization) {
          continue;  // don't drain one hot platform into another
        }
        candidates.push_back(std::move(res));
      }
      scheduler::PlacementRequest needs;
      needs.memory_bytes = per_module;
      std::vector<std::string> ranked =
          scheduler::RankPlatforms(engine_.policy(), candidates, needs);
      if (ranked.empty()) {
        break;  // nowhere left to drain to
      }
      MigrationStart started = MigrateTenant(module_id, ranked.front());
      if (started.started) {
        ++report.migrations_started;
        report.moves.emplace_back(module_id, ranked.front());
        planned_delta[hot.name] -= static_cast<int64_t>(per_module);
        planned_delta[ranked.front()] += static_cast<int64_t>(per_module);
      }
    }
  }
  return report;
}

FailoverReport Orchestrator::MarkPlatformFailed(const std::string& platform_name) {
  FailoverReport report;
  report.failed_platform = platform_name;
  auto it = platforms_.find(platform_name);
  if (it == platforms_.end()) {
    return report;
  }
  controller_.MarkPlatformFailed(platform_name);

  // Collect the stranded tenants with their original requests, in module-id
  // order so the failover sequence is deterministic.
  std::vector<std::pair<std::string, ClientRequest>> stranded;
  for (const auto& [module_id, placement] : placements_) {
    if (placement.first != platform_name) {
      continue;
    }
    auto request = requests_.find(module_id);
    if (request != requests_.end()) {
      stranded.emplace_back(module_id, request->second);
    }
  }
  std::sort(stranded.begin(), stranded.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  report.tenants_affected = stranded.size();

  // The node died: its guests and switch state are gone. Replace the
  // data-plane instance wholesale rather than tearing guests down one by
  // one (which would schedule suspend/boot events on a dead box).
  PlatformState& state = it->second;
  state.box =
      std::make_unique<InNetPlatform>(clock_, cost_model_, options_.platform_memory_bytes);
  state.consolidated.clear();
  state.consolidated_module_ids.clear();
  state.shared_vm = 0;

  for (const auto& [module_id, request] : stranded) {
    controller_.Kill(module_id);
    engine_.ReleasePlacement(request.client_id, ModuleMemoryBytes());
    placements_.erase(module_id);
    requests_.erase(module_id);
  }

  // Re-verify and re-place every stranded tenant on the survivors — a
  // degenerate migration with no state to carry (the node crash destroyed
  // it). Deploy runs the full pipeline again, so a tenant whose
  // requirements only the dead platform satisfied is reported lost rather
  // than silently misplaced.
  auto t_start = std::chrono::steady_clock::now();
  for (const auto& [old_module_id, request] : stranded) {
    ClientRequest retry = request;
    retry.pinned_platform.clear();  // the pin died with the node
    OrchestratedDeploy redo = Deploy(retry);
    if (redo.outcome.accepted) {
      ++report.recovered;
      report.remapped.emplace_back(old_module_id, redo.outcome.module_id);
    } else {
      ++report.lost;
      report.lost_module_ids.push_back(old_module_id);
    }
  }
  report.reverify_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t_start)
          .count();
  return report;
}

void Orchestrator::RestorePlatform(const std::string& platform_name) {
  auto it = platforms_.find(platform_name);
  if (it == platforms_.end()) {
    return;
  }
  controller_.RestorePlatform(platform_name);
}

bool Orchestrator::Kill(const std::string& module_id) {
  auto placement = placements_.find(module_id);
  if (placement == placements_.end()) {
    return false;  // never placed (or already killed): clean no-op
  }
  const auto& [platform_name, vm_id] = placement->second;
  PlatformState& state = platforms_.at(platform_name);
  if (vm_id != 0) {
    state.box->UninstallVm(vm_id);
  } else {
    for (size_t i = 0; i < state.consolidated_module_ids.size(); ++i) {
      if (state.consolidated_module_ids[i] == module_id) {
        state.consolidated.erase(state.consolidated.begin() + static_cast<ptrdiff_t>(i));
        state.consolidated_module_ids.erase(state.consolidated_module_ids.begin() +
                                            static_cast<ptrdiff_t>(i));
        break;
      }
    }
    std::string error;
    RebuildSharedVm(&state, &error);
  }
  auto request = requests_.find(module_id);
  if (request != requests_.end()) {
    engine_.ReleasePlacement(request->second.client_id, ModuleMemoryBytes());
    requests_.erase(request);
  }
  placements_.erase(placement);
  return controller_.Kill(module_id);
}

}  // namespace innet::controller
