#include "src/controller/orchestrator.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>
#include <unordered_map>

#include "src/obs/health.h"
#include "src/obs/int_telemetry.h"
#include "src/obs/trace.h"
#include "src/platform/consolidation.h"

namespace innet::controller {

using platform::InNetPlatform;
using platform::TenantConfig;
using platform::Vm;
using platform::VmState;

namespace {

// A control op gave up after exhausting retries: leave a breadcrumb in the
// platform's always-on flight recorder so a later post-mortem shows the
// controller losing contact.
void RecordGiveUp(PlatformFleet* fleet, sim::EventQueue* clock, const std::string& platform_name,
                  const std::string& what) {
  InNetPlatform* box = fleet->Get(platform_name);
  if (box != nullptr) {
    box->flight_recorder().Record(clock->now(), obs::EventKind::kControlGiveUp,
                                  "platform:" + platform_name, what);
  }
}

}  // namespace

// State threaded through a stateful migration's control-op chain
// (suspend -> verify -> export -> import -> cutover), kept alive by the
// channel callbacks that reference it.
struct Orchestrator::MigrationCtx {
  uint64_t journal_id = 0;
  std::string module_id;  // the pre-migration id
  std::string source;
  std::string target;
  platform::Vm::VmId vm_id = 0;       // the source guest
  platform::Vm::VmId new_vm_id = 0;   // the imported guest on the target
  ClientRequest request;              // original request, pin cleared
  DeployOutcome redo;                 // the target re-verification
  MigrationReport report;
  uint64_t migrate_span = 0;
  MigrationCallback on_done;
  std::shared_ptr<platform::InNetPlatform::MigratedVm> moved;
  // The target's quota share (null until the target verifies).
  std::shared_ptr<scheduler::ReservationGuard> guard;
  // The suspend request can fail synchronously (ideal channel, guest not
  // running); MigrateTenant turns that into started=false like the old
  // in-process call did.
  bool inline_phase = true;
  bool inline_failed = false;
  std::string inline_reason;
};

Orchestrator::Orchestrator(topology::Network network, sim::EventQueue* clock,
                           OrchestratorOptions options)
    : Orchestrator(std::move(network), clock, options, nullptr, nullptr) {}

Orchestrator::Orchestrator(topology::Network network, sim::EventQueue* clock,
                           OrchestratorOptions options, PlatformFleet* fleet,
                           DeployJournal* journal)
    : controller_(std::move(network)),
      clock_(clock),
      cost_model_(options.cost_model),
      options_(options),
      engine_(
          [this](const std::string& name, scheduler::PlatformResources* out) {
            return ProbePlatform(name, out);
          },
          options.policy),
      owned_fleet_(fleet == nullptr
                       ? std::make_unique<PlatformFleet>(clock, options.cost_model,
                                                         options.platform_memory_bytes)
                       : nullptr),
      owned_journal_(journal == nullptr ? std::make_unique<DeployJournal>() : nullptr),
      fleet_(fleet != nullptr ? fleet : owned_fleet_.get()),
      journal_(journal != nullptr ? journal : owned_journal_.get()),
      client_(clock, &fleet_->channel(), options.control_retry),
      alive_(std::make_shared<char>(0)) {
  for (const topology::Node* node : controller_.network().Platforms()) {
    fleet_->AddPlatform(node->name);
    platforms_.emplace(node->name, PlatformState{});
    engine_.ledger().AddPlatform(node->name);
  }
  ctr_migrations_started_ =
      obs::Registry().GetCounter("innet_scheduler_migrations_total", {{"event", "started"}});
  ctr_migrations_completed_ =
      obs::Registry().GetCounter("innet_scheduler_migrations_total", {{"event", "completed"}});
  ctr_migrations_aborted_ =
      obs::Registry().GetCounter("innet_scheduler_migrations_total", {{"event", "aborted"}});
  ctr_replays_ = obs::Registry().GetCounter("innet_journal_replays_total");
}

Orchestrator::~Orchestrator() {
  // A crash in mid-flight leaves guards captured inside continuations whose
  // clock events have not fired (or been destroyed) yet. Their engine pointer
  // is about to dangle: defuse them so a later event tear-down cannot release
  // into freed memory — the ledger dies with this controller either way, and
  // a successor rebuilds it from the journal.
  for (auto& weak : channel_guards_) {
    if (auto guard = weak.lock()) {
      guard->Confirm();
    }
  }
}

std::shared_ptr<scheduler::ReservationGuard> Orchestrator::MakeChannelGuard(
    const std::string& client_id) {
  auto guard =
      std::make_shared<scheduler::ReservationGuard>(&engine_, client_id, ModuleMemoryBytes());
  std::erase_if(channel_guards_, [](const auto& weak) { return weak.expired(); });
  channel_guards_.push_back(guard);
  return guard;
}

size_t Orchestrator::ConsolidatedTenantCount(const std::string& platform_name) const {
  auto it = platforms_.find(platform_name);
  return it == platforms_.end() ? 0 : it->second.consolidated.size();
}

const std::pair<std::string, Vm::VmId>* Orchestrator::FindPlacement(
    const std::string& module_id) const {
  auto it = placements_.find(module_id);
  return it == placements_.end() ? nullptr : &it->second;
}

bool Orchestrator::ProbePlatform(const std::string& name, scheduler::PlatformResources* out) {
  auto it = platforms_.find(name);
  InNetPlatform* box = fleet_->Get(name);
  if (it == platforms_.end() || box == nullptr) {
    return false;
  }
  out->memory_total = box->vms().memory_total();
  out->memory_used = box->vms().memory_used();
  out->vm_count = box->vms().vm_count();
  out->running_vms = box->vms().running_count();
  out->consolidated_tenants = it->second.consolidated.size();
  out->buffer_occupancy = box->buffer_occupancy();
  out->available = !controller_.IsPlatformFailed(name);
  return true;
}

Ipv4Address Orchestrator::ModuleAddr(const std::string& module_id) const {
  for (const Deployment& deployment : controller_.deployments()) {
    if (deployment.module_id == module_id) {
      return deployment.addr;
    }
  }
  return Ipv4Address();
}

Vm::VmId Orchestrator::RebuildSharedVm(const std::string& platform_name, PlatformState* state,
                                       std::string* error) {
  ControlRequest req;
  req.op = ControlOp::kRebuildShared;
  req.tenant = "shared:" + platform_name;
  req.attempt_epoch = journal_->MintEpoch();
  req.tenants = state->consolidated;
  req.vm_id = state->shared_vm;
  ControlResponse resp = fleet_->channel().DeliverDirect(platform_name, req);
  if (!resp.ok) {
    *error = resp.error;
    return 0;  // the old shared VM is kept
  }
  state->shared_vm = resp.vm_id;
  return resp.vm_id;  // 0 when the tenant list was empty
}

void Orchestrator::CommitPlacement(const ClientRequest& request, const std::string& module_id,
                                   const std::string& platform_name, Vm::VmId dedicated_vm) {
  placements_[module_id] = {platform_name, dedicated_vm};
  requests_[module_id] = request;
  // Every placement path (deploy, migration cutover, recovery) funnels
  // through here, so registering the digest here is what "carried through
  // migration" means: the new placement re-attests under the same keys.
  // Both keys matter: the control plane reports per client id, while
  // consolidated data planes attribute sampled packets by module address.
  for (const Deployment& dep : controller_.deployments()) {
    if (dep.module_id == module_id) {
      obs::IntPathDigest digest;
      // An empty digest (config with no symbolic model) attests nothing:
      // leave the tenant unattested rather than flag every walk.
      if (obs::IntPathDigest::Decode(dep.path_digest, &digest) && !digest.empty()) {
        obs::Int().SetTenantDigest(request.client_id, digest);
        obs::Int().SetTenantDigest(dep.addr.ToString(), digest);
      }
      break;
    }
  }
}

void Orchestrator::ClearModuleDigest(const std::string& module_id) {
  const Deployment* dead = nullptr;
  for (const Deployment& dep : controller_.deployments()) {
    if (dep.module_id == module_id) {
      dead = &dep;
      break;
    }
  }
  if (dead == nullptr) {
    return;
  }
  obs::Int().ClearTenantDigest(dead->addr.ToString());
  bool client_has_other = false;
  for (const Deployment& dep : controller_.deployments()) {
    if (dep.module_id != module_id && dep.client_id == dead->client_id) {
      client_has_other = true;
      break;
    }
  }
  if (!client_has_other) {
    obs::Int().ClearTenantDigest(dead->client_id);
  }
}

OrchestratedDeploy Orchestrator::Deploy(const ClientRequest& request) {
  // The request span roots the whole deploy tree: admission, placement
  // ranking, verification, and the on-platform boot all auto-parent to it.
  std::optional<obs::SpanScope> deploy_span;
  if (obs::Tracer().enabled()) {
    deploy_span.emplace(obs::Tracer(), clock_->now(), obs::EventKind::kDeployRequest,
                        "client:" + request.client_id);
  }
  // Write the intent ahead of everything else: a crash from here on leaves a
  // journal entry to converge from.
  uint64_t jid = journal_->Begin(JournalEntryKind::kDeploy, request, clock_->now());
  // Admission + placement ranking first: quota and headroom rejections must
  // not burn verification time.
  scheduler::PlacementRequest needs;
  needs.memory_bytes = ModuleMemoryBytes();
  needs.pinned_platform = request.pinned_platform;
  scheduler::PlacementDecision decision = engine_.Decide(request.client_id, needs);
  if (obs::Tracer().enabled()) {
    obs::Tracer().Record(clock_->now(), obs::EventKind::kAdmission,
                         "client:" + request.client_id,
                         decision.admitted ? "admitted" : "rejected: " + decision.reject_reason);
  }
  if (!decision.admitted) {
    journal_->Advance(jid, JournalState::kRolledBack, clock_->now(),
                      "admission rejected: " + decision.reject_reason);
    OrchestratedDeploy result;
    result.journal_id = jid;
    result.outcome.reason = decision.reject_reason;
    return result;
  }
  if (obs::Tracer().enabled()) {
    std::string ranked;
    for (const std::string& candidate : decision.candidates) {
      if (!ranked.empty()) {
        ranked += ',';
      }
      ranked += candidate;
    }
    obs::Tracer().Record(clock_->now(), obs::EventKind::kPlacementRanked,
                         "client:" + request.client_id, ranked,
                         static_cast<int64_t>(decision.candidates.size()));
  }
  // The guard releases the quota share on every early-exit path below;
  // only a fully-acked placement confirms it.
  scheduler::ReservationGuard guard(&engine_, request.client_id, ModuleMemoryBytes());
  OrchestratedDeploy result = DeployOn(request, decision.candidates, jid);
  if (result.outcome.accepted) {
    guard.Confirm();
  }
  obs::Health().ObserveVerifyLatency(request.client_id,
                                     static_cast<double>(result.outcome.sim_verify_ns) / 1e6);
  return result;
}

OrchestratedDeploy Orchestrator::DeployOn(const ClientRequest& request,
                                          const std::vector<std::string>& candidates,
                                          uint64_t journal_id) {
  OrchestratedDeploy result;
  result.journal_id = journal_id;
  result.outcome = controller_.Deploy(request, candidates);
  if (!result.outcome.accepted) {
    if (journal_id != 0) {
      journal_->Advance(journal_id, JournalState::kRolledBack, clock_->now(),
                        "verification failed: " + result.outcome.reason);
    }
    return result;
  }
  auto it = platforms_.find(result.outcome.platform);
  if (it == platforms_.end()) {
    result.outcome.accepted = false;
    result.outcome.reason = "platform has no data-plane instance";
    controller_.Kill(result.outcome.module_id);
    if (journal_id != 0) {
      journal_->Advance(journal_id, JournalState::kRolledBack, clock_->now(),
                        result.outcome.reason);
    }
    return result;
  }
  PlatformState& state = it->second;
  const Deployment& deployment = controller_.deployments().back();
  bool stateless = platform::IsStatelessConfig(deployment.config) && !result.outcome.sandboxed;
  JournalEntry* entry = journal_id != 0 ? journal_->Find(journal_id) : nullptr;
  if (entry != nullptr) {
    entry->module_id = result.outcome.module_id;
    entry->platform = result.outcome.platform;
    entry->addr = result.outcome.module_addr.ToString();
    entry->sandboxed = result.outcome.sandboxed;
    entry->consolidated = stateless;
    entry->path_digest = deployment.path_digest;
    journal_->Advance(journal_id, JournalState::kVerified, clock_->now());
  }

  std::string error;
  if (stateless) {
    // Consolidate: static checking already proved the module safe in
    // isolation; merging adds only the explicit-addressing demux.
    state.consolidated.push_back(TenantConfig{deployment.addr, deployment.config_text});
    state.consolidated_module_ids.push_back(result.outcome.module_id);
    Vm::VmId vm = RebuildSharedVm(result.outcome.platform, &state, &error);
    if (vm == 0) {
      state.consolidated.pop_back();
      state.consolidated_module_ids.pop_back();
      controller_.Kill(result.outcome.module_id);
      result.outcome.accepted = false;
      result.outcome.reason = "consolidation failed: " + error;
      if (journal_id != 0) {
        journal_->Advance(journal_id, JournalState::kRolledBack, clock_->now(),
                          result.outcome.reason);
      }
      return result;
    }
    result.consolidated = true;
    result.vm_id = vm;
    CommitPlacement(request, result.outcome.module_id, result.outcome.platform, 0);
    if (obs::Tracer().enabled()) {
      obs::Tracer().Record(clock_->now(), obs::EventKind::kDeployCutover,
                           "module:" + result.outcome.module_id,
                           result.outcome.platform + " consolidated", static_cast<int64_t>(vm));
    }
    if (journal_id != 0) {
      if (entry != nullptr) {
        entry->vm_id = vm;
      }
      // The direct path completed synchronously: the platform's ack walks
      // the entry straight through placed to steady state.
      journal_->Advance(journal_id, JournalState::kPlaced, clock_->now(), "synchronous ack");
      journal_->Advance(journal_id, JournalState::kCutover, clock_->now());
    }
    return result;
  }

  // Dedicated VM, sandboxed when the verdict requires it. Still an explicit
  // control message — just on the channel's fault-exempt direct path.
  ControlRequest req;
  req.op = ControlOp::kInstall;
  req.tenant = result.outcome.module_id;
  req.attempt_epoch = journal_->MintEpoch();
  req.addr = deployment.addr;
  req.config_text = deployment.config_text;
  req.sandbox = result.outcome.sandboxed;
  req.whitelist = request.whitelist;
  if (entry != nullptr) {
    entry->op_epoch = req.attempt_epoch;
  }
  ControlResponse resp = fleet_->channel().DeliverDirect(result.outcome.platform, req);
  if (!resp.ok) {
    controller_.Kill(result.outcome.module_id);
    result.outcome.accepted = false;
    result.outcome.reason = "platform install failed: " + resp.error;
    if (journal_id != 0) {
      journal_->Advance(journal_id, JournalState::kRolledBack, clock_->now(),
                        result.outcome.reason);
    }
    return result;
  }
  result.vm_id = resp.vm_id;
  // Dedicated guests are attributable: tag the owner before the boot
  // completion fires so lifecycle events feed the tenant's health record.
  fleet_->Get(result.outcome.platform)->SetVmOwner(resp.vm_id, request.client_id);
  CommitPlacement(request, result.outcome.module_id, result.outcome.platform, resp.vm_id);
  if (obs::Tracer().enabled()) {
    obs::Tracer().Record(clock_->now(), obs::EventKind::kDeployCutover,
                         "module:" + result.outcome.module_id, result.outcome.platform,
                         static_cast<int64_t>(resp.vm_id));
  }
  if (journal_id != 0) {
    if (entry != nullptr) {
      entry->vm_id = resp.vm_id;
    }
    journal_->Advance(journal_id, JournalState::kPlaced, clock_->now(), "synchronous ack");
    journal_->Advance(journal_id, JournalState::kCutover, clock_->now());
  }
  return result;
}

void Orchestrator::DeployViaChannel(const ClientRequest& request, DeployCallback on_done) {
  std::optional<obs::SpanScope> deploy_span;
  if (obs::Tracer().enabled()) {
    deploy_span.emplace(obs::Tracer(), clock_->now(), obs::EventKind::kDeployRequest,
                        "client:" + request.client_id, "channel");
  }
  uint64_t jid = journal_->Begin(JournalEntryKind::kDeploy, request, clock_->now());
  OrchestratedDeploy result;
  result.journal_id = jid;

  scheduler::PlacementRequest needs;
  needs.memory_bytes = ModuleMemoryBytes();
  needs.pinned_platform = request.pinned_platform;
  scheduler::PlacementDecision decision = engine_.Decide(request.client_id, needs);
  if (obs::Tracer().enabled()) {
    obs::Tracer().Record(clock_->now(), obs::EventKind::kAdmission,
                         "client:" + request.client_id,
                         decision.admitted ? "admitted" : "rejected: " + decision.reject_reason);
  }
  if (!decision.admitted) {
    journal_->Advance(jid, JournalState::kRolledBack, clock_->now(),
                      "admission rejected: " + decision.reject_reason);
    result.outcome.reason = decision.reject_reason;
    if (on_done) {
      on_done(result);
    }
    return;
  }

  result.outcome = controller_.Deploy(request, decision.candidates);
  obs::Health().ObserveVerifyLatency(request.client_id,
                                     static_cast<double>(result.outcome.sim_verify_ns) / 1e6);
  if (!result.outcome.accepted) {
    journal_->Advance(jid, JournalState::kRolledBack, clock_->now(),
                      "verification failed: " + result.outcome.reason);
    if (on_done) {
      on_done(result);
    }
    return;
  }
  auto it = platforms_.find(result.outcome.platform);
  if (it == platforms_.end()) {
    controller_.Kill(result.outcome.module_id);
    result.outcome.accepted = false;
    result.outcome.reason = "platform has no data-plane instance";
    journal_->Advance(jid, JournalState::kRolledBack, clock_->now(), result.outcome.reason);
    if (on_done) {
      on_done(result);
    }
    return;
  }
  const Deployment& deployment = controller_.deployments().back();
  bool stateless = platform::IsStatelessConfig(deployment.config) && !result.outcome.sandboxed;
  JournalEntry* entry = journal_->Find(jid);
  entry->module_id = result.outcome.module_id;
  entry->platform = result.outcome.platform;
  entry->addr = result.outcome.module_addr.ToString();
  entry->sandboxed = result.outcome.sandboxed;
  entry->consolidated = stateless;
  entry->path_digest = deployment.path_digest;
  journal_->Advance(jid, JournalState::kVerified, clock_->now());
  uint64_t epoch = journal_->MintEpoch();
  entry->op_epoch = epoch;

  // The reservation travels with the async chain; if the chain dies on any
  // path without confirming, the guard's destructor releases the share.
  auto guard = MakeChannelGuard(request.client_id);
  std::weak_ptr<char> watch = alive_;
  const std::string platform_name = result.outcome.platform;
  const std::string module_id = result.outcome.module_id;

  if (stateless) {
    TenantConfig tenant{deployment.addr, deployment.config_text};
    EnqueueRebuild(
        platform_name,
        [this, watch, jid, request, result, guard, epoch, platform_name, module_id, tenant,
         on_done](std::function<void()> next) mutable {
          if (watch.expired()) {
            return;
          }
          // Desired tenant list computed only now: earlier queued rebuilds
          // have landed, so this is the authoritative merge set.
          PlatformState& state = platforms_[platform_name];
          std::vector<TenantConfig> desired = state.consolidated;
          desired.push_back(tenant);
          ControlRequest req;
          req.op = ControlOp::kRebuildShared;
          req.tenant = module_id;
          req.attempt_epoch = epoch;
          req.tenants = std::move(desired);
          req.vm_id = state.shared_vm;
          client_.Issue(
              platform_name, req,
              [this, watch, jid, request, result, guard, platform_name, module_id, tenant,
               on_done, next](ControlResponse resp) mutable {
                if (watch.expired()) {
                  return;
                }
                uint64_t now = clock_->now();
                if (resp.ok) {
                  PlatformState& state = platforms_[platform_name];
                  state.consolidated.push_back(tenant);
                  state.consolidated_module_ids.push_back(module_id);
                  state.shared_vm = resp.vm_id;
                  CommitPlacement(request, module_id, platform_name, 0);
                  guard->Confirm();
                  result.consolidated = true;
                  result.vm_id = resp.vm_id;
                  if (JournalEntry* e = journal_->Find(jid)) {
                    e->vm_id = resp.vm_id;
                  }
                  journal_->Advance(jid, JournalState::kPlaced, now, "platform acked rebuild");
                  if (obs::Tracer().enabled()) {
                    obs::Tracer().Record(now, obs::EventKind::kDeployCutover,
                                         "module:" + module_id,
                                         platform_name + " consolidated",
                                         static_cast<int64_t>(resp.vm_id));
                  }
                  ScheduleConfirm(jid, options_.confirm_rounds);
                } else {
                  controller_.Kill(module_id);
                  if (resp.gave_up) {
                    RecordGiveUp(fleet_, clock_, platform_name, "install:" + module_id);
                    pending_cleanups_.emplace_back(platform_name, tenant.addr);
                  }
                  journal_->Advance(jid, JournalState::kRolledBack, now,
                                    "install failed: " + resp.error);
                  result.outcome.accepted = false;
                  result.outcome.reason = "platform install failed: " + resp.error;
                }
                if (on_done) {
                  on_done(result);
                }
                next();
              });
        });
    return;
  }

  ControlRequest req;
  req.op = ControlOp::kInstall;
  req.tenant = module_id;
  req.attempt_epoch = epoch;
  req.addr = deployment.addr;
  req.config_text = deployment.config_text;
  req.sandbox = result.outcome.sandboxed;
  req.whitelist = request.whitelist;
  Ipv4Address addr = deployment.addr;
  client_.Issue(
      platform_name, req,
      [this, watch, jid, request, result, guard, platform_name, module_id, addr,
       on_done](ControlResponse resp) mutable {
        if (watch.expired()) {
          return;
        }
        uint64_t now = clock_->now();
        if (resp.ok) {
          InNetPlatform* box = fleet_->Get(platform_name);
          if (box != nullptr) {
            box->SetVmOwner(resp.vm_id, request.client_id);
          }
          CommitPlacement(request, module_id, platform_name, resp.vm_id);
          guard->Confirm();
          result.vm_id = resp.vm_id;
          if (JournalEntry* e = journal_->Find(jid)) {
            e->vm_id = resp.vm_id;
          }
          journal_->Advance(jid, JournalState::kPlaced, now, "platform acked install");
          if (obs::Tracer().enabled()) {
            obs::Tracer().Record(now, obs::EventKind::kDeployCutover, "module:" + module_id,
                                 platform_name, static_cast<int64_t>(resp.vm_id));
          }
          ScheduleConfirm(jid, options_.confirm_rounds);
        } else {
          controller_.Kill(module_id);
          if (resp.gave_up) {
            RecordGiveUp(fleet_, clock_, platform_name, "install:" + module_id);
            // The platform may have executed the unacked install: queue an
            // idempotent uninstall for the heal-time reconcile, and fire a
            // best-effort one now in case only the ack leg was lossy.
            pending_cleanups_.emplace_back(platform_name, addr);
            ControlRequest undo;
            undo.op = ControlOp::kUninstallAddr;
            undo.tenant = module_id;
            undo.attempt_epoch = journal_->MintEpoch();
            undo.addr = addr;
            client_.Issue(platform_name, undo, nullptr);
          }
          journal_->Advance(jid, JournalState::kRolledBack, now,
                            "install failed: " + resp.error);
          result.outcome.accepted = false;
          result.outcome.reason = "platform install failed: " + resp.error;
        }
        if (on_done) {
          on_done(result);
        }
      });
}

void Orchestrator::EnqueueRebuild(const std::string& platform_name,
                                  std::function<void(std::function<void()>)> task) {
  PlatformState& state = platforms_[platform_name];
  state.rebuild_queue.push_back(std::move(task));
  if (!state.rebuild_busy) {
    RunNextRebuild(platform_name);
  }
}

void Orchestrator::RunNextRebuild(const std::string& platform_name) {
  PlatformState& state = platforms_[platform_name];
  if (state.rebuild_queue.empty()) {
    state.rebuild_busy = false;
    return;
  }
  state.rebuild_busy = true;
  auto task = std::move(state.rebuild_queue.front());
  state.rebuild_queue.pop_front();
  std::weak_ptr<char> watch = alive_;
  task([this, watch, platform_name] {
    if (watch.expired()) {
      return;
    }
    RunNextRebuild(platform_name);
  });
}

void Orchestrator::ScheduleConfirm(uint64_t journal_id, int rounds_left) {
  if (rounds_left <= 0) {
    return;
  }
  std::weak_ptr<char> watch = alive_;
  clock_->ScheduleAfter(options_.confirm_interval, [this, watch, journal_id, rounds_left] {
    if (watch.expired()) {
      return;
    }
    ConfirmProbe(journal_id, rounds_left);
  });
}

void Orchestrator::ConfirmProbe(uint64_t journal_id, int rounds_left) {
  JournalEntry* entry = journal_->Find(journal_id);
  if (entry == nullptr ||
      (entry->state != JournalState::kPlaced && entry->state != JournalState::kBooted)) {
    return;  // completed, rolled back, or killed since the probe was armed
  }
  auto placement = placements_.find(entry->module_id);
  if (placement == placements_.end() || placement->second.first != entry->platform) {
    return;  // killed or migrated away meanwhile
  }
  ControlRequest probe;
  probe.op = ControlOp::kHealthProbe;  // epoch 0: read-only, no dedup
  probe.tenant = entry->module_id;
  if (entry->consolidated) {
    probe.vm_id = platforms_[entry->platform].shared_vm;
    if (auto addr = Ipv4Address::Parse(entry->addr)) {
      probe.addr = *addr;
    }
  } else {
    probe.vm_id = placement->second.second;
  }
  std::weak_ptr<char> watch = alive_;
  bool consolidated = entry->consolidated;
  std::string platform_name = entry->platform;
  client_.Issue(
      platform_name, probe,
      [this, watch, journal_id, rounds_left, consolidated, platform_name](ControlResponse r) {
        if (watch.expired()) {
          return;
        }
        JournalEntry* entry = journal_->Find(journal_id);
        if (entry == nullptr ||
            (entry->state != JournalState::kPlaced && entry->state != JournalState::kBooted)) {
          return;
        }
        uint64_t now = clock_->now();
        if (r.gave_up) {
          // Unreachable (partitioned): stop probing; the heal reconcile
          // re-arms the chain.
          RecordGiveUp(fleet_, clock_, platform_name, "confirm:" + entry->module_id);
          return;
        }
        bool up = r.ok && r.vm_known &&
                  (r.vm_state == VmState::kRunning || r.vm_state == VmState::kSuspended);
        if (up) {
          if (entry->state == JournalState::kPlaced) {
            journal_->Advance(journal_id, JournalState::kBooted, now, "probe saw guest up");
            ScheduleConfirm(journal_id, rounds_left - 1);
          } else {
            journal_->Advance(journal_id, JournalState::kCutover, now,
                              "steady state confirmed");
          }
          return;
        }
        if (r.ok && !r.vm_known && !consolidated) {
          // The dedicated guest vanished before it ever confirmed.
          journal_->Advance(journal_id, JournalState::kKilled, now,
                            "guest lost before cut-over");
          Kill(entry->module_id);
          return;
        }
        // Still booting / resuming (or a transient error): probe again.
        ScheduleConfirm(journal_id, rounds_left - 1);
      });
}

bool Orchestrator::Kill(const std::string& module_id) {
  auto placement = placements_.find(module_id);
  if (placement == placements_.end()) {
    return false;  // never placed (or already killed): clean no-op
  }
  const std::string platform_name = placement->second.first;
  const Vm::VmId vm_id = placement->second.second;
  PlatformState& state = platforms_.at(platform_name);
  if (vm_id != 0) {
    ControlRequest req;
    req.op = ControlOp::kUninstallVm;
    req.tenant = module_id;
    req.attempt_epoch = journal_->MintEpoch();
    req.vm_id = vm_id;
    fleet_->channel().DeliverDirect(platform_name, req);
  } else {
    for (size_t i = 0; i < state.consolidated_module_ids.size(); ++i) {
      if (state.consolidated_module_ids[i] == module_id) {
        state.consolidated.erase(state.consolidated.begin() + static_cast<ptrdiff_t>(i));
        state.consolidated_module_ids.erase(state.consolidated_module_ids.begin() +
                                            static_cast<ptrdiff_t>(i));
        break;
      }
    }
    std::string error;
    RebuildSharedVm(platform_name, &state, &error);
  }
  auto request = requests_.find(module_id);
  if (request != requests_.end()) {
    engine_.ReleasePlacement(request->second.client_id, ModuleMemoryBytes());
    requests_.erase(request);
  }
  placements_.erase(placement);
  journal_->MarkModuleTerminal(module_id, JournalState::kKilled, clock_->now(), "killed");
  ClearModuleDigest(module_id);
  return controller_.Kill(module_id);
}

MigrationStart Orchestrator::MigrateTenant(const std::string& module_id,
                                           const std::string& target_platform,
                                           MigrationCallback on_done) {
  MigrationStart start;
  auto placement = placements_.find(module_id);
  if (placement == placements_.end()) {
    start.reason = "unknown module id";
    return start;
  }
  const std::string source = placement->second.first;
  Vm::VmId vm_id = placement->second.second;
  if (source == target_platform) {
    start.reason = "module already on target platform";
    return start;
  }
  if (platforms_.count(target_platform) == 0) {
    start.reason = "unknown target platform";
    return start;
  }
  if (controller_.IsPlatformFailed(target_platform)) {
    start.reason = "target platform is failed";
    return start;
  }
  auto request_it = requests_.find(module_id);
  if (request_it == requests_.end()) {
    start.reason = "no recorded request for module";
    return start;
  }

  // Journal the intent before any message leaves the controller, linked to
  // the deploy entry this migration supersedes on success.
  uint64_t jid = journal_->Begin(JournalEntryKind::kMigration, request_it->second, clock_->now());
  uint64_t supersedes = 0;
  for (const JournalEntry& je : journal_->entries()) {
    if (je.id != jid && je.module_id == module_id && !DeployJournal::IsTerminal(je.state)) {
      supersedes = je.id;  // newest live entry wins
    }
  }
  {
    JournalEntry* e = journal_->Find(jid);
    e->module_id = module_id;
    e->platform = target_platform;
    e->source_platform = source;
    e->vm_id = vm_id;
    e->supersedes = supersedes;
  }

  if (vm_id == 0) {
    // Consolidated (stateless) tenant: migration degenerates to
    // make-before-break redeployment — there is no guest state to carry.
    // The whole exchange is synchronous, so one SpanScope parents the
    // redeploy and the abort/cutover records below.
    ctr_migrations_started_->Increment();
    std::optional<obs::SpanScope> migrate_span;
    if (obs::Tracer().enabled()) {
      migrate_span.emplace(obs::Tracer(), clock_->now(), obs::EventKind::kMigrateStart,
                           "module:" + module_id, source + "->" + target_platform);
    }
    MigrationReport report;
    report.module_id = module_id;
    report.source = source;
    report.target = target_platform;
    report.old_addr = ModuleAddr(module_id);
    ClientRequest request = request_it->second;
    request.pinned_platform.clear();
    OrchestratedDeploy redo = DeployOn(request, {target_platform}, jid);
    if (!redo.outcome.accepted) {
      ctr_migrations_aborted_->Increment();
      if (obs::Tracer().enabled()) {
        obs::Tracer().Record(clock_->now(), obs::EventKind::kMigrateAbort, "module:" + module_id,
                             redo.outcome.reason);
      }
      report.reason = "target verification failed: " + redo.outcome.reason;
      if (on_done) {
        on_done(report);
      }
      start.started = true;
      return start;
    }
    scheduler::ReservationGuard guard(&engine_, request.client_id, ModuleMemoryBytes());
    if (supersedes != 0) {
      journal_->Advance(supersedes, JournalState::kSuperseded, clock_->now(),
                        "migrated to " + target_platform);
    }
    Kill(module_id);  // releases the old placement's quota share
    guard.Confirm();
    report.ok = true;
    report.new_module_id = redo.outcome.module_id;
    report.new_addr = redo.outcome.module_addr;
    ctr_migrations_completed_->Increment();
    if (obs::Tracer().enabled()) {
      obs::Tracer().Record(clock_->now(), obs::EventKind::kMigrateCutover, "module:" + module_id,
                           source + "->" + target_platform);
    }
    if (on_done) {
      on_done(report);
    }
    start.started = true;
    return start;
  }

  // Stateful guest: suspend over the channel (the platform-side agent parks
  // stalled traffic and acks when the guest is frozen); the chain continues
  // when the ack arrives. The migrate-start span is opened before the
  // suspend so every chained record hangs off one migration tree.
  uint64_t migrate_span = 0;
  if (obs::Tracer().enabled()) {
    migrate_span = obs::Tracer().Record(clock_->now(), obs::EventKind::kMigrateStart,
                                        "module:" + module_id, source + "->" + target_platform);
  }
  auto ctx = std::make_shared<MigrationCtx>();
  ctx->journal_id = jid;
  ctx->module_id = module_id;
  ctx->source = source;
  ctx->target = target_platform;
  ctx->vm_id = vm_id;
  ctx->request = request_it->second;
  ctx->request.pinned_platform.clear();
  ctx->migrate_span = migrate_span;
  ctx->on_done = std::move(on_done);
  ctx->report.module_id = module_id;
  ctx->report.source = source;
  ctx->report.target = target_platform;
  ctx->report.live = true;
  ctx->report.old_addr = ModuleAddr(module_id);
  {
    JournalEntry* e = journal_->Find(jid);
    e->op_epoch = journal_->MintEpoch();
    ControlRequest req;
    req.op = ControlOp::kSuspend;
    req.tenant = module_id;
    req.attempt_epoch = e->op_epoch;
    req.vm_id = vm_id;
    std::weak_ptr<char> watch = alive_;
    obs::ScopedParent in_migration(obs::Tracer(), migrate_span);
    client_.Issue(source, req, [this, watch, ctx](ControlResponse response) {
      if (watch.expired()) {
        return;
      }
      MigrationSuspendDone(ctx, std::move(response));
    });
  }
  if (ctx->inline_failed) {
    // Mirrors the old in-process behavior: a guest that is not running
    // fails the start synchronously, with no started/aborted counting.
    journal_->Advance(jid, JournalState::kRolledBack, clock_->now(), ctx->inline_reason);
    if (obs::Tracer().enabled()) {
      obs::Tracer().Record(clock_->now(), obs::EventKind::kMigrateAbort, "module:" + module_id,
                           ctx->inline_reason, 0, migrate_span);
    }
    InNetPlatform* box = fleet_->Get(source);
    if (box != nullptr) {
      box->TakePostmortem(obs::EventKind::kMigrateAbort, vm_id, ctx->inline_reason);
    }
    start.reason = ctx->inline_reason;
    return start;
  }
  ctx->inline_phase = false;
  ctr_migrations_started_->Increment();
  start.started = true;
  return start;
}

void Orchestrator::AbortMigration(const std::shared_ptr<MigrationCtx>& ctx,
                                  const std::string& reason) {
  obs::ScopedParent in_migration(obs::Tracer(), ctx->migrate_span);
  ctr_migrations_aborted_->Increment();
  journal_->Advance(ctx->journal_id, JournalState::kRolledBack, clock_->now(), reason);
  if (obs::Tracer().enabled()) {
    obs::Tracer().Record(clock_->now(), obs::EventKind::kMigrateAbort,
                         "module:" + ctx->module_id, reason);
  }
  // Post-mortem on the source platform (when it still exists): the guest's
  // last element counters and the events leading up to the abort.
  InNetPlatform* box = fleet_->Get(ctx->source);
  if (box != nullptr) {
    box->TakePostmortem(obs::EventKind::kMigrateAbort, ctx->vm_id, reason);
  }
  if (ctx->guard != nullptr) {
    ctx->guard->Release();
  }
  ctx->report.reason = reason;
  if (ctx->on_done) {
    ctx->on_done(ctx->report);
  }
}

void Orchestrator::MigrationSuspendDone(const std::shared_ptr<MigrationCtx>& ctx,
                                        ControlResponse response) {
  if (!response.ok) {
    if (ctx->inline_phase) {
      ctx->inline_failed = true;
      ctx->inline_reason = response.error;
      return;
    }
    if (response.gave_up) {
      // The suspend may or may not have landed; best-effort cancel now, the
      // heal-time reconcile resolves whatever remains.
      RecordGiveUp(fleet_, clock_, ctx->source, "suspend:" + ctx->module_id);
      ControlRequest cancel;
      cancel.op = ControlOp::kCancelMigration;
      cancel.tenant = ctx->module_id;
      cancel.attempt_epoch = journal_->MintEpoch();
      cancel.vm_id = ctx->vm_id;
      client_.Issue(ctx->source, cancel, nullptr);
    }
    AbortMigration(ctx, response.error);
    return;
  }
  obs::ScopedParent in_migration(obs::Tracer(), ctx->migrate_span);
  auto cancel_source = [this, &ctx] {
    ControlRequest cancel;
    cancel.op = ControlOp::kCancelMigration;
    cancel.tenant = ctx->module_id;
    cancel.attempt_epoch = journal_->MintEpoch();
    cancel.vm_id = ctx->vm_id;
    client_.Issue(ctx->source, cancel, nullptr);
  };
  if (placements_.count(ctx->module_id) == 0 || requests_.count(ctx->module_id) == 0) {
    cancel_source();
    AbortMigration(ctx, "module disappeared during suspend");
    return;
  }

  // Re-verify on the target while the guest is frozen. The old deployment
  // stays committed during the check, so the verifier sees the worst-case
  // network with both copies present; only after the target passes does the
  // old one disappear.
  DeployOutcome redo = controller_.Deploy(ctx->request, {ctx->target});
  if (!redo.accepted) {
    cancel_source();
    AbortMigration(ctx, "target verification failed: " + redo.reason);
    return;
  }
  ctx->redo = redo;
  JournalEntry* e = journal_->Find(ctx->journal_id);
  if (e != nullptr) {
    e->module_id = redo.module_id;  // the entry now tracks the new placement
    e->addr = redo.module_addr.ToString();
    e->sandboxed = redo.sandboxed;
  }
  journal_->Advance(ctx->journal_id, JournalState::kVerified, clock_->now(),
                    "target verified");
  // Reserve the target's quota share for the duration of the transfer.
  ctx->guard = MakeChannelGuard(ctx->request.client_id);

  ControlRequest exp;
  exp.op = ControlOp::kSnapshotExport;
  exp.tenant = ctx->module_id;
  exp.attempt_epoch = journal_->MintEpoch();
  exp.vm_id = ctx->vm_id;
  if (e != nullptr) {
    e->op_epoch = exp.attempt_epoch;
  }
  std::weak_ptr<char> watch = alive_;
  client_.Issue(ctx->source, exp, [this, watch, ctx](ControlResponse resp) {
    if (watch.expired()) {
      return;
    }
    MigrationExportDone(ctx, std::move(resp));
  });
}

void Orchestrator::MigrationExportDone(const std::shared_ptr<MigrationCtx>& ctx,
                                       ControlResponse response) {
  obs::ScopedParent in_migration(obs::Tracer(), ctx->migrate_span);
  if (!response.ok || !response.moved) {
    controller_.Kill(ctx->redo.module_id);
    if (response.gave_up) {
      RecordGiveUp(fleet_, clock_, ctx->source, "export:" + ctx->module_id);
      AbortMigration(ctx, response.error);
      return;
    }
    // The guest was lost while suspended; clear the migration mark so the
    // watchdog path owns whatever is left of it.
    ControlRequest cancel;
    cancel.op = ControlOp::kCancelMigration;
    cancel.tenant = ctx->module_id;
    cancel.attempt_epoch = journal_->MintEpoch();
    cancel.vm_id = ctx->vm_id;
    client_.Issue(ctx->source, cancel, nullptr);
    AbortMigration(ctx, "detach failed: " + response.error);
    return;
  }
  ctx->moved = response.moved;
  ctx->report.parked_packets = ctx->moved->parked.size();
  journal_->MarkExported(ctx->journal_id, clock_->now());

  ControlRequest imp;
  imp.op = ControlOp::kSnapshotImport;
  imp.tenant = ctx->redo.module_id;
  imp.attempt_epoch = journal_->MintEpoch();
  imp.addr = ctx->redo.module_addr;
  imp.moved = ctx->moved;
  if (JournalEntry* e = journal_->Find(ctx->journal_id)) {
    e->op_epoch = imp.attempt_epoch;
  }
  std::weak_ptr<char> watch = alive_;
  client_.Issue(ctx->target, imp, [this, watch, ctx](ControlResponse resp) {
    if (watch.expired()) {
      return;
    }
    MigrationImportDone(ctx, std::move(resp));
  });
}

void Orchestrator::MigrationImportDone(const std::shared_ptr<MigrationCtx>& ctx,
                                       ControlResponse response) {
  obs::ScopedParent in_migration(obs::Tracer(), ctx->migrate_span);
  if (response.ok) {
    ctx->new_vm_id = response.vm_id;
    if (JournalEntry* e = journal_->Find(ctx->journal_id)) {
      e->vm_id = response.vm_id;
    }
    journal_->Advance(ctx->journal_id, JournalState::kPlaced, clock_->now(),
                      "target adopted guest");
    ControlRequest cut;
    cut.op = ControlOp::kCutover;
    cut.tenant = ctx->redo.module_id;
    cut.attempt_epoch = journal_->MintEpoch();
    cut.addr = ctx->redo.module_addr;
    cut.moved = ctx->moved;
    if (JournalEntry* e = journal_->Find(ctx->journal_id)) {
      e->op_epoch = cut.attempt_epoch;
    }
    std::weak_ptr<char> watch = alive_;
    client_.Issue(ctx->target, cut, [this, watch, ctx](ControlResponse resp) {
      if (watch.expired()) {
        return;
      }
      MigrationCutoverDone(ctx, std::move(resp));
    });
    return;
  }

  // The target did not (or may not have) adopted the guest. Undo the
  // target-side verification and re-adopt on the source — its RAM was freed
  // by the suspend, so the import fits. The re-import carries a single
  // idempotency token, so duplicated or retried messages resume the source
  // exactly once.
  std::string fail_reason = response.gave_up ? response.error
                                             : "target install failed: " + response.error;
  controller_.Kill(ctx->redo.module_id);
  if (response.gave_up) {
    RecordGiveUp(fleet_, clock_, ctx->target, "import:" + ctx->redo.module_id);
    // The unacked import may have executed: queue an idempotent uninstall
    // for the heal reconcile and fire a best-effort one now.
    pending_cleanups_.emplace_back(ctx->target, ctx->redo.module_addr);
    ControlRequest undo;
    undo.op = ControlOp::kUninstallAddr;
    undo.tenant = ctx->redo.module_id;
    undo.attempt_epoch = journal_->MintEpoch();
    undo.addr = ctx->redo.module_addr;
    client_.Issue(ctx->target, undo, nullptr);
  }
  ControlRequest back;
  back.op = ControlOp::kSnapshotImport;
  back.tenant = ctx->module_id;
  back.attempt_epoch = journal_->MintEpoch();
  back.addr = ctx->report.old_addr;
  back.moved = ctx->moved;
  std::weak_ptr<char> watch = alive_;
  client_.Issue(ctx->source, back, [this, watch, ctx, fail_reason](ControlResponse resp) {
    if (watch.expired()) {
      return;
    }
    obs::ScopedParent in_migration(obs::Tracer(), ctx->migrate_span);
    if (resp.ok) {
      auto placement = placements_.find(ctx->module_id);
      if (placement != placements_.end()) {
        placement->second.second = resp.vm_id;
      }
      // Replay the blackout traffic on the source; the resume-on-traffic
      // path drains it once the guest is back up.
      ControlRequest replay;
      replay.op = ControlOp::kCutover;
      replay.tenant = ctx->module_id;
      replay.attempt_epoch = journal_->MintEpoch();
      replay.addr = ctx->report.old_addr;
      replay.moved = ctx->moved;
      client_.Issue(ctx->source, replay, nullptr);
      AbortMigration(ctx, fail_reason);
    } else {
      // The guest state is unrecoverable: the tenant is gone.
      engine_.ReleasePlacement(ctx->request.client_id, ModuleMemoryBytes());
      placements_.erase(ctx->module_id);
      requests_.erase(ctx->module_id);
      ClearModuleDigest(ctx->module_id);
      controller_.Kill(ctx->module_id);
      journal_->MarkModuleTerminal(ctx->module_id, JournalState::kKilled, clock_->now(),
                                   "guest lost in failed migration");
      AbortMigration(ctx, fail_reason + "; source re-adopt failed: " + resp.error);
    }
  });
}

void Orchestrator::MigrationCutoverDone(const std::shared_ptr<MigrationCtx>& ctx,
                                        ControlResponse response) {
  obs::ScopedParent in_migration(obs::Tracer(), ctx->migrate_span);
  // Roll forward even on a give-up: the guest is imported and resuming on
  // the target; only the parked blackout traffic is lost with the message.
  std::string note;
  if (response.gave_up) {
    RecordGiveUp(fleet_, clock_, ctx->target, "cutover:" + ctx->redo.module_id);
    note = "cutover unacked; parked traffic dropped";
    ctx->report.parked_packets = 0;
  }
  uint64_t now = clock_->now();
  journal_->MarkModuleTerminal(ctx->module_id, JournalState::kSuperseded, now,
                               "migrated to " + ctx->target);
  placements_.erase(ctx->module_id);
  requests_.erase(ctx->module_id);
  // Clear the old placement's address key first; CommitPlacement below
  // re-registers the tenant under the new module's digest and address.
  ClearModuleDigest(ctx->module_id);
  controller_.Kill(ctx->module_id);
  CommitPlacement(ctx->request, ctx->redo.module_id, ctx->target, ctx->new_vm_id);
  engine_.ReleasePlacement(ctx->request.client_id, ModuleMemoryBytes());  // the old share
  if (ctx->guard != nullptr) {
    ctx->guard->Confirm();
  }
  journal_->Advance(ctx->journal_id, JournalState::kCutover, now, note);
  ctx->report.ok = true;
  ctx->report.new_module_id = ctx->redo.module_id;
  ctx->report.new_addr = ctx->redo.module_addr;
  ctr_migrations_completed_->Increment();
  if (obs::Tracer().enabled()) {
    obs::Tracer().Record(now, obs::EventKind::kMigrateCutover, "module:" + ctx->module_id,
                         ctx->source + "->" + ctx->target,
                         static_cast<int64_t>(ctx->report.parked_packets));
  }
  if (ctx->on_done) {
    ctx->on_done(ctx->report);
  }
}

RebalanceReport Orchestrator::Rebalance(double drain_above_utilization) {
  RebalanceReport report;
  // Refresh every tenant's health state first: the drain order below moves
  // the least-healthy tenants off hot platforms before the merely-loaded.
  obs::Health().EvaluateAll();
  std::vector<scheduler::PlatformResources> snapshot = engine_.ledger().Snapshot();
  // Moves started here have not landed yet (the suspend takes simulated
  // time), so project their memory effect onto every later ranking.
  std::unordered_map<std::string, int64_t> planned_delta;
  auto projected_used = [&](const scheduler::PlatformResources& res) {
    auto it = planned_delta.find(res.name);
    int64_t delta = it == planned_delta.end() ? 0 : it->second;
    return static_cast<double>(static_cast<int64_t>(res.memory_used) + delta);
  };

  const uint64_t per_module = ModuleMemoryBytes();
  for (const scheduler::PlatformResources& hot : snapshot) {
    if (!hot.available || hot.memory_total == 0 ||
        hot.utilization() <= drain_above_utilization) {
      continue;
    }
    ++report.hot_platforms;
    // Only dedicated-VM (stateful) tenants are drained: consolidated ones
    // are stateless and cheap to re-place individually on demand.
    std::vector<std::string> movable;
    for (const auto& [module_id, placement] : placements_) {
      if (placement.first == hot.name && placement.second != 0) {
        movable.push_back(module_id);
      }
    }
    std::sort(movable.begin(), movable.end());
    if (obs::Health().enabled()) {
      // Drain the least-healthy tenants first (violated > degraded > ok);
      // the stable sort keeps module-id order within a severity class.
      std::stable_sort(movable.begin(), movable.end(),
                       [this](const std::string& a, const std::string& b) {
                         auto severity = [this](const std::string& module_id) {
                           auto it = requests_.find(module_id);
                           return it == requests_.end()
                                      ? 0
                                      : obs::Health().Severity(it->second.client_id);
                         };
                         return severity(a) > severity(b);
                       });
    }

    for (const std::string& module_id : movable) {
      if (projected_used(hot) / static_cast<double>(hot.memory_total) <=
          drain_above_utilization) {
        break;  // drained enough
      }
      // Rank the non-hot survivors by the active policy, with planned moves
      // projected in so one rebalance pass cannot overfill a target.
      std::vector<scheduler::PlatformResources> candidates;
      for (scheduler::PlatformResources res : snapshot) {
        if (res.name == hot.name || !res.available || res.memory_total == 0) {
          continue;
        }
        auto delta = planned_delta.find(res.name);
        if (delta != planned_delta.end()) {
          res.memory_used = static_cast<uint64_t>(
              std::max<int64_t>(0, static_cast<int64_t>(res.memory_used) + delta->second));
        }
        if (res.utilization() > drain_above_utilization) {
          continue;  // don't drain one hot platform into another
        }
        candidates.push_back(std::move(res));
      }
      scheduler::PlacementRequest needs;
      needs.memory_bytes = per_module;
      std::vector<std::string> ranked =
          scheduler::RankPlatforms(engine_.policy(), candidates, needs);
      if (ranked.empty()) {
        break;  // nowhere left to drain to
      }
      MigrationStart started = MigrateTenant(module_id, ranked.front());
      if (started.started) {
        ++report.migrations_started;
        report.moves.emplace_back(module_id, ranked.front());
        planned_delta[hot.name] -= static_cast<int64_t>(per_module);
        planned_delta[ranked.front()] += static_cast<int64_t>(per_module);
      }
    }
  }
  return report;
}

FailoverReport Orchestrator::MarkPlatformFailed(const std::string& platform_name) {
  FailoverReport report;
  report.failed_platform = platform_name;
  auto it = platforms_.find(platform_name);
  if (it == platforms_.end()) {
    report.unknown_platform = true;  // safe no-op: nothing to fail over
    return report;
  }
  if (controller_.IsPlatformFailed(platform_name)) {
    report.already_failed = true;  // idempotent: the first report did the work
    return report;
  }
  controller_.MarkPlatformFailed(platform_name);

  // Collect the stranded tenants with their original requests, in module-id
  // order so the failover sequence is deterministic.
  std::vector<std::pair<std::string, ClientRequest>> stranded;
  for (const auto& [module_id, placement] : placements_) {
    if (placement.first != platform_name) {
      continue;
    }
    auto request = requests_.find(module_id);
    if (request != requests_.end()) {
      stranded.emplace_back(module_id, request->second);
    }
  }
  std::sort(stranded.begin(), stranded.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  report.tenants_affected = stranded.size();

  // The node died: its guests, switch state, and control-endpoint dedup
  // memory are gone. Replace the data-plane instance wholesale rather than
  // tearing guests down one by one (which would schedule suspend/boot
  // events on a dead box).
  PlatformState& state = it->second;
  fleet_->Replace(platform_name);
  state.consolidated.clear();
  state.consolidated_module_ids.clear();
  state.shared_vm = 0;

  for (const auto& [module_id, request] : stranded) {
    journal_->MarkModuleTerminal(module_id, JournalState::kKilled, clock_->now(),
                                 "platform failed");
    ClearModuleDigest(module_id);
    controller_.Kill(module_id);
    engine_.ReleasePlacement(request.client_id, ModuleMemoryBytes());
    placements_.erase(module_id);
    requests_.erase(module_id);
  }

  // Re-verify and re-place every stranded tenant on the survivors — a
  // degenerate migration with no state to carry (the node crash destroyed
  // it). Deploy runs the full pipeline again, so a tenant whose
  // requirements only the dead platform satisfied is reported lost rather
  // than silently misplaced.
  auto t_start = std::chrono::steady_clock::now();
  for (const auto& [old_module_id, request] : stranded) {
    ClientRequest retry = request;
    retry.pinned_platform.clear();  // the pin died with the node
    OrchestratedDeploy redo = Deploy(retry);
    if (redo.outcome.accepted) {
      ++report.recovered;
      report.remapped.emplace_back(old_module_id, redo.outcome.module_id);
    } else {
      ++report.lost;
      report.lost_module_ids.push_back(old_module_id);
    }
  }
  report.reverify_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t_start)
          .count();
  return report;
}

void Orchestrator::RestorePlatform(const std::string& platform_name) {
  auto it = platforms_.find(platform_name);
  if (it == platforms_.end()) {
    return;
  }
  controller_.RestorePlatform(platform_name);
}

RecoveryReport Orchestrator::RecoverFromJournal() {
  RecoveryReport report;
  uint64_t now = clock_->now();

  // Migrations that crashed after the target adopted the guest roll forward;
  // their superseded originals must not be adopted as live copies.
  std::set<uint64_t> superseded_in_progress;
  for (const JournalEntry& e : journal_->entries()) {
    if (e.kind == JournalEntryKind::kMigration && e.supersedes != 0 &&
        (e.state == JournalState::kPlaced || e.state == JournalState::kBooted)) {
      superseded_in_progress.insert(e.supersedes);
    }
  }

  // Does the entry's guest actually exist on its platform right now?
  auto guest_alive = [this](const JournalEntry* e) -> bool {
    InNetPlatform* box = fleet_->Get(e->platform);
    if (box == nullptr) {
      return false;
    }
    auto addr = Ipv4Address::Parse(e->addr);
    if (e->consolidated) {
      return addr.has_value() && box->InstalledVmFor(*addr) != 0;
    }
    if (e->vm_id != 0 && box->vms().Find(e->vm_id) != nullptr) {
      return true;
    }
    return addr.has_value() && box->InstalledVmFor(*addr) != 0;
  };

  // Rebuild controller/scheduler/orchestrator belief for a placement that is
  // present on its platform. Re-verification is reserved for ambiguity.
  auto adopt = [this, now](JournalEntry* e, bool reverify) -> bool {
    auto addr = Ipv4Address::Parse(e->addr);
    InNetPlatform* box = fleet_->Get(e->platform);
    if (!addr.has_value() || box == nullptr) {
      return false;
    }
    std::string err;
    if (!controller_.RestoreDeployment(e->request, e->module_id, e->platform, *addr, reverify,
                                       &err)) {
      journal_->Advance(e->id, JournalState::kRolledBack, now,
                        "re-verification failed after crash: " + err);
      return false;
    }
    PlatformState& state = platforms_[e->platform];
    Vm::VmId dedicated = 0;
    if (e->consolidated) {
      const Deployment* dep = nullptr;
      for (const Deployment& d : controller_.deployments()) {
        if (d.module_id == e->module_id) {
          dep = &d;
        }
      }
      state.consolidated.push_back(TenantConfig{*addr, dep != nullptr ? dep->config_text : ""});
      state.consolidated_module_ids.push_back(e->module_id);
      state.shared_vm = box->InstalledVmFor(*addr);
    } else {
      dedicated = e->vm_id;
    }
    CommitPlacement(e->request, e->module_id, e->platform, dedicated);
    engine_.CommitPlacement(e->request.client_id, ModuleMemoryBytes());
    return true;
  };

  // Snapshot the id list: converging an entry can append fresh entries
  // (re-placements), which must not themselves be scanned.
  std::vector<uint64_t> ids;
  for (const JournalEntry& e : journal_->entries()) {
    ids.push_back(e.id);
  }

  for (uint64_t id : ids) {
    JournalEntry* e = journal_->Find(id);
    if (e == nullptr) {
      continue;
    }
    ++report.scanned;
    if (DeployJournal::IsTerminal(e->state)) {
      continue;
    }
    ctr_replays_->Increment();
    if (obs::Tracer().enabled()) {
      obs::Tracer().Record(now, obs::EventKind::kRecoveryReplay, "journal:" + std::to_string(id),
                           std::string(JournalEntryKindName(e->kind)) + ":" +
                               JournalStateName(e->state));
    }

    // Live entries (deploys and completed migrations alike): adopt.
    if (e->state == JournalState::kCutover) {
      if (superseded_in_progress.count(id) != 0) {
        continue;  // its in-flight migration below decides its fate
      }
      if (guest_alive(e) && adopt(e, /*reverify=*/false)) {
        ++report.adopted;
      } else {
        journal_->Advance(id, JournalState::kKilled, now, "guest did not survive the crash");
        ++report.killed;
      }
      continue;
    }

    if (e->kind == JournalEntryKind::kDeploy) {
      switch (e->state) {
        case JournalState::kIntent: {
          // Nothing was minted yet: retire the entry and place afresh.
          journal_->Advance(id, JournalState::kRolledBack, now,
                            "crashed before verify; re-placed");
          ++report.rolled_back;
          DeployViaChannel(e->request, nullptr);
          ++report.resumed;
          break;
        }
        case JournalState::kVerified: {
          if (guest_alive(e)) {
            // The install executed but its ack died with the controller:
            // ambiguous enough to warrant full re-verification.
            if (adopt(e, /*reverify=*/true)) {
              journal_->Advance(id, JournalState::kPlaced, now, "found applied after crash");
              ScheduleConfirm(id, options_.confirm_rounds);
              ++report.completed;
            } else {
              if (auto addr = Ipv4Address::Parse(e->addr)) {
                ControlRequest undo;
                undo.op = ControlOp::kUninstallAddr;
                undo.tenant = e->module_id;
                undo.attempt_epoch = journal_->MintEpoch();
                undo.addr = *addr;
                fleet_->channel().DeliverDirect(e->platform, undo);
              }
              ++report.rolled_back;  // adopt() already advanced the entry
            }
            break;
          }
          // Not applied: restore belief and re-send the install under its
          // original token — if the platform did execute it and only the
          // ack was lost, the endpoint dedups and answers from cache.
          auto addr = Ipv4Address::Parse(e->addr);
          std::string err;
          if (!addr.has_value() ||
              !controller_.RestoreDeployment(e->request, e->module_id, e->platform, *addr,
                                             /*reverify=*/false, &err)) {
            journal_->Advance(id, JournalState::kRolledBack, now, "restore failed: " + err);
            ++report.rolled_back;
            break;
          }
          const Deployment* dep = nullptr;
          for (const Deployment& d : controller_.deployments()) {
            if (d.module_id == e->module_id) {
              dep = &d;
            }
          }
          auto guard = MakeChannelGuard(e->request.client_id);
          std::weak_ptr<char> watch = alive_;
          ControlRequest req;
          req.tenant = e->module_id;
          req.attempt_epoch = e->op_epoch;
          const std::string platform_name = e->platform;
          const std::string module_id = e->module_id;
          const ClientRequest request = e->request;
          const bool consolidated = e->consolidated;
          const Ipv4Address module_addr = *addr;
          const std::string config_text = dep != nullptr ? dep->config_text : "";
          if (consolidated) {
            PlatformState& state = platforms_[platform_name];
            req.op = ControlOp::kRebuildShared;
            req.tenants = state.consolidated;
            req.tenants.push_back(TenantConfig{module_addr, config_text});
            req.vm_id = state.shared_vm;
          } else {
            req.op = ControlOp::kInstall;
            req.addr = module_addr;
            req.config_text = config_text;
            req.sandbox = e->sandboxed;
            req.whitelist = request.whitelist;
          }
          client_.Issue(
              platform_name, req,
              [this, watch, id, guard, request, platform_name, module_id, consolidated,
               module_addr, config_text](ControlResponse resp) {
                if (watch.expired()) {
                  return;
                }
                uint64_t ack_now = clock_->now();
                if (!resp.ok) {
                  controller_.Kill(module_id);
                  journal_->Advance(id, JournalState::kRolledBack, ack_now,
                                    "re-sent install failed: " + resp.error);
                  return;
                }
                PlatformState& state = platforms_[platform_name];
                if (consolidated) {
                  state.consolidated.push_back(TenantConfig{module_addr, config_text});
                  state.consolidated_module_ids.push_back(module_id);
                  state.shared_vm = resp.vm_id;
                } else if (InNetPlatform* box = fleet_->Get(platform_name)) {
                  box->SetVmOwner(resp.vm_id, request.client_id);
                }
                if (JournalEntry* acked = journal_->Find(id)) {
                  acked->vm_id = resp.vm_id;
                }
                CommitPlacement(request, module_id, platform_name,
                                consolidated ? 0 : resp.vm_id);
                guard->Confirm();
                journal_->Advance(id, JournalState::kPlaced, ack_now, "re-sent install acked");
                ScheduleConfirm(id, options_.confirm_rounds);
              });
          ++report.resumed;
          break;
        }
        case JournalState::kPlaced:
        case JournalState::kBooted: {
          if (guest_alive(e) && adopt(e, /*reverify=*/false)) {
            ScheduleConfirm(id, options_.confirm_rounds);
            ++report.completed;
          } else {
            journal_->Advance(id, JournalState::kRolledBack, now, "guest lost; re-placed");
            ++report.rolled_back;
            DeployViaChannel(e->request, nullptr);
            ++report.resumed;
          }
          break;
        }
        default:
          break;
      }
      continue;
    }

    // In-flight migrations.
    switch (e->state) {
      case JournalState::kIntent:
      case JournalState::kVerified: {
        if (!e->exported) {
          // Crashed before the snapshot left the source: cancel the mark;
          // the (possibly suspended) guest resumes on traffic as usual. The
          // original deploy entry was adopted above, so the tenant is whole.
          InNetPlatform* src = fleet_->Get(e->source_platform);
          if (src != nullptr && e->vm_id != 0) {
            src->CancelMigrationOut(e->vm_id);
          }
          journal_->Advance(id, JournalState::kRolledBack, now,
                            "crashed mid-migration; cancelled");
          ++report.rolled_back;
          break;
        }
        // The snapshot lived only in controller memory: the guest state died
        // with the crash (the adoption pass already recorded the original as
        // killed). Re-place a fresh instance.
        journal_->Advance(id, JournalState::kRolledBack, now,
                          "snapshot lost in crash; tenant re-placed fresh");
        ++report.rolled_back;
        DeployViaChannel(e->request, nullptr);
        ++report.resumed;
        break;
      }
      case JournalState::kPlaced:
      case JournalState::kBooted: {
        // Post-import: the target holds the guest — roll the migration
        // forward (the parked blackout traffic died with the controller).
        if (guest_alive(e) && adopt(e, /*reverify=*/false)) {
          if (e->supersedes != 0) {
            journal_->Advance(e->supersedes, JournalState::kSuperseded, now,
                              "migration rolled forward after crash");
          }
          journal_->Advance(id, JournalState::kCutover, now,
                            "rolled forward after crash; parked traffic lost");
          ++report.completed;
        } else {
          if (e->supersedes != 0) {
            journal_->Advance(e->supersedes, JournalState::kKilled, now,
                              "guest lost in crashed migration");
          }
          journal_->Advance(id, JournalState::kRolledBack, now,
                            "target guest lost; tenant re-placed fresh");
          ++report.rolled_back;
          DeployViaChannel(e->request, nullptr);
          ++report.resumed;
        }
        break;
      }
      default:
        break;
    }
  }
  return report;
}

void Orchestrator::SetPartitioned(const std::string& platform_name, bool partitioned) {
  bool was = fleet_->channel().IsPartitioned(platform_name);
  fleet_->channel().SetPartitioned(platform_name, partitioned);
  if (partitioned && !was) {
    if (obs::Tracer().enabled()) {
      obs::Tracer().Record(clock_->now(), obs::EventKind::kControlPartition,
                           "platform:" + platform_name, "partitioned");
    }
  } else if (!partitioned && was) {
    ReconcilePlatform(platform_name);
  }
}

ReconcileReport Orchestrator::ReconcilePlatform(const std::string& platform_name) {
  ReconcileReport report;
  report.platform = platform_name;
  InNetPlatform* box = fleet_->Get(platform_name);
  if (box == nullptr) {
    return report;
  }
  uint64_t now = clock_->now();
  if (obs::Tracer().enabled()) {
    obs::Tracer().Record(now, obs::EventKind::kControlHeal, "platform:" + platform_name,
                         "reconcile");
  }
  // Compare belief against actual guest state, in module-id order for
  // determinism.
  std::vector<std::string> on_platform;
  for (const auto& [module_id, placement] : placements_) {
    if (placement.first == platform_name) {
      on_platform.push_back(module_id);
    }
  }
  std::sort(on_platform.begin(), on_platform.end());
  for (const std::string& module_id : on_platform) {
    ++report.checked;
    auto placement = placements_.find(module_id);
    if (placement == placements_.end()) {
      continue;  // a previous Kill in this loop rebuilt the shared VM set
    }
    bool alive;
    if (placement->second.second != 0) {
      alive = box->vms().Find(placement->second.second) != nullptr;
    } else {
      alive = box->InstalledVmFor(ModuleAddr(module_id)) != 0;
    }
    if (alive) {
      ++report.healthy;
      continue;
    }
    ++report.lost;
    journal_->MarkModuleTerminal(module_id, JournalState::kKilled, now,
                                 "guest lost during partition");
    Kill(module_id);
  }
  // Re-arm confirmation chains that gave up while the platform was
  // unreachable.
  for (const JournalEntry& e : journal_->entries()) {
    if (e.platform == platform_name &&
        (e.state == JournalState::kPlaced || e.state == JournalState::kBooted) &&
        placements_.count(e.module_id) != 0) {
      ScheduleConfirm(e.id, options_.confirm_rounds);
      ++report.rearmed;
    }
  }
  // Flush deferred cleanups: installs that gave up unacked while the
  // platform was cut off may have executed — uninstall them by address.
  for (auto it = pending_cleanups_.begin(); it != pending_cleanups_.end();) {
    if (it->first == platform_name) {
      ControlRequest undo;
      undo.op = ControlOp::kUninstallAddr;
      undo.tenant = "cleanup:" + it->second.ToString();
      undo.attempt_epoch = journal_->MintEpoch();
      undo.addr = it->second;
      client_.Issue(platform_name, undo, nullptr);
      ++report.cleanups;
      it = pending_cleanups_.erase(it);
    } else {
      ++it;
    }
  }
  const char* reconcile_outcome = report.lost == 0 ? "clean" : "divergent";
  obs::Registry()
      .GetCounter("innet_reconcile_total", {{"outcome", reconcile_outcome}})
      ->Increment();
  if (obs::Tracer().enabled()) {
    obs::Tracer().Record(now, obs::EventKind::kReconcile, "platform:" + platform_name,
                         std::string(reconcile_outcome) + " checked=" +
                             std::to_string(report.checked) +
                             " healthy=" + std::to_string(report.healthy) +
                             " lost=" + std::to_string(report.lost) +
                             " rearmed=" + std::to_string(report.rearmed) +
                             " cleanups=" + std::to_string(report.cleanups),
                         static_cast<int64_t>(report.lost));
  }
  return report;
}

void Orchestrator::ExportTenant(const std::string& module_id, ExportCallback on_done) {
  TenantExport out;
  auto placement = placements_.find(module_id);
  auto request_it = requests_.find(module_id);
  if (placement == placements_.end() || request_it == requests_.end()) {
    out.error = "unknown module id";
    if (on_done) {
      on_done(out);
    }
    return;
  }
  out.request = request_it->second;
  out.request.pinned_platform.clear();
  const std::string source = placement->second.first;
  const Vm::VmId vm_id = placement->second.second;

  if (vm_id == 0) {
    // Consolidated (stateless): no guest state to carry — the adopting
    // region redeploys from the request. Mark the journal entry superseded
    // before Kill so the record reads "exported", not "killed".
    journal_->MarkModuleTerminal(module_id, JournalState::kSuperseded, clock_->now(),
                                 "exported to region coordinator");
    Kill(module_id);
    out.ok = true;
    if (on_done) {
      on_done(out);
    }
    return;
  }

  // Stateful: suspend over the channel (parks blackout traffic, acks when
  // frozen), then detach the guest on the direct path.
  ControlRequest req;
  req.op = ControlOp::kSuspend;
  req.tenant = module_id;
  req.attempt_epoch = journal_->MintEpoch();
  req.vm_id = vm_id;
  std::weak_ptr<char> watch = alive_;
  client_.Issue(
      source, req,
      [this, watch, module_id, source, vm_id, out, on_done](ControlResponse response) mutable {
        if (watch.expired()) {
          return;
        }
        auto cancel_source = [this, &module_id, &source, vm_id] {
          ControlRequest cancel;
          cancel.op = ControlOp::kCancelMigration;
          cancel.tenant = module_id;
          cancel.attempt_epoch = journal_->MintEpoch();
          cancel.vm_id = vm_id;
          client_.Issue(source, cancel, nullptr);
        };
        if (!response.ok) {
          if (response.gave_up) {
            RecordGiveUp(fleet_, clock_, source, "region_export:" + module_id);
          }
          cancel_source();
          out.error = "suspend failed: " + response.error;
          if (on_done) {
            on_done(out);
          }
          return;
        }
        ControlRequest exp;
        exp.op = ControlOp::kSnapshotExport;
        exp.tenant = module_id;
        exp.attempt_epoch = journal_->MintEpoch();
        exp.vm_id = vm_id;
        ControlResponse resp = fleet_->channel().DeliverDirect(source, exp);
        if (!resp.ok || !resp.moved) {
          cancel_source();
          out.error = "detach failed: " + resp.error;
          if (on_done) {
            on_done(out);
          }
          return;
        }
        // The guest left this region: release belief and quota, retire the
        // controller's deployment record, and journal the hand-off.
        journal_->MarkModuleTerminal(module_id, JournalState::kSuperseded, clock_->now(),
                                     "exported to region coordinator");
        engine_.ReleasePlacement(out.request.client_id, ModuleMemoryBytes());
        placements_.erase(module_id);
        requests_.erase(module_id);
        ClearModuleDigest(module_id);
        controller_.Kill(module_id);
        out.ok = true;
        out.moved = resp.moved;
        if (on_done) {
          on_done(out);
        }
      });
}

TenantAdopt Orchestrator::AdoptMigrated(
    const ClientRequest& request, std::shared_ptr<platform::InNetPlatform::MigratedVm> moved) {
  TenantAdopt out;
  if (moved == nullptr) {
    // Stateless hand-over: a plain redeploy through the full pipeline.
    OrchestratedDeploy deploy = Deploy(request);
    out.ok = deploy.outcome.accepted;
    out.error = deploy.outcome.reason;
    out.module_id = deploy.outcome.module_id;
    out.platform = deploy.outcome.platform;
    out.addr = deploy.outcome.module_addr;
    return out;
  }

  // Stateful adopt: admission → verification → import the frozen guest →
  // replay parked traffic. The target half of MigrationImportDone, with the
  // snapshot arriving from the coordinator instead of a sibling platform.
  uint64_t jid = journal_->Begin(JournalEntryKind::kMigration, request, clock_->now());
  scheduler::PlacementRequest needs;
  needs.memory_bytes = ModuleMemoryBytes();
  needs.pinned_platform = request.pinned_platform;
  scheduler::PlacementDecision decision = engine_.Decide(request.client_id, needs);
  if (!decision.admitted) {
    journal_->Advance(jid, JournalState::kRolledBack, clock_->now(),
                      "admission rejected: " + decision.reject_reason);
    out.error = decision.reject_reason;
    return out;
  }
  scheduler::ReservationGuard guard(&engine_, request.client_id, ModuleMemoryBytes());
  DeployOutcome redo = controller_.Deploy(request, decision.candidates);
  if (!redo.accepted) {
    journal_->Advance(jid, JournalState::kRolledBack, clock_->now(),
                      "verification failed: " + redo.reason);
    out.error = redo.reason;
    return out;
  }
  if (platforms_.count(redo.platform) == 0) {
    controller_.Kill(redo.module_id);
    journal_->Advance(jid, JournalState::kRolledBack, clock_->now(),
                      "platform has no data-plane instance");
    out.error = "platform has no data-plane instance";
    return out;
  }
  JournalEntry* entry = journal_->Find(jid);
  entry->module_id = redo.module_id;
  entry->platform = redo.platform;
  entry->addr = redo.module_addr.ToString();
  entry->sandboxed = redo.sandboxed;
  journal_->Advance(jid, JournalState::kVerified, clock_->now(), "adopting imported guest");

  ControlRequest imp;
  imp.op = ControlOp::kSnapshotImport;
  imp.tenant = redo.module_id;
  imp.attempt_epoch = journal_->MintEpoch();
  imp.addr = redo.module_addr;
  imp.moved = moved;
  entry->op_epoch = imp.attempt_epoch;
  ControlResponse resp = fleet_->channel().DeliverDirect(redo.platform, imp);
  if (!resp.ok) {
    controller_.Kill(redo.module_id);
    journal_->Advance(jid, JournalState::kRolledBack, clock_->now(),
                      "import failed: " + resp.error);
    out.error = "import failed: " + resp.error;
    return out;
  }
  ControlRequest cut;
  cut.op = ControlOp::kCutover;
  cut.tenant = redo.module_id;
  cut.attempt_epoch = journal_->MintEpoch();
  cut.addr = redo.module_addr;
  cut.moved = moved;
  fleet_->channel().DeliverDirect(redo.platform, cut);

  InNetPlatform* box = fleet_->Get(redo.platform);
  if (box != nullptr) {
    box->SetVmOwner(resp.vm_id, request.client_id);
  }
  CommitPlacement(request, redo.module_id, redo.platform, resp.vm_id);
  guard.Confirm();
  if (JournalEntry* e = journal_->Find(jid)) {
    e->vm_id = resp.vm_id;
  }
  journal_->Advance(jid, JournalState::kPlaced, clock_->now(), "synchronous ack");
  journal_->Advance(jid, JournalState::kCutover, clock_->now());
  out.ok = true;
  out.module_id = redo.module_id;
  out.platform = redo.platform;
  out.addr = redo.module_addr;
  return out;
}

}  // namespace innet::controller
