// The simulated control channel between the orchestrator and its platforms.
// Every platform mutation (install, uninstall, suspend, snapshot export /
// import, cutover, health probe) travels as an explicit ControlRequest over
// a per-link channel that can lose, delay, duplicate, reorder, or partition
// messages (decisions drawn from sim::FaultInjector's control-plane fault
// class), instead of being an infallible in-process call.
//
// Reliability is layered the way a real controller would do it:
//
//   - at-most-once execution: every mutating request carries a
//     (tenant, op, attempt-epoch) token; the platform-side ControlEndpoint
//     remembers executed tokens and answers replays (retries or channel
//     duplicates) from a cached response without re-executing;
//   - retries: the orchestrator-side ControlClient re-sends un-acked
//     requests with capped exponential backoff and a per-op timeout, and
//     reports a give-up after max_attempts (the caller decides whether to
//     roll back or leave reconciliation to a later heal);
//   - partitions: a partitioned platform silently eats both legs. Its data
//     plane keeps serving installed tenants (the watchdog is local); the
//     orchestrator reconciles belief against actual guest state on heal.
//
// With no fault plan and no partitions the channel is *ideal*: requests are
// delivered and answered synchronously inline, which preserves the exact
// behavior of the pre-channel in-process calls for existing callers.
#ifndef SRC_CONTROLLER_CONTROL_CHANNEL_H_
#define SRC_CONTROLLER_CONTROL_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/platform/platform.h"
#include "src/sim/event_queue.h"
#include "src/sim/fault_injector.h"

namespace innet::controller {

enum class ControlOp {
  kInstall,         // boot a dedicated guest for a config at an address
  kRebuildShared,   // swap the consolidated VM for a new tenant list
  kUninstallVm,     // tear down a guest by id
  kUninstallAddr,   // tear down whatever serves an address (give-up cleanup)
  kSuspend,         // announce migration + suspend (acked when frozen)
  kCancelMigration, // abort an announced migration
  kSnapshotExport,  // detach a suspended guest; response carries its state
  kSnapshotImport,  // adopt a migrated guest at an address
  kCutover,         // replay re-addressed blackout traffic at the target
  kHealthProbe,     // read-only guest state query (idempotent, epoch 0)
  // Federation ops (coordinator <-> region controller; payload_json carries
  // the structured body so the channel stays payload-agnostic).
  kRegionDigest,    // poll a region's gossip digest (idempotent, epoch 0)
  kRegionDeploy,    // hand a verified-locally deploy to a region
  kRegionExport,    // suspend + detach a tenant for cross-region migration
  kRegionImport,    // adopt an exported tenant (snapshot rides `moved`)
};

// Stable wire name ("install", "health_probe", ...), used in traces/JSON.
const char* ControlOpName(ControlOp op);

struct ControlRequest {
  ControlOp op = ControlOp::kHealthProbe;
  // Idempotency token: (tenant, op, attempt_epoch). Epochs are minted once
  // per *logical* operation (the deploy journal's monotonic sequence, so
  // they survive a controller crash); every retry of the same operation
  // reuses the epoch and dedups platform-side. Epoch 0 marks a
  // non-mutating request that bypasses dedup entirely.
  std::string tenant;
  uint64_t attempt_epoch = 0;

  Ipv4Address addr;
  std::string config_text;
  bool sandbox = false;
  std::vector<Ipv4Address> whitelist;
  platform::Vm::VmId vm_id = 0;
  // kRebuildShared: the full desired tenant list (declarative — the handler
  // installs the merged VM, then removes the old one named by vm_id).
  std::vector<platform::TenantConfig> tenants;
  // kSnapshotImport / kCutover: the migrating guest's frozen state + parked
  // blackout traffic. Shared so a cached (deduped) response and a retried
  // request refer to the same state instead of copying it.
  std::shared_ptr<platform::InNetPlatform::MigratedVm> moved;
  // Federation ops: JSON-encoded body (a ClientRequest for kRegionDeploy /
  // kRegionImport, empty otherwise). A string keeps src/controller free of
  // any dependency on the federation layer's types.
  std::string payload_json;
  // Cross-region trace context (DESIGN.md §11). When trace_id is non-zero
  // the sender is asking the receiving side to open its handler spans under
  // parent_span, so a coordinator-routed operation (a federated deploy, a
  // cross-region migration's export/import legs) renders as one connected
  // span tree across regions instead of disconnected per-region fragments.
  // trace_id names the tree's root span; origin_region names the minting
  // side ("coordinator" for federation ops). Replays of a deduplicated
  // request never re-run the handler, so a duplicate delivery can never emit
  // duplicate child spans.
  std::string origin_region;
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
};

struct ControlResponse {
  bool ok = false;
  bool duplicate = false;  // served from the endpoint's dedup cache
  bool gave_up = false;    // set by ControlClient when retries exhausted
  std::string error;
  platform::Vm::VmId vm_id = 0;
  // kHealthProbe payload.
  bool vm_known = false;
  platform::VmState vm_state = platform::VmState::kDestroyed;
  // kSnapshotExport payload.
  std::shared_ptr<platform::InNetPlatform::MigratedVm> moved;
  // Federation ops: JSON-encoded result (a region digest for kRegionDigest,
  // a deploy outcome for kRegionDeploy, the evicted tenant's ClientRequest
  // for kRegionExport).
  std::string payload_json;
};

using RespondFn = std::function<void(ControlResponse)>;
using OpHandler = std::function<void(const ControlRequest&, RespondFn)>;

// Platform-side agent: executes requests through the registered handler and
// enforces at-most-once semantics per (tenant, op, epoch) token. While an
// operation with deferred completion (suspend) is still executing, replays
// queue as waiters and are all answered by the one eventual response.
class ControlEndpoint {
 public:
  explicit ControlEndpoint(OpHandler handler);

  void Deliver(const ControlRequest& request, RespondFn respond);

  // Dedup-cache hits (replays answered without re-execution).
  uint64_t deduped() const { return deduped_; }

 private:
  struct Applied {
    bool executing = false;
    bool done = false;
    ControlResponse cached;
    std::vector<RespondFn> waiters;
  };

  OpHandler handler_;
  std::map<std::string, Applied> applied_;  // token -> execution record
  uint64_t deduped_ = 0;
  obs::Counter* ctr_deduped_ = nullptr;
};

// Which of the fault plan's channel classes a ControlChannel draws from:
// the orchestrator <-> platform control plane (the default) or the
// federation coordinator <-> region WAN links (a separate, independently
// tunable fault class).
enum class FaultScope { kPlatform, kRegion };

// The channel itself: one endpoint per platform, a shared fault oracle, and
// an explicit partition set. Owned by the PlatformFleet so endpoint dedup
// memory and link statistics survive a controller crash (they live on the
// platforms, not in the controller).
class ControlChannel {
 public:
  explicit ControlChannel(sim::EventQueue* clock);

  void RegisterEndpoint(const std::string& platform, OpHandler handler);
  // Drops the platform's dedup memory (the node was replaced wholesale; the
  // replacement has no recollection of executed tokens).
  void ResetEndpoint(const std::string& platform);

  // nullptr detaches. The injector must outlive the channel.
  void SetFaultInjector(sim::FaultInjector* injector) { faults_ = injector; }
  sim::FaultInjector* fault_injector() const { return faults_; }

  // Selects the fault class this channel draws from (default: the
  // orchestrator <-> platform control plane). The federation coordinator
  // switches its channel to kRegion so inter-PoP links use the plan's
  // region_* fields and counters.
  void set_fault_scope(FaultScope scope) { scope_ = scope; }
  FaultScope fault_scope() const { return scope_; }

  // True when messages are delivered synchronously inline: no fault plan for
  // this channel's scope and no active partitions.
  bool ideal() const {
    return (faults_ == nullptr || !HasLinkFaults()) && partitioned_.empty();
  }

  void SetPartitioned(const std::string& platform, bool partitioned);
  bool IsPartitioned(const std::string& platform) const {
    return partitioned_.count(platform) != 0;
  }
  std::vector<std::string> PartitionedPlatforms() const;  // sorted

  // Sends `request` toward `platform`. Under an ideal channel the handler
  // runs inline and `on_response` fires before Send returns (unless the op
  // defers its completion). Otherwise both legs independently draw loss,
  // duplication, reordering, and delay, and partitions eat messages
  // silently — the caller's timeout is the only signal.
  void Send(const std::string& platform, const ControlRequest& request, RespondFn on_response);

  // Fault- and partition-exempt synchronous delivery, used by the legacy
  // blocking orchestrator API (Deploy/Kill). Still an explicit message:
  // counted, traced, and deduplicated like any other.
  ControlResponse DeliverDirect(const std::string& platform, const ControlRequest& request);

  uint64_t sent() const { return sent_; }
  uint64_t delivered() const { return delivered_; }
  uint64_t dropped() const { return dropped_; }
  uint64_t duplicated() const { return duplicated_; }
  uint64_t partition_dropped() const { return partition_dropped_; }
  uint64_t deduped() const;

 private:
  void DeliverNow(const std::string& platform, const ControlRequest& request, RespondFn respond);
  // Wraps a response path with the return leg's faults and partition check.
  RespondFn ReturnLeg(const std::string& platform, RespondFn on_response);

  // Scope dispatch: each fault draw goes to the injector's control_* or
  // region_* method depending on this channel's scope.
  bool HasLinkFaults() const;
  bool ShouldDropLink();
  bool ShouldDuplicateLink();
  bool ShouldReorderLink();
  sim::TimeNs LinkDelay();
  sim::TimeNs LinkReorderPenalty();

  sim::EventQueue* clock_;
  sim::FaultInjector* faults_ = nullptr;
  FaultScope scope_ = FaultScope::kPlatform;
  std::map<std::string, std::unique_ptr<ControlEndpoint>> endpoints_;
  std::set<std::string> partitioned_;
  uint64_t sent_ = 0;
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
  uint64_t duplicated_ = 0;
  uint64_t partition_dropped_ = 0;
  obs::Counter* ctr_sent_ = nullptr;
  obs::Counter* ctr_delivered_ = nullptr;
  obs::Counter* ctr_dropped_ = nullptr;
  obs::Counter* ctr_duplicated_ = nullptr;
  obs::Counter* ctr_partition_dropped_ = nullptr;
  obs::Gauge* gauge_partitioned_ = nullptr;
};

// Per-operation retry schedule for the orchestrator-side client.
struct ControlRetryPolicy {
  sim::TimeNs op_timeout = 200 * sim::kMillisecond;
  sim::TimeNs backoff_base = 50 * sim::kMillisecond;
  double backoff_factor = 2.0;
  sim::TimeNs backoff_cap = 2 * sim::kSecond;
  int max_attempts = 8;
};

// Orchestrator-side sender: issues a request, retries it (same token) with
// capped exponential backoff until an ack arrives or attempts exhaust, and
// invokes the callback exactly once. Dies with the controller — retry state
// is controller memory; only the journal and the platforms survive a crash.
class ControlClient {
 public:
  ControlClient(sim::EventQueue* clock, ControlChannel* channel, ControlRetryPolicy policy);

  void Issue(const std::string& platform, ControlRequest request, RespondFn on_done) {
    IssueWith(platform, std::move(request), policy_, std::move(on_done));
  }
  void IssueWith(const std::string& platform, ControlRequest request, ControlRetryPolicy policy,
                 RespondFn on_done);

  const ControlRetryPolicy& policy() const { return policy_; }
  uint64_t retries() const { return retries_; }
  uint64_t timeouts() const { return timeouts_; }
  uint64_t giveups() const { return giveups_; }
  size_t inflight() const { return inflight_; }

 private:
  struct PendingOp {
    std::string platform;
    ControlRequest request;
    ControlRetryPolicy policy;
    RespondFn on_done;
    bool done = false;
    int attempts = 0;
    sim::TimeNs backoff = 0;
  };

  void Attempt(const std::shared_ptr<PendingOp>& op);
  void Finish(const std::shared_ptr<PendingOp>& op, ControlResponse response);

  sim::EventQueue* clock_;
  ControlChannel* channel_;
  ControlRetryPolicy policy_;
  // Guards every queued continuation: a scheduled timeout or backoff that
  // fires after the client (the controller) died must be a no-op, not a
  // use-after-free — that is exactly the crash the journal recovers from.
  std::shared_ptr<char> alive_;
  uint64_t retries_ = 0;
  uint64_t timeouts_ = 0;
  uint64_t giveups_ = 0;
  size_t inflight_ = 0;
  obs::Counter* ctr_retries_ = nullptr;
  obs::Counter* ctr_timeouts_ = nullptr;
  obs::Counter* ctr_giveups_ = nullptr;
};

}  // namespace innet::controller

#endif  // SRC_CONTROLLER_CONTROL_CHANNEL_H_
