// SymbolicModel: the abstract-transfer-function interface every network node
// (Click element, router, operator middlebox, endpoint) implements for the
// engine. Models are loop-free and allocation-free by construction, the
// properties §4.3 credits for SymNet's scalability.
#ifndef SRC_SYMEXEC_MODEL_H_
#define SRC_SYMEXEC_MODEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/symexec/symbolic_packet.h"

namespace innet::symexec {

struct ModelContext {
  VarAllocator* vars;
};

// Special out_port: the packet terminates here and counts as *delivered*
// (endpoints, ToNetfront). A model returning no transitions drops the packet.
inline constexpr int kPortDeliver = -1;

// Special in_port passed by the engine when a packet *originates* at a node
// (reach-check injection). Endpoint models react by emitting the seed onto
// their link instead of treating it as arriving traffic.
inline constexpr int kPortInject = -2;

struct Transition {
  int out_port = 0;
  SymbolicPacket packet;
};

class SymbolicModel {
 public:
  virtual ~SymbolicModel() = default;

  // Applies the node's transfer function to `packet` arriving on `in_port`.
  // Returning an empty vector terminates the path (drop, or delivery when the
  // model set delivered_at on a terminal copy — see SinkModel).
  virtual std::vector<Transition> Apply(ModelContext* ctx, const SymbolicPacket& packet,
                                        int in_port) = 0;
};

// A model defined by a lambda; convenient for one-off nodes in tests and for
// the topology builders.
class LambdaModel : public SymbolicModel {
 public:
  using Fn = std::function<std::vector<Transition>(ModelContext*, const SymbolicPacket&, int)>;
  explicit LambdaModel(Fn fn) : fn_(std::move(fn)) {}
  std::vector<Transition> Apply(ModelContext* ctx, const SymbolicPacket& packet,
                                int in_port) override {
    return fn_(ctx, packet, in_port);
  }

 private:
  Fn fn_;
};

// Pass-through: forwards unchanged on output 0.
class PassthroughModel : public SymbolicModel {
 public:
  std::vector<Transition> Apply(ModelContext* /*ctx*/, const SymbolicPacket& packet,
                                int /*in_port*/) override {
    return {{0, packet}};
  }
};

// Terminal node: the packet is delivered here (endpoint, ToNetfront).
class SinkModel : public SymbolicModel {
 public:
  std::vector<Transition> Apply(ModelContext* /*ctx*/, const SymbolicPacket& packet,
                                int /*in_port*/) override {
    return {{kPortDeliver, packet}};
  }
};

}  // namespace innet::symexec

#endif  // SRC_SYMEXEC_MODEL_H_
