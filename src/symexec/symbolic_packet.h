// SymbolicPacket: the unit of symbolic execution, after SymNet (HotMiddlebox
// '13, the engine the paper's controller embeds).
//
// Each header field holds either a concrete constant or a symbolic variable.
// Equality between fields (e.g. a server binding the response's destination
// to the request's source) is expressed by *sharing variable ids*. Value
// constraints (from filters, classifiers, routing) attach to variables as
// ValueSets. Every field remembers the hop at which it was last defined,
// which is what invariant ("const fields") checking reads — exactly the
// "last definition" tracking §4.3 describes.
#ifndef SRC_SYMEXEC_SYMBOLIC_PACKET_H_
#define SRC_SYMEXEC_SYMBOLIC_PACKET_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/netcore/fields.h"
#include "src/netcore/flowspec.h"
#include "src/symexec/value_set.h"

namespace innet::symexec {

using VarId = uint32_t;
inline constexpr VarId kNoVar = 0xFFFFFFFF;

// Allocates fresh symbolic variables; owned by the engine run so ids are
// unique across all packets explored in one query.
class VarAllocator {
 public:
  VarId Alloc() { return next_++; }

 private:
  VarId next_ = 0;
};

struct SymbolicValue {
  bool is_const = false;
  uint64_t const_value = 0;
  VarId var = kNoVar;

  static SymbolicValue Const(uint64_t v) { return {true, v, kNoVar}; }
  static SymbolicValue Var(VarId id) { return {false, 0, id}; }

  friend bool operator==(const SymbolicValue& a, const SymbolicValue& b) {
    return a.is_const == b.is_const &&
           (a.is_const ? a.const_value == b.const_value : a.var == b.var);
  }
};

struct FieldState {
  SymbolicValue value;
  // Index into the packet's hop history where this field was last written;
  // -1 means "unchanged since injection".
  int last_def_hop = -1;
};

// One step of the packet's journey; `fields` snapshots the state when the
// packet *left* the node.
struct Hop {
  std::string node;
  int out_port = 0;
  std::array<FieldState, kNumHeaderFields> fields;
};

class SymbolicPacket {
 public:
  SymbolicPacket() = default;

  // A fully unconstrained packet: every field bound to a fresh variable.
  // This is what the controller injects for security checks (§4.4).
  static SymbolicPacket MakeUnconstrained(VarAllocator* vars);

  // --- Field access -----------------------------------------------------------
  const FieldState& field(HeaderField f) const { return fields_[Index(f)]; }
  const SymbolicValue& value(HeaderField f) const { return fields_[Index(f)].value; }

  // The variable this field was bound to at injection time (kNoVar if the
  // seed used constants).
  VarId ingress_var(HeaderField f) const { return ingress_vars_[Index(f)]; }

  // --- Mutation (models call these) ---------------------------------------------
  void SetConst(HeaderField f, uint64_t v);
  void SetFresh(HeaderField f, VarAllocator* vars);
  // Binds field f to an existing symbolic value (var or const) — used for
  // swaps and copies; does NOT reset constraints on the var.
  void SetValue(HeaderField f, const SymbolicValue& v);

  // Narrows the possible values of `f`. Returns false (and marks the packet
  // infeasible) when the intersection is empty.
  bool Constrain(HeaderField f, const ValueSet& allowed);

  // The set of concrete values `f` may take under current constraints.
  ValueSet PossibleValues(HeaderField f) const;
  // Possible values of an arbitrary symbolic value under this packet's
  // constraint store.
  ValueSet PossibleValuesOf(const SymbolicValue& v) const;

  bool feasible() const { return feasible_; }
  void MarkInfeasible() { feasible_ = false; }

  // --- FlowSpec integration -------------------------------------------------------
  // Constrains this packet to match `spec`. Direction-ambiguous predicates
  // ("host X" without src/dst) produce several branches; the result lists
  // every feasible branch (possibly empty).
  std::vector<SymbolicPacket> ConstrainToFlowSpec(const FlowSpec& spec,
                                                  VarAllocator* vars) const;

  // True when some concrete packet satisfying this symbolic packet's
  // constraints *at hop `hop_index`* (or the current state if -1) matches
  // `spec`. Over-approximate for correlated multi-field constraints.
  bool CanMatchFlowSpec(const FlowSpec& spec, int hop_index = -1) const;

  // --- History ----------------------------------------------------------------------
  // Records departure from `node` via `out_port`, snapshotting field state.
  void RecordHop(const std::string& node, int out_port);
  const std::vector<Hop>& history() const { return history_; }
  // First hop index at or after `from` whose node equals `name`; -1 if none.
  int FindHop(const std::string& name, int from = 0) const;

  // Field state as of hop `index` (must be < history().size()).
  const FieldState& FieldAtHop(HeaderField f, int index) const {
    return history_[static_cast<size_t>(index)].fields[Index(f)];
  }

  // True when `f` kept a single definition between hops `from_hop` and
  // `to_hop` (inclusive of intermediate rewrites) — the invariant check.
  bool FieldInvariantBetween(HeaderField f, int from_hop, int to_hop) const;

  // Terminal marker set by sink models ("client", "internet", module egress).
  const std::string& delivered_at() const { return delivered_at_; }
  void set_delivered_at(std::string node) { delivered_at_ = std::move(node); }

  std::string Describe() const;

 private:
  static size_t Index(HeaderField f) { return static_cast<size_t>(f); }
  int NextDefHop() const { return static_cast<int>(history_.size()); }

  static std::array<VarId, kNumHeaderFields> NoVars() {
    std::array<VarId, kNumHeaderFields> vars;
    vars.fill(kNoVar);
    return vars;
  }

  std::array<FieldState, kNumHeaderFields> fields_{};
  std::array<VarId, kNumHeaderFields> ingress_vars_ = NoVars();
  std::unordered_map<VarId, ValueSet> constraints_;  // absent var => Full()
  std::vector<Hop> history_;
  std::string delivered_at_;
  bool feasible_ = true;
};

}  // namespace innet::symexec

#endif  // SRC_SYMEXEC_SYMBOLIC_PACKET_H_
