#include "src/symexec/trace_render.h"

#include <sstream>

#include "src/netcore/ip.h"

namespace innet::symexec {
namespace {

bool IsAddressField(HeaderField field) {
  return field == HeaderField::kIpSrc || field == HeaderField::kIpDst;
}

std::string FormatConcrete(HeaderField field, uint64_t value) {
  if (IsAddressField(field)) {
    return Ipv4Address(static_cast<uint32_t>(value)).ToString();
  }
  if (field == HeaderField::kProto) {
    switch (value) {
      case kProtoTcp:
        return "tcp";
      case kProtoUdp:
        return "udp";
      case kProtoIcmp:
        return "icmp";
      default:
        break;
    }
  }
  return std::to_string(value);
}

constexpr HeaderField kColumns[] = {HeaderField::kIpSrc,   HeaderField::kIpDst,
                                    HeaderField::kProto,   HeaderField::kSrcPort,
                                    HeaderField::kDstPort, HeaderField::kPayload,
                                    HeaderField::kFirewallTag};

std::string PadTo(std::string text, size_t width) {
  if (text.size() < width) {
    text.append(width - text.size(), ' ');
  }
  return text;
}

}  // namespace

std::string RenderValue(const SymbolicPacket& packet, const SymbolicValue& value,
                        HeaderField field) {
  if (value.is_const) {
    return FormatConcrete(field, value.const_value);
  }
  std::ostringstream out;
  // Name ingress variables after their field (CLI-style, as Figure 2 names
  // them); fresh variables keep their numeric id.
  bool named = false;
  for (int i = 0; i < kNumHeaderFields; ++i) {
    HeaderField f = static_cast<HeaderField>(i);
    if (packet.ingress_var(f) == value.var) {
      out << HeaderFieldName(f) << "0";
      named = true;
      break;
    }
  }
  if (!named) {
    out << "v" << value.var;
  }
  ValueSet values = packet.PossibleValuesOf(value);
  if (!(values == ValueSet::Full())) {
    if (values.IsSingle()) {
      out << "=" << FormatConcrete(field, values.SingleValue());
    } else if (IsAddressField(field) && values.intervals().size() == 1) {
      out << "∈[" << FormatConcrete(field, values.intervals()[0].lo) << ".."
          << FormatConcrete(field, values.intervals()[0].hi) << "]";
    } else {
      out << "∈" << values.ToString();
    }
  }
  return out.str();
}

std::string RenderTrace(const SymbolicPacket& packet) {
  std::ostringstream out;
  constexpr size_t kNodeWidth = 26;
  constexpr size_t kCellWidth = 22;

  out << PadTo("node", kNodeWidth);
  for (HeaderField field : kColumns) {
    out << PadTo(std::string(HeaderFieldName(field)), kCellWidth);
  }
  out << "\n";

  const auto& history = packet.history();
  for (size_t hop = 0; hop < history.size(); ++hop) {
    out << PadTo(history[hop].node, kNodeWidth);
    for (HeaderField field : kColumns) {
      const FieldState& state = packet.FieldAtHop(field, static_cast<int>(hop));
      std::string cell = RenderValue(packet, state.value, field);
      // '*' marks a redefinition at this hop (Figure 2 shades these cells).
      if (state.last_def_hop == static_cast<int>(hop)) {
        cell += "*";
      }
      out << PadTo(std::move(cell), kCellWidth);
    }
    out << "\n";
  }
  if (!packet.feasible()) {
    out << "(infeasible path)\n";
  }
  return out.str();
}

}  // namespace innet::symexec
