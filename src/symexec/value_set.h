// ValueSet: a set of uint64 values represented as sorted, disjoint, inclusive
// intervals. This is the constraint domain of the symbolic execution engine —
// rich enough for IP prefixes, port ranges, and protocol sets, and cheap
// enough that checking stays linear in the network size (the property Figure
// 10 depends on; a full SMT solver would not give that).
#ifndef SRC_SYMEXEC_VALUE_SET_H_
#define SRC_SYMEXEC_VALUE_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/netcore/ip.h"

namespace innet::symexec {

class ValueSet {
 public:
  struct Interval {
    uint64_t lo;
    uint64_t hi;  // inclusive
    friend bool operator==(const Interval& a, const Interval& b) {
      return a.lo == b.lo && a.hi == b.hi;
    }
  };

  // The empty set.
  ValueSet() = default;

  static ValueSet Full() { return ValueSet({{0, UINT64_MAX}}); }
  static ValueSet Single(uint64_t v) { return ValueSet({{v, v}}); }
  static ValueSet Range(uint64_t lo, uint64_t hi) {
    return lo <= hi ? ValueSet({{lo, hi}}) : ValueSet();
  }
  static ValueSet FromPrefix(const Ipv4Prefix& prefix) {
    return Range(prefix.first().value(), prefix.last().value());
  }

  bool IsEmpty() const { return intervals_.empty(); }
  bool Contains(uint64_t v) const;
  bool IsSingle() const {
    return intervals_.size() == 1 && intervals_[0].lo == intervals_[0].hi;
  }
  // Only valid when IsSingle().
  uint64_t SingleValue() const { return intervals_[0].lo; }

  ValueSet Intersect(const ValueSet& other) const;
  ValueSet Union(const ValueSet& other) const;
  // this \ other.
  ValueSet Subtract(const ValueSet& other) const;

  uint64_t Count() const;
  const std::vector<Interval>& intervals() const { return intervals_; }
  std::string ToString() const;

  friend bool operator==(const ValueSet& a, const ValueSet& b) {
    return a.intervals_ == b.intervals_;
  }

 private:
  explicit ValueSet(std::vector<Interval> intervals) : intervals_(std::move(intervals)) {}
  void Normalize();

  std::vector<Interval> intervals_;
};

}  // namespace innet::symexec

#endif  // SRC_SYMEXEC_VALUE_SET_H_
