#include "src/symexec/symbolic_packet.h"

#include <sstream>

namespace innet::symexec {

SymbolicPacket SymbolicPacket::MakeUnconstrained(VarAllocator* vars) {
  SymbolicPacket packet;
  for (int i = 0; i < kNumHeaderFields; ++i) {
    VarId var = vars->Alloc();
    packet.fields_[static_cast<size_t>(i)].value = SymbolicValue::Var(var);
    packet.ingress_vars_[static_cast<size_t>(i)] = var;
  }
  return packet;
}

void SymbolicPacket::SetConst(HeaderField f, uint64_t v) {
  fields_[Index(f)].value = SymbolicValue::Const(v);
  fields_[Index(f)].last_def_hop = NextDefHop();
}

void SymbolicPacket::SetFresh(HeaderField f, VarAllocator* vars) {
  fields_[Index(f)].value = SymbolicValue::Var(vars->Alloc());
  fields_[Index(f)].last_def_hop = NextDefHop();
}

void SymbolicPacket::SetValue(HeaderField f, const SymbolicValue& v) {
  fields_[Index(f)].value = v;
  fields_[Index(f)].last_def_hop = NextDefHop();
}

bool SymbolicPacket::Constrain(HeaderField f, const ValueSet& allowed) {
  const SymbolicValue& value = fields_[Index(f)].value;
  if (value.is_const) {
    if (!allowed.Contains(value.const_value)) {
      feasible_ = false;
    }
    return feasible_;
  }
  auto it = constraints_.find(value.var);
  ValueSet narrowed =
      it == constraints_.end() ? allowed : it->second.Intersect(allowed);
  if (narrowed.IsEmpty()) {
    feasible_ = false;
    return false;
  }
  constraints_[value.var] = std::move(narrowed);
  return true;
}

ValueSet SymbolicPacket::PossibleValuesOf(const SymbolicValue& v) const {
  if (v.is_const) {
    return ValueSet::Single(v.const_value);
  }
  auto it = constraints_.find(v.var);
  return it == constraints_.end() ? ValueSet::Full() : it->second;
}

ValueSet SymbolicPacket::PossibleValues(HeaderField f) const {
  return PossibleValuesOf(fields_[Index(f)].value);
}

namespace {

ValueSet PortPredSet(const PortPredicate& pred) {
  return ValueSet::Range(pred.lo, pred.hi);
}

}  // namespace

std::vector<SymbolicPacket> SymbolicPacket::ConstrainToFlowSpec(const FlowSpec& spec,
                                                                VarAllocator* /*vars*/) const {
  // Start with one branch; direction-ambiguous predicates fork it.
  std::vector<SymbolicPacket> branches{*this};
  auto constrain_all = [&branches](HeaderField f, const ValueSet& set) {
    std::vector<SymbolicPacket> next;
    for (SymbolicPacket& b : branches) {
      if (b.Constrain(f, set)) {
        next.push_back(std::move(b));
      }
    }
    branches = std::move(next);
  };
  auto fork_either = [&branches](HeaderField a, HeaderField b, const ValueSet& set) {
    std::vector<SymbolicPacket> next;
    for (SymbolicPacket& branch : branches) {
      SymbolicPacket left = branch;
      if (left.Constrain(a, set)) {
        next.push_back(std::move(left));
      }
      SymbolicPacket right = std::move(branch);
      if (right.Constrain(b, set)) {
        next.push_back(std::move(right));
      }
    }
    branches = std::move(next);
  };

  if (spec.proto()) {
    constrain_all(HeaderField::kProto, ValueSet::Single(*spec.proto()));
  }
  if (spec.ttl()) {
    constrain_all(HeaderField::kTtl, ValueSet::Single(*spec.ttl()));
  }
  for (const AddrPredicate& pred : spec.addr_predicates()) {
    ValueSet set = ValueSet::FromPrefix(pred.prefix);
    if (pred.dir == Direction::kSrc) {
      constrain_all(HeaderField::kIpSrc, set);
    } else if (pred.dir == Direction::kDst) {
      constrain_all(HeaderField::kIpDst, set);
    } else {
      fork_either(HeaderField::kIpSrc, HeaderField::kIpDst, set);
    }
  }
  for (const PortPredicate& pred : spec.port_predicates()) {
    ValueSet set = PortPredSet(pred);
    if (pred.dir == Direction::kSrc) {
      constrain_all(HeaderField::kSrcPort, set);
    } else if (pred.dir == Direction::kDst) {
      constrain_all(HeaderField::kDstPort, set);
    } else {
      fork_either(HeaderField::kSrcPort, HeaderField::kDstPort, set);
    }
  }
  return branches;
}

bool SymbolicPacket::CanMatchFlowSpec(const FlowSpec& spec, int hop_index) const {
  auto field_at = [this, hop_index](HeaderField f) -> const FieldState& {
    if (hop_index < 0) {
      return field(f);
    }
    return FieldAtHop(f, hop_index);
  };
  auto maybe = [this, &field_at](HeaderField f, const ValueSet& set) {
    return !PossibleValuesOf(field_at(f).value).Intersect(set).IsEmpty();
  };

  if (spec.proto() && !maybe(HeaderField::kProto, ValueSet::Single(*spec.proto()))) {
    return false;
  }
  if (spec.ttl() && !maybe(HeaderField::kTtl, ValueSet::Single(*spec.ttl()))) {
    return false;
  }
  for (const AddrPredicate& pred : spec.addr_predicates()) {
    ValueSet set = ValueSet::FromPrefix(pred.prefix);
    bool src_ok = maybe(HeaderField::kIpSrc, set);
    bool dst_ok = maybe(HeaderField::kIpDst, set);
    bool ok = pred.dir == Direction::kSrc   ? src_ok
              : pred.dir == Direction::kDst ? dst_ok
                                            : (src_ok || dst_ok);
    if (!ok) {
      return false;
    }
  }
  for (const PortPredicate& pred : spec.port_predicates()) {
    ValueSet set = PortPredSet(pred);
    bool src_ok = maybe(HeaderField::kSrcPort, set);
    bool dst_ok = maybe(HeaderField::kDstPort, set);
    bool ok = pred.dir == Direction::kSrc   ? src_ok
              : pred.dir == Direction::kDst ? dst_ok
                                            : (src_ok || dst_ok);
    if (!ok) {
      return false;
    }
  }
  return true;
}

void SymbolicPacket::RecordHop(const std::string& node, int out_port) {
  Hop hop;
  hop.node = node;
  hop.out_port = out_port;
  hop.fields = fields_;
  history_.push_back(std::move(hop));
}

int SymbolicPacket::FindHop(const std::string& name, int from) const {
  for (size_t i = static_cast<size_t>(from); i < history_.size(); ++i) {
    if (history_[i].node == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool SymbolicPacket::FieldInvariantBetween(HeaderField f, int from_hop, int to_hop) const {
  if (from_hop < 0 || to_hop < from_hop ||
      static_cast<size_t>(to_hop) >= history_.size()) {
    return false;
  }
  // The field is invariant iff its last definition as of `to_hop` happened at
  // or before `from_hop` — i.e., no node in between rewrote it.
  const FieldState& state = history_[static_cast<size_t>(to_hop)].fields[Index(f)];
  return state.last_def_hop <= from_hop;
}

std::string SymbolicPacket::Describe() const {
  std::ostringstream out;
  static constexpr HeaderField kAll[] = {
      HeaderField::kIpSrc,   HeaderField::kIpDst,       HeaderField::kProto,
      HeaderField::kTtl,     HeaderField::kSrcPort,     HeaderField::kDstPort,
      HeaderField::kPayload, HeaderField::kFirewallTag, HeaderField::kPaint};
  for (HeaderField f : kAll) {
    const SymbolicValue& v = value(f);
    out << HeaderFieldName(f) << "=";
    if (v.is_const) {
      out << v.const_value;
    } else {
      out << "v" << v.var;
      ValueSet set = PossibleValuesOf(v);
      if (!(set == ValueSet::Full())) {
        out << set.ToString();
      }
    }
    out << " ";
  }
  if (!feasible_) {
    out << "(infeasible)";
  }
  return out.str();
}

}  // namespace innet::symexec
