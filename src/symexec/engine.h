// SymGraph + Engine: path exploration over a graph of symbolic models.
#ifndef SRC_SYMEXEC_ENGINE_H_
#define SRC_SYMEXEC_ENGINE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/symexec/model.h"

namespace innet::symexec {

// A directed graph of symbolic nodes. Node out-ports connect to (node,
// in-port) pairs; unconnected out-ports drop.
class SymGraph {
 public:
  int AddNode(const std::string& name, std::shared_ptr<SymbolicModel> model);
  void Connect(int from, int out_port, int to, int in_port);
  bool ConnectByName(const std::string& from, int out_port, const std::string& to, int in_port);

  int FindNode(const std::string& name) const;  // -1 if absent
  const std::string& NodeName(int id) const { return nodes_[static_cast<size_t>(id)].name; }
  size_t node_count() const { return nodes_.size(); }

  // Merges `other` into this graph, prefixing its node names with
  // `prefix` + "/". Returns the id offset of the merged nodes. Used by the
  // controller to graft a client module onto the operator topology.
  int Merge(const SymGraph& other, const std::string& prefix);

 private:
  friend class Engine;
  struct Node {
    std::string name;
    std::shared_ptr<SymbolicModel> model;
    // out_port -> (node id, in_port)
    std::unordered_map<int, std::pair<int, int>> edges;
  };
  std::vector<Node> nodes_;
  std::unordered_map<std::string, int> by_name_;
};

struct EngineOptions {
  int max_hops = 256;
  int max_paths = 65536;
};

struct EngineResult {
  // Packets that reached a delivery point (SinkModel / kPortDeliver).
  std::vector<SymbolicPacket> delivered;
  // Packets dropped inside the graph (model returned no transitions) or that
  // fell off an unconnected port; kept for diagnostics.
  std::vector<SymbolicPacket> dropped;
  // True when exploration hit max_hops or max_paths (result incomplete).
  bool truncated = false;
  // Total model applications — the work metric Figure 10 reports.
  uint64_t steps = 0;
};

class Engine {
 public:
  explicit Engine(const EngineOptions& options = {}) : options_(options) {}

  // Injects `seed` at node `start` (arriving on `in_port`) and explores all
  // paths. The seed's constraints (from a flow spec) carry through.
  EngineResult Run(const SymGraph& graph, int start, int in_port, SymbolicPacket seed);

  VarAllocator* vars() { return &vars_; }

 private:
  EngineOptions options_;
  VarAllocator vars_;
};

}  // namespace innet::symexec

#endif  // SRC_SYMEXEC_ENGINE_H_
