#include "src/symexec/value_set.h"

#include <algorithm>
#include <sstream>

namespace innet::symexec {

bool ValueSet::Contains(uint64_t v) const {
  for (const Interval& iv : intervals_) {
    if (v >= iv.lo && v <= iv.hi) {
      return true;
    }
    if (v < iv.lo) {
      break;  // sorted
    }
  }
  return false;
}

ValueSet ValueSet::Intersect(const ValueSet& other) const {
  std::vector<Interval> result;
  size_t i = 0;
  size_t j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    const Interval& a = intervals_[i];
    const Interval& b = other.intervals_[j];
    uint64_t lo = std::max(a.lo, b.lo);
    uint64_t hi = std::min(a.hi, b.hi);
    if (lo <= hi) {
      result.push_back({lo, hi});
    }
    if (a.hi < b.hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return ValueSet(std::move(result));
}

ValueSet ValueSet::Union(const ValueSet& other) const {
  std::vector<Interval> merged = intervals_;
  merged.insert(merged.end(), other.intervals_.begin(), other.intervals_.end());
  ValueSet result(std::move(merged));
  result.Normalize();
  return result;
}

ValueSet ValueSet::Subtract(const ValueSet& other) const {
  std::vector<Interval> result;
  for (const Interval& a : intervals_) {
    uint64_t cursor = a.lo;
    bool open = true;
    for (const Interval& b : other.intervals_) {
      if (b.hi < cursor || !open) {
        continue;
      }
      if (b.lo > a.hi) {
        break;
      }
      if (b.lo > cursor) {
        result.push_back({cursor, b.lo - 1});
      }
      if (b.hi >= a.hi) {
        open = false;
      } else {
        cursor = b.hi + 1;
      }
    }
    if (open && cursor <= a.hi) {
      result.push_back({cursor, a.hi});
    }
  }
  return ValueSet(std::move(result));
}

uint64_t ValueSet::Count() const {
  uint64_t count = 0;
  for (const Interval& iv : intervals_) {
    count += iv.hi - iv.lo + 1;  // saturates only at Full(), which we tolerate
  }
  return count;
}

void ValueSet::Normalize() {
  if (intervals_.empty()) {
    return;
  }
  std::sort(intervals_.begin(), intervals_.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> merged;
  merged.push_back(intervals_[0]);
  for (size_t i = 1; i < intervals_.size(); ++i) {
    Interval& last = merged.back();
    const Interval& cur = intervals_[i];
    // Merge adjacent or overlapping intervals (careful with hi == UINT64_MAX).
    if (cur.lo <= last.hi || (last.hi != UINT64_MAX && cur.lo == last.hi + 1)) {
      last.hi = std::max(last.hi, cur.hi);
    } else {
      merged.push_back(cur);
    }
  }
  intervals_ = std::move(merged);
}

std::string ValueSet::ToString() const {
  if (intervals_.empty()) {
    return "{}";
  }
  std::ostringstream out;
  out << "{";
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) {
      out << ", ";
    }
    if (intervals_[i].lo == intervals_[i].hi) {
      out << intervals_[i].lo;
    } else {
      out << "[" << intervals_[i].lo << ", " << intervals_[i].hi << "]";
    }
  }
  out << "}";
  return out.str();
}

}  // namespace innet::symexec
