// Renders a symbolic packet's journey as the paper's Figure 2 trace table:
// one row per hop, one column per header field, showing each field's binding
// (constant, variable, or variable-with-constraints) and highlighting
// redefinitions. This is the "explain" output an operator reads when the
// checker rejects a request.
#ifndef SRC_SYMEXEC_TRACE_RENDER_H_
#define SRC_SYMEXEC_TRACE_RENDER_H_

#include <string>

#include "src/symexec/symbolic_packet.h"

namespace innet::symexec {

// Renders the full hop history. Fields rewritten at a hop are marked with
// '*' (Figure 2 shades them). Address-valued fields print dotted quads.
std::string RenderTrace(const SymbolicPacket& packet);

// Renders one field's symbolic value under the packet's constraint store.
std::string RenderValue(const SymbolicPacket& packet, const SymbolicValue& value,
                        HeaderField field);

}  // namespace innet::symexec

#endif  // SRC_SYMEXEC_TRACE_RENDER_H_
