// Abstract symbolic models for every Click element class in the registry
// (§4.3: "we have manually modeled all the stock Click elements").
//
// The models reuse the runtime elements' own Configure() parsing — the model
// builder instantiates the element, reads its parsed state through accessors,
// and discards it — so runtime and model can never drift on configuration
// syntax.
#ifndef SRC_SYMEXEC_CLICK_MODELS_H_
#define SRC_SYMEXEC_CLICK_MODELS_H_

#include <memory>
#include <optional>
#include <string>

#include "src/click/config_parser.h"
#include "src/symexec/engine.h"

namespace innet::symexec {

// Creates the symbolic model for one element instance; nullptr + *error when
// the class is unknown (i.e. not admissible in In-Net) or the configuration
// is malformed.
std::shared_ptr<SymbolicModel> MakeElementModel(const std::string& class_name,
                                                const std::string& args, std::string* error);

// Builds the symbolic graph for a full Click configuration. Node names equal
// element instance names. With `embedded` set, ToNetfront elements become
// pass-throughs (their output 0 is wired back into the hosting platform by
// the controller) instead of delivery sinks.
std::optional<SymGraph> BuildClickModel(const click::ConfigGraph& config, std::string* error,
                                        bool embedded = false);

// Names of the FromNetfront elements in `config` — the module's ingress
// points where the controller injects symbolic packets.
std::vector<std::string> ModuleSources(const click::ConfigGraph& config);
// Names of the ToNetfront elements — the module's egress points.
std::vector<std::string> ModuleSinks(const click::ConfigGraph& config);

}  // namespace innet::symexec

#endif  // SRC_SYMEXEC_CLICK_MODELS_H_
