#include "src/symexec/engine.h"

#include <deque>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace innet::symexec {

int SymGraph::AddNode(const std::string& name, std::shared_ptr<SymbolicModel> model) {
  int id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{name, std::move(model), {}});
  by_name_[name] = id;
  return id;
}

void SymGraph::Connect(int from, int out_port, int to, int in_port) {
  nodes_[static_cast<size_t>(from)].edges[out_port] = {to, in_port};
}

bool SymGraph::ConnectByName(const std::string& from, int out_port, const std::string& to,
                             int in_port) {
  int f = FindNode(from);
  int t = FindNode(to);
  if (f < 0 || t < 0) {
    return false;
  }
  Connect(f, out_port, t, in_port);
  return true;
}

int SymGraph::FindNode(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

int SymGraph::Merge(const SymGraph& other, const std::string& prefix) {
  int offset = static_cast<int>(nodes_.size());
  for (const Node& node : other.nodes_) {
    AddNode(prefix + "/" + node.name, node.model);
  }
  for (size_t i = 0; i < other.nodes_.size(); ++i) {
    for (const auto& [out_port, target] : other.nodes_[i].edges) {
      Connect(offset + static_cast<int>(i), out_port, offset + target.first, target.second);
    }
  }
  return offset;
}

EngineResult Engine::Run(const SymGraph& graph, int start, int in_port, SymbolicPacket seed) {
  EngineResult result;
  if (start < 0 || static_cast<size_t>(start) >= graph.nodes_.size()) {
    return result;
  }

  struct WorkItem {
    int node;
    int in_port;
    SymbolicPacket packet;
  };
  std::deque<WorkItem> work;
  work.push_back({start, in_port, std::move(seed)});
  ModelContext ctx{&vars_};

  size_t paths = 0;
  while (!work.empty()) {
    WorkItem item = std::move(work.front());
    work.pop_front();
    if (static_cast<int>(item.packet.history().size()) >= options_.max_hops) {
      result.truncated = true;
      continue;
    }
    if (++paths > static_cast<size_t>(options_.max_paths)) {
      result.truncated = true;
      break;
    }

    const SymGraph::Node& node = graph.nodes_[static_cast<size_t>(item.node)];
    std::vector<Transition> transitions = node.model->Apply(&ctx, item.packet, item.in_port);
    ++result.steps;

    if (transitions.empty()) {
      item.packet.RecordHop(node.name, 0);
      result.dropped.push_back(std::move(item.packet));
      continue;
    }
    for (Transition& t : transitions) {
      if (!t.packet.feasible()) {
        continue;
      }
      t.packet.RecordHop(node.name, t.out_port);
      if (t.out_port == kPortDeliver) {
        t.packet.set_delivered_at(node.name);
        result.delivered.push_back(std::move(t.packet));
        continue;
      }
      auto edge = node.edges.find(t.out_port);
      if (edge == node.edges.end()) {
        result.dropped.push_back(std::move(t.packet));
        continue;
      }
      work.push_back({edge->second.first, edge->second.second, std::move(t.packet)});
    }
  }

  auto& registry = obs::Registry();
  registry.GetCounter("innet_symexec_runs_total")->Increment();
  registry.GetCounter("innet_symexec_steps_total")->Increment(result.steps);
  if (result.truncated) {
    registry.GetCounter("innet_symexec_truncated_total")->Increment();
  }
  size_t explored = result.delivered.size() + result.dropped.size();
  registry
      .GetHistogram("innet_symexec_paths_explored", {}, obs::ExponentialBuckets(1.0, 4.0, 10))
      ->Observe(static_cast<double>(explored));
  if (obs::Tracer().enabled()) {
    obs::Tracer().RecordNow(obs::EventKind::kSymexecRun,
                            "node:" + graph.NodeName(start),
                            "steps=" + std::to_string(result.steps) +
                                (result.truncated ? " truncated" : ""),
                            static_cast<int64_t>(explored));
  }
  return result;
}

}  // namespace innet::symexec
