#include "src/symexec/path_digest.h"

#include <map>
#include <set>
#include <vector>

#include "src/symexec/click_models.h"
#include "src/symexec/engine.h"
#include "src/symexec/symbolic_packet.h"

namespace innet::symexec {
namespace {

// Must mirror the runtime exclusion set in src/click/profiler.cc — the two
// sides hash the same canonical form or attestation is meaningless.
bool IsEndpointClass(const std::string& class_name) {
  return class_name == "FromNetfront" || class_name == "ToNetfront" ||
         class_name == "FromDevice" || class_name == "ToDevice" || class_name == "Discard";
}

// A symbolic history records a hop when the packet *leaves* a node, so sinks
// never appear; sources do and are filtered here, like at runtime.
std::vector<std::string> Canonicalize(const SymbolicPacket& packet,
                                      const std::map<std::string, std::string>& classes) {
  std::vector<std::string> chain;
  for (const Hop& hop : packet.history()) {
    auto it = classes.find(hop.node);
    if (it != classes.end() && IsEndpointClass(it->second)) {
      continue;
    }
    chain.push_back(hop.node);
  }
  return chain;
}

// Every prefix, including the empty one: a packet dropped before reaching
// any tenant element is always conformant.
void AddPrefixes(const std::vector<std::string>& chain, std::set<uint64_t>* prefixes) {
  std::vector<std::string> prefix;
  prefixes->insert(obs::HashChain(prefix));
  for (const std::string& element : chain) {
    prefix.push_back(element);
    prefixes->insert(obs::HashChain(prefix));
  }
}

}  // namespace

obs::IntPathDigest ComputePathDigest(const click::ConfigGraph& config) {
  obs::IntPathDigest digest;
  std::string error;
  // embedded=false: ToNetfront stays a delivery sink, so "delivered" below
  // means "left the module through a declared egress" — the exact event the
  // runtime completes an egress postcard on.
  auto model = BuildClickModel(config, &error, /*embedded=*/false);
  if (!model) {
    return digest;  // unbuildable configs never deploy; nothing to attest
  }
  std::map<std::string, std::string> classes;
  for (const click::ElementDecl& decl : config.elements) {
    classes[decl.name] = decl.class_name;
  }

  std::set<uint64_t> full;
  std::set<uint64_t> prefixes;
  for (const std::string& source : ModuleSources(config)) {
    int start = model->FindNode(source);
    if (start < 0) {
      continue;
    }
    Engine engine;
    EngineResult result =
        engine.Run(*model, start, 0, SymbolicPacket::MakeUnconstrained(engine.vars()));
    if (result.truncated) {
      digest.truncated = true;
    }
    for (const SymbolicPacket& packet : result.delivered) {
      std::vector<std::string> chain = Canonicalize(packet, classes);
      full.insert(obs::HashChain(chain));
      AddPrefixes(chain, &prefixes);
    }
    for (const SymbolicPacket& packet : result.dropped) {
      AddPrefixes(Canonicalize(packet, classes), &prefixes);
    }
  }
  digest.full_paths.assign(full.begin(), full.end());
  digest.prefixes.assign(prefixes.begin(), prefixes.end());
  return digest;
}

obs::IntPathDigest ComputePathDigestFromText(const std::string& config_text) {
  std::string error;
  auto config = click::ConfigGraph::Parse(config_text, &error);
  if (!config) {
    return {};
  }
  return ComputePathDigest(*config);
}

}  // namespace innet::symexec
