#include "src/symexec/click_models.h"

#include "src/click/elements.h"
#include "src/click/elements_switching.h"
#include "src/click/registry.h"

namespace innet::symexec {
namespace {

using click::Element;

// Branches of `packet` constrained to match `spec`.
std::vector<SymbolicPacket> MatchBranches(ModelContext* ctx, const SymbolicPacket& packet,
                                          const FlowSpec& spec) {
  return packet.ConstrainToFlowSpec(spec, ctx->vars);
}

// The branch of `packet` that does NOT match `spec`. Exact when the spec has
// a single directed predicate (the common case for classifier patterns);
// over-approximate (unconstrained) otherwise — which can only make the
// checker report *more* reachable flows, never fewer, preserving soundness
// of "no compliant flow exists" rejections.
SymbolicPacket ElseBranch(const SymbolicPacket& packet, const FlowSpec& spec) {
  int pred_count = (spec.proto() ? 1 : 0) + (spec.ttl() ? 1 : 0) +
                   static_cast<int>(spec.addr_predicates().size()) +
                   static_cast<int>(spec.port_predicates().size());
  SymbolicPacket out = packet;
  if (spec.IsWildcard()) {
    out.MarkInfeasible();
    return out;
  }
  if (pred_count != 1) {
    return out;  // over-approximate
  }
  if (spec.proto()) {
    out.Constrain(HeaderField::kProto,
                  ValueSet::Full().Subtract(ValueSet::Single(*spec.proto())));
    return out;
  }
  if (spec.ttl()) {
    out.Constrain(HeaderField::kTtl, ValueSet::Full().Subtract(ValueSet::Single(*spec.ttl())));
    return out;
  }
  if (!spec.addr_predicates().empty()) {
    const AddrPredicate& pred = spec.addr_predicates()[0];
    if (pred.dir == Direction::kEither) {
      return out;  // negation of a disjunction: over-approximate
    }
    HeaderField f = pred.dir == Direction::kSrc ? HeaderField::kIpSrc : HeaderField::kIpDst;
    out.Constrain(f, ValueSet::Full().Subtract(ValueSet::FromPrefix(pred.prefix)));
    return out;
  }
  const PortPredicate& pred = spec.port_predicates()[0];
  if (pred.dir == Direction::kEither) {
    return out;
  }
  HeaderField f = pred.dir == Direction::kSrc ? HeaderField::kSrcPort : HeaderField::kDstPort;
  out.Constrain(f, ValueSet::Full().Subtract(ValueSet::Range(pred.lo, pred.hi)));
  return out;
}

// --- Concrete models ---------------------------------------------------------------

class FilterModel : public SymbolicModel {
 public:
  explicit FilterModel(std::vector<click::IPFilter::Rule> rules) : rules_(std::move(rules)) {}

  std::vector<Transition> Apply(ModelContext* ctx, const SymbolicPacket& packet,
                                int /*in_port*/) override {
    std::vector<Transition> out;
    SymbolicPacket remaining = packet;
    for (const auto& rule : rules_) {
      if (!remaining.feasible()) {
        break;
      }
      if (rule.allow) {
        for (SymbolicPacket& branch : MatchBranches(ctx, remaining, rule.spec)) {
          out.push_back({0, std::move(branch)});
        }
      }
      remaining = ElseBranch(remaining, rule.spec);
    }
    return out;
  }

 private:
  std::vector<click::IPFilter::Rule> rules_;
};

class ClassifierModel : public SymbolicModel {
 public:
  explicit ClassifierModel(std::vector<FlowSpec> patterns) : patterns_(std::move(patterns)) {}

  std::vector<Transition> Apply(ModelContext* ctx, const SymbolicPacket& packet,
                                int /*in_port*/) override {
    std::vector<Transition> out;
    SymbolicPacket remaining = packet;
    for (size_t i = 0; i < patterns_.size(); ++i) {
      if (!remaining.feasible()) {
        break;
      }
      for (SymbolicPacket& branch : MatchBranches(ctx, remaining, patterns_[i])) {
        out.push_back({static_cast<int>(i), std::move(branch)});
      }
      remaining = ElseBranch(remaining, patterns_[i]);
    }
    return out;
  }

 private:
  std::vector<FlowSpec> patterns_;
};

class RewriteModel : public SymbolicModel {
 public:
  RewriteModel(std::optional<uint32_t> src, std::optional<uint32_t> dst,
               std::optional<uint16_t> sport, std::optional<uint16_t> dport)
      : src_(src), dst_(dst), sport_(sport), dport_(dport) {}

  std::vector<Transition> Apply(ModelContext* /*ctx*/, const SymbolicPacket& packet,
                                int /*in_port*/) override {
    SymbolicPacket out = packet;
    if (src_) {
      out.SetConst(HeaderField::kIpSrc, *src_);
    }
    if (dst_) {
      out.SetConst(HeaderField::kIpDst, *dst_);
    }
    if (sport_) {
      out.SetConst(HeaderField::kSrcPort, *sport_);
    }
    if (dport_) {
      out.SetConst(HeaderField::kDstPort, *dport_);
    }
    return {{0, std::move(out)}};
  }

 private:
  std::optional<uint32_t> src_;
  std::optional<uint32_t> dst_;
  std::optional<uint16_t> sport_;
  std::optional<uint16_t> dport_;
};

class DecTtlModel : public SymbolicModel {
 public:
  std::vector<Transition> Apply(ModelContext* ctx, const SymbolicPacket& packet,
                                int /*in_port*/) override {
    SymbolicPacket out = packet;
    // We do not model arithmetic; a decrement is a redefinition, which is all
    // invariant checking needs.
    out.SetFresh(HeaderField::kTtl, ctx->vars);
    return {{0, std::move(out)}};
  }
};

class TeeModel : public SymbolicModel {
 public:
  explicit TeeModel(int n) : n_(n) {}
  std::vector<Transition> Apply(ModelContext* /*ctx*/, const SymbolicPacket& packet,
                                int /*in_port*/) override {
    std::vector<Transition> out;
    for (int i = 0; i < n_; ++i) {
      out.push_back({i, packet});
    }
    return out;
  }

 private:
  int n_;
};

class ContentMatchModel : public SymbolicModel {
 public:
  std::vector<Transition> Apply(ModelContext* /*ctx*/, const SymbolicPacket& packet,
                                int /*in_port*/) override {
    // The payload is opaque: both outcomes are possible.
    return {{0, packet}, {1, packet}};
  }
};

class ChangeEnforcerModel : public SymbolicModel {
 public:
  explicit ChangeEnforcerModel(std::vector<uint32_t> whitelist)
      : whitelist_(std::move(whitelist)) {}

  std::vector<Transition> Apply(ModelContext* /*ctx*/, const SymbolicPacket& packet,
                                int in_port) override {
    if (in_port == 0) {
      return {{0, packet}};  // inbound records state; folded into the flow
    }
    std::vector<Transition> out;
    // Outbound branch A: destination in the whitelist.
    if (!whitelist_.empty()) {
      ValueSet allowed;
      for (uint32_t addr : whitelist_) {
        allowed = allowed.Union(ValueSet::Single(addr));
      }
      SymbolicPacket branch = packet;
      if (branch.Constrain(HeaderField::kIpDst, allowed)) {
        out.push_back({1, std::move(branch)});
      }
    }
    // Outbound branch B: response to an authorized peer — the destination is
    // the value the ingress source carried (implicit authorization).
    if (packet.ingress_var(HeaderField::kIpSrc) != kNoVar) {
      SymbolicPacket branch = packet;
      branch.SetValue(HeaderField::kIpDst,
                      SymbolicValue::Var(packet.ingress_var(HeaderField::kIpSrc)));
      out.push_back({1, std::move(branch)});
    }
    return out;
  }

 private:
  std::vector<uint32_t> whitelist_;
};

class TunnelEncapModel : public SymbolicModel {
 public:
  TunnelEncapModel(uint32_t src, uint32_t dst, uint16_t port)
      : src_(src), dst_(dst), port_(port) {}

  std::vector<Transition> Apply(ModelContext* ctx, const SymbolicPacket& packet,
                                int /*in_port*/) override {
    SymbolicPacket out = packet;
    out.SetConst(HeaderField::kIpSrc, src_);
    out.SetConst(HeaderField::kIpDst, dst_);
    out.SetConst(HeaderField::kProto, kProtoUdp);
    out.SetConst(HeaderField::kSrcPort, port_);
    out.SetConst(HeaderField::kDstPort, port_);
    out.SetFresh(HeaderField::kPayload, ctx->vars);  // inner packet rides inside
    return {{0, std::move(out)}};
  }

 private:
  uint32_t src_;
  uint32_t dst_;
  uint16_t port_;
};

class TunnelDecapModel : public SymbolicModel {
 public:
  std::vector<Transition> Apply(ModelContext* ctx, const SymbolicPacket& packet,
                                int /*in_port*/) override {
    SymbolicPacket out = packet;
    if (!out.Constrain(HeaderField::kProto, ValueSet::Single(kProtoUdp))) {
      return {};
    }
    // Everything about the inner packet is decided at runtime by the tunnel
    // payload — fresh unknowns. This is precisely why Table 1 gives tunnels a
    // sandbox verdict for third parties.
    out.SetFresh(HeaderField::kIpSrc, ctx->vars);
    out.SetFresh(HeaderField::kIpDst, ctx->vars);
    out.SetFresh(HeaderField::kProto, ctx->vars);
    out.SetFresh(HeaderField::kSrcPort, ctx->vars);
    out.SetFresh(HeaderField::kDstPort, ctx->vars);
    out.SetFresh(HeaderField::kPayload, ctx->vars);
    return {{0, std::move(out)}};
  }
};

class IpLookupModel : public SymbolicModel {
 public:
  explicit IpLookupModel(std::vector<click::LinearIPLookup::Route> routes)
      : routes_(std::move(routes)) {
    // Longest prefix first makes sequential subtraction implement LPM.
    std::sort(routes_.begin(), routes_.end(), [](const auto& a, const auto& b) {
      return a.prefix.length() > b.prefix.length();
    });
  }

  std::vector<Transition> Apply(ModelContext* /*ctx*/, const SymbolicPacket& packet,
                                int /*in_port*/) override {
    std::vector<Transition> out;
    ValueSet remaining = packet.PossibleValues(HeaderField::kIpDst);
    for (const auto& route : routes_) {
      ValueSet range = ValueSet::FromPrefix(route.prefix);
      ValueSet matched = remaining.Intersect(range);
      if (!matched.IsEmpty()) {
        SymbolicPacket branch = packet;
        if (branch.Constrain(HeaderField::kIpDst, matched)) {
          out.push_back({route.out_port, std::move(branch)});
        }
      }
      remaining = remaining.Subtract(range);
      if (remaining.IsEmpty()) {
        break;
      }
    }
    return out;
  }

 private:
  std::vector<click::LinearIPLookup::Route> routes_;
};

class NatModel : public SymbolicModel {
 public:
  explicit NatModel(uint32_t public_addr) : public_addr_(public_addr) {}

  std::vector<Transition> Apply(ModelContext* ctx, const SymbolicPacket& packet,
                                int in_port) override {
    SymbolicPacket out = packet;
    if (in_port == 0) {
      // Outbound: source-NAT to the public address.
      out.SetConst(HeaderField::kIpSrc, public_addr_);
      out.SetFresh(HeaderField::kSrcPort, ctx->vars);
      return {{0, std::move(out)}};
    }
    // Inbound: the restored destination comes from NAT state, unknown at
    // install time.
    out.SetFresh(HeaderField::kIpDst, ctx->vars);
    out.SetFresh(HeaderField::kDstPort, ctx->vars);
    return {{1, std::move(out)}};
  }

 private:
  uint32_t public_addr_;
};

class DnsServerModel : public SymbolicModel {
 public:
  std::vector<Transition> Apply(ModelContext* /*ctx*/, const SymbolicPacket& packet,
                                int /*in_port*/) override {
    SymbolicPacket out = packet;
    if (!out.Constrain(HeaderField::kProto, ValueSet::Single(kProtoUdp)) ||
        !out.Constrain(HeaderField::kDstPort, ValueSet::Single(53))) {
      return {};
    }
    // Respond to the requester: swap addresses and ports.
    SymbolicValue old_src = out.value(HeaderField::kIpSrc);
    SymbolicValue old_dst = out.value(HeaderField::kIpDst);
    SymbolicValue old_sport = out.value(HeaderField::kSrcPort);
    out.SetValue(HeaderField::kIpSrc, old_dst);
    out.SetValue(HeaderField::kIpDst, old_src);
    out.SetConst(HeaderField::kSrcPort, 53);
    out.SetValue(HeaderField::kDstPort, old_sport);
    // The answer payload is generated by the server.
    return {{0, std::move(out)}};
  }
};

class ReverseProxyModel : public SymbolicModel {
 public:
  ReverseProxyModel(uint32_t self, uint32_t origin) : self_(self), origin_(origin) {}

  std::vector<Transition> Apply(ModelContext* ctx, const SymbolicPacket& packet,
                                int /*in_port*/) override {
    std::vector<Transition> out;
    // Hit: reply to the requester as ourselves.
    {
      SymbolicPacket hit = packet;
      SymbolicValue requester = hit.value(HeaderField::kIpSrc);
      SymbolicValue req_port = hit.value(HeaderField::kSrcPort);
      hit.SetConst(HeaderField::kIpSrc, self_);
      hit.SetValue(HeaderField::kIpDst, requester);
      hit.SetConst(HeaderField::kSrcPort, 80);
      hit.SetValue(HeaderField::kDstPort, req_port);
      hit.SetFresh(HeaderField::kPayload, ctx->vars);
      out.push_back({0, std::move(hit)});
    }
    // Miss: fetch from the whitelisted origin, as ourselves.
    {
      SymbolicPacket miss = packet;
      miss.SetConst(HeaderField::kIpSrc, self_);
      miss.SetConst(HeaderField::kIpDst, origin_);
      miss.SetConst(HeaderField::kDstPort, 80);
      out.push_back({1, std::move(miss)});
    }
    return out;
  }

 private:
  uint32_t self_;
  uint32_t origin_;
};

class OpaqueModel : public SymbolicModel {
 public:
  std::vector<Transition> Apply(ModelContext* ctx, const SymbolicPacket& packet,
                                int /*in_port*/) override {
    // An arbitrary x86 VM: every field may be anything on egress.
    SymbolicPacket out = packet;
    out.SetFresh(HeaderField::kIpSrc, ctx->vars);
    out.SetFresh(HeaderField::kIpDst, ctx->vars);
    out.SetFresh(HeaderField::kProto, ctx->vars);
    out.SetFresh(HeaderField::kTtl, ctx->vars);
    out.SetFresh(HeaderField::kSrcPort, ctx->vars);
    out.SetFresh(HeaderField::kDstPort, ctx->vars);
    out.SetFresh(HeaderField::kPayload, ctx->vars);
    return {{0, std::move(out)}};
  }
};

class PaintModel : public SymbolicModel {
 public:
  explicit PaintModel(uint8_t color) : color_(color) {}
  std::vector<Transition> Apply(ModelContext* /*ctx*/, const SymbolicPacket& packet,
                                int /*in_port*/) override {
    SymbolicPacket out = packet;
    out.SetConst(HeaderField::kPaint, color_);
    return {{0, std::move(out)}};
  }

 private:
  uint8_t color_;
};

class PaintSwitchModel : public SymbolicModel {
 public:
  explicit PaintSwitchModel(int n) : n_(n) {}
  std::vector<Transition> Apply(ModelContext* /*ctx*/, const SymbolicPacket& packet,
                                int /*in_port*/) override {
    std::vector<Transition> out;
    for (int i = 0; i < n_; ++i) {
      SymbolicPacket branch = packet;
      if (branch.Constrain(HeaderField::kPaint, ValueSet::Single(static_cast<uint64_t>(i)))) {
        out.push_back({i, std::move(branch)});
      }
    }
    return out;
  }

 private:
  int n_;
};

// Round-robin and hash switches route on internal state / flow hashes the
// checker does not model; any output is possible, so every branch stays live
// (a sound over-approximation).
class AnyOutputModel : public SymbolicModel {
 public:
  explicit AnyOutputModel(int n) : n_(n) {}
  std::vector<Transition> Apply(ModelContext* /*ctx*/, const SymbolicPacket& packet,
                                int /*in_port*/) override {
    std::vector<Transition> out;
    for (int i = 0; i < n_; ++i) {
      out.push_back({i, packet});
    }
    return out;
  }

 private:
  int n_;
};

class IcmpResponderModel : public SymbolicModel {
 public:
  std::vector<Transition> Apply(ModelContext* /*ctx*/, const SymbolicPacket& packet,
                                int /*in_port*/) override {
    SymbolicPacket out = packet;
    if (!out.Constrain(HeaderField::kProto, ValueSet::Single(kProtoIcmp))) {
      return {};
    }
    SymbolicValue old_src = out.value(HeaderField::kIpSrc);
    SymbolicValue old_dst = out.value(HeaderField::kIpDst);
    out.SetValue(HeaderField::kIpSrc, old_dst);
    out.SetValue(HeaderField::kIpDst, old_src);
    return {{0, std::move(out)}};
  }
};

class ExplicitProxyModel : public SymbolicModel {
 public:
  explicit ExplicitProxyModel(uint32_t self) : self_(self) {}
  std::vector<Transition> Apply(ModelContext* ctx, const SymbolicPacket& packet,
                                int /*in_port*/) override {
    // The proxy fetches as itself; the target comes from the request payload
    // — a fresh unknown, decided at runtime.
    SymbolicPacket out = packet;
    out.SetConst(HeaderField::kIpSrc, self_);
    out.SetFresh(HeaderField::kIpDst, ctx->vars);
    out.SetFresh(HeaderField::kDstPort, ctx->vars);
    return {{0, std::move(out)}};
  }

 private:
  uint32_t self_;
};

class TransparentProxyModel : public SymbolicModel {
 public:
  std::vector<Transition> Apply(ModelContext* ctx, const SymbolicPacket& packet,
                                int /*in_port*/) override {
    // Transit traffic passes with original addressing; the proxy may rewrite
    // the application payload.
    SymbolicPacket out = packet;
    out.SetFresh(HeaderField::kPayload, ctx->vars);
    return {{0, std::move(out)}};
  }
};

class DropModel : public SymbolicModel {
 public:
  std::vector<Transition> Apply(ModelContext* /*ctx*/, const SymbolicPacket& /*packet*/,
                                int /*in_port*/) override {
    return {};
  }
};

}  // namespace

std::shared_ptr<SymbolicModel> MakeElementModel(const std::string& class_name,
                                                const std::string& args, std::string* error) {
  // Parse the configuration exactly as the runtime would.
  std::unique_ptr<Element> element = click::Registry::Global().Create(class_name, args, error);
  if (element == nullptr) {
    return nullptr;
  }

  if (class_name == "FromNetfront" || class_name == "FromDevice" ||
      class_name == "Counter" || class_name == "CheckIPHeader" || class_name == "Queue" ||
      class_name == "TimedUnqueue" || class_name == "FlowMeter" ||
      class_name == "RateLimiter") {
    // These never modify header fields: a batcher delays, a meter counts, a
    // limiter drops — so header *and payload* invariants hold across them.
    return std::make_shared<PassthroughModel>();
  }
  if (class_name == "ToNetfront" || class_name == "ToDevice") {
    return std::make_shared<SinkModel>();
  }
  if (class_name == "Discard") {
    return std::make_shared<DropModel>();
  }
  if (class_name == "Tee") {
    return std::make_shared<TeeModel>(element->n_outputs());
  }
  if (class_name == "IPFilter") {
    auto* filter = static_cast<click::IPFilter*>(element.get());
    return std::make_shared<FilterModel>(filter->rules());
  }
  if (class_name == "IPClassifier" || class_name == "Classifier") {
    auto* classifier = static_cast<click::IPClassifier*>(element.get());
    return std::make_shared<ClassifierModel>(classifier->patterns());
  }
  if (class_name == "IPRewriter") {
    auto* rw = static_cast<click::IPRewriter*>(element.get());
    auto addr_value = [](const std::optional<Ipv4Address>& a) -> std::optional<uint32_t> {
      return a ? std::optional<uint32_t>(a->value()) : std::nullopt;
    };
    return std::make_shared<RewriteModel>(addr_value(rw->new_src()), addr_value(rw->new_dst()),
                                          rw->new_sport(), rw->new_dport());
  }
  if (class_name == "SetIPSrc") {
    auto* set = static_cast<click::SetIPSrc*>(element.get());
    return std::make_shared<RewriteModel>(set->addr().value(), std::nullopt, std::nullopt,
                                          std::nullopt);
  }
  if (class_name == "SetIPDst") {
    auto* set = static_cast<click::SetIPDst*>(element.get());
    return std::make_shared<RewriteModel>(std::nullopt, set->addr().value(), std::nullopt,
                                          std::nullopt);
  }
  if (class_name == "DecIPTTL") {
    return std::make_shared<DecTtlModel>();
  }
  if (class_name == "ChangeEnforcer") {
    auto* enforcer = static_cast<click::ChangeEnforcer*>(element.get());
    std::vector<uint32_t> whitelist(enforcer->whitelist().begin(), enforcer->whitelist().end());
    return std::make_shared<ChangeEnforcerModel>(std::move(whitelist));
  }
  if (class_name == "ContentMatch") {
    return std::make_shared<ContentMatchModel>();
  }
  if (class_name == "UDPTunnelEncap") {
    auto* encap = static_cast<click::UDPTunnelEncap*>(element.get());
    return std::make_shared<TunnelEncapModel>(encap->src().value(), encap->dst().value(),
                                              encap->tunnel_port());
  }
  if (class_name == "UDPTunnelDecap") {
    return std::make_shared<TunnelDecapModel>();
  }
  if (class_name == "LinearIPLookup") {
    auto* lookup = static_cast<click::LinearIPLookup*>(element.get());
    return std::make_shared<IpLookupModel>(lookup->routes());
  }
  if (class_name == "NatRewriter") {
    auto* nat = static_cast<click::NatRewriter*>(element.get());
    return std::make_shared<NatModel>(nat->public_addr().value());
  }
  if (class_name == "DnsGeoServer") {
    return std::make_shared<DnsServerModel>();
  }
  if (class_name == "ReverseProxy") {
    auto* proxy = static_cast<click::ReverseProxy*>(element.get());
    return std::make_shared<ReverseProxyModel>(proxy->self().value(), proxy->origin().value());
  }
  if (class_name == "X86Vm") {
    return std::make_shared<OpaqueModel>();
  }
  if (class_name == "TransparentProxy") {
    return std::make_shared<TransparentProxyModel>();
  }
  if (class_name == "Paint") {
    auto* paint = static_cast<click::Paint*>(element.get());
    return std::make_shared<PaintModel>(paint->color());
  }
  if (class_name == "PaintSwitch" || class_name == "RoundRobinSwitch" ||
      class_name == "HashSwitch") {
    int n = element->n_outputs();
    if (class_name == "PaintSwitch") {
      return std::make_shared<PaintSwitchModel>(n);
    }
    return std::make_shared<AnyOutputModel>(n);
  }
  if (class_name == "RandomSample") {
    return std::make_shared<AnyOutputModel>(2);
  }
  if (class_name == "SetTTL") {
    uint8_t ttl = static_cast<click::SetTTL*>(element.get())->ttl();
    return std::make_shared<LambdaModel>(
        [ttl](ModelContext*, const SymbolicPacket& packet, int) -> std::vector<Transition> {
          SymbolicPacket out = packet;
          out.SetConst(HeaderField::kTtl, ttl);
          return {{0, std::move(out)}};
        });
  }
  if (class_name == "ICMPPingResponder") {
    return std::make_shared<IcmpResponderModel>();
  }
  if (class_name == "ExplicitProxy") {
    auto* proxy = static_cast<click::ExplicitProxy*>(element.get());
    return std::make_shared<ExplicitProxyModel>(proxy->self().value());
  }
  if (class_name == "AddressDemux") {
    auto* demux = static_cast<click::AddressDemux*>(element.get());
    // Equivalent to an IPClassifier over exact destination hosts.
    std::vector<FlowSpec> patterns;
    for (Ipv4Address addr : demux->addresses()) {
      patterns.push_back(FlowSpec::MustParse("dst host " + addr.ToString()));
    }
    return std::make_shared<ClassifierModel>(std::move(patterns));
  }
  *error = "no symbolic model for element class '" + class_name + "'";
  return nullptr;
}

std::optional<SymGraph> BuildClickModel(const click::ConfigGraph& config, std::string* error,
                                        bool embedded) {
  SymGraph graph;
  for (const click::ElementDecl& decl : config.elements) {
    std::shared_ptr<SymbolicModel> model;
    if (embedded && (decl.class_name == "ToNetfront" || decl.class_name == "ToDevice")) {
      model = std::make_shared<PassthroughModel>();
    } else {
      model = MakeElementModel(decl.class_name, decl.args, error);
    }
    if (model == nullptr) {
      *error = "element '" + decl.name + "': " + *error;
      return std::nullopt;
    }
    graph.AddNode(decl.name, std::move(model));
  }
  for (const click::Connection& conn : config.connections) {
    if (!graph.ConnectByName(conn.from, conn.from_port, conn.to, conn.to_port)) {
      *error = "connection references unknown element";
      return std::nullopt;
    }
  }
  return graph;
}

std::vector<std::string> ModuleSources(const click::ConfigGraph& config) {
  std::vector<std::string> names;
  for (const click::ElementDecl& decl : config.elements) {
    if (decl.class_name == "FromNetfront" || decl.class_name == "FromDevice") {
      names.push_back(decl.name);
    }
  }
  return names;
}

std::vector<std::string> ModuleSinks(const click::ConfigGraph& config) {
  std::vector<std::string> names;
  for (const click::ElementDecl& decl : config.elements) {
    if (decl.class_name == "ToNetfront" || decl.class_name == "ToDevice") {
      names.push_back(decl.name);
    }
  }
  return names;
}

}  // namespace innet::symexec
