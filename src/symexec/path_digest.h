// Verify-time path digests for runtime conformance attestation.
//
// At deploy time the controller symbolically executes the tenant's module
// (SymNet-style, src/symexec/engine.h); this header turns that same
// exploration into a compact IntPathDigest: the hash set of every complete
// delivered element chain plus the hash set of every prefix of every path
// (delivered or dropped). The runtime side (src/obs/int_telemetry.h) checks
// sampled packets' in-band hop stacks against these sets — a delivered
// packet must match a full verified path exactly, a dropped packet must have
// followed a verified path up to its drop point.
//
// Canonicalization MUST match the runtime exactly: source/sink adapters
// (FromNetfront/ToNetfront/FromDevice/ToDevice) and Discard are excluded
// from chains on both sides, and element names are the module's own (the
// consolidator's "t<i>_" prefixes are stripped at collection time).
#ifndef SRC_SYMEXEC_PATH_DIGEST_H_
#define SRC_SYMEXEC_PATH_DIGEST_H_

#include <string>

#include "src/click/config_parser.h"
#include "src/obs/int_telemetry.h"

namespace innet::symexec {

// Explores every module source with a fully unconstrained packet and folds
// the resulting paths into a digest. `truncated` is set when the engine hit
// its exploration budget (attestation is then skipped at runtime rather than
// risking false violations). Returns an empty digest when the config has no
// symbolic model or no sources.
obs::IntPathDigest ComputePathDigest(const click::ConfigGraph& config);

// Convenience overload from raw Click text; empty digest when unparseable.
obs::IntPathDigest ComputePathDigestFromText(const std::string& config_text);

}  // namespace innet::symexec

#endif  // SRC_SYMEXEC_PATH_DIGEST_H_
