#include "src/scheduler/policy.h"

#include <algorithm>

namespace innet::scheduler {

const char* PlacementPolicyName(PlacementPolicyKind kind) {
  switch (kind) {
    case PlacementPolicyKind::kFirstFit: return "first_fit";
    case PlacementPolicyKind::kLeastLoaded: return "least_loaded";
    case PlacementPolicyKind::kBinPack: return "bin_pack";
  }
  return "unknown";
}

bool ParsePlacementPolicy(const std::string& text, PlacementPolicyKind* out) {
  if (text == "first_fit") {
    *out = PlacementPolicyKind::kFirstFit;
  } else if (text == "least_loaded") {
    *out = PlacementPolicyKind::kLeastLoaded;
  } else if (text == "bin_pack") {
    *out = PlacementPolicyKind::kBinPack;
  } else {
    return false;
  }
  return true;
}

std::vector<std::string> RankPlatforms(PlacementPolicyKind kind,
                                       const std::vector<PlatformResources>& platforms,
                                       const PlacementRequest& request) {
  std::vector<const PlatformResources*> fitting;
  for (const PlatformResources& platform : platforms) {
    if (platform.available && platform.memory_free() >= request.memory_bytes) {
      fitting.push_back(&platform);
    }
  }
  // The snapshot arrives name-sorted; stable_sort preserves that order as
  // the tiebreak, which is also exactly first-fit's ranking.
  switch (kind) {
    case PlacementPolicyKind::kFirstFit:
      break;
    case PlacementPolicyKind::kLeastLoaded:
      std::stable_sort(fitting.begin(), fitting.end(),
                       [](const PlatformResources* a, const PlatformResources* b) {
                         return a->utilization() < b->utilization();
                       });
      break;
    case PlacementPolicyKind::kBinPack:
      std::stable_sort(fitting.begin(), fitting.end(),
                       [](const PlatformResources* a, const PlatformResources* b) {
                         return a->utilization() > b->utilization();
                       });
      break;
  }
  std::vector<std::string> names;
  names.reserve(fitting.size());
  for (const PlatformResources* platform : fitting) {
    names.push_back(platform->name);
  }
  return names;
}

}  // namespace innet::scheduler
