#include "src/scheduler/policy.h"

#include <algorithm>

namespace innet::scheduler {

const char* PlacementPolicyName(PlacementPolicyKind kind) {
  switch (kind) {
    case PlacementPolicyKind::kFirstFit: return "first_fit";
    case PlacementPolicyKind::kLeastLoaded: return "least_loaded";
    case PlacementPolicyKind::kBinPack: return "bin_pack";
  }
  return "unknown";
}

bool ParsePlacementPolicy(const std::string& text, PlacementPolicyKind* out) {
  if (text == "first_fit") {
    *out = PlacementPolicyKind::kFirstFit;
  } else if (text == "least_loaded") {
    *out = PlacementPolicyKind::kLeastLoaded;
  } else if (text == "bin_pack") {
    *out = PlacementPolicyKind::kBinPack;
  } else {
    return false;
  }
  return true;
}

std::vector<std::string> RankPlatforms(PlacementPolicyKind kind,
                                       const std::vector<PlatformResources>& platforms,
                                       const PlacementRequest& request) {
  std::vector<const PlatformResources*> fitting;
  for (const PlatformResources& platform : platforms) {
    if (platform.available && platform.memory_free() >= request.memory_bytes) {
      fitting.push_back(&platform);
    }
  }
  // The snapshot arrives name-sorted; stable_sort preserves that order as
  // the tiebreak, which is also exactly first-fit's ranking.
  switch (kind) {
    case PlacementPolicyKind::kFirstFit:
      break;
    case PlacementPolicyKind::kLeastLoaded:
      std::stable_sort(fitting.begin(), fitting.end(),
                       [](const PlatformResources* a, const PlatformResources* b) {
                         return a->utilization() < b->utilization();
                       });
      break;
    case PlacementPolicyKind::kBinPack:
      std::stable_sort(fitting.begin(), fitting.end(),
                       [](const PlatformResources* a, const PlatformResources* b) {
                         return a->utilization() > b->utilization();
                       });
      break;
  }
  std::vector<std::string> names;
  names.reserve(fitting.size());
  for (const PlatformResources* platform : fitting) {
    names.push_back(platform->name);
  }
  return names;
}

std::vector<std::string> RankRegions(const std::vector<RegionCandidate>& regions) {
  auto score = [](const RegionCandidate& r) { return r.rtt_ms + r.utilization * 50.0; };
  std::vector<const RegionCandidate*> ranked;
  ranked.reserve(regions.size());
  for (const RegionCandidate& region : regions) {
    ranked.push_back(&region);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&score](const RegionCandidate* a, const RegionCandidate* b) {
                     // Healthy beliefs strictly precede suspect ones: a stale
                     // or degraded region only receives tenants when every
                     // fresh region rejected them.
                     bool a_suspect = a->stale || a->degraded;
                     bool b_suspect = b->stale || b->degraded;
                     if (a_suspect != b_suspect) {
                       return !a_suspect;
                     }
                     // Anomaly flags demote within the freshness class: a
                     // region with a metric burst keeps serving, but only
                     // after every quiet region had its chance.
                     if (a->anomalous != b->anomalous) {
                       return !a->anomalous;
                     }
                     double sa = score(*a);
                     double sb = score(*b);
                     if (sa != sb) {
                       return sa < sb;
                     }
                     return a->name < b->name;
                   });
  std::vector<std::string> names;
  names.reserve(ranked.size());
  for (const RegionCandidate* region : ranked) {
    names.push_back(region->name);
  }
  return names;
}

}  // namespace innet::scheduler
