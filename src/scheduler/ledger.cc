#include "src/scheduler/ledger.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace innet::scheduler {

void ResourceLedger::AddPlatform(const std::string& name) {
  auto pos = std::lower_bound(entries_.begin(), entries_.end(), name,
                              [](const Entry& entry, const std::string& key) {
                                return entry.name < key;
                              });
  if (pos != entries_.end() && pos->name == name) {
    pos->enabled = true;
    return;
  }
  entries_.insert(pos, Entry{name, true});
}

void ResourceLedger::RemovePlatform(const std::string& name) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& entry) { return entry.name == name; }),
                 entries_.end());
}

void ResourceLedger::SetAvailable(const std::string& name, bool available) {
  for (Entry& entry : entries_) {
    if (entry.name == name) {
      entry.enabled = available;
    }
  }
}

std::vector<PlatformResources> ResourceLedger::Snapshot() const {
  std::vector<PlatformResources> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    PlatformResources resources;
    if (!prober_ || !prober_(entry.name, &resources)) {
      continue;  // platform vanished from the data plane: skip, don't invent
    }
    resources.name = entry.name;
    resources.available = resources.available && entry.enabled;
    out.push_back(std::move(resources));
  }
  return out;
}

void ResourceLedger::ExportHeadroomGauges() const {
  for (const PlatformResources& resources : Snapshot()) {
    obs::Registry()
        .GetGauge("innet_scheduler_platform_headroom_bytes", {{"platform", resources.name}})
        ->Set(resources.available ? static_cast<double>(resources.memory_free()) : 0.0);
    obs::Registry()
        .GetGauge("innet_scheduler_platform_utilization", {{"platform", resources.name}})
        ->Set(resources.available ? resources.utilization() : 1.0);
  }
}

}  // namespace innet::scheduler
