#include "src/scheduler/engine.h"

namespace innet::scheduler {

PlacementEngine::PlacementEngine(ResourceLedger::Prober prober, PlacementPolicyKind policy)
    : ledger_(std::move(prober)), policy_(policy) {
  ctr_accepted_ =
      obs::Registry().GetCounter("innet_scheduler_admission_total", {{"outcome", "accepted"}});
  ctr_rejected_ =
      obs::Registry().GetCounter("innet_scheduler_admission_total", {{"outcome", "rejected"}});
}

PlacementDecision PlacementEngine::Decide(const std::string& client_id,
                                          const PlacementRequest& request) {
  PlacementDecision decision;
  if (!admission_.Admit(client_id, request.memory_bytes, &decision.reject_reason)) {
    ctr_rejected_->Increment();
    return decision;
  }
  if (!request.pinned_platform.empty()) {
    decision.admitted = true;
    decision.candidates.push_back(request.pinned_platform);
    ctr_accepted_->Increment();
    return decision;
  }
  decision.candidates = RankPlatforms(policy_, ledger_.Snapshot(), request);
  if (decision.candidates.empty()) {
    decision.reject_reason = "placement: no platform has headroom (policy=" +
                             std::string(PlacementPolicyName(policy_)) +
                             ", need=" + std::to_string(request.memory_bytes) + " bytes)";
    ctr_rejected_->Increment();
    return decision;
  }
  decision.admitted = true;
  ctr_accepted_->Increment();
  return decision;
}

void PlacementEngine::CommitPlacement(const std::string& client_id, uint64_t memory_bytes) {
  admission_.Commit(client_id, memory_bytes);
  ledger_.ExportHeadroomGauges();
}

void PlacementEngine::ReleasePlacement(const std::string& client_id, uint64_t memory_bytes) {
  admission_.Release(client_id, memory_bytes);
  ledger_.ExportHeadroomGauges();
}

}  // namespace innet::scheduler
