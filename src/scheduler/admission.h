// Admission control: per-tenant quotas checked before any verification or
// placement work is spent. Rejections carry a deterministic, stable reason
// string so clients (and tests) can tell quota exhaustion from placement
// failure from verification failure.
#ifndef SRC_SCHEDULER_ADMISSION_H_
#define SRC_SCHEDULER_ADMISSION_H_

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>

namespace innet::scheduler {

struct TenantQuota {
  size_t max_modules = std::numeric_limits<size_t>::max();
  uint64_t max_memory_bytes = std::numeric_limits<uint64_t>::max();
};

class AdmissionController {
 public:
  void SetDefaultQuota(TenantQuota quota) { default_quota_ = quota; }
  void SetQuota(const std::string& client_id, TenantQuota quota) {
    quotas_[client_id] = quota;
  }

  // Would one more module of `memory_bytes` keep `client_id` within quota?
  // Returns false and fills *reason on rejection. Pure check: no usage is
  // reserved (Commit does that, after the placement actually lands).
  bool Admit(const std::string& client_id, uint64_t memory_bytes, std::string* reason) const;

  // Usage bookkeeping, driven by the orchestrator on placement and kill.
  void Commit(const std::string& client_id, uint64_t memory_bytes);
  void Release(const std::string& client_id, uint64_t memory_bytes);

  struct Usage {
    size_t modules = 0;
    uint64_t memory_bytes = 0;
  };
  Usage UsageFor(const std::string& client_id) const;

 private:
  TenantQuota QuotaFor(const std::string& client_id) const;

  TenantQuota default_quota_;
  std::unordered_map<std::string, TenantQuota> quotas_;
  std::unordered_map<std::string, Usage> usage_;
};

}  // namespace innet::scheduler

#endif  // SRC_SCHEDULER_ADMISSION_H_
