#include "src/scheduler/admission.h"

namespace innet::scheduler {

TenantQuota AdmissionController::QuotaFor(const std::string& client_id) const {
  auto it = quotas_.find(client_id);
  return it == quotas_.end() ? default_quota_ : it->second;
}

AdmissionController::Usage AdmissionController::UsageFor(const std::string& client_id) const {
  auto it = usage_.find(client_id);
  return it == usage_.end() ? Usage{} : it->second;
}

bool AdmissionController::Admit(const std::string& client_id, uint64_t memory_bytes,
                                std::string* reason) const {
  TenantQuota quota = QuotaFor(client_id);
  Usage usage = UsageFor(client_id);
  if (usage.modules + 1 > quota.max_modules) {
    if (reason != nullptr) {
      *reason = "admission: client " + client_id + " at module quota (" +
                std::to_string(usage.modules) + " of " + std::to_string(quota.max_modules) + ")";
    }
    return false;
  }
  if (usage.memory_bytes + memory_bytes > quota.max_memory_bytes) {
    if (reason != nullptr) {
      *reason = "admission: client " + client_id + " at memory quota (" +
                std::to_string(usage.memory_bytes) + " + " + std::to_string(memory_bytes) +
                " > " + std::to_string(quota.max_memory_bytes) + " bytes)";
    }
    return false;
  }
  return true;
}

void AdmissionController::Commit(const std::string& client_id, uint64_t memory_bytes) {
  Usage& usage = usage_[client_id];
  ++usage.modules;
  usage.memory_bytes += memory_bytes;
}

void AdmissionController::Release(const std::string& client_id, uint64_t memory_bytes) {
  auto it = usage_.find(client_id);
  if (it == usage_.end()) {
    return;
  }
  Usage& usage = it->second;
  if (usage.modules > 0) {
    --usage.modules;
  }
  usage.memory_bytes = usage.memory_bytes >= memory_bytes ? usage.memory_bytes - memory_bytes : 0;
  if (usage.modules == 0 && usage.memory_bytes == 0) {
    usage_.erase(it);
  }
}

}  // namespace innet::scheduler
