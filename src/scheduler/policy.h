// Placement policies: how the scheduler orders platforms with headroom for a
// new tenant. The policy only *proposes* an order — every candidate still
// passes through the controller's static verification before anything is
// instantiated, so a policy can never place an unverifiable module.
#ifndef SRC_SCHEDULER_POLICY_H_
#define SRC_SCHEDULER_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/scheduler/ledger.h"

namespace innet::scheduler {

enum class PlacementPolicyKind {
  kFirstFit,     // ledger (name) order: predictable, cheapest to reason about
  kLeastLoaded,  // lowest memory utilization first: spread load, spare hot nodes
  kBinPack,      // highest utilization that still fits first: consolidate,
                 // keeping empty platforms free for large tenants
};

// Stable wire name ("first_fit", ...), used by flags and bench JSON.
const char* PlacementPolicyName(PlacementPolicyKind kind);
bool ParsePlacementPolicy(const std::string& text, PlacementPolicyKind* out);

// What a placement needs from a platform.
struct PlacementRequest {
  uint64_t memory_bytes = 0;
  // When set, placement is restricted to exactly this platform (the client
  // pinned it); policy ranking is skipped but quotas still apply.
  std::string pinned_platform;
};

// Filters `platforms` down to available ones with at least
// `request.memory_bytes` free and orders the survivors by `kind`. All ties
// break by name, so the ranking is deterministic for a given snapshot.
std::vector<std::string> RankPlatforms(PlacementPolicyKind kind,
                                       const std::vector<PlatformResources>& platforms,
                                       const PlacementRequest& request);

// One region as the federation coordinator sees it: modeled RTT from the
// tenant's client population, load from the region's last gossip digest, and
// the freshness/health of that belief.
struct RegionCandidate {
  std::string name;
  double rtt_ms = 0.0;       // modeled coordinator RTT matrix, client -> region
  double utilization = 0.0;  // memory utilization from the last digest
  bool degraded = false;     // region self-reported degraded (partition) mode
  bool stale = false;        // digest older than the coordinator's staleness window
  bool anomalous = false;    // fleet view flagged a metric anomaly in this region
};

// Latency-aware cross-region ranking: fresh, non-degraded regions first,
// ordered by rtt_ms + utilization * 50 (a full region costs as much as 50 ms
// of extra RTT); stale or degraded regions follow in the same score order as
// a last resort. Within each freshness class, regions carrying an active
// anomaly flag rank after quiet ones — an anomalous region still serves, it
// just stops being anyone's first choice. Ties break by name — deterministic
// for a given view.
std::vector<std::string> RankRegions(const std::vector<RegionCandidate>& regions);

}  // namespace innet::scheduler

#endif  // SRC_SCHEDULER_POLICY_H_
