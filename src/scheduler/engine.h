// PlacementEngine: the scheduler's front door, combining admission control,
// the resource ledger, and the active placement policy into one decision:
// "which platforms, in which order, may this request be verified against?"
// The engine never instantiates anything itself — the orchestrator feeds its
// candidate list through the controller, so every placement the engine
// proposes is still SymNet-verified before it exists.
#ifndef SRC_SCHEDULER_ENGINE_H_
#define SRC_SCHEDULER_ENGINE_H_

#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/scheduler/admission.h"
#include "src/scheduler/ledger.h"
#include "src/scheduler/policy.h"

namespace innet::scheduler {

struct PlacementDecision {
  bool admitted = false;
  std::string reject_reason;  // deterministic; set iff !admitted
  // Headroom-filtered candidate platforms in policy order (or exactly the
  // pinned platform when the request pinned one).
  std::vector<std::string> candidates;
};

class PlacementEngine {
 public:
  explicit PlacementEngine(ResourceLedger::Prober prober,
                           PlacementPolicyKind policy = PlacementPolicyKind::kFirstFit);

  ResourceLedger& ledger() { return ledger_; }
  AdmissionController& admission() { return admission_; }
  PlacementPolicyKind policy() const { return policy_; }
  void set_policy(PlacementPolicyKind policy) { policy_ = policy; }

  // Quota check, then headroom filter + policy ranking over a fresh ledger
  // snapshot. Bumps innet_scheduler_admission_total{outcome=...}. A pinned
  // request skips ranking (and the headroom filter — the install will fail
  // loudly instead) but not the quota check.
  PlacementDecision Decide(const std::string& client_id, const PlacementRequest& request);

  // Usage bookkeeping once a placement lands / dies; refreshes the
  // per-platform headroom gauges as a side effect.
  void CommitPlacement(const std::string& client_id, uint64_t memory_bytes);
  void ReleasePlacement(const std::string& client_id, uint64_t memory_bytes);

 private:
  ResourceLedger ledger_;
  AdmissionController admission_;
  PlacementPolicyKind policy_;
  obs::Counter* ctr_accepted_ = nullptr;
  obs::Counter* ctr_rejected_ = nullptr;
};

}  // namespace innet::scheduler

#endif  // SRC_SCHEDULER_ENGINE_H_
