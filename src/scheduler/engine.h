// PlacementEngine: the scheduler's front door, combining admission control,
// the resource ledger, and the active placement policy into one decision:
// "which platforms, in which order, may this request be verified against?"
// The engine never instantiates anything itself — the orchestrator feeds its
// candidate list through the controller, so every placement the engine
// proposes is still SymNet-verified before it exists.
#ifndef SRC_SCHEDULER_ENGINE_H_
#define SRC_SCHEDULER_ENGINE_H_

#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/scheduler/admission.h"
#include "src/scheduler/ledger.h"
#include "src/scheduler/policy.h"

namespace innet::scheduler {

struct PlacementDecision {
  bool admitted = false;
  std::string reject_reason;  // deterministic; set iff !admitted
  // Headroom-filtered candidate platforms in policy order (or exactly the
  // pinned platform when the request pinned one).
  std::vector<std::string> candidates;
};

class PlacementEngine {
 public:
  explicit PlacementEngine(ResourceLedger::Prober prober,
                           PlacementPolicyKind policy = PlacementPolicyKind::kFirstFit);

  ResourceLedger& ledger() { return ledger_; }
  AdmissionController& admission() { return admission_; }
  PlacementPolicyKind policy() const { return policy_; }
  void set_policy(PlacementPolicyKind policy) { policy_ = policy; }

  // Quota check, then headroom filter + policy ranking over a fresh ledger
  // snapshot. Bumps innet_scheduler_admission_total{outcome=...}. A pinned
  // request skips ranking (and the headroom filter — the install will fail
  // loudly instead) but not the quota check.
  PlacementDecision Decide(const std::string& client_id, const PlacementRequest& request);

  // Usage bookkeeping once a placement lands / dies; refreshes the
  // per-platform headroom gauges as a side effect.
  void CommitPlacement(const std::string& client_id, uint64_t memory_bytes);
  void ReleasePlacement(const std::string& client_id, uint64_t memory_bytes);

 private:
  ResourceLedger ledger_;
  AdmissionController admission_;
  PlacementPolicyKind policy_;
  obs::Counter* ctr_accepted_ = nullptr;
  obs::Counter* ctr_rejected_ = nullptr;
};

// RAII hold on a tenant's quota reservation. Construction commits the usage
// in the engine's ledger; destruction releases it unless Confirm() was
// called. Deploy/migration paths create one up front and confirm only on
// full success, so every early-exit error path — a failed verify, a lost
// install ack, a crashed boot — releases the reservation exactly once
// instead of relying on hand-written cleanup at each return.
class ReservationGuard {
 public:
  ReservationGuard() = default;
  ReservationGuard(PlacementEngine* engine, std::string client_id, uint64_t memory_bytes)
      : engine_(engine), client_id_(std::move(client_id)), memory_bytes_(memory_bytes) {
    if (engine_ != nullptr) {
      engine_->CommitPlacement(client_id_, memory_bytes_);
    }
  }
  ~ReservationGuard() { Release(); }

  ReservationGuard(const ReservationGuard&) = delete;
  ReservationGuard& operator=(const ReservationGuard&) = delete;
  ReservationGuard(ReservationGuard&& other) noexcept { *this = std::move(other); }
  ReservationGuard& operator=(ReservationGuard&& other) noexcept {
    if (this != &other) {
      Release();
      engine_ = other.engine_;
      client_id_ = std::move(other.client_id_);
      memory_bytes_ = other.memory_bytes_;
      other.engine_ = nullptr;
    }
    return *this;
  }

  // The placement succeeded: keep the usage committed.
  void Confirm() { engine_ = nullptr; }
  // Early exit: give the quota back now (idempotent).
  void Release() {
    if (engine_ != nullptr) {
      engine_->ReleasePlacement(client_id_, memory_bytes_);
      engine_ = nullptr;
    }
  }
  bool active() const { return engine_ != nullptr; }

 private:
  PlacementEngine* engine_ = nullptr;
  std::string client_id_;
  uint64_t memory_bytes_ = 0;
};

}  // namespace innet::scheduler

#endif  // SRC_SCHEDULER_ENGINE_H_
