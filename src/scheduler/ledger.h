// Resource ledger: the scheduler's per-platform view of data-plane headroom
// (guest memory, VM counts, consolidated-tenant count, buffered-packet
// pressure). The ledger does not cache usage: it names the platforms the
// scheduler may place on and snapshots their live state through a prober
// callback at decision time. That keeps the one invariant that matters
// trivially true — a snapshot reflects every install/uninstall/suspend that
// completed before the probe — with no write-back bookkeeping to drift from
// the data plane.
#ifndef SRC_SCHEDULER_LEDGER_H_
#define SRC_SCHEDULER_LEDGER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace innet::scheduler {

// One platform's resources as seen by the scheduler. `available` is false
// while the node is failed over; such platforms never receive placements but
// keep their ledger entry so restoring the node is O(1).
struct PlatformResources {
  std::string name;
  uint64_t memory_total = 0;
  uint64_t memory_used = 0;
  size_t vm_count = 0;              // guests registered, any state
  size_t running_vms = 0;
  size_t consolidated_tenants = 0;  // configs merged into the shared VM
  size_t buffer_occupancy = 0;      // packets parked in platform buffers
  bool available = true;

  uint64_t memory_free() const {
    return memory_used >= memory_total ? 0 : memory_total - memory_used;
  }
  double utilization() const {
    return memory_total == 0 ? 1.0
                             : static_cast<double>(memory_used) / static_cast<double>(memory_total);
  }
};

class ResourceLedger {
 public:
  // Fills *out with `name`'s current usage; returns false when the platform
  // is unknown to the data plane.
  using Prober = std::function<bool(const std::string& name, PlatformResources* out)>;

  explicit ResourceLedger(Prober prober) : prober_(std::move(prober)) {}

  void AddPlatform(const std::string& name);
  void RemovePlatform(const std::string& name);
  // Administrative override on top of the probe's own `available` bit (used
  // by tests and manual drains; failover flows through the probe).
  void SetAvailable(const std::string& name, bool available);

  // Live usage of every registered platform, sorted by name so every
  // consumer (policies, benches, metric dumps) iterates deterministically.
  std::vector<PlatformResources> Snapshot() const;

  // Refreshes the innet_scheduler_platform_headroom_bytes{platform=...} and
  // innet_scheduler_platform_utilization{platform=...} gauges from a fresh
  // snapshot (headroom 0 / utilization 1 for unavailable platforms).
  void ExportHeadroomGauges() const;

  size_t platform_count() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    bool enabled = true;
  };
  Prober prober_;
  std::vector<Entry> entries_;  // kept sorted by name
};

}  // namespace innet::scheduler

#endif  // SRC_SCHEDULER_LEDGER_H_
