#include "src/trace/backbone_trace.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/sim/rng.h"

namespace innet::trace {

std::vector<Flow> SynthesizeBackboneTrace(const TraceConfig& config) {
  sim::Rng rng(config.seed);
  std::vector<Flow> flows;

  // Zipf sampling over the client pool by inverse-CDF approximation.
  auto sample_client = [&rng, &config]() -> uint32_t {
    double u = rng.NextDouble();
    double exponent = 1.0 - config.client_zipf_s;
    double n = static_cast<double>(config.client_pool);
    // Approximate inverse CDF of a Zipf-like distribution on [1, n].
    double rank = std::pow(u * (std::pow(n, exponent) - 1.0) + 1.0, 1.0 / exponent);
    return static_cast<uint32_t>(std::clamp(rank, 1.0, n)) - 1;
  };

  double t = 0;
  while (t < config.duration_sec) {
    t += rng.Exponential(1.0 / config.arrivals_per_sec);
    if (t >= config.duration_sec) {
      break;
    }
    double duration =
        std::min(rng.LogNormal(config.duration_lognormal_mu, config.duration_lognormal_sigma),
                 config.max_flow_sec);
    double end = t + duration;
    if (end >= config.duration_sec) {
      continue;  // teardown outside the window: discarded, like the paper
    }
    flows.push_back(Flow{t, end, sample_client()});
  }
  return flows;
}

TraceStats AnalyzeTrace(const std::vector<Flow>& flows, double duration_sec) {
  TraceStats stats;
  stats.total_flows = flows.size();
  if (flows.empty() || duration_sec <= 0) {
    return stats;
  }

  size_t seconds = static_cast<size_t>(duration_sec);
  double sum_connections = 0;
  double sum_openers = 0;
  std::unordered_map<uint32_t, int> open_per_client;
  // Event sweep: sort starts and ends, advance one second at a time.
  std::vector<const Flow*> by_start;
  std::vector<const Flow*> by_end;
  by_start.reserve(flows.size());
  for (const Flow& flow : flows) {
    by_start.push_back(&flow);
    by_end.push_back(&flow);
  }
  std::sort(by_start.begin(), by_start.end(),
            [](const Flow* a, const Flow* b) { return a->start_sec < b->start_sec; });
  std::sort(by_end.begin(), by_end.end(),
            [](const Flow* a, const Flow* b) { return a->end_sec < b->end_sec; });

  size_t start_idx = 0;
  size_t end_idx = 0;
  size_t open_connections = 0;
  for (size_t second = 0; second < seconds; ++second) {
    double now = static_cast<double>(second) + 1.0;
    while (start_idx < by_start.size() && by_start[start_idx]->start_sec <= now) {
      ++open_connections;
      ++open_per_client[by_start[start_idx]->client_id];
      ++start_idx;
    }
    while (end_idx < by_end.size() && by_end[end_idx]->end_sec <= now) {
      --open_connections;
      auto it = open_per_client.find(by_end[end_idx]->client_id);
      if (--it->second == 0) {
        open_per_client.erase(it);
      }
      ++end_idx;
    }
    stats.max_concurrent_connections =
        std::max(stats.max_concurrent_connections, open_connections);
    stats.max_active_openers = std::max(stats.max_active_openers, open_per_client.size());
    sum_connections += static_cast<double>(open_connections);
    sum_openers += static_cast<double>(open_per_client.size());
  }
  stats.mean_concurrent_connections = sum_connections / static_cast<double>(seconds);
  stats.mean_active_openers = sum_openers / static_cast<double>(seconds);
  return stats;
}

}  // namespace innet::trace
