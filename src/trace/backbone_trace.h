// Synthetic backbone-trace generation + the paper's MAWI analysis (§6):
// "at any moment there are at most 1,600 to 4,000 active TCP connections,
// and between 400 and 840 active TCP clients" over 15-minute windows. The
// MAWI archive itself is not redistributable, so we synthesize traces with
// the same macroscopic structure (Poisson connection arrivals, heavy-tailed
// log-normal durations, a Zipf-ish client popularity distribution) and run
// the identical analysis: maximum concurrent established connections and
// maximum concurrently-active openers per instant.
#ifndef SRC_TRACE_BACKBONE_TRACE_H_
#define SRC_TRACE_BACKBONE_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace innet::trace {

struct Flow {
  double start_sec;
  double end_sec;
  uint32_t client_id;  // the active opener
};

struct TraceConfig {
  double duration_sec = 900;           // a 15-minute MAWI window
  double arrivals_per_sec = 95;        // connection setup rate
  double duration_lognormal_mu = 1.3;  // median ~3.7 s
  double duration_lognormal_sigma = 1.6;
  double max_flow_sec = 600;           // trim the pathological tail
  uint32_t client_pool = 3000;         // distinct active openers in the window
  double client_zipf_s = 1.1;          // popularity skew
  uint64_t seed = 7;
};

// Generates connections; flows whose setup or teardown falls outside the
// window are discarded, as the paper does for MAWI.
std::vector<Flow> SynthesizeBackboneTrace(const TraceConfig& config);

struct TraceStats {
  size_t total_flows = 0;
  size_t max_concurrent_connections = 0;
  size_t max_active_openers = 0;
  double mean_concurrent_connections = 0;
  double mean_active_openers = 0;
};

// Per-second sweep over the window: concurrent established connections and
// distinct clients with at least one open connection.
TraceStats AnalyzeTrace(const std::vector<Flow>& flows, double duration_sec);

}  // namespace innet::trace

#endif  // SRC_TRACE_BACKBONE_TRACE_H_
