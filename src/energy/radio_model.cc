#include "src/energy/radio_model.h"

#include <algorithm>
#include <cmath>

namespace innet::energy {

double RadioEnergyModel::AveragePowerMw(const std::vector<double>& activity_times_sec,
                                        double window_sec) const {
  if (window_sec <= 0) {
    return 0;
  }
  std::vector<double> times = activity_times_sec;
  std::sort(times.begin(), times.end());

  // Walk the timeline accumulating energy; each activity restarts the
  // DCH tail, after which the radio decays through FACH to idle.
  double energy_mj = 0;  // mW * s
  double cursor = 0;
  auto account = [&](double until, double power_mw) {
    if (until > cursor) {
      energy_mj += (until - cursor) * power_mw;
      cursor = until;
    }
  };

  for (size_t i = 0; i < times.size(); ++i) {
    double t = std::clamp(times[i], 0.0, window_sec);
    account(t, params_.idle_mw);  // idle until this activity (gaps already
                                  // covered by previous tails below)
    double dch_until = std::min(t + params_.dch_tail_sec, window_sec);
    double fach_until = std::min(dch_until + params_.fach_tail_sec, window_sec);
    // A later activity may arrive inside the tails; stop accounting there.
    double next = i + 1 < times.size() ? std::clamp(times[i + 1], 0.0, window_sec)
                                       : window_sec;
    account(std::min(dch_until, next), params_.dch_mw);
    account(std::min(fach_until, next), params_.fach_mw);
  }
  account(window_sec, params_.idle_mw);
  return energy_mj / window_sec;
}

double RadioEnergyModel::PeriodicActivityPowerMw(double interval_sec,
                                                 double window_sec) const {
  std::vector<double> times;
  for (double t = 0; t < window_sec; t += interval_sec) {
    times.push_back(t);
  }
  return AveragePowerMw(times, window_sec);
}

double RadioEnergyModel::DownloadPowerMw(double rate_bps, bool https) const {
  double power = params_.idle_mw + params_.wifi_active_mw;
  if (https) {
    double bytes_per_sec = rate_bps / 8.0;
    power += bytes_per_sec * params_.crypto_nj_per_byte * 1e-6;  // nJ/s -> mW
  }
  return power;
}

}  // namespace innet::energy
