// A 3G RRC radio energy model for the mobile use-cases (§8): the radio
// climbs to DCH on activity, lingers there for a tail timer, drops to FACH
// for another tail, then returns to idle. Batching push notifications at the
// In-Net platform stretches the gaps between wake-ups, which is where the
// Figure 13 savings come from. Power levels and tail timers follow the
// published Nexus-class measurements the paper's Monsoon numbers match
// (≈240 mW average at 30 s wake-ups, ≈140 mW at 240 s).
#ifndef SRC_ENERGY_RADIO_MODEL_H_
#define SRC_ENERGY_RADIO_MODEL_H_

#include <vector>

namespace innet::energy {

struct RadioParams {
  double idle_mw = 120.0;        // device baseline, radio idle
  double fach_mw = 460.0;        // shared-channel state
  double dch_mw = 800.0;         // dedicated-channel state
  double dch_tail_sec = 2.0;     // DCH inactivity timer
  double fach_tail_sec = 6.0;    // FACH inactivity timer
  double wifi_active_mw = 450.0; // WiFi receive, on top of idle
  double crypto_nj_per_byte = 80.0;  // TLS record decryption CPU cost
};

class RadioEnergyModel {
 public:
  explicit RadioEnergyModel(RadioParams params = {}) : params_(params) {}

  // Average power over [0, window_sec] given the instants at which network
  // activity occurred (each activity (re)starts the DCH tail).
  double AveragePowerMw(const std::vector<double>& activity_times_sec,
                        double window_sec) const;

  // Periodic activity every `interval_sec` (e.g. batched push notifications).
  double PeriodicActivityPowerMw(double interval_sec, double window_sec) const;

  // Average power while downloading at `rate_bps` over WiFi; HTTPS adds the
  // per-byte decryption cost (the §8 HTTP-vs-HTTPS experiment: ≈570 mW vs
  // ≈650 mW at 8 Mb/s).
  double DownloadPowerMw(double rate_bps, bool https) const;

  const RadioParams& params() const { return params_; }

 private:
  RadioParams params_;
};

}  // namespace innet::energy

#endif  // SRC_ENERGY_RADIO_MODEL_H_
