file(REMOVE_RECURSE
  "CMakeFiles/innet_policy.dir/reach_checker.cc.o"
  "CMakeFiles/innet_policy.dir/reach_checker.cc.o.d"
  "CMakeFiles/innet_policy.dir/reach_spec.cc.o"
  "CMakeFiles/innet_policy.dir/reach_spec.cc.o.d"
  "libinnet_policy.a"
  "libinnet_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
