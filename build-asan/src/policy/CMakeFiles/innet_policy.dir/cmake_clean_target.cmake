file(REMOVE_RECURSE
  "libinnet_policy.a"
)
