# Empty compiler generated dependencies file for innet_policy.
# This may be replaced when dependencies are built.
