file(REMOVE_RECURSE
  "libinnet_sim.a"
)
