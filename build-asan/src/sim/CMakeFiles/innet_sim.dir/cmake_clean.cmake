file(REMOVE_RECURSE
  "CMakeFiles/innet_sim.dir/event_queue.cc.o"
  "CMakeFiles/innet_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/innet_sim.dir/fault_injector.cc.o"
  "CMakeFiles/innet_sim.dir/fault_injector.cc.o.d"
  "CMakeFiles/innet_sim.dir/link.cc.o"
  "CMakeFiles/innet_sim.dir/link.cc.o.d"
  "libinnet_sim.a"
  "libinnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
