# Empty compiler generated dependencies file for innet_sim.
# This may be replaced when dependencies are built.
