# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("netcore")
subdirs("sim")
subdirs("click")
subdirs("symexec")
subdirs("policy")
subdirs("topology")
subdirs("controller")
subdirs("platform")
subdirs("transport")
subdirs("energy")
subdirs("trace")
