file(REMOVE_RECURSE
  "CMakeFiles/innet_energy.dir/radio_model.cc.o"
  "CMakeFiles/innet_energy.dir/radio_model.cc.o.d"
  "libinnet_energy.a"
  "libinnet_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
