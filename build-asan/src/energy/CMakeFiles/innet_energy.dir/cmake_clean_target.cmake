file(REMOVE_RECURSE
  "libinnet_energy.a"
)
