# Empty dependencies file for innet_energy.
# This may be replaced when dependencies are built.
