file(REMOVE_RECURSE
  "libinnet_controller.a"
)
