# Empty dependencies file for innet_controller.
# This may be replaced when dependencies are built.
