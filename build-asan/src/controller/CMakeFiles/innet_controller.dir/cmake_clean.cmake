file(REMOVE_RECURSE
  "CMakeFiles/innet_controller.dir/controller.cc.o"
  "CMakeFiles/innet_controller.dir/controller.cc.o.d"
  "CMakeFiles/innet_controller.dir/orchestrator.cc.o"
  "CMakeFiles/innet_controller.dir/orchestrator.cc.o.d"
  "CMakeFiles/innet_controller.dir/security.cc.o"
  "CMakeFiles/innet_controller.dir/security.cc.o.d"
  "CMakeFiles/innet_controller.dir/stock_modules.cc.o"
  "CMakeFiles/innet_controller.dir/stock_modules.cc.o.d"
  "libinnet_controller.a"
  "libinnet_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
