# Empty compiler generated dependencies file for innet_topology.
# This may be replaced when dependencies are built.
