file(REMOVE_RECURSE
  "CMakeFiles/innet_topology.dir/network.cc.o"
  "CMakeFiles/innet_topology.dir/network.cc.o.d"
  "libinnet_topology.a"
  "libinnet_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
