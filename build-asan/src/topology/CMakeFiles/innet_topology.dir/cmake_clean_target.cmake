file(REMOVE_RECURSE
  "libinnet_topology.a"
)
