
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/click/config_parser.cc" "src/click/CMakeFiles/innet_click.dir/config_parser.cc.o" "gcc" "src/click/CMakeFiles/innet_click.dir/config_parser.cc.o.d"
  "/root/repo/src/click/element.cc" "src/click/CMakeFiles/innet_click.dir/element.cc.o" "gcc" "src/click/CMakeFiles/innet_click.dir/element.cc.o.d"
  "/root/repo/src/click/elements.cc" "src/click/CMakeFiles/innet_click.dir/elements.cc.o" "gcc" "src/click/CMakeFiles/innet_click.dir/elements.cc.o.d"
  "/root/repo/src/click/elements_switching.cc" "src/click/CMakeFiles/innet_click.dir/elements_switching.cc.o" "gcc" "src/click/CMakeFiles/innet_click.dir/elements_switching.cc.o.d"
  "/root/repo/src/click/graph.cc" "src/click/CMakeFiles/innet_click.dir/graph.cc.o" "gcc" "src/click/CMakeFiles/innet_click.dir/graph.cc.o.d"
  "/root/repo/src/click/registry.cc" "src/click/CMakeFiles/innet_click.dir/registry.cc.o" "gcc" "src/click/CMakeFiles/innet_click.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/netcore/CMakeFiles/innet_netcore.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/innet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
