file(REMOVE_RECURSE
  "CMakeFiles/innet_click.dir/config_parser.cc.o"
  "CMakeFiles/innet_click.dir/config_parser.cc.o.d"
  "CMakeFiles/innet_click.dir/element.cc.o"
  "CMakeFiles/innet_click.dir/element.cc.o.d"
  "CMakeFiles/innet_click.dir/elements.cc.o"
  "CMakeFiles/innet_click.dir/elements.cc.o.d"
  "CMakeFiles/innet_click.dir/elements_switching.cc.o"
  "CMakeFiles/innet_click.dir/elements_switching.cc.o.d"
  "CMakeFiles/innet_click.dir/graph.cc.o"
  "CMakeFiles/innet_click.dir/graph.cc.o.d"
  "CMakeFiles/innet_click.dir/registry.cc.o"
  "CMakeFiles/innet_click.dir/registry.cc.o.d"
  "libinnet_click.a"
  "libinnet_click.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_click.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
