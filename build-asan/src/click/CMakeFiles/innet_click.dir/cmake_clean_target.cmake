file(REMOVE_RECURSE
  "libinnet_click.a"
)
