# Empty compiler generated dependencies file for innet_click.
# This may be replaced when dependencies are built.
