# Empty dependencies file for innet_netcore.
# This may be replaced when dependencies are built.
