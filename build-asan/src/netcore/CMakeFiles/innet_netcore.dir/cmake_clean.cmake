file(REMOVE_RECURSE
  "CMakeFiles/innet_netcore.dir/checksum.cc.o"
  "CMakeFiles/innet_netcore.dir/checksum.cc.o.d"
  "CMakeFiles/innet_netcore.dir/fields.cc.o"
  "CMakeFiles/innet_netcore.dir/fields.cc.o.d"
  "CMakeFiles/innet_netcore.dir/flowspec.cc.o"
  "CMakeFiles/innet_netcore.dir/flowspec.cc.o.d"
  "CMakeFiles/innet_netcore.dir/ip.cc.o"
  "CMakeFiles/innet_netcore.dir/ip.cc.o.d"
  "CMakeFiles/innet_netcore.dir/packet.cc.o"
  "CMakeFiles/innet_netcore.dir/packet.cc.o.d"
  "libinnet_netcore.a"
  "libinnet_netcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_netcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
