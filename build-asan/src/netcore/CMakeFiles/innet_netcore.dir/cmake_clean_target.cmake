file(REMOVE_RECURSE
  "libinnet_netcore.a"
)
