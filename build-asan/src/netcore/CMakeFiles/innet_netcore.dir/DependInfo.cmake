
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netcore/checksum.cc" "src/netcore/CMakeFiles/innet_netcore.dir/checksum.cc.o" "gcc" "src/netcore/CMakeFiles/innet_netcore.dir/checksum.cc.o.d"
  "/root/repo/src/netcore/fields.cc" "src/netcore/CMakeFiles/innet_netcore.dir/fields.cc.o" "gcc" "src/netcore/CMakeFiles/innet_netcore.dir/fields.cc.o.d"
  "/root/repo/src/netcore/flowspec.cc" "src/netcore/CMakeFiles/innet_netcore.dir/flowspec.cc.o" "gcc" "src/netcore/CMakeFiles/innet_netcore.dir/flowspec.cc.o.d"
  "/root/repo/src/netcore/ip.cc" "src/netcore/CMakeFiles/innet_netcore.dir/ip.cc.o" "gcc" "src/netcore/CMakeFiles/innet_netcore.dir/ip.cc.o.d"
  "/root/repo/src/netcore/packet.cc" "src/netcore/CMakeFiles/innet_netcore.dir/packet.cc.o" "gcc" "src/netcore/CMakeFiles/innet_netcore.dir/packet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
