file(REMOVE_RECURSE
  "libinnet_platform.a"
)
