
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/consolidation.cc" "src/platform/CMakeFiles/innet_platform.dir/consolidation.cc.o" "gcc" "src/platform/CMakeFiles/innet_platform.dir/consolidation.cc.o.d"
  "/root/repo/src/platform/platform.cc" "src/platform/CMakeFiles/innet_platform.dir/platform.cc.o" "gcc" "src/platform/CMakeFiles/innet_platform.dir/platform.cc.o.d"
  "/root/repo/src/platform/sandbox.cc" "src/platform/CMakeFiles/innet_platform.dir/sandbox.cc.o" "gcc" "src/platform/CMakeFiles/innet_platform.dir/sandbox.cc.o.d"
  "/root/repo/src/platform/software_switch.cc" "src/platform/CMakeFiles/innet_platform.dir/software_switch.cc.o" "gcc" "src/platform/CMakeFiles/innet_platform.dir/software_switch.cc.o.d"
  "/root/repo/src/platform/vm.cc" "src/platform/CMakeFiles/innet_platform.dir/vm.cc.o" "gcc" "src/platform/CMakeFiles/innet_platform.dir/vm.cc.o.d"
  "/root/repo/src/platform/watchdog.cc" "src/platform/CMakeFiles/innet_platform.dir/watchdog.cc.o" "gcc" "src/platform/CMakeFiles/innet_platform.dir/watchdog.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/click/CMakeFiles/innet_click.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/netcore/CMakeFiles/innet_netcore.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/innet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
