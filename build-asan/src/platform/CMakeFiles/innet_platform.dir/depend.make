# Empty dependencies file for innet_platform.
# This may be replaced when dependencies are built.
