file(REMOVE_RECURSE
  "CMakeFiles/innet_platform.dir/consolidation.cc.o"
  "CMakeFiles/innet_platform.dir/consolidation.cc.o.d"
  "CMakeFiles/innet_platform.dir/platform.cc.o"
  "CMakeFiles/innet_platform.dir/platform.cc.o.d"
  "CMakeFiles/innet_platform.dir/sandbox.cc.o"
  "CMakeFiles/innet_platform.dir/sandbox.cc.o.d"
  "CMakeFiles/innet_platform.dir/software_switch.cc.o"
  "CMakeFiles/innet_platform.dir/software_switch.cc.o.d"
  "CMakeFiles/innet_platform.dir/vm.cc.o"
  "CMakeFiles/innet_platform.dir/vm.cc.o.d"
  "CMakeFiles/innet_platform.dir/watchdog.cc.o"
  "CMakeFiles/innet_platform.dir/watchdog.cc.o.d"
  "libinnet_platform.a"
  "libinnet_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
