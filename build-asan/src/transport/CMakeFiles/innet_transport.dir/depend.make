# Empty dependencies file for innet_transport.
# This may be replaced when dependencies are built.
