file(REMOVE_RECURSE
  "libinnet_transport.a"
)
