
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/reno_flow.cc" "src/transport/CMakeFiles/innet_transport.dir/reno_flow.cc.o" "gcc" "src/transport/CMakeFiles/innet_transport.dir/reno_flow.cc.o.d"
  "/root/repo/src/transport/tunnel_experiment.cc" "src/transport/CMakeFiles/innet_transport.dir/tunnel_experiment.cc.o" "gcc" "src/transport/CMakeFiles/innet_transport.dir/tunnel_experiment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/sim/CMakeFiles/innet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
