file(REMOVE_RECURSE
  "CMakeFiles/innet_transport.dir/reno_flow.cc.o"
  "CMakeFiles/innet_transport.dir/reno_flow.cc.o.d"
  "CMakeFiles/innet_transport.dir/tunnel_experiment.cc.o"
  "CMakeFiles/innet_transport.dir/tunnel_experiment.cc.o.d"
  "libinnet_transport.a"
  "libinnet_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
