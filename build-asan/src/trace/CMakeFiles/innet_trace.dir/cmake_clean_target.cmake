file(REMOVE_RECURSE
  "libinnet_trace.a"
)
