file(REMOVE_RECURSE
  "CMakeFiles/innet_trace.dir/backbone_trace.cc.o"
  "CMakeFiles/innet_trace.dir/backbone_trace.cc.o.d"
  "libinnet_trace.a"
  "libinnet_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
