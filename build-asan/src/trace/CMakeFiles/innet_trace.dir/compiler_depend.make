# Empty compiler generated dependencies file for innet_trace.
# This may be replaced when dependencies are built.
