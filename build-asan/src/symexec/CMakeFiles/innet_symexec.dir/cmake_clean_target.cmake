file(REMOVE_RECURSE
  "libinnet_symexec.a"
)
