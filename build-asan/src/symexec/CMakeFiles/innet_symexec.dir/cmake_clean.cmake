file(REMOVE_RECURSE
  "CMakeFiles/innet_symexec.dir/click_models.cc.o"
  "CMakeFiles/innet_symexec.dir/click_models.cc.o.d"
  "CMakeFiles/innet_symexec.dir/engine.cc.o"
  "CMakeFiles/innet_symexec.dir/engine.cc.o.d"
  "CMakeFiles/innet_symexec.dir/symbolic_packet.cc.o"
  "CMakeFiles/innet_symexec.dir/symbolic_packet.cc.o.d"
  "CMakeFiles/innet_symexec.dir/trace_render.cc.o"
  "CMakeFiles/innet_symexec.dir/trace_render.cc.o.d"
  "CMakeFiles/innet_symexec.dir/value_set.cc.o"
  "CMakeFiles/innet_symexec.dir/value_set.cc.o.d"
  "libinnet_symexec.a"
  "libinnet_symexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_symexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
