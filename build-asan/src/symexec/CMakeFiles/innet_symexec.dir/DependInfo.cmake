
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/symexec/click_models.cc" "src/symexec/CMakeFiles/innet_symexec.dir/click_models.cc.o" "gcc" "src/symexec/CMakeFiles/innet_symexec.dir/click_models.cc.o.d"
  "/root/repo/src/symexec/engine.cc" "src/symexec/CMakeFiles/innet_symexec.dir/engine.cc.o" "gcc" "src/symexec/CMakeFiles/innet_symexec.dir/engine.cc.o.d"
  "/root/repo/src/symexec/symbolic_packet.cc" "src/symexec/CMakeFiles/innet_symexec.dir/symbolic_packet.cc.o" "gcc" "src/symexec/CMakeFiles/innet_symexec.dir/symbolic_packet.cc.o.d"
  "/root/repo/src/symexec/trace_render.cc" "src/symexec/CMakeFiles/innet_symexec.dir/trace_render.cc.o" "gcc" "src/symexec/CMakeFiles/innet_symexec.dir/trace_render.cc.o.d"
  "/root/repo/src/symexec/value_set.cc" "src/symexec/CMakeFiles/innet_symexec.dir/value_set.cc.o" "gcc" "src/symexec/CMakeFiles/innet_symexec.dir/value_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/netcore/CMakeFiles/innet_netcore.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/click/CMakeFiles/innet_click.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/innet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
