# Empty compiler generated dependencies file for innet_symexec.
# This may be replaced when dependencies are built.
