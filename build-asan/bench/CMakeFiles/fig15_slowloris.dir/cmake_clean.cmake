file(REMOVE_RECURSE
  "CMakeFiles/fig15_slowloris.dir/fig15_slowloris.cc.o"
  "CMakeFiles/fig15_slowloris.dir/fig15_slowloris.cc.o.d"
  "fig15_slowloris"
  "fig15_slowloris.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_slowloris.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
