# Empty compiler generated dependencies file for fig15_slowloris.
# This may be replaced when dependencies are built.
