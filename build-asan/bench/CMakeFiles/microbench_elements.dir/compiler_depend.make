# Empty compiler generated dependencies file for microbench_elements.
# This may be replaced when dependencies are built.
