file(REMOVE_RECURSE
  "CMakeFiles/microbench_elements.dir/microbench_elements.cc.o"
  "CMakeFiles/microbench_elements.dir/microbench_elements.cc.o.d"
  "microbench_elements"
  "microbench_elements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_elements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
