# Empty compiler generated dependencies file for controller_throughput.
# This may be replaced when dependencies are built.
