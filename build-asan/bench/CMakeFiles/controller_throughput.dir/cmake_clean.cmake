file(REMOVE_RECURSE
  "CMakeFiles/controller_throughput.dir/controller_throughput.cc.o"
  "CMakeFiles/controller_throughput.dir/controller_throughput.cc.o.d"
  "controller_throughput"
  "controller_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
