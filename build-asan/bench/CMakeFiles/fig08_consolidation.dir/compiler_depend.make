# Empty compiler generated dependencies file for fig08_consolidation.
# This may be replaced when dependencies are built.
