file(REMOVE_RECURSE
  "CMakeFiles/fig08_consolidation.dir/fig08_consolidation.cc.o"
  "CMakeFiles/fig08_consolidation.dir/fig08_consolidation.cc.o.d"
  "fig08_consolidation"
  "fig08_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
