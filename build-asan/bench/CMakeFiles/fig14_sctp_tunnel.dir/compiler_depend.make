# Empty compiler generated dependencies file for fig14_sctp_tunnel.
# This may be replaced when dependencies are built.
