file(REMOVE_RECURSE
  "CMakeFiles/fig14_sctp_tunnel.dir/fig14_sctp_tunnel.cc.o"
  "CMakeFiles/fig14_sctp_tunnel.dir/fig14_sctp_tunnel.cc.o.d"
  "fig14_sctp_tunnel"
  "fig14_sctp_tunnel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_sctp_tunnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
