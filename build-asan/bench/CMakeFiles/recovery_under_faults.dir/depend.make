# Empty dependencies file for recovery_under_faults.
# This may be replaced when dependencies are built.
