file(REMOVE_RECURSE
  "CMakeFiles/recovery_under_faults.dir/recovery_under_faults.cc.o"
  "CMakeFiles/recovery_under_faults.dir/recovery_under_faults.cc.o.d"
  "recovery_under_faults"
  "recovery_under_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_under_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
