file(REMOVE_RECURSE
  "CMakeFiles/fig12_middlebox_throughput.dir/fig12_middlebox_throughput.cc.o"
  "CMakeFiles/fig12_middlebox_throughput.dir/fig12_middlebox_throughput.cc.o.d"
  "fig12_middlebox_throughput"
  "fig12_middlebox_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_middlebox_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
