# Empty compiler generated dependencies file for fig11_sandbox_cost.
# This may be replaced when dependencies are built.
