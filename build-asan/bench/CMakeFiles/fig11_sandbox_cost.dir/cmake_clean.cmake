file(REMOVE_RECURSE
  "CMakeFiles/fig11_sandbox_cost.dir/fig11_sandbox_cost.cc.o"
  "CMakeFiles/fig11_sandbox_cost.dir/fig11_sandbox_cost.cc.o.d"
  "fig11_sandbox_cost"
  "fig11_sandbox_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_sandbox_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
