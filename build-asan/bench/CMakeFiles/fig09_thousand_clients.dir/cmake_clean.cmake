file(REMOVE_RECURSE
  "CMakeFiles/fig09_thousand_clients.dir/fig09_thousand_clients.cc.o"
  "CMakeFiles/fig09_thousand_clients.dir/fig09_thousand_clients.cc.o.d"
  "fig09_thousand_clients"
  "fig09_thousand_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_thousand_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
