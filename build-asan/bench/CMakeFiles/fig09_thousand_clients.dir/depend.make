# Empty dependencies file for fig09_thousand_clients.
# This may be replaced when dependencies are built.
