# Empty dependencies file for ablation_consolidation.
# This may be replaced when dependencies are built.
