file(REMOVE_RECURSE
  "CMakeFiles/ablation_consolidation.dir/ablation_consolidation.cc.o"
  "CMakeFiles/ablation_consolidation.dir/ablation_consolidation.cc.o.d"
  "ablation_consolidation"
  "ablation_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
