# Empty dependencies file for fig05_boot_rtt.
# This may be replaced when dependencies are built.
