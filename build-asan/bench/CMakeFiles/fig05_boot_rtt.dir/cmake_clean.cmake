file(REMOVE_RECURSE
  "CMakeFiles/fig05_boot_rtt.dir/fig05_boot_rtt.cc.o"
  "CMakeFiles/fig05_boot_rtt.dir/fig05_boot_rtt.cc.o.d"
  "fig05_boot_rtt"
  "fig05_boot_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_boot_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
