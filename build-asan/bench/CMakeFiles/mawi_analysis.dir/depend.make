# Empty dependencies file for mawi_analysis.
# This may be replaced when dependencies are built.
