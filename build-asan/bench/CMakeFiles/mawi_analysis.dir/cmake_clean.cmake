file(REMOVE_RECURSE
  "CMakeFiles/mawi_analysis.dir/mawi_analysis.cc.o"
  "CMakeFiles/mawi_analysis.dir/mawi_analysis.cc.o.d"
  "mawi_analysis"
  "mawi_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mawi_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
