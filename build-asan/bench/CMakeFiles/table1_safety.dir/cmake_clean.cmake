file(REMOVE_RECURSE
  "CMakeFiles/table1_safety.dir/table1_safety.cc.o"
  "CMakeFiles/table1_safety.dir/table1_safety.cc.o.d"
  "table1_safety"
  "table1_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
