# Empty compiler generated dependencies file for table1_safety.
# This may be replaced when dependencies are built.
