file(REMOVE_RECURSE
  "CMakeFiles/fig07_suspend_resume.dir/fig07_suspend_resume.cc.o"
  "CMakeFiles/fig07_suspend_resume.dir/fig07_suspend_resume.cc.o.d"
  "fig07_suspend_resume"
  "fig07_suspend_resume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_suspend_resume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
