# Empty dependencies file for fig07_suspend_resume.
# This may be replaced when dependencies are built.
