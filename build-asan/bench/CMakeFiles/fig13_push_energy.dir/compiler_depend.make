# Empty compiler generated dependencies file for fig13_push_energy.
# This may be replaced when dependencies are built.
