file(REMOVE_RECURSE
  "CMakeFiles/fig13_push_energy.dir/fig13_push_energy.cc.o"
  "CMakeFiles/fig13_push_energy.dir/fig13_push_energy.cc.o.d"
  "fig13_push_energy"
  "fig13_push_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_push_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
