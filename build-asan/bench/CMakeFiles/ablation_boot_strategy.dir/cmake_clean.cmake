file(REMOVE_RECURSE
  "CMakeFiles/ablation_boot_strategy.dir/ablation_boot_strategy.cc.o"
  "CMakeFiles/ablation_boot_strategy.dir/ablation_boot_strategy.cc.o.d"
  "ablation_boot_strategy"
  "ablation_boot_strategy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_boot_strategy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
