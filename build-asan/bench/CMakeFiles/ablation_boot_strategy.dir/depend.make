# Empty dependencies file for ablation_boot_strategy.
# This may be replaced when dependencies are built.
