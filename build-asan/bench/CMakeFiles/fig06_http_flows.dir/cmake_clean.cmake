file(REMOVE_RECURSE
  "CMakeFiles/fig06_http_flows.dir/fig06_http_flows.cc.o"
  "CMakeFiles/fig06_http_flows.dir/fig06_http_flows.cc.o.d"
  "fig06_http_flows"
  "fig06_http_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_http_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
