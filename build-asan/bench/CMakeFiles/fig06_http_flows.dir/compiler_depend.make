# Empty compiler generated dependencies file for fig06_http_flows.
# This may be replaced when dependencies are built.
