file(REMOVE_RECURSE
  "CMakeFiles/fig16_cdn.dir/fig16_cdn.cc.o"
  "CMakeFiles/fig16_cdn.dir/fig16_cdn.cc.o.d"
  "fig16_cdn"
  "fig16_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
