# Empty dependencies file for fig16_cdn.
# This may be replaced when dependencies are built.
