file(REMOVE_RECURSE
  "CMakeFiles/innet_run.dir/innet_run.cc.o"
  "CMakeFiles/innet_run.dir/innet_run.cc.o.d"
  "innet_run"
  "innet_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
