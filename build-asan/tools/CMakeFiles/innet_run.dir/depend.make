# Empty dependencies file for innet_run.
# This may be replaced when dependencies are built.
