file(REMOVE_RECURSE
  "CMakeFiles/innet_check.dir/innet_check.cc.o"
  "CMakeFiles/innet_check.dir/innet_check.cc.o.d"
  "innet_check"
  "innet_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
