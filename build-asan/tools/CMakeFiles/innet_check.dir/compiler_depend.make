# Empty compiler generated dependencies file for innet_check.
# This may be replaced when dependencies are built.
