# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/netcore_test[1]_include.cmake")
include("/root/repo/build-asan/tests/click_test[1]_include.cmake")
include("/root/repo/build-asan/tests/symexec_test[1]_include.cmake")
include("/root/repo/build-asan/tests/policy_test[1]_include.cmake")
include("/root/repo/build-asan/tests/controller_test[1]_include.cmake")
include("/root/repo/build-asan/tests/sim_test[1]_include.cmake")
include("/root/repo/build-asan/tests/platform_test[1]_include.cmake")
include("/root/repo/build-asan/tests/transport_test[1]_include.cmake")
include("/root/repo/build-asan/tests/energy_trace_test[1]_include.cmake")
include("/root/repo/build-asan/tests/property_test[1]_include.cmake")
include("/root/repo/build-asan/tests/click_switching_test[1]_include.cmake")
include("/root/repo/build-asan/tests/platform_idle_test[1]_include.cmake")
include("/root/repo/build-asan/tests/watchdog_test[1]_include.cmake")
include("/root/repo/build-asan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-asan/tests/failure_test[1]_include.cmake")
include("/root/repo/build-asan/tests/figure2_equivalence_test[1]_include.cmake")
include("/root/repo/build-asan/tests/topology_test[1]_include.cmake")
