file(REMOVE_RECURSE
  "CMakeFiles/platform_idle_test.dir/platform_idle_test.cc.o"
  "CMakeFiles/platform_idle_test.dir/platform_idle_test.cc.o.d"
  "platform_idle_test"
  "platform_idle_test.pdb"
  "platform_idle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_idle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
