# Empty compiler generated dependencies file for platform_idle_test.
# This may be replaced when dependencies are built.
