file(REMOVE_RECURSE
  "CMakeFiles/figure2_equivalence_test.dir/figure2_equivalence_test.cc.o"
  "CMakeFiles/figure2_equivalence_test.dir/figure2_equivalence_test.cc.o.d"
  "figure2_equivalence_test"
  "figure2_equivalence_test.pdb"
  "figure2_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
