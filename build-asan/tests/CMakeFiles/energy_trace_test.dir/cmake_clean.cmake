file(REMOVE_RECURSE
  "CMakeFiles/energy_trace_test.dir/energy_trace_test.cc.o"
  "CMakeFiles/energy_trace_test.dir/energy_trace_test.cc.o.d"
  "energy_trace_test"
  "energy_trace_test.pdb"
  "energy_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
