file(REMOVE_RECURSE
  "CMakeFiles/netcore_test.dir/netcore_test.cc.o"
  "CMakeFiles/netcore_test.dir/netcore_test.cc.o.d"
  "netcore_test"
  "netcore_test.pdb"
  "netcore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
