# Empty compiler generated dependencies file for netcore_test.
# This may be replaced when dependencies are built.
