
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/watchdog_test.cc" "tests/CMakeFiles/watchdog_test.dir/watchdog_test.cc.o" "gcc" "tests/CMakeFiles/watchdog_test.dir/watchdog_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/platform/CMakeFiles/innet_platform.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/click/CMakeFiles/innet_click.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/netcore/CMakeFiles/innet_netcore.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/innet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
