file(REMOVE_RECURSE
  "CMakeFiles/click_switching_test.dir/click_switching_test.cc.o"
  "CMakeFiles/click_switching_test.dir/click_switching_test.cc.o.d"
  "click_switching_test"
  "click_switching_test.pdb"
  "click_switching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/click_switching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
