# Empty compiler generated dependencies file for click_switching_test.
# This may be replaced when dependencies are built.
