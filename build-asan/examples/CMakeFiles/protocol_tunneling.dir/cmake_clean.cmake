file(REMOVE_RECURSE
  "CMakeFiles/protocol_tunneling.dir/protocol_tunneling.cpp.o"
  "CMakeFiles/protocol_tunneling.dir/protocol_tunneling.cpp.o.d"
  "protocol_tunneling"
  "protocol_tunneling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_tunneling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
