# Empty compiler generated dependencies file for protocol_tunneling.
# This may be replaced when dependencies are built.
