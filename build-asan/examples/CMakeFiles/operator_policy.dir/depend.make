# Empty dependencies file for operator_policy.
# This may be replaced when dependencies are built.
