file(REMOVE_RECURSE
  "CMakeFiles/operator_policy.dir/operator_policy.cpp.o"
  "CMakeFiles/operator_policy.dir/operator_policy.cpp.o.d"
  "operator_policy"
  "operator_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operator_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
