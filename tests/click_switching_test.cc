#include <gtest/gtest.h>

#include "src/click/elements.h"
#include "src/click/elements_switching.h"
#include "src/click/graph.h"
#include "src/symexec/click_models.h"
#include "src/symexec/engine.h"

namespace innet::click {
namespace {

Packet Udp(const char* src, const char* dst, uint16_t sport, uint16_t dport,
           size_t payload = 32) {
  return Packet::MakeUdp(Ipv4Address::MustParse(src), Ipv4Address::MustParse(dst), sport, dport,
                         payload);
}

// --- Paint / PaintSwitch -----------------------------------------------------------

TEST(Paint, ColorsAndSwitches) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront();"
      "a :: ToNetfront(); b :: ToNetfront();"
      "ps :: PaintSwitch(2);"
      "src -> Paint(1) -> ps; ps[0] -> a; ps[1] -> b;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet p = Udp("1.1.1.1", "2.2.2.2", 1, 2);
  graph->InjectAtSource(p);
  EXPECT_EQ(graph->FindAs<ToNetfront>("a")->packet_count(), 0u);
  EXPECT_EQ(graph->FindAs<ToNetfront>("b")->packet_count(), 1u);
}

TEST(Paint, OutOfRangeColorDropped) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); a :: ToNetfront(); ps :: PaintSwitch(2);"
      "src -> Paint(7) -> ps; ps[0] -> a;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet p = Udp("1.1.1.1", "2.2.2.2", 1, 2);
  graph->InjectAtSource(p);
  EXPECT_EQ(graph->FindAs<ToNetfront>("a")->packet_count(), 0u);
}

TEST(Paint, RejectsBadColor) {
  std::string error;
  EXPECT_EQ(Graph::FromText("a :: Paint(300);", &error), nullptr);
  EXPECT_EQ(Graph::FromText("a :: Paint(x);", &error), nullptr);
}

// --- RoundRobinSwitch / HashSwitch ---------------------------------------------------

TEST(RoundRobinSwitch, RotatesEvenly) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); rr :: RoundRobinSwitch(3);"
      "a :: ToNetfront(); b :: ToNetfront(); c :: ToNetfront();"
      "src -> rr; rr[0] -> a; rr[1] -> b; rr[2] -> c;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  for (int i = 0; i < 9; ++i) {
    Packet p = Udp("1.1.1.1", "2.2.2.2", 1, 2);
    graph->InjectAtSource(p);
  }
  EXPECT_EQ(graph->FindAs<ToNetfront>("a")->packet_count(), 3u);
  EXPECT_EQ(graph->FindAs<ToNetfront>("b")->packet_count(), 3u);
  EXPECT_EQ(graph->FindAs<ToNetfront>("c")->packet_count(), 3u);
}

TEST(HashSwitch, FlowsStickToOneOutput) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); hs :: HashSwitch(4);"
      "a :: ToNetfront(); b :: ToNetfront(); c :: ToNetfront(); d :: ToNetfront();"
      "src -> hs; hs[0] -> a; hs[1] -> b; hs[2] -> c; hs[3] -> d;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  // Same 5-tuple ten times: exactly one sink sees all ten.
  for (int i = 0; i < 10; ++i) {
    Packet p = Udp("1.1.1.1", "2.2.2.2", 1234, 80);
    graph->InjectAtSource(p);
  }
  int sinks_with_traffic = 0;
  for (const char* name : {"a", "b", "c", "d"}) {
    uint64_t count = graph->FindAs<ToNetfront>(name)->packet_count();
    EXPECT_TRUE(count == 0 || count == 10) << name;
    sinks_with_traffic += count > 0 ? 1 : 0;
  }
  EXPECT_EQ(sinks_with_traffic, 1);
}

TEST(HashSwitch, DistinctFlowsSpread) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); hs :: HashSwitch(4);"
      "a :: ToNetfront(); b :: ToNetfront(); c :: ToNetfront(); d :: ToNetfront();"
      "src -> hs; hs[0] -> a; hs[1] -> b; hs[2] -> c; hs[3] -> d;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  for (uint16_t port = 0; port < 64; ++port) {
    Packet p = Udp("1.1.1.1", "2.2.2.2", static_cast<uint16_t>(1000 + port), 80);
    graph->InjectAtSource(p);
  }
  int sinks_with_traffic = 0;
  for (const char* name : {"a", "b", "c", "d"}) {
    sinks_with_traffic += graph->FindAs<ToNetfront>(name)->packet_count() > 0 ? 1 : 0;
  }
  EXPECT_GE(sinks_with_traffic, 3);  // 64 flows over 4 buckets: near-certain spread
}

// --- RandomSample -----------------------------------------------------------------------

TEST(RandomSample, ApproximatesProbability) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); rs :: RandomSample(0.25);"
      "hit :: ToNetfront(); rest :: ToNetfront();"
      "src -> rs; rs[0] -> hit; rs[1] -> rest;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    Packet p = Udp("1.1.1.1", "2.2.2.2", 1, 2);
    graph->InjectAtSource(p);
  }
  auto* hit = graph->FindAs<ToNetfront>("hit");
  auto* rest = graph->FindAs<ToNetfront>("rest");
  EXPECT_EQ(hit->packet_count() + rest->packet_count(), static_cast<uint64_t>(n));
  EXPECT_NEAR(static_cast<double>(hit->packet_count()) / n, 0.25, 0.02);
}

TEST(RandomSample, RejectsBadProbability) {
  std::string error;
  EXPECT_EQ(Graph::FromText("a :: RandomSample(1.5);", &error), nullptr);
  EXPECT_EQ(Graph::FromText("a :: RandomSample();", &error), nullptr);
}

// --- SetTTL / ICMPPingResponder ------------------------------------------------------------

TEST(SetTTL, Rewrites) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); sink :: ToNetfront(); src -> SetTTL(7) -> sink;", &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet observed;
  graph->FindAs<ToNetfront>("sink")->set_handler([&](Packet& p) { observed = p; });
  Packet p = Udp("1.1.1.1", "2.2.2.2", 1, 2);
  graph->InjectAtSource(p);
  EXPECT_EQ(observed.ttl(), 7);
  EXPECT_TRUE(observed.VerifyIpChecksum());
}

TEST(ICMPPingResponder, EchoesWithSwappedAddresses) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); ping :: ICMPPingResponder(); sink :: ToNetfront();"
      "src -> ping -> sink;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet observed;
  graph->FindAs<ToNetfront>("sink")->set_handler([&](Packet& p) { observed = p; });
  Packet echo = Packet::MakeIcmpEcho(Ipv4Address::MustParse("10.0.0.1"),
                                     Ipv4Address::MustParse("172.16.3.10"), 5, 2);
  graph->InjectAtSource(echo);
  EXPECT_EQ(observed.ip_src(), Ipv4Address::MustParse("172.16.3.10"));
  EXPECT_EQ(observed.ip_dst(), Ipv4Address::MustParse("10.0.0.1"));
  EXPECT_EQ(graph->FindAs<ICMPPingResponder>("ping")->echo_count(), 1u);

  Packet not_icmp = Udp("10.0.0.1", "172.16.3.10", 1, 2);
  graph->InjectAtSource(not_icmp);
  EXPECT_EQ(graph->FindAs<ToNetfront>("sink")->packet_count(), 1u);
}

// --- ExplicitProxy ---------------------------------------------------------------------------

TEST(ExplicitProxy, FetchesParsedTargetAsItself) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); proxy :: ExplicitProxy(SELF 172.16.3.10);"
      "sink :: ToNetfront(); src -> proxy -> sink;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet observed;
  graph->FindAs<ToNetfront>("sink")->set_handler([&](Packet& p) { observed = p; });
  Packet request = Packet::MakeTcp(Ipv4Address::MustParse("10.10.0.5"),
                                   Ipv4Address::MustParse("172.16.3.10"), 5000, 3128, 0, 64);
  request.SetPayload("CONNECT 93.184.216.34:443");
  graph->InjectAtSource(request);
  EXPECT_EQ(observed.ip_src(), Ipv4Address::MustParse("172.16.3.10"));
  EXPECT_EQ(observed.ip_dst(), Ipv4Address::MustParse("93.184.216.34"));
  EXPECT_EQ(observed.dst_port(), 443);
}

TEST(ExplicitProxy, DropsMalformedRequests) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); proxy :: ExplicitProxy(SELF 172.16.3.10);"
      "sink :: ToNetfront(); src -> proxy -> sink;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  auto* proxy = graph->FindAs<ExplicitProxy>("proxy");
  const char* bad_payloads[] = {"GET / HTTP/1.1", "CONNECT nonsense", "CONNECT 1.2.3.4",
                                "CONNECT 1.2.3.4:0"};
  for (const char* payload : bad_payloads) {
    Packet p = Packet::MakeTcp(Ipv4Address::MustParse("10.10.0.5"),
                               Ipv4Address::MustParse("172.16.3.10"), 5000, 3128, 0, 64);
    p.SetPayload(payload);
    graph->InjectAtSource(p);
  }
  EXPECT_EQ(graph->FindAs<ToNetfront>("sink")->packet_count(), 0u);
  EXPECT_EQ(proxy->malformed_count(), 4u);
}

// --- AddressDemux ------------------------------------------------------------------------------

TEST(AddressDemux, ExactMatchRouting) {
  std::string error;
  auto graph = Graph::FromText(
      "src :: FromNetfront(); dm :: AddressDemux(172.16.0.10, 172.16.0.11);"
      "a :: ToNetfront(); b :: ToNetfront();"
      "src -> dm; dm[0] -> a; dm[1] -> b;",
      &error);
  ASSERT_NE(graph, nullptr) << error;
  Packet to_a = Udp("9.9.9.9", "172.16.0.10", 1, 2);
  Packet to_b = Udp("9.9.9.9", "172.16.0.11", 1, 2);
  Packet to_nobody = Udp("9.9.9.9", "172.16.0.12", 1, 2);
  graph->InjectAtSource(to_a);
  graph->InjectAtSource(to_b);
  graph->InjectAtSource(to_nobody);
  EXPECT_EQ(graph->FindAs<ToNetfront>("a")->packet_count(), 1u);
  EXPECT_EQ(graph->FindAs<ToNetfront>("b")->packet_count(), 1u);
  EXPECT_EQ(graph->FindAs<AddressDemux>("dm")->drops(), 1u);
}

TEST(AddressDemux, RejectsEmptyAndMalformed) {
  std::string error;
  EXPECT_EQ(Graph::FromText("a :: AddressDemux();", &error), nullptr);
  EXPECT_EQ(Graph::FromText("a :: AddressDemux(1.2.3);", &error), nullptr);
}

TEST(AddressDemux, ModelSplitsByDestination) {
  std::string error;
  auto config = ConfigGraph::Parse(
      "src :: FromNetfront(); dm :: AddressDemux(172.16.0.10, 172.16.0.11);"
      "a :: ToNetfront(); b :: ToNetfront();"
      "src -> dm; dm[0] -> a; dm[1] -> b;",
      &error);
  ASSERT_TRUE(config.has_value()) << error;
  auto model = symexec::BuildClickModel(*config, &error);
  ASSERT_TRUE(model.has_value()) << error;
  symexec::Engine engine;
  auto result = engine.Run(*model, model->FindNode("src"), symexec::kPortInject,
                           symexec::SymbolicPacket::MakeUnconstrained(engine.vars()));
  ASSERT_EQ(result.delivered.size(), 2u);
  for (const auto& p : result.delivered) {
    auto dst = p.PossibleValues(HeaderField::kIpDst);
    ASSERT_TRUE(dst.IsSingle());
    if (p.delivered_at() == "a") {
      EXPECT_EQ(dst.SingleValue(), Ipv4Address::MustParse("172.16.0.10").value());
    } else {
      EXPECT_EQ(dst.SingleValue(), Ipv4Address::MustParse("172.16.0.11").value());
    }
  }
}

// --- Symbolic models for the new elements -----------------------------------------------------

TEST(SwitchingModels, PaintSwitchConstrains) {
  std::string error;
  auto config = ConfigGraph::Parse(
      "src :: FromNetfront(); ps :: PaintSwitch(2);"
      "a :: ToNetfront(); b :: ToNetfront();"
      "src -> Paint(1) -> ps; ps[0] -> a; ps[1] -> b;",
      &error);
  ASSERT_TRUE(config.has_value()) << error;
  auto model = symexec::BuildClickModel(*config, &error);
  ASSERT_TRUE(model.has_value()) << error;
  symexec::Engine engine;
  auto result = engine.Run(*model, model->FindNode("src"), symexec::kPortInject,
                           symexec::SymbolicPacket::MakeUnconstrained(engine.vars()));
  // Paint(1) makes only the color-1 branch feasible.
  ASSERT_EQ(result.delivered.size(), 1u);
  EXPECT_EQ(result.delivered[0].delivered_at(), "b");
}

TEST(SwitchingModels, HashSwitchKeepsAllBranchesLive) {
  std::string error;
  auto config = ConfigGraph::Parse(
      "src :: FromNetfront(); hs :: HashSwitch(3);"
      "a :: ToNetfront(); b :: ToNetfront(); c :: ToNetfront();"
      "src -> hs; hs[0] -> a; hs[1] -> b; hs[2] -> c;",
      &error);
  ASSERT_TRUE(config.has_value()) << error;
  auto model = symexec::BuildClickModel(*config, &error);
  ASSERT_TRUE(model.has_value()) << error;
  symexec::Engine engine;
  auto result = engine.Run(*model, model->FindNode("src"), symexec::kPortInject,
                           symexec::SymbolicPacket::MakeUnconstrained(engine.vars()));
  EXPECT_EQ(result.delivered.size(), 3u);  // sound over-approximation
}

TEST(SwitchingModels, ExplicitProxyIsOpaqueDestination) {
  std::string error;
  auto config = ConfigGraph::Parse(
      "FromNetfront() -> ExplicitProxy(SELF 172.16.3.10) -> ToNetfront();", &error);
  ASSERT_TRUE(config.has_value()) << error;
  auto model = symexec::BuildClickModel(*config, &error);
  ASSERT_TRUE(model.has_value()) << error;
  symexec::Engine engine;
  auto result = engine.Run(*model, model->FindNode(symexec::ModuleSources(*config)[0]),
                           symexec::kPortInject,
                           symexec::SymbolicPacket::MakeUnconstrained(engine.vars()));
  ASSERT_EQ(result.delivered.size(), 1u);
  const auto& p = result.delivered[0];
  EXPECT_TRUE(p.value(HeaderField::kIpSrc).is_const);
  EXPECT_FALSE(p.value(HeaderField::kIpDst).is_const);
  EXPECT_NE(p.value(HeaderField::kIpDst).var, p.ingress_var(HeaderField::kIpDst));
}

}  // namespace
}  // namespace innet::click
