// Tests for the observability layer: registry determinism, histogram
// bucketing, tracer bounds, JSON round-trips, and the sim::Samples cache.
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/controller/orchestrator.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/health.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/scheduler/engine.h"
#include "src/sim/stats.h"
#include "src/topology/network.h"

namespace innet::obs {
namespace {

TEST(Json, RoundTripsThroughParser) {
  json::Value doc = json::Value::Object();
  doc.Set("name", "innet_vm_boots_total");
  doc.Set("count", uint64_t{42});
  doc.Set("mean_ms", 87.5);
  doc.Set("truncated", false);
  json::Value items = json::Value::Array();
  items.Push(1).Push(2.5).Push("three");
  doc.Set("items", std::move(items));

  std::string text = doc.ToString(2);
  json::Value parsed;
  std::string error;
  ASSERT_TRUE(json::Value::Parse(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.Find("name")->string_value(), "innet_vm_boots_total");
  EXPECT_EQ(parsed.Find("count")->int_number(), 42);
  EXPECT_DOUBLE_EQ(parsed.Find("mean_ms")->number(), 87.5);
  EXPECT_FALSE(parsed.Find("truncated")->bool_value());
  ASSERT_EQ(parsed.Find("items")->size(), 3u);
  // The round-trip is byte-stable: re-serializing the parse reproduces it.
  EXPECT_EQ(parsed.ToString(2), text);
}

TEST(Json, ParserRejectsMalformedInput) {
  json::Value out;
  std::string error;
  EXPECT_FALSE(json::Value::Parse("{\"a\": 1,}", &out, &error));
  EXPECT_FALSE(json::Value::Parse("{\"a\": 1} trailing", &out, &error));
  EXPECT_FALSE(json::Value::Parse("{'a': 1}", &out, &error));
  EXPECT_FALSE(json::Value::Parse("", &out, &error));
}

// The parser recurses once per nesting level; without the depth guard a
// hostile dump ("[[[[...") walks straight off the stack. The guard must
// reject past the limit without disturbing parses under it.
TEST(Json, DepthGuardRejectsHostileNesting) {
  auto nested_array = [](int depth) {
    return std::string(depth, '[') + std::string(depth, ']');
  };
  auto nested_object = [](int depth) {
    std::string text;
    for (int i = 0; i < depth; ++i) {
      text += "{\"a\":";
    }
    text += "1";
    text.append(depth, '}');
    return text;
  };

  json::Value out;
  std::string error;
  // At the limit (256): fine. One past: rejected with the guard's message,
  // for both container kinds.
  EXPECT_TRUE(json::Value::Parse(nested_array(256), &out, &error)) << error;
  EXPECT_FALSE(json::Value::Parse(nested_array(257), &out, &error));
  EXPECT_NE(error.find("nesting too deep"), std::string::npos) << error;
  EXPECT_TRUE(json::Value::Parse(nested_object(256), &out, &error)) << error;
  EXPECT_FALSE(json::Value::Parse(nested_object(257), &out, &error));
  EXPECT_NE(error.find("nesting too deep"), std::string::npos) << error;

  // Depth counts nesting, not total containers: many siblings at one level
  // must never trip the guard.
  std::string siblings = "[";
  for (int i = 0; i < 2000; ++i) {
    siblings += "[],";
  }
  siblings += "[]]";
  EXPECT_TRUE(json::Value::Parse(siblings, &out, &error)) << error;
}

// Fuzz-style regression: seeded LCG drives random nested documents near the
// limit; the parser must accept/reject purely on depth and never crash.
TEST(Json, DepthGuardFuzzNearTheLimit) {
  uint64_t state = 12345;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int trial = 0; trial < 64; ++trial) {
    int depth = 250 + static_cast<int>(next() % 14);  // 250..263
    std::string text;
    std::string closers;
    for (int level = 0; level < depth; ++level) {
      if (next() % 2 == 0) {
        text += "[";
        closers.insert(0, "]");
      } else {
        text += "{\"k\":";
        closers.insert(0, "}");
      }
    }
    text += "0";
    text += closers;
    json::Value out;
    std::string error;
    bool ok = json::Value::Parse(text, &out, &error);
    EXPECT_EQ(ok, depth <= 256) << "depth " << depth << ": " << error;
  }
}

TEST(Metrics, DumpIsDeterministicAcrossInsertionOrders) {
  // Two registries fed the same instruments in different orders (and with
  // label pairs given in different orders) must dump identical bytes.
  MetricsRegistry a;
  a.GetCounter("zeta_total", {{"kind", "x"}})->Increment(3);
  a.GetGauge("alpha")->Set(1.5);
  a.GetCounter("zeta_total", {{"b", "2"}, {"a", "1"}})->Increment();

  MetricsRegistry b;
  b.GetCounter("zeta_total", {{"a", "1"}, {"b", "2"}})->Increment();
  b.GetCounter("zeta_total", {{"kind", "x"}})->Increment(3);
  b.GetGauge("alpha")->Set(1.5);

  std::ostringstream dump_a;
  std::ostringstream dump_b;
  a.DumpText(dump_a);
  b.DumpText(dump_b);
  EXPECT_EQ(dump_a.str(), dump_b.str());
  EXPECT_EQ(a.ToJson().ToString(2), b.ToJson().ToString(2));
}

TEST(Metrics, FindOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* first = registry.GetCounter("x_total");
  first->Increment(5);
  Counter* again = registry.GetCounter("x_total");
  EXPECT_EQ(first, again);
  EXPECT_EQ(again->value(), 5u);
  // Distinct labels get a distinct instrument.
  EXPECT_NE(registry.GetCounter("x_total", {{"k", "v"}}), first);

  registry.ResetValues();
  EXPECT_EQ(first->value(), 0u);  // zeroed, but the pointer stays valid
  first->Increment();
  EXPECT_EQ(registry.GetCounter("x_total")->value(), 1u);
}

TEST(Metrics, HistogramBucketsUseLowerBoundSemantics) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat_ms", {}, {1.0, 2.0, 4.0});
  h->Observe(0.5);   // <= 1.0
  h->Observe(1.0);   // le-semantics: exactly on the bound lands in it
  h->Observe(3.0);   // <= 4.0
  h->Observe(100.0); // +inf overflow
  ASSERT_EQ(h->buckets().size(), 4u);
  EXPECT_EQ(h->buckets()[0], 2u);
  EXPECT_EQ(h->buckets()[1], 0u);
  EXPECT_EQ(h->buckets()[2], 1u);
  EXPECT_EQ(h->buckets()[3], 1u);
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->sum(), 104.5);
}

TEST(Metrics, BucketLadders) {
  EXPECT_EQ(ExponentialBuckets(1.0, 2.0, 4), (std::vector<double>{1, 2, 4, 8}));
  EXPECT_EQ(LinearBuckets(10.0, 5.0, 3), (std::vector<double>{10, 15, 20}));
}

TEST(Metrics, JsonDumpParsesAndCarriesValues) {
  MetricsRegistry registry;
  registry.GetCounter("pkts_total", {{"element", "f0"}})->Increment(7);
  registry.GetHistogram("boot_ms", {}, {10.0, 100.0})->Observe(42.0);

  json::Value parsed;
  std::string error;
  ASSERT_TRUE(json::Value::Parse(registry.ToJson().ToString(2), &parsed, &error)) << error;
  const json::Value* metrics = parsed.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->size(), 2u);
  // Sorted by name: boot_ms first.
  EXPECT_EQ(metrics->at(0).Find("name")->string_value(), "boot_ms");
  EXPECT_EQ(metrics->at(0).Find("type")->string_value(), "histogram");
  EXPECT_EQ(metrics->at(0).Find("count")->int_number(), 1);
  EXPECT_EQ(metrics->at(1).Find("name")->string_value(), "pkts_total");
  EXPECT_EQ(metrics->at(1).Find("value")->int_number(), 7);
  EXPECT_EQ(metrics->at(1).Find("labels")->Find("element")->string_value(), "f0");
}

TEST(Tracer, DisabledRecordIsANoOpAndCapacityBounds) {
  EventTracer tracer;
  tracer.Record(1, EventKind::kVmCrash, "vm:1");
  EXPECT_TRUE(tracer.events().empty());  // disabled by default

  tracer.Enable();
  tracer.set_capacity(2);
  tracer.Record(1, EventKind::kVmBootStart, "vm:1");
  tracer.Record(2, EventKind::kVmBootReady, "vm:1", "", 1000);
  tracer.Record(3, EventKind::kVmCrash, "vm:1");  // over capacity: dropped
  EXPECT_EQ(tracer.events().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 1u);

  json::Value parsed;
  std::string error;
  ASSERT_TRUE(json::Value::Parse(tracer.ToJson().ToString(2), &parsed, &error)) << error;
  EXPECT_EQ(parsed.Find("dropped")->int_number(), 1);
  ASSERT_EQ(parsed.Find("events")->size(), 2u);
  EXPECT_EQ(parsed.Find("events")->at(0).Find("kind")->string_value(), "vm_boot_start");
  EXPECT_EQ(parsed.Find("events")->at(1).Find("value")->int_number(), 1000);

  tracer.Clear();
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, RecordNowUsesTimeSource) {
  EventTracer tracer;
  tracer.Enable();
  uint64_t now = 7;
  tracer.SetTimeSource([&now] { return now; });
  tracer.RecordNow(EventKind::kVerifyStart, "controller");
  now = 9;
  tracer.RecordNow(EventKind::kVerifyFinish, "controller", "accepted", 2);
  ASSERT_EQ(tracer.events().size(), 2u);
  EXPECT_EQ(tracer.events()[0].time_ns, 7u);
  EXPECT_EQ(tracer.events()[1].time_ns, 9u);
}

// --- Scheduler instruments ------------------------------------------------------------
// The registry is process-global, so these check deltas, never absolutes.

TEST(SchedulerMetrics, AdmissionCountersTrackDecisions) {
  Counter* accepted =
      Registry().GetCounter("innet_scheduler_admission_total", {{"outcome", "accepted"}});
  Counter* rejected =
      Registry().GetCounter("innet_scheduler_admission_total", {{"outcome", "rejected"}});
  uint64_t accepted_before = accepted->value();
  uint64_t rejected_before = rejected->value();

  scheduler::PlacementEngine engine(
      [](const std::string&, scheduler::PlatformResources* out) {
        out->memory_total = 100;
        out->memory_used = 0;
        return true;
      });
  engine.ledger().AddPlatform("box");
  engine.admission().SetQuota("capped", scheduler::TenantQuota{.max_modules = 1});

  scheduler::PlacementRequest request;
  request.memory_bytes = 10;
  EXPECT_TRUE(engine.Decide("capped", request).admitted);
  engine.CommitPlacement("capped", 10);
  EXPECT_FALSE(engine.Decide("capped", request).admitted);  // quota
  request.memory_bytes = 1000;
  EXPECT_FALSE(engine.Decide("other", request).admitted);  // no headroom

  EXPECT_EQ(accepted->value() - accepted_before, 1u);
  EXPECT_EQ(rejected->value() - rejected_before, 2u);
}

TEST(SchedulerMetrics, HeadroomGaugeTracksLedgerState) {
  uint64_t used = 40;
  bool known = true;
  scheduler::PlacementEngine engine(
      [&](const std::string&, scheduler::PlatformResources* out) {
        if (!known) {
          return false;
        }
        out->memory_total = 100;
        out->memory_used = used;
        return true;
      });
  // Unique platform name: gauges are keyed by label and the registry is
  // shared across tests.
  const std::string name = "obs-test-headroom-box";
  engine.ledger().AddPlatform(name);
  Gauge* gauge =
      Registry().GetGauge("innet_scheduler_platform_headroom_bytes", {{"platform", name}});

  engine.ledger().ExportHeadroomGauges();
  EXPECT_DOUBLE_EQ(gauge->value(), 60.0);

  used = 70;  // data-plane change shows up on the next export (live probe)
  engine.CommitPlacement("tenant", 30);
  EXPECT_DOUBLE_EQ(gauge->value(), 30.0);

  engine.ledger().SetAvailable(name, false);  // drained: no headroom offered
  engine.ledger().ExportHeadroomGauges();
  EXPECT_DOUBLE_EQ(gauge->value(), 0.0);
}

TEST(SchedulerMetrics, MigrationCountersTrackOutcomes) {
  Counter* started =
      Registry().GetCounter("innet_scheduler_migrations_total", {{"event", "started"}});
  Counter* completed =
      Registry().GetCounter("innet_scheduler_migrations_total", {{"event", "completed"}});
  Counter* aborted =
      Registry().GetCounter("innet_scheduler_migrations_total", {{"event", "aborted"}});
  uint64_t started_before = started->value();
  uint64_t completed_before = completed->value();
  uint64_t aborted_before = aborted->value();

  sim::EventQueue clock;
  controller::Orchestrator orch(topology::Network::MakeFigure3(), &clock);

  // A stateless tenant migrates make-before-break: started + completed.
  controller::ClientRequest request;
  request.client_id = "web";
  request.requester = controller::RequesterClass::kClient;
  request.click_config =
      "FromNetfront() -> IPFilter(allow udp dst port 1500) ->"
      "IPRewriter(pattern - - 10.10.0.5 - 0 0) -> ToNetfront();";
  request.whitelist = {Ipv4Address::MustParse("10.10.0.5")};
  request.owned_prefixes = {Ipv4Prefix::MustParse("10.10.0.0/24")};
  auto stateless = orch.Deploy(request);
  ASSERT_TRUE(stateless.outcome.accepted) << stateless.outcome.reason;
  const std::string target = stateless.outcome.platform == "platform2" ? "platform1" : "platform2";
  ASSERT_TRUE(orch.MigrateTenant(stateless.outcome.module_id, target).started);
  EXPECT_EQ(started->value() - started_before, 1u);
  EXPECT_EQ(completed->value() - completed_before, 1u);

  // The Figure 4 batcher only verifies on platform3: migrating it away
  // starts, then aborts at target re-verification.
  controller::ClientRequest batcher = request;
  batcher.client_id = "mobile1";
  batcher.click_config =
      "FromNetfront() -> IPFilter(allow udp dst port 1500) ->"
      "IPRewriter(pattern - - 10.10.0.5 - 0 0) -> TimedUnqueue(120,100) -> ToNetfront();";
  batcher.requirements =
      "reach from internet udp -> client dst port 1500 const proto && dst port && payload";
  auto stateful = orch.Deploy(batcher);
  ASSERT_TRUE(stateful.outcome.accepted) << stateful.outcome.reason;
  ASSERT_EQ(stateful.outcome.platform, "platform3");
  clock.RunUntil(clock.now() + sim::FromSeconds(1));  // guest boots
  ASSERT_TRUE(orch.MigrateTenant(stateful.outcome.module_id, "platform1").started);
  clock.RunUntil(clock.now() + sim::FromSeconds(2));  // suspend lands, verify fails
  EXPECT_EQ(started->value() - started_before, 2u);
  EXPECT_EQ(completed->value() - completed_before, 1u);
  EXPECT_EQ(aborted->value() - aborted_before, 1u);
}

TEST(Metrics, QuantileInterpolatesWithinTheTargetBucket) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("q_ms", {}, {10.0, 20.0, 40.0});
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 0.0);  // empty
  for (int i = 0; i < 10; ++i) {
    h->Observe(5.0);   // bucket [0, 10]
  }
  for (int i = 0; i < 10; ++i) {
    h->Observe(15.0);  // bucket (10, 20]
  }
  // p50: rank 10 of 20 is the last observation of the first bucket — the
  // interpolation walks the full bucket width.
  EXPECT_DOUBLE_EQ(h->P50(), 10.0);
  // p75: rank 15, 5 of 10 into the (10, 20] bucket.
  EXPECT_DOUBLE_EQ(h->Quantile(0.75), 15.0);
  // The accessor and the free function on the serialized arrays agree.
  EXPECT_DOUBLE_EQ(h->P99(), HistogramQuantile(h->bounds(), h->buckets(), 0.99));
}

TEST(Metrics, QuantileClampsOverflowToHighestFiniteBound) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("overflow_ms", {}, {1.0, 2.0});
  h->Observe(0.5);
  h->Observe(100.0);  // +inf bucket
  EXPECT_DOUBLE_EQ(h->P99(), 2.0);  // rank lands in overflow: clamp
  // q=0 still means rank 1; a lone observation interpolates to its bucket's
  // upper edge (the histogram only knows the bucket, not the raw value).
  EXPECT_DOUBLE_EQ(h->Quantile(0.0), 1.0);
}

TEST(Metrics, QuantileDegenerateShapesReturnZero) {
  // innet_top feeds HistogramQuantile arrays parsed from possibly truncated
  // dumps: none of these may index out of range or return NaN/garbage.
  EXPECT_DOUBLE_EQ(HistogramQuantile({}, {}, 0.5), 0.0);            // empty everything
  EXPECT_DOUBLE_EQ(HistogramQuantile({10.0}, {}, 0.5), 0.0);        // bounds, no buckets
  EXPECT_DOUBLE_EQ(HistogramQuantile({10.0}, {0, 0}, 0.99), 0.0);   // all-zero counts
  EXPECT_DOUBLE_EQ(HistogramQuantile({10.0}, {5, 0},
                                     std::numeric_limits<double>::quiet_NaN()),
                   0.0);                                            // NaN quantile
  // Truncated dump: more buckets than bounds beyond the one overflow bucket
  // still clamps to the highest finite bound instead of reading past it.
  EXPECT_DOUBLE_EQ(HistogramQuantile({10.0}, {0, 0, 7}, 0.5), 10.0);
  // Out-of-range q clamps instead of over/underflowing the rank.
  EXPECT_DOUBLE_EQ(HistogramQuantile({10.0, 20.0}, {4, 4}, 2.0), 20.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile({10.0, 20.0}, {4, 4}, -1.0),
                   HistogramQuantile({10.0, 20.0}, {4, 4}, 0.0));
}

TEST(Metrics, SingleBucketHistogramQuantilesAreStable) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("single_ms", {}, {50.0});
  EXPECT_DOUBLE_EQ(h->P50(), 0.0);  // empty
  h->Observe(10.0);
  // One observation: every quantile interpolates within the only bucket.
  EXPECT_DOUBLE_EQ(h->P50(), 50.0);
  EXPECT_DOUBLE_EQ(h->P90(), 50.0);
  EXPECT_DOUBLE_EQ(h->P99(), 50.0);
  h->Observe(999.0);  // overflow bucket
  EXPECT_DOUBLE_EQ(h->P99(), 50.0);  // clamps to the only finite bound
}

TEST(Tracer, SpanIdsAreUniqueAndParentDefaultsToTheStackTop) {
  EventTracer tracer;
  tracer.Enable();
  uint64_t outer = tracer.Record(1, EventKind::kDeployRequest, "client:a");
  EXPECT_NE(outer, 0u);
  tracer.PushSpan(outer);
  uint64_t inner = tracer.Record(2, EventKind::kAdmission, "client:a", "admitted");
  uint64_t explicit_parent = tracer.Record(3, EventKind::kVmBootReady, "vm:1", "", 0, inner);
  tracer.PopSpan();
  uint64_t root_again = tracer.Record(4, EventKind::kVmCrash, "vm:1");

  const auto& events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_NE(inner, outer);
  EXPECT_EQ(events[0].parent, 0u);          // stack empty: root
  EXPECT_EQ(events[1].parent, outer);       // defaulted to stack top
  EXPECT_EQ(events[2].parent, inner);       // explicit parent wins
  EXPECT_EQ(events[3].parent, 0u);          // popped back to root
  EXPECT_EQ(events[3].span, root_again);
}

TEST(Tracer, SpanScopePairsBeginWithEndAndAutoParents) {
  EventTracer tracer;
  tracer.Enable();
  {
    SpanScope deploy(tracer, 10, EventKind::kDeployRequest, "client:a");
    EXPECT_EQ(tracer.current_span(), deploy.id());
    tracer.Record(11, EventKind::kAdmission, "client:a", "admitted");
  }
  const auto& events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].parent, events[0].span);
  EXPECT_EQ(events[2].kind, EventKind::kSpanEnd);
  EXPECT_EQ(events[2].parent, events[0].span);  // end pairs with its begin
  EXPECT_EQ(events[2].time_ns, 10u);            // end reuses the opening time
  EXPECT_EQ(tracer.current_span(), 0u);         // scope popped
}

TEST(Tracer, ScopedParentReentersAndZeroIsANoOp) {
  EventTracer tracer;
  tracer.Enable();
  {
    ScopedParent reenter(tracer, 42);
    EXPECT_EQ(tracer.current_span(), 42u);
    tracer.Record(5, EventKind::kVmResume, "vm:7");
  }
  EXPECT_EQ(tracer.current_span(), 0u);
  {
    ScopedParent noop(tracer, 0);  // span never opened (tracer was off then)
    EXPECT_EQ(tracer.current_span(), 0u);
  }
  EXPECT_EQ(tracer.events()[0].parent, 42u);
}

TEST(Tracer, DroppedEventsStillConsumeSpanIdsAndExportToMetrics) {
  EventTracer tracer;
  tracer.Enable();
  tracer.set_capacity(2);
  uint64_t first = tracer.Record(1, EventKind::kVmBootStart, "vm:1");
  uint64_t second = tracer.Record(2, EventKind::kVmBootStart, "vm:2");
  uint64_t third = tracer.Record(3, EventKind::kVmBootStart, "vm:3");   // dropped
  uint64_t fourth = tracer.Record(4, EventKind::kVmBootReady, "vm:3", "", 0, third);  // dropped
  EXPECT_EQ(tracer.events().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 2u);
  // Ids keep advancing under capacity pressure, so a parent link handed to an
  // async completion stays stable even when the begin event was dropped.
  EXPECT_EQ(second, first + 1);
  EXPECT_EQ(third, second + 1);
  EXPECT_EQ(fourth, third + 1);

  MetricsRegistry registry;
  tracer.ExportMetrics(&registry);
  EXPECT_EQ(registry.GetCounter("innet_trace_dropped_total")->value(), 2u);

  tracer.Clear();
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.current_span(), 0u);
  EXPECT_EQ(tracer.Record(9, EventKind::kVmCrash, "vm:1"), 1u);  // ids restart
  tracer.ExportMetrics(&registry);
  EXPECT_EQ(registry.GetCounter("innet_trace_dropped_total")->value(), 0u);
}

TEST(Tracer, SpanNamespacesKeepMergedDumpsCollisionFree) {
  // Two independently created tracers (one per region controller in a real
  // multi-PoP deployment) mint ids from the same sequence; without
  // namespacing a merged dump collides on span 1, 2, 3, ...
  EventTracer east;
  EventTracer west;
  east.Enable();
  west.Enable();
  east.SetSpanNamespace(EventTracer::NamespaceForName("east"));
  west.SetSpanNamespace(EventTracer::NamespaceForName("west"));

  std::set<uint64_t> merged;
  for (int i = 0; i < 3; ++i) {
    merged.insert(east.Record(1, EventKind::kDeployRequest, "client:a"));
    merged.insert(west.Record(1, EventKind::kDeployRequest, "client:b"));
  }
  EXPECT_EQ(merged.size(), 6u) << "merged multi-region dump must have unique span ids";

  // Parent links stay namespace-local: an inner event parents to its own
  // tracer's namespaced id, so each region's trees survive the merge intact.
  east.PushSpan(*merged.begin());
  uint64_t child = east.Record(2, EventKind::kAdmission, "client:a");
  EXPECT_EQ(east.events().back().span, child);
  EXPECT_EQ(child >> EventTracer::kSpanNamespaceShift,
            EventTracer::NamespaceForName("east"));
}

TEST(Tracer, SpanNamespaceSurvivesClearAndShowsInDump) {
  EventTracer tracer;
  tracer.Enable();
  tracer.SetSpanNamespace(EventTracer::NamespaceForName("central"));
  tracer.Record(1, EventKind::kVmBootStart, "vm:1");
  tracer.Clear();
  tracer.Record(2, EventKind::kVmBootStart, "vm:2");
  // Clearing the ring must not silently drop the tracer back into the
  // colliding id space.
  EXPECT_EQ(tracer.events()[0].span >> EventTracer::kSpanNamespaceShift,
            EventTracer::NamespaceForName("central"));
  json::Value dump = tracer.ToJson();
  const json::Value* ns = dump.Find("span_namespace");
  ASSERT_NE(ns, nullptr);
  EXPECT_EQ(static_cast<uint64_t>(ns->int_number()),
            EventTracer::NamespaceForName("central"));

  // The default (namespace 0) tracer keeps the historical dump shape.
  EventTracer plain;
  plain.Enable();
  plain.Record(1, EventKind::kVmBootStart, "vm:1");
  EXPECT_EQ(plain.events()[0].span, 1u);
  EXPECT_EQ(plain.ToJson().Find("span_namespace"), nullptr);
}

TEST(Tracer, NamespaceForNameIsDeterministicAndNeverZero) {
  EXPECT_EQ(EventTracer::NamespaceForName("east"), EventTracer::NamespaceForName("east"));
  EXPECT_NE(EventTracer::NamespaceForName(""), 0u);
  for (const char* name : {"east", "west", "central", "eu-frankfurt", "ap-tokyo"}) {
    uint64_t ns = EventTracer::NamespaceForName(name);
    EXPECT_NE(ns, 0u) << name;
    EXPECT_LE(ns, 0xffu) << name;
  }
}

TEST(Tracer, PerfettoExportFoldsSpansIntoCompleteSlices) {
  EventTracer tracer;
  tracer.Enable();
  {
    SpanScope deploy(tracer, 1000, EventKind::kDeployRequest, "client:a");
    tracer.Record(2000, EventKind::kAdmission, "client:a", "admitted");
  }
  json::Value doc = tracer.ToPerfettoJson();
  EXPECT_EQ(doc.Find("displayTimeUnit")->string_value(), "ms");
  const json::Value* trace_events = doc.Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);

  bool saw_metadata = false;
  bool saw_complete_slice = false;
  bool saw_instant = false;
  for (size_t i = 0; i < trace_events->size(); ++i) {
    const json::Value& event = trace_events->at(i);
    const std::string phase = event.Find("ph")->string_value();
    const std::string name = event.Find("name")->string_value();
    EXPECT_NE(name, "span_end");  // end markers fold into durations
    if (phase == "M") {
      saw_metadata = true;
    } else if (phase == "X" && name == "deploy_request") {
      saw_complete_slice = true;
      EXPECT_NE(event.Find("dur"), nullptr);
    } else if (phase == "i" && name == "admission_decision") {
      saw_instant = true;
    }
  }
  EXPECT_TRUE(saw_metadata);
  EXPECT_TRUE(saw_complete_slice);
  EXPECT_TRUE(saw_instant);
}

// THE tentpole acceptance check: one orchestrated deploy forms a single
// connected span tree — admission, placement, verification, boot, and
// cutover all reachable from the deploy_request root by parent links.
TEST(TraceSpans, OrchestratorDeployFormsOneConnectedTree) {
  sim::EventQueue clock;
  Tracer().Clear();
  Tracer().Enable();
  Tracer().SetTimeSource([&clock] { return clock.now(); });

  controller::Orchestrator orch(topology::Network::MakeFigure3(), &clock);
  controller::ClientRequest request;
  request.client_id = "spans";
  request.requester = controller::RequesterClass::kClient;
  request.click_config =
      "FromNetfront() -> FlowMeter() -> IPRewriter(pattern - - 10.10.0.5 - 0 0) "
      "-> ToNetfront();";
  request.whitelist = {Ipv4Address::MustParse("10.10.0.5")};
  request.owned_prefixes = {Ipv4Prefix::MustParse("10.10.0.0/24")};
  auto deployed = orch.Deploy(request);
  ASSERT_TRUE(deployed.outcome.accepted) << deployed.outcome.reason;
  clock.RunUntil(clock.now() + sim::FromSeconds(1));  // guest boots

  std::vector<TraceEvent> events = Tracer().events();
  Tracer().Clear();
  Tracer().Enable(false);
  Tracer().SetTimeSource(nullptr);

  uint64_t root = 0;
  for (const TraceEvent& event : events) {
    if (event.kind == EventKind::kDeployRequest) {
      root = event.span;
    }
  }
  ASSERT_NE(root, 0u);
  auto reachable_from_root = [&](const TraceEvent& event) {
    uint64_t at = event.span;
    for (int hops = 0; hops < 64; ++hops) {
      if (at == root) {
        return true;
      }
      if (at == 0) {
        return false;
      }
      uint64_t parent = 0;
      for (const TraceEvent& candidate : events) {
        if (candidate.span == at) {
          parent = candidate.parent;
        }
      }
      at = parent;
    }
    return false;
  };
  bool saw[5] = {false, false, false, false, false};
  for (const TraceEvent& event : events) {
    EventKind k = event.kind;
    if (k == EventKind::kAdmission || k == EventKind::kPlacementRanked ||
        k == EventKind::kVerifyFinish || k == EventKind::kVmBootStart ||
        k == EventKind::kDeployCutover || k == EventKind::kVmBootReady) {
      EXPECT_TRUE(reachable_from_root(event))
          << EventKindName(k) << " span " << event.span << " is disconnected";
      if (k == EventKind::kAdmission) saw[0] = true;
      if (k == EventKind::kPlacementRanked) saw[1] = true;
      if (k == EventKind::kVerifyFinish) saw[2] = true;
      if (k == EventKind::kVmBootStart) saw[3] = true;
      if (k == EventKind::kDeployCutover) saw[4] = true;
    }
  }
  for (bool got : saw) {
    EXPECT_TRUE(got);  // every stage of the deploy left a traced event
  }
}

TEST(Samples, PercentilesSurviveInterleavedAdds) {
  // The cached sorted view must invalidate on Add.
  sim::Samples samples;
  samples.Add(10.0);
  samples.Add(30.0);
  EXPECT_DOUBLE_EQ(samples.Max(), 30.0);
  samples.Add(50.0);  // after a sorted read
  EXPECT_DOUBLE_EQ(samples.Max(), 50.0);
  EXPECT_DOUBLE_EQ(samples.Min(), 10.0);
  EXPECT_DOUBLE_EQ(samples.Percentile(50), 30.0);
}

// Tenant names come from config files and the control channel, so every dump
// that embeds one must escape it: a name with a quote in it that reaches a
// dump unescaped silently corrupts the whole JSON document. Round-trip the
// metrics, trace, health, and flight-recorder dumps through the parser with
// a battery of hostile names (hand-picked plus LCG-generated from a hostile
// alphabet) and check each name survives byte-for-byte.
TEST(Json, HostileTenantNamesSurviveEveryDump) {
  std::vector<std::string> names = {
      "quote\"inside",
      "back\\slash",
      "new\nline",
      "tab\there",
      "ctrl\x01\x02\x1f",
      "braces{}and[]",
      "comma,colon:",
      "\"\\\"",  // quote backslash quote
      "trailing backslash\\",
  };
  // Deterministic "fuzz" tail: 16 names drawn from an alphabet that is all
  // sharp edges (LCG, fixed seed — no wall-clock randomness in tests).
  const std::string alphabet = "\"\\\n\t\x01\x1f{}[]:,/abc ";
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 16; ++i) {
    std::string name = "t";
    for (int j = 0; j < 8; ++j) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      name += alphabet[(state >> 33) % alphabet.size()];
    }
    names.push_back(std::move(name));
  }

  for (const std::string& name : names) {
    // Metrics: the name lands in a label value (and the sorted label text).
    MetricsRegistry registry;
    registry.GetCounter("innet_fuzz_drops_total", {{"tenant", name}})->Increment();
    // Trace: target and detail both carry it.
    EventTracer tracer;
    tracer.Enable();
    tracer.Record(1, EventKind::kVmCrash, name, name);
    // Health: tenant key in the per-tenant table.
    HealthMonitor health(&registry);
    health.Enable();
    health.CountDrop(name);
    health.EvaluateAll();
    // Flight recorder: bundle tenant/target/detail and element names.
    FlightRecorder flight;
    flight.Record(2, EventKind::kVmCrash, name, name);
    PostmortemBundle bundle;
    bundle.target = name;
    bundle.tenant = name;
    bundle.detail = name;
    ElementCounterDelta delta;
    delta.element = name;
    delta.element_class = name;
    bundle.elements.push_back(std::move(delta));
    flight.SnapshotPostmortem(std::move(bundle));

    struct Dump {
      const char* which;
      json::Value doc;
    };
    Dump dumps[] = {{"metrics", registry.ToJson()},
                    {"trace", tracer.ToJson()},
                    {"health", health.ToJson()},
                    {"flight", flight.ToJson()}};
    for (Dump& dump : dumps) {
      std::string text = dump.doc.ToString(2);
      json::Value parsed;
      std::string error;
      ASSERT_TRUE(json::Value::Parse(text, &parsed, &error))
          << dump.which << " dump corrupted by name "
          << json::Escape(name) << ": " << error;
      // Byte-stable too: serializing the parse reproduces the dump.
      EXPECT_EQ(parsed.ToString(2), text) << dump.which;
    }
    // The name itself round-trips exactly where it matters most.
    json::Value parsed;
    std::string error;
    ASSERT_TRUE(json::Value::Parse(health.ToJson().ToString(2), &parsed, &error)) << error;
    ASSERT_EQ(parsed.Find("tenants")->size(), 1u);
    EXPECT_EQ(parsed.Find("tenants")->at(0).Find("tenant")->string_value(), name);
    json::Value metrics_parsed;
    ASSERT_TRUE(
        json::Value::Parse(registry.ToJson().ToString(2), &metrics_parsed, &error)) << error;
    bool found = false;
    const json::Value* metrics = metrics_parsed.Find("metrics");
    ASSERT_NE(metrics, nullptr);
    for (size_t i = 0; i < metrics->size(); ++i) {
      const json::Value* labels = metrics->at(i).Find("labels");
      if (labels == nullptr || labels->Find("tenant") == nullptr) {
        continue;
      }
      if (labels->Find("tenant")->string_value() == name) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << "tenant label lost from metrics dump: " << json::Escape(name);
  }
}

TEST(Samples, ToHistogramReplaysEveryValue) {
  sim::Samples samples;
  samples.Add(0.5);
  samples.Add(1.5);
  samples.Add(9.0);
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("s", {}, {1.0, 2.0});
  samples.ToHistogram(h);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->buckets()[0], 1u);
  EXPECT_EQ(h->buckets()[1], 1u);
  EXPECT_EQ(h->buckets()[2], 1u);
}

}  // namespace
}  // namespace innet::obs
