#include <gtest/gtest.h>

#include "src/sim/event_queue.h"
#include "src/sim/link.h"
#include "src/sim/rng.h"
#include "src/sim/stats.h"

namespace innet::sim {
namespace {

// --- EventQueue ---------------------------------------------------------------

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, TiesBreakInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(10, [&] { order.push_back(2); });
  q.ScheduleAt(10, [&] { order.push_back(3); });
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EventsScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(5, [&] {
    ++fired;
    q.ScheduleAfter(5, [&] { ++fired; });
  });
  q.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 10u);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(10, [&] { ++fired; });
  q.ScheduleAt(20, [&] { ++fired; });
  q.RunUntil(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 15u);
  q.Run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, PastScheduleClampsToNow) {
  EventQueue q;
  q.ScheduleAt(100, [] {});
  q.Run();
  bool fired = false;
  q.ScheduleAt(50, [&] { fired = true; });  // in the past
  q.Run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, RunHonorsMaxEvents) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(static_cast<TimeNs>(i), [&] { ++fired; });
  }
  EXPECT_EQ(q.Run(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.pending(), 7u);
}

// --- Rng ------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(5.0, 6.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(2.0);
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0;
  double sum_sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

// --- Samples ----------------------------------------------------------------------

TEST(Samples, BasicStats) {
  Samples s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 5.0);
  EXPECT_DOUBLE_EQ(s.Median(), 3.0);
  EXPECT_NEAR(s.Stddev(), std::sqrt(2.5), 1e-9);
}

TEST(Samples, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_NEAR(s.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.Percentile(50), 50.5, 1.0);
  EXPECT_NEAR(s.Percentile(90), 90.1, 1.0);
}

TEST(Samples, EmptyIsSafe) {
  Samples s;
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Percentile(50), 0.0);
  EXPECT_TRUE(s.Cdf().empty());
}

TEST(Samples, CdfMonotonic) {
  Samples s;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    s.Add(rng.Uniform(0, 100));
  }
  auto cdf = s.Cdf(50);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].first, cdf[i].first);
    EXPECT_LT(cdf[i - 1].second, cdf[i].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

// --- Link -----------------------------------------------------------------------

TEST(Link, DeliversAfterSerializationAndPropagation) {
  EventQueue q;
  Rng rng(1);
  Link::Config config;
  config.rate_bps = 8e6;  // 1 byte/us
  config.propagation = 1000 * kMicrosecond;
  Link link(&q, &rng, config);
  TimeNs delivered_at = 0;
  link.Send(1000, [&] { delivered_at = q.now(); });
  q.Run();
  // 1000 bytes at 1 B/us = 1 ms serialization + 1 ms propagation.
  EXPECT_EQ(delivered_at, 2 * kMillisecond);
}

TEST(Link, SerializesBackToBack) {
  EventQueue q;
  Rng rng(1);
  Link::Config config;
  config.rate_bps = 8e6;
  config.propagation = 0;
  Link link(&q, &rng, config);
  std::vector<TimeNs> deliveries;
  link.Send(1000, [&] { deliveries.push_back(q.now()); });
  link.Send(1000, [&] { deliveries.push_back(q.now()); });
  q.Run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], 1 * kMillisecond);
  EXPECT_EQ(deliveries[1], 2 * kMillisecond);  // queued behind the first
}

TEST(Link, LosesAtConfiguredRate) {
  EventQueue q;
  Rng rng(5);
  Link::Config config;
  config.rate_bps = 1e12;
  config.propagation = 0;
  config.loss_prob = 0.2;
  Link link(&q, &rng, config);
  int delivered = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    link.Send(100, [&] { ++delivered; });
  }
  q.Run();
  EXPECT_NEAR(static_cast<double>(delivered) / n, 0.8, 0.02);
}

TEST(Link, QueueLimitDropsAtEnqueue) {
  EventQueue q;
  Rng rng(1);
  Link::Config config;
  config.rate_bps = 8e3;  // very slow: 1 byte/ms
  config.propagation = 0;
  config.queue_limit_bytes = 2000;
  Link link(&q, &rng, config);
  EXPECT_TRUE(link.Send(1000, [] {}));
  EXPECT_TRUE(link.Send(1000, [] {}));
  EXPECT_FALSE(link.Send(1000, [] {}));  // over the 2000-byte cap
  EXPECT_EQ(link.dropped_count(), 1u);
}

TEST(Link, IdleLatency) {
  EventQueue q;
  Rng rng(1);
  Link::Config config;
  config.rate_bps = 8e6;
  config.propagation = 5 * kMillisecond;
  Link link(&q, &rng, config);
  EXPECT_EQ(link.IdleLatency(1000), 6 * kMillisecond);
}

}  // namespace
}  // namespace innet::sim
