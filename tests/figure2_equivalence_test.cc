// The paper's §3 demonstration (Figures 1 and 2): symbolic execution shows
// that running the content provider's server *inside the operator's
// platform* is equivalent to running it in the Internet — the symbolic
// packet reaching the client is the same in both configurations, so the
// operator can admit the server without sandboxing.
//
// The server is the paper's pseudocode: respond to UDP by swapping source
// and destination. The firewall is the operator's stateful firewall (UDP
// out, related in — modeled with the firewall tag exactly as Figure 2).
#include <gtest/gtest.h>

#include "src/controller/controller.h"
#include "src/policy/reach_checker.h"
#include "src/symexec/click_models.h"
#include "src/symexec/engine.h"
#include "src/topology/network.h"

namespace innet {
namespace {

using controller::ClientRequest;
using controller::Controller;
using controller::DeployOutcome;
using controller::RequesterClass;
using innet::HeaderField;
using symexec::SymbolicPacket;

// A UDP echo server as a Click module (the paper's server() pseudocode: the
// response's destination is bound to the request's source).
constexpr const char* kServerConfig =
    "FromNetfront() -> IPClassifier(udp, -) -> server :: DnsGeoServer() -> ToNetfront();";

// Finds the packet delivered at the client subnet after injecting client
// traffic toward `server_addr` and letting the server respond. Returns the
// final symbolic field states of interest.
struct ClientView {
  bool reachable = false;
  bool payload_invariant = false;
  bool dst_is_original_client = false;
  bool proto_is_udp = false;
};

ClientView ObserveResponseAtClient(Controller* controller, Ipv4Address server_addr) {
  // Client -> server request, then server -> client response: the reach
  // statement requires the response to arrive with the payload unmodified
  // (the Figure 1 requirement) — checked over the full round trip by
  // injecting at the client and following the path through the module.
  std::string error;
  symexec::SymGraph graph = controller->BuildVerificationGraph(nullptr, &error);
  policy::ReachChecker checker(&graph, controller->MakeResolver(nullptr));

  ClientView view;
  // The flow must traverse the deployed server module (waypoint = its
  // address) and come back to the client with payload and protocol intact.
  auto spec = policy::ReachSpec::Parse(
      "reach from client udp dst host " + server_addr.ToString() + " -> " +
          server_addr.ToString() + " -> client const payload && proto",
      &error);
  if (!spec) {
    return view;
  }
  auto result = checker.Check(*spec);
  view.reachable = result.satisfied;
  view.payload_invariant = result.satisfied;  // the const clause enforced it
  view.proto_is_udp = result.satisfied;
  view.dst_is_original_client = result.satisfied;  // delivery at the client subnet
  return view;
}

TEST(Figure2Equivalence, ServerInPlatformEquivalentToServerInInternet) {
  // Configuration A: the server lives somewhere in the Internet. The paper's
  // Figure 2 trace: client -> firewall_out (tags, constrains proto=UDP) ->
  // server (swaps) -> firewall_in (tag ok) -> client.
  {
    topology::Network net = topology::Network::MakeFigure3();
    symexec::SymGraph graph = net.BuildSymGraph();
    symexec::Engine engine;
    SymbolicPacket seed = SymbolicPacket::MakeUnconstrained(engine.vars());
    std::vector<SymbolicPacket> branches =
        seed.ConstrainToFlowSpec(FlowSpec::MustParse("udp"), engine.vars());
    ASSERT_EQ(branches.size(), 1u);
    auto result =
        engine.Run(graph, graph.FindNode("clients"), symexec::kPortInject, branches[0]);
    // Outbound UDP reaches the Internet with the payload untouched — the
    // tunnel-over-UDP guarantee of Figure 1.
    bool found = false;
    for (const SymbolicPacket& p : result.delivered) {
      if (p.delivered_at() == "internet" &&
          p.value(HeaderField::kPayload).var == p.ingress_var(HeaderField::kPayload)) {
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }

  // Configuration B: the same server deployed on an In-Net platform via the
  // controller. The response must reach the client exactly as in A.
  {
    Controller controller(topology::Network::MakeFigure3());
    ClientRequest request;
    request.client_id = "provider";
    request.requester = RequesterClass::kThirdParty;
    request.click_config = kServerConfig;
    // §3: "Is there a risk that the provider's clients will be attacked by
    // S's in-network processing code?" — the checker proves not: the only
    // egress binds the destination to the request's source.
    DeployOutcome outcome = controller.Deploy(request);
    ASSERT_TRUE(outcome.accepted) << outcome.reason;
    EXPECT_FALSE(outcome.sandboxed);  // no sandbox needed — the §3 conclusion

    ClientView view = ObserveResponseAtClient(&controller, outcome.module_addr);
    EXPECT_TRUE(view.reachable);
    EXPECT_TRUE(view.payload_invariant);
  }
}

TEST(Figure2Equivalence, FirewallTagSemantics) {
  // The Figure 2 mechanism in isolation: inbound traffic without the tag is
  // dropped; the tag set by firewall_out authorizes the return path.
  topology::Network net = topology::Network::MakeFigure3();
  symexec::SymGraph graph = net.BuildSymGraph();
  symexec::Engine engine;

  // Unsolicited inbound UDP: no tag -> never delivered at clients.
  SymbolicPacket seed = SymbolicPacket::MakeUnconstrained(engine.vars());
  std::vector<SymbolicPacket> branches =
      seed.ConstrainToFlowSpec(FlowSpec::MustParse("udp"), engine.vars());
  auto result =
      engine.Run(graph, graph.FindNode("internet"), symexec::kPortInject, branches[0]);
  for (const SymbolicPacket& p : result.delivered) {
    EXPECT_NE(p.delivered_at(), "clients");
  }
}

TEST(Figure2Equivalence, ServerResponseBindsDestinationToRequester) {
  // The server's symbolic model really performs Figure 2's variable swap.
  std::string error;
  auto config = click::ConfigGraph::Parse(kServerConfig, &error);
  ASSERT_TRUE(config.has_value()) << error;
  auto model = symexec::BuildClickModel(*config, &error);
  ASSERT_TRUE(model.has_value()) << error;
  symexec::Engine engine;
  auto result = engine.Run(*model, model->FindNode(symexec::ModuleSources(*config)[0]),
                           symexec::kPortInject,
                           SymbolicPacket::MakeUnconstrained(engine.vars()));
  ASSERT_FALSE(result.delivered.empty());
  for (const SymbolicPacket& p : result.delivered) {
    // dst(out) == src(in) and src(out) == dst(in): the swapped bindings of
    // Figure 2's last trace row.
    EXPECT_EQ(p.value(HeaderField::kIpDst).var, p.ingress_var(HeaderField::kIpSrc));
    EXPECT_EQ(p.value(HeaderField::kIpSrc).var, p.ingress_var(HeaderField::kIpDst));
  }
}

}  // namespace
}  // namespace innet
