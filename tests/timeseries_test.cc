// Tests for the time-series sampler (windowed counter rates, gauge samples,
// histogram delta quantiles, bounded rings) and the EWMA anomaly detector
// (warmup, sustain, baseline freeze, health/trace integration).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/health.h"
#include "src/obs/metrics.h"
#include "src/obs/timeseries.h"
#include "src/obs/trace.h"

namespace innet::obs {
namespace {

constexpr uint64_t kWindow = 100'000'000;  // 100 ms

TEST(TimeSeries, CounterBecomesPerWindowRate) {
  MetricsRegistry registry;
  TimeSeriesSampler sampler(&registry);
  Counter* c = registry.GetCounter("innet_demo_total");

  c->Increment(10);
  sampler.SampleWindow(kWindow);
  c->Increment(30);
  sampler.SampleWindow(2 * kWindow);

  const Series* series = sampler.FindSeries("innet_demo_total");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->kind(), SeriesKind::kCounterRate);
  std::vector<SeriesPoint> points = series->Points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].t_ns, kWindow);
  EXPECT_EQ(points[0].count, 10u);          // first window delta
  EXPECT_DOUBLE_EQ(points[0].value, 100.0); // 10 / 0.1 s
  EXPECT_EQ(points[1].count, 30u);          // delta, not cumulative
  EXPECT_DOUBLE_EQ(points[1].value, 300.0);
}

TEST(TimeSeries, CounterResetIsTreatedAsRestartNotNegativeDelta) {
  MetricsRegistry registry;
  TimeSeriesSampler sampler(&registry);
  Counter* c = registry.GetCounter("innet_demo_total");

  c->Increment(50);
  sampler.SampleWindow(kWindow);
  registry.ResetValues();  // bench-style between-scenario reset
  c->Increment(5);
  sampler.SampleWindow(2 * kWindow);

  const Series* series = sampler.FindSeries("innet_demo_total");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->Points()[1].count, 5u);  // counted from zero, no wrap
}

TEST(TimeSeries, GaugeSamplesTheWindowEdgeValue) {
  MetricsRegistry registry;
  TimeSeriesSampler sampler(&registry);
  Gauge* g = registry.GetGauge("innet_demo_inflight");

  g->Set(3);
  sampler.SampleWindow(kWindow);
  g->Set(7);
  sampler.SampleWindow(2 * kWindow);

  const Series* series = sampler.FindSeries("innet_demo_inflight");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->kind(), SeriesKind::kGauge);
  EXPECT_DOUBLE_EQ(series->Points()[0].value, 3.0);
  EXPECT_DOUBLE_EQ(series->Last().value, 7.0);
}

TEST(TimeSeries, HistogramQuantilesComeFromWindowDeltasOnly) {
  MetricsRegistry registry;
  TimeSeriesSampler sampler(&registry);
  Histogram* h =
      registry.GetHistogram("innet_demo_latency_ms", {}, ExponentialBuckets(1.0, 2.0, 10));

  // Window 1: all fast observations.
  for (int i = 0; i < 100; ++i) {
    h->Observe(1.5);
  }
  sampler.SampleWindow(kWindow);
  // Window 2: all slow. The run-to-date aggregate p50 would still be fast;
  // the window p50 must see only the new observations.
  for (int i = 0; i < 100; ++i) {
    h->Observe(100.0);
  }
  sampler.SampleWindow(2 * kWindow);

  const Series* series = sampler.FindSeries("innet_demo_latency_ms");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->kind(), SeriesKind::kHistogramWindow);
  std::vector<SeriesPoint> points = series->Points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].count, 100u);
  EXPECT_LT(points[0].p50, 4.0);
  EXPECT_EQ(points[1].count, 100u);
  EXPECT_GT(points[1].p50, 50.0);  // the aggregate would answer ~2 ms here
}

TEST(TimeSeries, RingEvictsOldestAndCountsEvictions) {
  MetricsRegistry registry;
  TimeSeriesSampler sampler(&registry);
  sampler.set_ring_capacity(4);
  Counter* c = registry.GetCounter("innet_demo_total");

  for (uint64_t w = 1; w <= 10; ++w) {
    c->Increment(w);
    sampler.SampleWindow(w * kWindow);
  }

  const Series* series = sampler.FindSeries("innet_demo_total");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->total_points(), 10u);
  EXPECT_EQ(series->evicted_points(), 6u);
  std::vector<SeriesPoint> points = series->Points();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points.front().t_ns, 7 * kWindow);  // oldest surviving window
  EXPECT_EQ(points.back().t_ns, 10 * kWindow);
  EXPECT_EQ(points.back().count, 10u);
}

TEST(TimeSeries, NonAdvancingSampleIsIgnored) {
  MetricsRegistry registry;
  TimeSeriesSampler sampler(&registry);
  registry.GetCounter("innet_demo_total")->Increment();

  sampler.SampleWindow(kWindow);
  sampler.SampleWindow(kWindow);  // same instant: a window cannot end twice
  sampler.SampleWindow(kWindow - 1);

  EXPECT_EQ(sampler.windows_sampled(), 1u);
  EXPECT_EQ(sampler.FindSeries("innet_demo_total")->size(), 1u);
}

TEST(TimeSeries, LabeledVariantsGetIndependentSeries) {
  MetricsRegistry registry;
  TimeSeriesSampler sampler(&registry);
  registry.GetCounter("innet_demo_total", {{"tenant", "a"}})->Increment(2);
  registry.GetCounter("innet_demo_total", {{"tenant", "b"}})->Increment(9);
  sampler.SampleWindow(kWindow);

  const Series* a = sampler.FindSeries("innet_demo_total", {{"tenant", "a"}});
  const Series* b = sampler.FindSeries("innet_demo_total", {{"tenant", "b"}});
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->Last().count, 2u);
  EXPECT_EQ(b->Last().count, 9u);
  EXPECT_EQ(sampler.FindSeries("innet_demo_total", {{"tenant", "c"}}), nullptr);
}

TEST(TimeSeries, DumpIsDeterministicAcrossIdenticalRuns) {
  auto run = [] {
    MetricsRegistry registry;
    TimeSeriesSampler sampler(&registry);
    Counter* c = registry.GetCounter("innet_demo_total", {{"tenant", "t1"}});
    Gauge* g = registry.GetGauge("innet_demo_inflight");
    for (uint64_t w = 1; w <= 20; ++w) {
      c->Increment(w % 5);
      g->Set(static_cast<double>(w % 3));
      sampler.SampleWindow(w * kWindow);
    }
    return sampler.ToJson().ToString(2);
  };
  EXPECT_EQ(run(), run());
}

// --- AnomalyDetector --------------------------------------------------------

// One rule watching one metric; helper drives N quiet windows then a spike.
struct DetectorHarness {
  MetricsRegistry registry;
  EventTracer tracer;
  HealthMonitor health{&registry};
  AnomalyDetector detector{&tracer, &health, &registry};
  TimeSeriesSampler sampler{&registry};
  Counter* counter = nullptr;
  uint64_t window = 0;

  explicit DetectorHarness(AnomalyRule rule, Labels labels = {{"tenant", "t1"}}) {
    tracer.Enable();
    health.Enable();
    detector.AddRule(std::move(rule));
    sampler.AttachDetector(&detector);
    counter = registry.GetCounter("innet_demo_total", labels);
  }

  void Window(uint64_t delta) {
    counter->Increment(delta);
    window += 1;
    sampler.SampleWindow(window * kWindow);
  }
};

AnomalyRule DemoRule() {
  AnomalyRule rule;
  rule.signal = "drop_rate_spike";
  rule.metric = "innet_demo_total";
  rule.tenant_label = "tenant";
  rule.factor = 3.0;
  rule.min_delta = 1.0;
  rule.sustain_windows = 2;
  rule.warmup_windows = 3;
  return rule;
}

TEST(Anomaly, SustainedSpikeFlagsOncePerEpisode) {
  DetectorHarness h(DemoRule());
  for (int i = 0; i < 5; ++i) {
    h.Window(10);  // steady baseline ~100/s
  }
  EXPECT_TRUE(h.detector.flags().empty());

  h.Window(100);  // deviant window 1: not yet sustained
  EXPECT_TRUE(h.detector.flags().empty());
  h.Window(100);  // deviant window 2: flag
  ASSERT_EQ(h.detector.flags().size(), 1u);
  h.Window(100);  // still deviant: same episode, no second flag
  EXPECT_EQ(h.detector.flags().size(), 1u);

  const AnomalyDetector::Flag& flag = h.detector.flags()[0];
  EXPECT_EQ(flag.signal, "drop_rate_spike");
  EXPECT_EQ(flag.metric, "innet_demo_total");
  EXPECT_EQ(flag.tenant, "t1");
  EXPECT_EQ(flag.target, "tenant:t1");
  EXPECT_GT(flag.value, flag.baseline * 3.0);
}

TEST(Anomaly, WarmupWindowsNeverFlag) {
  AnomalyRule rule = DemoRule();
  rule.warmup_windows = 10;
  DetectorHarness h(rule);
  for (int i = 0; i < 9; ++i) {
    h.Window(i == 0 ? 1 : 500);  // wild swings, all inside warmup
  }
  EXPECT_TRUE(h.detector.flags().empty());
}

TEST(Anomaly, BaselineFreezesDuringDeviationAndRecoversAfter) {
  DetectorHarness h(DemoRule());
  for (int i = 0; i < 5; ++i) {
    h.Window(10);
  }
  // A long storm: if the EWMA kept absorbing these, the storm would become
  // the new normal and a second storm would pass unflagged.
  for (int i = 0; i < 10; ++i) {
    h.Window(100);
  }
  ASSERT_EQ(h.detector.flags().size(), 1u);

  // Recovery re-arms the episode; the next sustained storm flags again.
  for (int i = 0; i < 5; ++i) {
    h.Window(10);
  }
  h.Window(100);
  h.Window(100);
  EXPECT_EQ(h.detector.flags().size(), 2u);
}

TEST(Anomaly, FlagRecordsTraceEventMetricAndHealthAnomaly) {
  DetectorHarness h(DemoRule());
  for (int i = 0; i < 5; ++i) {
    h.Window(10);
  }
  h.Window(100);
  h.Window(100);
  ASSERT_EQ(h.detector.flags().size(), 1u);

  // Trace: one `anomaly` event targeted at the tenant.
  bool traced = false;
  for (const TraceEvent& event : h.tracer.events()) {
    if (event.kind == EventKind::kAnomaly) {
      traced = true;
      EXPECT_EQ(event.target, "tenant:t1");
      EXPECT_EQ(event.detail, "drop_rate_spike");
    }
  }
  EXPECT_TRUE(traced);

  // Metric: the flag counter carries the signal label.
  EXPECT_EQ(
      h.registry.GetCounter("innet_anomaly_flags_total", {{"signal", "drop_rate_spike"}})->value(),
      1u);

  // Health: one anomaly degrades the tenant (anomalies_degraded defaults 1).
  h.health.EvaluateAll();
  EXPECT_EQ(h.health.CurrentState("t1"), HealthState::kDegraded);
}

TEST(Anomaly, FleetRuleWithoutTenantLabelDoesNotTouchHealth) {
  AnomalyRule rule = DemoRule();
  rule.tenant_label = "";
  DetectorHarness h(rule, /*labels=*/{});
  for (int i = 0; i < 5; ++i) {
    h.Window(10);
  }
  h.Window(100);
  h.Window(100);
  ASSERT_EQ(h.detector.flags().size(), 1u);
  EXPECT_EQ(h.detector.flags()[0].target, "metric:innet_demo_total");
  EXPECT_TRUE(h.detector.flags()[0].tenant.empty());
  EXPECT_EQ(h.health.tenant_count(), 0u);
}

TEST(Anomaly, DefaultRulesCoverTheAdvertisedSignals) {
  AnomalyDetector detector;
  detector.UseDefaultRules();
  EXPECT_GE(detector.rule_count(), 5u);
}

TEST(Anomaly, FlagsAppearInTheSamplerDump) {
  DetectorHarness h(DemoRule());
  for (int i = 0; i < 5; ++i) {
    h.Window(10);
  }
  h.Window(100);
  h.Window(100);
  json::Value dump = h.sampler.ToJson();
  const json::Value* anomalies = dump.Find("anomalies");
  ASSERT_NE(anomalies, nullptr);
  ASSERT_EQ(anomalies->size(), 1u);
  EXPECT_EQ(anomalies->at(0).Find("signal")->string_value(), "drop_rate_spike");
  EXPECT_EQ(anomalies->at(0).Find("target")->string_value(), "tenant:t1");
}

}  // namespace
}  // namespace innet::obs
